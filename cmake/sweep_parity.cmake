# Runs ssdrr_sweep over the same grid at --jobs 1 and --jobs 4 and
# requires the text table and the JSON aggregate to be byte-identical
# — the determinism contract that makes sweep digests usable as
# regression goldens. A second grid contains a cell that cannot run
# (its workload axis points at a nonexistent trace file); both job
# counts must exit 3 with, again, identical aggregates, proving a
# failing cell degrades to an error row rather than perturbing its
# neighbours.
#
# Inputs (all -D):
#   SWEEP_TOOL      path to the ssdrr_sweep binary
#   SWEEP_FILE      a well-formed mini grid
#   BAD_SWEEP_FILE  a grid with one unrunnable cell
#   WORK_DIR        scratch directory for outputs

foreach(var SWEEP_TOOL SWEEP_FILE BAD_SWEEP_FILE WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "sweep_parity.cmake: ${var} not set")
    endif()
endforeach()
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_sweep sweep jobs out_prefix expect_code)
    execute_process(
        COMMAND "${SWEEP_TOOL}" --sweep "${sweep}" --jobs "${jobs}"
                --json "${out_prefix}.json"
        OUTPUT_FILE "${out_prefix}.txt"
        ERROR_VARIABLE stderr_text
        RESULT_VARIABLE code)
    if(NOT code EQUAL expect_code)
        message(FATAL_ERROR
            "ssdrr_sweep --jobs ${jobs} on ${sweep}: expected exit "
            "${expect_code}, got ${code}\n${stderr_text}")
    endif()
endfunction()

function(require_identical a b what)
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E compare_files "${a}" "${b}"
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR
            "${what} differs between --jobs 1 and --jobs 4 "
            "(${a} vs ${b}) — the aggregate is not "
            "order-independent")
    endif()
endfunction()

run_sweep("${SWEEP_FILE}" 1 "${WORK_DIR}/grid_j1" 0)
run_sweep("${SWEEP_FILE}" 4 "${WORK_DIR}/grid_j4" 0)
require_identical("${WORK_DIR}/grid_j1.txt" "${WORK_DIR}/grid_j4.txt"
                  "text table")
require_identical("${WORK_DIR}/grid_j1.json"
                  "${WORK_DIR}/grid_j4.json" "JSON aggregate")

run_sweep("${BAD_SWEEP_FILE}" 1 "${WORK_DIR}/bad_j1" 3)
run_sweep("${BAD_SWEEP_FILE}" 4 "${WORK_DIR}/bad_j4" 3)
require_identical("${WORK_DIR}/bad_j1.txt" "${WORK_DIR}/bad_j4.txt"
                  "failing-cell text table")
require_identical("${WORK_DIR}/bad_j1.json" "${WORK_DIR}/bad_j4.json"
                  "failing-cell JSON aggregate")

# The failing grid must still report the healthy cells and carry the
# per-cell error message in the table.
file(READ "${WORK_DIR}/bad_j1.txt" bad_table)
if(NOT bad_table MATCHES "error")
    message(FATAL_ERROR "failing cell left no error row:\n${bad_table}")
endif()
if(NOT bad_table MATCHES "ok")
    message(FATAL_ERROR "healthy cells vanished from the failing "
                        "grid's table:\n${bad_table}")
endif()

message(STATUS "sweep aggregates byte-identical at --jobs 1 and 4")

/**
 * @file
 * ssdrr_sweep — grid-of-scenarios driver.
 *
 * Expands a sweep file (a base scenario plus axes of values, see
 * host/sweep.hh and docs/SWEEPS.md) into its cross product of
 * concrete scenarios, fans the cells out over a pool of worker
 * processes, and folds the per-cell results into one deterministic
 * aggregate: an aligned text table on stdout, optionally a JSON
 * document, and a stable digest. The aggregate is byte-identical for
 * any --jobs value and any cell completion order, so a sweep's
 * digest is a meaningful regression golden.
 *
 * Usage:
 *   ssdrr_sweep --sweep FILE [options]
 *     --jobs N           worker processes (default 1)
 *     --json PATH        also write the aggregate JSON document
 *     --check-digest F   compare the digest against golden file F
 *                        (first token = expected hex; exit 1 on
 *                        mismatch)
 *     --write-digest F   write/overwrite golden file F
 *     --cells-dir DIR    keep per-cell result files in DIR instead
 *                        of a deleted temp directory
 *     --list             print the expanded cells and exit
 *
 * Worker mode (internal; the pool invokes itself):
 *     --cell I --cell-out PATH   run cell I, write its rows to PATH
 *
 * Exit status: 0 = all cells ran; 1 = digest mismatch; 2 = bad
 * usage or a malformed sweep file; 3 = the aggregate was produced
 * but at least one cell failed (its rows carry status "error").
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "host/sweep.hh"

using namespace ssdrr;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --sweep FILE [--jobs N] [--json PATH]\n"
        "  [--check-digest FILE | --write-digest FILE]\n"
        "  [--cells-dir DIR] [--list]\n"
        "worker mode: --cell I --cell-out PATH\n",
        argv0);
    std::exit(2);
}

[[noreturn]] void
fail(const std::string &msg)
{
    std::fprintf(stderr, "ssdrr_sweep: %s\n", msg.c_str());
    std::exit(2);
}

struct Options {
    std::string sweepFile;
    std::string jsonOut;
    std::string checkDigest;
    std::string writeDigest;
    std::string cellsDir;
    unsigned jobs = 1;
    bool list = false;
    long cell = -1;
    std::string cellOut;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fail(std::string(flag) + ": missing value");
            return argv[++i];
        };
        if (a == "--sweep") {
            opt.sweepFile = next("--sweep");
        } else if (a == "--jobs") {
            const char *v = next("--jobs");
            char *end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (end == v || *end || n < 1)
                fail("--jobs: expected a positive integer, got '" +
                     std::string(v) + "'");
            opt.jobs = static_cast<unsigned>(n);
        } else if (a == "--json") {
            opt.jsonOut = next("--json");
        } else if (a == "--check-digest") {
            opt.checkDigest = next("--check-digest");
        } else if (a == "--write-digest") {
            opt.writeDigest = next("--write-digest");
        } else if (a == "--cells-dir") {
            opt.cellsDir = next("--cells-dir");
        } else if (a == "--list") {
            opt.list = true;
        } else if (a == "--cell") {
            const char *v = next("--cell");
            char *end = nullptr;
            opt.cell = std::strtol(v, &end, 10);
            if (end == v || *end || opt.cell < 0)
                fail("--cell: expected a cell index, got '" +
                     std::string(v) + "'");
        } else if (a == "--cell-out") {
            opt.cellOut = next("--cell-out");
        } else {
            usage(argv[0]);
        }
    }
    if (opt.sweepFile.empty())
        usage(argv[0]);
    if ((opt.cell >= 0) != !opt.cellOut.empty())
        fail("--cell and --cell-out must be given together");
    return opt;
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        fail("cannot write '" + path + "'");
    out << text;
}

/**
 * Worker mode: run one cell and leave its rows (or an error row) at
 * --cell-out. The exit status is the cell's status; the parent reads
 * the file either way, so a failed cell still reports *why* in its
 * own row instead of poisoning the aggregate.
 */
int
runWorker(const host::SweepSpec &sweep, const Options &opt)
{
    const std::size_t cell = static_cast<std::size_t>(opt.cell);
    if (cell >= sweep.cells())
        fail("--cell: index " + std::to_string(cell) +
             " out of range (sweep has " +
             std::to_string(sweep.cells()) + " cells)");
    try {
        writeText(opt.cellOut,
                  host::runSweepCell(sweep, cell).dump(2) + "\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ssdrr_sweep: cell %zu: %s\n", cell,
                     e.what());
        writeText(opt.cellOut,
                  host::sweepErrorRow(sweep, cell, 2, e.what())
                          .dump(2) +
                      "\n");
        return 2;
    }
}

std::string
cellPath(const std::string &dir, std::size_t cell)
{
    return dir + "/cell_" + std::to_string(cell) + ".json";
}

/** Fork/exec this binary in worker mode for one cell. */
pid_t
spawnWorker(const std::string &self, const Options &opt,
            const std::string &dir, std::size_t cell)
{
    const pid_t pid = fork();
    if (pid < 0)
        fail(std::string("fork: ") + std::strerror(errno));
    if (pid == 0) {
        const std::string idx = std::to_string(cell);
        const std::string out = cellPath(dir, cell);
        execl(self.c_str(), "ssdrr_sweep", "--sweep",
              opt.sweepFile.c_str(), "--cell", idx.c_str(),
              "--cell-out", out.c_str(), (char *)nullptr);
        std::fprintf(stderr, "ssdrr_sweep: exec %s: %s\n",
                     self.c_str(), std::strerror(errno));
        std::_Exit(127);
    }
    return pid;
}

int
runPool(const host::SweepSpec &sweep, const Options &opt,
        const char *argv0)
{
    const std::size_t cells = sweep.cells();

    std::string dir = opt.cellsDir;
    bool cleanup = false;
    if (dir.empty()) {
        char tmpl[] = "/tmp/ssdrr_sweep.XXXXXX";
        if (!mkdtemp(tmpl))
            fail(std::string("mkdtemp: ") + std::strerror(errno));
        dir = tmpl;
        cleanup = true;
    }

    // /proc/self/exe survives PATH-less invocation and chdir; fall
    // back to argv[0] on exotic setups.
    std::string self = "/proc/self/exe";
    if (access(self.c_str(), X_OK) != 0)
        self = argv0;

    std::map<pid_t, std::size_t> running;
    std::vector<int> exit_code(cells, -1);
    std::size_t next = 0;
    const auto reap = [&]() {
        int status = 0;
        const pid_t pid = waitpid(-1, &status, 0);
        if (pid < 0)
            fail(std::string("waitpid: ") + std::strerror(errno));
        const auto it = running.find(pid);
        if (it == running.end())
            return;
        exit_code[it->second] =
            WIFEXITED(status) ? WEXITSTATUS(status) : 128;
        running.erase(it);
    };
    while (next < cells || !running.empty()) {
        if (next < cells && running.size() < opt.jobs) {
            running.emplace(spawnWorker(self, opt, dir, next), next);
            ++next;
        } else {
            reap();
        }
    }

    // Collect per-cell files in cell order — the aggregate's bytes
    // depend only on the cells' contents, never on completion order
    // or the job count.
    std::vector<sim::json::Value> results(cells);
    std::size_t failed = 0;
    for (std::size_t i = 0; i < cells; ++i) {
        if (exit_code[i] != 0)
            ++failed;
        std::ifstream in(cellPath(dir, i));
        std::ostringstream buf;
        bool ok = static_cast<bool>(in);
        if (ok)
            buf << in.rdbuf();
        std::string err;
        sim::json::Value v;
        if (ok)
            v = sim::json::parse(buf.str(), &err);
        if (!ok || !err.empty())
            v = host::sweepErrorRow(
                sweep, i, exit_code[i],
                "worker exited with status " +
                    std::to_string(exit_code[i]) +
                    " and left no result");
        results[i] = std::move(v);
        if (cleanup)
            ::unlink(cellPath(dir, i).c_str());
    }
    if (cleanup)
        ::rmdir(dir.c_str());

    const sim::json::Value agg = host::aggregateSweep(sweep, results);
    const std::string digest = host::sweepDigest(agg);
    std::fputs(host::sweepTable(agg).c_str(), stdout);
    if (!opt.jsonOut.empty())
        writeText(opt.jsonOut, agg.dump(2) + "\n");
    if (!opt.writeDigest.empty())
        writeText(opt.writeDigest,
                  digest + " ssdrr_sweep aggregate digest (" +
                      std::to_string(cells) + " cells)\n");
    if (!opt.checkDigest.empty()) {
        std::ifstream in(opt.checkDigest);
        std::string expected;
        if (!(in >> expected))
            fail("cannot read golden digest file '" +
                 opt.checkDigest + "'");
        if (expected != digest) {
            std::fprintf(stderr,
                         "ssdrr_sweep: digest mismatch: expected %s "
                         "(from %s), got %s\n",
                         expected.c_str(), opt.checkDigest.c_str(),
                         digest.c_str());
            return 1;
        }
        std::fprintf(stderr, "sweep digest matches %s\n",
                     opt.checkDigest.c_str());
    }
    return failed ? 3 : 0;
}

int
realMain(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    host::SweepSpec sweep;
    try {
        sweep = host::SweepSpec::loadFile(opt.sweepFile);
    } catch (const host::SpecError &e) {
        fail(e.what());
    }
    if (opt.list) {
        std::printf("%zu cells:\n", sweep.cells());
        for (std::size_t i = 0; i < sweep.cells(); ++i)
            std::printf("  %4zu: %s\n", i, sweep.label(i).c_str());
        return 0;
    }
    if (opt.cell >= 0)
        return runWorker(sweep, opt);
    return runPool(sweep, opt, argv[0]);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ssdrr_sweep: error: %s\n", e.what());
        return 2;
    }
}

/**
 * @file
 * ssdrr_sim — command-line driver for the SSD read-retry simulator.
 *
 * Runs one workload (a Table-2 synthetic spec by name, or an
 * MSR-Cambridge CSV file) against one or more mechanisms at a chosen
 * operating point, and prints a comparison table. This is the
 * day-to-day entry point for exploring configurations without
 * writing C++.
 *
 * Usage:
 *   ssdrr_sim [options]
 *     --workload NAME|PATH.csv   workload (default usr_1)
 *     --mechanisms A,B,...       comma list (default
 *                                Baseline,PR2,AR2,PnAR2,NoRR)
 *     --pec K                    kilo P/E cycles (default 1.0)
 *     --retention MONTHS         retention age (default 6.0)
 *     --temperature C            operating temperature (default 30)
 *     --requests N               synthetic trace length (default 2000)
 *     --iops RATE                override the spec's arrival rate
 *     --refresh MONTHS           read-reclaim threshold (default off)
 *     --no-suspension            disable program/erase suspension
 *     --paper-geometry           full 512-GiB-class SSD (slower)
 *     --seed N                   RNG seed (default 42)
 *     --profile                  print the trace profile and exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ssd/ssd.hh"
#include "workload/export.hh"
#include "workload/msr_parser.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

namespace {

struct Options {
    std::string workload = "usr_1";
    std::vector<std::string> mechanisms = {"Baseline", "PR2", "AR2",
                                           "PnAR2", "NoRR"};
    double pec = 1.0;
    double retention = 6.0;
    double temperature = 30.0;
    std::uint64_t requests = 2000;
    double iops = 0.0;
    double refresh = 0.0;
    bool suspension = true;
    bool paperGeometry = false;
    std::uint64_t seed = 42;
    bool profileOnly = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME|PATH.csv] "
                 "[--mechanisms A,B,...] [--pec K]\n"
                 "  [--retention MONTHS] [--temperature C] "
                 "[--requests N] [--iops RATE]\n"
                 "  [--refresh MONTHS] [--no-suspension] "
                 "[--paper-geometry] [--seed N] [--profile]\n",
                 argv0);
    std::exit(2);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::size_t end = comma == std::string::npos ? s.size()
                                                           : comma;
        if (end > pos)
            out.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload") {
            opt.workload = next();
        } else if (arg == "--mechanisms") {
            opt.mechanisms = splitCommas(next());
        } else if (arg == "--pec") {
            opt.pec = std::atof(next());
        } else if (arg == "--retention") {
            opt.retention = std::atof(next());
        } else if (arg == "--temperature") {
            opt.temperature = std::atof(next());
        } else if (arg == "--requests") {
            opt.requests = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--iops") {
            opt.iops = std::atof(next());
        } else if (arg == "--refresh") {
            opt.refresh = std::atof(next());
        } else if (arg == "--no-suspension") {
            opt.suspension = false;
        } else if (arg == "--paper-geometry") {
            opt.paperGeometry = true;
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--profile") {
            opt.profileOnly = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
        }
    }
    return opt;
}

bool
looksLikePath(const std::string &w)
{
    return w.find('/') != std::string::npos ||
           (w.size() > 4 && w.substr(w.size() - 4) == ".csv");
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    ssd::Config cfg =
        opt.paperGeometry ? ssd::Config::paper() : ssd::Config::small();
    cfg.basePeKilo = opt.pec;
    cfg.baseRetentionMonths = opt.retention;
    cfg.temperatureC = opt.temperature;
    cfg.refreshThresholdMonths = opt.refresh;
    cfg.suspension = opt.suspension;
    cfg.seed = opt.seed;

    // Load or generate the workload.
    workload::Trace trace;
    if (looksLikePath(opt.workload)) {
        workload::MsrParseOptions popt;
        popt.pageBytes = cfg.pageBytes;
        trace = workload::loadMsrTrace(opt.workload, popt);
        // Fold foreign LPNs into our logical space.
        std::vector<workload::TraceRecord> recs = trace.records();
        const std::uint64_t space = cfg.logicalPages();
        for (auto &r : recs) {
            r.lpn %= space;
            if (r.lpn + r.pages > space)
                r.lpn = space - r.pages;
        }
        trace = workload::Trace(trace.name(), std::move(recs));
    } else {
        workload::SyntheticSpec spec =
            workload::findWorkload(opt.workload);
        if (opt.iops > 0.0)
            spec.iops = opt.iops;
        trace = workload::generateSynthetic(spec, cfg.logicalPages(),
                                            opt.requests, opt.seed);
    }

    std::fputs(
        workload::formatProfile(workload::profileTrace(trace),
                                trace.name())
            .c_str(),
        stdout);
    if (opt.profileOnly)
        return 0;

    std::printf("\nSSD: %s geometry, %.1fK P/E, %.0f-month retention, "
                "%.0f C%s%s\n\n",
                opt.paperGeometry ? "paper" : "small", opt.pec,
                opt.retention, opt.temperature,
                opt.refresh > 0.0 ? ", refresh on" : "",
                opt.suspension ? "" : ", suspension off");
    std::printf("%-16s %10s %10s %10s %8s %9s %9s\n", "mechanism",
                "avg[us]", "read[us]", "p99[us]", "steps", "suspends",
                "refreshes");

    double baseline = 0.0;
    for (const std::string &name : opt.mechanisms) {
        const core::Mechanism mech = core::parseMechanism(name);
        ssd::Ssd ssd(cfg, mech);
        const ssd::RunStats st = ssd.replay(trace);
        if (baseline == 0.0)
            baseline = st.avgResponseUs;
        std::printf("%-16s %10.1f %10.1f %10.1f %8.2f %9llu %9llu"
                    "   (%+.1f%%)\n",
                    name.c_str(), st.avgResponseUs,
                    st.avgReadResponseUs, st.p99ResponseUs,
                    st.avgRetrySteps,
                    static_cast<unsigned long long>(st.suspensions),
                    static_cast<unsigned long long>(st.refreshes),
                    100.0 * (st.avgResponseUs / baseline - 1.0));
    }
    return 0;
}

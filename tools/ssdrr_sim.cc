/**
 * @file
 * ssdrr_sim — command-line driver for the SSD read-retry simulator.
 *
 * Runs one workload (a Table-2 synthetic spec by name, or an
 * MSR-Cambridge CSV file) against one or more mechanisms at a chosen
 * operating point, and prints a comparison table. This is the
 * day-to-day entry point for exploring configurations without
 * writing C++.
 *
 * Usage:
 *   ssdrr_sim [options]
 *     --workload NAME|PATH.csv   workload (default usr_1)
 *     --mechanisms A,B,...       comma list (default
 *                                Baseline,PR2,AR2,PnAR2,NoRR)
 *     --pec K                    kilo P/E cycles (default 1.0)
 *     --retention MONTHS         retention age (default 6.0)
 *     --temperature C            operating temperature (default 30)
 *     --requests N               synthetic trace length (default 2000)
 *     --iops RATE                override the spec's arrival rate
 *     --refresh MONTHS           read-reclaim threshold (default off)
 *     --no-suspension            disable program/erase suspension
 *     --paper-geometry           full 512-GiB-class SSD (slower)
 *     --seed N                   RNG seed (default 42)
 *     --profile                  print the trace profile and exit
 *     --list-workloads           print the Table-2 suite and exit
 *
 * Multi-tenant mode (host/array layer; enabled by --tenants):
 *     --tenants T                tenants, each on its own queue pair
 *     --queue-depth D            SQ depth / closed-loop QD (default 16)
 *     --arbitration rr|wrr       command-fetch arbitration (default rr;
 *                                wrr gives tenant i weight i+1; the
 *                                slo policy needs per-tenant sloUs
 *                                values, so it is scenario-file-only)
 *     --array N                  array of N drives
 *     --raid LEVEL               array layout: raid0 (striping,
 *                                default) or raid5 (rotating parity,
 *                                read-modify-write parity updates,
 *                                degraded-read reconstruction;
 *                                needs --array >= 3)
 *     --stripe-unit N            RAID-5 stripe-unit pages (default 1)
 *     --failed-drives A,B,...    failed member drives (RAID-5 serves
 *                                their data by reconstructing from
 *                                the surviving stripe mates)
 *     --open-loop                inject at trace arrival times instead
 *                                of closed-loop
 *     --host-link-us X           host dispatch/completion turnaround
 *                                in microseconds (default 0 =
 *                                instantaneous coupling on one shared
 *                                event queue; > 0 models the NVMe
 *                                doorbell/interrupt path and runs
 *                                drives on private event queues)
 *     --transfer-us-per-kb X     size-proportional link transfer cost
 *                                charged per host command on dispatch
 *                                and completion (default 0; sugar for
 *                                an implicit "xfer" filter)
 *     --cache-mb N               host-side DRAM read cache of N MiB
 *                                (a "cache" filter on the chain; hits
 *                                complete in DRAM latency without
 *                                touching the array)
 *     --readahead PAGES          prefetch PAGES pages beyond detected
 *                                sequential read streams (a
 *                                "readahead" filter, stacked above
 *                                the cache so prefetches fill it)
 *     --fault K=V,...            append a fault event to the run's
 *                                timeline (repeatable). Keys are the
 *                                scenario-file fields: type=failStop|
 *                                failSlow|uecc, drive=N, atUs=X, and
 *                                per-type untilUs=X, multiplier=X,
 *                                probability=X, rebuild=true|false,
 *                                rebuildRows=N
 *     --timeout-us X             per-subrequest deadline (scenario
 *                                host.timeoutUs; required by any
 *                                failStop fault)
 *     --fabric PRESET            storage-fabric preset between host
 *                                and drives (scenario "fabric"
 *                                object): "flat" = one direct link
 *                                per drive, "tree:SxD" = S switches
 *                                with D drives each (SxD must equal
 *                                --array). Mutually exclusive with
 *                                --host-link-us; adds a "fabric"
 *                                output row per mechanism
 *
 * Scenario files (declarative API v2; see README "Scenario files"
 * and docs/SCENARIOS.md):
 *     --scenario FILE.json       run a serialized ScenarioSpec; the
 *                                file defines geometry, mechanisms,
 *                                array shape, host options and
 *                                tenants (QoS, channel affinity,
 *                                time horizons)
 *     --dump-scenario            print the scenario the flags above
 *                                describe (or a canonicalized
 *                                --scenario file) as JSON and exit
 *
 * Execution (allowed with either mode; never changes results):
 *     --threads N                worker threads for the sharded
 *                                per-drive engine (default 1; 0 =
 *                                use the machine's hardware
 *                                concurrency; anything but 1 needs
 *                                a positive host link —
 *                                --host-link-us or the scenario's
 *                                host.hostLinkUs). Overrides a
 *                                scenario file's "threads" field.
 *                                Results are bit-identical for every
 *                                N.
 *
 * A legacy multi-tenant invocation is sugar for a scenario: the
 * flags build a ScenarioSpec internally, so `--dump-scenario`'s JSON
 * rerun through `--scenario` produces bit-identical results.
 *
 * All flag-validation failures exit with status 2 and name the
 * offending flag.
 *
 * Perf trajectory:
 *     --bench-json PATH          also write a BENCH_sim_throughput
 *                                JSON (wall time, events/sec,
 *                                reads/sec and the deterministic
 *                                result digest, one entry per
 *                                mechanism) for the run
 */

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <string>
#include <vector>

#include "fabric/topology.hh"
#include "host/scenario.hh"
#include "host/scenario_spec.hh"
#include "sim/bench_report.hh"
#include "ssd/ssd.hh"
#include "workload/export.hh"
#include "workload/msr_parser.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

namespace {

struct Options {
    std::string workload = "usr_1";
    std::vector<std::string> mechanisms = {"Baseline", "PR2", "AR2",
                                           "PnAR2", "NoRR"};
    double pec = 1.0;
    double retention = 6.0;
    double temperature = 30.0;
    std::uint64_t requests = 2000;
    double iops = 0.0;
    double refresh = 0.0;
    bool suspension = true;
    bool paperGeometry = false;
    std::uint64_t seed = 42;
    bool profileOnly = false;
    std::uint32_t tenants = 0; ///< 0 = legacy single-replay mode
    std::uint32_t queueDepth = 16;
    std::string arbitration = "rr";
    std::uint32_t array = 1;
    std::string raid = "raid0";
    std::uint32_t stripeUnit = 1;
    std::vector<std::uint32_t> failedDrives;
    bool openLoop = false;
    double hostLinkUs = 0.0;
    double transferUsPerKb = 0.0;
    /** Fabric preset name ("flat", "tree:SxD"; "" = no fabric). */
    std::string fabricPreset;
    /** Host DRAM read cache in MiB (0 = no cache filter). */
    std::uint32_t cacheMb = 0;
    /** Readahead window in pages (0 = no readahead filter). */
    std::uint32_t readaheadPages = 0;
    /** Fault timeline from --fault flags (empty = faultless). */
    std::vector<host::FaultSpec> faults;
    /** Per-subrequest deadline in microseconds (0 = off). */
    double timeoutUs = 0.0;
    std::uint32_t threads = 1;
    bool threadsSet = false;
    /** Scenario-file mode (mutually exclusive with legacy flags). */
    std::string scenarioPath;
    bool dumpScenario = false;
    bool listWorkloads = false;
    /** Perf-trajectory JSON output path (empty = off). */
    std::string benchJson;
    /** Host-layer flags seen on the command line (for validation). */
    std::vector<std::string> hostFlags;
    /** Any legacy (non-scenario) flag seen, for --scenario checks. */
    std::vector<std::string> legacyFlags;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME|PATH.csv] "
                 "[--mechanisms A,B,...] [--pec K]\n"
                 "  [--retention MONTHS] [--temperature C] "
                 "[--requests N] [--iops RATE]\n"
                 "  [--refresh MONTHS] [--no-suspension] "
                 "[--paper-geometry] [--seed N] [--profile]\n"
                 "  [--tenants T] [--queue-depth D] "
                 "[--arbitration rr|wrr] [--array N] "
                 "[--open-loop]\n"
                 "  [--raid raid0|raid5] [--stripe-unit N] "
                 "[--failed-drives A,B,...]\n"
                 "  [--host-link-us X] [--transfer-us-per-kb X] "
                 "[--fabric flat|tree:SxD] [--threads N]\n"
                 "  [--cache-mb N] [--readahead PAGES] "
                 "[--fault K=V,...] [--timeout-us X]\n"
                 "  [--scenario FILE.json] [--dump-scenario] "
                 "[--list-workloads] [--bench-json PATH]\n",
                 argv0);
    std::exit(2);
}

/** Flag-validation failure: name the flag, explain, exit 2. */
[[noreturn]] void
flagError(const std::string &flag, const std::string &msg)
{
    std::fprintf(stderr, "ssdrr_sim: %s: %s\n", flag.c_str(),
                 msg.c_str());
    std::exit(2);
}

std::uint64_t
parseUint(const std::string &flag, const char *text)
{
    // strtoull accepts a sign and wraps negatives/overflow; both
    // must be rejected or they defeat every downstream range check.
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || text[0] == '-' ||
        errno == ERANGE)
        flagError(flag, std::string("expected a non-negative "
                                    "integer, got '") +
                            text + "'");
    return static_cast<std::uint64_t>(v);
}

std::uint32_t
parseUint32(const std::string &flag, const char *text)
{
    const std::uint64_t v = parseUint(flag, text);
    if (v > std::numeric_limits<std::uint32_t>::max())
        flagError(flag, std::string("value '") + text +
                            "' is out of range");
    return static_cast<std::uint32_t>(v);
}

double
parseDouble(const std::string &flag, const char *text)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || !std::isfinite(v))
        flagError(flag,
                  std::string("expected a finite number, got '") +
                      text + "'");
    return v;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::size_t end = comma == std::string::npos ? s.size()
                                                           : comma;
        if (end > pos)
            out.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

/** Parse one --fault K=V,... value (keys = scenario-file fields). */
host::FaultSpec
parseFault(const std::string &flag, const char *text)
{
    host::FaultSpec f;
    for (const std::string &kv : splitCommas(text)) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == kv.size())
            flagError(flag,
                      "expected key=value, got '" + kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "type") {
            f.type = val;
        } else if (key == "drive") {
            f.drive = parseUint32(flag, val.c_str());
        } else if (key == "atUs") {
            f.atUs = parseDouble(flag, val.c_str());
        } else if (key == "untilUs") {
            f.untilUs = parseDouble(flag, val.c_str());
        } else if (key == "multiplier") {
            f.multiplier = parseDouble(flag, val.c_str());
        } else if (key == "probability") {
            f.probability = parseDouble(flag, val.c_str());
        } else if (key == "rebuild") {
            if (val != "true" && val != "false")
                flagError(flag, "rebuild expects true or false, "
                                "got '" +
                                    val + "'");
            f.rebuild = val == "true";
        } else if (key == "rebuildRows") {
            f.rebuildRows = parseUint(flag, val.c_str());
        } else {
            flagError(flag, "unknown key '" + key +
                                "' (known: type, drive, atUs, "
                                "untilUs, multiplier, probability, "
                                "rebuild, rebuildRows)");
        }
    }
    return f;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        auto legacy = [&] { opt.legacyFlags.push_back(arg); };
        if (arg == "--workload") {
            opt.workload = next();
            legacy();
        } else if (arg == "--mechanisms") {
            opt.mechanisms = splitCommas(next());
            legacy();
        } else if (arg == "--pec") {
            opt.pec = parseDouble(arg, next());
            legacy();
        } else if (arg == "--retention") {
            opt.retention = parseDouble(arg, next());
            legacy();
        } else if (arg == "--temperature") {
            opt.temperature = parseDouble(arg, next());
            legacy();
        } else if (arg == "--requests") {
            opt.requests = parseUint(arg, next());
            legacy();
        } else if (arg == "--iops") {
            opt.iops = parseDouble(arg, next());
            legacy();
        } else if (arg == "--refresh") {
            opt.refresh = parseDouble(arg, next());
            legacy();
        } else if (arg == "--no-suspension") {
            opt.suspension = false;
            legacy();
        } else if (arg == "--paper-geometry") {
            opt.paperGeometry = true;
            legacy();
        } else if (arg == "--seed") {
            opt.seed = parseUint(arg, next());
            legacy();
        } else if (arg == "--profile") {
            opt.profileOnly = true;
            legacy();
        } else if (arg == "--tenants") {
            opt.tenants =
                parseUint32(arg, next());
            legacy();
        } else if (arg == "--queue-depth") {
            opt.queueDepth =
                parseUint32(arg, next());
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--arbitration") {
            opt.arbitration = next();
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--array") {
            opt.array =
                parseUint32(arg, next());
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--raid") {
            opt.raid = next();
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--stripe-unit") {
            opt.stripeUnit = parseUint32(arg, next());
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--failed-drives") {
            opt.failedDrives.clear();
            for (const std::string &d : splitCommas(next()))
                opt.failedDrives.push_back(
                    parseUint32(arg, d.c_str()));
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--open-loop") {
            opt.openLoop = true;
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--transfer-us-per-kb") {
            opt.transferUsPerKb = parseDouble(arg, next());
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--host-link-us") {
            opt.hostLinkUs = parseDouble(arg, next());
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--fabric") {
            opt.fabricPreset = next();
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--cache-mb") {
            opt.cacheMb = parseUint32(arg, next());
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--readahead") {
            opt.readaheadPages = parseUint32(arg, next());
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--fault") {
            opt.faults.push_back(parseFault(arg, next()));
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--timeout-us") {
            opt.timeoutUs = parseDouble(arg, next());
            opt.hostFlags.push_back(arg);
            legacy();
        } else if (arg == "--threads") {
            // An execution knob, not a scenario property: legal with
            // --scenario too (it overrides the file's "threads") and
            // never changes simulation results.
            opt.threads = parseUint32(arg, next());
            opt.threadsSet = true;
        } else if (arg == "--scenario") {
            opt.scenarioPath = next();
        } else if (arg == "--dump-scenario") {
            opt.dumpScenario = true;
        } else if (arg == "--list-workloads") {
            opt.listWorkloads = true;
        } else if (arg == "--bench-json") {
            opt.benchJson = next();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
        }
    }
    return opt;
}

/** Fold one mechanism's run into a perf-trajectory entry. */
sim::BenchRun
benchRunFrom(const std::string &name, const ssd::RunStats &st,
             double wall_seconds)
{
    sim::BenchRun run;
    run.name = name;
    run.wallSeconds = wall_seconds;
    run.executedEvents = st.executedEvents;
    run.reads = st.reads;
    run.writes = st.writes;
    run.retrySamples = st.retrySamples;
    run.avgRetrySteps = st.avgRetrySteps;
    run.suspensions = st.suspensions;
    run.gcCollections = st.gcCollections;
    run.readFailures = st.readFailures;
    run.refreshes = st.refreshes;
    run.simulatedMs = st.simulatedMs;
    run.p50ReadUs = st.p50ReadResponseUs;
    run.p99ReadUs = st.p99ReadResponseUs;
    run.p999ReadUs = st.p999ReadResponseUs;
    run.profileCacheHits = st.profileCacheHits;
    run.profileCacheMisses = st.profileCacheMisses;
    run.cacheHits = st.cacheHits;
    run.cacheMisses = st.cacheMisses;
    run.cacheEvictions = st.cacheEvictions;
    run.prefetchIssued = st.prefetchIssued;
    run.prefetchUseful = st.prefetchUseful;
    run.hostP99ReadUs = st.p99HostReadUs;
    run.hostTimeouts = st.hostTimeouts;
    run.hostRetries = st.hostRetries;
    run.hostFailovers = st.hostFailovers;
    run.ueccReads = st.ueccReads;
    run.failedRequests = st.failedRequests;
    run.rebuildReads = st.rebuildReads;
    run.timeToRebuildMs = st.timeToRebuildMs;
    run.avgFabricWaitUs = st.avgFabricWaitUs;
    for (const ssd::RunStats::FabricLinkStats &l : st.fabricLinks) {
        run.fabricBusyUs += l.busyUs;
        run.fabricBytes += l.bytesCarried;
        if (l.maxQueueDepth > run.fabricMaxQueueDepth)
            run.fabricMaxQueueDepth = l.maxQueueDepth;
    }
    if (wall_seconds > 0.0) {
        run.eventsPerSecond =
            static_cast<double>(st.executedEvents) / wall_seconds;
        run.readsPerSecond =
            static_cast<double>(st.reads) / wall_seconds;
    }
    return run;
}

/** Build the scenario a legacy multi-tenant invocation describes. */
host::ScenarioSpec
specFromFlags(const Options &opt)
{
    host::ScenarioSpec spec;
    spec.ssd.geometry = opt.paperGeometry ? "paper" : "small";
    spec.ssd.pecKilo = opt.pec;
    spec.ssd.retentionMonths = opt.retention;
    spec.ssd.temperatureC = opt.temperature;
    spec.ssd.refreshMonths = opt.refresh;
    spec.ssd.suspension = opt.suspension;
    spec.ssd.seed = opt.seed;
    spec.mechanisms = opt.mechanisms;
    spec.drives = opt.array;
    spec.raidLevel = opt.raid;
    spec.stripeUnitPages = opt.stripeUnit;
    spec.failedDrives = opt.failedDrives;
    spec.faults = opt.faults;
    spec.timeoutUs = opt.timeoutUs;
    spec.threads = opt.threads;
    spec.queueDepth = opt.queueDepth;
    spec.arbitration = opt.arbitration;
    spec.hostLinkUs = opt.hostLinkUs;
    spec.transferUsPerKb = opt.transferUsPerKb;
    if (!opt.fabricPreset.empty()) {
        try {
            spec.fabric =
                fabric::makePreset(opt.fabricPreset, opt.array);
        } catch (const fabric::TopologyError &e) {
            flagError("--fabric", e.what());
        }
    }
    // Readahead stacks above the cache (chain order = array order):
    // its prefetch completions travel up through the cache filter and
    // fill it, so the stream's next demand read hits in DRAM.
    if (opt.readaheadPages > 0) {
        host::filter::FilterSpec f;
        f.type = "readahead";
        f.windowPages = opt.readaheadPages;
        spec.filters.push_back(f);
    }
    if (opt.cacheMb > 0) {
        host::filter::FilterSpec f;
        f.type = "cache";
        f.sizeBytes = std::uint64_t{opt.cacheMb} << 20;
        spec.filters.push_back(f);
    }

    const bool wrr = opt.arbitration == "wrr";
    // Keep total work comparable to the single-replay mode: the
    // request budget is split across tenants.
    const std::uint64_t per_tenant =
        opt.requests / opt.tenants > 0 ? opt.requests / opt.tenants : 1;
    for (std::uint32_t t = 0; t < opt.tenants; ++t) {
        host::TenantSpec ts;
        ts.workload = opt.workload;
        ts.name = opt.workload + "#" + std::to_string(t);
        ts.requests = per_tenant;
        ts.iops = opt.iops;
        ts.mode = opt.openLoop ? host::InjectionMode::OpenLoop
                               : host::InjectionMode::ClosedLoop;
        ts.qdLimit = opt.queueDepth;
        ts.weight = wrr ? t + 1 : 1;
        spec.tenants.push_back(ts);
    }
    return spec;
}

/**
 * Host/array mode: run every mechanism of @p spec's sweep and print
 * the per-tenant comparison table. @p label names the bench-JSON
 * entry ("" = derive from the spec).
 */
int
runSpec(const host::ScenarioSpec &spec, const std::string &bench_json,
        const std::string &label)
{
    const host::TenantSpec &t0 = spec.tenants.front();
    bool homogeneous = true;
    for (const host::TenantSpec &ts : spec.tenants)
        if (ts.workload != t0.workload || ts.requests != t0.requests ||
            ts.mode != t0.mode)
            homogeneous = false;
    const std::uint32_t n_tenants =
        static_cast<std::uint32_t>(spec.tenants.size());
    const char *loop_name =
        t0.mode == host::InjectionMode::OpenLoop ? "open-loop"
                                                 : "closed-loop";
    if (homogeneous && host::looksLikeTracePath(t0.workload))
        std::printf("Multi-tenant: %u tenants splitting %s (%s), "
                    "QD %u, %s arbitration, %u-drive array\n",
                    n_tenants, t0.workload.c_str(), loop_name,
                    spec.queueDepth, spec.arbitration.c_str(),
                    spec.drives);
    else if (homogeneous)
        std::printf("Multi-tenant: %u tenants x %llu reqs (%s), "
                    "QD %u, %s arbitration, %u-drive array\n",
                    n_tenants,
                    static_cast<unsigned long long>(t0.requests),
                    loop_name, spec.queueDepth,
                    spec.arbitration.c_str(), spec.drives);
    else
        std::printf("Multi-tenant scenario%s%s: %u tenants, QD %u, "
                    "%s arbitration, %u-drive array\n",
                    spec.name.empty() ? "" : " ",
                    spec.name.c_str(), n_tenants, spec.queueDepth,
                    spec.arbitration.c_str(), spec.drives);
    std::printf("SSD: %s geometry per drive, %.1fK P/E, "
                "%.0f-month retention, %.0f C\n\n",
                spec.ssd.geometry.c_str(), spec.ssd.pecKilo,
                spec.ssd.retentionMonths, spec.ssd.temperatureC);
    std::printf("%-10s %-14s %3s %6s %10s %10s %10s %10s\n",
                "mechanism", "tenant", "w", "reqs", "avg[us]",
                "p50[us]", "p99[us]", "p99.9[us]");

    host::TraceCache trace_cache; // parse a CSV once for the sweep
    std::vector<sim::BenchRun> bench_runs;
    for (const std::string &mname : spec.mechanisms) {
        const core::Mechanism mech = core::parseMechanism(mname);
        const auto t0_wall = std::chrono::steady_clock::now();
        const host::ScenarioResult res =
            host::runScenario(spec, mech, &trace_cache);
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0_wall)
                .count();
        bench_runs.push_back(benchRunFrom(mname, res.array, wall));
        for (std::size_t t = 0; t < res.tenants.size(); ++t) {
            const host::TenantStats &s = res.tenants[t];
            std::printf("%-10s %-14s %3u %6llu %10.1f %10.1f %10.1f "
                        "%10.1f\n",
                        mname.c_str(), s.name.c_str(),
                        spec.tenants[t].weight,
                        static_cast<unsigned long long>(s.completed),
                        s.avgUs, s.p50Us, s.p99Us, s.p999Us);
        }
        const ssd::RunStats &a = res.array;
        std::printf("%-10s %-14s %3s %6llu %10.1f %10.1f %10.1f "
                    "%10.1f\n",
                    mname.c_str(), "all(reads)", "-",
                    static_cast<unsigned long long>(a.reads),
                    a.avgReadResponseUs, a.p50ReadResponseUs,
                    a.p99ReadResponseUs, a.p999ReadResponseUs);
        // Degraded-mode accounting (RAID-5 with failed drives): the
        // per-class reconstruction tail next to the overall reads.
        if (a.degradedReads > 0)
            std::printf("%-10s %-14s %3s %6llu %10.1f %10.1f %10.1f "
                        "%10.1f\n",
                        mname.c_str(), "degraded(r)", "-",
                        static_cast<unsigned long long>(
                            a.degradedReads),
                        a.avgDegradedReadUs, a.p50DegradedReadUs,
                        a.p99DegradedReadUs, a.p999DegradedReadUs);
        // Host filter-chain accounting (host/filter/): the read
        // latency seen above the chain, plus per-filter counters.
        // All of this is zero — and silent — when the chain is empty.
        if (a.hostReads > 0)
            std::printf("%-10s %-14s %3s %6llu %10.1f %10.1f %10.1f "
                        "%10.1f\n",
                        mname.c_str(), "host(reads)", "-",
                        static_cast<unsigned long long>(a.hostReads),
                        a.avgHostReadUs, a.p50HostReadUs,
                        a.p99HostReadUs, a.p999HostReadUs);
        if (a.cacheHits + a.cacheMisses > 0)
            std::printf("%-10s %-14s     hits %llu/%llu (%.1f%%), "
                        "evictions %llu\n",
                        mname.c_str(), "cache",
                        static_cast<unsigned long long>(a.cacheHits),
                        static_cast<unsigned long long>(a.cacheHits +
                                                        a.cacheMisses),
                        100.0 * static_cast<double>(a.cacheHits) /
                            static_cast<double>(a.cacheHits +
                                                a.cacheMisses),
                        static_cast<unsigned long long>(
                            a.cacheEvictions));
        if (a.prefetchIssued > 0)
            std::printf("%-10s %-14s     issued %llu, useful %llu "
                        "(%.1f%%)\n",
                        mname.c_str(), "readahead",
                        static_cast<unsigned long long>(
                            a.prefetchIssued),
                        static_cast<unsigned long long>(
                            a.prefetchUseful),
                        100.0 *
                            static_cast<double>(a.prefetchUseful) /
                            static_cast<double>(a.prefetchIssued));
        if (a.splitRequests + a.coalescedRequests + a.delayedRequests +
                a.throttledRequests >
            0)
            std::printf("%-10s %-14s     split %llu, coalesced %llu, "
                        "delayed %llu, throttled %llu\n",
                        mname.c_str(), "shaping",
                        static_cast<unsigned long long>(
                            a.splitRequests),
                        static_cast<unsigned long long>(
                            a.coalescedRequests),
                        static_cast<unsigned long long>(
                            a.delayedRequests),
                        static_cast<unsigned long long>(
                            a.throttledRequests));
        // Fault-timeline accounting (sim/fault_injector.hh plus the
        // host's timeout/retry/failover machinery); all zero — and
        // silent — on a faultless run.
        if (a.hostTimeouts + a.hostRetries + a.hostFailovers +
                a.ueccReads + a.failedRequests >
            0)
            std::printf("%-10s %-14s     timeouts %llu, retries "
                        "%llu, failovers %llu, uecc %llu, "
                        "failed %llu\n",
                        mname.c_str(), "faults",
                        static_cast<unsigned long long>(
                            a.hostTimeouts),
                        static_cast<unsigned long long>(
                            a.hostRetries),
                        static_cast<unsigned long long>(
                            a.hostFailovers),
                        static_cast<unsigned long long>(a.ueccReads),
                        static_cast<unsigned long long>(
                            a.failedRequests));
        if (a.rebuildReads > 0)
            std::printf("%-10s %-14s     reads %llu, progress "
                        "%.1f%%, time-to-rebuild %.2f ms\n",
                        mname.c_str(), "rebuild",
                        static_cast<unsigned long long>(
                            a.rebuildReads),
                        100.0 * a.rebuildProgress,
                        a.timeToRebuildMs);
        // Storage-fabric accounting (fabric/): the per-read fabric
        // wait plus one row per link; empty — and silent — when the
        // scenario declares no fabric.
        if (!a.fabricLinks.empty()) {
            std::printf("%-10s %-14s     avg wait %.2f us/read\n",
                        mname.c_str(), "fabric", a.avgFabricWaitUs);
            for (const ssd::RunStats::FabricLinkStats &l :
                 a.fabricLinks)
                std::printf("%-10s   %-17s msgs %llu, KiB %llu, "
                            "busy %.1f us, maxQ %u\n",
                            mname.c_str(), l.link.c_str(),
                            static_cast<unsigned long long>(
                                l.messages),
                            static_cast<unsigned long long>(
                                l.bytesCarried >> 10),
                            l.busyUs, l.maxQueueDepth);
        }
    }
    if (!bench_json.empty()) {
        if (!sim::writeBenchJson(bench_json, label, bench_runs))
            return 1;
        std::printf("\nwrote %s\n", bench_json.c_str());
    }
    return 0;
}

/** Pre-validate legacy flags with their own names (exit 2). */
void
validateLegacyFlags(const Options &opt)
{
    for (const std::string &m : opt.mechanisms)
        if (!core::tryParseMechanism(m, nullptr))
            flagError("--mechanisms", "unknown mechanism '" + m + "'");
    if (opt.mechanisms.empty())
        flagError("--mechanisms", "needs at least one mechanism");
    if (!host::looksLikeTracePath(opt.workload) &&
        !workload::tryFindWorkload(opt.workload, nullptr))
        flagError("--workload", "unknown workload '" + opt.workload +
                                    "' (see --list-workloads, or "
                                    "name a .csv trace path)");
    if (opt.requests < 1)
        flagError("--requests", "needs at least 1 request");
    if (opt.pec < 0.0)
        flagError("--pec", "must be >= 0");
    if (opt.retention < 0.0)
        flagError("--retention", "must be >= 0");
    if (opt.refresh < 0.0)
        flagError("--refresh", "must be >= 0");
    if (opt.tenants > 0) {
        if (opt.profileOnly)
            flagError("--profile",
                      "not supported with --tenants (per-tenant "
                      "traces are generated inside the scenario); "
                      "drop --tenants to profile");
        if (opt.array < 1)
            flagError("--array", "needs at least 1 drive");
        if (opt.queueDepth < 1)
            flagError("--queue-depth", "needs at least 1");
        if (!host::tryParseArbitration(opt.arbitration, nullptr))
            flagError("--arbitration",
                      "unknown policy '" + opt.arbitration +
                          "' (expected rr or wrr)");
        if (opt.arbitration == "slo")
            // Legacy flags cannot express per-tenant SLOs, which the
            // policy requires; pointing at --scenario beats the
            // opaque "needs at least one tenant with sloUs" error.
            flagError("--arbitration",
                      "the slo policy needs per-tenant sloUs values, "
                      "which only scenario files express; use "
                      "--scenario (see README \"Scenario files\")");
        if (opt.iops > 0.0 && !opt.openLoop)
            // Closed-loop injection is completion-driven; trace
            // arrival times (and thus the requested rate) are never
            // consulted.
            flagError("--iops", "has no effect on closed-loop "
                                "tenants; add --open-loop");
        if (opt.iops < 0.0)
            flagError("--iops", "must be >= 0");
        if (!host::tryParseRaidLevel(opt.raid, nullptr))
            flagError("--raid", "unknown level '" + opt.raid +
                                    "' (expected raid0 or raid5)");
        if (opt.stripeUnit < 1)
            flagError("--stripe-unit", "needs at least 1 page");
        if (opt.hostLinkUs < 0.0)
            flagError("--host-link-us", "must be >= 0");
        if (opt.timeoutUs < 0.0)
            flagError("--timeout-us", "must be >= 0");
        if (opt.transferUsPerKb < 0.0)
            flagError("--transfer-us-per-kb", "must be >= 0");
        if (!opt.fabricPreset.empty() && opt.hostLinkUs > 0.0)
            flagError("--fabric",
                      "cannot be combined with --host-link-us (the "
                      "fabric's links replace the flat host link)");
        // 0 is "use hardware concurrency" sugar; like any
        // multi-worker request it needs a window to parallelize over.
        if (opt.threads != 1 && opt.hostLinkUs <= 0.0 &&
            opt.fabricPreset.empty())
            flagError("--threads",
                      "worker threads need --host-link-us > 0 or a "
                      "--fabric (the parallel engine synchronizes "
                      "drives at link turnaround windows)");
    } else if (opt.threadsSet && opt.scenarioPath.empty()) {
        flagError("--threads", "requires --tenants or --scenario");
    } else if (!opt.hostFlags.empty()) {
        // Multi-tenant-only flags silently doing nothing would let a
        // single-replay run masquerade as an array experiment.
        flagError(opt.hostFlags.front(), "requires --tenants");
    }
}

int
realMain(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    if (opt.listWorkloads) {
        // The Table-2 suite: names scenario files and --workload use.
        std::printf("%-10s %6s %6s %8s %6s\n", "name", "read%",
                    "cold%", "iops", "theta");
        for (const workload::SyntheticSpec &s :
             workload::allWorkloads())
            std::printf("%-10s %6.0f %6.0f %8.0f %6.2f\n",
                        s.name.c_str(), 100.0 * s.readRatio,
                        100.0 * s.coldRatio, s.iops, s.zipfTheta);
        return 0;
    }

    if (!opt.scenarioPath.empty()) {
        if (!opt.legacyFlags.empty())
            flagError("--scenario",
                      "cannot be combined with " +
                          opt.legacyFlags.front() +
                          " (the scenario file defines the run)");
        host::ScenarioSpec spec;
        try {
            spec = host::ScenarioSpec::loadFile(opt.scenarioPath);
            if (opt.threadsSet) {
                spec.threads = opt.threads;
                spec.validate(); // threads > 1 still needs a link
            }
        } catch (const host::SpecError &e) {
            std::fprintf(stderr, "ssdrr_sim: --scenario: %s\n",
                         e.what());
            return 2;
        }
        if (opt.dumpScenario) {
            std::fputs(spec.toJsonText().c_str(), stdout);
            return 0;
        }
        const std::string label =
            "ssdrr_sim --scenario " + opt.scenarioPath;
        return runSpec(spec, opt.benchJson, label);
    }

    validateLegacyFlags(opt);

    if (opt.dumpScenario && opt.tenants == 0)
        flagError("--dump-scenario",
                  "requires --tenants or --scenario (single-replay "
                  "runs are not scenario-shaped)");

    if (opt.tenants > 0) {
        const host::ScenarioSpec spec = specFromFlags(opt);
        try {
            spec.validate();
        } catch (const host::SpecError &e) {
            std::fprintf(stderr, "ssdrr_sim: %s\n", e.what());
            return 2;
        }
        if (opt.dumpScenario) {
            std::fputs(spec.toJsonText().c_str(), stdout);
            return 0;
        }
        const std::string label =
            "ssdrr_sim --tenants " + std::to_string(opt.tenants) +
            " --array " + std::to_string(opt.array) + " (" +
            opt.workload + ")";
        return runSpec(spec, opt.benchJson, label);
    }

    ssd::Config cfg =
        opt.paperGeometry ? ssd::Config::paper() : ssd::Config::small();
    cfg.basePeKilo = opt.pec;
    cfg.baseRetentionMonths = opt.retention;
    cfg.temperatureC = opt.temperature;
    cfg.refreshThresholdMonths = opt.refresh;
    cfg.suspension = opt.suspension;
    cfg.seed = opt.seed;

    // Load or generate the workload.
    workload::Trace trace;
    if (host::looksLikeTracePath(opt.workload)) {
        workload::MsrParseOptions popt;
        popt.pageBytes = cfg.pageBytes;
        trace = workload::loadMsrTrace(opt.workload, popt);
        // Fold foreign LPNs into our logical space.
        std::vector<workload::TraceRecord> recs = trace.records();
        workload::Trace::foldIntoSpace(recs, cfg.logicalPages());
        trace = workload::Trace(trace.name(), std::move(recs));
    } else {
        workload::SyntheticSpec spec =
            workload::findWorkload(opt.workload);
        if (opt.iops > 0.0)
            spec.iops = opt.iops;
        trace = workload::generateSynthetic(spec, cfg.logicalPages(),
                                            opt.requests, opt.seed);
    }

    std::fputs(
        workload::formatProfile(workload::profileTrace(trace),
                                trace.name())
            .c_str(),
        stdout);
    if (opt.profileOnly)
        return 0;

    std::printf("\nSSD: %s geometry, %.1fK P/E, %.0f-month retention, "
                "%.0f C%s%s\n\n",
                opt.paperGeometry ? "paper" : "small", opt.pec,
                opt.retention, opt.temperature,
                opt.refresh > 0.0 ? ", refresh on" : "",
                opt.suspension ? "" : ", suspension off");
    std::printf("%-16s %10s %10s %10s %10s %10s %8s %9s %9s\n",
                "mechanism", "avg[us]", "read[us]", "p50r[us]",
                "p99[us]", "p99.9r[us]", "steps", "suspends",
                "refreshes");

    double baseline = 0.0;
    std::vector<sim::BenchRun> bench_runs;
    for (const std::string &name : opt.mechanisms) {
        const core::Mechanism mech = core::parseMechanism(name);
        ssd::Ssd ssd(cfg, mech);
        const auto t0 = std::chrono::steady_clock::now();
        const ssd::RunStats st = ssd.replay(trace);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        bench_runs.push_back(benchRunFrom(name, st, wall));
        if (baseline == 0.0)
            baseline = st.avgResponseUs;
        std::printf("%-16s %10.1f %10.1f %10.1f %10.1f %10.1f %8.2f "
                    "%9llu %9llu   (%+.1f%%)\n",
                    name.c_str(), st.avgResponseUs,
                    st.avgReadResponseUs, st.p50ReadResponseUs,
                    st.p99ResponseUs, st.p999ReadResponseUs,
                    st.avgRetrySteps,
                    static_cast<unsigned long long>(st.suspensions),
                    static_cast<unsigned long long>(st.refreshes),
                    100.0 * (st.avgResponseUs / baseline - 1.0));
    }
    if (!opt.benchJson.empty()) {
        const std::string label =
            "ssdrr_sim single-replay (" + opt.workload + ")";
        if (!sim::writeBenchJson(opt.benchJson, label, bench_runs))
            return 1;
        std::printf("\nwrote %s\n", opt.benchJson.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Last-resort guard: no uncaught exception may escape as a raw
    // std::terminate — a scripted caller (CI, the bench harness)
    // gets a one-line diagnostic and the same exit code as every
    // other usage error.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}

/**
 * @file
 * ssdrr_sim — command-line driver for the SSD read-retry simulator.
 *
 * Runs one workload (a Table-2 synthetic spec by name, or an
 * MSR-Cambridge CSV file) against one or more mechanisms at a chosen
 * operating point, and prints a comparison table. This is the
 * day-to-day entry point for exploring configurations without
 * writing C++.
 *
 * Usage:
 *   ssdrr_sim [options]
 *     --workload NAME|PATH.csv   workload (default usr_1)
 *     --mechanisms A,B,...       comma list (default
 *                                Baseline,PR2,AR2,PnAR2,NoRR)
 *     --pec K                    kilo P/E cycles (default 1.0)
 *     --retention MONTHS         retention age (default 6.0)
 *     --temperature C            operating temperature (default 30)
 *     --requests N               synthetic trace length (default 2000)
 *     --iops RATE                override the spec's arrival rate
 *     --refresh MONTHS           read-reclaim threshold (default off)
 *     --no-suspension            disable program/erase suspension
 *     --paper-geometry           full 512-GiB-class SSD (slower)
 *     --seed N                   RNG seed (default 42)
 *     --profile                  print the trace profile and exit
 *
 * Multi-tenant mode (host/array layer; enabled by --tenants):
 *     --tenants T                tenants, each on its own queue pair
 *     --queue-depth D            SQ depth / closed-loop QD (default 16)
 *     --arbitration rr|wrr       command-fetch arbitration (default rr;
 *                                wrr gives tenant i weight i+1)
 *     --array N                  LPN-striped array of N drives
 *     --open-loop                inject at trace arrival times instead
 *                                of closed-loop
 *
 * Perf trajectory:
 *     --bench-json PATH          also write a BENCH_sim_throughput
 *                                JSON (wall time, events/sec,
 *                                reads/sec and the deterministic
 *                                result digest, one entry per
 *                                mechanism) for the run
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "host/scenario.hh"
#include "sim/bench_report.hh"
#include "ssd/ssd.hh"
#include "workload/export.hh"
#include "workload/msr_parser.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

namespace {

struct Options {
    std::string workload = "usr_1";
    std::vector<std::string> mechanisms = {"Baseline", "PR2", "AR2",
                                           "PnAR2", "NoRR"};
    double pec = 1.0;
    double retention = 6.0;
    double temperature = 30.0;
    std::uint64_t requests = 2000;
    double iops = 0.0;
    double refresh = 0.0;
    bool suspension = true;
    bool paperGeometry = false;
    std::uint64_t seed = 42;
    bool profileOnly = false;
    std::uint32_t tenants = 0; ///< 0 = legacy single-replay mode
    std::uint32_t queueDepth = 16;
    std::string arbitration = "rr";
    std::uint32_t array = 1;
    bool openLoop = false;
    /** Perf-trajectory JSON output path (empty = off). */
    std::string benchJson;
    /** Host-layer flags seen on the command line (for validation). */
    std::vector<std::string> hostFlags;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME|PATH.csv] "
                 "[--mechanisms A,B,...] [--pec K]\n"
                 "  [--retention MONTHS] [--temperature C] "
                 "[--requests N] [--iops RATE]\n"
                 "  [--refresh MONTHS] [--no-suspension] "
                 "[--paper-geometry] [--seed N] [--profile]\n"
                 "  [--tenants T] [--queue-depth D] "
                 "[--arbitration rr|wrr] [--array N] [--open-loop]\n"
                 "  [--bench-json PATH]\n",
                 argv0);
    std::exit(2);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::size_t end = comma == std::string::npos ? s.size()
                                                           : comma;
        if (end > pos)
            out.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload") {
            opt.workload = next();
        } else if (arg == "--mechanisms") {
            opt.mechanisms = splitCommas(next());
        } else if (arg == "--pec") {
            opt.pec = std::atof(next());
        } else if (arg == "--retention") {
            opt.retention = std::atof(next());
        } else if (arg == "--temperature") {
            opt.temperature = std::atof(next());
        } else if (arg == "--requests") {
            opt.requests = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--iops") {
            opt.iops = std::atof(next());
        } else if (arg == "--refresh") {
            opt.refresh = std::atof(next());
        } else if (arg == "--no-suspension") {
            opt.suspension = false;
        } else if (arg == "--paper-geometry") {
            opt.paperGeometry = true;
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--profile") {
            opt.profileOnly = true;
        } else if (arg == "--tenants") {
            opt.tenants =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--queue-depth") {
            opt.queueDepth =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
            opt.hostFlags.push_back(arg);
        } else if (arg == "--arbitration") {
            opt.arbitration = next();
            opt.hostFlags.push_back(arg);
        } else if (arg == "--array") {
            opt.array =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
            opt.hostFlags.push_back(arg);
        } else if (arg == "--open-loop") {
            opt.openLoop = true;
            opt.hostFlags.push_back(arg);
        } else if (arg == "--bench-json") {
            opt.benchJson = next();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
        }
    }
    return opt;
}

/** Fold one mechanism's run into a perf-trajectory entry. */
sim::BenchRun
benchRunFrom(const std::string &name, const ssd::RunStats &st,
             double wall_seconds)
{
    sim::BenchRun run;
    run.name = name;
    run.wallSeconds = wall_seconds;
    run.executedEvents = st.executedEvents;
    run.reads = st.reads;
    run.writes = st.writes;
    run.retrySamples = st.retrySamples;
    run.avgRetrySteps = st.avgRetrySteps;
    run.suspensions = st.suspensions;
    run.gcCollections = st.gcCollections;
    run.readFailures = st.readFailures;
    run.refreshes = st.refreshes;
    run.simulatedMs = st.simulatedMs;
    run.p50ReadUs = st.p50ReadResponseUs;
    run.p99ReadUs = st.p99ReadResponseUs;
    run.p999ReadUs = st.p999ReadResponseUs;
    run.profileCacheHits = st.profileCacheHits;
    run.profileCacheMisses = st.profileCacheMisses;
    if (wall_seconds > 0.0) {
        run.eventsPerSecond =
            static_cast<double>(st.executedEvents) / wall_seconds;
        run.readsPerSecond =
            static_cast<double>(st.reads) / wall_seconds;
    }
    return run;
}

/**
 * Host/array mode: T tenants on their own queue pairs share an
 * N-drive striped array; one scenario per mechanism.
 */
int
runMultiTenant(const Options &opt, const ssd::Config &cfg)
{
    if (opt.profileOnly) {
        std::fprintf(stderr,
                     "--profile is not supported with --tenants "
                     "(per-tenant traces are generated inside the "
                     "scenario); drop --tenants to profile\n");
        return 2;
    }
    if (opt.array < 1) {
        std::fprintf(stderr, "--array needs at least 1 drive\n");
        return 2;
    }
    if (opt.iops > 0.0 && !opt.openLoop) {
        // Closed-loop injection is completion-driven; trace arrival
        // times (and thus the requested rate) are never consulted.
        std::fprintf(stderr, "--iops has no effect on closed-loop "
                             "tenants; add --open-loop\n");
        return 2;
    }
    if (opt.queueDepth < 1) {
        std::fprintf(stderr, "--queue-depth needs at least 1\n");
        return 2;
    }
    const host::Arbitration arb =
        host::parseArbitration(opt.arbitration);
    // Keep total work comparable to the single-replay mode: the
    // request budget is split across tenants.
    const std::uint64_t per_tenant =
        opt.requests / opt.tenants > 0 ? opt.requests / opt.tenants : 1;

    if (host::looksLikeTracePath(opt.workload))
        std::printf("Multi-tenant: %u tenants splitting %s (%s), "
                    "QD %u, %s arbitration, %u-drive array\n",
                    opt.tenants, opt.workload.c_str(),
                    opt.openLoop ? "open-loop" : "closed-loop",
                    opt.queueDepth, host::name(arb), opt.array);
    else
        std::printf("Multi-tenant: %u tenants x %llu reqs (%s), "
                    "QD %u, %s arbitration, %u-drive array\n",
                    opt.tenants,
                    static_cast<unsigned long long>(per_tenant),
                    opt.openLoop ? "open-loop" : "closed-loop",
                    opt.queueDepth, host::name(arb), opt.array);
    std::printf("SSD: %s geometry per drive, %.1fK P/E, "
                "%.0f-month retention, %.0f C\n\n",
                opt.paperGeometry ? "paper" : "small", opt.pec,
                opt.retention, opt.temperature);
    std::printf("%-10s %-14s %3s %6s %10s %10s %10s %10s\n",
                "mechanism", "tenant", "w", "reqs", "avg[us]",
                "p50[us]", "p99[us]", "p99.9[us]");

    host::TraceCache trace_cache; // parse a CSV once for the sweep
    std::vector<sim::BenchRun> bench_runs;
    for (const std::string &mname : opt.mechanisms) {
        host::ScenarioConfig sc;
        sc.traceCache = &trace_cache;
        sc.ssd = cfg;
        sc.mech = core::parseMechanism(mname);
        sc.drives = opt.array;
        sc.host.queueDepth = opt.queueDepth;
        sc.host.arbitration = arb;
        for (std::uint32_t t = 0; t < opt.tenants; ++t) {
            host::TenantSpec ts;
            ts.workload = opt.workload;
            ts.name = opt.workload + "#" + std::to_string(t);
            ts.requests = per_tenant;
            ts.iops = opt.iops;
            ts.mode = opt.openLoop ? host::InjectionMode::OpenLoop
                                   : host::InjectionMode::ClosedLoop;
            ts.qdLimit = opt.queueDepth;
            ts.weight =
                arb == host::Arbitration::WeightedRoundRobin ? t + 1 : 1;
            sc.tenants.push_back(ts);
        }
        const auto t0 = std::chrono::steady_clock::now();
        const host::ScenarioResult res = host::runScenario(sc);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        bench_runs.push_back(benchRunFrom(mname, res.array, wall));
        for (std::size_t t = 0; t < res.tenants.size(); ++t) {
            const host::TenantStats &s = res.tenants[t];
            std::printf("%-10s %-14s %3u %6llu %10.1f %10.1f %10.1f "
                        "%10.1f\n",
                        mname.c_str(), s.name.c_str(),
                        sc.tenants[t].weight,
                        static_cast<unsigned long long>(s.completed),
                        s.avgUs, s.p50Us, s.p99Us, s.p999Us);
        }
        const ssd::RunStats &a = res.array;
        std::printf("%-10s %-14s %3s %6llu %10.1f %10.1f %10.1f "
                    "%10.1f\n",
                    mname.c_str(), "all(reads)", "-",
                    static_cast<unsigned long long>(a.reads),
                    a.avgReadResponseUs, a.p50ReadResponseUs,
                    a.p99ReadResponseUs, a.p999ReadResponseUs);
    }
    if (!opt.benchJson.empty()) {
        const std::string label =
            "ssdrr_sim --tenants " + std::to_string(opt.tenants) +
            " --array " + std::to_string(opt.array) + " (" +
            opt.workload + ")";
        if (!sim::writeBenchJson(opt.benchJson, label, bench_runs))
            return 1;
        std::printf("\nwrote %s\n", opt.benchJson.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    ssd::Config cfg =
        opt.paperGeometry ? ssd::Config::paper() : ssd::Config::small();
    cfg.basePeKilo = opt.pec;
    cfg.baseRetentionMonths = opt.retention;
    cfg.temperatureC = opt.temperature;
    cfg.refreshThresholdMonths = opt.refresh;
    cfg.suspension = opt.suspension;
    cfg.seed = opt.seed;

    if (opt.tenants > 0)
        return runMultiTenant(opt, cfg);
    if (!opt.hostFlags.empty()) {
        // Multi-tenant-only flags silently doing nothing would let a
        // single-replay run masquerade as an array experiment.
        std::fprintf(stderr, "%s requires --tenants\n",
                     opt.hostFlags.front().c_str());
        return 2;
    }

    // Load or generate the workload.
    workload::Trace trace;
    if (host::looksLikeTracePath(opt.workload)) {
        workload::MsrParseOptions popt;
        popt.pageBytes = cfg.pageBytes;
        trace = workload::loadMsrTrace(opt.workload, popt);
        // Fold foreign LPNs into our logical space.
        std::vector<workload::TraceRecord> recs = trace.records();
        workload::Trace::foldIntoSpace(recs, cfg.logicalPages());
        trace = workload::Trace(trace.name(), std::move(recs));
    } else {
        workload::SyntheticSpec spec =
            workload::findWorkload(opt.workload);
        if (opt.iops > 0.0)
            spec.iops = opt.iops;
        trace = workload::generateSynthetic(spec, cfg.logicalPages(),
                                            opt.requests, opt.seed);
    }

    std::fputs(
        workload::formatProfile(workload::profileTrace(trace),
                                trace.name())
            .c_str(),
        stdout);
    if (opt.profileOnly)
        return 0;

    std::printf("\nSSD: %s geometry, %.1fK P/E, %.0f-month retention, "
                "%.0f C%s%s\n\n",
                opt.paperGeometry ? "paper" : "small", opt.pec,
                opt.retention, opt.temperature,
                opt.refresh > 0.0 ? ", refresh on" : "",
                opt.suspension ? "" : ", suspension off");
    std::printf("%-16s %10s %10s %10s %10s %10s %8s %9s %9s\n",
                "mechanism", "avg[us]", "read[us]", "p50r[us]",
                "p99[us]", "p99.9r[us]", "steps", "suspends",
                "refreshes");

    double baseline = 0.0;
    std::vector<sim::BenchRun> bench_runs;
    for (const std::string &name : opt.mechanisms) {
        const core::Mechanism mech = core::parseMechanism(name);
        ssd::Ssd ssd(cfg, mech);
        const auto t0 = std::chrono::steady_clock::now();
        const ssd::RunStats st = ssd.replay(trace);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        bench_runs.push_back(benchRunFrom(name, st, wall));
        if (baseline == 0.0)
            baseline = st.avgResponseUs;
        std::printf("%-16s %10.1f %10.1f %10.1f %10.1f %10.1f %8.2f "
                    "%9llu %9llu   (%+.1f%%)\n",
                    name.c_str(), st.avgResponseUs,
                    st.avgReadResponseUs, st.p50ReadResponseUs,
                    st.p99ResponseUs, st.p999ReadResponseUs,
                    st.avgRetrySteps,
                    static_cast<unsigned long long>(st.suspensions),
                    static_cast<unsigned long long>(st.refreshes),
                    100.0 * (st.avgResponseUs / baseline - 1.0));
    }
    if (!opt.benchJson.empty()) {
        const std::string label =
            "ssdrr_sim single-replay (" + opt.workload + ")";
        if (!sim::writeBenchJson(opt.benchJson, label, bench_runs))
            return 1;
        std::printf("\nwrote %s\n", opt.benchJson.c_str());
    }
    return 0;
}

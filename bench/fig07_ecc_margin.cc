/**
 * @file
 * Figure 7: maximum raw bit errors per 1-KiB codeword in the final
 * retry step (M_ERR) and the resulting ECC-capability margin, across
 * P/E cycles, retention age and operating temperature.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "nand/error_model.hh"

using namespace ssdrr;

int
main()
{
    bench::header("Fig. 7", "ECC-capability margin in the final retry step",
                  "M_ERR (max errors/KiB at the final step) per "
                  "(temperature, PEC, retention);\ncapability = 72");

    const nand::ErrorModel model;
    for (double temp : {85.0, 55.0, 30.0}) {
        std::printf("--- %.0f C ---\n", temp);
        bench::row({"PEC[K]", "tRET[mo]", "M_ERR", "margin",
                    "margin/cap"});
        for (double pe : bench::pecGrid()) {
            for (double ret : bench::retentionGrid()) {
                const nand::OperatingPoint op{pe, ret, temp};
                const double m = model.finalErrorsMax(op);
                const double margin = model.eccMargin(op);
                bench::row({bench::fmt(pe, 0), bench::fmt(ret, 0),
                            bench::fmt(m), bench::fmt(margin),
                            bench::pct(margin / 72.0)});
            }
        }
        std::printf("\n");
    }

    std::printf(
        "paper anchors: M_ERR(0,3)=15 and M_ERR(1K,12)=30 at 85C;\n"
        "margin at (2K,12,30C) = 44.4%% of capability; +5 errors at 30C "
        "and +3 at 55C vs 85C.\n");
    return 0;
}

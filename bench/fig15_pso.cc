/**
 * @file
 * Figure 15: performance of the proposal when combined with PSO
 * [84], the state-of-the-art retry-step-count reducer. PSO+PnAR2
 * must beat PSO (by ~17% on average in read-dominant workloads, up
 * to 31.5%) and close part of the remaining gap to the ideal NoRR.
 *
 * Usage: fig15_pso [requests-per-trace] [workload ...]
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

int
main(int argc, char **argv)
{
    const std::uint64_t requests = argc > 1 ? std::atoll(argv[1]) : 600;
    std::vector<workload::SyntheticSpec> specs;
    if (argc > 2) {
        for (int i = 2; i < argc; ++i)
            specs.push_back(workload::findWorkload(argv[i]));
    } else {
        specs = workload::allWorkloads();
    }

    bench::header("Fig. 15", "combining PR2+AR2 with PSO [84]",
                  "avg response time normalized to Baseline; "
                  "PSO+PnAR2 vs PSO vs ideal NoRR; " +
                      std::to_string(requests) + " requests per trace");

    const std::vector<std::pair<double, double>> grid = {
        {0.0, 12.0}, {1.0, 6.0}, {2.0, 12.0}};

    double gain_sum = 0.0, gain_max = 0.0;
    double gain_sum_read = 0.0, gain_max_read = 0.0;
    int cells = 0, cells_read = 0;

    bench::row({"workload", "PEC[K]", "tRET", "PSO", "PSO+PnAR2", "NoRR",
                "gain", "PSO/NoRR"},
               11);
    for (const auto &spec : specs) {
        for (const auto &[pe, ret] : grid) {
            ssd::Config cfg = ssd::Config::small();
            cfg.basePeKilo = pe;
            cfg.baseRetentionMonths = ret;
            const workload::Trace trace = workload::generateSynthetic(
                spec, cfg.logicalPages(), requests, 42);

            double rt[4];
            const core::Mechanism mechs[4] = {
                core::Mechanism::Baseline, core::Mechanism::PSO,
                core::Mechanism::PSO_PnAR2, core::Mechanism::NoRR};
            for (int i = 0; i < 4; ++i) {
                ssd::Ssd ssd(cfg, mechs[i]);
                rt[i] = ssd.replay(trace).avgResponseUs;
            }
            const double gain = 1.0 - rt[2] / rt[1];
            gain_sum += gain;
            gain_max = std::max(gain_max, gain);
            if (spec.readRatio > 0.5) {
                gain_sum_read += gain;
                gain_max_read = std::max(gain_max_read, gain);
                ++cells_read;
            }
            ++cells;
            bench::row({spec.name, bench::fmt(pe, 0), bench::fmt(ret, 0),
                        bench::fmt(rt[1] / rt[0], 3),
                        bench::fmt(rt[2] / rt[0], 3),
                        bench::fmt(rt[3] / rt[0], 3), bench::pct(gain),
                        bench::fmt(rt[1] / rt[3], 2) + "x"},
                       11);
        }
        std::printf("\n");
    }

    std::printf("PSO+PnAR2 over PSO: avg %.1f%% (max %.1f%%); "
                "read-dominant avg %.1f%% (max %.1f%%)\n"
                "paper: 17%% avg / 31.5%% max in read-dominant, "
                "3.6%% avg / 9.4%% max in write-dominant\n",
                100.0 * gain_sum / cells, 100.0 * gain_max,
                100.0 * gain_sum_read / cells_read,
                100.0 * gain_max_read);
    return 0;
}

/**
 * @file
 * Figures 12 and 13: the phase-level timeline of one page read under
 * each mechanism, for a read needing N retry steps on an idle
 * channel. Prints the latency decomposition the figures draw:
 * initial read, retry walk, and the Eq. 2-5 closed forms.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/retry_controller.hh"
#include "ecc/engine.hh"
#include "nand/error_model.hh"
#include "ssd/channel.hh"

using namespace ssdrr;

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 8;
    bench::header("Figs. 12-13", "per-mechanism read-retry timelines",
                  "completion latency for one LSB-page read with N_RR = " +
                      std::to_string(n) +
                      " retry steps on an idle channel");

    const nand::TimingParams timing;
    const nand::ErrorModel model;
    const core::Rpt rpt = core::RptBuilder(model).buildDefault();
    const nand::OperatingPoint op{1.0, 6.0, 30.0};

    nand::PageErrorProfile prof;
    prof.retrySteps = n;
    prof.finalErrors = 30.0;
    prof.decayRatio = 2.56;

    const double tR = sim::toUsec(timing.tR(nand::PageType::LSB));
    const double tDMA = sim::toUsec(timing.tDMA);
    const double tECC = sim::toUsec(timing.tECC);
    const nand::TimingReduction red = rpt.lookup(op);
    const double tR_red =
        sim::toUsec(timing.tR(nand::PageType::LSB, red));

    std::printf("tR = %.0f us, reduced tR = %.0f us (tPRE -%.0f%%), "
                "tDMA = %.0f us, tECC = %.0f us\n\n",
                tR, tR_red, 100.0 * red.pre, tDMA, tECC);

    std::printf("%-15s %10s %12s   %s\n", "mechanism", "tREAD[us]",
                "vs Baseline", "equation");
    double baseline = 0.0;
    for (core::Mechanism m :
         {core::Mechanism::Baseline, core::Mechanism::PR2,
          core::Mechanism::AR2, core::Mechanism::PnAR2,
          core::Mechanism::PSO, core::Mechanism::PSO_PnAR2,
          core::Mechanism::NoRR}) {
        core::RetryController rc(m, timing, model, &rpt);
        ssd::Channel ch;
        ecc::EccEngine ecc(timing.tECC, 72.0);
        const core::ReadPlan plan =
            rc.planRead(0, nand::PageType::LSB, prof, op, ch, ecc);
        const double us = sim::toUsec(plan.completion);
        if (m == core::Mechanism::Baseline)
            baseline = us;

        const char *eq = "";
        switch (m) {
          case core::Mechanism::Baseline:
            eq = "(N+1)(tR+tDMA+tECC)            [Eq. 2+3]";
            break;
          case core::Mechanism::PR2:
            eq = "(N+1)tR + tDMA + tECC          [Eq. 4]";
            break;
          case core::Mechanism::AR2:
            eq = "read + tSET + N(rho*tR+tDMA+tECC) [Eq. 5]";
            break;
          case core::Mechanism::PnAR2:
            eq = "read + tSET + N*rho*tR + tDMA + tECC";
            break;
          case core::Mechanism::PSO:
            eq = "Baseline with N' = max(3, 0.3N)  [84]";
            break;
          case core::Mechanism::PSO_PnAR2:
            eq = "PnAR2 with N' = max(3, 0.3N)";
            break;
          case core::Mechanism::NoRR:
            eq = "tR + tDMA + tECC (ideal)";
            break;
          case core::Mechanism::Sentinel:
          case core::Mechanism::Sentinel_PnAR2:
            eq = "Sentinel [56] step transform";
            break;
        }
        std::printf("%-15s %10.1f %11.1f%%   %s\n", core::name(m), us,
                    100.0 * (1.0 - us / baseline), eq);
    }
    return 0;
}

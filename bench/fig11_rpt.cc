/**
 * @file
 * Figure 11 + the RPT of Figure 13: the minimum safe tPRE (maximum
 * safe reduction) per operating condition with the 14-bit safety
 * margin, and the resulting Read-timing Parameter Table that AR2
 * ships in the SSD.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/rpt.hh"
#include "nand/error_model.hh"
#include "nand/timing.hh"

using namespace ssdrr;

int
main()
{
    bench::header("Fig. 11 / Fig. 13 RPT",
                  "minimum tPRE for safe tRETRY reduction",
                  "max safe tPRE reduction (14-bit margin: 7 temperature "
                  "+ 7 outlier) and the profiled RPT");

    const nand::ErrorModel model;
    const nand::TimingParams timing;

    bench::row({"PEC[K]", "tRET[mo]", "reduction", "tPRE[us]",
                "rho(tR)"});
    double lo = 1.0, hi = 0.0;
    for (double pe : bench::pecGrid()) {
        for (double ret : bench::retentionGrid()) {
            const double x = model.maxSafePreReduction({pe, ret, 85.0});
            lo = std::min(lo, x);
            hi = std::max(hi, x);
            nand::TimingReduction red;
            red.pre = x;
            bench::row({bench::fmt(pe, 0), bench::fmt(ret, 0),
                        bench::pct(x, 1),
                        bench::fmt(sim::toUsec(timing.tPRE) * (1.0 - x)),
                        bench::fmt(timing.rho(red), 3)});
        }
        std::printf("\n");
    }
    std::printf("range: %.1f%% .. %.1f%% (paper: min 40%%, max 54%%)\n\n",
                100.0 * lo, 100.0 * hi);

    // The deployed artifact: 6x6 RPT (36 entries, 144 bytes).
    const core::Rpt rpt = core::RptBuilder(model).buildDefault();
    std::printf("RPT (%zu entries, %zu bytes): tPRE reduction [%%] per "
                "(PEC bin x retention bin)\n",
                rpt.entries(), rpt.storageBytes());
    std::vector<std::string> head = {"PEC\\tRET"};
    for (std::size_t rt = 0; rt < rpt.retBins(); ++rt)
        head.push_back("<" + bench::fmt(rpt.retEdge(rt), 0) + "mo");
    bench::row(head, 9);
    for (std::size_t pe = 0; pe < rpt.peBins(); ++pe) {
        std::vector<std::string> cells = {
            "<" + bench::fmt(rpt.peEdge(pe) * 1000.0, 0)};
        for (std::size_t rt = 0; rt < rpt.retBins(); ++rt)
            cells.push_back(bench::pct(rpt.entryAt(pe, rt), 1));
        bench::row(cells, 9);
    }
    return 0;
}

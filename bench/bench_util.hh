/**
 * @file
 * Shared helpers for the reproduction benches: fixed-width table
 * printing and common sweep grids, so every bench binary emits the
 * same style of rows the paper's tables and figures report.
 */

#ifndef SSDRR_BENCH_BENCH_UTIL_HH
#define SSDRR_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

namespace ssdrr::bench {

/** Print a section header for one experiment. */
inline void
header(const std::string &experiment, const std::string &paper_ref,
       const std::string &what)
{
    std::printf("\n=== %s — %s ===\n%s\n\n", experiment.c_str(),
                paper_ref.c_str(), what.c_str());
}

/** Print one row of fixed-width cells. */
inline void
row(const std::vector<std::string> &cells, int width = 12)
{
    for (const auto &c : cells)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, int prec = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
pct(double v, int prec = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, 100.0 * v);
    return buf;
}

/** The paper's P/E-cycle grid in kilo-cycles (Figs. 5, 7-11, 14). */
inline const std::vector<double> &
pecGrid()
{
    static const std::vector<double> g = {0.0, 1.0, 2.0};
    return g;
}

/** The paper's retention-age grid in months. */
inline const std::vector<double> &
retentionGrid()
{
    static const std::vector<double> g = {0.0, 3.0, 6.0, 9.0, 12.0};
    return g;
}

} // namespace ssdrr::bench

#endif // SSDRR_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Figure 10: effect of operating temperature on the number of
 * additional errors caused by tPRE reduction (30C and 55C relative
 * to the 85C profiling point).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "nand/error_model.hh"

using namespace ssdrr;

int
main()
{
    bench::header("Fig. 10",
                  "temperature effect on tPRE-reduction errors",
                  "dM_ERR(T) - dM_ERR(85C) for T = 55C, 30C, vs dtPRE");

    const nand::ErrorModel model;
    for (double ret : {0.0, 12.0}) {
        std::printf("--- tRET = %.0f months ---\n", ret);
        bench::row({"T[C]", "PEC[K]", "d20%", "d34%", "d40%", "d47%",
                    "d54%"},
                   9);
        for (double temp : {55.0, 30.0}) {
            for (double pe : bench::pecGrid()) {
                const nand::OperatingPoint hot{pe, ret, 85.0};
                const nand::OperatingPoint cold{pe, ret, temp};
                std::vector<std::string> cells = {bench::fmt(temp, 0),
                                                  bench::fmt(pe, 0)};
                for (double x : {0.20, 0.34, 0.40, 0.47, 0.54}) {
                    nand::TimingReduction red;
                    red.pre = x;
                    cells.push_back(
                        bench::fmt(model.deltaErrors(red, cold) -
                                       model.deltaErrors(red, hot),
                                   1));
                }
                bench::row(cells, 9);
            }
        }
        std::printf("\n");
    }

    std::printf("paper anchors: the lower the temperature the larger the "
                "extra dM_ERR,\nbut at most ~7 additional errors even at "
                "(2K, 12 months, 30C).\n");
    return 0;
}

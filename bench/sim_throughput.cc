/**
 * @file
 * End-to-end simulator throughput harness (perf trajectory).
 *
 * Runs the multi-tenant tail scenario (4 closed-loop tenants, 2-drive
 * striped array, mid-life operating point — the same shape as
 * bench/multi_tenant_tail.cc) under Baseline and PnAR2, and measures
 * wall time, executed events/second and completed reads/second. The
 * deterministic simulation results are digested so a perf change that
 * silently alters what is simulated fails CI.
 *
 * Usage:
 *   bench_sim_throughput [--short] [--json PATH]
 *                        [--check-digest GOLDEN]
 *                        [--update-golden GOLDEN]
 *                        [--repeat N]
 *
 *   --short          CI-sized run (fewer requests per tenant)
 *   --json PATH      write the trajectory JSON
 *                    (default BENCH_sim_throughput.json)
 *   --check-digest   compare results against a golden digest file;
 *                    exit non-zero on mismatch
 *   --update-golden  rewrite the golden digest file
 *   --repeat N       wall-time measurement repetitions (default 1;
 *                    the fastest repetition is reported)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "host/scenario.hh"
#include "sim/bench_report.hh"
#include "ssd/config.hh"

using namespace ssdrr;

namespace {

host::ScenarioConfig
tailScenario(core::Mechanism mech, std::uint64_t requests_per_tenant)
{
    host::ScenarioConfig sc;
    sc.ssd = ssd::Config::small();
    sc.ssd.basePeKilo = 1.0;
    sc.ssd.baseRetentionMonths = 6.0;
    sc.mech = mech;
    sc.drives = 2;
    sc.host.queueDepth = 16;
    sc.host.arbitration = host::Arbitration::RoundRobin;
    for (std::uint32_t t = 0; t < 4; ++t) {
        host::TenantSpec ts;
        ts.workload = "usr_1";
        ts.name = "tenant" + std::to_string(t);
        ts.requests = requests_per_tenant;
        ts.qdLimit = 16;
        sc.tenants.push_back(ts);
    }
    return sc;
}

sim::BenchRun
measure(core::Mechanism mech, std::uint64_t requests_per_tenant,
        int repeat)
{
    sim::BenchRun run;
    run.name = core::name(mech);

    host::ScenarioResult res;
    double best = -1.0;
    for (int i = 0; i < repeat; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        res = host::runScenario(
            tailScenario(mech, requests_per_tenant));
        const auto t1 = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        if (best < 0.0 || secs < best)
            best = secs;
    }

    const ssd::RunStats &a = res.array;
    run.wallSeconds = best;
    run.executedEvents = a.executedEvents;
    run.reads = a.reads;
    run.writes = a.writes;
    run.retrySamples = a.retrySamples;
    run.avgRetrySteps = a.avgRetrySteps;
    run.suspensions = a.suspensions;
    run.gcCollections = a.gcCollections;
    run.readFailures = a.readFailures;
    run.refreshes = a.refreshes;
    run.simulatedMs = a.simulatedMs;
    run.p50ReadUs = a.p50ReadResponseUs;
    run.p99ReadUs = a.p99ReadResponseUs;
    run.p999ReadUs = a.p999ReadResponseUs;
    run.profileCacheHits = a.profileCacheHits;
    run.profileCacheMisses = a.profileCacheMisses;
    if (best > 0.0) {
        run.eventsPerSecond =
            static_cast<double>(a.executedEvents) / best;
        run.readsPerSecond = static_cast<double>(a.reads) / best;
    }
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    bool short_mode = false;
    int repeat = 1;
    std::string json_path = "BENCH_sim_throughput.json";
    std::string check_golden;
    std::string update_golden;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--short")
            short_mode = true;
        else if (arg == "--json")
            json_path = next();
        else if (arg == "--check-digest")
            check_golden = next();
        else if (arg == "--update-golden")
            update_golden = next();
        else if (arg == "--repeat")
            repeat = std::atoi(next());
        else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return 2;
        }
    }
    if (repeat < 1)
        repeat = 1;

    const std::uint64_t per_tenant = short_mode ? 400 : 2000;
    const std::string label =
        std::string("multi_tenant_tail ") +
        (short_mode ? "short" : "full") +
        " (4 closed-loop tenants x " + std::to_string(per_tenant) +
        " usr_1 reqs, QD 16, 2-drive array, 1K P/E + 6-month retention)";

    std::printf("sim_throughput — %s\n\n", label.c_str());
    std::printf("%-10s %12s %14s %12s %12s %10s\n", "mechanism",
                "wall[s]", "events/s", "reads/s", "events",
                "cache-hit%");

    std::vector<sim::BenchRun> runs;
    for (core::Mechanism m :
         {core::Mechanism::Baseline, core::Mechanism::PnAR2}) {
        runs.push_back(measure(m, per_tenant, repeat));
        const sim::BenchRun &r = runs.back();
        const std::uint64_t lookups =
            r.profileCacheHits + r.profileCacheMisses;
        std::printf("%-10s %12.3f %14.0f %12.0f %12llu %9.1f%%\n",
                    r.name.c_str(), r.wallSeconds, r.eventsPerSecond,
                    r.readsPerSecond,
                    static_cast<unsigned long long>(r.executedEvents),
                    lookups ? 100.0 *
                                  static_cast<double>(r.profileCacheHits) /
                                  static_cast<double>(lookups)
                            : 0.0);
    }

    if (!sim::writeBenchJson(json_path, label, runs))
        return 1;
    std::printf("\nwrote %s\n", json_path.c_str());

    if (!update_golden.empty()) {
        if (!sim::writeBenchGolden(update_golden, runs))
            return 1;
        std::printf("updated golden digest %s\n", update_golden.c_str());
    }
    if (!check_golden.empty()) {
        const int rc = sim::checkBenchDigest(check_golden, runs);
        if (rc != 0)
            return rc;
        std::printf("simulation-result digest matches %s\n",
                    check_golden.c_str());
    }
    return 0;
}

/**
 * @file
 * End-to-end simulator throughput harness (perf trajectory).
 *
 * Runs the multi-tenant tail scenario (4 closed-loop tenants, 2-drive
 * striped array, mid-life operating point — the same shape as
 * bench/multi_tenant_tail.cc) under Baseline and PnAR2, and measures
 * wall time, executed events/second and completed reads/second. The
 * deterministic simulation results are digested so a perf change that
 * silently alters what is simulated fails CI.
 *
 * A second section measures the sharded per-drive engine: a 4-drive
 * saturation scenario (8 closed-loop tenants, 32 device slots per
 * drive, 50 us host link, profile cache disabled so every read pays
 * the full model math) run with 1 and with 4 worker threads. The
 * two runs' deterministic results MUST be bit-identical — the bench
 * exits non-zero if they diverge — and the wall-clock ratio is the
 * parallel speedup (recorded as the par4d-1t / par4d-4t entries of
 * the JSON; it needs >= 4 free cores to show the full effect).
 *
 * Four more sections ride along: raid5-* (degraded-read
 * reconstruction, healthy vs one failed drive), cached-* (the
 * host filter chain — a DRAM read-cache tier absorbing re-reads
 * from scan-heavy tenants, reporting hit ratio, evictions and the
 * host-surface read p99 the cache buys), fault-* (the fault
 * timeline — healthy vs an open-ended fail-slow vs a mid-run
 * fail-stop with timeout-driven failover and rebuild-to-spare) and
 * fabric-* (the storage fabric — a flat per-drive link vs a
 * two-switch tree vs the same tree with oversubscribed uplinks,
 * per mechanism, reporting the per-read fabric wait and the link
 * queueing the topology induces).
 *
 * The golden digest covers only the two single-queue tail runs, so
 * it stays comparable across machines, thread counts and the
 * appended sections.
 *
 * Usage:
 *   bench_sim_throughput [--short] [--json PATH]
 *                        [--check-digest GOLDEN]
 *                        [--update-golden GOLDEN]
 *                        [--repeat N]
 *
 *   --short          CI-sized run (fewer requests per tenant)
 *   --json PATH      write the trajectory JSON
 *                    (default BENCH_sim_throughput.json)
 *   --check-digest   compare results against a golden digest file;
 *                    exit non-zero on mismatch
 *   --update-golden  rewrite the golden digest file
 *   --repeat N       wall-time measurement repetitions (default 1;
 *                    the fastest repetition is reported)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fabric/topology.hh"
#include "host/bench_scenarios.hh"
#include "host/scenario.hh"
#include "host/scenario_spec.hh"
#include "sim/bench_report.hh"
#include "ssd/config.hh"

using namespace ssdrr;

namespace {

host::ScenarioConfig
tailScenario(core::Mechanism mech, std::uint64_t requests_per_tenant)
{
    return host::buildBenchScenario(requests_per_tenant)
        .toConfig(mech);
}

/**
 * Run @p make_config's scenario @p repeat times, keeping the fastest
 * wall time, and fold the (identical) deterministic results plus the
 * wall-derived rates into a BenchRun named @p name. The single field
 * list both measured sections share.
 */
template <typename MakeConfig>
sim::BenchRun
measureScenario(const std::string &name, const MakeConfig &make_config,
                int repeat)
{
    sim::BenchRun run;
    run.name = name;

    host::ScenarioResult res;
    double best = -1.0;
    for (int i = 0; i < repeat; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        res = host::runScenario(make_config());
        const auto t1 = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        if (best < 0.0 || secs < best)
            best = secs;
    }

    const ssd::RunStats &a = res.array;
    run.wallSeconds = best;
    run.executedEvents = a.executedEvents;
    run.reads = a.reads;
    run.writes = a.writes;
    run.retrySamples = a.retrySamples;
    run.avgRetrySteps = a.avgRetrySteps;
    run.suspensions = a.suspensions;
    run.gcCollections = a.gcCollections;
    run.readFailures = a.readFailures;
    run.refreshes = a.refreshes;
    run.simulatedMs = a.simulatedMs;
    run.p50ReadUs = a.p50ReadResponseUs;
    run.p99ReadUs = a.p99ReadResponseUs;
    run.p999ReadUs = a.p999ReadResponseUs;
    run.profileCacheHits = a.profileCacheHits;
    run.profileCacheMisses = a.profileCacheMisses;
    run.degradedReads = a.degradedReads;
    run.reconstructionReads = a.reconstructionReads;
    run.parityWrites = a.parityWrites;
    run.p99DegradedReadUs = a.p99DegradedReadUs;
    run.p999DegradedReadUs = a.p999DegradedReadUs;
    run.cacheHits = a.cacheHits;
    run.cacheMisses = a.cacheMisses;
    run.cacheEvictions = a.cacheEvictions;
    run.prefetchIssued = a.prefetchIssued;
    run.prefetchUseful = a.prefetchUseful;
    run.hostP99ReadUs = a.p99HostReadUs;
    run.hostTimeouts = a.hostTimeouts;
    run.hostRetries = a.hostRetries;
    run.hostFailovers = a.hostFailovers;
    run.ueccReads = a.ueccReads;
    run.failedRequests = a.failedRequests;
    run.rebuildReads = a.rebuildReads;
    run.timeToRebuildMs = a.timeToRebuildMs;
    run.avgFabricWaitUs = a.avgFabricWaitUs;
    run.windowsRun = a.executorWindowsRun;
    run.windowsSkipped = a.executorWindowsSkipped;
    run.parks = a.executorParks;
    run.spins = a.executorSpins;
    for (const ssd::RunStats::FabricLinkStats &l : a.fabricLinks) {
        run.fabricBusyUs += l.busyUs;
        run.fabricBytes += l.bytesCarried;
        if (l.maxQueueDepth > run.fabricMaxQueueDepth)
            run.fabricMaxQueueDepth = l.maxQueueDepth;
    }
    if (best > 0.0) {
        run.eventsPerSecond =
            static_cast<double>(a.executedEvents) / best;
        run.readsPerSecond = static_cast<double>(a.reads) / best;
    }
    return run;
}

sim::BenchRun
measure(core::Mechanism mech, std::uint64_t requests_per_tenant,
        int repeat)
{
    return measureScenario(
        core::name(mech),
        [&] { return tailScenario(mech, requests_per_tenant); },
        repeat);
}

/**
 * 4-drive saturation scenario for the sharded engine: enough tenant
 * concurrency and device slots (32 per drive) to keep every drive's
 * synchronization window dense with NAND/ECC work, so the per-window
 * barrier cost is amortized and drives scale across workers.
 */
host::ScenarioConfig
parallelScenario(std::uint64_t requests_per_tenant,
                 std::uint32_t threads)
{
    host::ScenarioBuilder b;
    // 50 us link ~ a coalesced-interrupt completion path; it is also
    // the synchronization window, wide enough that every drive has
    // in-window work at this concurrency.
    b.geometry("small")
        .pec(1.0)
        .retention(6.0)
        .seed(42)
        .drives(4)
        .hostLinkUs(50.0)
        .queueDepth(32)
        .maxDeviceInflight(128);
    b.mechanism(core::Mechanism::PnAR2);
    for (std::uint32_t t = 0; t < 8; ++t) {
        b.tenant("t" + std::to_string(t), t % 2 ? "YCSB-C" : "usr_1",
                 requests_per_tenant)
            .qdLimit(32);
    }
    host::ScenarioConfig cfg =
        b.build().toConfig(core::Mechanism::PnAR2);
    // Full model math on every read (no profile memoization): the
    // representative worst case for CPU-bound sweeps, and the regime
    // the sharded engine exists for.
    cfg.ssd.profileCacheSlots = 0;
    cfg.threads = threads;
    return cfg;
}

sim::BenchRun
measureParallel(std::uint32_t threads,
                std::uint64_t requests_per_tenant, int repeat)
{
    return measureScenario(
        "par4d-" + std::to_string(threads) + "t",
        [&] { return parallelScenario(requests_per_tenant, threads); },
        repeat);
}

/**
 * RAID-5 degraded-read section: a 4-drive rotating-parity array at a
 * retry-heavy operating point (2K P/E + 12-month retention), healthy
 * vs one failed drive, per mechanism. Every degraded read multiplies
 * into 3 stripe-mate reads that each walk the full retry path — the
 * regime where retry optimization pays off most (cf. RARO).
 */
host::ScenarioConfig
raid5Scenario(core::Mechanism mech,
              std::uint64_t requests_per_tenant, bool degraded)
{
    host::ScenarioBuilder b;
    b.geometry("small")
        .pec(2.0)
        .retention(12.0)
        .seed(42)
        .drives(4)
        .raid("raid5")
        .stripeUnitPages(4)
        .queueDepth(16);
    if (degraded)
        b.failedDrives({1});
    b.mechanism(mech);
    for (std::uint32_t t = 0; t < 4; ++t) {
        b.tenant("t" + std::to_string(t), "usr_1",
                 requests_per_tenant)
            .qdLimit(16);
    }
    return b.build().toConfig(mech);
}

sim::BenchRun
measureRaid5(core::Mechanism mech, bool degraded,
             std::uint64_t requests_per_tenant, int repeat)
{
    return measureScenario(
        std::string("raid5-") + (degraded ? "degraded" : "healthy") +
            "-" + core::name(mech),
        [&] {
            return raid5Scenario(mech, requests_per_tenant, degraded);
        },
        repeat);
}

/**
 * Host filter-chain section: the tail scenario's array shape with two
 * scan-heavy tenants (seq_scan) and two point-read tenants (YCSB-C),
 * run without filters and with a 64 MiB DRAM read cache. Demand fills
 * only — at this wear point (1K PEC, 6-month retention) every array
 * read is retry-heavy, so speculative prefetch traffic inflates the
 * tail instead of hiding it; the win comes from re-reads being
 * absorbed at DRAM latency, which both removes them from the
 * host-surface distribution and thins the array queues the remaining
 * misses wait in. The host-surface read p99 drops below the uncached
 * run's array p99 (the same surface when the chain is empty).
 */
host::ScenarioConfig
cachedScenario(std::uint64_t requests_per_tenant, bool cached)
{
    host::ScenarioBuilder b;
    b.geometry("small")
        .pec(1.0)
        .retention(6.0)
        .seed(42)
        .drives(2)
        .queueDepth(16);
    b.mechanism(core::Mechanism::PnAR2);
    if (cached) {
        host::filter::FilterSpec c;
        c.type = "cache";
        c.sizeBytes = 64ull << 20;
        c.admission = "all"; // scans re-read written pages too
        c.hitLatencyUs = 2.0;
        b.addFilter(c);
    }
    for (std::uint32_t t = 0; t < 4; ++t) {
        b.tenant("t" + std::to_string(t),
                 t % 2 ? "YCSB-C" : "seq_scan", requests_per_tenant)
            .qdLimit(16);
    }
    return b.build().toConfig(core::Mechanism::PnAR2);
}

sim::BenchRun
measureCached(bool cached, std::uint64_t requests_per_tenant,
              int repeat)
{
    return measureScenario(
        std::string("cached-") + (cached ? "on" : "off"),
        [&] { return cachedScenario(requests_per_tenant, cached); },
        repeat);
}

/**
 * Fault-timeline section: the raid5 array shape (4 drives, rotating
 * parity, unit 4) at the mid-life operating point, per mechanism, in
 * three health states. "healthy" is the no-fault control; "failslow"
 * puts an open-ended 3x latency multiplier on one drive (every I/O it
 * serves stretches, nothing fails); "failstop" kills drive 0 at
 * t=4 ms — the host detects it through per-subrequest deadlines,
 * fails over reads to stripe-mate reconstruction, and a background
 * rebuild agent re-reads 48 rows to a spare. The comparison shows
 * what each degradation mode costs the foreground tail and how much
 * array bandwidth the rebuild consumes.
 */
enum class FaultMode { Healthy, FailSlow, FailStopRebuild };

host::ScenarioConfig
faultScenario(core::Mechanism mech,
              std::uint64_t requests_per_tenant, FaultMode mode)
{
    host::ScenarioBuilder b;
    // Runs on the sharded per-drive engine (50 us host link, 4
    // workers) since PR 10: the fault machinery is host-domain-
    // confined, and a faulted array is exactly where the executor's
    // idle-window fast-forward matters — a dead drive leaves sparse
    // windows where only one domain has work.
    b.geometry("small")
        .pec(1.0)
        .retention(6.0)
        .seed(42)
        .drives(4)
        .raid("raid5")
        .stripeUnitPages(4)
        .hostLinkUs(50.0)
        .queueDepth(16);
    if (mode == FaultMode::FailSlow)
        b.failSlow(2, 500.0, 0.0, 3.0);
    if (mode == FaultMode::FailStopRebuild) {
        // Deadline far above the healthy tail: timeouts implicate
        // only the dead drive, never a merely-slow one.
        b.timeoutUs(20000.0).retryMax(2).retryBackoffUs(100.0);
        b.failStop(0, 4000.0, /*rebuild=*/true, /*rebuild_rows=*/48);
    }
    b.mechanism(mech);
    for (std::uint32_t t = 0; t < 4; ++t) {
        b.tenant("t" + std::to_string(t), "usr_1",
                 requests_per_tenant)
            .qdLimit(16);
    }
    host::ScenarioConfig cfg = b.build().toConfig(mech);
    cfg.threads = 4;
    return cfg;
}

const char *
faultModeName(FaultMode mode)
{
    switch (mode) {
    case FaultMode::Healthy:
        return "healthy";
    case FaultMode::FailSlow:
        return "failslow";
    case FaultMode::FailStopRebuild:
        return "failstop";
    }
    return "?";
}

sim::BenchRun
measureFault(core::Mechanism mech, FaultMode mode,
             std::uint64_t requests_per_tenant, int repeat)
{
    return measureScenario(
        std::string("fault-") + faultModeName(mode) + "-" +
            core::name(mech),
        [&] {
            return faultScenario(mech, requests_per_tenant, mode);
        },
        repeat);
}

/**
 * Storage-fabric section: the raid0 tail shape on a 4-drive array,
 * per mechanism, in three cablings. "flat" gives every drive its own
 * host link (the fabric equivalent of the flat hostLink engine);
 * "tree" routes pairs of drives through two top-of-rack switches at
 * the same per-link cost; "oversub" is the same tree with the two
 * uplinks' serialization charge raised 16x, so concurrent
 * subrequests to drives behind one switch queue on the shared hop.
 * The per-read fabric wait and max link queue depth quantify what
 * the topology costs; retry-heavy mechanisms amplify it with every
 * extra drive-time their reads spend holding queue slots. Runs with
 * 4 workers — each fabric node is its own domain, and results are
 * worker-count-invariant like everything else.
 */
enum class FabricMode { Flat, Tree, Oversub };

host::ScenarioConfig
fabricScenario(core::Mechanism mech,
               std::uint64_t requests_per_tenant, FabricMode mode)
{
    host::ScenarioBuilder b;
    b.geometry("small")
        .pec(1.0)
        .retention(6.0)
        .seed(42)
        .drives(4)
        .queueDepth(16);
    if (mode == FabricMode::Flat) {
        b.fabricPreset("flat");
    } else {
        fabric::TopologySpec topo = fabric::makePreset("tree:2x2", 4);
        if (mode == FabricMode::Oversub)
            for (fabric::LinkSpec &l : topo.links)
                if (l.from == "host0")
                    l.usPerKb = 0.8;
        b.fabric(topo);
    }
    b.mechanism(mech);
    for (std::uint32_t t = 0; t < 4; ++t) {
        b.tenant("t" + std::to_string(t), "usr_1",
                 requests_per_tenant)
            .qdLimit(16);
    }
    host::ScenarioConfig cfg = b.build().toConfig(mech);
    cfg.threads = 4;
    return cfg;
}

const char *
fabricModeName(FabricMode mode)
{
    switch (mode) {
    case FabricMode::Flat:
        return "flat";
    case FabricMode::Tree:
        return "tree";
    case FabricMode::Oversub:
        return "oversub";
    }
    return "?";
}

sim::BenchRun
measureFabric(core::Mechanism mech, FabricMode mode,
              std::uint64_t requests_per_tenant, int repeat)
{
    return measureScenario(
        std::string("fabric-") + fabricModeName(mode) + "-" +
            core::name(mech),
        [&] {
            return fabricScenario(mech, requests_per_tenant, mode);
        },
        repeat);
}

/** The deterministic fields two thread counts must agree on. */
bool
identicalResults(const sim::BenchRun &a, const sim::BenchRun &b)
{
    return a.executedEvents == b.executedEvents && a.reads == b.reads &&
           a.writes == b.writes && a.retrySamples == b.retrySamples &&
           a.suspensions == b.suspensions &&
           a.gcCollections == b.gcCollections &&
           a.readFailures == b.readFailures &&
           a.refreshes == b.refreshes &&
           a.simulatedMs == b.simulatedMs &&
           a.avgRetrySteps == b.avgRetrySteps &&
           a.p50ReadUs == b.p50ReadUs && a.p99ReadUs == b.p99ReadUs &&
           a.p999ReadUs == b.p999ReadUs;
}

} // namespace

int
main(int argc, char **argv)
{
    bool short_mode = false;
    int repeat = 1;
    std::string json_path = "BENCH_sim_throughput.json";
    std::string check_golden;
    std::string update_golden;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--short")
            short_mode = true;
        else if (arg == "--json")
            json_path = next();
        else if (arg == "--check-digest")
            check_golden = next();
        else if (arg == "--update-golden")
            update_golden = next();
        else if (arg == "--repeat")
            repeat = std::atoi(next());
        else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return 2;
        }
    }
    if (repeat < 1)
        repeat = 1;

    const std::uint64_t per_tenant = short_mode ? 400 : 2000;
    const std::uint64_t par_per_tenant = short_mode ? 400 : 2000;
    const std::uint64_t r5_per_tenant = short_mode ? 300 : 1000;
    const std::uint64_t cd_per_tenant = short_mode ? 300 : 1000;
    const std::uint64_t ft_per_tenant = short_mode ? 300 : 1000;
    const std::uint64_t fb_per_tenant = short_mode ? 300 : 1000;
    // Six scenarios share this file: the digested tail runs, then
    // the par4d-* sharded-engine, raid5-* degraded-read, cached-*
    // filter-chain, fault-* fault-timeline and fabric-* storage-
    // fabric runs appended after them.
    const std::string label =
        std::string("multi_tenant_tail ") +
        (short_mode ? "short" : "full") +
        " (4 closed-loop tenants x " + std::to_string(per_tenant) +
        " usr_1 reqs, QD 16, 2-drive array, 1K P/E + 6-month "
        "retention); par4d-*: 8 closed-loop tenants x " +
        std::to_string(par_per_tenant) +
        " usr_1/YCSB-C reqs, QD 32, 4-drive array, 50 us host link, "
        "profile cache off, PnAR2, 1 vs 4 worker threads; raid5-*: "
        "4 closed-loop tenants x " +
        std::to_string(r5_per_tenant) +
        " usr_1 reqs, QD 16, 4-drive raid5 (unit 4), 2K P/E + "
        "12-month retention, healthy vs drive 1 failed; cached-*: "
        "4 closed-loop tenants x " +
        std::to_string(cd_per_tenant) +
        " seq_scan/YCSB-C reqs, QD 16, 2-drive array, PnAR2, "
        "uncached vs 64 MiB DRAM cache; fault-*: 4 closed-loop "
        "tenants x " +
        std::to_string(ft_per_tenant) +
        " usr_1 reqs, QD 16, 4-drive raid5 (unit 4), 50 us host "
        "link, 4 workers, healthy vs 3x fail-slow vs fail-stop at "
        "4 ms + 48-row rebuild-to-spare; "
        "fabric-*: 4 closed-loop tenants x " +
        std::to_string(fb_per_tenant) +
        " usr_1 reqs, QD 16, 4-drive array, 4 workers, flat "
        "per-drive links vs a 2-switch tree vs the tree with 16x "
        "oversubscribed uplinks";

    std::printf("sim_throughput — %s\n\n", label.c_str());
    std::printf("%-10s %12s %14s %12s %12s %10s\n", "mechanism",
                "wall[s]", "events/s", "reads/s", "events",
                "cache-hit%");

    std::vector<sim::BenchRun> runs;
    for (core::Mechanism m :
         {core::Mechanism::Baseline, core::Mechanism::PnAR2}) {
        runs.push_back(measure(m, per_tenant, repeat));
        const sim::BenchRun &r = runs.back();
        const std::uint64_t lookups =
            r.profileCacheHits + r.profileCacheMisses;
        std::printf("%-10s %12.3f %14.0f %12.0f %12llu %9.1f%%\n",
                    r.name.c_str(), r.wallSeconds, r.eventsPerSecond,
                    r.readsPerSecond,
                    static_cast<unsigned long long>(r.executedEvents),
                    lookups ? 100.0 *
                                  static_cast<double>(r.profileCacheHits) /
                                  static_cast<double>(lookups)
                            : 0.0);
    }

    // The golden digest covers exactly these single-queue runs.
    const std::vector<sim::BenchRun> core_runs = runs;

    // ----- sharded per-drive engine: 4 drives, 1 vs 4 workers -----
    std::printf("\nparallel array — 8 closed-loop tenants x %llu reqs, "
                "QD 32, 4-drive array, 50 us host link, profile "
                "cache off, PnAR2 (%u cores available)\n",
                static_cast<unsigned long long>(par_per_tenant),
                std::thread::hardware_concurrency());
    std::printf("%-10s %12s %14s %12s %12s\n", "threads", "wall[s]",
                "events/s", "reads/s", "events");
    std::vector<sim::BenchRun> par_runs;
    for (std::uint32_t threads : {1u, 4u}) {
        par_runs.push_back(
            measureParallel(threads, par_per_tenant, repeat));
        const sim::BenchRun &r = par_runs.back();
        std::printf("%-10s %12.3f %14.0f %12.0f %12llu\n",
                    r.name.c_str(), r.wallSeconds, r.eventsPerSecond,
                    r.readsPerSecond,
                    static_cast<unsigned long long>(r.executedEvents));
    }
    if (!identicalResults(par_runs[0], par_runs[1])) {
        std::fprintf(stderr,
                     "FAIL: sharded engine results differ between 1 "
                     "and 4 worker threads — determinism is broken\n%s",
                     sim::benchDigestText(par_runs).c_str());
        return 1;
    }
    if (par_runs[1].wallSeconds > 0.0)
        std::printf("speedup (4 threads vs 1): %.2fx "
                    "(bit-identical results)\n",
                    par_runs[0].wallSeconds / par_runs[1].wallSeconds);
    if (std::thread::hardware_concurrency() < 4) {
        // The speedup comparison presumes 4 hardware threads; on a
        // smaller machine the 4-worker run just timeslices, so keep
        // the entries for trajectory continuity but flag them.
        for (sim::BenchRun &r : par_runs)
            r.unreliable = true;
        std::printf("note: fewer than 4 hardware threads — par4d-* "
                    "and fabric-* wall times marked unreliable in "
                    "the JSON\n");
    }
    runs.insert(runs.end(), par_runs.begin(), par_runs.end());

    // ----- RAID-5 degraded reads: healthy vs 1 failed drive -----
    std::printf("\nraid5 degraded reads — 4 closed-loop tenants x "
                "%llu usr_1 reqs, QD 16, 4-drive raid5 (unit 4), "
                "2K P/E + 12-month retention, healthy vs drive 1 "
                "failed\n",
                static_cast<unsigned long long>(r5_per_tenant));
    std::printf("%-24s %12s %10s %10s %12s %12s\n", "config",
                "wall[s]", "p99r[us]", "p999r[us]", "p99degr[us]",
                "degr-reads");
    for (core::Mechanism m :
         {core::Mechanism::Baseline, core::Mechanism::PnAR2}) {
        for (bool degraded : {false, true}) {
            runs.push_back(
                measureRaid5(m, degraded, r5_per_tenant, repeat));
            const sim::BenchRun &r = runs.back();
            std::printf("%-24s %12.3f %10.1f %10.1f %12.1f %12llu\n",
                        r.name.c_str(), r.wallSeconds, r.p99ReadUs,
                        r.p999ReadUs, r.p99DegradedReadUs,
                        static_cast<unsigned long long>(
                            r.degradedReads));
        }
    }

    // ----- host filter chain: DRAM read-cache tier -----
    std::printf("\ncached workload — 4 closed-loop tenants x %llu "
                "seq_scan/YCSB-C reqs, QD 16, 2-drive array, PnAR2, "
                "uncached vs 64 MiB DRAM cache\n",
                static_cast<unsigned long long>(cd_per_tenant));
    std::printf("%-12s %12s %10s %12s %10s %12s\n", "config",
                "wall[s]", "p99r[us]", "hostp99[us]", "hit%",
                "evictions");
    std::vector<sim::BenchRun> cached_runs;
    for (bool cached : {false, true}) {
        cached_runs.push_back(
            measureCached(cached, cd_per_tenant, repeat));
        const sim::BenchRun &r = cached_runs.back();
        const std::uint64_t lookups = r.cacheHits + r.cacheMisses;
        std::printf("%-12s %12.3f %10.1f %12.1f %9.1f%% %12llu\n",
                    r.name.c_str(), r.wallSeconds, r.p99ReadUs,
                    r.hostP99ReadUs,
                    lookups ? 100.0 *
                                  static_cast<double>(r.cacheHits) /
                                  static_cast<double>(lookups)
                            : 0.0,
                    static_cast<unsigned long long>(
                        r.cacheEvictions));
    }
    // The uncached run has no chain, so its array-level p99 IS its
    // host-surface p99; the cached run's host surface includes the
    // DRAM hits the array never sees.
    if (cached_runs[1].cacheHits == 0)
        std::fprintf(stderr, "WARN: cached run recorded no DRAM "
                             "cache hits\n");
    else
        std::printf("host-surface read p99: %.1f us uncached -> "
                    "%.1f us cached\n",
                    cached_runs[0].p99ReadUs,
                    cached_runs[1].hostP99ReadUs);
    runs.insert(runs.end(), cached_runs.begin(), cached_runs.end());

    // ----- fault timeline: healthy vs fail-slow vs fail-stop -----
    std::printf("\nfault timeline — 4 closed-loop tenants x %llu "
                "usr_1 reqs, QD 16, 4-drive raid5 (unit 4), 50 us "
                "host link, 4 workers, healthy vs open-ended 3x "
                "fail-slow on drive 2 vs drive 0 fail-stop at 4 ms "
                "+ rebuild-to-spare (48 rows, 20 ms deadline)\n",
                static_cast<unsigned long long>(ft_per_tenant));
    std::printf("%-24s %12s %10s %10s %10s %10s %10s\n", "config",
                "wall[s]", "p99r[us]", "timeouts", "failovers",
                "rbld-reads", "ttr[ms]");
    for (core::Mechanism m :
         {core::Mechanism::Baseline, core::Mechanism::PnAR2}) {
        for (FaultMode mode :
             {FaultMode::Healthy, FaultMode::FailSlow,
              FaultMode::FailStopRebuild}) {
            runs.push_back(
                measureFault(m, mode, ft_per_tenant, repeat));
            const sim::BenchRun &r = runs.back();
            std::printf(
                "%-24s %12.3f %10.1f %10llu %10llu %10llu %10.2f\n",
                r.name.c_str(), r.wallSeconds, r.p99ReadUs,
                static_cast<unsigned long long>(r.hostTimeouts),
                static_cast<unsigned long long>(r.hostFailovers),
                static_cast<unsigned long long>(r.rebuildReads),
                r.timeToRebuildMs);
            if (mode == FaultMode::FailStopRebuild &&
                r.failedRequests > 0)
                std::fprintf(stderr,
                             "WARN: %s lost %llu requests — the "
                             "failover path should reconstruct every "
                             "foreground read\n",
                             r.name.c_str(),
                             static_cast<unsigned long long>(
                                 r.failedRequests));
        }
    }

    // ----- storage fabric: flat vs switched vs oversubscribed -----
    std::printf("\nstorage fabric — 4 closed-loop tenants x %llu "
                "usr_1 reqs, QD 16, 4-drive array, 4 workers, flat "
                "per-drive links vs 2-switch tree vs 16x "
                "oversubscribed uplinks\n",
                static_cast<unsigned long long>(fb_per_tenant));
    std::printf("%-24s %12s %10s %12s %10s %8s\n", "config",
                "wall[s]", "p99r[us]", "fabwait[us]", "fab-KiB",
                "maxQ");
    std::vector<sim::BenchRun> fabric_runs;
    for (core::Mechanism m :
         {core::Mechanism::Baseline, core::Mechanism::PnAR2}) {
        for (FabricMode mode :
             {FabricMode::Flat, FabricMode::Tree,
              FabricMode::Oversub}) {
            fabric_runs.push_back(
                measureFabric(m, mode, fb_per_tenant, repeat));
            const sim::BenchRun &r = fabric_runs.back();
            std::printf("%-24s %12.3f %10.1f %12.2f %10llu %8u\n",
                        r.name.c_str(), r.wallSeconds, r.p99ReadUs,
                        r.avgFabricWaitUs,
                        static_cast<unsigned long long>(
                            r.fabricBytes >> 10),
                        r.fabricMaxQueueDepth);
        }
    }
    if (std::thread::hardware_concurrency() < 4) {
        // Same caveat as par4d-*: the 4-worker wall times presume 4
        // hardware threads.
        for (sim::BenchRun &r : fabric_runs)
            r.unreliable = true;
    }
    runs.insert(runs.end(), fabric_runs.begin(), fabric_runs.end());

    if (!sim::writeBenchJson(json_path, label, runs))
        return 1;
    std::printf("\nwrote %s\n", json_path.c_str());

    if (!update_golden.empty()) {
        if (!sim::writeBenchGolden(update_golden, core_runs))
            return 1;
        std::printf("updated golden digest %s\n", update_golden.c_str());
    }
    if (!check_golden.empty()) {
        const int rc = sim::checkBenchDigest(check_golden, core_runs);
        if (rc != 0)
            return rc;
        std::printf("simulation-result digest matches %s\n",
                    check_golden.c_str());
    }
    return 0;
}

/**
 * @file
 * Figure 8: increase in the maximum number of raw bit errors
 * (dM_ERR) when individually reducing tPRE, tEVAL or tDISCH, under
 * different P/E-cycle counts and retention ages, at 85C.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "nand/error_model.hh"

using namespace ssdrr;

namespace {

void
sweep(const nand::ErrorModel &model, const char *param,
      double nand::TimingReduction::*field,
      const std::vector<double> &xs)
{
    std::printf("--- d%s ---\n", param);
    std::vector<std::string> head = {"PEC[K]", "tRET[mo]"};
    for (double x : xs)
        head.push_back(bench::pct(x, 0));
    bench::row(head, 10);

    for (double pe : bench::pecGrid()) {
        for (double ret : {0.0, 6.0, 12.0}) {
            std::vector<std::string> cells = {bench::fmt(pe, 0),
                                              bench::fmt(ret, 0)};
            for (double x : xs) {
                nand::TimingReduction red;
                red.*field = x;
                cells.push_back(bench::fmt(
                    model.deltaErrors(red, {pe, ret, 85.0})));
            }
            bench::row(cells, 10);
        }
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::header("Fig. 8", "effect of reducing each read-timing parameter",
                  "dM_ERR (added errors/KiB) vs individual reduction of "
                  "tPRE (a), tEVAL (b), tDISCH (c) at 85C");

    const nand::ErrorModel model;
    sweep(model, "tPRE", &nand::TimingReduction::pre,
          {0.10, 0.20, 0.30, 0.40, 0.47, 0.54, 0.60});
    sweep(model, "tEVAL", &nand::TimingReduction::eval,
          {0.05, 0.10, 0.15, 0.20});
    sweep(model, "tDISCH", &nand::TimingReduction::disch,
          {0.07, 0.14, 0.20, 0.27, 0.34, 0.40});

    std::printf(
        "paper anchors: at (2K,12) tPRE/tEVAL/tDISCH safely reducible by "
        "47%%/10%%/27%%;\ndM(tEVAL 20%%) = 30 even fresh; dM(tPRE 47%%) "
        "grows 60%% from (2K,0) to (2K,12);\ndM(tDISCH 7%%) <= 4 "
        "everywhere.\n");
    return 0;
}

/**
 * @file
 * Ablation: baseline features and load sensitivity (DESIGN.md
 * Section 6, items 1-2). Two sweeps on the full SSD:
 *
 *  1. program/erase suspension on/off under a mixed workload - the
 *     Baseline's read-priority feature the paper assumes [50, 91];
 *  2. arrival-rate sweep - the PnAR2 gain as the SSD moves from idle
 *     to loaded (queueing amplifies service-time savings).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

int
main(int argc, char **argv)
{
    const std::uint64_t requests = argc > 1 ? std::atoll(argv[1]) : 600;

    bench::header("Ablation: suspension & load", "DESIGN.md items 1-2",
                  "left: suspension on/off (hm_0, mixed R/W); right: "
                  "PnAR2 gain vs arrival rate (usr_1)");

    // --- suspension ---
    std::printf("program/erase suspension (hm_0 at 1K P/E, 6 months):\n");
    bench::row({"suspension", "avgRT[us]", "readRT[us]", "suspends"});
    for (bool sus : {true, false}) {
        ssd::Config cfg = ssd::Config::small();
        cfg.basePeKilo = 1.0;
        cfg.baseRetentionMonths = 6.0;
        cfg.suspension = sus;
        const workload::Trace trace = workload::generateSynthetic(
            workload::findWorkload("hm_0"), cfg.logicalPages(), requests,
            42);
        ssd::Ssd ssd(cfg, core::Mechanism::Baseline);
        const ssd::RunStats st = ssd.replay(trace);
        bench::row({sus ? "on" : "off", bench::fmt(st.avgResponseUs, 0),
                    bench::fmt(st.avgReadResponseUs, 0),
                    std::to_string(st.suspensions)});
    }

    // --- load sweep ---
    std::printf("\nPnAR2 gain vs arrival rate (usr_1 at 1K P/E, "
                "6 months):\n");
    bench::row({"iops", "Base[us]", "PnAR2[us]", "gain"});
    for (double iops : {500.0, 1000.0, 2000.0, 4000.0, 6000.0}) {
        ssd::Config cfg = ssd::Config::small();
        cfg.basePeKilo = 1.0;
        cfg.baseRetentionMonths = 6.0;
        workload::SyntheticSpec spec = workload::findWorkload("usr_1");
        spec.iops = iops;
        const workload::Trace trace = workload::generateSynthetic(
            spec, cfg.logicalPages(), requests, 42);
        double rt[2];
        const core::Mechanism mechs[2] = {core::Mechanism::Baseline,
                                          core::Mechanism::PnAR2};
        for (int i = 0; i < 2; ++i) {
            ssd::Ssd ssd(cfg, mechs[i]);
            rt[i] = ssd.replay(trace).avgResponseUs;
        }
        bench::row({bench::fmt(iops, 0), bench::fmt(rt[0], 0),
                    bench::fmt(rt[1], 0),
                    bench::pct(1.0 - rt[1] / rt[0])});
    }
    std::printf("\nexpected shape: gain grows with load (queueing "
                "multiplies the service-time\nsaving) until the Baseline "
                "saturates.\n");
    return 0;
}

/**
 * @file
 * Multi-tenant tail latency under read-retry (host/array layer).
 *
 * The paper evaluates read-retry mechanisms with one trace against
 * one drive; this bench puts four closed-loop tenants on queue pairs
 * in front of a two-drive striped array and compares per-tenant p99
 * and p99.9 across mechanisms at the paper's mid-life operating
 * point (1K P/E, 6-month retention). Retry-induced service-time
 * inflation compounds with host-side queueing, so the tail gap
 * between Baseline and PnAR2 widens relative to the single-replay
 * experiments (cf. Fig. 14).
 */

#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "host/bench_scenarios.hh"

using namespace ssdrr;

namespace {

host::ScenarioResult
runOne(core::Mechanism mech, host::Arbitration arb)
{
    return host::runScenario(host::buildBenchScenario(400, arb),
                             mech);
}

void
sweep(host::Arbitration arb)
{
    bench::header(
        std::string("multi-tenant tail, ") + host::name(arb) +
            " arbitration",
        "host/array layer (beyond the paper)",
        "4 closed-loop tenants (usr_1), QD 16, 2-drive striped array, "
        "1K P/E + 6-month retention; per-tenant p99 / p99.9 in us");

    std::vector<std::string> head = {"mechanism"};
    for (int t = 0; t < 4; ++t)
        head.push_back("t" + std::to_string(t) + ".p99");
    head.push_back("worst p99.9");
    bench::row(head);

    double base_worst = 0.0;
    for (core::Mechanism m :
         {core::Mechanism::Baseline, core::Mechanism::PR2,
          core::Mechanism::AR2, core::Mechanism::PnAR2,
          core::Mechanism::NoRR}) {
        const host::ScenarioResult res = runOne(m, arb);
        std::vector<std::string> cells = {core::name(m)};
        double worst = 0.0;
        for (const host::TenantStats &s : res.tenants) {
            cells.push_back(bench::fmt(s.p99Us));
            if (s.p999Us > worst)
                worst = s.p999Us;
        }
        cells.push_back(bench::fmt(worst));
        if (m == core::Mechanism::Baseline)
            base_worst = worst;
        else if (base_worst > 0.0)
            cells.push_back("(" + bench::pct(1.0 - worst / base_worst) +
                            " off Baseline)");
        bench::row(cells);
    }
}

} // namespace

int
main()
{
    sweep(host::Arbitration::RoundRobin);
    sweep(host::Arbitration::WeightedRoundRobin);
    return 0;
}

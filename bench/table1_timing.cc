/**
 * @file
 * Table 1: NAND flash timing parameters, echoed from the model and
 * cross-checked by measuring the command-level chip model with the
 * event-driven kernel (a program, an erase, a suspended program and
 * reads of each page type must take exactly the configured time).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "nand/chip.hh"
#include "sim/event_queue.hh"

using namespace ssdrr;

namespace {

sim::Tick
measureRead(nand::PageType t)
{
    sim::EventQueue eq;
    nand::Chip chip(eq, nand::Geometry{}, nand::TimingParams{}, 0);
    chip.occupyRead(0, chip.tR(0, t), [] {});
    return eq.run();
}

sim::Tick
measureProgram()
{
    sim::EventQueue eq;
    nand::Chip chip(eq, nand::Geometry{}, nand::TimingParams{}, 0);
    chip.beginProgram(0, [] {});
    return eq.run();
}

sim::Tick
measureErase()
{
    sim::EventQueue eq;
    nand::Chip chip(eq, nand::Geometry{}, nand::TimingParams{}, 0);
    chip.beginErase(0, [] {});
    return eq.run();
}

} // namespace

int
main()
{
    bench::header("Table 1", "NAND flash timing parameters",
                  "configured values and chip-model measurements");

    const nand::TimingParams t;
    bench::row({"parameter", "configured", "paper", "measured"});
    bench::row({"tPRE", bench::fmt(sim::toUsec(t.tPRE), 0) + "us", "24us",
                "-"});
    bench::row({"tEVAL", bench::fmt(sim::toUsec(t.tEVAL), 0) + "us",
                "5us", "-"});
    bench::row({"tDISCH", bench::fmt(sim::toUsec(t.tDISCH), 0) + "us",
                "10us", "-"});
    bench::row({"tR(LSB)", bench::fmt(sim::toUsec(t.tR(nand::PageType::LSB)), 0) + "us",
                "78us",
                bench::fmt(sim::toUsec(measureRead(nand::PageType::LSB)), 0) + "us"});
    bench::row({"tR(CSB)", bench::fmt(sim::toUsec(t.tR(nand::PageType::CSB)), 0) + "us",
                "117us",
                bench::fmt(sim::toUsec(measureRead(nand::PageType::CSB)), 0) + "us"});
    bench::row({"tR(MSB)", bench::fmt(sim::toUsec(t.tR(nand::PageType::MSB)), 0) + "us",
                "78us",
                bench::fmt(sim::toUsec(measureRead(nand::PageType::MSB)), 0) + "us"});
    bench::row({"tR(avg)", bench::fmt(sim::toUsec(t.tRAvg()), 0) + "us",
                "90us", "-"});
    bench::row({"tPROG", bench::fmt(sim::toUsec(t.tPROG), 0) + "us",
                "700us",
                bench::fmt(sim::toUsec(measureProgram()), 0) + "us"});
    bench::row({"tBERS", bench::fmt(sim::toMsec(t.tBERS), 0) + "ms",
                "5ms",
                bench::fmt(sim::toMsec(measureErase()), 0) + "ms"});
    bench::row({"tDMA", bench::fmt(sim::toUsec(t.tDMA), 0) + "us",
                "16us", "-"});
    bench::row({"tECC", bench::fmt(sim::toUsec(t.tECC), 0) + "us",
                "20us", "-"});
    bench::row({"tSET", bench::fmt(sim::toUsec(t.tSET), 0) + "us", "1us",
                "-"});
    bench::row({"tRST", bench::fmt(sim::toUsec(t.tRST), 0) + "us", "5us",
                "-"});
    return 0;
}

/**
 * @file
 * Figure 5: distribution of the number of retry steps per read under
 * different P/E-cycle counts (0 / 1K / 2K) and retention ages
 * (0-12 months), sampled over many model pages. Also checks the
 * section 3.1 call-outs printed in the paper.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "nand/error_model.hh"

using namespace ssdrr;

namespace {

struct Dist {
    double avg = 0.0;
    int min = 0;
    int max = 0;
    double fracAtLeast7 = 0.0;
};

Dist
sample(const nand::ErrorModel &model, const nand::OperatingPoint &op,
       int pages)
{
    Dist d;
    d.min = 1 << 30;
    double sum = 0.0;
    int ge7 = 0;
    for (int p = 0; p < pages; ++p) {
        const int n =
            model.pageProfile(0, p / 576, p % 576, op).retrySteps;
        sum += n;
        d.min = std::min(d.min, n);
        d.max = std::max(d.max, n);
        ge7 += n >= 7 ? 1 : 0;
    }
    d.avg = sum / pages;
    d.fracAtLeast7 = static_cast<double>(ge7) / pages;
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    const int pages = argc > 1 ? std::atoi(argv[1]) : 20000;
    bench::header("Fig. 5", "read-retry characteristics",
                  "retry steps per read vs (PEC, retention age); " +
                      std::to_string(pages) + " pages per cell");

    const nand::ErrorModel model;
    bench::row({"PEC[K]", "tRET[mo]", "avg", "min", "max", "P(N>=7)"});
    for (double pe : bench::pecGrid()) {
        for (double ret : {0.0, 1.0, 3.0, 6.0, 9.0, 12.0}) {
            const Dist d = sample(model, {pe, ret, 85.0}, pages);
            bench::row({bench::fmt(pe, 0), bench::fmt(ret, 0),
                        bench::fmt(d.avg, 2), std::to_string(d.min),
                        std::to_string(d.max), bench::pct(d.fracAtLeast7)});
        }
        std::printf("\n");
    }

    std::printf("paper anchors: fresh reads need 0 steps; avg 19.9 steps "
                "at (2K, 12mo);\n54.4%% of reads need >=7 steps at "
                "(0, 6mo); >=8 steps at (1K, 3mo).\n");
    return 0;
}

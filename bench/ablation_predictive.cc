/**
 * @file
 * Ablation: the Section 8 extensions (speculative retry start and
 * reduced regular reads) as a function of error-predictor accuracy.
 *
 * Shows how much headroom remains beyond PnAR2 (the paper's own
 * "there is still some more room for optimizing read-retry in
 * future work") and how robust the extensions are to model error.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/predictive.hh"

using namespace ssdrr;

namespace {

double
averageCompletionUs(const nand::ErrorModel &model,
                    const nand::TimingParams &timing,
                    const core::Rpt &rpt, const nand::OperatingPoint &op,
                    double accuracy, const core::PredictiveConfig &cfg,
                    std::uint64_t *mispred = nullptr)
{
    // Predictor and planner both consult the page profile per read;
    // share one memoization cache between them (plans and
    // predictions are bit-identical with or without it).
    nand::PageProfileCache cache(model);
    core::ErrorPredictor pred(model, accuracy);
    pred.attachProfileCache(&cache);
    core::PredictiveController pc(timing, model, rpt, pred, cfg);
    pc.attachProfileCache(&cache);
    double sum = 0.0;
    const int pages = 3000;
    for (int p = 0; p < pages; ++p) {
        ssd::Channel ch;
        ecc::EccEngine ecc(timing.tECC, 72.0);
        sum += sim::toUsec(pc.planRead(0, nand::pageTypeOf(p % 3),
                                       0, p / 576, p % 576, op, ch, ecc)
                               .completion);
    }
    if (mispred)
        *mispred = pc.mispredictions();
    return sum / pages;
}

} // namespace

int
main()
{
    bench::header("Ablation: Section 8 predictive extensions",
                  "speculative retry start + reduced regular reads",
                  "avg per-read completion vs predictor accuracy at "
                  "(1K P/E, 6 months, 30C), 3000 pages");

    const nand::TimingParams timing;
    const nand::ErrorModel model;
    const core::Rpt rpt = core::RptBuilder(model).buildDefault();
    const nand::OperatingPoint op{1.0, 6.0, 30.0};

    // PnAR2 reference (no prediction at all).
    core::PredictiveConfig off;
    off.reducedRegularReads = false;
    off.speculativeRetryStart = false;
    const double pnar2 =
        averageCompletionUs(model, timing, rpt, op, 1.0, off);
    std::printf("PnAR2 reference: %.1f us/read\n\n", pnar2);

    bench::row({"accuracy", "spec-only", "reduced-only", "both",
                "vs PnAR2", "mispred"},
               13);
    for (double acc : {1.0, 0.95, 0.9, 0.8, 0.7, 0.5}) {
        core::PredictiveConfig spec_only, red_only, both;
        spec_only.reducedRegularReads = false;
        red_only.speculativeRetryStart = false;
        const double s =
            averageCompletionUs(model, timing, rpt, op, acc, spec_only);
        const double r =
            averageCompletionUs(model, timing, rpt, op, acc, red_only);
        std::uint64_t mis = 0;
        const double b =
            averageCompletionUs(model, timing, rpt, op, acc, both, &mis);
        bench::row({bench::fmt(acc, 2), bench::fmt(s), bench::fmt(r),
                    bench::fmt(b), bench::pct(1.0 - b / pnar2),
                    std::to_string(mis)},
                   13);
    }
    std::printf("\nexpected shape: a perfect online error model buys a "
                "further ~5-10%% beyond PnAR2\n(one default read per "
                "retry eliminated); gains degrade gracefully and only "
                "go\nnegative when the predictor approaches a coin "
                "flip.\n");
    return 0;
}

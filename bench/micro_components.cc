/**
 * @file
 * Google-benchmark microbenchmarks of the substrate components: BCH
 * decode cost vs error count (substantiating the tECC = 20 us
 * engine model), event-queue throughput, reservation-timeline
 * operations, and error-model page profiling (the per-read hot path
 * of the SSD simulator).
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "core/retry_controller.hh"
#include "ecc/bch.hh"
#include "ecc/engine.hh"
#include "nand/error_model.hh"
#include "sim/event_queue.hh"
#include "sim/reservation.hh"
#include "sim/rng.hh"
#include "ssd/channel.hh"

using namespace ssdrr;

namespace {

// ----- BCH codec -----

void
BM_BchDecode(benchmark::State &state)
{
    const int errors = static_cast<int>(state.range(0));
    static const ecc::BchCode code(14, 72, 8192);
    sim::Rng rng(7);
    std::vector<std::uint8_t> data(8192);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.uniformInt(2));
    const auto clean = code.encode(data);

    for (auto _ : state) {
        state.PauseTiming();
        auto cw = clean;
        for (int k = 0; k < errors; ++k)
            cw[rng.uniformInt(cw.size())] ^= 1;
        state.ResumeTiming();
        auto res = code.decode(cw);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_BchDecode)->Arg(0)->Arg(1)->Arg(8)->Arg(32)->Arg(72);

void
BM_BchEncode(benchmark::State &state)
{
    static const ecc::BchCode code(14, 72, 8192);
    sim::Rng rng(7);
    std::vector<std::uint8_t> data(8192);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.uniformInt(2));
    for (auto _ : state) {
        auto cw = code.encode(data);
        benchmark::DoNotOptimize(cw);
    }
}
BENCHMARK(BM_BchEncode);

// ----- Simulation kernel -----

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int events = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < events; ++i)
            eq.schedule(static_cast<sim::Tick>((i * 7919) % 100000),
                        [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_ReservationAcquire(benchmark::State &state)
{
    sim::Rng rng(3);
    for (auto _ : state) {
        sim::ReservationTimeline tl;
        for (int i = 0; i < 1000; ++i)
            tl.acquire(rng.uniformInt(100000), 1 + rng.uniformInt(30));
        benchmark::DoNotOptimize(tl.horizon());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ReservationAcquire);

// ----- Error model (per-read hot path) -----

void
BM_PageProfile(benchmark::State &state)
{
    const nand::ErrorModel model;
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    std::uint64_t page = 0;
    for (auto _ : state) {
        auto prof = model.pageProfile(0, page / 576, page % 576, op);
        benchmark::DoNotOptimize(prof);
        ++page;
    }
}
BENCHMARK(BM_PageProfile);

void
BM_PlanRead(benchmark::State &state)
{
    const nand::TimingParams timing;
    const nand::ErrorModel model;
    const core::Rpt rpt = core::RptBuilder(model).buildDefault();
    core::RetryController rc(core::Mechanism::PnAR2, timing, model,
                             &rpt);
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    ssd::Channel ch;
    ecc::EccEngine ecc(timing.tECC, 72.0);
    std::uint64_t page = 0;
    for (auto _ : state) {
        const auto prof = model.pageProfile(0, 0, page % 576, op);
        const auto plan = rc.planRead(
            static_cast<sim::Tick>(page) * sim::usec(200),
            nand::pageTypeOf(page % 3), prof, op, ch, ecc);
        benchmark::DoNotOptimize(plan);
        ch.releaseBefore(static_cast<sim::Tick>(page) * sim::usec(200));
        ecc.releaseBefore(static_cast<sim::Tick>(page) * sim::usec(200));
        ++page;
    }
}
BENCHMARK(BM_PlanRead);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Table 2: I/O characteristics (read ratio, cold ratio) of the
 * twelve evaluated workloads. Generates each synthetic trace and
 * audits the measured ratios against the published values.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "ssd/config.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

int
main(int argc, char **argv)
{
    const std::uint64_t requests = argc > 1 ? std::atoll(argv[1]) : 8000;
    bench::header("Table 2", "I/O characteristics of evaluated workloads",
                  "spec vs measured ratios over " +
                      std::to_string(requests) + "-request traces");

    const std::uint64_t space = ssd::Config::small().logicalPages();
    bench::row({"workload", "read(spec)", "read(meas)", "cold(spec)",
                "cold(meas)", "footprint", "dur[s]"});
    for (const workload::SyntheticSpec &spec : workload::allWorkloads()) {
        const workload::Trace t =
            workload::generateSynthetic(spec, space, requests, 42);
        bench::row({spec.name, bench::fmt(spec.readRatio, 2),
                    bench::fmt(t.readRatio(), 2),
                    bench::fmt(spec.coldRatio, 2),
                    bench::fmt(t.coldRatio(), 2),
                    std::to_string(t.footprintPages()),
                    bench::fmt(sim::toMsec(t.duration()) / 1000.0, 1)});
    }
    return 0;
}

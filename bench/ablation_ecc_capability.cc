/**
 * @file
 * Ablation: ECC capability (DESIGN.md Section 6, item 5).
 *
 * AR2's entire budget is the ECC-capability margin of the final
 * retry step, so the strength of the code directly sets how much
 * tPRE can be shaved. This sweep shows the profiled reduction and
 * the end-to-end PnAR2 gain as the code strengthens from 40 to 120
 * correctable bits per KiB (the paper's design point is 72 [73]).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/rpt.hh"
#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

int
main(int argc, char **argv)
{
    const std::uint64_t requests = argc > 1 ? std::atoll(argv[1]) : 600;

    bench::header("Ablation: ECC capability", "DESIGN.md item 5",
                  "profiled tPRE reduction and PnAR2 gain vs code "
                  "strength (usr_1, 1K P/E, 6 months)");

    bench::row({"capability", "worst red.", "best red.", "Base[us]",
                "PnAR2[us]", "gain"},
               12);
    for (double cap : {40.0, 56.0, 72.0, 90.0, 120.0}) {
        nand::Calibration cal;
        cal.eccCapability = cap;
        const nand::ErrorModel model(cal);
        const core::Rpt rpt = core::RptBuilder(model).buildDefault();
        double worst = 1.0, best = 0.0;
        for (std::size_t pe = 0; pe < rpt.peBins(); ++pe) {
            for (std::size_t rt = 0; rt < rpt.retBins(); ++rt) {
                worst = std::min(worst, rpt.entryAt(pe, rt));
                best = std::max(best, rpt.entryAt(pe, rt));
            }
        }

        ssd::Config cfg = ssd::Config::small();
        cfg.eccCapability = cap;
        cfg.basePeKilo = 1.0;
        cfg.baseRetentionMonths = 6.0;
        const workload::Trace trace = workload::generateSynthetic(
            workload::findWorkload("usr_1"), cfg.logicalPages(),
            requests, 42);

        double rt[2];
        const core::Mechanism mechs[2] = {core::Mechanism::Baseline,
                                          core::Mechanism::PnAR2};
        for (int i = 0; i < 2; ++i) {
            ssd::Ssd ssd(cfg, mechs[i]);
            rt[i] = ssd.replay(trace).avgResponseUs;
        }
        bench::row({bench::fmt(cap, 0), bench::pct(worst, 1),
                    bench::pct(best, 1), bench::fmt(rt[0], 0),
                    bench::fmt(rt[1], 0),
                    bench::pct(1.0 - rt[1] / rt[0])},
                   12);
    }

    std::printf("\nexpected shape: weaker codes leave little margin (small "
                "reductions, more retry\nsteps in the Baseline too); "
                "beyond ~90 bits the reduction saturates at the\n"
                "precharge cliff, so stronger ECC stops paying.\n");
    return 0;
}

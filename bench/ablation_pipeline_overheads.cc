/**
 * @file
 * Ablation: what PR2's gain is made of (DESIGN.md Section 6,
 * items 1 and 5).
 *
 * PR2 removes tDMA + tECC from each retry step's critical path, so
 * its benefit scales with (tDMA + tECC) / (tR + tDMA + tECC). This
 * bench sweeps tECC and tDMA to show that sensitivity, and measures
 * the cost of PR2's speculative extra step (die-busy inflation) for
 * reads that need no retry.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/retry_controller.hh"
#include "ecc/engine.hh"
#include "nand/error_model.hh"
#include "ssd/channel.hh"

using namespace ssdrr;

namespace {

double
planCompletionUs(core::Mechanism m, const nand::TimingParams &timing,
                 const nand::ErrorModel &model, const core::Rpt &rpt,
                 int steps)
{
    core::RetryController rc(m, timing, model, &rpt);
    ssd::Channel ch;
    ecc::EccEngine ecc(timing.tECC, 72.0);
    nand::PageErrorProfile prof;
    prof.retrySteps = steps;
    prof.finalErrors = 30.0;
    prof.decayRatio = 2.56;
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    return sim::toUsec(
        rc.planRead(0, nand::PageType::LSB, prof, op, ch, ecc)
            .completion);
}

} // namespace

int
main()
{
    const nand::ErrorModel model;
    const core::Rpt rpt = core::RptBuilder(model).buildDefault();

    bench::header("Ablation: PR2 gain vs tECC and tDMA",
                  "DESIGN.md items 1/5",
                  "PR2's per-read gain over Baseline for N_RR = 8 as the "
                  "off-die latencies scale");

    bench::row({"tECC[us]", "tDMA[us]", "Base[us]", "PR2[us]", "gain"});
    for (double ecc_us : {5.0, 10.0, 20.0, 40.0, 80.0}) {
        for (double dma_us : {8.0, 16.0, 32.0}) {
            nand::TimingParams t;
            t.tECC = sim::usec(ecc_us);
            t.tDMA = sim::usec(dma_us);
            const double base = planCompletionUs(
                core::Mechanism::Baseline, t, model, rpt, 8);
            const double pr2 =
                planCompletionUs(core::Mechanism::PR2, t, model, rpt, 8);
            bench::row({bench::fmt(ecc_us, 0), bench::fmt(dma_us, 0),
                        bench::fmt(base, 0), bench::fmt(pr2, 0),
                        bench::pct(1.0 - pr2 / base)});
        }
    }

    std::printf("\nSpeculation cost: die-busy time for a no-retry read "
                "(the RESET-killed extra step)\n");
    const nand::TimingParams t;
    core::RetryController base_rc(core::Mechanism::Baseline, t, model,
                                  &rpt);
    core::RetryController pr2_rc(core::Mechanism::PR2, t, model, &rpt);
    nand::PageErrorProfile fresh;
    fresh.retrySteps = 0;
    fresh.finalErrors = 5.0;
    fresh.decayRatio = 16.0;
    const nand::OperatingPoint op{0.0, 0.0, 30.0};
    for (auto *rc : {&base_rc, &pr2_rc}) {
        ssd::Channel ch;
        ecc::EccEngine ecc(t.tECC, 72.0);
        const core::ReadPlan plan =
            rc->planRead(0, nand::PageType::LSB, fresh, op, ch, ecc);
        std::printf("  %-10s dieEnd = %5.0f us, completion = %5.0f us\n",
                    core::name(rc->mechanism()),
                    sim::toUsec(plan.dieEnd),
                    sim::toUsec(plan.completion));
    }
    std::printf("expected: PR2 holds the die a few us longer (RESET "
                "window) without delaying\nthe host response; the cost "
                "only matters under very deep per-die queues.\n");
    return 0;
}

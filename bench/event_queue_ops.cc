/**
 * @file
 * Google-benchmark microbenchmarks of the EventQueue primitives the
 * drain-tick engine is built from: schedule/run churn at varying
 * same-tick density, cancel (including the eager root-prune path),
 * scheduleBatch vs. per-event scheduling for a same-tick burst, the
 * drain-tick run loop itself, and the nextPendingTick() probe the
 * parallel executor polls every window.
 *
 * These isolate the event-engine costs that bench_sim_throughput
 * measures end-to-end; CI runs them in short mode (--benchmark_min_time
 * trimmed) in the perf-smoke job so a kernel regression shows up next
 * to the digest check.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"

using namespace ssdrr;

namespace {

/**
 * Schedule-then-drain throughput at a given same-tick density:
 * range(0) events spread over range(1) distinct ticks. density 1
 * (every event on its own tick) is the heap's worst case; higher
 * densities exercise the drain-tick batch extraction.
 */
void
BM_ScheduleRun(benchmark::State &state)
{
    const int events = static_cast<int>(state.range(0));
    const int ticks = static_cast<int>(state.range(1));
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        eq.reserve(static_cast<std::size_t>(events));
        for (int i = 0; i < events; ++i)
            eq.schedule(static_cast<sim::Tick>((i * 7919) % ticks + 1),
                        [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_ScheduleRun)
    ->Args({4096, 4096})
    ->Args({4096, 512})
    ->Args({4096, 64});

/**
 * Schedule + cancel churn: half the scheduled events are cancelled
 * before run(). Odd-indexed victims regularly sit at the heap root
 * when cancelled, so this covers the eager root-prune path as well as
 * the O(1) in-place tombstone.
 */
void
BM_ScheduleCancelRun(benchmark::State &state)
{
    const int events = static_cast<int>(state.range(0));
    std::uint64_t sink = 0;
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(events));
    for (auto _ : state) {
        sim::EventQueue eq;
        eq.reserve(static_cast<std::size_t>(events));
        ids.clear();
        for (int i = 0; i < events; ++i)
            ids.push_back(eq.schedule(
                static_cast<sim::Tick>((i * 7919) % events + 1),
                [&sink] { ++sink; }));
        for (int i = 0; i < events; i += 2)
            eq.cancel(ids[static_cast<std::size_t>(i)]);
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_ScheduleCancelRun)->Arg(4096);

/**
 * A same-tick burst of range(0) callbacks delivered as one
 * scheduleBatch event vs. range(0) individual schedule calls
 * (BM_BurstUnbatched). The pair quantifies what the producers'
 * micro-batching saves per burst: one slot + one heap entry + one
 * sift, instead of N of each.
 */
void
BM_BurstBatched(benchmark::State &state)
{
    const int burst = static_cast<int>(state.range(0));
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        std::vector<sim::EventQueue::Callback> cbs;
        cbs.reserve(static_cast<std::size_t>(burst));
        for (int i = 0; i < burst; ++i)
            cbs.emplace_back([&sink] { ++sink; });
        eq.scheduleBatch(100, std::move(cbs));
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * burst);
}
BENCHMARK(BM_BurstBatched)->Arg(2)->Arg(8)->Arg(32);

void
BM_BurstUnbatched(benchmark::State &state)
{
    const int burst = static_cast<int>(state.range(0));
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        for (int i = 0; i < burst; ++i)
            eq.schedule(100, [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * burst);
}
BENCHMARK(BM_BurstUnbatched)->Arg(2)->Arg(8)->Arg(32);

/**
 * Steady-state drain-tick loop: a self-rescheduling workload that
 * keeps range(0) events in flight, each rescheduling itself a prime
 * stride ahead so ticks collide at varying density — the closed-loop
 * shape of the simulator's retry ladders, without the model math.
 */
void
BM_DrainTickSteadyState(benchmark::State &state)
{
    const int inflight = static_cast<int>(state.range(0));
    constexpr std::uint64_t kEventsPerIter = 1 << 16;
    for (auto _ : state) {
        sim::EventQueue eq;
        std::uint64_t remaining = kEventsPerIter;
        sim::InlineCallback tickfn;
        struct Hop {
            sim::EventQueue *eq;
            std::uint64_t *remaining;
            void operator()() const
            {
                if (*remaining == 0)
                    return;
                --*remaining;
                eq->scheduleAfter(97, Hop{*this});
            }
        };
        for (int i = 0; i < inflight; ++i)
            eq.schedule(static_cast<sim::Tick>(i * 13 + 1),
                        Hop{&eq, &remaining});
        eq.run();
        benchmark::DoNotOptimize(remaining);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kEventsPerIter));
}
BENCHMARK(BM_DrainTickSteadyState)->Arg(16)->Arg(256);

/**
 * The executor's window probe: nextPendingTick() on a populated
 * queue. Must stay a pure O(1) read of the heap root — the parallel
 * executor calls it twice per domain per window.
 */
void
BM_NextPendingTick(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t sink = 0;
    for (int i = 0; i < 4096; ++i)
        eq.schedule(static_cast<sim::Tick>(i + 1), [&sink] { ++sink; });
    for (auto _ : state) {
        sim::Tick t = eq.nextPendingTick();
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_NextPendingTick);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Ablation: AR2's safety margin (DESIGN.md Section 6, item 4).
 *
 * The paper reserves 14 bits of ECC capability (7 for temperature +
 * 7 for outlier pages) when profiling the RPT. Sweeping the margin
 * shows the trade-off this buys: a small margin allows deeper tPRE
 * cuts but risks timing fallbacks (a full default-timing redo); a
 * large margin is safe but leaves latency on the table.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/retry_controller.hh"
#include "ecc/engine.hh"
#include "nand/error_model.hh"
#include "ssd/channel.hh"

using namespace ssdrr;

int
main()
{
    bench::header("Ablation: AR2 safety margin",
                  "DESIGN.md item 4 (paper Section 5.2.3 / 6.2)",
                  "margin sweep at (1K P/E, 6 months, 30C): profiled "
                  "reduction, per-read latency, fallback rate over 4000 "
                  "pages");

    const nand::TimingParams timing;
    const nand::OperatingPoint op{1.0, 6.0, 30.0};

    bench::row({"margin[b]", "reduction", "avgRT[us]", "fallbacks",
                "vs 14b"},
               11);
    double rt14 = 0.0;
    for (double margin : {0.0, 4.0, 7.0, 10.0, 14.0, 20.0, 28.0}) {
        nand::Calibration cal;
        cal.safetyMarginBits = margin;
        const nand::ErrorModel model(cal);
        const core::Rpt rpt = core::RptBuilder(model).buildDefault();
        core::RetryController rc(core::Mechanism::PnAR2, timing, model,
                                 &rpt);

        double sum_us = 0.0;
        int fallbacks = 0;
        const int pages = 4000;
        for (int p = 0; p < pages; ++p) {
            ssd::Channel ch;
            ecc::EccEngine ecc(timing.tECC, 72.0);
            const nand::PageErrorProfile prof =
                model.pageProfile(0, p / 576, p % 576, op);
            const core::ReadPlan plan = rc.planRead(
                0, nand::pageTypeOf(p % 3), prof, op, ch, ecc);
            sum_us += sim::toUsec(plan.completion);
            fallbacks += plan.timingFallback ? 1 : 0;
        }
        const double avg = sum_us / pages;
        if (margin == 14.0)
            rt14 = avg;
        bench::row({bench::fmt(margin, 0),
                    bench::pct(rpt.lookup(op).pre, 1), bench::fmt(avg),
                    std::to_string(fallbacks),
                    rt14 > 0.0 ? bench::pct(avg / rt14 - 1.0, 2) : "-"},
                   11);
    }
    std::printf("\nexpected shape: fallbacks only at tiny margins; "
                "latency roughly flat beyond the\nsafe point (the "
                "reduction grid is coarse), so the 14-bit margin costs "
                "little.\n");
    return 0;
}

/**
 * @file
 * Figure 14: normalized SSD response time of Baseline / PR2 / AR2 /
 * PnAR2 / NoRR across the twelve Table 2 workloads and a grid of
 * (P/E-cycle, retention-age) operating points. The headline system
 * result: PR2 and AR2 each beat Baseline, PnAR2 combines them
 * synergistically, and the gain grows with worse conditions.
 *
 * Usage: fig14_response_time [requests-per-trace] [workload ...]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

namespace {

struct Cell {
    double base = 0.0;
    double norm[5] = {0.0}; // Baseline, PR2, AR2, PnAR2, NoRR
    double steps = 0.0;
};

constexpr core::Mechanism kMechs[5] = {
    core::Mechanism::Baseline, core::Mechanism::PR2,
    core::Mechanism::AR2, core::Mechanism::PnAR2, core::Mechanism::NoRR};

Cell
runCell(const workload::SyntheticSpec &spec, double pe, double ret,
        std::uint64_t requests)
{
    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = pe;
    cfg.baseRetentionMonths = ret;

    const workload::Trace trace = workload::generateSynthetic(
        spec, cfg.logicalPages(), requests, 42);

    Cell cell;
    for (int i = 0; i < 5; ++i) {
        ssd::Ssd ssd(cfg, kMechs[i]);
        const ssd::RunStats st = ssd.replay(trace);
        if (i == 0) {
            cell.base = st.avgResponseUs;
            cell.steps = st.avgRetrySteps;
        }
        cell.norm[i] = st.avgResponseUs / cell.base;
    }
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t requests = argc > 1 ? std::atoll(argv[1]) : 600;
    std::vector<workload::SyntheticSpec> specs;
    if (argc > 2) {
        for (int i = 2; i < argc; ++i)
            specs.push_back(workload::findWorkload(argv[i]));
    } else {
        specs = workload::allWorkloads();
    }

    bench::header("Fig. 14",
                  "response time of PR2 / AR2 / PnAR2 vs Baseline",
                  "avg response time normalized to Baseline per "
                  "(workload, PEC, retention); " +
                      std::to_string(requests) + " requests per trace");

    const std::vector<std::pair<double, double>> grid = {
        {0.0, 1.0}, {0.0, 12.0}, {1.0, 3.0},
        {1.0, 6.0}, {2.0, 6.0},  {2.0, 12.0}};

    // Per-mechanism aggregates for the paper's headline numbers.
    double sum[5] = {0.0};
    double best[5] = {1.0, 1.0, 1.0, 1.0, 1.0};
    int cells = 0;

    bench::row({"workload", "PEC[K]", "tRET", "steps", "Base[us]", "PR2",
                "AR2", "PnAR2", "NoRR"},
               10);
    for (const auto &spec : specs) {
        for (const auto &[pe, ret] : grid) {
            const Cell c = runCell(spec, pe, ret, requests);
            bench::row({spec.name, bench::fmt(pe, 0), bench::fmt(ret, 0),
                        bench::fmt(c.steps, 1), bench::fmt(c.base, 0),
                        bench::fmt(c.norm[1], 3), bench::fmt(c.norm[2], 3),
                        bench::fmt(c.norm[3], 3),
                        bench::fmt(c.norm[4], 3)},
                       10);
            for (int i = 0; i < 5; ++i) {
                sum[i] += c.norm[i];
                best[i] = std::min(best[i], c.norm[i]);
            }
            ++cells;
        }
        std::printf("\n");
    }

    std::printf("mechanism      avg reduction   max reduction   (paper: "
                "avg / max)\n");
    const char *paper[5] = {"-", "17.7% / 38.3%", "11.9% / 18.1%",
                            "28.9% / 51.8%", "upper bound"};
    for (int i = 1; i < 5; ++i) {
        std::printf("%-12s %12.1f%% %15.1f%%   %s\n",
                    core::name(kMechs[i]), 100.0 * (1.0 - sum[i] / cells),
                    100.0 * (1.0 - best[i]), paper[i]);
    }
    return 0;
}

/**
 * @file
 * Ablation: RPT granularity (DESIGN.md Section 6, item 3).
 *
 * The paper ships 36 (PEC, tRET) bins in 144 bytes. Coarser tables
 * must profile each bin at its pessimistic corner, giving up some
 * reduction; finer tables approach the per-point optimum with more
 * storage. This bench sweeps the grid resolution.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "core/rpt.hh"
#include "nand/error_model.hh"

using namespace ssdrr;

namespace {

std::vector<double>
linspace(double lo, double hi, int n)
{
    std::vector<double> v;
    for (int i = 1; i <= n; ++i)
        v.push_back(lo + (hi - lo) * i / n);
    return v;
}

} // namespace

int
main()
{
    bench::header("Ablation: RPT granularity", "DESIGN.md item 3",
                  "average profiled tPRE reduction over a uniform "
                  "(PEC, tRET) operating mix vs table resolution");

    const nand::ErrorModel model;

    // Reference: direct per-point profiling (infinite table).
    double ideal = 0.0;
    int points = 0;
    for (double pe = 0.1; pe <= 2.0; pe += 0.1) {
        for (double ret = 0.5; ret <= 12.0; ret += 0.5) {
            ideal += model.maxSafePreReduction({pe, ret, 85.0});
            ++points;
        }
    }
    ideal /= points;

    bench::row({"grid", "entries", "bytes", "avg red.", "vs ideal"});
    for (int n : {1, 2, 3, 6, 12, 24}) {
        const core::Rpt rpt = core::RptBuilder(model).build(
            linspace(0.0, 2.0, n), linspace(0.0, 12.0, n));
        double avg = 0.0;
        for (double pe = 0.1; pe <= 2.0; pe += 0.1)
            for (double ret = 0.5; ret <= 12.0; ret += 0.5)
                avg += rpt.lookup({pe, ret, 85.0}).pre;
        avg /= points;
        bench::row({std::to_string(n) + "x" + std::to_string(n),
                    std::to_string(rpt.entries()),
                    std::to_string(rpt.storageBytes()),
                    bench::pct(avg, 2), bench::pct(avg - ideal, 2)});
    }
    std::printf("\nideal (per-point profiling): %.2f%%. The paper's 6x6 "
                "table captures nearly all\nof it in 144 bytes.\n",
                100.0 * ideal);
    return 0;
}

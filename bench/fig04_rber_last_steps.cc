/**
 * @file
 * Figure 4(b): raw bit errors per KiB over the last retry steps for
 * two pages whose reads require N = 16 and N = 21 retry steps. The
 * paper's point: RBER decreases drastically only in the final step,
 * where near-optimal VREF values are reached.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "nand/error_model.hh"

using namespace ssdrr;

namespace {

/** Find a page profile whose retry count is exactly @p n. */
nand::PageErrorProfile
findPageWithSteps(const nand::ErrorModel &model,
                  const nand::OperatingPoint &op, int n)
{
    for (std::uint64_t p = 0; p < 200000; ++p) {
        const nand::PageErrorProfile prof =
            model.pageProfile(0, p / 576, p % 576, op);
        if (prof.retrySteps == n)
            return prof;
    }
    std::fprintf(stderr, "no page with %d retry steps found\n", n);
    std::exit(1);
}

} // namespace

int
main()
{
    bench::header("Fig. 4(b)", "RBER reduction in the last retry steps",
                  "errors/KiB at steps N-3 .. N for pages needing N = 16 "
                  "and N = 21 steps;\nECC capability = 72 errors/KiB");

    const nand::ErrorModel model;
    // Aged condition where 16-21-step reads are common (cf. Fig. 5).
    const nand::OperatingPoint op{2.0, 9.0, 85.0};

    bench::row({"page", "step", "errors/KiB", "vs capability"});
    for (int n : {16, 21}) {
        const nand::PageErrorProfile prof = findPageWithSteps(model, op, n);
        for (int k = n - 3; k <= n; ++k) {
            const double e = model.stepErrors(prof, k);
            bench::row({"N=" + std::to_string(n),
                        std::to_string(k),
                        bench::fmt(e),
                        e > 72.0 ? "FAIL" : "pass"});
        }
        std::printf("\n");
    }

    std::printf("paper: ~300-600 errors 3 steps out, drops below the "
                "72-bit capability only at step N.\n");
    return 0;
}

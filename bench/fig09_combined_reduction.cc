/**
 * @file
 * Figure 9: M_ERR in the final retry step when reducing tPRE and
 * tDISCH simultaneously, under the paper's five operating
 * conditions. Shows the superlinear coupling (a shortened discharge
 * steals precharge budget) and why AR2 spends the whole margin on
 * tPRE alone.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "nand/error_model.hh"

using namespace ssdrr;

int
main()
{
    bench::header("Fig. 9",
                  "combined reduction of tPRE and tDISCH",
                  "M_ERR (mean final-step errors + dM_ERR) vs dtPRE for "
                  "several dtDISCH lines;\ncapability = 72, '-' = beyond "
                  "300 errors");

    const nand::ErrorModel model;
    const std::vector<std::pair<double, double>> conditions = {
        {1.0, 0.0}, {2.0, 0.0}, {0.0, 12.0}, {1.0, 12.0}, {2.0, 12.0}};
    const std::vector<double> dpre = {0.0,  0.07, 0.14, 0.20, 0.27,
                                      0.34, 0.40, 0.47, 0.54, 0.60};
    const std::vector<double> ddisch = {0.0, 0.07, 0.14, 0.20, 0.27,
                                        0.34, 0.40};

    for (const auto &[pe, ret] : conditions) {
        const nand::OperatingPoint op{pe, ret, 85.0};
        std::printf("--- (PEC, tRET) = (%.0fK, %.0f mo), base M_ERR mean "
                    "= %.1f ---\n",
                    pe, ret, model.finalErrorsMean(op));
        std::vector<std::string> head = {"dPRE\\dDIS"};
        for (double d : ddisch)
            head.push_back(bench::pct(d, 0));
        bench::row(head, 9);
        for (double p : dpre) {
            std::vector<std::string> cells = {bench::pct(p, 0)};
            for (double d : ddisch) {
                nand::TimingReduction red;
                red.pre = p;
                red.disch = d;
                const double m = model.finalErrorsMean(op) +
                                 model.deltaErrors(red, op);
                cells.push_back(m > 300.0 ? "-" : bench::fmt(m, 0));
            }
            bench::row(cells, 9);
        }
        std::printf("\n");
    }

    std::printf(
        "paper anchors: (54%% pre + 20%% disch) blows past capability at "
        "(1K, 0)\nwhile each alone adds only 35 / 8 errors; combined "
        "reduction is superlinear;\nreducing tPRE beats reducing tDISCH "
        "for swapped (x, y).\n");
    return 0;
}

/**
 * @file
 * Figure 6: the background comparison motivating PR2 — two
 * consecutive page reads on the same die with the basic PAGE READ
 * command vs the CACHE READ command. CACHE READ overlaps page B's
 * sensing with page A's data transfer, shortening REQ2's latency by
 * tDMA (the saved cycles the figure shades).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "nand/timing.hh"

using namespace ssdrr;

int
main()
{
    bench::header("Fig. 6", "PAGE READ vs CACHE READ for consecutive reads",
                  "latency of the second of two back-to-back reads on "
                  "one die (LSB pages, idle channel)");

    const nand::TimingParams t;
    const double tR = sim::toUsec(t.tR(nand::PageType::LSB));
    const double tDMA = sim::toUsec(t.tDMA);
    const double tECC = sim::toUsec(t.tECC);

    // (a) basic PAGE READ: B's sensing starts only after A's data
    // transfer completes (the die's page buffer is busy until then);
    // ECC of A overlaps B's sensing (per-channel engine).
    const double req2_page_read = tDMA + tR + tDMA + tECC;

    // (b) CACHE READ: B's sensing runs during A's transfer (cache
    // register); B's transfer starts when both B's sensing and A's
    // transfer are done.
    const double req2_cache_read =
        std::max(tR, tDMA) + tDMA + tECC;

    bench::row({"command", "REQ2 latency", "saved"}, 15);
    bench::row({"PAGE READ", bench::fmt(req2_page_read) + " us", "-"}, 15);
    bench::row({"CACHE READ", bench::fmt(req2_cache_read) + " us",
                bench::fmt(req2_page_read - req2_cache_read) + " us"},
               15);

    std::printf("\nThe same overlap applied to retry steps is PR2: each "
                "retry step is a page\nread, so CACHE READ removes "
                "tDMA + tECC = %.0f us from every step's critical\npath "
                "(Eq. 3 -> Eq. 4).\n",
                tDMA + tECC);

    // Sequence view: N consecutive reads.
    std::printf("\nthroughput of N back-to-back reads on one die:\n");
    bench::row({"N", "PAGE READ[us]", "CACHE READ[us]", "speedup"}, 15);
    for (int n : {2, 4, 8, 16}) {
        // Basic command serializes (tR + tDMA) per read; CACHE READ
        // hides transfers behind sensing, so after the first sensing
        // the pipeline advances at max(tR, tDMA) per read.
        const double basic_n = n * (tR + tDMA) + tECC;
        const double cached_n =
            tR + (n - 1) * std::max(tR, tDMA) + tDMA + tECC;
        bench::row({std::to_string(n), bench::fmt(basic_n),
                    bench::fmt(cached_n),
                    bench::fmt(basic_n / cached_n, 2) + "x"},
                   15);
    }
    return 0;
}

/**
 * @file
 * Ablation: the two related-work alternatives of Section 9 against
 * and combined with PR2/AR2.
 *
 *  - Refresh-based mitigation [14, 15, 28]: rewrite cold pages on
 *    read. Helps re-read latency but costs programs (bandwidth +
 *    wear) - the paper's argument for attacking the retry steps
 *    themselves instead.
 *  - Sentinel [56]: VOPT estimation from spare cells, cutting the
 *    average step count to ~1.2; PR2/AR2 still shorten the steps
 *    that remain (the complementarity claim).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

int
main(int argc, char **argv)
{
    const std::uint64_t requests = argc > 1 ? std::atoll(argv[1]) : 800;

    bench::header("Ablation: refresh [14,15,28] and Sentinel [56]",
                  "paper Section 9",
                  "usr_1 at (1K P/E, 9 months, 30C); " +
                      std::to_string(requests) + " requests");

    ssd::Config base_cfg = ssd::Config::small();
    base_cfg.basePeKilo = 1.0;
    base_cfg.baseRetentionMonths = 9.0;
    const workload::Trace trace = workload::generateSynthetic(
        workload::findWorkload("usr_1"), base_cfg.logicalPages(),
        requests, 42);

    struct Row {
        const char *label;
        core::Mechanism mech;
        double refresh_months;
    };
    const Row rows[] = {
        {"Baseline", core::Mechanism::Baseline, 0.0},
        {"Baseline+refresh", core::Mechanism::Baseline, 6.0},
        {"PnAR2", core::Mechanism::PnAR2, 0.0},
        {"PnAR2+refresh", core::Mechanism::PnAR2, 6.0},
        {"PSO", core::Mechanism::PSO, 0.0},
        {"Sentinel", core::Mechanism::Sentinel, 0.0},
        {"Sentinel+PnAR2", core::Mechanism::Sentinel_PnAR2, 0.0},
        {"NoRR", core::Mechanism::NoRR, 0.0},
    };

    double baseline_rt = 0.0;
    bench::row({"config", "avgRT[us]", "vs Base", "steps", "refreshes",
                "wear[er.]"},
               13);
    for (const Row &r : rows) {
        ssd::Config cfg = base_cfg;
        cfg.refreshThresholdMonths = r.refresh_months;
        ssd::Ssd ssd(cfg, r.mech);
        const ssd::RunStats st = ssd.replay(trace);
        if (baseline_rt == 0.0)
            baseline_rt = st.avgResponseUs;
        bench::row({r.label, bench::fmt(st.avgResponseUs, 0),
                    bench::pct(1.0 - st.avgResponseUs / baseline_rt),
                    bench::fmt(st.avgRetrySteps, 2),
                    std::to_string(st.refreshes),
                    std::to_string(
                        ssd.ftl().blocks().totalErases())},
                   13);
    }

    std::printf(
        "\nexpected shape: refresh helps only re-reads and pays for it "
        "in programs/wear\n(refresh count ~ cold working set); Sentinel "
        "cuts steps below PSO; stacking\nPnAR2 on Sentinel still wins "
        "(Section 9 complementarity).\n");
    return 0;
}

/**
 * @file
 * Binary BCH encoder/decoder.
 *
 * A systematic, optionally shortened BCH code over GF(2^m) correcting
 * up to t bit errors per codeword. The paper's ECC design point is
 * t = 72 over a 1-KiB (8192 data bit) codeword, which instantiates
 * here as BchCode(14, 72, 8192). Decoding is classical:
 * syndromes -> Berlekamp-Massey -> Chien search.
 *
 * The SSD-level simulator uses the cheaper CapabilityModel; this
 * codec substantiates the capability assumption and powers the
 * decode-latency microbenchmark.
 */

#ifndef SSDRR_ECC_BCH_HH
#define SSDRR_ECC_BCH_HH

#include <cstdint>
#include <vector>

#include "ecc/gf.hh"

namespace ssdrr::ecc {

class BchCode
{
  public:
    struct DecodeResult {
        bool ok = false;          ///< errors (if any) fully corrected
        int correctedErrors = 0;  ///< number of bit flips applied
    };

    /**
     * @param m field degree (codeword length bound 2^m - 1)
     * @param t correction capability in bits
     * @param data_bits message length (shortens the code if
     *        data_bits + parity < 2^m - 1)
     */
    BchCode(int m, int t, int data_bits);

    int t() const { return t_; }
    int dataBits() const { return data_bits_; }
    int parityBits() const { return parity_bits_; }
    int codewordBits() const { return data_bits_ + parity_bits_; }

    /**
     * Systematic encode: returns data || parity as a bit vector
     * (one byte per bit, values 0/1).
     */
    std::vector<std::uint8_t>
    encode(const std::vector<std::uint8_t> &data) const;

    /**
     * Decode in place. Returns ok = false when more than t errors
     * are present and the failure is detectable (the read-retry
     * trigger condition in the SSD).
     */
    DecodeResult decode(std::vector<std::uint8_t> &codeword) const;

    /** Generator polynomial coefficients (GF(2), degree order). */
    const std::vector<std::uint8_t> &generator() const { return gen_; }

  private:
    std::vector<std::uint32_t>
    computeSyndromes(const std::vector<std::uint8_t> &cw) const;

    GaloisField gf_;
    int t_;
    int data_bits_;
    int parity_bits_;
    std::vector<std::uint8_t> gen_; // generator poly bits, gen_[0] = x^0
};

} // namespace ssdrr::ecc

#endif // SSDRR_ECC_BCH_HH

#include "ecc/engine.hh"

// EccEngine and CapabilityModel are header-only; this translation
// unit anchors the component in the library.

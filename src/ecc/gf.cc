#include "ecc/gf.hh"

#include "sim/logging.hh"

namespace ssdrr::ecc {

namespace {

/** Standard primitive polynomials over GF(2), indexed by m. */
constexpr std::uint32_t kPrimPoly[] = {
    0,      0,      0,
    0xB,    // m=3:  x^3 + x + 1
    0x13,   // m=4:  x^4 + x + 1
    0x25,   // m=5:  x^5 + x^2 + 1
    0x43,   // m=6:  x^6 + x + 1
    0x89,   // m=7:  x^7 + x^3 + 1
    0x11D,  // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,  // m=9:  x^9 + x^4 + 1
    0x409,  // m=10: x^10 + x^3 + 1
    0x805,  // m=11: x^11 + x^2 + 1
    0x1053, // m=12: x^12 + x^6 + x^4 + x + 1
    0x201B, // m=13: x^13 + x^4 + x^3 + x + 1
    0x4443, // m=14: x^14 + x^10 + x^6 + x + 1
};

} // namespace

GaloisField::GaloisField(int m) : m_(m)
{
    SSDRR_ASSERT(m >= 3 && m <= 14, "GF(2^m) supports m in [3,14], got ",
                 m);
    n_ = (1u << m) - 1;
    prim_ = kPrimPoly[m];

    exp_.resize(2 * n_);
    log_.assign(n_ + 1, 0);
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < n_; ++i) {
        exp_[i] = x;
        log_[x] = i;
        x <<= 1;
        if (x & (1u << m))
            x ^= prim_;
    }
    SSDRR_ASSERT(x == 1, "polynomial 0x", std::hex, prim_,
                 " is not primitive for m=", std::dec, m);
    // Duplicate so alphaPow can skip one modular reduction.
    for (std::uint32_t i = 0; i < n_; ++i)
        exp_[n_ + i] = exp_[i];
}

std::uint32_t
GaloisField::mul(std::uint32_t a, std::uint32_t b) const
{
    if (a == 0 || b == 0)
        return 0;
    return exp_[log_[a] + log_[b]];
}

std::uint32_t
GaloisField::div(std::uint32_t a, std::uint32_t b) const
{
    SSDRR_ASSERT(b != 0, "division by zero in GF(2^", m_, ")");
    if (a == 0)
        return 0;
    return exp_[log_[a] + n_ - log_[b]];
}

std::uint32_t
GaloisField::inv(std::uint32_t a) const
{
    SSDRR_ASSERT(a != 0, "inverse of zero in GF(2^", m_, ")");
    return exp_[n_ - log_[a]];
}

std::uint32_t
GaloisField::alphaPow(std::int64_t i) const
{
    std::int64_t r = i % static_cast<std::int64_t>(n_);
    if (r < 0)
        r += n_;
    return exp_[static_cast<std::size_t>(r)];
}

std::uint32_t
GaloisField::log(std::uint32_t a) const
{
    SSDRR_ASSERT(a != 0 && a <= n_, "log of invalid element ", a);
    return log_[a];
}

std::uint32_t
GaloisField::pow(std::uint32_t a, std::uint64_t e) const
{
    if (a == 0)
        return e == 0 ? 1 : 0;
    const std::uint64_t le = (static_cast<std::uint64_t>(log_[a]) * e) % n_;
    return exp_[static_cast<std::size_t>(le)];
}

} // namespace ssdrr::ecc

#include "ecc/bch.hh"

#include <algorithm>
#include <set>

#include "sim/logging.hh"

namespace ssdrr::ecc {

BchCode::BchCode(int m, int t, int data_bits)
    : gf_(m), t_(t), data_bits_(data_bits)
{
    SSDRR_ASSERT(t >= 1, "BCH needs t >= 1");
    SSDRR_ASSERT(data_bits >= 1, "BCH needs data");

    // Build the generator polynomial as the LCM of the minimal
    // polynomials of alpha^1 .. alpha^(2t): collect the cyclotomic
    // cosets of those exponents, then multiply (x - alpha^j) over
    // each coset. The product has GF(2) coefficients.
    const std::uint32_t n = gf_.n();
    std::set<std::uint32_t> roots;
    std::set<std::uint32_t> seen;
    for (std::uint32_t i = 1; i <= static_cast<std::uint32_t>(2 * t);
         ++i) {
        if (seen.count(i))
            continue;
        // Walk the coset {i, 2i, 4i, ...} mod n.
        std::uint32_t j = i;
        do {
            seen.insert(j);
            roots.insert(j);
            j = static_cast<std::uint32_t>(
                (2ull * j) % static_cast<std::uint64_t>(n));
        } while (j != i);
    }

    // Multiply out prod (x - alpha^j) over GF(2^m).
    std::vector<std::uint32_t> g = {1};
    for (std::uint32_t j : roots) {
        const std::uint32_t root = gf_.alphaPow(j);
        std::vector<std::uint32_t> ng(g.size() + 1, 0);
        for (std::size_t k = 0; k < g.size(); ++k) {
            // (g(x)) * (x + root): x*g_k contributes to ng[k+1],
            // root*g_k contributes to ng[k].
            ng[k + 1] ^= g[k];
            ng[k] ^= gf_.mul(g[k], root);
        }
        g.swap(ng);
    }

    gen_.resize(g.size());
    for (std::size_t k = 0; k < g.size(); ++k) {
        SSDRR_ASSERT(g[k] <= 1, "generator polynomial not binary");
        gen_[k] = static_cast<std::uint8_t>(g[k]);
    }
    parity_bits_ = static_cast<int>(gen_.size()) - 1;

    SSDRR_ASSERT(data_bits_ + parity_bits_ <= static_cast<int>(n),
                 "code too long: ", data_bits_ + parity_bits_, " > ", n);
}

std::vector<std::uint8_t>
BchCode::encode(const std::vector<std::uint8_t> &data) const
{
    SSDRR_ASSERT(static_cast<int>(data.size()) == data_bits_,
                 "encode expects ", data_bits_, " bits, got ", data.size());

    // Systematic encoding: remainder of data(x) * x^parity mod g(x).
    // rem holds parity_bits_ coefficients; process data MSB-first.
    std::vector<std::uint8_t> rem(parity_bits_, 0);
    for (int i = data_bits_ - 1; i >= 0; --i) {
        const std::uint8_t feedback =
            static_cast<std::uint8_t>(data[i] ^ rem[parity_bits_ - 1]);
        for (int j = parity_bits_ - 1; j > 0; --j)
            rem[j] = static_cast<std::uint8_t>(rem[j - 1] ^
                                               (feedback & gen_[j]));
        rem[0] = static_cast<std::uint8_t>(feedback & gen_[0]);
    }

    // Codeword layout: bits [0, parity) = parity, [parity, n') = data,
    // i.e., coefficient i of the codeword polynomial is codeword[i].
    std::vector<std::uint8_t> cw(codewordBits());
    std::copy(rem.begin(), rem.end(), cw.begin());
    std::copy(data.begin(), data.end(), cw.begin() + parity_bits_);
    return cw;
}

std::vector<std::uint32_t>
BchCode::computeSyndromes(const std::vector<std::uint8_t> &cw) const
{
    std::vector<std::uint32_t> syn(2 * t_, 0);
    for (int i = 0; i < codewordBits(); ++i) {
        if (!cw[i])
            continue;
        for (int j = 0; j < 2 * t_; ++j) {
            syn[j] ^= gf_.alphaPow(static_cast<std::int64_t>(i) * (j + 1));
        }
    }
    return syn;
}

BchCode::DecodeResult
BchCode::decode(std::vector<std::uint8_t> &cw) const
{
    SSDRR_ASSERT(static_cast<int>(cw.size()) == codewordBits(),
                 "decode expects ", codewordBits(), " bits");
    DecodeResult res;

    const auto syn = computeSyndromes(cw);
    if (std::all_of(syn.begin(), syn.end(),
                    [](std::uint32_t s) { return s == 0; })) {
        res.ok = true;
        return res;
    }

    // Berlekamp-Massey: find the error-locator polynomial sigma(x).
    std::vector<std::uint32_t> sigma = {1};
    std::vector<std::uint32_t> prev = {1};
    std::uint32_t b = 1;
    int l = 0, mshift = 1;
    for (int nstep = 0; nstep < 2 * t_; ++nstep) {
        std::uint32_t d = syn[nstep];
        for (int i = 1; i <= l; ++i) {
            if (i < static_cast<int>(sigma.size()))
                d ^= gf_.mul(sigma[i], syn[nstep - i]);
        }
        if (d == 0) {
            ++mshift;
        } else if (2 * l <= nstep) {
            std::vector<std::uint32_t> tmp = sigma;
            const std::uint32_t coef = gf_.div(d, b);
            if (static_cast<int>(sigma.size()) <
                static_cast<int>(prev.size()) + mshift)
                sigma.resize(prev.size() + mshift, 0);
            for (std::size_t i = 0; i < prev.size(); ++i)
                sigma[i + mshift] ^= gf_.mul(coef, prev[i]);
            l = nstep + 1 - l;
            prev = tmp;
            b = d;
            mshift = 1;
        } else {
            const std::uint32_t coef = gf_.div(d, b);
            if (static_cast<int>(sigma.size()) <
                static_cast<int>(prev.size()) + mshift)
                sigma.resize(prev.size() + mshift, 0);
            for (std::size_t i = 0; i < prev.size(); ++i)
                sigma[i + mshift] ^= gf_.mul(coef, prev[i]);
            ++mshift;
        }
    }

    while (!sigma.empty() && sigma.back() == 0)
        sigma.pop_back();
    const int nu = static_cast<int>(sigma.size()) - 1;
    if (nu > t_) {
        res.ok = false; // more errors than the code can locate
        return res;
    }

    // Chien search over the (possibly shortened) codeword positions:
    // position i is in error iff sigma(alpha^{-i}) == 0.
    std::vector<int> error_pos;
    for (int i = 0; i < codewordBits(); ++i) {
        std::uint32_t v = 0;
        for (int k = 0; k <= nu; ++k) {
            if (sigma[k])
                v ^= gf_.mul(sigma[k],
                             gf_.alphaPow(-static_cast<std::int64_t>(i) *
                                          k));
        }
        if (v == 0) {
            error_pos.push_back(i);
            if (static_cast<int>(error_pos.size()) > nu)
                break;
        }
    }

    if (static_cast<int>(error_pos.size()) != nu) {
        // sigma has roots outside the shortened support or a wrong
        // root count: uncorrectable (this is what triggers read-retry
        // in the SSD controller).
        res.ok = false;
        return res;
    }

    for (int p : error_pos)
        cw[p] ^= 1;
    res.ok = true;
    res.correctedErrors = nu;
    return res;
}

} // namespace ssdrr::ecc

/**
 * @file
 * ECC engine model used inside the SSD data path.
 *
 * Each channel owns one engine (Section 3.2.1: "the data of page A
 * is decoded by the ECC engine dedicated to the channel"). The
 * simulator models the engine as a serial resource with a fixed
 * decode latency tECC and a hard correction capability in errors
 * per 1-KiB codeword. Decode windows are placed on a gap-filling
 * reservation timeline so independent reads interleave their
 * decodes with a retry plan's own (widely spaced) decodes.
 */

#ifndef SSDRR_ECC_ENGINE_HH
#define SSDRR_ECC_ENGINE_HH

#include "sim/reservation.hh"
#include "sim/types.hh"

namespace ssdrr::ecc {

/** Pure capability model: decode succeeds iff errors fit. */
class CapabilityModel
{
  public:
    explicit CapabilityModel(double errors_per_kib = 72.0)
        : capability_(errors_per_kib)
    {
    }

    double capability() const { return capability_; }

    /** True if a codeword with @p errors_per_kib raw errors decodes. */
    bool
    correctable(double errors_per_kib) const
    {
        return errors_per_kib <= capability_;
    }

    /** ECC-capability margin (paper footnote 5); negative if over. */
    double
    margin(double errors_per_kib) const
    {
        return capability_ - errors_per_kib;
    }

  private:
    double capability_;
};

/**
 * Serial decode resource with reserve-ahead semantics: a transaction
 * reserves the next free window at-or-after its data arrives.
 */
class EccEngine
{
  public:
    EccEngine(sim::Tick t_ecc, double capability)
        : t_ecc_(t_ecc), model_(capability)
    {
    }

    sim::Tick tEcc() const { return t_ecc_; }
    const CapabilityModel &model() const { return model_; }

    /**
     * Reserve one decode slot no earlier than @p earliest.
     * @return tick at which the decode starts.
     */
    sim::Tick
    acquire(sim::Tick earliest)
    {
        return timeline_.acquire(earliest, t_ecc_);
    }

    /** Number of decodes performed. */
    std::uint64_t decodes() const { return timeline_.grants(); }

    /** End of the last reserved decode window. */
    sim::Tick busyUntil() const { return timeline_.horizon(); }

    /** Total busy time reserved so far (utilization stat). */
    sim::Tick totalBusy() const { return timeline_.totalBusy(); }

    /** Forget reservations that ended before @p now. */
    void releaseBefore(sim::Tick now) { timeline_.releaseBefore(now); }

  private:
    sim::Tick t_ecc_;
    CapabilityModel model_;
    sim::ReservationTimeline timeline_;
};

} // namespace ssdrr::ecc

#endif // SSDRR_ECC_ENGINE_HH

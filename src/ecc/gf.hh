/**
 * @file
 * Galois field GF(2^m) arithmetic with log/antilog tables.
 *
 * Supports m in [3, 14]; m = 14 is what a t=72, 1-KiB-codeword BCH
 * code (the paper's ECC design point, Section 2.4) requires, since
 * the codeword of 8192 data bits + ~1008 parity bits exceeds the
 * GF(2^13) length bound.
 */

#ifndef SSDRR_ECC_GF_HH
#define SSDRR_ECC_GF_HH

#include <cstdint>
#include <vector>

namespace ssdrr::ecc {

class GaloisField
{
  public:
    explicit GaloisField(int m);

    int m() const { return m_; }
    /** Multiplicative group order: 2^m - 1. */
    std::uint32_t n() const { return n_; }
    /** Field size: 2^m. */
    std::uint32_t size() const { return n_ + 1; }

    /** Addition = subtraction = XOR in characteristic 2. */
    static std::uint32_t add(std::uint32_t a, std::uint32_t b)
    {
        return a ^ b;
    }

    std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;
    std::uint32_t div(std::uint32_t a, std::uint32_t b) const;
    std::uint32_t inv(std::uint32_t a) const;

    /** alpha^i for any integer exponent (reduced mod n). */
    std::uint32_t alphaPow(std::int64_t i) const;

    /** Discrete log base alpha; a must be nonzero. */
    std::uint32_t log(std::uint32_t a) const;

    /** a^e for a in the field, e >= 0. */
    std::uint32_t pow(std::uint32_t a, std::uint64_t e) const;

    /** Primitive polynomial used for this m (bitmask, degree m). */
    std::uint32_t primitivePoly() const { return prim_; }

  private:
    int m_;
    std::uint32_t n_;
    std::uint32_t prim_;
    std::vector<std::uint32_t> exp_; // alpha^i, i in [0, 2n)
    std::vector<std::uint32_t> log_;
};

} // namespace ssdrr::ecc

#endif // SSDRR_ECC_GF_HH

/**
 * @file
 * Umbrella header for the ssdrr library.
 *
 * Pulls in the public API surface a downstream user needs to run
 * the paper's experiments: configure an SSD, pick a read-retry
 * mechanism, generate or load a workload, replay it, and inspect
 * the characterization models behind the results.
 *
 *   #include "ssdrr.hh"
 *
 * Layering (each header is also usable on its own):
 *   sim/      event kernel, RNG, stats
 *   nand/     chip substrate + calibrated error surfaces
 *   ecc/      BCH codec + engine model
 *   ftl/      translation, wear and GC
 *   ssd/      controller, scheduler, top-level Ssd
 *   core/     the paper's mechanisms (PR2 / AR2 / ...) and RPT
 *   workload/ traces, Table-2 suites, MSR CSV I/O
 */

#ifndef SSDRR_SSDRR_HH
#define SSDRR_SSDRR_HH

#include "core/mechanism.hh"
#include "core/predictive.hh"
#include "core/retry_controller.hh"
#include "core/rpt.hh"
#include "ecc/bch.hh"
#include "ecc/engine.hh"
#include "ftl/ftl.hh"
#include "nand/chip.hh"
#include "nand/error_model.hh"
#include "nand/retry_table.hh"
#include "nand/timing.hh"
#include "nand/vth_model.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "ssd/config.hh"
#include "ssd/ssd.hh"
#include "workload/export.hh"
#include "workload/msr_parser.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

#endif // SSDRR_SSDRR_HH

#include "workload/suites.hh"

#include "sim/logging.hh"

namespace ssdrr::workload {

namespace {

SyntheticSpec
spec(const char *name, double read_ratio, double cold_ratio, double iops,
     double theta)
{
    SyntheticSpec s;
    s.name = name;
    s.readRatio = read_ratio;
    s.coldRatio = cold_ratio;
    s.iops = iops;
    s.zipfTheta = theta;
    return s;
}

} // namespace

std::vector<SyntheticSpec>
msrcSuite()
{
    // Read/cold ratios from Table 2. Enterprise block traces show
    // moderate skew; rates chosen to load the 16-die array without
    // saturating it at the mildest operating point.
    return {
        spec("stg_0", 0.15, 0.38, 2000.0, 0.7),
        spec("hm_0", 0.36, 0.22, 2000.0, 0.7),
        spec("prn_1", 0.75, 0.72, 2000.0, 0.7),
        spec("proj_1", 0.89, 0.96, 2000.0, 0.7),
        spec("mds_1", 0.92, 0.98, 2000.0, 0.7),
        spec("usr_1", 0.96, 0.73, 2000.0, 0.7),
    };
}

std::vector<SyntheticSpec>
ycsbSuite()
{
    // Key-value point reads: high skew (YCSB zipfian default). The
    // rate keeps the 16-die array loaded but below saturation even
    // at the worst (2K P/E, 1-year) operating point, where a read
    // costs ~21x its fresh latency; saturating the Baseline would
    // let queueing exaggerate the mechanisms' gains.
    return {
        spec("YCSB-A", 0.98, 0.72, 1200.0, 0.9),
        spec("YCSB-B", 0.99, 0.59, 1200.0, 0.9),
        spec("YCSB-C", 0.99, 0.60, 1200.0, 0.9),
        spec("YCSB-D", 0.98, 0.58, 1200.0, 0.9),
        spec("YCSB-E", 0.99, 0.98, 1200.0, 0.9),
        spec("YCSB-F", 0.98, 0.87, 1200.0, 0.9),
    };
}

std::vector<SyntheticSpec>
allWorkloads()
{
    auto all = msrcSuite();
    auto ycsb = ycsbSuite();
    all.insert(all.end(), ycsb.begin(), ycsb.end());
    // seq_scan (not in Table 2): analytics-style cold-region scans.
    // Most reads continue a sequential stream in multi-page chunks,
    // the access shape host-side readahead exists for; kept last so
    // the twelve Table-2 entries stay at their historical indices.
    SyntheticSpec scan = spec("seq_scan", 0.95, 0.8, 2000.0, 0.7);
    scan.seqRatio = 0.7;
    scan.meanPages = 4.0;
    all.push_back(scan);
    return all;
}

bool
tryFindWorkload(const std::string &name, SyntheticSpec *out)
{
    for (const auto &s : allWorkloads()) {
        if (s.name == name) {
            if (out)
                *out = s;
            return true;
        }
    }
    return false;
}

SyntheticSpec
findWorkload(const std::string &name)
{
    SyntheticSpec s;
    if (tryFindWorkload(name, &s))
        return s;
    SSDRR_FATAL("unknown workload: ", name);
}

} // namespace ssdrr::workload

/**
 * @file
 * The twelve evaluated workloads (paper Table 2): six MSR-Cambridge
 * enterprise traces and six YCSB cloud-serving workloads, expressed
 * as synthetic specs matching the published read/cold ratios — plus
 * seq_scan, a scan-heavy extra used by the host-side filter-chain
 * (readahead/cache) scenarios.
 */

#ifndef SSDRR_WORKLOAD_SUITES_HH
#define SSDRR_WORKLOAD_SUITES_HH

#include <vector>

#include "workload/synthetic.hh"

namespace ssdrr::workload {

/** stg_0, hm_0, prn_1, proj_1, mds_1, usr_1. */
std::vector<SyntheticSpec> msrcSuite();

/** YCSB-A .. YCSB-F. */
std::vector<SyntheticSpec> ycsbSuite();

/** All thirteen: the twelve Table-2 entries, MSRC first, then
 *  seq_scan (sequential-heavy cold scans for readahead/cache runs). */
std::vector<SyntheticSpec> allWorkloads();

/** Find a spec by name; fatal if unknown. */
SyntheticSpec findWorkload(const std::string &name);

/** Non-fatal lookup. @retval false if @p name is not a suite entry. */
bool tryFindWorkload(const std::string &name, SyntheticSpec *out);

} // namespace ssdrr::workload

#endif // SSDRR_WORKLOAD_SUITES_HH

/**
 * @file
 * Trace export and summary statistics.
 *
 * Writes traces back to the MSR-Cambridge CSV format [76] (so
 * synthetic Table-2 traces can be consumed by other simulators, and
 * parser/exporter round-trip exactly), and computes the summary
 * profile a storage engineer inspects before a run: rates, size
 * distribution, and read/write mix over time.
 */

#ifndef SSDRR_WORKLOAD_EXPORT_HH
#define SSDRR_WORKLOAD_EXPORT_HH

#include <ostream>
#include <string>

#include "workload/trace.hh"

namespace ssdrr::workload {

struct MsrExportOptions {
    std::uint32_t pageBytes = 16 * 1024;
    /** Hostname column value. */
    std::string host = "ssdrr";
    /** Disk-number column value. */
    std::uint32_t disk = 0;
    /** Timestamp of the first record (Windows filetime, 100 ns). */
    std::uint64_t baseFiletime = 128166372000000000ull;
};

/** Write @p trace as MSR CSV rows to @p out. */
void writeMsrTrace(std::ostream &out, const Trace &trace,
                   const MsrExportOptions &opt = {});

/** Write to a file path; fatal if the file cannot be created. */
void saveMsrTrace(const std::string &path, const Trace &trace,
                  const MsrExportOptions &opt = {});

/** Summary profile of a trace. */
struct TraceProfile {
    std::uint64_t records = 0;
    double readRatio = 0.0;
    double coldRatio = 0.0;
    double avgIops = 0.0;       ///< records per second of trace time
    double avgPagesPerRequest = 0.0;
    std::uint32_t maxPagesPerRequest = 0;
    std::uint64_t footprintPages = 0;
    std::uint64_t distinctReadPages = 0;
    std::uint64_t distinctWrittenPages = 0;
    double durationSec = 0.0;
};

/** Compute the summary profile of @p trace. */
TraceProfile profileTrace(const Trace &trace);

/** Render the profile as a human-readable multi-line string. */
std::string formatProfile(const TraceProfile &profile,
                          const std::string &name);

} // namespace ssdrr::workload

#endif // SSDRR_WORKLOAD_EXPORT_HH

#include "workload/trace.hh"

#include <algorithm>
#include <unordered_set>

#include "sim/logging.hh"

namespace ssdrr::workload {

Trace::Trace(std::string name, std::vector<TraceRecord> records)
    : name_(std::move(name)), records_(std::move(records))
{
    for (std::size_t i = 1; i < records_.size(); ++i)
        SSDRR_ASSERT(records_[i].arrival >= records_[i - 1].arrival,
                     "trace arrivals must be non-decreasing");
}

double
Trace::readRatio() const
{
    if (records_.empty())
        return 0.0;
    std::uint64_t reads = 0;
    for (const auto &r : records_)
        reads += r.isRead ? 1 : 0;
    return static_cast<double>(reads) /
           static_cast<double>(records_.size());
}

double
Trace::coldRatio() const
{
    // Cold ratio (paper Section 7.1): fraction of reads whose target
    // pages are never updated during the entire execution.
    std::unordered_set<std::uint64_t> written;
    for (const auto &r : records_) {
        if (r.isRead)
            continue;
        for (std::uint32_t i = 0; i < r.pages; ++i)
            written.insert(r.lpn + i);
    }
    std::uint64_t reads = 0, cold = 0;
    for (const auto &r : records_) {
        if (!r.isRead)
            continue;
        ++reads;
        bool any_written = false;
        for (std::uint32_t i = 0; i < r.pages && !any_written; ++i)
            any_written = written.count(r.lpn + i) != 0;
        cold += any_written ? 0 : 1;
    }
    return reads ? static_cast<double>(cold) / static_cast<double>(reads)
                 : 0.0;
}

std::uint64_t
Trace::footprintPages() const
{
    std::uint64_t hi = 0;
    for (const auto &r : records_)
        hi = std::max(hi, r.lpn + r.pages);
    return hi;
}

sim::Tick
Trace::duration() const
{
    return records_.empty() ? 0 : records_.back().arrival;
}

void
Trace::foldIntoSpace(std::vector<TraceRecord> &records,
                     std::uint64_t space)
{
    for (auto &r : records) {
        if (r.pages > space)
            r.pages = static_cast<std::uint32_t>(space);
        r.lpn %= space;
        if (r.lpn + r.pages > space)
            r.lpn = space - r.pages;
    }
}

} // namespace ssdrr::workload

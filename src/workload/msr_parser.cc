#include "workload/msr_parser.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace ssdrr::workload {

namespace {

bool
splitCsv(const std::string &line, std::vector<std::string> &fields)
{
    fields.clear();
    std::stringstream ss(line);
    std::string f;
    while (std::getline(ss, f, ','))
        fields.push_back(f);
    return fields.size() >= 6;
}

} // namespace

Trace
parseMsrTrace(std::istream &in, const std::string &name,
              const MsrParseOptions &opt)
{
    std::vector<TraceRecord> recs;
    std::vector<std::string> fields;
    std::string line;
    std::uint64_t skipped = 0;
    std::uint64_t t0 = 0;
    bool have_t0 = false;

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (!splitCsv(line, fields)) {
            ++skipped;
            continue;
        }
        try {
            const std::uint64_t ts = std::stoull(fields[0]);
            const std::string &type = fields[3];
            const std::uint64_t offset = std::stoull(fields[4]);
            const std::uint64_t size = std::stoull(fields[5]);
            if (size == 0) {
                ++skipped;
                continue;
            }
            TraceRecord r;
            const bool is_read = type == "Read" || type == "read";
            const bool is_write = type == "Write" || type == "write";
            if (!is_read && !is_write) {
                ++skipped;
                continue;
            }
            r.isRead = is_read;
            if (!have_t0) {
                t0 = ts;
                have_t0 = true;
            }
            // Windows filetime is in 100 ns units.
            const std::uint64_t rel = opt.rebaseTime ? ts - t0 : ts;
            r.arrival = rel * 100;
            r.lpn = offset / opt.pageBytes;
            const std::uint64_t end =
                (offset + size + opt.pageBytes - 1) / opt.pageBytes;
            r.pages = static_cast<std::uint32_t>(
                std::max<std::uint64_t>(1, end - r.lpn));
            recs.push_back(r);
            if (opt.maxRecords && recs.size() >= opt.maxRecords)
                break;
        } catch (const std::exception &) {
            ++skipped;
        }
    }

    if (skipped)
        SSDRR_WARN("trace ", name, ": skipped ", skipped,
                   " malformed lines");
    std::stable_sort(recs.begin(), recs.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.arrival < b.arrival;
                     });
    return Trace(name, std::move(recs));
}

Trace
loadMsrTrace(const std::string &path, const MsrParseOptions &opt)
{
    std::ifstream in(path);
    if (!in)
        SSDRR_FATAL("cannot open trace file: ", path);
    return parseMsrTrace(in, path, opt);
}

} // namespace ssdrr::workload

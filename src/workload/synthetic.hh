/**
 * @file
 * Synthetic trace generation matched to the paper's Table 2.
 *
 * We do not ship the MSR-Cambridge or YCSB traces; instead each
 * workload is generated to match the two characteristics the paper
 * reports and that drive its results: the read ratio (how much
 * read-retry matters at all) and the cold ratio (how many reads hit
 * long-retention pages, which need many retry steps).
 *
 * Mechanics: the logical space is split into a cold region (only
 * ever read -> pages keep their preconditioned retention age) and a
 * hot region (read and written -> rewritten pages become young).
 * Reads target the cold region with probability close to the target
 * cold ratio; writes only target the hot region. Arrivals are
 * Poisson at a configurable rate; request sizes follow a small
 * geometric distribution; accesses within each region are Zipfian.
 */

#ifndef SSDRR_WORKLOAD_SYNTHETIC_HH
#define SSDRR_WORKLOAD_SYNTHETIC_HH

#include <string>

#include "workload/trace.hh"

namespace ssdrr::workload {

struct SyntheticSpec {
    std::string name = "synthetic";
    double readRatio = 0.5;   ///< Table 2 read ratio target
    double coldRatio = 0.5;   ///< Table 2 cold ratio target
    double iops = 3000.0;     ///< mean arrival rate
    double zipfTheta = 0.8;   ///< skew within each region
    double footprintFraction = 0.5; ///< of logical space touched
    double meanPages = 1.3;   ///< mean request size in pages
    std::uint32_t maxPages = 8;
    /**
     * Fraction of reads that continue a sequential scan of the cold
     * region instead of drawing a Zipfian page (0 = fully random,
     * the Table-2 default). Models scan-heavy tenants whose streams
     * host-side readahead can detect.
     */
    double seqRatio = 0.0;
};

/**
 * Generate @p requests records over a logical space of
 * @p logical_pages pages.
 */
Trace generateSynthetic(const SyntheticSpec &spec,
                        std::uint64_t logical_pages,
                        std::uint64_t requests, std::uint64_t seed);

} // namespace ssdrr::workload

#endif // SSDRR_WORKLOAD_SYNTHETIC_HH

#include "workload/export.hh"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "sim/logging.hh"

namespace ssdrr::workload {

void
writeMsrTrace(std::ostream &out, const Trace &trace,
              const MsrExportOptions &opt)
{
    SSDRR_ASSERT(opt.pageBytes > 0, "page size must be positive");
    for (const TraceRecord &r : trace.records()) {
        // Arrival ticks are nanoseconds; filetime counts 100 ns.
        const std::uint64_t ts = opt.baseFiletime + r.arrival / 100;
        const std::uint64_t offset =
            r.lpn * static_cast<std::uint64_t>(opt.pageBytes);
        const std::uint64_t size =
            static_cast<std::uint64_t>(r.pages) * opt.pageBytes;
        out << ts << ',' << opt.host << ',' << opt.disk << ','
            << (r.isRead ? "Read" : "Write") << ',' << offset << ','
            << size << ",0\n";
    }
}

void
saveMsrTrace(const std::string &path, const Trace &trace,
             const MsrExportOptions &opt)
{
    std::ofstream out(path);
    if (!out)
        SSDRR_FATAL("cannot create trace file: ", path);
    writeMsrTrace(out, trace, opt);
}

TraceProfile
profileTrace(const Trace &trace)
{
    TraceProfile p;
    p.records = trace.size();
    if (trace.empty())
        return p;

    p.readRatio = trace.readRatio();
    p.coldRatio = trace.coldRatio();
    p.footprintPages = trace.footprintPages();
    p.durationSec = sim::toMsec(trace.duration()) / 1000.0;
    p.avgIops = p.durationSec > 0.0
                    ? static_cast<double>(p.records) / p.durationSec
                    : 0.0;

    std::unordered_set<std::uint64_t> read_pages, written_pages;
    std::uint64_t total_pages = 0;
    for (const TraceRecord &r : trace.records()) {
        total_pages += r.pages;
        p.maxPagesPerRequest = std::max(p.maxPagesPerRequest, r.pages);
        auto &set = r.isRead ? read_pages : written_pages;
        for (std::uint32_t i = 0; i < r.pages; ++i)
            set.insert(r.lpn + i);
    }
    p.avgPagesPerRequest =
        static_cast<double>(total_pages) / static_cast<double>(p.records);
    p.distinctReadPages = read_pages.size();
    p.distinctWrittenPages = written_pages.size();
    return p;
}

std::string
formatProfile(const TraceProfile &p, const std::string &name)
{
    std::ostringstream os;
    os << "trace " << name << ": " << p.records << " requests over "
       << p.durationSec << " s (" << p.avgIops << " IOPS)\n"
       << "  read ratio " << p.readRatio << ", cold ratio "
       << p.coldRatio << "\n"
       << "  request size avg " << p.avgPagesPerRequest << " pages, max "
       << p.maxPagesPerRequest << "\n"
       << "  footprint " << p.footprintPages << " pages ("
       << p.distinctReadPages << " read, " << p.distinctWrittenPages
       << " written distinct)\n";
    return os.str();
}

} // namespace ssdrr::workload

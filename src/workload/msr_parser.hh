/**
 * @file
 * Parser for MSR-Cambridge block I/O traces [76].
 *
 * Format (CSV): Timestamp,Hostname,DiskNumber,Type,Offset,Size,
 * ResponseTime, with the timestamp in Windows filetime units
 * (100 ns since 1601) and offset/size in bytes. Users who have the
 * original traces can replay them directly; the repository's
 * benches default to the synthetic Table 2 generators.
 */

#ifndef SSDRR_WORKLOAD_MSR_PARSER_HH
#define SSDRR_WORKLOAD_MSR_PARSER_HH

#include <istream>
#include <string>

#include "workload/trace.hh"

namespace ssdrr::workload {

struct MsrParseOptions {
    std::uint32_t pageBytes = 16 * 1024;
    /** Keep at most this many records (0 = all). */
    std::uint64_t maxRecords = 0;
    /** Rebase arrival times so the first record starts at 0. */
    bool rebaseTime = true;
};

/** Parse an MSR CSV stream; malformed lines are skipped (warned). */
Trace parseMsrTrace(std::istream &in, const std::string &name,
                    const MsrParseOptions &opt = {});

/** Parse from a file path; fatal if the file cannot be opened. */
Trace loadMsrTrace(const std::string &path,
                   const MsrParseOptions &opt = {});

} // namespace ssdrr::workload

#endif // SSDRR_WORKLOAD_MSR_PARSER_HH

/**
 * @file
 * Block I/O trace representation plus the I/O characteristics the
 * paper reports per workload (Table 2: read ratio and cold ratio).
 */

#ifndef SSDRR_WORKLOAD_TRACE_HH
#define SSDRR_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace ssdrr::workload {

struct TraceRecord {
    sim::Tick arrival = 0;
    std::uint64_t lpn = 0;     ///< first logical page
    std::uint32_t pages = 1;   ///< request length in pages
    bool isRead = true;
};

class Trace
{
  public:
    Trace() = default;
    Trace(std::string name, std::vector<TraceRecord> records);

    const std::string &name() const { return name_; }
    const std::vector<TraceRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    /** Fraction of read requests (Table 2 "Read ratio"). */
    double readRatio() const;

    /**
     * Fraction of read requests whose target pages are never
     * written during the trace (Table 2 "Cold ratio").
     */
    double coldRatio() const;

    /** Largest LPN touched plus one. */
    std::uint64_t footprintPages() const;

    /** Arrival time of the last record. */
    sim::Tick duration() const;

    /**
     * Fold @p records into a logical space of @p space pages:
     * oversized requests are clamped to the space, LPNs wrap modulo
     * @p space, and requests running past the end are shifted back
     * so they fit. Used wherever a foreign trace (or slice of one)
     * is replayed against a smaller logical capacity.
     */
    static void foldIntoSpace(std::vector<TraceRecord> &records,
                              std::uint64_t space);

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
};

} // namespace ssdrr::workload

#endif // SSDRR_WORKLOAD_TRACE_HH

#include "workload/synthetic.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ssdrr::workload {

Trace
generateSynthetic(const SyntheticSpec &spec, std::uint64_t logical_pages,
                  std::uint64_t requests, std::uint64_t seed)
{
    SSDRR_ASSERT(spec.readRatio >= 0.0 && spec.readRatio <= 1.0,
                 "read ratio out of range");
    SSDRR_ASSERT(spec.coldRatio >= 0.0 && spec.coldRatio <= 1.0,
                 "cold ratio out of range");
    SSDRR_ASSERT(spec.iops > 0.0, "iops must be positive");
    SSDRR_ASSERT(logical_pages >= 64, "logical space too small");

    sim::Rng rng(sim::hashStream(seed, 0x517E, requests));

    const auto footprint = static_cast<std::uint64_t>(
        std::max(32.0, static_cast<double>(logical_pages) *
                           std::clamp(spec.footprintFraction, 0.01, 1.0)));

    // The cold region absorbs coldRatio of the reads. Its size is
    // proportional to the cold read share so region densities are
    // comparable; at least a few pages each.
    auto cold_pages = static_cast<std::uint64_t>(
        static_cast<double>(footprint) * spec.coldRatio);
    cold_pages = std::clamp<std::uint64_t>(cold_pages, 16, footprint - 16);
    const std::uint64_t hot_pages = footprint - cold_pages;

    // Cold region occupies the top of the touched space so hot LPNs
    // are dense and low (helps trace readability).
    const std::uint64_t cold_base = hot_pages;

    sim::ZipfGenerator cold_pick(cold_pages, spec.zipfTheta);
    sim::ZipfGenerator hot_pick(hot_pages, spec.zipfTheta);

    // Request sizes: geometric around meanPages.
    const double size_p =
        std::clamp(1.0 / std::max(spec.meanPages, 1.0), 0.2, 1.0);

    std::vector<TraceRecord> recs;
    recs.reserve(requests);
    double t_ns = 0.0;
    const double mean_gap_ns = 1e9 / spec.iops;
    // Sequential-scan cursor over the cold region (seqRatio > 0).
    std::uint64_t seq_next = cold_base;

    for (std::uint64_t i = 0; i < requests; ++i) {
        t_ns += rng.exponential(1.0 / mean_gap_ns);
        TraceRecord r;
        r.arrival = static_cast<sim::Tick>(t_ns);
        r.isRead = rng.chance(spec.readRatio);
        r.pages = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(1 + rng.geometric(size_p),
                                    spec.maxPages));
        // The seqRatio > 0 guard short-circuits the chance() draw, so
        // seqRatio == 0 consumes exactly the legacy RNG stream and
        // every Table-2 trace stays bit-identical.
        if (r.isRead && spec.seqRatio > 0.0 &&
            rng.chance(spec.seqRatio)) {
            if (seq_next + r.pages > cold_base + cold_pages)
                seq_next = cold_base; // wrap the scan
            r.lpn = seq_next;
            seq_next += r.pages;
            recs.push_back(r);
            continue;
        }
        if (r.isRead && rng.chance(spec.coldRatio)) {
            const std::uint64_t off = cold_pick(rng);
            r.lpn = cold_base + std::min(off, cold_pages - r.pages);
        } else {
            const std::uint64_t off = hot_pick(rng);
            r.lpn = std::min(off, hot_pages - r.pages);
        }
        recs.push_back(r);
    }

    // Second pass: pin the trace's measured cold ratio to the spec.
    // A read is "cold" iff none of its pages is ever written during
    // the trace (Table 2); reads aimed at the cold region qualify by
    // construction (writes never target it), but a hot-region read
    // can still miss every written page when the write working set
    // is small. Redirect such reads onto written pages so the warm
    // share matches the spec.
    std::unordered_set<std::uint64_t> written;
    std::vector<std::uint64_t> written_list;
    for (const TraceRecord &r : recs) {
        if (r.isRead)
            continue;
        for (std::uint32_t i = 0; i < r.pages; ++i) {
            if (written.insert(r.lpn + i).second)
                written_list.push_back(r.lpn + i);
        }
    }
    if (!written_list.empty()) {
        for (TraceRecord &r : recs) {
            if (!r.isRead || r.lpn >= cold_base)
                continue;
            bool warm = false;
            for (std::uint32_t i = 0; i < r.pages && !warm; ++i)
                warm = written.count(r.lpn + i) != 0;
            if (!warm) {
                r.lpn = written_list[rng.uniformInt(written_list.size())];
            }
        }
    }

    return Trace(spec.name, std::move(recs));
}

} // namespace ssdrr::workload

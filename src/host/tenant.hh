/**
 * @file
 * Per-tenant workload injection and latency accounting.
 *
 * A tenant binds a workload (a pre-generated trace: synthetic spec or
 * MSR trace slice, see host/scenario.hh) to one queue pair, and
 * injects it either open-loop (requests posted at their trace arrival
 * times, backlogging when the queue pair is full) or closed-loop
 * (a fixed window of outstanding requests; the next request is posted
 * the moment a completion frees a slot). Per-request latency is
 * measured from intended arrival (open-loop) or post time
 * (closed-loop) to completion, so host-side queueing is included.
 *
 * Options beyond the injection mode:
 *  - QoS: a token-bucket rate limit and/or latency SLO attached to
 *    the tenant's queue pair (enforced by the host interface's
 *    command-fetch arbitration, see host/queue_pair.hh).
 *  - Channel affinity: a channel mask stamped on every request, so
 *    the tenant's writes stay on its channel subset.
 *  - Time horizon: an open-loop tenant can run to a simulated-time
 *    horizon instead of a fixed request count — the trace is
 *    replayed in laps (arrivals offset by the trace span per lap)
 *    and injection stops at the horizon.
 */

#ifndef SSDRR_HOST_TENANT_HH
#define SSDRR_HOST_TENANT_HH

#include <cstdint>
#include <string>

#include "host/host_interface.hh"
#include "sim/stats.hh"
#include "workload/trace.hh"

namespace ssdrr::host {

enum class InjectionMode {
    OpenLoop,   ///< trace arrival times drive submission
    ClosedLoop, ///< fixed queue-depth window, completion-driven
};

/** How a tenant injects its trace and what QoS contract it holds. */
struct TenantOptions {
    InjectionMode mode = InjectionMode::ClosedLoop;
    /** Closed-loop window; must not exceed the queue-pair depth. */
    std::uint32_t qdLimit = 16;
    /** WRR arbitration weight. */
    std::uint32_t weight = 1;
    /** Token-bucket rate limit in commands/second (0 = unlimited). */
    double rateIops = 0.0;
    /** Token-bucket depth in commands (0 = 1, strict pacing). */
    double burst = 0.0;
    /** Latency SLO in microseconds (0 = best-effort); honoured by
     *  the "slo" arbitration policy. */
    double sloUs = 0.0;
    /** Channel-affinity mask (bit c = channel c; 0 = all channels),
     *  stamped on every request the tenant posts. */
    std::uint32_t channelMask = 0;
    /** Open-loop stop condition: inject until this much simulated
     *  time has passed (microseconds; 0 = replay the trace once),
     *  wrapping the trace as many times as needed. */
    double horizonUs = 0.0;
};

/** End-of-run per-tenant latency summary. */
struct TenantStats {
    std::string name;
    std::uint64_t completed = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double avgUs = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double maxUs = 0.0;
    /** Read-only latency tail (retry effects are read-side). */
    double readP50Us = 0.0;
    double readP99Us = 0.0;
    double readP999Us = 0.0;
    /** Completed commands per second of tenant-active simulated time
     *  (start() to last completion); the token-bucket observable. */
    double achievedIops = 0.0;
};

class Tenant
{
  public:
    /**
     * @param name display name
     * @param trace workload over the tenant's own LPN range (already
     *              offset into the array's global space)
     * @param opt injection mode, window, weight and QoS contract
     * @param hif host interface; the tenant creates its own queue
     *            pair on it with the options' weight and QoS
     */
    Tenant(std::string name, workload::Trace trace,
           const TenantOptions &opt, HostInterface &hif);

    /** Legacy convenience (open/closed loop, no QoS). */
    Tenant(std::string name, workload::Trace trace, InjectionMode mode,
           std::uint32_t qd_limit, std::uint32_t weight,
           HostInterface &hif);

    /** Begin injection (schedules onto the shared event queue). */
    void start();

    const std::string &tenantName() const { return name_; }
    std::uint32_t qid() const { return qid_; }
    InjectionMode mode() const { return opt_.mode; }
    const TenantOptions &options() const { return opt_; }

    bool done() const;
    std::uint64_t completed() const { return completed_; }
    std::uint32_t inflight() const { return inflight_; }
    /** High-water mark of in-flight requests (QD invariant checks). */
    std::uint32_t maxInflightSeen() const { return max_inflight_; }

    TenantStats stats() const;
    /** All-request latency distribution (merge of reads + writes). */
    sim::Histogram
    latencies() const
    {
        sim::Histogram all = lat_read_;
        all.merge(lat_write_);
        return all;
    }
    const sim::Histogram &readLatencies() const { return lat_read_; }

  private:
    void postNext();
    void scheduleNextArrival();
    void openLoopArrival();
    void onComplete(const ssd::HostCompletion &c);
    bool tryPost(std::uint64_t index, sim::Tick arrival);
    /** Intended arrival of monotonic record index @p index (laps
     *  offset by the trace span under a horizon). */
    sim::Tick arrivalOf(std::uint64_t index) const;
    /** Total records to inject (trace size, or unbounded under a
     *  horizon until the stop condition fires). */
    bool injectionDone() const;

    std::string name_;
    workload::Trace trace_;
    TenantOptions opt_;
    HostInterface &hif_;
    std::uint32_t qid_;

    sim::Tick base_ = 0;     ///< simulated time of start()
    sim::Tick horizon_ = 0;  ///< ticks; 0 = one full trace replay
    sim::Tick span_ = 0;     ///< per-lap arrival offset (horizon mode)
    std::uint64_t next_ = 0;  ///< next record to post (monotonic)
    std::uint64_t sched_ = 0; ///< open-loop: next arrival to schedule
    std::uint64_t arrivals_ = 0; ///< open-loop arrivals scheduled
    bool injection_stopped_ = false; ///< horizon reached
    std::size_t backlog_ = 0; ///< open-loop: arrivals not yet posted
    std::uint32_t inflight_ = 0;
    std::uint32_t max_inflight_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t reads_done_ = 0;
    std::uint64_t writes_done_ = 0;
    sim::Tick last_complete_ = 0;

    sim::Histogram lat_read_;
    sim::Histogram lat_write_;
};

} // namespace ssdrr::host

#endif // SSDRR_HOST_TENANT_HH

/**
 * @file
 * Per-tenant workload injection and latency accounting.
 *
 * A tenant binds a workload (a pre-generated trace: synthetic spec or
 * MSR trace slice, see host/scenario.hh) to one queue pair, and
 * injects it either open-loop (requests posted at their trace arrival
 * times, backlogging when the queue pair is full) or closed-loop
 * (a fixed window of outstanding requests; the next request is posted
 * the moment a completion frees a slot). Per-request latency is
 * measured from intended arrival (open-loop) or post time
 * (closed-loop) to completion, so host-side queueing is included.
 */

#ifndef SSDRR_HOST_TENANT_HH
#define SSDRR_HOST_TENANT_HH

#include <cstdint>
#include <string>

#include "host/host_interface.hh"
#include "sim/stats.hh"
#include "workload/trace.hh"

namespace ssdrr::host {

enum class InjectionMode {
    OpenLoop,   ///< trace arrival times drive submission
    ClosedLoop, ///< fixed queue-depth window, completion-driven
};

/** End-of-run per-tenant latency summary. */
struct TenantStats {
    std::string name;
    std::uint64_t completed = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double avgUs = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double maxUs = 0.0;
    /** Read-only latency tail (retry effects are read-side). */
    double readP50Us = 0.0;
    double readP99Us = 0.0;
    double readP999Us = 0.0;
};

class Tenant
{
  public:
    /**
     * @param name display name
     * @param trace workload over the tenant's own LPN range (already
     *              offset into the array's global space)
     * @param mode open- or closed-loop injection
     * @param qd_limit closed-loop window (ignored open-loop); must
     *                 not exceed the queue-pair depth
     * @param hif host interface; the tenant creates its own queue
     *            pair on it with @p weight
     */
    Tenant(std::string name, workload::Trace trace, InjectionMode mode,
           std::uint32_t qd_limit, std::uint32_t weight,
           HostInterface &hif);

    /** Begin injection (schedules onto the shared event queue). */
    void start();

    const std::string &tenantName() const { return name_; }
    std::uint32_t qid() const { return qid_; }
    InjectionMode mode() const { return mode_; }

    bool done() const { return completed_ == trace_.size(); }
    std::uint64_t completed() const { return completed_; }
    std::uint32_t inflight() const { return inflight_; }
    /** High-water mark of in-flight requests (QD invariant checks). */
    std::uint32_t maxInflightSeen() const { return max_inflight_; }

    TenantStats stats() const;
    /** All-request latency distribution (merge of reads + writes). */
    sim::Histogram
    latencies() const
    {
        sim::Histogram all = lat_read_;
        all.merge(lat_write_);
        return all;
    }
    const sim::Histogram &readLatencies() const { return lat_read_; }

  private:
    void postNext();
    void scheduleNextArrival();
    void openLoopArrival();
    void onComplete(const ssd::HostCompletion &c);
    bool tryPost(std::size_t index, sim::Tick arrival);

    std::string name_;
    workload::Trace trace_;
    InjectionMode mode_;
    std::uint32_t qd_limit_;
    HostInterface &hif_;
    std::uint32_t qid_;

    sim::Tick base_ = 0;        ///< simulated time of start()
    std::size_t next_ = 0;      ///< next trace record to post
    std::size_t sched_ = 0;     ///< open-loop: next arrival to schedule
    std::size_t backlog_ = 0;   ///< open-loop: arrivals not yet posted
    std::uint32_t inflight_ = 0;
    std::uint32_t max_inflight_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t reads_done_ = 0;
    std::uint64_t writes_done_ = 0;

    sim::Histogram lat_read_;
    sim::Histogram lat_write_;
};

} // namespace ssdrr::host

#endif // SSDRR_HOST_TENANT_HH

#include "host/tenant.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ssdrr::host {

Tenant::Tenant(std::string name, workload::Trace trace,
               const TenantOptions &opt, HostInterface &hif)
    : name_(std::move(name)), trace_(std::move(trace)), opt_(opt),
      hif_(hif),
      qid_(hif.addQueuePair(opt.weight,
                            QueueQos{opt.rateIops, opt.burst,
                                     opt.sloUs}))
{
    SSDRR_ASSERT(opt_.qdLimit >= 1, "tenant needs a QD of at least 1");
    SSDRR_ASSERT(opt_.mode == InjectionMode::OpenLoop ||
                     opt_.qdLimit <= hif.options().queueDepth,
                 "closed-loop QD ", opt_.qdLimit,
                 " exceeds queue-pair depth ",
                 hif.options().queueDepth);
    SSDRR_ASSERT(opt_.horizonUs == 0.0 ||
                     opt_.mode == InjectionMode::OpenLoop,
                 "a time horizon needs open-loop injection "
                 "(closed-loop replays its trace once)");
    horizon_ = sim::usec(opt_.horizonUs);
    hif_.bindCompletion(
        qid_, [this](const ssd::HostCompletion &c) { onComplete(c); });
}

Tenant::Tenant(std::string name, workload::Trace trace,
               InjectionMode mode, std::uint32_t qd_limit,
               std::uint32_t weight, HostInterface &hif)
    : Tenant(std::move(name), std::move(trace),
             [&] {
                 TenantOptions o;
                 o.mode = mode;
                 o.qdLimit = qd_limit;
                 o.weight = weight;
                 return o;
             }(),
             hif)
{
}

sim::Tick
Tenant::arrivalOf(std::uint64_t index) const
{
    const std::uint64_t lap = index / trace_.size();
    const workload::TraceRecord &rec =
        trace_.records()[index % trace_.size()];
    return base_ + lap * span_ + rec.arrival;
}

bool
Tenant::injectionDone() const
{
    if (opt_.mode == InjectionMode::ClosedLoop)
        return next_ >= trace_.size();
    return injection_stopped_;
}

bool
Tenant::done() const
{
    if (trace_.empty())
        return true;
    return injectionDone() && backlog_ == 0 && inflight_ == 0 &&
           (opt_.mode == InjectionMode::ClosedLoop
                ? completed_ == trace_.size()
                : completed_ == arrivals_);
}

bool
Tenant::tryPost(std::uint64_t index, sim::Tick arrival)
{
    const workload::TraceRecord &rec =
        trace_.records()[index % trace_.size()];
    ssd::HostRequest req;
    req.arrival = arrival;
    req.lpn = rec.lpn;
    req.pages = rec.pages;
    req.isRead = rec.isRead;
    req.channelMask = opt_.channelMask;
    if (!hif_.post(qid_, req))
        return false;
    ++next_;
    ++inflight_;
    max_inflight_ = std::max(max_inflight_, inflight_);
    return true;
}

void
Tenant::postNext()
{
    sim::EventQueue &eq = hif_.array().eventQueue();
    if (opt_.mode == InjectionMode::ClosedLoop) {
        while (inflight_ < opt_.qdLimit && next_ < trace_.size()) {
            if (!tryPost(next_, eq.now()))
                break; // SQ full: resume on the next completion
        }
    } else {
        while (backlog_ > 0) {
            if (!tryPost(next_, arrivalOf(next_)))
                break;
            --backlog_;
        }
    }
}

void
Tenant::scheduleNextArrival()
{
    if (injection_stopped_)
        return;
    if (sched_ >= trace_.size() && horizon_ == 0) {
        injection_stopped_ = true; // trace replayed once
        return;
    }
    const sim::Tick when = arrivalOf(sched_);
    if (horizon_ > 0 && when >= base_ + horizon_) {
        injection_stopped_ = true; // horizon reached
        return;
    }
    ++sched_;
    ++arrivals_;
    hif_.array().eventQueue().schedule(when,
                                       [this] { openLoopArrival(); });
}

void
Tenant::openLoopArrival()
{
    ++backlog_;
    // Chain instead of pre-scheduling every record in start(): a
    // multi-million-row trace would otherwise sit in the event queue
    // as live closures before any work runs.
    scheduleNextArrival();
    postNext();
}

void
Tenant::start()
{
    if (trace_.empty())
        return;
    sim::EventQueue &eq = hif_.array().eventQueue();
    base_ = eq.now();
    if (horizon_ > 0) {
        // Per-lap offset for trace wrap-around: the trace span plus
        // one mean inter-arrival gap, so the first record of lap k+1
        // follows the last record of lap k at the trace's own rate.
        const sim::Tick last = trace_.records().back().arrival;
        const sim::Tick gap =
            trace_.size() > 1
                ? last / static_cast<sim::Tick>(trace_.size() - 1)
                : 0;
        span_ = std::max<sim::Tick>(last + gap, 1);
    }
    if (opt_.mode == InjectionMode::ClosedLoop) {
        // Fill the window now; completions keep it full.
        eq.scheduleAfter(0, [this] { postNext(); });
        return;
    }
    scheduleNextArrival();
}

void
Tenant::onComplete(const ssd::HostCompletion &c)
{
    SSDRR_ASSERT(inflight_ > 0, "completion with no request in flight");
    --inflight_;
    ++completed_;
    last_complete_ = hif_.array().eventQueue().now();
    // Each completion is recorded once (read or write histogram);
    // the all-request view is a merge at reporting time.
    if (c.isRead) {
        ++reads_done_;
        lat_read_.add(c.responseUs);
    } else {
        ++writes_done_;
        lat_write_.add(c.responseUs);
    }
    postNext();
}

TenantStats
Tenant::stats() const
{
    TenantStats s;
    s.name = name_;
    s.completed = completed_;
    s.reads = reads_done_;
    s.writes = writes_done_;
    const sim::Histogram lat_all = latencies();
    if (lat_all.count()) {
        s.avgUs = lat_all.mean();
        s.p50Us = lat_all.percentile(50.0);
        s.p99Us = lat_all.percentile(99.0);
        s.p999Us = lat_all.percentile(99.9);
        s.maxUs = lat_all.max();
    }
    if (lat_read_.count()) {
        s.readP50Us = lat_read_.percentile(50.0);
        s.readP99Us = lat_read_.percentile(99.0);
        s.readP999Us = lat_read_.percentile(99.9);
    }
    if (completed_ > 0 && last_complete_ > base_)
        s.achievedIops = static_cast<double>(completed_) /
                         (static_cast<double>(last_complete_ - base_) *
                          1e-9);
    return s;
}

} // namespace ssdrr::host

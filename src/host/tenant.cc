#include "host/tenant.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ssdrr::host {

Tenant::Tenant(std::string name, workload::Trace trace,
               InjectionMode mode, std::uint32_t qd_limit,
               std::uint32_t weight, HostInterface &hif)
    : name_(std::move(name)), trace_(std::move(trace)), mode_(mode),
      qd_limit_(qd_limit), hif_(hif), qid_(hif.addQueuePair(weight))
{
    SSDRR_ASSERT(qd_limit_ >= 1, "tenant needs a QD of at least 1");
    SSDRR_ASSERT(mode_ == InjectionMode::OpenLoop ||
                     qd_limit_ <= hif.options().queueDepth,
                 "closed-loop QD ", qd_limit_,
                 " exceeds queue-pair depth ",
                 hif.options().queueDepth);
    hif_.bindCompletion(
        qid_, [this](const ssd::HostCompletion &c) { onComplete(c); });
}

bool
Tenant::tryPost(std::size_t index, sim::Tick arrival)
{
    const workload::TraceRecord &rec = trace_.records()[index];
    ssd::HostRequest req;
    req.arrival = arrival;
    req.lpn = rec.lpn;
    req.pages = rec.pages;
    req.isRead = rec.isRead;
    if (!hif_.post(qid_, req))
        return false;
    ++next_;
    ++inflight_;
    max_inflight_ = std::max(max_inflight_, inflight_);
    return true;
}

void
Tenant::postNext()
{
    sim::EventQueue &eq = hif_.array().eventQueue();
    if (mode_ == InjectionMode::ClosedLoop) {
        while (inflight_ < qd_limit_ && next_ < trace_.size()) {
            if (!tryPost(next_, eq.now()))
                break; // SQ full: resume on the next completion
        }
    } else {
        while (backlog_ > 0) {
            const workload::TraceRecord &rec = trace_.records()[next_];
            if (!tryPost(next_, base_ + rec.arrival))
                break;
            --backlog_;
        }
    }
}

void
Tenant::scheduleNextArrival()
{
    if (sched_ >= trace_.size())
        return;
    const sim::Tick when = base_ + trace_.records()[sched_].arrival;
    ++sched_;
    hif_.array().eventQueue().schedule(when,
                                       [this] { openLoopArrival(); });
}

void
Tenant::openLoopArrival()
{
    ++backlog_;
    // Chain instead of pre-scheduling every record in start(): a
    // multi-million-row trace would otherwise sit in the event queue
    // as live closures before any work runs.
    scheduleNextArrival();
    postNext();
}

void
Tenant::start()
{
    if (trace_.empty())
        return;
    sim::EventQueue &eq = hif_.array().eventQueue();
    base_ = eq.now();
    if (mode_ == InjectionMode::ClosedLoop) {
        // Fill the window now; completions keep it full.
        eq.scheduleAfter(0, [this] { postNext(); });
        return;
    }
    scheduleNextArrival();
}

void
Tenant::onComplete(const ssd::HostCompletion &c)
{
    SSDRR_ASSERT(inflight_ > 0, "completion with no request in flight");
    --inflight_;
    ++completed_;
    // Each completion is recorded once (read or write histogram);
    // the all-request view is a merge at reporting time.
    if (c.isRead) {
        ++reads_done_;
        lat_read_.add(c.responseUs);
    } else {
        ++writes_done_;
        lat_write_.add(c.responseUs);
    }
    postNext();
}

TenantStats
Tenant::stats() const
{
    TenantStats s;
    s.name = name_;
    s.completed = completed_;
    s.reads = reads_done_;
    s.writes = writes_done_;
    const sim::Histogram lat_all = latencies();
    if (lat_all.count()) {
        s.avgUs = lat_all.mean();
        s.p50Us = lat_all.percentile(50.0);
        s.p99Us = lat_all.percentile(99.0);
        s.p999Us = lat_all.percentile(99.9);
        s.maxUs = lat_all.max();
    }
    if (lat_read_.count()) {
        s.readP50Us = lat_read_.percentile(50.0);
        s.readP99Us = lat_read_.percentile(99.0);
        s.readP999Us = lat_read_.percentile(99.9);
    }
    return s;
}

} // namespace ssdrr::host

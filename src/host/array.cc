#include "host/array.hh"

#include "sim/logging.hh"

namespace ssdrr::host {

SsdArray::SsdArray(const ssd::Config &cfg, core::Mechanism mech,
                   std::uint32_t drives, sim::Tick host_link,
                   std::uint32_t threads)
    : SsdArray(cfg, mech, [&] {
          Options opt;
          opt.drives = drives;
          opt.hostLink = host_link;
          opt.threads = threads;
          return opt;
      }())
{
}

SsdArray::SsdArray(const ssd::Config &cfg, core::Mechanism mech,
                   const Options &opt)
    : mech_(mech), link_(opt.hostLink),
      layout_(makeArrayLayout(opt.raid, opt.drives,
                              opt.stripeUnitPages, opt.failedDrives)),
      timeout_(opt.timeout), retry_max_(opt.retryMax),
      retry_backoff_(opt.retryBackoff)
{
    SSDRR_ASSERT(opt.drives >= 1, "array needs at least one drive");
    for (std::uint32_t d : opt.failedDrives)
        dead_mask_ |= std::uint64_t{1} << d;
    if (!opt.faults.empty()) {
        faults_ = std::make_unique<sim::FaultInjector>(
            opt.faults, opt.faultSeed, opt.drives);
        // A fail-stopped drive stops completing; only the deadline
        // machinery can rescue its in-flight subrequests.
        SSDRR_ASSERT(!faults_->anyFailStop() || timeout_ > 0,
                     "fail-stop faults require a host timeout");
        // Detection: the host learns of a fail-stop when commands to
        // the drive stop answering — modeled as a deterministic,
        // traffic-independent event at the fail tick + timeout.
        for (std::uint32_t d = 0; d < opt.drives; ++d) {
            const sim::Tick t = faults_->failStopTick(d);
            if (t == sim::kTickNever)
                continue;
            eq_.schedule(t + timeout_,
                         [this, d] { onDriveDetected(d); });
        }
    }
    if (!opt.fabric.empty()) {
        // Fabric engine: same sharded machinery, but crossings are
        // routed hop-by-hop. The conservative window is the cheapest
        // link's latency — no hop can deliver faster than that.
        SSDRR_ASSERT(link_ == 0,
                     "fabric and hostLink are mutually exclusive");
        fabric::Topology topo =
            fabric::Topology::compile(opt.fabric, opt.drives);
        exec_ = std::make_unique<sim::ParallelExecutor>(
            topo.minLinkLatency(), opt.threads == 0 ? 1 : opt.threads,
            opt.batchMailbox);
        host_dom_ = exec_->addDomain(eq_);
        // Registers the switch domains, in node-declaration order.
        fabric_ = std::make_unique<fabric::Fabric>(std::move(topo),
                                                   *exec_, host_dom_,
                                                   eq_);
    } else if (link_ > 0) {
        exec_ = std::make_unique<sim::ParallelExecutor>(
            link_, opt.threads == 0 ? 1 : opt.threads,
            opt.batchMailbox);
        host_dom_ = exec_->addDomain(eq_);
    }
    for (std::uint32_t d = 0; d < opt.drives; ++d) {
        ssd::Config dc = cfg;
        // Distinct per-drive seeds: real drives do not share error
        // patterns, and identical seeds would correlate retry storms
        // across the stripe.
        dc.seed = cfg.seed + d * 0x9e3779b9ull;
        if (exec_) {
            // Sharded engine: the drive owns a private queue; the
            // executor synchronizes it against the host at
            // host-link-wide windows.
            ssds_.push_back(std::make_unique<ssd::Ssd>(dc, mech));
            drive_dom_.push_back(
                exec_->addDomain(ssds_.back()->eventQueue()));
            if (fabric_)
                fabric_->attachDrive(d, drive_dom_.back(),
                                     ssds_.back()->eventQueue());
            ssds_.back()->onHostComplete(
                [this, d](const ssd::HostCompletion &c) {
                    driveComplete(d, c);
                });
        } else {
            ssds_.push_back(std::make_unique<ssd::Ssd>(dc, mech, eq_));
            ssds_.back()->onHostComplete(
                [this](const ssd::HostCompletion &c) {
                    subComplete(c);
                });
        }
    }
    logical_pages_ =
        layout_->logicalPages(ssds_.front()->config().logicalPages());
}

void
SsdArray::precondition()
{
    for (auto &s : ssds_)
        s->precondition();
}

void
SsdArray::dispatch(std::uint32_t d, const ssd::HostRequest &sub)
{
    if (!exec_) {
        ssds_[d]->submit(sub);
        return;
    }
    if (fabric_) {
        // Fabric mode: the command rides the precomputed path to the
        // drive's port, contending for every shared hop. Writes
        // serialize their payload on the way down; read commands are
        // latency-only. The drive accounts its device-side latency
        // from the (contention-dependent) delivery tick.
        const std::uint64_t bytes =
            sub.isRead ? 0
                       : static_cast<std::uint64_t>(sub.pages) *
                             pageBytes();
        ssd::HostRequest delivered = sub;
        fabric_->toDrive(
            d, bytes, sub.isRead, [this, d, delivered]() mutable {
                delivered.arrival = ssds_[d]->eventQueue().now();
                ssds_[d]->submit(delivered);
            });
        return;
    }
    // Sharded mode: the command crosses the host link. The drive
    // sees it — and accounts its device-side latency from — the
    // delivery tick.
    ssd::HostRequest delivered = sub;
    delivered.arrival = eq_.now() + link_;
    exec_->send(host_dom_, drive_dom_[d], delivered.arrival,
                [this, d, delivered] { ssds_[d]->submit(delivered); });
}

void
SsdArray::issueSub(std::uint64_t parent_id, sim::Tick arrival,
                   std::uint32_t channel_mask,
                   const ArrayLayout::SubOp &op, std::uint32_t attempt)
{
    if (attempt == 1) {
        // Layout accounting counts logical ops once; reissues of the
        // same op are host retries, not extra reconstruction fan-out.
        if (op.isRead) {
            if (op.cls == ArrayLayout::OpClass::Rebuild)
                ++reconstruction_reads_;
        } else if (op.cls == ArrayLayout::OpClass::Parity) {
            ++parity_writes_;
        }
    }
    ssd::HostRequest sub;
    sub.id = next_sub_id_++;
    sub.arrival = arrival;
    sub.lpn = op.lpn;
    sub.pages = op.pages;
    sub.isRead = op.isRead;
    sub.channelMask = channel_mask;

    SubState st;
    st.parent = parent_id;
    st.op = op;
    st.channelMask = channel_mask;
    st.attempt = attempt;
    // A fail-stopped drive swallows the command: nothing is
    // dispatched and only the deadline rescues the slot (the array
    // constructor asserts a timeout exists alongside fail-stops).
    const bool drive_up =
        !faults_ || !faults_->failStopped(op.drive, eq_.now());
    st.expectCompletion = drive_up;
    if (timeout_ > 0) {
        const std::uint64_t sub_id = sub.id;
        st.timeoutEv = eq_.scheduleAfter(
            timeout_, [this, sub_id] { onSubTimeout(sub_id); });
    }
    subs_.emplace(sub.id, std::move(st));
    if (drive_up)
        dispatch(op.drive, sub);
}

void
SsdArray::submit(const ssd::HostRequest &req)
{
    SSDRR_ASSERT(req.pages > 0, "empty request");
    SSDRR_ASSERT(req.lpn + req.pages <= logical_pages_,
                 "request beyond array capacity: lpn=", req.lpn,
                 " pages=", req.pages);
    SSDRR_ASSERT(parents_.count(req.id) == 0,
                 "duplicate outstanding request id ", req.id);

    layout_->plan(req.lpn, req.pages, req.isRead, plan_scratch_);
    const ArrayLayout::Plan &plan = plan_scratch_;
    SSDRR_ASSERT(!plan.ops.empty() || !plan.writes.empty(),
                 "layout produced an empty plan for request ", req.id);

    // A plan with no phase-1 ops (a RAID-5 write whose parity drive
    // failed) issues its writes immediately as the only phase.
    const std::vector<ArrayLayout::SubOp> &phase1 =
        plan.ops.empty() ? plan.writes : plan.ops;
    Parent &p = parents_[req.id];
    p.arrival = req.arrival;
    p.remaining = static_cast<std::uint32_t>(phase1.size());
    p.pages = req.pages;
    p.channelMask = req.channelMask;
    p.isRead = req.isRead;
    p.degraded = plan.degraded;
    if (!plan.ops.empty())
        p.phase2 = plan.writes;

    for (const ArrayLayout::SubOp &op : phase1)
        issueSub(req.id, req.arrival, req.channelMask, op);
}

void
SsdArray::driveComplete(std::uint32_t d, const ssd::HostCompletion &c)
{
    // Runs on the drive's worker thread, inside the drive's window.
    // Ship the completion across the host link; subComplete then
    // executes on the host domain at the delivery tick. Uses only
    // the completion record and immutable config — host-side maps
    // stay host-domain-confined.
    if (fabric_) {
        // Read completions carry the page payload back up the tree;
        // write acknowledgements are latency-only.
        const std::uint64_t bytes =
            c.isRead ? static_cast<std::uint64_t>(c.pages) *
                           pageBytes()
                     : 0;
        fabric_->toHost(d, bytes, c.isRead,
                        [this, c] { subComplete(c); });
        return;
    }
    exec_->send(drive_dom_[d], host_dom_,
                ssds_[d]->eventQueue().now() + link_,
                [this, c] { subComplete(c); });
}

void
SsdArray::subComplete(const ssd::HostCompletion &c)
{
    // Every completion must be a subrequest we issued: member drives
    // are driven only through submit(), and drive-internal writes
    // (refresh) carry kNoHost, which never reaches the hook.
    auto sit = subs_.find(c.id);
    SSDRR_ASSERT(sit != subs_.end(),
                 "completion for unknown subrequest ", c.id);
    SubState &st = sit->second;
    if (st.abandoned) {
        // Deadline expired while the device was still working; the
        // slot was already retried or failed over. Drop the late
        // completion (the device's work was wasted, realistically).
        subs_.erase(sit);
        return;
    }
    if (faults_) {
        if (faults_->failStopped(st.op.drive, c.finish)) {
            // The drive stopped completing before it raised this —
            // the completion is lost. The deadline (guaranteed by
            // the constructor) rescues the slot; nothing further
            // will arrive for this sub id.
            st.expectCompletion = false;
            return;
        }
        if (!st.stretched) {
            const double m = faults_->slowdownAt(st.op.drive, c.finish);
            if (m > 1.0) {
                // Fail-slow: stretch the device service time
                // (finish - delivered arrival) by the window's
                // multiplier and redeliver on the host queue. The
                // deadline may expire during the stretch.
                st.stretched = true;
                const auto extra = static_cast<sim::Tick>(
                    (m - 1.0) *
                    static_cast<double>(c.finish - c.arrival));
                eq_.scheduleAfter(extra,
                                  [this, c] { subComplete(c); });
                return;
            }
        }
        // Seeded transient-UECC draw, keyed on the subrequest id so
        // every retry attempt re-draws independently.
        if (st.op.isRead && faults_->ueccAt(st.op.drive, c.finish, c.id)) {
            ++uecc_reads_;
            resolveFailedSub(c.id, /*timed_out=*/false);
            return;
        }
    }
    if (st.timeoutEv != 0)
        eq_.cancel(st.timeoutEv);
    const std::uint64_t parent_id = st.parent;
    subs_.erase(sit);
    finishSlot(parent_id);
}

void
SsdArray::finishSlot(std::uint64_t parent_id)
{
    auto pit = parents_.find(parent_id);
    SSDRR_ASSERT(pit != parents_.end(), "orphan subrequest of parent ",
                 parent_id);
    Parent &p = pit->second;
    SSDRR_ASSERT(p.remaining > 0, "parent already complete");
    if (--p.remaining > 0)
        return;

    if (!p.phase2.empty() && !p.failed) {
        // Two-phase plan: every pre-read is in, release the writes.
        // Re-seat remaining before issuing (issueSub never touches
        // parents_, but keep the bookkeeping ordered anyway).
        const std::vector<ArrayLayout::SubOp> writes =
            std::move(p.phase2);
        p.phase2.clear();
        p.remaining = static_cast<std::uint32_t>(writes.size());
        for (const ArrayLayout::SubOp &op : writes)
            issueSub(parent_id, eq_.now(), p.channelMask, op);
        return;
    }

    // A failed parent skips its phase-2 writes (the data is gone;
    // there is nothing consistent to write) and completes with
    // status Failed. Its latency still records: the time until the
    // host returns the error is a real response time.
    const double resp_us = sim::toUsec(eq_.now() - p.arrival);
    if (p.isRead) {
        resp_read_.add(resp_us);
        if (p.degraded)
            resp_degraded_.add(resp_us);
    } else {
        resp_write_.add(resp_us);
    }
    ssd::HostCompletion done{parent_id, p.arrival, eq_.now(),
                             p.isRead, resp_us, p.pages};
    if (p.failed) {
        ++failed_requests_;
        done.status = ssd::CompletionStatus::Failed;
    }
    parents_.erase(pit);
    if (on_complete_)
        on_complete_(done);
}

void
SsdArray::onSubTimeout(std::uint64_t sub_id)
{
    auto sit = subs_.find(sub_id);
    SSDRR_ASSERT(sit != subs_.end(), "timeout for unknown subrequest ",
                 sub_id);
    sit->second.timeoutEv = 0;
    ++host_timeouts_;
    resolveFailedSub(sub_id, /*timed_out=*/true);
}

void
SsdArray::resolveFailedSub(std::uint64_t sub_id, bool timed_out)
{
    auto sit = subs_.find(sub_id);
    SSDRR_ASSERT(sit != subs_.end(), "resolve of unknown subrequest ",
                 sub_id);
    const SubState st = sit->second; // copy: the entry is retired now
    if (timed_out && st.expectCompletion) {
        // The device is still working on it; keep the entry so the
        // late completion is recognized and dropped.
        sit->second.abandoned = true;
    } else {
        // UECC (we are inside the completion), or a sub that was
        // never dispatched / whose completion was swallowed: nothing
        // further arrives under this id.
        if (st.timeoutEv != 0)
            eq_.cancel(st.timeoutEv);
        subs_.erase(sit);
    }

    // Retry with exponential backoff — unless the host already knows
    // the drive is dead (detected fail-stop), where waiting out more
    // deadlines would be pointless.
    if (!driveDead(st.op.drive) && st.attempt <= retry_max_) {
        ++host_retries_;
        const sim::Tick backoff = retry_backoff_
                                  << (st.attempt - 1);
        const std::uint64_t parent_id = st.parent;
        const std::uint32_t mask = st.channelMask;
        const ArrayLayout::SubOp op = st.op;
        const std::uint32_t attempt = st.attempt + 1;
        eq_.scheduleAfter(backoff, [this, parent_id, mask, op, attempt] {
            issueSub(parent_id, eq_.now(), mask, op, attempt);
        });
        return;
    }
    failover(st);
}

void
SsdArray::failover(const SubState &st)
{
    auto pit = parents_.find(st.parent);
    SSDRR_ASSERT(pit != parents_.end(), "failover for unknown parent ",
                 st.parent);
    Parent &p = pit->second;

    const bool raid5 = layout_->level() == RaidLevel::Raid5;
    if (raid5 && st.op.isRead &&
        st.op.cls == ArrayLayout::OpClass::Data) {
        // Convert the lost data read into the existing degraded-read
        // reconstruction join: the same drive-local range of every
        // surviving stripe mate (data mates + parity) reconstructs
        // the lost chunk.
        bool mates_alive = true;
        for (std::uint32_t d = 0; d < drives() && mates_alive; ++d)
            if (d != st.op.drive && driveDead(d))
                mates_alive = false;
        if (mates_alive) {
            ++host_failovers_;
            p.degraded = true;
            // The failed slot stays un-decremented; it is replaced
            // by drives-1 reconstruction reads.
            p.remaining += drives() - 2;
            ArrayLayout::SubOp mate = st.op;
            mate.cls = ArrayLayout::OpClass::Rebuild;
            for (std::uint32_t d = 0; d < drives(); ++d) {
                if (d == st.op.drive)
                    continue;
                mate.drive = d;
                issueSub(st.parent, eq_.now(), st.channelMask, mate);
            }
            return;
        }
        // A second dead drive: the chunk is unrecoverable.
        p.failed = true;
        finishSlot(st.parent);
        return;
    }
    if (raid5 && !st.op.isRead) {
        // A lost write on a redundant layout is absorbed: the data
        // (or parity) chunk goes unwritten but the stripe's
        // redundancy covers it — served degraded / unprotected.
        ++host_failovers_;
        p.degraded = true;
        finishSlot(st.parent);
        return;
    }
    if (raid5 && st.op.cls == ArrayLayout::OpClass::Parity) {
        // Lost parity pre-read: the read-modify-write proceeds
        // without parity protection (like a failed parity drive).
        ++host_failovers_;
        p.degraded = true;
        finishSlot(st.parent);
        return;
    }
    // No redundancy left (RAID-0, or a reconstruction input died):
    // the parent fails.
    p.failed = true;
    finishSlot(st.parent);
}

void
SsdArray::onDriveDetected(std::uint32_t d)
{
    if (driveDead(d))
        return;
    dead_mask_ |= std::uint64_t{1} << d;
    // Route new plans around the drive when the layout has the
    // redundancy for it; without it (RAID-0, tolerance exhausted)
    // plans keep addressing the dead drive and its requests fail.
    layout_->markFailed(d);
    if (on_drive_failed_)
        on_drive_failed_(d);
}

void
SsdArray::drain()
{
    if (exec_)
        exec_->run();
    else
        eq_.run();
    SSDRR_ASSERT(parents_.empty(), "drained with ", parents_.size(),
                 " array requests still pending");
}

ssd::RunStats
SsdArray::stats() const
{
    ssd::RunStats s;
    // Legacy: one shared queue, counted once. Sharded: the host
    // queue plus every drive's private queue.
    s.executedEvents = eq_.executedEvents();
    for (const auto &d : ssds_) {
        const ssd::RunStats ds = d->stats();
        s.suspensions += ds.suspensions;
        s.gcCollections += ds.gcCollections;
        s.timingFallbacks += ds.timingFallbacks;
        s.readFailures += ds.readFailures;
        s.refreshes += ds.refreshes;
        s.profileCacheHits += ds.profileCacheHits;
        s.profileCacheMisses += ds.profileCacheMisses;
        // Pooled mean over every retry sample (host + GC reads):
        // weight each drive's mean by its own sample count.
        s.avgRetrySteps +=
            ds.avgRetrySteps * static_cast<double>(ds.retrySamples);
        s.retrySamples += ds.retrySamples;
        s.channelUtilization += ds.channelUtilization;
        s.eccUtilization += ds.eccUtilization;
        if (exec_)
            s.executedEvents += ds.executedEvents;
    }
    if (s.retrySamples > 0)
        s.avgRetrySteps /= static_cast<double>(s.retrySamples);
    // Reads/writes count requests at the array surface (a request
    // striped over several drives counts once), matching the latency
    // distributions below.
    s.reads = resp_read_.count();
    s.writes = resp_write_.count();
    if (exec_) {
        s.executorWindowsRun = exec_->windowsRun();
        s.executorWindowsSkipped = exec_->windowsSkipped();
        s.executorParks = exec_->parks();
        s.executorSpins = exec_->spins();
    }
    if (fabric_) {
        // Switch queues drove the run too; their events count like
        // the host's and the drives'.
        s.executedEvents += fabric_->switchExecutedEvents();
        for (const fabric::LinkReport &r : fabric_->linkReports()) {
            ssd::RunStats::FabricLinkStats ls;
            ls.link = r.link;
            ls.messages = r.messages;
            ls.bytesCarried = r.bytesCarried;
            ls.busyUs = r.busyUs;
            ls.waitUs = r.waitUs;
            ls.maxQueueDepth = r.maxQueueDepth;
            s.fabricLinks.push_back(std::move(ls));
        }
        if (s.reads > 0)
            s.avgFabricWaitUs =
                sim::toUsec(fabric_->readWaitTicks()) /
                static_cast<double>(s.reads);
    }
    s.channelUtilization /= ssds_.size();
    s.eccUtilization /= ssds_.size();
    s.simulatedMs = sim::toMsec(eq_.now());

    // Layout accounting: reconstruction fan-out and parity traffic.
    s.degradedReads = resp_degraded_.count();
    s.reconstructionReads = reconstruction_reads_;
    s.parityWrites = parity_writes_;

    // Fault-timeline robustness accounting (all zero on a faultless
    // run with no timeout). Rebuild counters are filled by the
    // scenario layer, which owns the rebuild agent.
    s.hostTimeouts = host_timeouts_;
    s.hostRetries = host_retries_;
    s.hostFailovers = host_failovers_;
    s.ueccReads = uecc_reads_;
    s.failedRequests = failed_requests_;
    if (resp_degraded_.count()) {
        s.avgDegradedReadUs = resp_degraded_.mean();
        s.p50DegradedReadUs = resp_degraded_.percentile(50.0);
        s.p99DegradedReadUs = resp_degraded_.percentile(99.0);
        s.p999DegradedReadUs = resp_degraded_.percentile(99.9);
    }

    // The all-request distribution is the merge of the read and
    // write histograms (every parent is exactly one of the two), so
    // the array keeps two histograms instead of triple-recording.
    sim::Histogram resp_all = resp_read_;
    resp_all.merge(resp_write_);
    s.avgResponseUs = resp_all.mean();
    s.avgReadResponseUs = resp_read_.mean();
    s.avgWriteResponseUs = resp_write_.mean();
    if (resp_all.count()) {
        s.p99ResponseUs = resp_all.percentile(99.0);
        s.maxResponseUs = resp_all.max();
    }
    if (resp_read_.count()) {
        s.p50ReadResponseUs = resp_read_.percentile(50.0);
        s.p99ReadResponseUs = resp_read_.percentile(99.0);
        s.p999ReadResponseUs = resp_read_.percentile(99.9);
    }
    return s;
}

} // namespace ssdrr::host

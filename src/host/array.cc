#include "host/array.hh"

#include "sim/logging.hh"

namespace ssdrr::host {

SsdArray::SsdArray(const ssd::Config &cfg, core::Mechanism mech,
                   std::uint32_t drives, sim::Tick host_link,
                   std::uint32_t threads)
    : mech_(mech), link_(host_link)
{
    SSDRR_ASSERT(drives >= 1, "array needs at least one drive");
    if (link_ > 0) {
        exec_ = std::make_unique<sim::ParallelExecutor>(
            link_, threads == 0 ? 1 : threads);
        host_dom_ = exec_->addDomain(eq_);
    }
    for (std::uint32_t d = 0; d < drives; ++d) {
        ssd::Config dc = cfg;
        // Distinct per-drive seeds: real drives do not share error
        // patterns, and identical seeds would correlate retry storms
        // across the stripe.
        dc.seed = cfg.seed + d * 0x9e3779b9ull;
        if (exec_) {
            // Sharded engine: the drive owns a private queue; the
            // executor synchronizes it against the host at
            // host-link-wide windows.
            ssds_.push_back(std::make_unique<ssd::Ssd>(dc, mech));
            drive_dom_.push_back(
                exec_->addDomain(ssds_.back()->eventQueue()));
            ssds_.back()->onHostComplete(
                [this, d](const ssd::HostCompletion &c) {
                    driveComplete(d, c);
                });
        } else {
            ssds_.push_back(std::make_unique<ssd::Ssd>(dc, mech, eq_));
            ssds_.back()->onHostComplete(
                [this](const ssd::HostCompletion &c) { subComplete(c); });
        }
    }
    logical_pages_ = ssds_.front()->config().logicalPages() * drives;
}

void
SsdArray::precondition()
{
    for (auto &s : ssds_)
        s->precondition();
}

void
SsdArray::dispatch(std::uint32_t d, const ssd::HostRequest &sub)
{
    if (!exec_) {
        ssds_[d]->submit(sub);
        return;
    }
    // Sharded mode: the command crosses the host link. The drive
    // sees it — and accounts its device-side latency from — the
    // delivery tick.
    ssd::HostRequest delivered = sub;
    delivered.arrival = eq_.now() + link_;
    exec_->send(host_dom_, drive_dom_[d], delivered.arrival,
                [this, d, delivered] { ssds_[d]->submit(delivered); });
}

void
SsdArray::submit(const ssd::HostRequest &req)
{
    SSDRR_ASSERT(req.pages > 0, "empty request");
    SSDRR_ASSERT(req.lpn + req.pages <= logical_pages_,
                 "request beyond array capacity: lpn=", req.lpn,
                 " pages=", req.pages);
    SSDRR_ASSERT(parents_.count(req.id) == 0,
                 "duplicate outstanding request id ", req.id);

    const std::uint32_t n = drives();
    // Page-striped split: each member drive receives at most one
    // subrequest, covering the (consecutive) local LPNs that fall on
    // it. first[d] is the smallest local LPN of the span on drive d.
    // Member scratch avoids allocating two vectors per request.
    split_first_.assign(n, 0);
    split_count_.assign(n, 0);
    std::vector<std::uint64_t> &first = split_first_;
    std::vector<std::uint32_t> &count = split_count_;
    for (std::uint32_t i = 0; i < req.pages; ++i) {
        const std::uint64_t g = req.lpn + i;
        const std::uint32_t d = driveOf(g);
        const std::uint64_t l = localLpn(g);
        if (count[d]++ == 0)
            first[d] = l;
    }

    std::uint32_t subs = 0;
    for (std::uint32_t d = 0; d < n; ++d)
        if (count[d] > 0)
            ++subs;
    parents_[req.id] = Parent{req.arrival, subs, req.isRead};

    for (std::uint32_t d = 0; d < n; ++d) {
        if (count[d] == 0)
            continue;
        ssd::HostRequest sub;
        sub.id = next_sub_id_++;
        sub.arrival = req.arrival;
        sub.lpn = first[d];
        sub.pages = count[d];
        sub.isRead = req.isRead;
        sub.channelMask = req.channelMask;
        sub_parent_[sub.id] = req.id;
        dispatch(d, sub);
    }
}

void
SsdArray::driveComplete(std::uint32_t d, const ssd::HostCompletion &c)
{
    // Runs on the drive's worker thread, inside the drive's window.
    // Ship the completion across the host link; subComplete then
    // executes on the host domain at the delivery tick.
    exec_->send(drive_dom_[d], host_dom_,
                ssds_[d]->eventQueue().now() + link_,
                [this, c] { subComplete(c); });
}

void
SsdArray::subComplete(const ssd::HostCompletion &c)
{
    // Every completion must be a subrequest we issued: member drives
    // are driven only through submit(), and drive-internal writes
    // (refresh) carry kNoHost, which never reaches the hook.
    auto sit = sub_parent_.find(c.id);
    SSDRR_ASSERT(sit != sub_parent_.end(),
                 "completion for unknown subrequest ", c.id);
    const std::uint64_t parent_id = sit->second;
    sub_parent_.erase(sit);

    auto pit = parents_.find(parent_id);
    SSDRR_ASSERT(pit != parents_.end(), "orphan subrequest ", c.id);
    Parent &p = pit->second;
    SSDRR_ASSERT(p.remaining > 0, "parent already complete");
    if (--p.remaining > 0)
        return;

    const double resp_us = sim::toUsec(eq_.now() - p.arrival);
    if (p.isRead)
        resp_read_.add(resp_us);
    else
        resp_write_.add(resp_us);
    const ssd::HostCompletion done{parent_id, p.arrival, eq_.now(),
                                   p.isRead, resp_us};
    parents_.erase(pit);
    if (on_complete_)
        on_complete_(done);
}

void
SsdArray::drain()
{
    if (exec_)
        exec_->run();
    else
        eq_.run();
    SSDRR_ASSERT(parents_.empty(), "drained with ", parents_.size(),
                 " array requests still pending");
}

ssd::RunStats
SsdArray::stats() const
{
    ssd::RunStats s;
    // Legacy: one shared queue, counted once. Sharded: the host
    // queue plus every drive's private queue.
    s.executedEvents = eq_.executedEvents();
    for (const auto &d : ssds_) {
        const ssd::RunStats ds = d->stats();
        s.suspensions += ds.suspensions;
        s.gcCollections += ds.gcCollections;
        s.timingFallbacks += ds.timingFallbacks;
        s.readFailures += ds.readFailures;
        s.refreshes += ds.refreshes;
        s.profileCacheHits += ds.profileCacheHits;
        s.profileCacheMisses += ds.profileCacheMisses;
        // Pooled mean over every retry sample (host + GC reads):
        // weight each drive's mean by its own sample count.
        s.avgRetrySteps +=
            ds.avgRetrySteps * static_cast<double>(ds.retrySamples);
        s.retrySamples += ds.retrySamples;
        s.channelUtilization += ds.channelUtilization;
        s.eccUtilization += ds.eccUtilization;
        if (exec_)
            s.executedEvents += ds.executedEvents;
    }
    if (s.retrySamples > 0)
        s.avgRetrySteps /= static_cast<double>(s.retrySamples);
    // Reads/writes count requests at the array surface (a request
    // striped over several drives counts once), matching the latency
    // distributions below.
    s.reads = resp_read_.count();
    s.writes = resp_write_.count();
    s.channelUtilization /= ssds_.size();
    s.eccUtilization /= ssds_.size();
    s.simulatedMs = sim::toMsec(eq_.now());

    // The all-request distribution is the merge of the read and
    // write histograms (every parent is exactly one of the two), so
    // the array keeps two histograms instead of triple-recording.
    sim::Histogram resp_all = resp_read_;
    resp_all.merge(resp_write_);
    s.avgResponseUs = resp_all.mean();
    s.avgReadResponseUs = resp_read_.mean();
    s.avgWriteResponseUs = resp_write_.mean();
    if (resp_all.count()) {
        s.p99ResponseUs = resp_all.percentile(99.0);
        s.maxResponseUs = resp_all.max();
    }
    if (resp_read_.count()) {
        s.p50ReadResponseUs = resp_read_.percentile(50.0);
        s.p99ReadResponseUs = resp_read_.percentile(99.0);
        s.p999ReadResponseUs = resp_read_.percentile(99.9);
    }
    return s;
}

} // namespace ssdrr::host

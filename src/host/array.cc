#include "host/array.hh"

#include "sim/logging.hh"

namespace ssdrr::host {

SsdArray::SsdArray(const ssd::Config &cfg, core::Mechanism mech,
                   std::uint32_t drives, sim::Tick host_link,
                   std::uint32_t threads)
    : SsdArray(cfg, mech, [&] {
          Options opt;
          opt.drives = drives;
          opt.hostLink = host_link;
          opt.threads = threads;
          return opt;
      }())
{
}

SsdArray::SsdArray(const ssd::Config &cfg, core::Mechanism mech,
                   const Options &opt)
    : mech_(mech), link_(opt.hostLink),
      layout_(makeArrayLayout(opt.raid, opt.drives,
                              opt.stripeUnitPages, opt.failedDrives))
{
    SSDRR_ASSERT(opt.drives >= 1, "array needs at least one drive");
    if (link_ > 0) {
        exec_ = std::make_unique<sim::ParallelExecutor>(
            link_, opt.threads == 0 ? 1 : opt.threads);
        host_dom_ = exec_->addDomain(eq_);
    }
    for (std::uint32_t d = 0; d < opt.drives; ++d) {
        ssd::Config dc = cfg;
        // Distinct per-drive seeds: real drives do not share error
        // patterns, and identical seeds would correlate retry storms
        // across the stripe.
        dc.seed = cfg.seed + d * 0x9e3779b9ull;
        if (exec_) {
            // Sharded engine: the drive owns a private queue; the
            // executor synchronizes it against the host at
            // host-link-wide windows.
            ssds_.push_back(std::make_unique<ssd::Ssd>(dc, mech));
            drive_dom_.push_back(
                exec_->addDomain(ssds_.back()->eventQueue()));
            ssds_.back()->onHostComplete(
                [this, d](const ssd::HostCompletion &c) {
                    driveComplete(d, c);
                });
        } else {
            ssds_.push_back(std::make_unique<ssd::Ssd>(dc, mech, eq_));
            ssds_.back()->onHostComplete(
                [this](const ssd::HostCompletion &c) {
                    subComplete(c);
                });
        }
    }
    logical_pages_ =
        layout_->logicalPages(ssds_.front()->config().logicalPages());
}

void
SsdArray::precondition()
{
    for (auto &s : ssds_)
        s->precondition();
}

void
SsdArray::dispatch(std::uint32_t d, const ssd::HostRequest &sub)
{
    if (!exec_) {
        ssds_[d]->submit(sub);
        return;
    }
    // Sharded mode: the command crosses the host link. The drive
    // sees it — and accounts its device-side latency from — the
    // delivery tick.
    ssd::HostRequest delivered = sub;
    delivered.arrival = eq_.now() + link_;
    exec_->send(host_dom_, drive_dom_[d], delivered.arrival,
                [this, d, delivered] { ssds_[d]->submit(delivered); });
}

void
SsdArray::issueSub(std::uint64_t parent_id, sim::Tick arrival,
                   std::uint32_t channel_mask,
                   const ArrayLayout::SubOp &op)
{
    if (op.isRead) {
        if (op.cls == ArrayLayout::OpClass::Rebuild)
            ++reconstruction_reads_;
    } else if (op.cls == ArrayLayout::OpClass::Parity) {
        ++parity_writes_;
    }
    ssd::HostRequest sub;
    sub.id = next_sub_id_++;
    sub.arrival = arrival;
    sub.lpn = op.lpn;
    sub.pages = op.pages;
    sub.isRead = op.isRead;
    sub.channelMask = channel_mask;
    sub_parent_[sub.id] = parent_id;
    dispatch(op.drive, sub);
}

void
SsdArray::submit(const ssd::HostRequest &req)
{
    SSDRR_ASSERT(req.pages > 0, "empty request");
    SSDRR_ASSERT(req.lpn + req.pages <= logical_pages_,
                 "request beyond array capacity: lpn=", req.lpn,
                 " pages=", req.pages);
    SSDRR_ASSERT(parents_.count(req.id) == 0,
                 "duplicate outstanding request id ", req.id);

    layout_->plan(req.lpn, req.pages, req.isRead, plan_scratch_);
    const ArrayLayout::Plan &plan = plan_scratch_;
    SSDRR_ASSERT(!plan.ops.empty() || !plan.writes.empty(),
                 "layout produced an empty plan for request ", req.id);

    // A plan with no phase-1 ops (a RAID-5 write whose parity drive
    // failed) issues its writes immediately as the only phase.
    const std::vector<ArrayLayout::SubOp> &phase1 =
        plan.ops.empty() ? plan.writes : plan.ops;
    Parent &p = parents_[req.id];
    p.arrival = req.arrival;
    p.remaining = static_cast<std::uint32_t>(phase1.size());
    p.pages = req.pages;
    p.channelMask = req.channelMask;
    p.isRead = req.isRead;
    p.degraded = plan.degraded;
    if (!plan.ops.empty())
        p.phase2 = plan.writes;

    for (const ArrayLayout::SubOp &op : phase1)
        issueSub(req.id, req.arrival, req.channelMask, op);
}

void
SsdArray::driveComplete(std::uint32_t d, const ssd::HostCompletion &c)
{
    // Runs on the drive's worker thread, inside the drive's window.
    // Ship the completion across the host link; subComplete then
    // executes on the host domain at the delivery tick. Uses only
    // the completion record and immutable config — host-side maps
    // stay host-domain-confined.
    exec_->send(drive_dom_[d], host_dom_,
                ssds_[d]->eventQueue().now() + link_,
                [this, c] { subComplete(c); });
}

void
SsdArray::subComplete(const ssd::HostCompletion &c)
{
    // Every completion must be a subrequest we issued: member drives
    // are driven only through submit(), and drive-internal writes
    // (refresh) carry kNoHost, which never reaches the hook.
    auto sit = sub_parent_.find(c.id);
    SSDRR_ASSERT(sit != sub_parent_.end(),
                 "completion for unknown subrequest ", c.id);
    const std::uint64_t parent_id = sit->second;
    sub_parent_.erase(sit);

    auto pit = parents_.find(parent_id);
    SSDRR_ASSERT(pit != parents_.end(), "orphan subrequest ", c.id);
    Parent &p = pit->second;
    SSDRR_ASSERT(p.remaining > 0, "parent already complete");
    if (--p.remaining > 0)
        return;

    if (!p.phase2.empty()) {
        // Two-phase plan: every pre-read is in, release the writes.
        // Re-seat remaining before issuing (issueSub never touches
        // parents_, but keep the bookkeeping ordered anyway).
        const std::vector<ArrayLayout::SubOp> writes =
            std::move(p.phase2);
        p.phase2.clear();
        p.remaining = static_cast<std::uint32_t>(writes.size());
        for (const ArrayLayout::SubOp &op : writes)
            issueSub(parent_id, eq_.now(), p.channelMask, op);
        return;
    }

    const double resp_us = sim::toUsec(eq_.now() - p.arrival);
    if (p.isRead) {
        resp_read_.add(resp_us);
        if (p.degraded)
            resp_degraded_.add(resp_us);
    } else {
        resp_write_.add(resp_us);
    }
    const ssd::HostCompletion done{parent_id, p.arrival, eq_.now(),
                                   p.isRead, resp_us, p.pages};
    parents_.erase(pit);
    if (on_complete_)
        on_complete_(done);
}

void
SsdArray::drain()
{
    if (exec_)
        exec_->run();
    else
        eq_.run();
    SSDRR_ASSERT(parents_.empty(), "drained with ", parents_.size(),
                 " array requests still pending");
}

ssd::RunStats
SsdArray::stats() const
{
    ssd::RunStats s;
    // Legacy: one shared queue, counted once. Sharded: the host
    // queue plus every drive's private queue.
    s.executedEvents = eq_.executedEvents();
    for (const auto &d : ssds_) {
        const ssd::RunStats ds = d->stats();
        s.suspensions += ds.suspensions;
        s.gcCollections += ds.gcCollections;
        s.timingFallbacks += ds.timingFallbacks;
        s.readFailures += ds.readFailures;
        s.refreshes += ds.refreshes;
        s.profileCacheHits += ds.profileCacheHits;
        s.profileCacheMisses += ds.profileCacheMisses;
        // Pooled mean over every retry sample (host + GC reads):
        // weight each drive's mean by its own sample count.
        s.avgRetrySteps +=
            ds.avgRetrySteps * static_cast<double>(ds.retrySamples);
        s.retrySamples += ds.retrySamples;
        s.channelUtilization += ds.channelUtilization;
        s.eccUtilization += ds.eccUtilization;
        if (exec_)
            s.executedEvents += ds.executedEvents;
    }
    if (s.retrySamples > 0)
        s.avgRetrySteps /= static_cast<double>(s.retrySamples);
    // Reads/writes count requests at the array surface (a request
    // striped over several drives counts once), matching the latency
    // distributions below.
    s.reads = resp_read_.count();
    s.writes = resp_write_.count();
    s.channelUtilization /= ssds_.size();
    s.eccUtilization /= ssds_.size();
    s.simulatedMs = sim::toMsec(eq_.now());

    // Layout accounting: reconstruction fan-out and parity traffic.
    s.degradedReads = resp_degraded_.count();
    s.reconstructionReads = reconstruction_reads_;
    s.parityWrites = parity_writes_;
    if (resp_degraded_.count()) {
        s.avgDegradedReadUs = resp_degraded_.mean();
        s.p50DegradedReadUs = resp_degraded_.percentile(50.0);
        s.p99DegradedReadUs = resp_degraded_.percentile(99.0);
        s.p999DegradedReadUs = resp_degraded_.percentile(99.9);
    }

    // The all-request distribution is the merge of the read and
    // write histograms (every parent is exactly one of the two), so
    // the array keeps two histograms instead of triple-recording.
    sim::Histogram resp_all = resp_read_;
    resp_all.merge(resp_write_);
    s.avgResponseUs = resp_all.mean();
    s.avgReadResponseUs = resp_read_.mean();
    s.avgWriteResponseUs = resp_write_.mean();
    if (resp_all.count()) {
        s.p99ResponseUs = resp_all.percentile(99.0);
        s.maxResponseUs = resp_all.max();
    }
    if (resp_read_.count()) {
        s.p50ReadResponseUs = resp_read_.percentile(50.0);
        s.p99ReadResponseUs = resp_read_.percentile(99.0);
        s.p999ReadResponseUs = resp_read_.percentile(99.9);
    }
    return s;
}

} // namespace ssdrr::host

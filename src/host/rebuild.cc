#include "host/rebuild.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ssdrr::host {

RebuildAgent::RebuildAgent(HostInterface &hif, const Options &opt)
    : hif_(hif), opt_(opt)
{
    const ArrayLayout &layout = hif.array().layout();
    SSDRR_ASSERT(layout.level() == RaidLevel::Raid5,
                 "rebuild-to-spare requires a RAID-5 array");
    const auto &r5 = static_cast<const Raid5Layout &>(layout);
    drives_ = r5.drives();
    unit_ = r5.stripeUnitPages();
    opt_.window = std::max(1u, std::min(opt_.window,
                                        hif.options().queueDepth));
    qid_ = hif_.addQueuePair(opt_.weight);
    hif_.bindCompletion(qid_, [this](const ssd::HostCompletion &c) {
        onComplete(c);
    });
}

void
RebuildAgent::start(std::uint32_t drive)
{
    if (started_)
        return;
    started_ = true;
    drive_ = drive;
    start_tick_ = hif_.array().eventQueue().now();
    // One row rebuilds one stripe unit of the dead drive; the
    // exported capacity is whole rows only, so this is exact.
    const std::uint64_t all_rows =
        hif_.array().logicalPages() /
        (static_cast<std::uint64_t>(unit_) * (drives_ - 1));
    total_rows_ =
        opt_.rows == 0 ? all_rows : std::min(opt_.rows, all_rows);
    for (std::uint32_t i = 0; i < opt_.window; ++i)
        postNext();
}

void
RebuildAgent::postNext()
{
    if (next_row_ >= total_rows_)
        return;
    const std::uint64_t row = next_row_++;
    const auto &r5 =
        static_cast<const Raid5Layout &>(hif_.array().layout());
    const std::uint64_t row_lpn =
        row * (drives_ - 1) * unit_; ///< first global LPN of the row
    ssd::HostRequest req;
    req.arrival = hif_.array().eventQueue().now();
    req.isRead = true;
    const std::uint32_t parity = r5.parityDriveOfRow(row);
    if (parity == drive_) {
        // The dead drive held this row's parity: recompute it from
        // the whole row's data, all of which survives.
        req.lpn = row_lpn;
        req.pages = (drives_ - 1) * unit_;
    } else {
        // The dead drive held data unit k of the row (the k-th
        // member, skipping the parity drive): read its global range.
        // The layout is marked failed, so this becomes the normal
        // degraded-read reconstruction join.
        const std::uint32_t k = drive_ - (drive_ > parity ? 1 : 0);
        req.lpn = row_lpn + static_cast<std::uint64_t>(k) * unit_;
        req.pages = unit_;
    }
    const bool posted = hif_.post(qid_, req);
    SSDRR_ASSERT(posted, "rebuild queue pair rejected a command "
                         "(window exceeds queue depth?)");
    ++inflight_;
}

void
RebuildAgent::onComplete(const ssd::HostCompletion &)
{
    SSDRR_ASSERT(inflight_ > 0, "rebuild completion with none in flight");
    --inflight_;
    ++rows_done_;
    ++reads_done_;
    if (next_row_ < total_rows_) {
        postNext();
        return;
    }
    if (inflight_ == 0) {
        // Last row in: the (virtual) spare now holds the drive.
        time_to_rebuild_ms_ = sim::toMsec(
            hif_.array().eventQueue().now() - start_tick_);
    }
}

void
RebuildAgent::collectStats(ssd::RunStats &s) const
{
    s.rebuildReads = reads_done_;
    s.rebuildProgress = progress();
    s.timeToRebuildMs = time_to_rebuild_ms_;
}

} // namespace ssdrr::host

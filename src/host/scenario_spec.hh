/**
 * @file
 * Declarative scenario API v2: a single serializable description of
 * a multi-tenant run.
 *
 * A ScenarioSpec fully describes a scenario — SSD geometry preset
 * and wear overrides, mechanism sweep, array shape, host-interface
 * options, and per-tenant specs (including the QoS contract, channel
 * affinity, and time-horizon stop condition) — as plain data. Specs
 * load from and save to JSON (sim/json.hh, dependency-free), are
 * schema-validated with actionable error messages (unknown keys,
 * type mismatches, and semantic conflicts all name the offending
 * JSON path), and can be composed fluently from C++ through
 * ScenarioBuilder.
 *
 * The same spec behaves identically everywhere it is consumed
 * (ssdrr_sim --scenario, benches, tests, examples): toConfig()
 * materializes the exact ScenarioConfig the legacy hand-wired paths
 * used to build, so a spec-driven run is bit-identical to its
 * flag-driven equivalent.
 */

#ifndef SSDRR_HOST_SCENARIO_SPEC_HH
#define SSDRR_HOST_SCENARIO_SPEC_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "host/scenario.hh"
#include "sim/json.hh"

namespace ssdrr::host {

/**
 * A malformed or semantically invalid scenario spec. what() carries
 * the full actionable message (JSON path, offending value, and what
 * would be accepted instead).
 */
class SpecError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Serializable SSD description: a geometry preset plus the
 * evaluation knobs the paper sweeps. toConfig() materializes the
 * full ssd::Config.
 */
struct SsdSpec {
    /** "small" (fast tests/benches) or "paper" (512-GiB class). */
    std::string geometry = "small";
    /** Preconditioned wear in kilo-P/E-cycles. */
    double pecKilo = 0.0;
    /** Preconditioned retention age in months. */
    double retentionMonths = 0.0;
    double temperatureC = 30.0;
    /** Read-reclaim refresh threshold in months (0 = off). */
    double refreshMonths = 0.0;
    bool suspension = true;
    std::uint64_t seed = 42;

    /** @throws SpecError on an unknown geometry preset. */
    ssd::Config toConfig() const;

    bool operator==(const SsdSpec &o) const;
    bool operator!=(const SsdSpec &o) const { return !(*this == o); }
};

/**
 * One fault event on the scenario's timeline (JSON array "faults").
 * Times are microseconds of simulated time; the fault machinery is
 * deterministic, so the same spec reproduces the same faults for any
 * thread count (see sim/fault_injector.hh).
 */
struct FaultSpec {
    /** "failStop", "failSlow", or "uecc". */
    std::string type = "failStop";
    /** Member drive the fault hits. */
    std::uint32_t drive = 0;
    /** Fault start in microseconds of simulated time. */
    double atUs = 0.0;
    /** Window end for failSlow/uecc (0 = open-ended; must stay 0
     *  for failStop, which is permanent). */
    double untilUs = 0.0;
    /** failSlow: device-latency multiplier (> 1). */
    double multiplier = 1.0;
    /** uecc: per-read probability in (0, 1]. */
    double probability = 0.0;
    /** failStop: start a rebuild-to-spare on detection. */
    bool rebuild = false;
    /** failStop + rebuild: stripe rows to rebuild (bounds the
     *  modeled rebuild region; 0 = the whole array). */
    std::uint64_t rebuildRows = 0;

    /** @throws SpecError on an unknown type name. */
    sim::FaultEvent toEvent() const;

    bool operator==(const FaultSpec &o) const;
    bool operator!=(const FaultSpec &o) const { return !(*this == o); }
};

/**
 * The full, serializable description of one scenario run (possibly
 * swept over several mechanisms).
 */
struct ScenarioSpec {
    /** Optional display label (free-form). */
    std::string name;
    SsdSpec ssd;
    /** Mechanism sweep, in run order. */
    std::vector<std::string> mechanisms = {"Baseline"};
    std::uint32_t drives = 1;
    // ----- array layout (JSON object "array") -----
    /** "raid0" (striping, the default) or "raid5" (rotating parity,
     *  degraded-read reconstruction; needs drives >= 3). */
    std::string raidLevel = "raid0";
    /** RAID-5 stripe-unit pages (chunk size; ignored by raid0). */
    std::uint32_t stripeUnitPages = 1;
    /** Failed member drives; must respect the layout's fault
     *  tolerance (none for raid0, one for raid5). */
    std::vector<std::uint32_t> failedDrives;
    // ----- fault timeline (JSON array "faults") -----
    /** Seeded mid-run faults; empty (default) is bit-identical to
     *  the pre-fault engine. Must not name drives already listed in
     *  array.failedDrives. */
    std::vector<FaultSpec> faults;
    /**
     * Worker threads for the sharded per-drive engine. 1 (default)
     * runs everything on the calling thread; N > 1 simulates the
     * drives concurrently and requires hostLinkUs > 0 or a fabric
     * (the engine's synchronization window is the host-link
     * turnaround / the fabric's cheapest link). 0 is sugar for "use
     * the machine's hardware concurrency", resolved at toConfig()
     * time — the spec keeps the literal 0 so it round-trips through
     * --dump-scenario machine-independently; it carries the same
     * link/fabric requirement as N > 1. Results are bit-identical
     * for every value of threads.
     */
    std::uint32_t threads = 1;
    // ----- storage fabric (JSON object "fabric") -----
    /**
     * Host<->drive interconnect topology: nodes, links, and the
     * drive attachment map (see fabric/topology.hh). Empty (default)
     * keeps the flat hostLinkUs coupling, bit-identical to the
     * pre-fabric engine; non-empty routes every dispatch/completion
     * hop-by-hop with per-link FIFO contention and excludes
     * hostLinkUs > 0.
     */
    fabric::TopologySpec fabric;
    // ----- host-interface options -----
    std::uint32_t queueDepth = 16;
    /** "rr", "wrr", or "slo" (see host::Arbitration). */
    std::string arbitration = "rr";
    /** 0 = auto (8 command slots per drive). */
    std::uint32_t maxDeviceInflight = 0;
    /**
     * Per-subrequest deadline in microseconds ("host.timeoutUs").
     * On expiry the sub is reissued with exponential backoff
     * (retryMax attempts, retryBackoffUs base) and finally failed
     * over (RAID-5 reads reconstruct; unrecoverable requests
     * complete Failed). 0 (default) disables deadline tracking —
     * bit-identical to the pre-timeout engine. Required > 0 when the
     * timeline has a failStop fault.
     */
    double timeoutUs = 0.0;
    /** Reissue attempts after a timeout/UECC before failover. */
    std::uint32_t retryMax = 2;
    /** Backoff before the first reissue; doubles per attempt. */
    double retryBackoffUs = 100.0;
    /**
     * Host dispatch/completion turnaround in microseconds (the
     * PCIe/NVMe doorbell-fetch and interrupt paths). 0 = legacy
     * instantaneous coupling on one shared event queue; > 0 switches
     * to per-drive event queues synchronized at host-link windows
     * (and enables threads > 1).
     */
    double hostLinkUs = 0.0;
    /**
     * Link transfer cost in microseconds per KiB moved, charged per
     * host command on dispatch and completion in addition to the
     * fixed hostLinkUs turnaround. 0 (default) keeps the legacy
     * event stream on either engine. Sugar for an implicit "xfer"
     * filter appended below host.filters.
     */
    double transferUsPerKb = 0.0;
    /**
     * Ordered host-side filter chain (JSON array "host.filters").
     * Requests travel down it first-to-last before the array;
     * completions travel up it last-to-first. Empty (default) is a
     * wire — bit-identical to the pre-chain engine. See
     * host/filter/filter.hh for the filter types and their knobs.
     */
    std::vector<filter::FilterSpec> filters;
    std::vector<TenantSpec> tenants;

    /**
     * Check every field and cross-field constraint.
     * @throws SpecError naming the first offending field
     */
    void validate() const;

    sim::json::Value toJson() const;
    /** Pretty-printed JSON document (the --dump-scenario format). */
    std::string toJsonText() const;

    /** @throws SpecError on schema violations (validate() is NOT
     *  implied; call it after loading, or use loadFile). */
    static ScenarioSpec fromJson(const sim::json::Value &v);
    /** Parse + schema-check + validate. @throws SpecError */
    static ScenarioSpec fromJsonText(const std::string &text);
    /** Read + parse + validate a spec file. @throws SpecError */
    static ScenarioSpec loadFile(const std::string &path);
    /** Write toJsonText() to @p path. @throws SpecError on I/O. */
    void saveFile(const std::string &path) const;

    /**
     * Materialize the runnable config for one mechanism of the
     * sweep. @p mech must parse as one of mechanisms (callers
     * iterate the sweep). The result is exactly what the legacy
     * hand-wired consumers built, so runs are bit-identical.
     */
    ScenarioConfig toConfig(core::Mechanism mech,
                            TraceCache *cache = nullptr) const;

    bool operator==(const ScenarioSpec &o) const;
    bool operator!=(const ScenarioSpec &o) const
    {
        return !(*this == o);
    }
};

/** Tenant equality (spec round-trip checks). */
bool operator==(const TenantSpec &a, const TenantSpec &b);
inline bool
operator!=(const TenantSpec &a, const TenantSpec &b)
{
    return !(a == b);
}

/** Validate + run one mechanism of a spec's sweep. */
ScenarioResult runScenario(const ScenarioSpec &spec,
                           core::Mechanism mech,
                           TraceCache *cache = nullptr);

/**
 * Fluent composer for C++ callers:
 *
 *   const ScenarioSpec spec =
 *       ScenarioBuilder()
 *           .geometry("small").pec(1.0).retention(6.0).seed(13)
 *           .drives(2).queueDepth(16).arbitration("wrr")
 *           .mechanism(core::Mechanism::Baseline)
 *           .mechanism(core::Mechanism::PnAR2)
 *           .tenant("kv", "YCSB-C", 600)
 *           .qdLimit(4).weight(3).sloUs(500.0)
 *           .tenant("log", "stg_0", 600)
 *           .build();
 *
 * tenant() appends a tenant and makes it current; the per-tenant
 * setters after it (mode()/qdLimit()/weight()/iops()/rateIops()/
 * burst()/sloUs()/channels()/horizonUs()) modify that tenant.
 * build() validates and returns the spec (throws SpecError).
 */
class ScenarioBuilder
{
  public:
    ScenarioBuilder();

    // ----- SSD -----
    ScenarioBuilder &name(std::string label);
    ScenarioBuilder &geometry(std::string preset);
    ScenarioBuilder &pec(double kilo);
    ScenarioBuilder &retention(double months);
    ScenarioBuilder &temperature(double celsius);
    ScenarioBuilder &refresh(double months);
    ScenarioBuilder &suspension(bool on);
    ScenarioBuilder &seed(std::uint64_t s);

    // ----- sweep / array / host -----
    /** Append a mechanism to the sweep (empty sweep = Baseline). */
    ScenarioBuilder &mechanism(const std::string &name);
    ScenarioBuilder &mechanism(core::Mechanism m);
    ScenarioBuilder &drives(std::uint32_t n);
    /** Array layout: "raid0" (default) or "raid5". */
    ScenarioBuilder &raid(const std::string &level);
    /** RAID-5 stripe-unit pages (chunk size). */
    ScenarioBuilder &stripeUnitPages(std::uint32_t pages);
    /** Failed member drives (degraded mode). */
    ScenarioBuilder &failedDrives(const std::vector<std::uint32_t> &d);
    /** Worker threads (needs hostLinkUs() > 0 or a fabric when not
     *  exactly 1; 0 = use hardware concurrency). */
    ScenarioBuilder &threads(std::uint32_t n);
    /** Storage-fabric topology (excludes hostLinkUs() > 0). */
    ScenarioBuilder &fabric(const fabric::TopologySpec &topo);
    /** Sugar: generate a preset topology ("flat", "tree:SxD") for
     *  the drive count set so far — call after drives(). */
    ScenarioBuilder &fabricPreset(const std::string &preset);
    /** Append a fault event to the timeline. */
    ScenarioBuilder &fault(const FaultSpec &spec);
    /** Sugar: drive stops completing at @p at_us; optionally start
     *  a rebuild-to-spare over @p rebuild_rows stripe rows on
     *  detection (0 = whole array; pass rebuild=false to skip). */
    ScenarioBuilder &failStop(std::uint32_t drive, double at_us,
                              bool rebuild = false,
                              std::uint64_t rebuild_rows = 0);
    /** Sugar: drive latency multiplied in [at_us, until_us). */
    ScenarioBuilder &failSlow(std::uint32_t drive, double at_us,
                              double until_us, double multiplier);
    /** Sugar: seeded UECC reads in [at_us, until_us). */
    ScenarioBuilder &ueccFault(std::uint32_t drive, double at_us,
                               double until_us, double probability);
    /** Per-subrequest deadline in microseconds (0 = off). */
    ScenarioBuilder &timeoutUs(double us);
    /** Reissue attempts before failover. */
    ScenarioBuilder &retryMax(std::uint32_t attempts);
    /** Base reissue backoff in microseconds (doubles per attempt). */
    ScenarioBuilder &retryBackoffUs(double us);
    /** Host dispatch/completion turnaround in microseconds. */
    ScenarioBuilder &hostLinkUs(double us);
    /** Per-KiB link transfer cost in microseconds. */
    ScenarioBuilder &transferUsPerKb(double us);
    ScenarioBuilder &queueDepth(std::uint32_t d);
    ScenarioBuilder &arbitration(const std::string &policy);
    ScenarioBuilder &arbitration(Arbitration policy);
    ScenarioBuilder &maxDeviceInflight(std::uint32_t n);

    // ----- host filter chain -----
    /** Append a filter to host.filters (order = chain order). */
    ScenarioBuilder &addFilter(const filter::FilterSpec &spec);
    /** Sugar: append a DRAM read cache of @p sizeBytes. */
    ScenarioBuilder &dramCache(std::uint64_t sizeBytes);
    /** Sugar: append a readahead filter with @p windowPages. */
    ScenarioBuilder &readahead(std::uint32_t windowPages);

    // ----- tenants -----
    /** Append a tenant; subsequent per-tenant setters apply to it. */
    ScenarioBuilder &tenant(std::string name, std::string workload,
                            std::uint64_t requests);
    ScenarioBuilder &tenant(const TenantSpec &spec);
    ScenarioBuilder &mode(InjectionMode m);
    ScenarioBuilder &openLoop() { return mode(InjectionMode::OpenLoop); }
    ScenarioBuilder &qdLimit(std::uint32_t qd);
    ScenarioBuilder &weight(std::uint32_t w);
    ScenarioBuilder &iops(double rate);
    ScenarioBuilder &rateIops(double rate);
    ScenarioBuilder &burst(double commands);
    ScenarioBuilder &sloUs(double us);
    /** Pin the current tenant to these channels of every drive. */
    ScenarioBuilder &channels(const std::vector<std::uint32_t> &chans);
    ScenarioBuilder &horizonUs(double us);

    /** Validate and return the finished spec. @throws SpecError */
    ScenarioSpec build() const;
    /** The spec as composed so far, without validation. */
    const ScenarioSpec &peek() const { return spec_; }

  private:
    TenantSpec &current();

    ScenarioSpec spec_;
};

} // namespace ssdrr::host

#endif // SSDRR_HOST_SCENARIO_SPEC_HH

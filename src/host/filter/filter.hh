/**
 * @file
 * Host-side request filter chain.
 *
 * A FilterChain sits between the host interface's command fetch and
 * the SSD array: every fetched request travels DOWN the chain (first
 * filter to last) before reaching the array, and every array
 * completion travels UP (last filter to first) before reaching the
 * host, nbdkit-style. A filter may pass traffic through, transform
 * it, absorb it (a DRAM-cache hit completes upward without touching
 * the array), or originate its own internal requests (readahead
 * prefetches), which it must absorb on the way back up.
 *
 * Invariant every filter preserves: for each host command id it
 * receives from above, exactly one completion with that id is
 * eventually delivered upward. Internal requests carry ids with
 * kInternalIdBit set, so they can never collide with host command
 * ids or confuse the host interface's ownership accounting.
 *
 * The chain lives entirely on the host simulation domain: filters
 * schedule only on the host event queue, so the sharded per-drive
 * engine's determinism contract (bit-identical results for any
 * worker count) extends to every filter automatically.
 *
 * An EMPTY chain is a wire: submit()/complete() forward directly
 * with no per-request overhead and no observable effect — scenarios
 * without host.filters are bit-identical to the pre-chain engine.
 */

#ifndef SSDRR_HOST_FILTER_FILTER_HH
#define SSDRR_HOST_FILTER_FILTER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "ssd/ssd.hh"

namespace ssdrr::host::filter {

/**
 * Serializable description of one filter (the "host.filters" array
 * element of a ScenarioSpec). `type` selects the filter; the other
 * fields are per-type parameters, ignored by types that do not use
 * them. Validation (ranges, enum values, unknown keys) happens in
 * ScenarioSpec::validate()/fromJson with JSON-path-named errors.
 */
struct FilterSpec {
    /** "cache", "readahead", "split", "delay", "throttle", "xfer". */
    std::string type;

    // ----- cache -----
    /** DRAM capacity in bytes (rounded down to whole pages). */
    std::uint64_t sizeBytes = 64ull << 20;
    /** "lru" or "fifo". */
    std::string eviction = "lru";
    /** "reads" (read-miss fill + write invalidate) or "all"
     *  (additionally write-through allocate). */
    std::string admission = "reads";
    /** DRAM service latency for a hit, in microseconds. */
    double hitLatencyUs = 1.0;

    // ----- readahead -----
    /** Pages prefetched beyond a detected sequential run. */
    std::uint32_t windowPages = 8;
    /** Concurrently tracked sequential streams. */
    std::uint32_t streams = 8;

    // ----- split / coalesce -----
    /** Maximum pages per downstream request; larger host requests
     *  are split into pieces of at most this size. */
    std::uint32_t maxPages = 8;
    /** Coalescing hold window in microseconds (0 = split only):
     *  an eligible request may wait this long for a contiguous
     *  successor to merge with. */
    double coalesceWindowUs = 0.0;

    // ----- delay -----
    /** Added dispatch latency in microseconds (fault injection). */
    double delayUs = 0.0;
    /** "all", "reads", or "writes". */
    std::string applies = "all";

    // ----- throttle -----
    /** Token-bucket refill rate in commands/second. */
    double rateIops = 0.0;
    /** Bucket depth in commands (0 = 1, strict pacing). */
    double burst = 0.0;

    // ----- xfer -----
    /** Link transfer cost in microseconds per KiB moved, charged on
     *  dispatch and completion of each request. */
    double usPerKb = 0.0;

    bool operator==(const FilterSpec &o) const;
    bool operator!=(const FilterSpec &o) const { return !(*this == o); }
};

/** Immutable environment a chain's filters operate in. */
struct Context {
    /** Host-side event queue (all filter events schedule here). */
    sim::EventQueue *eq = nullptr;
    /** Exported array capacity (prefetch clamp). */
    std::uint64_t logicalPages = 0;
    /** Page size in bytes (cache capacity, transfer sizing). */
    std::uint32_t pageBytes = 16384;
};

class FilterChain;

/**
 * Base class for chain filters. The default submit()/complete()
 * forward unchanged; subclasses override one or both and use the
 * protected down()/up() helpers to keep traffic moving. A filter is
 * owned by exactly one FilterChain and runs on the host domain.
 */
class RequestFilter
{
  public:
    virtual ~RequestFilter() = default;

    /** Stable type name ("cache", "readahead", ...). */
    virtual const char *kind() const = 0;

    /** A request travelling host -> array. Default: pass through. */
    virtual void submit(const ssd::HostRequest &req) { down(req); }

    /** A completion travelling array -> host. Default: pass up. */
    virtual void complete(const ssd::HostCompletion &c) { up(c); }

    /** Fold this filter's counters into the run summary. */
    virtual void collectStats(ssd::RunStats &s) const { (void)s; }

  protected:
    /** Forward @p req to the next filter below (or the array). */
    void down(const ssd::HostRequest &req);
    /** Deliver @p c to the filter above (or the host interface). */
    void up(const ssd::HostCompletion &c);
    /** The host-side event queue. */
    sim::EventQueue &eq() const;
    /** Chain context (logical pages, page size). */
    const Context &ctx() const;
    /** Mint an id for a filter-originated internal request. */
    std::uint64_t newId();

  private:
    friend class FilterChain;
    FilterChain *chain_ = nullptr;
    std::size_t index_ = 0;
};

/**
 * Ordered filter pipeline. build() instantiates filters from specs,
 * bind() attaches the array-submit and host-complete endpoints, and
 * submit()/complete() drive traffic through. Non-copyable: filters
 * hold back-pointers into the chain.
 */
class FilterChain
{
  public:
    using SubmitFn =
        sim::InlineFunction<void(const ssd::HostRequest &)>;
    using CompleteFn =
        sim::InlineFunction<void(const ssd::HostCompletion &)>;

    /** High bit of filter-internal request ids: host command ids
     *  count up from 1 and array subrequest ids are array-internal,
     *  so marked ids never collide with either. */
    static constexpr std::uint64_t kInternalIdBit = 1ull << 63;

    FilterChain() = default;
    FilterChain(const FilterChain &) = delete;
    FilterChain &operator=(const FilterChain &) = delete;

    /** Instantiate the chain from specs (assumed validated). */
    void build(const std::vector<FilterSpec> &specs, const Context &ctx);

    /** Attach the downstream (array) and upstream (host) endpoints. */
    void bind(SubmitFn to_array, CompleteFn to_host);

    bool empty() const { return filters_.empty(); }
    std::size_t size() const { return filters_.size(); }

    /** Host -> array entry point. */
    void submit(const ssd::HostRequest &req);
    /** Array -> host entry point. */
    void complete(const ssd::HostCompletion &c);

    /** Per-filter counters plus the host-surface read-latency view
     *  (what tenants observe after cache hits and chain delays). */
    void collectStats(ssd::RunStats &s) const;

  private:
    friend class RequestFilter;
    void downFrom(std::size_t i, const ssd::HostRequest &req);
    void upFrom(std::size_t i, const ssd::HostCompletion &c);
    std::uint64_t newId() { return kInternalIdBit | next_internal_++; }

    Context ctx_;
    std::vector<std::unique_ptr<RequestFilter>> filters_;
    SubmitFn to_array_;
    CompleteFn to_host_;
    std::uint64_t next_internal_ = 1;
    /** Read latencies at the top of a NON-empty chain (untouched —
     *  and unreported — when the chain is empty). */
    sim::Histogram host_read_;
};

/**
 * Instantiate one filter from its spec. @p spec.type must be a known
 * type (ScenarioSpec validation guarantees it; fatal otherwise).
 */
std::unique_ptr<RequestFilter> makeFilter(const FilterSpec &spec,
                                          const Context &ctx);

} // namespace ssdrr::host::filter

#endif // SSDRR_HOST_FILTER_FILTER_HH

#include "host/filter/xfer.hh"

namespace ssdrr::host::filter {

XferFilter::XferFilter(const FilterSpec &spec, const Context &ctx)
    : us_per_kb_(spec.usPerKb),
      page_kb_(static_cast<double>(ctx.pageBytes) / 1024.0)
{
}

void
XferFilter::submit(const ssd::HostRequest &req)
{
    const sim::Tick xfer = xferTicks(req.pages);
    if (xfer == 0) {
        down(req);
        return;
    }
    // The command reaches the array once its bytes crossed the link;
    // arrival stays at issue time so end-to-end latency includes the
    // transfer.
    eq().scheduleAfter(xfer, [this, req] { down(req); });
}

void
XferFilter::complete(const ssd::HostCompletion &c)
{
    const sim::Tick xfer = xferTicks(c.pages);
    if (xfer == 0) {
        up(c);
        return;
    }
    ssd::HostCompletion d = c;
    d.finish = eq().now() + xfer;
    d.responseUs = sim::toUsec(d.finish - d.arrival);
    eq().schedule(d.finish, [this, d] { up(d); });
}

} // namespace ssdrr::host::filter

#include "host/filter/throttle.hh"

namespace ssdrr::host::filter {

ThrottleFilter::ThrottleFilter(const FilterSpec &spec)
{
    bucket_.configure(spec.rateIops, spec.burst);
}

void
ThrottleFilter::submit(const ssd::HostRequest &req)
{
    if (!bucket_.configured()) {
        down(req);
        return;
    }
    bucket_.refill(eq().now());
    if (queue_.empty() && bucket_.hasToken()) {
        bucket_.consume();
        down(req);
        return;
    }
    ++throttled_;
    queue_.push_back(req);
    armDrain();
}

void
ThrottleFilter::armDrain()
{
    if (drain_armed_ || queue_.empty())
        return;
    drain_armed_ = true;
    const sim::Tick at = bucket_.nextTokenTick(eq().now());
    eq().schedule(at, [this] {
        drain_armed_ = false;
        drain();
    });
}

void
ThrottleFilter::drain()
{
    bucket_.refill(eq().now());
    while (!queue_.empty() && bucket_.hasToken()) {
        bucket_.consume();
        const ssd::HostRequest req = queue_.front();
        queue_.pop_front();
        down(req);
    }
    armDrain();
}

void
ThrottleFilter::collectStats(ssd::RunStats &s) const
{
    s.throttledRequests += throttled_;
}

} // namespace ssdrr::host::filter

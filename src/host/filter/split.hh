/**
 * @file
 * Split/coalesce filter: normalizes request sizes before the array's
 * layout fan-out.
 *
 * Splitting: a request larger than maxPages goes down as several
 * pieces of at most maxPages each; the host-visible completion fires
 * when the last piece returns. Coalescing (coalesceWindowUs > 0): a
 * request may be held up to the window for a contiguous same-
 * direction successor to arrive; merged requests go down as one and
 * each original command still completes individually upward.
 *
 * A request that needs neither (single member, already within
 * maxPages, no coalesce window) passes through untouched — id,
 * arrival, and event stream identical to no filter at all.
 */

#ifndef SSDRR_HOST_FILTER_SPLIT_HH
#define SSDRR_HOST_FILTER_SPLIT_HH

#include <unordered_map>
#include <vector>

#include "host/filter/filter.hh"

namespace ssdrr::host::filter {

class SplitCoalesceFilter : public RequestFilter
{
  public:
    explicit SplitCoalesceFilter(const FilterSpec &spec);

    const char *kind() const override { return "split"; }
    void submit(const ssd::HostRequest &req) override;
    void complete(const ssd::HostCompletion &c) override;
    void collectStats(ssd::RunStats &s) const override;

    // ----- observability (unit tests) -----
    std::uint64_t splitRequests() const { return split_requests_; }
    std::uint64_t coalescedRequests() const
    {
        return coalesced_requests_;
    }

  private:
    /** One host command folded into a bundle; completed upward
     *  individually when the bundle's last piece returns. */
    struct Member {
        std::uint64_t id = 0;
        sim::Tick arrival = 0;
        std::uint32_t pages = 1;
    };

    struct Bundle {
        std::vector<Member> members;
        std::uint32_t remaining = 0; ///< outstanding pieces
        bool isRead = true;
    };

    /** Send one (possibly merged) request down, splitting as needed. */
    void dispatch(std::vector<Member> members, std::uint64_t lpn,
                  std::uint32_t pages, bool is_read,
                  sim::Tick arrival, std::uint32_t channel_mask);
    void flushStaged();

    std::uint32_t max_pages_;
    sim::Tick coalesce_ticks_;

    // ----- coalescing stage (at most one held request) -----
    bool staged_ = false;
    std::vector<Member> staged_members_;
    std::uint64_t staged_lpn_ = 0;
    std::uint32_t staged_pages_ = 0;
    bool staged_read_ = true;
    sim::Tick staged_arrival_ = 0;
    std::uint32_t staged_mask_ = 0;
    sim::EventId flush_event_ = 0;

    // ----- split bookkeeping -----
    std::unordered_map<std::uint64_t, std::uint64_t> piece_; ///< ->key
    std::unordered_map<std::uint64_t, Bundle> bundles_;

    std::uint64_t split_requests_ = 0;
    std::uint64_t coalesced_requests_ = 0;
};

} // namespace ssdrr::host::filter

#endif // SSDRR_HOST_FILTER_SPLIT_HH

/**
 * @file
 * Transfer filter: host-link transfer time charged per request.
 *
 * Models the interconnect data-movement cost that used to live in
 * SsdArray::Options::transferUsPerKb. Submissions are delayed by
 * usPerKb × request size before reaching the array; completions are
 * delayed by the same amount on the way back (the data has to cross
 * the link in both directions for writes and reads respectively, but
 * the simulator has always charged both edges, so the filter does
 * too). Charged per host command, not per layout subrequest.
 */

#ifndef SSDRR_HOST_FILTER_XFER_HH
#define SSDRR_HOST_FILTER_XFER_HH

#include "host/filter/filter.hh"

namespace ssdrr::host::filter {

class XferFilter : public RequestFilter
{
  public:
    XferFilter(const FilterSpec &spec, const Context &ctx);

    const char *kind() const override { return "xfer"; }
    void submit(const ssd::HostRequest &req) override;
    void complete(const ssd::HostCompletion &c) override;

  private:
    sim::Tick xferTicks(std::uint32_t pages) const
    {
        return sim::usec(us_per_kb_ * page_kb_ * pages);
    }

    double us_per_kb_;
    double page_kb_;
};

} // namespace ssdrr::host::filter

#endif // SSDRR_HOST_FILTER_XFER_HH

#include "host/filter/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ssdrr::host::filter {

DramCacheFilter::DramCacheFilter(const FilterSpec &spec,
                                 const Context &ctx)
    : capacity_pages_(std::max<std::uint64_t>(
          1, spec.sizeBytes / std::max<std::uint32_t>(1, ctx.pageBytes))),
      lru_(spec.eviction != "fifo"),
      admit_writes_(spec.admission == "all"),
      hit_ticks_(sim::usec(spec.hitLatencyUs))
{
}

bool
DramCacheFilter::allResident(std::uint64_t lpn,
                             std::uint32_t pages) const
{
    for (std::uint32_t i = 0; i < pages; ++i)
        if (!map_.count(lpn + i))
            return false;
    return true;
}

void
DramCacheFilter::touchRange(std::uint64_t lpn, std::uint32_t pages)
{
    if (!lru_)
        return; // FIFO: age is insertion order, hits do not refresh
    for (std::uint32_t i = 0; i < pages; ++i) {
        auto it = map_.find(lpn + i);
        if (it != map_.end())
            order_.splice(order_.end(), order_, it->second);
    }
}

void
DramCacheFilter::insertRange(std::uint64_t lpn, std::uint32_t pages)
{
    for (std::uint32_t i = 0; i < pages; ++i) {
        auto it = map_.find(lpn + i);
        if (it != map_.end()) {
            if (lru_)
                order_.splice(order_.end(), order_, it->second);
            continue;
        }
        order_.push_back(lpn + i);
        map_.emplace(lpn + i, std::prev(order_.end()));
    }
    while (map_.size() > capacity_pages_) {
        map_.erase(order_.front());
        order_.pop_front();
        ++evictions_;
    }
}

void
DramCacheFilter::invalidateRange(std::uint64_t lpn,
                                 std::uint32_t pages)
{
    for (std::uint32_t i = 0; i < pages; ++i) {
        auto it = map_.find(lpn + i);
        if (it == map_.end())
            continue;
        order_.erase(it->second);
        map_.erase(it);
    }
}

void
DramCacheFilter::submit(const ssd::HostRequest &req)
{
    if (!req.isRead) {
        // Writes refresh or shoot down the cached copy; the write
        // itself always goes to the device (the cache is not a
        // write-back buffer).
        if (admit_writes_)
            insertRange(req.lpn, req.pages);
        else
            invalidateRange(req.lpn, req.pages);
        down(req);
        return;
    }

    if (allResident(req.lpn, req.pages)) {
        ++hits_;
        touchRange(req.lpn, req.pages);
        // Always complete through the event queue, never
        // synchronously: the submit path runs inside the host
        // interface's fetch loop, which must not re-enter.
        const sim::Tick finish = eq().now() + hit_ticks_;
        const ssd::HostCompletion done{
            req.id,   req.arrival,
            finish,   true,
            sim::toUsec(finish - req.arrival), req.pages};
        eq().schedule(finish, [this, done] { up(done); });
        return;
    }

    ++misses_;
    const bool inserted = pending_.emplace(req.id, req).second;
    SSDRR_ASSERT(inserted, "duplicate outstanding read id ", req.id,
                 " in cache filter");
    down(req);
}

void
DramCacheFilter::complete(const ssd::HostCompletion &c)
{
    auto it = pending_.find(c.id);
    if (it != pending_.end()) {
        insertRange(it->second.lpn, it->second.pages);
        pending_.erase(it);
    }
    up(c);
}

void
DramCacheFilter::collectStats(ssd::RunStats &s) const
{
    s.cacheHits += hits_;
    s.cacheMisses += misses_;
    s.cacheEvictions += evictions_;
}

} // namespace ssdrr::host::filter

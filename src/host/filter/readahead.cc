#include "host/filter/readahead.hh"

#include <algorithm>

namespace ssdrr::host::filter {

ReadaheadFilter::ReadaheadFilter(const FilterSpec &spec,
                                 const Context &ctx)
    : window_pages_(std::max<std::uint32_t>(1, spec.windowPages)),
      max_streams_(std::max<std::uint32_t>(1, spec.streams)),
      logical_pages_(ctx.logicalPages),
      remember_cap_(std::max<std::size_t>(
          1024, std::size_t{64} * window_pages_))
{
    streams_.reserve(max_streams_);
}

void
ReadaheadFilter::rememberPrefetched(std::uint64_t lpn,
                                    std::uint32_t pages)
{
    for (std::uint32_t i = 0; i < pages; ++i) {
        if (!prefetched_.insert(lpn + i).second)
            continue;
        prefetched_order_.push_back(lpn + i);
    }
    while (prefetched_order_.size() > remember_cap_) {
        prefetched_.erase(prefetched_order_.front());
        prefetched_order_.pop_front();
    }
}

void
ReadaheadFilter::issuePrefetch(std::uint64_t from)
{
    std::uint64_t start = from;
    const std::uint64_t end =
        std::min(from + window_pages_, logical_pages_);
    // Skip pages already prefetched (the window slides one request
    // at a time, so the leading overlap is the common case).
    while (start < end && prefetched_.count(start))
        ++start;
    if (start >= end)
        return;
    ssd::HostRequest pf;
    pf.id = newId();
    pf.arrival = eq().now();
    pf.lpn = start;
    pf.pages = static_cast<std::uint32_t>(end - start);
    pf.isRead = true;
    pending_.insert(pf.id);
    prefetch_issued_ += pf.pages;
    rememberPrefetched(pf.lpn, pf.pages);
    down(pf);
}

void
ReadaheadFilter::submit(const ssd::HostRequest &req)
{
    if (!req.isRead) {
        down(req);
        return;
    }

    // Accuracy: demand pages that were prefetched count as useful
    // (each page once).
    for (std::uint32_t i = 0; i < req.pages; ++i) {
        if (prefetched_.erase(req.lpn + i))
            ++prefetch_useful_;
    }

    ++use_counter_;
    const std::uint64_t successor = req.lpn + req.pages;
    for (Stream &s : streams_) {
        if (s.next == req.lpn) {
            // The stream continues: forward the demand read first,
            // then prefetch its successors.
            s.next = successor;
            s.lastUse = use_counter_;
            down(req);
            issuePrefetch(successor);
            return;
        }
    }

    // New stream (no prefetch on first touch — one random read must
    // not trigger a window of useless device reads). Replace the
    // least recently used entry when the table is full.
    if (streams_.size() < max_streams_) {
        streams_.push_back(Stream{successor, use_counter_});
    } else {
        std::size_t victim = 0;
        for (std::size_t i = 1; i < streams_.size(); ++i)
            if (streams_[i].lastUse < streams_[victim].lastUse)
                victim = i;
        streams_[victim] = Stream{successor, use_counter_};
    }
    down(req);
}

void
ReadaheadFilter::complete(const ssd::HostCompletion &c)
{
    // Our own prefetches are absorbed; everything else passes up.
    if (pending_.erase(c.id))
        return;
    up(c);
}

void
ReadaheadFilter::collectStats(ssd::RunStats &s) const
{
    s.prefetchIssued += prefetch_issued_;
    s.prefetchUseful += prefetch_useful_;
}

} // namespace ssdrr::host::filter

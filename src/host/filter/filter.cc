#include "host/filter/filter.hh"

#include "host/filter/cache.hh"
#include "host/filter/delay.hh"
#include "host/filter/readahead.hh"
#include "host/filter/split.hh"
#include "host/filter/throttle.hh"
#include "host/filter/xfer.hh"
#include "sim/logging.hh"

namespace ssdrr::host::filter {

bool
FilterSpec::operator==(const FilterSpec &o) const
{
    return type == o.type && sizeBytes == o.sizeBytes &&
           eviction == o.eviction && admission == o.admission &&
           hitLatencyUs == o.hitLatencyUs &&
           windowPages == o.windowPages && streams == o.streams &&
           maxPages == o.maxPages &&
           coalesceWindowUs == o.coalesceWindowUs &&
           delayUs == o.delayUs && applies == o.applies &&
           rateIops == o.rateIops && burst == o.burst &&
           usPerKb == o.usPerKb;
}

// ---------------------------------------------------- RequestFilter

void
RequestFilter::down(const ssd::HostRequest &req)
{
    chain_->downFrom(index_, req);
}

void
RequestFilter::up(const ssd::HostCompletion &c)
{
    chain_->upFrom(index_, c);
}

sim::EventQueue &
RequestFilter::eq() const
{
    return *chain_->ctx_.eq;
}

const Context &
RequestFilter::ctx() const
{
    return chain_->ctx_;
}

std::uint64_t
RequestFilter::newId()
{
    return chain_->newId();
}

// ------------------------------------------------------ FilterChain

void
FilterChain::build(const std::vector<FilterSpec> &specs,
                   const Context &ctx)
{
    SSDRR_ASSERT(filters_.empty(), "filter chain already built");
    SSDRR_ASSERT(ctx.eq != nullptr, "filter chain needs an event queue");
    ctx_ = ctx;
    for (const FilterSpec &spec : specs) {
        filters_.push_back(makeFilter(spec, ctx_));
        filters_.back()->chain_ = this;
        filters_.back()->index_ = filters_.size() - 1;
    }
}

void
FilterChain::bind(SubmitFn to_array, CompleteFn to_host)
{
    to_array_ = std::move(to_array);
    to_host_ = std::move(to_host);
}

void
FilterChain::submit(const ssd::HostRequest &req)
{
    // Empty chain: a plain function call to the array, exactly the
    // pre-chain dispatch path.
    if (filters_.empty()) {
        to_array_(req);
        return;
    }
    filters_.front()->submit(req);
}

void
FilterChain::complete(const ssd::HostCompletion &c)
{
    if (filters_.empty()) {
        to_host_(c);
        return;
    }
    filters_.back()->complete(c);
}

void
FilterChain::downFrom(std::size_t i, const ssd::HostRequest &req)
{
    if (i + 1 < filters_.size())
        filters_[i + 1]->submit(req);
    else
        to_array_(req);
}

void
FilterChain::upFrom(std::size_t i, const ssd::HostCompletion &c)
{
    if (i == 0) {
        // Top of the chain: this is the latency the host actually
        // observes (cache hits included, prefetches absorbed).
        if (c.isRead)
            host_read_.add(c.responseUs);
        to_host_(c);
        return;
    }
    filters_[i - 1]->complete(c);
}

void
FilterChain::collectStats(ssd::RunStats &s) const
{
    for (const auto &f : filters_)
        f->collectStats(s);
    s.hostReads = host_read_.count();
    if (host_read_.count()) {
        s.avgHostReadUs = host_read_.mean();
        s.p50HostReadUs = host_read_.percentile(50.0);
        s.p99HostReadUs = host_read_.percentile(99.0);
        s.p999HostReadUs = host_read_.percentile(99.9);
    }
}

// ---------------------------------------------------------- factory

std::unique_ptr<RequestFilter>
makeFilter(const FilterSpec &spec, const Context &ctx)
{
    if (spec.type == "cache")
        return std::make_unique<DramCacheFilter>(spec, ctx);
    if (spec.type == "readahead")
        return std::make_unique<ReadaheadFilter>(spec, ctx);
    if (spec.type == "split")
        return std::make_unique<SplitCoalesceFilter>(spec);
    if (spec.type == "delay")
        return std::make_unique<DelayFilter>(spec);
    if (spec.type == "throttle")
        return std::make_unique<ThrottleFilter>(spec);
    if (spec.type == "xfer")
        return std::make_unique<XferFilter>(spec, ctx);
    SSDRR_FATAL("unknown filter type '", spec.type,
                "' (scenario validation should have rejected it)");
}

} // namespace ssdrr::host::filter

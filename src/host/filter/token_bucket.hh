/**
 * @file
 * Token-bucket rate limiter shared by the per-queue QoS throttle
 * (host::QueuePair) and the chain-level throttle filter
 * (filter::ThrottleFilter).
 *
 * The bucket holds fractional tokens up to its burst depth, refills
 * continuously at rateIops tokens per second of simulated time, and
 * starts full (the first burst is free). The refill arithmetic is
 * the exact expression the queue-pair limiter always used, so a
 * QueuePair delegating to this class is bit-identical to the
 * pre-extraction implementation.
 */

#ifndef SSDRR_HOST_FILTER_TOKEN_BUCKET_HH
#define SSDRR_HOST_FILTER_TOKEN_BUCKET_HH

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ssdrr::host::filter {

class TokenBucket
{
  public:
    /**
     * Arm the bucket: @p rate_iops tokens per second, depth
     * @p burst commands (0 = 1, strict pacing). Starts full.
     * A rate of 0 leaves the bucket unconfigured (never limits).
     */
    void
    configure(double rate_iops, double burst)
    {
        SSDRR_ASSERT(rate_iops >= 0.0, "negative rate limit");
        SSDRR_ASSERT(burst >= 0.0, "negative burst");
        rate_ = rate_iops;
        if (rate_ > 0.0) {
            burst_ = burst > 0.0 ? burst : 1.0;
            tokens_ = burst_; // start full: the first burst is free
        }
    }

    bool configured() const { return rate_ > 0.0; }
    double tokens() const { return tokens_; }
    bool hasToken() const { return tokens_ >= 1.0; }

    /** Advance the bucket to @p now; a no-op when unconfigured. */
    void
    refill(sim::Tick now)
    {
        if (rate_ <= 0.0)
            return;
        SSDRR_ASSERT(now >= last_refill_,
                     "token bucket running backwards");
        tokens_ = std::min(
            burst_, tokens_ + rate_ * 1e-9 *
                                  static_cast<double>(now -
                                                      last_refill_));
        last_refill_ = now;
    }

    /** Spend one token (fatal if none is available). */
    void
    consume()
    {
        SSDRR_ASSERT(tokens_ >= 1.0, "consuming from an empty bucket");
        tokens_ -= 1.0;
    }

    /**
     * Earliest tick at which a full token could be available by
     * refill alone. Only meaningful when !hasToken(); rounded up and
     * padded by one tick so a wake-up scheduled at the result never
     * finds the bucket still short (which would respin forever).
     */
    sim::Tick
    nextTokenTick(sim::Tick now) const
    {
        const double deficit = 1.0 - tokens_;
        const double wait_ns = std::ceil(deficit / rate_ * 1e9) + 1.0;
        return now + static_cast<sim::Tick>(wait_ns);
    }

  private:
    double rate_ = 0.0;
    double burst_ = 0.0;
    double tokens_ = 0.0;
    sim::Tick last_refill_ = 0;
};

} // namespace ssdrr::host::filter

#endif // SSDRR_HOST_FILTER_TOKEN_BUCKET_HH

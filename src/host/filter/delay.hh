/**
 * @file
 * Delay filter: fault/latency injection for experiments and tests.
 *
 * Adds a fixed submit-side delay to matching requests ("all",
 * "reads", or "writes"). With delayUs == 0 the filter is fully
 * transparent — requests forward synchronously in submit() and the
 * event stream is identical to no filter at all.
 */

#ifndef SSDRR_HOST_FILTER_DELAY_HH
#define SSDRR_HOST_FILTER_DELAY_HH

#include "host/filter/filter.hh"

namespace ssdrr::host::filter {

class DelayFilter : public RequestFilter
{
  public:
    explicit DelayFilter(const FilterSpec &spec);

    const char *kind() const override { return "delay"; }
    void submit(const ssd::HostRequest &req) override;
    void collectStats(ssd::RunStats &s) const override;

    // ----- observability (unit tests) -----
    std::uint64_t delayedRequests() const { return delayed_; }

  private:
    bool applies(const ssd::HostRequest &req) const
    {
        if (mode_ == Mode::All)
            return true;
        return (mode_ == Mode::Reads) == req.isRead;
    }

    enum class Mode { All, Reads, Writes };

    sim::Tick ticks_;
    Mode mode_;
    std::uint64_t delayed_ = 0;
};

} // namespace ssdrr::host::filter

#endif // SSDRR_HOST_FILTER_DELAY_HH

/**
 * @file
 * Readahead filter: detects sequential read streams and prefetches
 * their successors.
 *
 * A small stream table remembers where recent reads left off. A read
 * that continues a tracked stream triggers a prefetch of the next
 * windowPages pages: an internal read request sent down the chain
 * and absorbed on completion (the host never sees it). Stacked above
 * a cache filter, the prefetch completion fills the cache, so the
 * stream's next demand read hits in DRAM.
 *
 * Accuracy accounting: every prefetched page is remembered until a
 * demand read consumes it; prefetchUseful / prefetchIssued is the
 * prefetch hit ratio surfaced through RunStats.
 */

#ifndef SSDRR_HOST_FILTER_READAHEAD_HH
#define SSDRR_HOST_FILTER_READAHEAD_HH

#include <deque>
#include <unordered_set>
#include <vector>

#include "host/filter/filter.hh"

namespace ssdrr::host::filter {

class ReadaheadFilter : public RequestFilter
{
  public:
    ReadaheadFilter(const FilterSpec &spec, const Context &ctx);

    const char *kind() const override { return "readahead"; }
    void submit(const ssd::HostRequest &req) override;
    void complete(const ssd::HostCompletion &c) override;
    void collectStats(ssd::RunStats &s) const override;

    // ----- observability (unit tests) -----
    std::uint64_t prefetchIssued() const { return prefetch_issued_; }
    std::uint64_t prefetchUseful() const { return prefetch_useful_; }
    std::size_t inflightPrefetches() const { return pending_.size(); }

  private:
    struct Stream {
        std::uint64_t next = 0;    ///< expected next lpn
        std::uint64_t lastUse = 0; ///< logical use counter
    };

    void issuePrefetch(std::uint64_t from);
    void rememberPrefetched(std::uint64_t lpn, std::uint32_t pages);

    std::uint32_t window_pages_;
    std::uint32_t max_streams_;
    std::uint64_t logical_pages_;
    /** Bound on the prefetched-page memory (accuracy bookkeeping). */
    std::size_t remember_cap_;

    std::vector<Stream> streams_;
    std::uint64_t use_counter_ = 0;

    /** Prefetches in flight below us, absorbed on completion. */
    std::unordered_set<std::uint64_t> pending_;
    /** Pages prefetched and not yet consumed by a demand read. */
    std::unordered_set<std::uint64_t> prefetched_;
    std::deque<std::uint64_t> prefetched_order_; ///< FIFO bound

    std::uint64_t prefetch_issued_ = 0; ///< pages
    std::uint64_t prefetch_useful_ = 0; ///< pages later demanded

};

} // namespace ssdrr::host::filter

#endif // SSDRR_HOST_FILTER_READAHEAD_HH

#include "host/filter/split.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ssdrr::host::filter {

SplitCoalesceFilter::SplitCoalesceFilter(const FilterSpec &spec)
    : max_pages_(std::max<std::uint32_t>(1, spec.maxPages)),
      coalesce_ticks_(sim::usec(spec.coalesceWindowUs))
{
}

void
SplitCoalesceFilter::dispatch(std::vector<Member> members,
                              std::uint64_t lpn, std::uint32_t pages,
                              bool is_read, sim::Tick arrival,
                              std::uint32_t channel_mask)
{
    // Transparent path: one original command, already small enough.
    // Forward it under its own id with no bookkeeping, so a chain of
    // pass-through requests is indistinguishable from no filter.
    if (members.size() == 1 && pages <= max_pages_) {
        ssd::HostRequest req;
        req.id = members[0].id;
        req.arrival = arrival;
        req.lpn = lpn;
        req.pages = pages;
        req.isRead = is_read;
        req.channelMask = channel_mask;
        down(req);
        return;
    }

    const std::uint64_t key = newId();
    Bundle &b = bundles_[key];
    b.isRead = is_read;
    if (members.size() > 1)
        coalesced_requests_ += members.size() - 1;
    b.members = std::move(members);

    std::uint32_t issued = 0;
    for (std::uint64_t off = 0; off < pages; off += max_pages_) {
        ssd::HostRequest piece;
        piece.id = newId();
        piece.arrival = eq().now();
        piece.lpn = lpn + off;
        piece.pages = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(max_pages_, pages - off));
        piece.isRead = is_read;
        piece.channelMask = channel_mask;
        piece_[piece.id] = key;
        ++issued;
        ++b.remaining;
        down(piece);
    }
    if (issued > 1)
        ++split_requests_;
}

void
SplitCoalesceFilter::flushStaged()
{
    if (!staged_)
        return;
    staged_ = false;
    if (flush_event_ != 0) {
        eq().cancel(flush_event_);
        flush_event_ = 0;
    }
    dispatch(std::move(staged_members_), staged_lpn_, staged_pages_,
             staged_read_, staged_arrival_, staged_mask_);
    staged_members_.clear();
}

void
SplitCoalesceFilter::submit(const ssd::HostRequest &req)
{
    if (coalesce_ticks_ == 0) {
        // Split-only mode: no staging, no added latency. Requests
        // within the cap pass through verbatim.
        if (req.pages <= max_pages_) {
            down(req);
            return;
        }
        dispatch({Member{req.id, req.arrival, req.pages}}, req.lpn,
                 req.pages, req.isRead, req.arrival, req.channelMask);
        return;
    }

    // Contiguous same-direction successor within the size cap merges
    // into the staged request.
    if (staged_ && req.isRead == staged_read_ &&
        staged_lpn_ + staged_pages_ == req.lpn &&
        std::uint64_t{staged_pages_} + req.pages <= max_pages_) {
        staged_members_.push_back(
            Member{req.id, req.arrival, req.pages});
        staged_pages_ += req.pages;
        return;
    }

    // Not mergeable: release whatever is staged, then hold this one
    // for the coalesce window.
    flushStaged();
    staged_ = true;
    staged_members_.assign(1, Member{req.id, req.arrival, req.pages});
    staged_lpn_ = req.lpn;
    staged_pages_ = req.pages;
    staged_read_ = req.isRead;
    staged_arrival_ = req.arrival;
    staged_mask_ = req.channelMask;
    flush_event_ = eq().scheduleAfter(coalesce_ticks_, [this] {
        flush_event_ = 0;
        flushStaged();
    });
}

void
SplitCoalesceFilter::complete(const ssd::HostCompletion &c)
{
    auto pit = piece_.find(c.id);
    if (pit == piece_.end()) {
        up(c); // a transparent pass-through (or someone else's)
        return;
    }
    const std::uint64_t key = pit->second;
    piece_.erase(pit);

    auto bit = bundles_.find(key);
    SSDRR_ASSERT(bit != bundles_.end(), "piece for unknown bundle");
    Bundle &b = bit->second;
    SSDRR_ASSERT(b.remaining > 0, "bundle already complete");
    if (--b.remaining > 0)
        return;

    // Last piece in: every original command completes now, each with
    // its own end-to-end latency.
    const sim::Tick now = eq().now();
    const Bundle done = std::move(b);
    bundles_.erase(bit);
    for (const Member &m : done.members) {
        up(ssd::HostCompletion{m.id, m.arrival, now, done.isRead,
                               sim::toUsec(now - m.arrival), m.pages});
    }
}

void
SplitCoalesceFilter::collectStats(ssd::RunStats &s) const
{
    s.splitRequests += split_requests_;
    s.coalescedRequests += coalesced_requests_;
}

} // namespace ssdrr::host::filter

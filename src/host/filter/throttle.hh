/**
 * @file
 * Throttle filter: token-bucket admission control as a chain stage.
 *
 * The same bucket math the per-queue QoS throttle uses (see
 * token_bucket.hh), applied to the whole chain position: requests
 * that find a token forward synchronously; the rest queue in FIFO
 * order and drain as tokens accrue. throttledRequests counts the
 * requests that had to wait.
 */

#ifndef SSDRR_HOST_FILTER_THROTTLE_HH
#define SSDRR_HOST_FILTER_THROTTLE_HH

#include <deque>

#include "host/filter/filter.hh"
#include "host/filter/token_bucket.hh"

namespace ssdrr::host::filter {

class ThrottleFilter : public RequestFilter
{
  public:
    explicit ThrottleFilter(const FilterSpec &spec);

    const char *kind() const override { return "throttle"; }
    void submit(const ssd::HostRequest &req) override;
    void collectStats(ssd::RunStats &s) const override;

    // ----- observability (unit tests) -----
    std::uint64_t throttledRequests() const { return throttled_; }
    std::size_t queued() const { return queue_.size(); }

  private:
    void drain();
    void armDrain();

    TokenBucket bucket_;
    std::deque<ssd::HostRequest> queue_;
    bool drain_armed_ = false;
    std::uint64_t throttled_ = 0;
};

} // namespace ssdrr::host::filter

#endif // SSDRR_HOST_FILTER_THROTTLE_HH

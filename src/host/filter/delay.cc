#include "host/filter/delay.hh"

namespace ssdrr::host::filter {

DelayFilter::DelayFilter(const FilterSpec &spec)
    : ticks_(sim::usec(spec.delayUs)),
      mode_(spec.applies == "reads"    ? Mode::Reads
            : spec.applies == "writes" ? Mode::Writes
                                       : Mode::All)
{
}

void
DelayFilter::submit(const ssd::HostRequest &req)
{
    if (ticks_ == 0 || !applies(req)) {
        down(req);
        return;
    }
    ++delayed_;
    eq().scheduleAfter(ticks_, [this, req] { down(req); });
}

void
DelayFilter::collectStats(ssd::RunStats &s) const
{
    s.delayedRequests += delayed_;
}

} // namespace ssdrr::host::filter

/**
 * @file
 * DRAM read-cache filter: hits complete in DRAM-latency ticks
 * without touching the array.
 *
 * The cache tracks whole logical pages. A read whose pages are all
 * resident is a hit: it is absorbed and completed upward after the
 * configured DRAM service latency, bypassing the entire device path
 * (queueing, NAND sensing, and — the point of the exercise — the
 * read-retry walk). A miss passes through and fills the cache when
 * its completion returns. Writes invalidate (admission "reads") or
 * write-through allocate (admission "all"). Eviction is LRU or FIFO
 * over pages.
 *
 * Prefetches issued by a readahead filter ABOVE this one in the
 * chain pass through as ordinary reads, so their completions fill
 * the cache — stacking readahead over cache turns sequential misses
 * into DRAM hits.
 */

#ifndef SSDRR_HOST_FILTER_CACHE_HH
#define SSDRR_HOST_FILTER_CACHE_HH

#include <list>
#include <unordered_map>

#include "host/filter/filter.hh"

namespace ssdrr::host::filter {

class DramCacheFilter : public RequestFilter
{
  public:
    DramCacheFilter(const FilterSpec &spec, const Context &ctx);

    const char *kind() const override { return "cache"; }
    void submit(const ssd::HostRequest &req) override;
    void complete(const ssd::HostCompletion &c) override;
    void collectStats(ssd::RunStats &s) const override;

    // ----- observability (unit tests) -----
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t residentPages() const { return map_.size(); }
    std::uint64_t capacityPages() const { return capacity_pages_; }
    bool resident(std::uint64_t lpn) const
    {
        return map_.count(lpn) != 0;
    }

  private:
    bool allResident(std::uint64_t lpn, std::uint32_t pages) const;
    void touchRange(std::uint64_t lpn, std::uint32_t pages);
    void insertRange(std::uint64_t lpn, std::uint32_t pages);
    void invalidateRange(std::uint64_t lpn, std::uint32_t pages);

    std::uint64_t capacity_pages_;
    bool lru_;          ///< touch on hit (false = FIFO)
    bool admit_writes_; ///< admission "all"
    sim::Tick hit_ticks_;

    /** Eviction order: front is the next victim. */
    std::list<std::uint64_t> order_;
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator>
        map_;
    /** Read misses in flight below us, by id: their completions
     *  fill the cache. */
    std::unordered_map<std::uint64_t, ssd::HostRequest> pending_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace ssdrr::host::filter

#endif // SSDRR_HOST_FILTER_CACHE_HH

/**
 * @file
 * Rebuild-to-spare, modeled as a background tenant.
 *
 * When the host detects a fail-stopped RAID-5 member
 * (SsdArray::onDriveFailed), the RebuildAgent walks the dead drive's
 * stripe units row by row and issues the reads that reconstruct each
 * unit onto a (virtual) hot spare:
 *  - a data unit of the dead drive is read at its global address —
 *    the layout is already marked failed, so the array turns the
 *    read into the normal degraded-read reconstruction join;
 *  - a parity unit of the dead drive is recomputed by reading the
 *    whole row's data span (all of it on surviving drives).
 *
 * The reads are ordinary host commands on the agent's own queue
 * pair: they flow through command-fetch arbitration, the filter
 * chain, and the array exactly like foreground traffic, so rebuild
 * bandwidth competes with tenants under the configured arbitration
 * policy. Writing the reconstructed unit to the spare is modeled as
 * free (the spare is not an array member, so its writes would not
 * contend with anything the simulation models).
 *
 * The agent runs closed-loop with a small window and is fully
 * deterministic: it reacts only to host-domain events (the detection
 * hook and its own completions).
 */

#ifndef SSDRR_HOST_REBUILD_HH
#define SSDRR_HOST_REBUILD_HH

#include <cstdint>

#include "host/host_interface.hh"

namespace ssdrr::host {

class RebuildAgent
{
  public:
    struct Options {
        /** Concurrent reconstruction reads (clamped to the host
         *  interface's queue depth). */
        std::uint32_t window = 4;
        /** Arbitration weight of the rebuild queue pair. */
        std::uint32_t weight = 1;
        /** Stripe rows to rebuild (bounds the modeled rebuild
         *  region; 0 = the whole array). */
        std::uint64_t rows = 0;
    };

    /** Creates the agent's queue pair on @p hif; requires a RAID-5
     *  array. Idle until start() fires. */
    RebuildAgent(HostInterface &hif, const Options &opt);

    /** Begin rebuilding failed member @p drive (wired to
     *  SsdArray::onDriveFailed). A second call is ignored. */
    void start(std::uint32_t drive);

    bool active() const { return started_ && !finished(); }
    bool finished() const
    {
        return started_ && next_row_ >= total_rows_ && inflight_ == 0;
    }

    /** Reconstruction reads completed so far. */
    std::uint64_t rebuildReads() const { return reads_done_; }
    /** Fraction of the scheduled rebuild region completed (0..1). */
    double progress() const
    {
        return total_rows_ == 0
                   ? 0.0
                   : static_cast<double>(rows_done_) /
                         static_cast<double>(total_rows_);
    }
    /** Simulated milliseconds from detection to the last row (0
     *  until the rebuild finishes). */
    double timeToRebuildMs() const { return time_to_rebuild_ms_; }

    /** Fold the agent's counters into a run summary. */
    void collectStats(ssd::RunStats &s) const;

  private:
    void postNext();
    void onComplete(const ssd::HostCompletion &c);

    HostInterface &hif_;
    Options opt_;
    std::uint32_t qid_ = 0;
    std::uint32_t drives_ = 0;
    std::uint32_t unit_ = 1;

    bool started_ = false;
    std::uint32_t drive_ = 0;       ///< member being rebuilt
    std::uint64_t total_rows_ = 0;  ///< scheduled rebuild region
    std::uint64_t next_row_ = 0;    ///< next row to issue
    std::uint32_t inflight_ = 0;
    std::uint64_t rows_done_ = 0;
    std::uint64_t reads_done_ = 0;
    sim::Tick start_tick_ = 0;
    double time_to_rebuild_ms_ = 0.0;
};

} // namespace ssdrr::host

#endif // SSDRR_HOST_REBUILD_HH

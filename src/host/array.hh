/**
 * @file
 * Array of SSDs behind a pluggable address layout, on one shared
 * timeline or sharded across worker threads.
 *
 * The array exports a single flat logical space whose size and
 * placement are owned by a host::ArrayLayout (array_layout.hh):
 *  - Raid0Layout (default): page-granular striping over the member
 *    drives, drives * perDriveLogicalPages data pages — bit-identical
 *    to the original hard-wired striping.
 *  - Raid5Layout: rotating parity over configurable stripe units;
 *    one drive's worth of pages holds parity, writes are
 *    read-modify-write (parity pre-read + update write), and reads
 *    of a configured failed drive reconstruct from the N-1 surviving
 *    stripe mates.
 *
 * A host request fans out into the layout's per-drive plan; the
 * parent request completes when its last subrequest does (two-phase
 * plans issue their writes only after every pre-read completed), and
 * the registered completion hook fires once with the parent's
 * end-to-end latency. Degraded reads are additionally recorded in a
 * per-class histogram surfaced through RunStats.
 *
 * Execution engines (selected by the host-link turnaround):
 *  - hostLink == 0 (default): all drives and the host side share one
 *    sim::EventQueue and dispatch/completions are synchronous calls,
 *    exactly the original single-threaded engine. Bit-compatible
 *    with every pre-existing result.
 *  - hostLink > 0: each drive owns a private EventQueue and the host
 *    side keeps its own; dispatches reach a drive hostLink ticks
 *    after the host issues them and completions reach the host
 *    hostLink ticks after the drive raises them (modelling the
 *    PCIe/NVMe doorbell-fetch/interrupt turnaround). Cross-queue
 *    traffic flows through sim::ParallelExecutor mailboxes with
 *    window width hostLink, so the drives simulate concurrently on
 *    `threads` workers — and, by the executor's determinism
 *    contract, produce bit-identical results for ANY thread count,
 *    including 1.
 *  - Options::fabric non-empty (mutually exclusive with hostLink):
 *    the sharded engine again, but dispatch/completion crossings are
 *    routed hop-by-hop through a fabric::Fabric — a tree of switches
 *    and links with per-hop latency, byte-proportional serialization,
 *    and FIFO contention (see fabric/fabric.hh). Every switch is its
 *    own executor domain; the window is the topology's minimum link
 *    latency, so worker-count invariance carries over unchanged.
 *
 * Robustness (Options::faults / timeout / retry): a declared
 * sim::FaultInjector timeline makes drives fail-stop, fail-slow, or
 * return uncorrectable reads mid-run. All fault decisions execute on
 * the host domain (dispatch drop, completion swallow/stretch, seeded
 * UECC draw keyed on the subrequest id), so worker-count invariance
 * holds and an empty timeline is bit-identical to a faultless array.
 * With a timeout set, every subrequest carries a deadline; expiry
 * retries it with exponential backoff and, once attempts are
 * exhausted, fails over: a RAID-5 data read becomes the existing
 * reconstruction join, redundant writes are absorbed, and anything
 * unrecoverable completes the parent with CompletionStatus::Failed.
 * A fail-stop is detected at its fail tick + timeout (deterministic,
 * traffic-independent); detection marks the layout failed so new
 * plans go degraded, and fires the onDriveFailed hook (rebuild).
 *
 * Size-proportional link transfer time is no longer an array
 * concern: it moved to the host filter chain's "xfer" filter
 * (host/filter/xfer.hh), which charges per host command above the
 * array. Scenario specs keep the transferUsPerKb knob and translate
 * it into an implicit xfer filter.
 */

#ifndef SSDRR_HOST_ARRAY_HH
#define SSDRR_HOST_ARRAY_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hh"
#include "host/array_layout.hh"
#include "sim/event_queue.hh"
#include "sim/fault_injector.hh"
#include "sim/parallel_executor.hh"
#include "ssd/ssd.hh"

namespace ssdrr::host {

class SsdArray
{
  public:
    using CompletionFn = ssd::Ssd::CompletionFn;

    /** Array shape and engine selection. */
    struct Options {
        std::uint32_t drives = 1;
        RaidLevel raid = RaidLevel::Raid0;
        /** Stripe-unit pages (RAID-5 chunk size; ignored by RAID-0,
         *  whose stripe unit is one page). */
        std::uint32_t stripeUnitPages = 1;
        /** Failed member drives (degraded mode); must respect the
         *  layout's fault tolerance. */
        std::vector<std::uint32_t> failedDrives;
        /** Host dispatch/completion turnaround in ticks; 0 keeps the
         *  legacy shared-queue engine, > 0 selects the windowed
         *  per-drive engine (see file comment). */
        sim::Tick hostLink = 0;
        /** Worker threads for the windowed engine (ignored by the
         *  legacy shared-queue engine; results do not depend on it). */
        std::uint32_t threads = 1;
        /** Doorbell batching for the windowed engine: coalesce
         *  mailbox crossings sharing a (receiver, delivery tick)
         *  into one heap event at the window barrier. Bit-identical
         *  to unbatched delivery (see sim::ParallelExecutor); off
         *  exists for the batched-vs-unbatched parity oracle. */
        bool batchMailbox = true;
        /** Fabric topology routing dispatch/completion crossings
         *  hop-by-hop (empty = no fabric). Non-empty selects the
         *  windowed per-drive engine and excludes hostLink. */
        fabric::TopologySpec fabric;
        /** Fault timeline injected at the host boundary (empty =
         *  faultless, bit-identical to an array without the
         *  machinery). Fail-stop events require a timeout. */
        std::vector<sim::FaultEvent> faults;
        /** Seed for seeded fault draws (UECC probability). */
        std::uint64_t faultSeed = 0;
        /** Per-subrequest deadline in ticks; on expiry the sub is
         *  retried and eventually failed over. 0 disables deadline
         *  tracking entirely (no timeout events are scheduled). */
        sim::Tick timeout = 0;
        /** Reissue attempts after the first issue (timeout or UECC)
         *  before the host fails over. */
        std::uint32_t retryMax = 2;
        /** Backoff before the first reissue; doubles per attempt. */
        sim::Tick retryBackoff = 0;
    };

    /**
     * @param cfg per-drive configuration (each drive gets a distinct
     *            derived seed so drives do not see identical error
     *            patterns)
     * @param mech retry mechanism, same on every drive
     * @param opt array shape (drive count, layout, failed drives)
     *            and engine selection
     */
    SsdArray(const ssd::Config &cfg, core::Mechanism mech,
             const Options &opt);

    /** Legacy convenience: RAID-0 with @p drives members. */
    SsdArray(const ssd::Config &cfg, core::Mechanism mech,
             std::uint32_t drives, sim::Tick host_link = 0,
             std::uint32_t threads = 1);

    /** Host-side event queue (the shared queue in legacy mode). All
     *  host-layer actors (tenants, HostInterface) schedule here. */
    sim::EventQueue &eventQueue() { return eq_; }
    std::uint32_t drives() const
    {
        return static_cast<std::uint32_t>(ssds_.size());
    }
    ssd::Ssd &drive(std::uint32_t i) { return *ssds_.at(i); }
    core::Mechanism mechanism() const { return mech_; }
    /** Host-link turnaround in ticks (0 = legacy shared queue). */
    sim::Tick hostLink() const { return link_; }
    /** True when drives run on private queues behind mailboxes. */
    bool sharded() const { return exec_ != nullptr; }
    /** The fabric transport, or null for flat-link / legacy modes. */
    const fabric::Fabric *fabric() const { return fabric_.get(); }
    /** The address layout mapping the flat space onto drives. */
    const ArrayLayout &layout() const { return *layout_; }

    /** Exported data capacity in pages (layout-dependent: RAID-5
     *  gives one drive's worth to parity). */
    std::uint64_t logicalPages() const { return logical_pages_; }

    /** Page size in bytes (uniform across member drives). */
    std::uint32_t pageBytes() const
    {
        return ssds_.front()->config().pageBytes;
    }

    /** Drive holding global LPN @p lpn. */
    std::uint32_t driveOf(std::uint64_t lpn) const
    {
        return layout_->locate(lpn).drive;
    }
    /** Per-drive LPN of global LPN @p lpn. */
    std::uint64_t localLpn(std::uint64_t lpn) const
    {
        return layout_->locate(lpn).lpn;
    }

    /** Precondition every member drive (aged mapping). */
    void precondition();

    /** Completion hook for parent (array-level) requests. */
    void onHostComplete(CompletionFn fn) { on_complete_ = std::move(fn); }

    /**
     * Hook fired (on the host domain) when the host detects a
     * fail-stopped drive — at its fail tick plus the timeout. The
     * layout has already been marked failed when this runs; scenario
     * wiring uses it to start a rebuild-to-spare.
     */
    void onDriveFailed(std::function<void(std::uint32_t)> fn)
    {
        on_drive_failed_ = std::move(fn);
    }

    /** The fault timeline, or null when the array runs faultless. */
    const sim::FaultInjector *faultInjector() const
    {
        return faults_.get();
    }

    /**
     * Submit a request against the global LPN space at the current
     * simulated time. Request ids must be unique among outstanding
     * requests. Must be called from the host side (a host event, or
     * the coordinator thread between runs).
     */
    void submit(const ssd::HostRequest &req);

    /** Run the engine until all work completes. */
    void drain();

    /**
     * Aggregate run summary. Reads/writes and the latency
     * distribution count parent requests at the array surface (a
     * striped request counts once, at its end-to-end latency);
     * device-side counters (suspensions, GC, refreshes, ...) are
     * summed across drives and utilizations averaged over them.
     * Degraded reads, reconstruction subreads, and parity writes are
     * array-level layout accounting. executedEvents covers every
     * queue that drove the run (the one shared queue, or host +
     * per-drive queues summed).
     */
    ssd::RunStats stats() const;

    /** Array-surface (parent-request) latency distributions. */
    const sim::Histogram &readResponseTimes() const { return resp_read_; }
    const sim::Histogram &writeResponseTimes() const { return resp_write_; }
    /** Reads served through reconstruction (also in the read view). */
    const sim::Histogram &degradedReadResponseTimes() const
    {
        return resp_degraded_;
    }

  private:
    struct Parent {
        sim::Tick arrival = 0;
        std::uint32_t remaining = 0; ///< outstanding subrequests
        std::uint32_t pages = 1; ///< request size, echoed on completion
        /** Request channel-affinity mask, kept so phase-2 writes
         *  honour it like phase-1 ones. */
        std::uint32_t channelMask = 0;
        bool isRead = true;
        bool degraded = false; ///< plan reconstructed lost data
        bool failed = false;   ///< completes CompletionStatus::Failed
        /** Phase-2 write ops, issued when phase 1 fully completes. */
        std::vector<ArrayLayout::SubOp> phase2;
    };

    /** Per-subrequest tracking (the op is kept so timeouts can
     *  reissue or fail over; everything lives on the host domain). */
    struct SubState {
        std::uint64_t parent = 0;
        ArrayLayout::SubOp op; ///< as planned (drive-local LPN)
        std::uint32_t channelMask = 0;
        std::uint32_t attempt = 1; ///< 1 = original issue
        sim::EventId timeoutEv = 0;
        /** Fail-slow stretch already applied to this completion. */
        bool stretched = false;
        /** Deadline expired; a late completion is silently dropped. */
        bool abandoned = false;
        /** A device completion will still arrive (false when the
         *  dispatch was dropped by a fail-stop). */
        bool expectCompletion = true;
    };

    /** Issue one planned op as a drive subrequest; @p attempt > 1
     *  marks a reissue (layout accounting counts first issues only). */
    void issueSub(std::uint64_t parent_id, sim::Tick arrival,
                  std::uint32_t channel_mask,
                  const ArrayLayout::SubOp &op,
                  std::uint32_t attempt = 1);
    void subComplete(const ssd::HostCompletion &c);
    /** Drive-side completion hook in sharded mode: forward to the
     *  host domain with the completion turnaround applied. */
    void driveComplete(std::uint32_t d, const ssd::HostCompletion &c);
    void dispatch(std::uint32_t d, const ssd::HostRequest &sub);
    /** One subrequest slot of @p parent_id finished (completed,
     *  reconstructed, or absorbed): the old subComplete tail. */
    void finishSlot(std::uint64_t parent_id);
    /** Deadline expiry for subrequest @p sub_id. */
    void onSubTimeout(std::uint64_t sub_id);
    /** A sub was lost (timeout) or came back UECC: retry with
     *  backoff, or fail over once attempts are exhausted. */
    void resolveFailedSub(std::uint64_t sub_id, bool timed_out);
    /** Retries exhausted: reconstruct / absorb / fail the parent. */
    void failover(const SubState &st);
    /** The host detects a fail-stop (fail tick + timeout). */
    void onDriveDetected(std::uint32_t d);
    bool driveDead(std::uint32_t d) const
    {
        return (dead_mask_ >> d) & 1u;
    }

    sim::EventQueue eq_; ///< host-side queue (shared queue in legacy)
    core::Mechanism mech_;
    sim::Tick link_ = 0;
    std::unique_ptr<ArrayLayout> layout_;
    std::vector<std::unique_ptr<ssd::Ssd>> ssds_;
    std::uint64_t logical_pages_ = 0;

    /** Windowed engine (sharded mode only). Domain 0 is the host. */
    std::unique_ptr<sim::ParallelExecutor> exec_;
    sim::ParallelExecutor::DomainId host_dom_ = 0;
    std::vector<sim::ParallelExecutor::DomainId> drive_dom_;
    /** Fabric transport (sharded mode with a topology only). */
    std::unique_ptr<fabric::Fabric> fabric_;

    std::unordered_map<std::uint64_t, SubState> subs_;
    std::unordered_map<std::uint64_t, Parent> parents_;
    std::uint64_t next_sub_id_ = 1;
    CompletionFn on_complete_;

    /** Fault timeline (null = faultless) and host robustness knobs.
     *  All queries and decisions run on the host domain. */
    std::unique_ptr<sim::FaultInjector> faults_;
    sim::Tick timeout_ = 0;
    std::uint32_t retry_max_ = 2;
    sim::Tick retry_backoff_ = 0;
    /** Drives the host knows are unusable: static failedDrives plus
     *  detected fail-stops. */
    std::uint64_t dead_mask_ = 0;
    std::function<void(std::uint32_t)> on_drive_failed_;

    /** Robustness accounting (see stats()). */
    std::uint64_t host_timeouts_ = 0;
    std::uint64_t host_retries_ = 0;
    std::uint64_t host_failovers_ = 0;
    std::uint64_t uecc_reads_ = 0;
    std::uint64_t failed_requests_ = 0;

    /** Scratch for submit()'s fan-out plan (no per-request
     *  allocation on the injection hot path). */
    ArrayLayout::Plan plan_scratch_;

    /** Layout accounting (see stats()). */
    std::uint64_t reconstruction_reads_ = 0;
    std::uint64_t parity_writes_ = 0;

    /** Parent-request latencies; the all-request view is derived by
     *  merging these two at reporting time. Degraded reads record
     *  into both the read and the degraded histogram. */
    sim::Histogram resp_read_;
    sim::Histogram resp_write_;
    sim::Histogram resp_degraded_;
};

} // namespace ssdrr::host

#endif // SSDRR_HOST_ARRAY_HH

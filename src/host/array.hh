/**
 * @file
 * LPN-striped array of SSDs, on one shared timeline or sharded
 * across worker threads.
 *
 * The array exports a single flat logical space of
 * drives * perDriveLogicalPages pages, striped page-by-page across
 * the member drives (global LPN g lives on drive g % N at local LPN
 * g / N — RAID-0 at page granularity).
 *
 * Multi-page requests that span drives are split into per-drive
 * subrequests; the parent request completes when its last subrequest
 * does, and the registered completion hook fires once with the
 * parent's end-to-end latency.
 *
 * Execution engines (selected by the host-link turnaround):
 *  - hostLink == 0 (default): all drives and the host side share one
 *    sim::EventQueue and dispatch/completions are synchronous calls,
 *    exactly the original single-threaded engine. Bit-compatible
 *    with every pre-existing result.
 *  - hostLink > 0: each drive owns a private EventQueue and the host
 *    side keeps its own; dispatches reach a drive hostLink ticks
 *    after the host issues them and completions reach the host
 *    hostLink ticks after the drive raises them (modelling the
 *    PCIe/NVMe doorbell-fetch/interrupt turnaround). Cross-queue
 *    traffic flows through sim::ParallelExecutor mailboxes with
 *    window width hostLink, so the drives simulate concurrently on
 *    `threads` workers — and, by the executor's determinism
 *    contract, produce bit-identical results for ANY thread count,
 *    including 1.
 */

#ifndef SSDRR_HOST_ARRAY_HH
#define SSDRR_HOST_ARRAY_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/parallel_executor.hh"
#include "ssd/ssd.hh"

namespace ssdrr::host {

class SsdArray
{
  public:
    using CompletionFn = ssd::Ssd::CompletionFn;

    /**
     * @param cfg per-drive configuration (each drive gets a distinct
     *            derived seed so drives do not see identical error
     *            patterns)
     * @param mech retry mechanism, same on every drive
     * @param drives number of member SSDs (>= 1)
     * @param host_link host dispatch/completion turnaround in ticks;
     *                  0 keeps the legacy shared-queue engine, > 0
     *                  selects the windowed per-drive engine (see
     *                  file comment)
     * @param threads worker threads for the windowed engine (ignored
     *                when host_link == 0; results do not depend on
     *                it)
     */
    SsdArray(const ssd::Config &cfg, core::Mechanism mech,
             std::uint32_t drives, sim::Tick host_link = 0,
             std::uint32_t threads = 1);

    /** Host-side event queue (the shared queue in legacy mode). All
     *  host-layer actors (tenants, HostInterface) schedule here. */
    sim::EventQueue &eventQueue() { return eq_; }
    std::uint32_t drives() const
    {
        return static_cast<std::uint32_t>(ssds_.size());
    }
    ssd::Ssd &drive(std::uint32_t i) { return *ssds_.at(i); }
    core::Mechanism mechanism() const { return mech_; }
    /** Host-link turnaround in ticks (0 = legacy shared queue). */
    sim::Tick hostLink() const { return link_; }
    /** True when drives run on private queues behind mailboxes. */
    bool sharded() const { return exec_ != nullptr; }

    /** Exported capacity: drives * per-drive logical pages. */
    std::uint64_t logicalPages() const { return logical_pages_; }

    /** Drive holding global LPN @p lpn. */
    std::uint32_t driveOf(std::uint64_t lpn) const
    {
        return static_cast<std::uint32_t>(lpn % ssds_.size());
    }
    /** Per-drive LPN of global LPN @p lpn. */
    std::uint64_t localLpn(std::uint64_t lpn) const
    {
        return lpn / ssds_.size();
    }

    /** Precondition every member drive (aged mapping). */
    void precondition();

    /** Completion hook for parent (array-level) requests. */
    void onHostComplete(CompletionFn fn) { on_complete_ = std::move(fn); }

    /**
     * Submit a request against the global LPN space at the current
     * simulated time. Request ids must be unique among outstanding
     * requests. Must be called from the host side (a host event, or
     * the coordinator thread between runs).
     */
    void submit(const ssd::HostRequest &req);

    /** Run the engine until all work completes. */
    void drain();

    /**
     * Aggregate run summary. Reads/writes and the latency
     * distribution count parent requests at the array surface (a
     * striped request counts once, at its end-to-end latency);
     * device-side counters (suspensions, GC, refreshes, ...) are
     * summed across drives and utilizations averaged over them.
     * executedEvents covers every queue that drove the run (the one
     * shared queue, or host + per-drive queues summed).
     */
    ssd::RunStats stats() const;

    /** Array-surface (parent-request) latency distributions. */
    const sim::Histogram &readResponseTimes() const { return resp_read_; }
    const sim::Histogram &writeResponseTimes() const { return resp_write_; }

  private:
    struct Parent {
        sim::Tick arrival = 0;
        std::uint32_t remaining = 0; ///< outstanding subrequests
        bool isRead = true;
    };

    void subComplete(const ssd::HostCompletion &c);
    /** Drive-side completion hook in sharded mode: forward to the
     *  host domain with the completion turnaround applied. */
    void driveComplete(std::uint32_t d, const ssd::HostCompletion &c);
    void dispatch(std::uint32_t d, const ssd::HostRequest &sub);

    sim::EventQueue eq_; ///< host-side queue (shared queue in legacy)
    core::Mechanism mech_;
    sim::Tick link_ = 0;
    std::vector<std::unique_ptr<ssd::Ssd>> ssds_;
    std::uint64_t logical_pages_ = 0;

    /** Windowed engine (sharded mode only). Domain 0 is the host. */
    std::unique_ptr<sim::ParallelExecutor> exec_;
    sim::ParallelExecutor::DomainId host_dom_ = 0;
    std::vector<sim::ParallelExecutor::DomainId> drive_dom_;

    std::unordered_map<std::uint64_t, std::uint64_t> sub_parent_;
    std::unordered_map<std::uint64_t, Parent> parents_;
    std::uint64_t next_sub_id_ = 1;
    CompletionFn on_complete_;

    /** Scratch for submit()'s per-drive split (no per-request
     *  allocation on the injection hot path). */
    std::vector<std::uint64_t> split_first_;
    std::vector<std::uint32_t> split_count_;

    /** Parent-request latencies; the all-request view is derived by
     *  merging these two at reporting time. */
    sim::Histogram resp_read_;
    sim::Histogram resp_write_;
};

} // namespace ssdrr::host

#endif // SSDRR_HOST_ARRAY_HH

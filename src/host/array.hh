/**
 * @file
 * Array of SSDs behind a pluggable address layout, on one shared
 * timeline or sharded across worker threads.
 *
 * The array exports a single flat logical space whose size and
 * placement are owned by a host::ArrayLayout (array_layout.hh):
 *  - Raid0Layout (default): page-granular striping over the member
 *    drives, drives * perDriveLogicalPages data pages — bit-identical
 *    to the original hard-wired striping.
 *  - Raid5Layout: rotating parity over configurable stripe units;
 *    one drive's worth of pages holds parity, writes are
 *    read-modify-write (parity pre-read + update write), and reads
 *    of a configured failed drive reconstruct from the N-1 surviving
 *    stripe mates.
 *
 * A host request fans out into the layout's per-drive plan; the
 * parent request completes when its last subrequest does (two-phase
 * plans issue their writes only after every pre-read completed), and
 * the registered completion hook fires once with the parent's
 * end-to-end latency. Degraded reads are additionally recorded in a
 * per-class histogram surfaced through RunStats.
 *
 * Execution engines (selected by the host-link turnaround):
 *  - hostLink == 0 (default): all drives and the host side share one
 *    sim::EventQueue and dispatch/completions are synchronous calls,
 *    exactly the original single-threaded engine. Bit-compatible
 *    with every pre-existing result.
 *  - hostLink > 0: each drive owns a private EventQueue and the host
 *    side keeps its own; dispatches reach a drive hostLink ticks
 *    after the host issues them and completions reach the host
 *    hostLink ticks after the drive raises them (modelling the
 *    PCIe/NVMe doorbell-fetch/interrupt turnaround). Cross-queue
 *    traffic flows through sim::ParallelExecutor mailboxes with
 *    window width hostLink, so the drives simulate concurrently on
 *    `threads` workers — and, by the executor's determinism
 *    contract, produce bit-identical results for ANY thread count,
 *    including 1.
 *
 * Size-proportional link transfer time is no longer an array
 * concern: it moved to the host filter chain's "xfer" filter
 * (host/filter/xfer.hh), which charges per host command above the
 * array. Scenario specs keep the transferUsPerKb knob and translate
 * it into an implicit xfer filter.
 */

#ifndef SSDRR_HOST_ARRAY_HH
#define SSDRR_HOST_ARRAY_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "host/array_layout.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_executor.hh"
#include "ssd/ssd.hh"

namespace ssdrr::host {

class SsdArray
{
  public:
    using CompletionFn = ssd::Ssd::CompletionFn;

    /** Array shape and engine selection. */
    struct Options {
        std::uint32_t drives = 1;
        RaidLevel raid = RaidLevel::Raid0;
        /** Stripe-unit pages (RAID-5 chunk size; ignored by RAID-0,
         *  whose stripe unit is one page). */
        std::uint32_t stripeUnitPages = 1;
        /** Failed member drives (degraded mode); must respect the
         *  layout's fault tolerance. */
        std::vector<std::uint32_t> failedDrives;
        /** Host dispatch/completion turnaround in ticks; 0 keeps the
         *  legacy shared-queue engine, > 0 selects the windowed
         *  per-drive engine (see file comment). */
        sim::Tick hostLink = 0;
        /** Worker threads for the windowed engine (ignored when
         *  hostLink == 0; results do not depend on it). */
        std::uint32_t threads = 1;
    };

    /**
     * @param cfg per-drive configuration (each drive gets a distinct
     *            derived seed so drives do not see identical error
     *            patterns)
     * @param mech retry mechanism, same on every drive
     * @param opt array shape (drive count, layout, failed drives)
     *            and engine selection
     */
    SsdArray(const ssd::Config &cfg, core::Mechanism mech,
             const Options &opt);

    /** Legacy convenience: RAID-0 with @p drives members. */
    SsdArray(const ssd::Config &cfg, core::Mechanism mech,
             std::uint32_t drives, sim::Tick host_link = 0,
             std::uint32_t threads = 1);

    /** Host-side event queue (the shared queue in legacy mode). All
     *  host-layer actors (tenants, HostInterface) schedule here. */
    sim::EventQueue &eventQueue() { return eq_; }
    std::uint32_t drives() const
    {
        return static_cast<std::uint32_t>(ssds_.size());
    }
    ssd::Ssd &drive(std::uint32_t i) { return *ssds_.at(i); }
    core::Mechanism mechanism() const { return mech_; }
    /** Host-link turnaround in ticks (0 = legacy shared queue). */
    sim::Tick hostLink() const { return link_; }
    /** True when drives run on private queues behind mailboxes. */
    bool sharded() const { return exec_ != nullptr; }
    /** The address layout mapping the flat space onto drives. */
    const ArrayLayout &layout() const { return *layout_; }

    /** Exported data capacity in pages (layout-dependent: RAID-5
     *  gives one drive's worth to parity). */
    std::uint64_t logicalPages() const { return logical_pages_; }

    /** Page size in bytes (uniform across member drives). */
    std::uint32_t pageBytes() const
    {
        return ssds_.front()->config().pageBytes;
    }

    /** Drive holding global LPN @p lpn. */
    std::uint32_t driveOf(std::uint64_t lpn) const
    {
        return layout_->locate(lpn).drive;
    }
    /** Per-drive LPN of global LPN @p lpn. */
    std::uint64_t localLpn(std::uint64_t lpn) const
    {
        return layout_->locate(lpn).lpn;
    }

    /** Precondition every member drive (aged mapping). */
    void precondition();

    /** Completion hook for parent (array-level) requests. */
    void onHostComplete(CompletionFn fn) { on_complete_ = std::move(fn); }

    /**
     * Submit a request against the global LPN space at the current
     * simulated time. Request ids must be unique among outstanding
     * requests. Must be called from the host side (a host event, or
     * the coordinator thread between runs).
     */
    void submit(const ssd::HostRequest &req);

    /** Run the engine until all work completes. */
    void drain();

    /**
     * Aggregate run summary. Reads/writes and the latency
     * distribution count parent requests at the array surface (a
     * striped request counts once, at its end-to-end latency);
     * device-side counters (suspensions, GC, refreshes, ...) are
     * summed across drives and utilizations averaged over them.
     * Degraded reads, reconstruction subreads, and parity writes are
     * array-level layout accounting. executedEvents covers every
     * queue that drove the run (the one shared queue, or host +
     * per-drive queues summed).
     */
    ssd::RunStats stats() const;

    /** Array-surface (parent-request) latency distributions. */
    const sim::Histogram &readResponseTimes() const { return resp_read_; }
    const sim::Histogram &writeResponseTimes() const { return resp_write_; }
    /** Reads served through reconstruction (also in the read view). */
    const sim::Histogram &degradedReadResponseTimes() const
    {
        return resp_degraded_;
    }

  private:
    struct Parent {
        sim::Tick arrival = 0;
        std::uint32_t remaining = 0; ///< outstanding subrequests
        std::uint32_t pages = 1; ///< request size, echoed on completion
        /** Request channel-affinity mask, kept so phase-2 writes
         *  honour it like phase-1 ones. */
        std::uint32_t channelMask = 0;
        bool isRead = true;
        bool degraded = false; ///< plan reconstructed lost data
        /** Phase-2 write ops, issued when phase 1 fully completes. */
        std::vector<ArrayLayout::SubOp> phase2;
    };

    /** Issue one planned op as a drive subrequest. */
    void issueSub(std::uint64_t parent_id, sim::Tick arrival,
                  std::uint32_t channel_mask,
                  const ArrayLayout::SubOp &op);
    void subComplete(const ssd::HostCompletion &c);
    /** Drive-side completion hook in sharded mode: forward to the
     *  host domain with the completion turnaround applied. */
    void driveComplete(std::uint32_t d, const ssd::HostCompletion &c);
    void dispatch(std::uint32_t d, const ssd::HostRequest &sub);

    sim::EventQueue eq_; ///< host-side queue (shared queue in legacy)
    core::Mechanism mech_;
    sim::Tick link_ = 0;
    std::unique_ptr<ArrayLayout> layout_;
    std::vector<std::unique_ptr<ssd::Ssd>> ssds_;
    std::uint64_t logical_pages_ = 0;

    /** Windowed engine (sharded mode only). Domain 0 is the host. */
    std::unique_ptr<sim::ParallelExecutor> exec_;
    sim::ParallelExecutor::DomainId host_dom_ = 0;
    std::vector<sim::ParallelExecutor::DomainId> drive_dom_;

    std::unordered_map<std::uint64_t, std::uint64_t> sub_parent_;
    std::unordered_map<std::uint64_t, Parent> parents_;
    std::uint64_t next_sub_id_ = 1;
    CompletionFn on_complete_;

    /** Scratch for submit()'s fan-out plan (no per-request
     *  allocation on the injection hot path). */
    ArrayLayout::Plan plan_scratch_;

    /** Layout accounting (see stats()). */
    std::uint64_t reconstruction_reads_ = 0;
    std::uint64_t parity_writes_ = 0;

    /** Parent-request latencies; the all-request view is derived by
     *  merging these two at reporting time. Degraded reads record
     *  into both the read and the degraded histogram. */
    sim::Histogram resp_read_;
    sim::Histogram resp_write_;
    sim::Histogram resp_degraded_;
};

} // namespace ssdrr::host

#endif // SSDRR_HOST_ARRAY_HH

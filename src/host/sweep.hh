/**
 * @file
 * Grid-of-scenarios sweep: a base ScenarioSpec plus named axes, each
 * a JSON path into the scenario document with a list of values. The
 * cross product of the axis values is expanded into concrete,
 * validated ScenarioSpecs — one cell per combination — and the
 * per-cell results are folded into a single deterministic aggregate
 * (JSON document + aligned text table + digest) whose bytes never
 * depend on how many worker processes ran the cells or in which
 * order they finished.
 *
 * Sweep file schema:
 *
 *     {
 *       "base": { <any scenario-spec document> },
 *       "axes": {
 *         "mechanism": ["Baseline", "PnAR2"],
 *         "ssd.pecKilo": [1, 3],
 *         "tenants[0].workload": ["usr_1", "YCSB-C"]
 *       }
 *     }
 *
 * Axis paths are dot-separated keys into the scenario document, with
 * [N] indexing into arrays (the element must exist in the base).
 * Two sugars exist for fields whose spec encoding is not a single
 * scalar: "mechanism" (a mechanism name; the cell runs exactly that
 * mechanism) and "fabric.preset" (a topology preset name like "flat"
 * or "tree:2x2", materialized for the cell's drive count).
 *
 * Expansion is row-major with the first axis slowest, in the file's
 * axis order (the JSON codec preserves insertion order). Every axis
 * value is structurally checked at load time against the scenario
 * schema, so a typo'd path or a mistyped value fails fast with the
 * axis named ("axes.<path>[i]: ..."); full semantic validation runs
 * per cell at materialization, prefixed with the cell's label.
 */

#ifndef SSDRR_HOST_SWEEP_HH
#define SSDRR_HOST_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "host/scenario_spec.hh"
#include "sim/json.hh"

namespace ssdrr::host {

/** One sweep dimension: a scenario-JSON path and its value list. */
struct SweepAxis {
    std::string path;
    std::vector<sim::json::Value> values;
};

struct SweepSpec {
    /** The scenario document every cell starts from. */
    sim::json::Value base;
    /** Axes in file order; first varies slowest. */
    std::vector<SweepAxis> axes;

    /** Parse + structurally check a sweep document. @throws SpecError
     *  naming "base" or "axes.<path>[i]" on any defect. */
    static SweepSpec fromJson(const sim::json::Value &v);
    static SweepSpec fromJsonText(const std::string &text);
    static SweepSpec loadFile(const std::string &path);

    /** Cross-product size (1 when there are no axes). */
    std::size_t cells() const;

    /** Per-axis value indices of @p cell (row-major, first axis
     *  slowest). @p cell must be < cells(). */
    std::vector<std::size_t> coordinates(std::size_t cell) const;

    /** "path=value path=value ..." — stable human-readable cell key
     *  used in error messages, result rows, and the text table. */
    std::string label(std::size_t cell) const;

    /**
     * Materialize and validate the concrete spec for one cell.
     * @throws SpecError with the cell label prefixed when the
     * combination is semantically invalid (an axis can be
     * structurally fine yet invalid against another axis's value —
     * e.g. a failed-drive index beyond the cell's drive count).
     */
    ScenarioSpec materialize(std::size_t cell) const;
};

/**
 * Run one cell through every mechanism of its materialized spec.
 * Returns a JSON array of row objects (cell index, label, axis
 * values, mechanism, status "ok", and the result's headline stats
 * and robustness counters). @throws SpecError / sim errors on an
 * invalid or failing cell — callers map that to an error row.
 */
sim::json::Value runSweepCell(const SweepSpec &sweep, std::size_t cell,
                              TraceCache *cache = nullptr);

/**
 * Build an error row for a cell that failed to run (nonzero child
 * exit, or an in-process exception): status "error", the exit code,
 * and the failure message — so one bad cell degrades its rows, not
 * the whole table.
 */
sim::json::Value sweepErrorRow(const SweepSpec &sweep,
                               std::size_t cell, int exit_code,
                               const std::string &message);

/**
 * Fold per-cell results (indexed by cell; each either the array
 * runSweepCell returned or a sweepErrorRow object) into the
 * aggregate document: {"schema", "cells", "axes", "rows", "digest"}.
 * Rows are ordered by (cell, mechanism) regardless of the order
 * results were produced, so the dump is byte-stable under any job
 * count or completion order.
 */
sim::json::Value
aggregateSweep(const SweepSpec &sweep,
               const std::vector<sim::json::Value> &cell_results);

/** The aggregate's FNV-1a digest (16 hex chars), as stored in its
 *  "digest" member: computed over the compact dump of "rows". */
std::string sweepDigest(const sim::json::Value &aggregate);

/** Aligned-column text rendering of an aggregate (ends with the
 *  digest line), byte-stable for a given aggregate. */
std::string sweepTable(const sim::json::Value &aggregate);

} // namespace ssdrr::host

#endif // SSDRR_HOST_SWEEP_HH

#include "host/array_layout.hh"

#include "sim/logging.hh"

namespace ssdrr::host {

const char *
name(RaidLevel level)
{
    switch (level) {
    case RaidLevel::Raid0:
        return "raid0";
    case RaidLevel::Raid5:
        return "raid5";
    }
    SSDRR_ASSERT(false, "unknown RaidLevel ",
                 static_cast<int>(level));
}

bool
tryParseRaidLevel(const std::string &s, RaidLevel *out)
{
    RaidLevel level;
    if (s == "raid0")
        level = RaidLevel::Raid0;
    else if (s == "raid5")
        level = RaidLevel::Raid5;
    else
        return false;
    if (out)
        *out = level;
    return true;
}

RaidLevel
parseRaidLevel(const std::string &s)
{
    RaidLevel level;
    SSDRR_ASSERT(tryParseRaidLevel(s, &level), "unknown RAID level '",
                 s, "' (expected raid0 or raid5)");
    return level;
}

// ------------------------------------------------------ Raid0Layout

Raid0Layout::Raid0Layout(std::uint32_t drives) : drives_(drives)
{
    SSDRR_ASSERT(drives >= 1, "raid0 needs at least one drive");
}

void
Raid0Layout::plan(std::uint64_t lpn, std::uint32_t pages, bool is_read,
                  Plan &out)
{
    out.clear();
    // Page-striped split: each member drive receives at most one
    // subrequest, covering the (consecutive) local LPNs that fall on
    // it. first_[d] is the smallest local LPN of the span on drive
    // d. Member scratch avoids allocating two vectors per request.
    first_.assign(drives_, 0);
    count_.assign(drives_, 0);
    for (std::uint32_t i = 0; i < pages; ++i) {
        const Location loc = locate(lpn + i);
        if (count_[loc.drive]++ == 0)
            first_[loc.drive] = loc.lpn;
    }
    for (std::uint32_t d = 0; d < drives_; ++d) {
        if (count_[d] == 0)
            continue;
        SubOp op;
        op.drive = d;
        op.lpn = first_[d];
        op.pages = count_[d];
        op.isRead = is_read;
        op.cls = OpClass::Data;
        out.ops.push_back(op);
    }
}

// ------------------------------------------------------ Raid5Layout

Raid5Layout::Raid5Layout(std::uint32_t drives,
                         std::uint32_t stripe_unit_pages,
                         const std::vector<std::uint32_t> &failed)
    : drives_(drives), unit_(stripe_unit_pages)
{
    SSDRR_ASSERT(drives >= 3, "raid5 needs at least 3 drives, got ",
                 drives);
    SSDRR_ASSERT(drives <= 64, "raid5 supports at most 64 drives");
    SSDRR_ASSERT(unit_ >= 1, "stripe unit must be at least one page");
    SSDRR_ASSERT(failed.size() <= faultTolerance(),
                 "raid5 tolerates one failed drive, got ",
                 failed.size());
    for (std::uint32_t d : failed) {
        SSDRR_ASSERT(d < drives, "failed drive ", d,
                     " out of range for ", drives, " drives");
        failed_mask_ |= std::uint64_t{1} << d;
    }
}

ArrayLayout::Location
Raid5Layout::locate(std::uint64_t lpn) const
{
    const std::uint64_t s = lpn / unit_; ///< data stripe-unit index
    const std::uint32_t o = static_cast<std::uint32_t>(lpn % unit_);
    const std::uint64_t row = s / (drives_ - 1);
    const std::uint32_t k =
        static_cast<std::uint32_t>(s % (drives_ - 1));
    const std::uint32_t parity = parityDriveOfRow(row);
    // k-th data drive of the row = k-th member, skipping the parity
    // drive.
    const std::uint32_t drive = k < parity ? k : k + 1;
    return {drive, row * unit_ + o};
}

void
Raid5Layout::addPage(std::vector<SubOp> &ops,
                     std::unordered_set<std::uint64_t> &seen,
                     std::vector<std::int32_t> &last,
                     std::uint32_t drive, std::uint64_t lpn,
                     bool is_read, OpClass cls) const
{
    // (drive, local LPN) key; local LPNs stay far below 2^57.
    if (!seen.insert(lpn * drives_ + drive).second)
        return;
    if (last[drive] >= 0) {
        SubOp &prev = ops[last[drive]];
        if (prev.isRead == is_read && prev.cls == cls &&
            prev.lpn + prev.pages == lpn) {
            ++prev.pages;
            return;
        }
    }
    SubOp op;
    op.drive = drive;
    op.lpn = lpn;
    op.pages = 1;
    op.isRead = is_read;
    op.cls = cls;
    last[drive] = static_cast<std::int32_t>(ops.size());
    ops.push_back(op);
}

void
Raid5Layout::plan(std::uint64_t lpn, std::uint32_t pages, bool is_read,
                  Plan &out)
{
    out.clear();
    seen_reads_.clear();
    seen_writes_.clear();
    last_read_.assign(drives_, -1);
    last_write_.assign(drives_, -1);

    for (std::uint32_t i = 0; i < pages; ++i) {
        const std::uint64_t g = lpn + i;
        const Location loc = locate(g);
        const std::uint64_t row = loc.lpn / unit_;
        const std::uint32_t parity = parityDriveOfRow(row);

        if (is_read) {
            if (!isFailed(loc.drive)) {
                addPage(out.ops, seen_reads_, last_read_, loc.drive, loc.lpn,
                        true, OpClass::Data);
                continue;
            }
            // Degraded read: page l of every surviving drive of the
            // row (data mates + parity chunk alike) reconstructs the
            // lost page; all of them are Rebuild reads — the class
            // marks "feeds a reconstruction join", and the
            // reconstructionReads counter reports the full N-1
            // fan-out.
            out.degraded = true;
            for (std::uint32_t d = 0; d < drives_; ++d)
                if (d != loc.drive)
                    addPage(out.ops, seen_reads_, last_read_, d, loc.lpn, true,
                            OpClass::Rebuild);
            continue;
        }

        if (isFailed(loc.drive)) {
            // Reconstruct-write: the lost chunk is implied by the
            // surviving data mates plus the new parity; pre-read the
            // mates, then update parity alone.
            out.degraded = true;
            for (std::uint32_t d = 0; d < drives_; ++d)
                if (d != loc.drive && d != parity)
                    addPage(out.ops, seen_reads_, last_read_, d, loc.lpn, true,
                            OpClass::Rebuild);
            addPage(out.writes, seen_writes_, last_write_, parity,
                    loc.lpn, false, OpClass::Parity);
        } else if (isFailed(parity)) {
            // Parity drive gone: the data write proceeds without
            // parity maintenance (nothing to pre-read).
            addPage(out.writes, seen_writes_, last_write_, loc.drive, loc.lpn,
                    false, OpClass::Data);
        } else {
            // Read-modify-write: old data + old parity in, new data
            // + new parity out.
            addPage(out.ops, seen_reads_, last_read_, loc.drive, loc.lpn, true,
                    OpClass::Data);
            addPage(out.ops, seen_reads_, last_read_, parity, loc.lpn, true,
                    OpClass::Parity);
            addPage(out.writes, seen_writes_, last_write_, loc.drive, loc.lpn,
                    false, OpClass::Data);
            addPage(out.writes, seen_writes_, last_write_, parity,
                    loc.lpn, false, OpClass::Parity);
        }
    }
}

bool
Raid5Layout::markFailed(std::uint32_t drive)
{
    SSDRR_ASSERT(drive < drives_, "markFailed drive ", drive,
                 " out of range for ", drives_, " drives");
    if (isFailed(drive))
        return true; // already routing around it
    // Count current failures against the tolerance; a second failure
    // is data loss and plans cannot route around it.
    std::uint32_t failures = 0;
    for (std::uint32_t d = 0; d < drives_; ++d)
        failures += isFailed(d) ? 1u : 0u;
    if (failures >= faultTolerance())
        return false;
    failed_mask_ |= std::uint64_t{1} << drive;
    return true;
}

// --------------------------------------------------------- factory

std::uint64_t
arrayLogicalPages(RaidLevel level, std::uint32_t drives,
                  std::uint32_t stripe_unit_pages,
                  std::uint64_t per_drive_pages)
{
    switch (level) {
    case RaidLevel::Raid0:
        return per_drive_pages * drives;
    case RaidLevel::Raid5:
        return per_drive_pages / stripe_unit_pages *
               stripe_unit_pages * (drives - 1);
    }
    SSDRR_ASSERT(false, "unknown RaidLevel ",
                 static_cast<int>(level));
}

std::unique_ptr<ArrayLayout>
makeArrayLayout(RaidLevel level, std::uint32_t drives,
                std::uint32_t stripe_unit_pages,
                const std::vector<std::uint32_t> &failed_drives)
{
    switch (level) {
    case RaidLevel::Raid0:
        SSDRR_ASSERT(failed_drives.empty(),
                     "raid0 tolerates no failed drives");
        return std::make_unique<Raid0Layout>(drives);
    case RaidLevel::Raid5:
        return std::make_unique<Raid5Layout>(drives,
                                             stripe_unit_pages,
                                             failed_drives);
    }
    SSDRR_ASSERT(false, "unknown RaidLevel ",
                 static_cast<int>(level));
}

} // namespace ssdrr::host

#include "host/scenario_spec.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "workload/suites.hh"

namespace ssdrr::host {

namespace {

using sim::json::Value;

[[noreturn]] void
specFail(const std::string &msg)
{
    throw SpecError(msg);
}

std::string
joinKeys(std::initializer_list<const char *> keys)
{
    std::string out;
    for (const char *k : keys) {
        if (!out.empty())
            out += ", ";
        out += k;
    }
    return out;
}

/** Reject members outside the schema, naming path and alternatives. */
void
checkKeys(const Value &obj, const std::string &where,
          std::initializer_list<const char *> allowed)
{
    for (const auto &[key, value] : obj.members()) {
        (void)value;
        bool known = false;
        for (const char *k : allowed)
            if (key == k) {
                known = true;
                break;
            }
        if (!known)
            specFail(where + ": unknown key \"" + key +
                     "\" (allowed: " + joinKeys(allowed) + ")");
    }
}

const Value &
requireObject(const Value &v, const std::string &where)
{
    if (!v.isObject())
        specFail(where + ": expected an object, got " + v.typeName());
    return v;
}

std::string
getString(const Value &obj, const char *key, const std::string &where,
          const std::string &dflt)
{
    const Value *v = obj.find(key);
    if (!v)
        return dflt;
    if (!v->isString())
        specFail(where + "." + key + ": expected a string, got " +
                 v->typeName());
    return v->asString();
}

double
getNumber(const Value &obj, const char *key, const std::string &where,
          double dflt)
{
    const Value *v = obj.find(key);
    if (!v)
        return dflt;
    if (!v->isNumber())
        specFail(where + "." + key + ": expected a number, got " +
                 v->typeName());
    return v->asNumber();
}

bool
getBool(const Value &obj, const char *key, const std::string &where,
        bool dflt)
{
    const Value *v = obj.find(key);
    if (!v)
        return dflt;
    if (!v->isBool())
        specFail(where + "." + key + ": expected true or false, got " +
                 v->typeName());
    return v->asBool();
}

std::uint64_t
getUint(const Value &obj, const char *key, const std::string &where,
        std::uint64_t dflt)
{
    const Value *v = obj.find(key);
    if (!v)
        return dflt;
    if (!v->isNumber())
        specFail(where + "." + key + ": expected a number, got " +
                 v->typeName());
    const double n = v->asNumber();
    if (n < 0.0 || n != std::floor(n))
        specFail(where + "." + key +
                 ": expected a non-negative integer, got " +
                 v->dump(0));
    // JSON numbers are doubles: integers at or beyond 2^53 may
    // already have been rounded by the parser (2^53 + 1 reads back
    // as 2^53), silently changing the value — a seed most likely.
    // Reject instead of running the wrong run.
    if (n >= 9007199254740992.0)
        specFail(where + "." + key + ": " + v->dump(0) +
                 " exceeds 2^53 - 1, the largest integer a JSON "
                 "number carries exactly");
    return static_cast<std::uint64_t>(n);
}

std::uint32_t
getUint32(const Value &obj, const char *key, const std::string &where,
          std::uint32_t dflt)
{
    const std::uint64_t v = getUint(obj, key, where, dflt);
    if (v > std::numeric_limits<std::uint32_t>::max())
        specFail(where + "." + key + ": " + std::to_string(v) +
                 " is out of range (max " +
                 std::to_string(
                     std::numeric_limits<std::uint32_t>::max()) +
                 ")");
    return static_cast<std::uint32_t>(v);
}

std::vector<std::uint32_t>
maskToChannels(std::uint32_t mask)
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t c = 0; c < 32; ++c)
        if (mask & (1u << c))
            out.push_back(c);
    return out;
}

const char *
modeName(InjectionMode m)
{
    return m == InjectionMode::OpenLoop ? "open" : "closed";
}

InjectionMode
parseMode(const std::string &s, const std::string &where)
{
    if (s == "open")
        return InjectionMode::OpenLoop;
    if (s == "closed")
        return InjectionMode::ClosedLoop;
    specFail(where + ".mode: unknown injection mode \"" + s +
             "\" (expected \"open\" or \"closed\")");
}

Value
tenantToJson(const TenantSpec &t)
{
    Value o = Value::object();
    o.set("name", Value(t.name));
    o.set("workload", Value(t.workload));
    o.set("requests", Value(t.requests));
    o.set("mode", Value(modeName(t.mode)));
    o.set("qdLimit", Value(std::uint64_t{t.qdLimit}));
    o.set("weight", Value(std::uint64_t{t.weight}));
    o.set("iops", Value(t.iops));
    o.set("rateIops", Value(t.rateIops));
    o.set("burst", Value(t.burst));
    o.set("sloUs", Value(t.sloUs));
    if (t.channelMask != 0) {
        Value chans = Value::array();
        for (std::uint32_t c : maskToChannels(t.channelMask))
            chans.push(Value(std::uint64_t{c}));
        o.set("channels", std::move(chans));
    }
    o.set("horizonUs", Value(t.horizonUs));
    return o;
}

TenantSpec
tenantFromJson(const Value &v, const std::string &where)
{
    requireObject(v, where);
    checkKeys(v, where,
              {"name", "workload", "requests", "mode", "qdLimit",
               "weight", "iops", "rateIops", "burst", "sloUs",
               "channels", "horizonUs"});
    TenantSpec t;
    t.name = getString(v, "name", where, "");
    t.workload = getString(v, "workload", where, t.workload);
    t.requests = getUint(v, "requests", where, t.requests);
    t.mode = parseMode(getString(v, "mode", where, modeName(t.mode)),
                       where);
    t.qdLimit = getUint32(v, "qdLimit", where, t.qdLimit);
    t.weight = getUint32(v, "weight", where, t.weight);
    t.iops = getNumber(v, "iops", where, t.iops);
    t.rateIops = getNumber(v, "rateIops", where, t.rateIops);
    t.burst = getNumber(v, "burst", where, t.burst);
    t.sloUs = getNumber(v, "sloUs", where, t.sloUs);
    t.horizonUs = getNumber(v, "horizonUs", where, t.horizonUs);
    if (const Value *chans = v.find("channels")) {
        if (!chans->isArray())
            specFail(where + ".channels: expected an array of channel "
                             "indices, got " +
                     chans->typeName());
        std::uint32_t mask = 0;
        std::size_t i = 0;
        for (const Value &c : chans->elements()) {
            const std::string cw =
                where + ".channels[" + std::to_string(i++) + "]";
            if (!c.isNumber() || c.asNumber() < 0.0 ||
                c.asNumber() != std::floor(c.asNumber()) ||
                c.asNumber() >= 32.0)
                specFail(cw + ": expected a channel index, got " +
                         c.dump(0));
            const std::uint32_t idx =
                static_cast<std::uint32_t>(c.asNumber());
            if (mask & (1u << idx))
                specFail(cw + ": channel " + std::to_string(idx) +
                         " listed twice");
            mask |= 1u << idx;
        }
        t.channelMask = mask;
    }
    return t;
}

Value
faultToJson(const FaultSpec &f)
{
    // Like filters: emit only the selected type's knobs, so the
    // round-trip is exact and the files stay readable.
    Value o = Value::object();
    o.set("type", Value(f.type));
    o.set("drive", Value(std::uint64_t{f.drive}));
    o.set("atUs", Value(f.atUs));
    if (f.type == "failStop") {
        if (f.rebuild) {
            o.set("rebuild", Value(f.rebuild));
            o.set("rebuildRows", Value(f.rebuildRows));
        }
    } else {
        o.set("untilUs", Value(f.untilUs));
        if (f.type == "failSlow")
            o.set("multiplier", Value(f.multiplier));
        else if (f.type == "uecc")
            o.set("probability", Value(f.probability));
    }
    return o;
}

FaultSpec
faultFromJson(const Value &v, const std::string &where)
{
    requireObject(v, where);
    FaultSpec f;
    f.type = getString(v, "type", where, "");
    if (f.type == "failStop") {
        checkKeys(v, where,
                  {"type", "drive", "atUs", "rebuild", "rebuildRows"});
        f.rebuild = getBool(v, "rebuild", where, f.rebuild);
        f.rebuildRows = getUint(v, "rebuildRows", where, f.rebuildRows);
    } else if (f.type == "failSlow") {
        checkKeys(v, where,
                  {"type", "drive", "atUs", "untilUs", "multiplier"});
        f.untilUs = getNumber(v, "untilUs", where, f.untilUs);
        f.multiplier = getNumber(v, "multiplier", where, f.multiplier);
    } else if (f.type == "uecc") {
        checkKeys(v, where,
                  {"type", "drive", "atUs", "untilUs", "probability"});
        f.untilUs = getNumber(v, "untilUs", where, f.untilUs);
        f.probability =
            getNumber(v, "probability", where, f.probability);
    } else {
        specFail(where + ".type: unknown fault \"" + f.type +
                 "\" (known: failStop, failSlow, uecc)");
    }
    f.drive = getUint32(v, "drive", where, f.drive);
    f.atUs = getNumber(v, "atUs", where, f.atUs);
    return f;
}

Value
filterToJson(const filter::FilterSpec &f)
{
    // Emit only the selected type's knobs: the other fields are
    // per-type defaults, and fromJson restores them, so the
    // round-trip is exact and the files stay readable.
    Value o = Value::object();
    o.set("type", Value(f.type));
    if (f.type == "cache") {
        o.set("sizeBytes", Value(f.sizeBytes));
        o.set("eviction", Value(f.eviction));
        o.set("admission", Value(f.admission));
        o.set("hitLatencyUs", Value(f.hitLatencyUs));
    } else if (f.type == "readahead") {
        o.set("windowPages", Value(std::uint64_t{f.windowPages}));
        o.set("streams", Value(std::uint64_t{f.streams}));
    } else if (f.type == "split") {
        o.set("maxPages", Value(std::uint64_t{f.maxPages}));
        o.set("coalesceWindowUs", Value(f.coalesceWindowUs));
    } else if (f.type == "delay") {
        o.set("delayUs", Value(f.delayUs));
        o.set("applies", Value(f.applies));
    } else if (f.type == "throttle") {
        o.set("rateIops", Value(f.rateIops));
        o.set("burst", Value(f.burst));
    } else if (f.type == "xfer") {
        o.set("usPerKb", Value(f.usPerKb));
    }
    return o;
}

filter::FilterSpec
filterFromJson(const Value &v, const std::string &where)
{
    requireObject(v, where);
    filter::FilterSpec f;
    f.type = getString(v, "type", where, "");
    if (f.type == "cache") {
        checkKeys(v, where,
                  {"type", "sizeBytes", "eviction", "admission",
                   "hitLatencyUs"});
        f.sizeBytes = getUint(v, "sizeBytes", where, f.sizeBytes);
        f.eviction = getString(v, "eviction", where, f.eviction);
        f.admission = getString(v, "admission", where, f.admission);
        f.hitLatencyUs =
            getNumber(v, "hitLatencyUs", where, f.hitLatencyUs);
    } else if (f.type == "readahead") {
        checkKeys(v, where, {"type", "windowPages", "streams"});
        f.windowPages =
            getUint32(v, "windowPages", where, f.windowPages);
        f.streams = getUint32(v, "streams", where, f.streams);
    } else if (f.type == "split") {
        checkKeys(v, where, {"type", "maxPages", "coalesceWindowUs"});
        f.maxPages = getUint32(v, "maxPages", where, f.maxPages);
        f.coalesceWindowUs = getNumber(v, "coalesceWindowUs", where,
                                       f.coalesceWindowUs);
    } else if (f.type == "delay") {
        checkKeys(v, where, {"type", "delayUs", "applies"});
        f.delayUs = getNumber(v, "delayUs", where, f.delayUs);
        f.applies = getString(v, "applies", where, f.applies);
    } else if (f.type == "throttle") {
        checkKeys(v, where, {"type", "rateIops", "burst"});
        f.rateIops = getNumber(v, "rateIops", where, f.rateIops);
        f.burst = getNumber(v, "burst", where, f.burst);
    } else if (f.type == "xfer") {
        checkKeys(v, where, {"type", "usPerKb"});
        f.usPerKb = getNumber(v, "usPerKb", where, f.usPerKb);
    } else {
        specFail(where + ".type: unknown filter \"" + f.type +
                 "\" (known: cache, readahead, split, delay, "
                 "throttle, xfer)");
    }
    return f;
}

Value
fabricToJson(const fabric::TopologySpec &f)
{
    Value o = Value::object();
    Value nodes = Value::array();
    for (const fabric::NodeSpec &n : f.nodes) {
        Value nv = Value::object();
        nv.set("name", Value(n.name));
        nv.set("kind", Value(n.kind));
        nodes.push(std::move(nv));
    }
    o.set("nodes", std::move(nodes));
    Value links = Value::array();
    for (const fabric::LinkSpec &l : f.links) {
        Value lv = Value::object();
        lv.set("from", Value(l.from));
        lv.set("to", Value(l.to));
        lv.set("latencyUs", Value(l.latencyUs));
        lv.set("usPerKb", Value(l.usPerKb));
        links.push(std::move(lv));
    }
    o.set("links", std::move(links));
    Value drives = Value::array();
    for (const std::string &d : f.drives)
        drives.push(Value(d));
    o.set("drives", std::move(drives));
    return o;
}

fabric::TopologySpec
fabricFromJson(const Value &v)
{
    requireObject(v, "fabric");
    checkKeys(v, "fabric", {"nodes", "links", "drives"});
    fabric::TopologySpec f;
    if (const Value *nodes = v.find("nodes")) {
        if (!nodes->isArray())
            specFail("fabric.nodes: expected an array of node "
                     "objects, got " +
                     std::string(nodes->typeName()));
        std::size_t i = 0;
        for (const Value &n : nodes->elements()) {
            const std::string where =
                "fabric.nodes[" + std::to_string(i++) + "]";
            requireObject(n, where);
            checkKeys(n, where, {"name", "kind"});
            fabric::NodeSpec node;
            node.name = getString(n, "name", where, "");
            node.kind = getString(n, "kind", where, "");
            f.nodes.push_back(std::move(node));
        }
    }
    if (const Value *links = v.find("links")) {
        if (!links->isArray())
            specFail("fabric.links: expected an array of link "
                     "objects, got " +
                     std::string(links->typeName()));
        std::size_t i = 0;
        for (const Value &l : links->elements()) {
            const std::string where =
                "fabric.links[" + std::to_string(i++) + "]";
            requireObject(l, where);
            checkKeys(l, where, {"from", "to", "latencyUs", "usPerKb"});
            fabric::LinkSpec link;
            link.from = getString(l, "from", where, "");
            link.to = getString(l, "to", where, "");
            link.latencyUs =
                getNumber(l, "latencyUs", where, link.latencyUs);
            link.usPerKb = getNumber(l, "usPerKb", where, link.usPerKb);
            f.links.push_back(std::move(link));
        }
    }
    if (const Value *drives = v.find("drives")) {
        if (!drives->isArray())
            specFail("fabric.drives: expected an array of node "
                     "names, got " +
                     std::string(drives->typeName()));
        std::size_t i = 0;
        for (const Value &d : drives->elements()) {
            const std::string where =
                "fabric.drives[" + std::to_string(i++) + "]";
            if (!d.isString())
                specFail(where + ": expected a node name, got " +
                         d.typeName());
            f.drives.push_back(d.asString());
        }
    }
    return f;
}

} // namespace

// --------------------------------------------------------- SsdSpec

ssd::Config
SsdSpec::toConfig() const
{
    ssd::Config cfg;
    if (geometry == "small")
        cfg = ssd::Config::small();
    else if (geometry == "paper")
        cfg = ssd::Config::paper();
    else
        specFail("ssd.geometry: unknown preset \"" + geometry +
                 "\" (expected \"small\" or \"paper\")");
    cfg.basePeKilo = pecKilo;
    cfg.baseRetentionMonths = retentionMonths;
    cfg.temperatureC = temperatureC;
    cfg.refreshThresholdMonths = refreshMonths;
    cfg.suspension = suspension;
    cfg.seed = seed;
    return cfg;
}

bool
SsdSpec::operator==(const SsdSpec &o) const
{
    return geometry == o.geometry && pecKilo == o.pecKilo &&
           retentionMonths == o.retentionMonths &&
           temperatureC == o.temperatureC &&
           refreshMonths == o.refreshMonths &&
           suspension == o.suspension && seed == o.seed;
}

// -------------------------------------------------------- FaultSpec

sim::FaultEvent
FaultSpec::toEvent() const
{
    sim::FaultEvent e;
    if (type == "failStop")
        e.kind = sim::FaultEvent::Kind::FailStop;
    else if (type == "failSlow")
        e.kind = sim::FaultEvent::Kind::FailSlow;
    else if (type == "uecc")
        e.kind = sim::FaultEvent::Kind::Uecc;
    else
        specFail("fault.type: unknown fault \"" + type +
                 "\" (known: failStop, failSlow, uecc)");
    e.drive = drive;
    e.at = sim::usec(atUs);
    e.until = untilUs > 0.0 ? sim::usec(untilUs) : sim::kTickNever;
    e.multiplier = multiplier;
    e.probability = probability;
    e.rebuild = rebuild;
    e.rebuildRows = rebuildRows;
    return e;
}

bool
FaultSpec::operator==(const FaultSpec &o) const
{
    return type == o.type && drive == o.drive && atUs == o.atUs &&
           untilUs == o.untilUs && multiplier == o.multiplier &&
           probability == o.probability && rebuild == o.rebuild &&
           rebuildRows == o.rebuildRows;
}

bool
operator==(const TenantSpec &a, const TenantSpec &b)
{
    return a.name == b.name && a.workload == b.workload &&
           a.requests == b.requests && a.iops == b.iops &&
           a.mode == b.mode && a.qdLimit == b.qdLimit &&
           a.weight == b.weight && a.rateIops == b.rateIops &&
           a.burst == b.burst && a.sloUs == b.sloUs &&
           a.channelMask == b.channelMask &&
           a.horizonUs == b.horizonUs;
}

bool
ScenarioSpec::operator==(const ScenarioSpec &o) const
{
    return name == o.name && ssd == o.ssd &&
           mechanisms == o.mechanisms && drives == o.drives &&
           raidLevel == o.raidLevel &&
           stripeUnitPages == o.stripeUnitPages &&
           failedDrives == o.failedDrives && faults == o.faults &&
           threads == o.threads && queueDepth == o.queueDepth &&
           arbitration == o.arbitration &&
           maxDeviceInflight == o.maxDeviceInflight &&
           timeoutUs == o.timeoutUs && retryMax == o.retryMax &&
           retryBackoffUs == o.retryBackoffUs &&
           hostLinkUs == o.hostLinkUs &&
           transferUsPerKb == o.transferUsPerKb &&
           fabric == o.fabric && filters == o.filters &&
           tenants == o.tenants;
}

// ---------------------------------------------------- serialization

sim::json::Value
ScenarioSpec::toJson() const
{
    Value root = Value::object();
    if (!name.empty())
        root.set("name", Value(name));

    Value sd = Value::object();
    sd.set("geometry", Value(ssd.geometry));
    sd.set("pecKilo", Value(ssd.pecKilo));
    sd.set("retentionMonths", Value(ssd.retentionMonths));
    sd.set("temperatureC", Value(ssd.temperatureC));
    sd.set("refreshMonths", Value(ssd.refreshMonths));
    sd.set("suspension", Value(ssd.suspension));
    sd.set("seed", Value(ssd.seed));
    root.set("ssd", std::move(sd));

    Value mechs = Value::array();
    for (const std::string &m : mechanisms)
        mechs.push(Value(m));
    root.set("mechanisms", std::move(mechs));
    root.set("drives", Value(std::uint64_t{drives}));

    Value av = Value::object();
    av.set("raidLevel", Value(raidLevel));
    av.set("stripeUnitPages", Value(std::uint64_t{stripeUnitPages}));
    Value fv = Value::array();
    for (std::uint32_t d : failedDrives)
        fv.push(Value(std::uint64_t{d}));
    av.set("failedDrives", std::move(fv));
    root.set("array", std::move(av));

    if (!faults.empty()) {
        Value fav = Value::array();
        for (const FaultSpec &f : faults)
            fav.push(faultToJson(f));
        root.set("faults", std::move(fav));
    }

    root.set("threads", Value(std::uint64_t{threads}));

    if (!fabric.empty())
        root.set("fabric", fabricToJson(fabric));

    Value hv = Value::object();
    hv.set("queueDepth", Value(std::uint64_t{queueDepth}));
    hv.set("arbitration", Value(arbitration));
    hv.set("maxDeviceInflight",
           Value(std::uint64_t{maxDeviceInflight}));
    hv.set("timeoutUs", Value(timeoutUs));
    hv.set("retryMax", Value(std::uint64_t{retryMax}));
    hv.set("retryBackoffUs", Value(retryBackoffUs));
    hv.set("hostLinkUs", Value(hostLinkUs));
    hv.set("transferUsPerKb", Value(transferUsPerKb));
    if (!filters.empty()) {
        Value fv = Value::array();
        for (const filter::FilterSpec &f : filters)
            fv.push(filterToJson(f));
        hv.set("filters", std::move(fv));
    }
    root.set("host", std::move(hv));

    Value tv = Value::array();
    for (const TenantSpec &t : tenants)
        tv.push(tenantToJson(t));
    root.set("tenants", std::move(tv));
    return root;
}

std::string
ScenarioSpec::toJsonText() const
{
    return toJson().dump(2);
}

ScenarioSpec
ScenarioSpec::fromJson(const sim::json::Value &v)
{
    requireObject(v, "scenario");
    checkKeys(v, "scenario",
              {"name", "ssd", "mechanisms", "drives", "array",
               "faults", "threads", "fabric", "host", "tenants"});
    ScenarioSpec spec;
    spec.name = getString(v, "name", "scenario", "");

    if (const Value *sd = v.find("ssd")) {
        requireObject(*sd, "ssd");
        checkKeys(*sd, "ssd",
                  {"geometry", "pecKilo", "retentionMonths",
                   "temperatureC", "refreshMonths", "suspension",
                   "seed"});
        spec.ssd.geometry =
            getString(*sd, "geometry", "ssd", spec.ssd.geometry);
        spec.ssd.pecKilo =
            getNumber(*sd, "pecKilo", "ssd", spec.ssd.pecKilo);
        spec.ssd.retentionMonths = getNumber(
            *sd, "retentionMonths", "ssd", spec.ssd.retentionMonths);
        spec.ssd.temperatureC = getNumber(*sd, "temperatureC", "ssd",
                                          spec.ssd.temperatureC);
        spec.ssd.refreshMonths = getNumber(*sd, "refreshMonths", "ssd",
                                           spec.ssd.refreshMonths);
        spec.ssd.suspension =
            getBool(*sd, "suspension", "ssd", spec.ssd.suspension);
        spec.ssd.seed = getUint(*sd, "seed", "ssd", spec.ssd.seed);
    }

    if (const Value *mechs = v.find("mechanisms")) {
        if (!mechs->isArray())
            specFail("mechanisms: expected an array of mechanism "
                     "names, got " +
                     std::string(mechs->typeName()));
        spec.mechanisms.clear();
        std::size_t i = 0;
        for (const Value &m : mechs->elements()) {
            const std::string mw =
                "mechanisms[" + std::to_string(i++) + "]";
            if (!m.isString())
                specFail(mw + ": expected a mechanism name, got " +
                         m.typeName());
            spec.mechanisms.push_back(m.asString());
        }
    }

    spec.drives = getUint32(v, "drives", "scenario", spec.drives);

    if (const Value *av = v.find("array")) {
        requireObject(*av, "array");
        checkKeys(*av, "array",
                  {"raidLevel", "stripeUnitPages", "failedDrives"});
        spec.raidLevel =
            getString(*av, "raidLevel", "array", spec.raidLevel);
        spec.stripeUnitPages = getUint32(*av, "stripeUnitPages",
                                         "array",
                                         spec.stripeUnitPages);
        if (const Value *fv = av->find("failedDrives")) {
            if (!fv->isArray())
                specFail("array.failedDrives: expected an array of "
                         "drive indices, got " +
                         std::string(fv->typeName()));
            spec.failedDrives.clear();
            std::size_t i = 0;
            for (const Value &f : fv->elements()) {
                const std::string fw = "array.failedDrives[" +
                                       std::to_string(i++) + "]";
                if (!f.isNumber() || f.asNumber() < 0.0 ||
                    f.asNumber() != std::floor(f.asNumber()) ||
                    f.asNumber() >= 4294967296.0)
                    specFail(fw + ": expected a drive index, got " +
                             f.dump(0));
                spec.failedDrives.push_back(
                    static_cast<std::uint32_t>(f.asNumber()));
            }
        }
    }

    if (const Value *fav = v.find("faults")) {
        if (!fav->isArray())
            specFail("faults: expected an array of fault objects, "
                     "got " +
                     std::string(fav->typeName()));
        std::size_t i = 0;
        for (const Value &f : fav->elements())
            spec.faults.push_back(faultFromJson(
                f, "faults[" + std::to_string(i++) + "]"));
    }

    spec.threads = getUint32(v, "threads", "scenario", spec.threads);

    if (const Value *fb = v.find("fabric"))
        spec.fabric = fabricFromJson(*fb);

    if (const Value *hv = v.find("host")) {
        requireObject(*hv, "host");
        checkKeys(*hv, "host",
                  {"queueDepth", "arbitration", "maxDeviceInflight",
                   "timeoutUs", "retryMax", "retryBackoffUs",
                   "hostLinkUs", "transferUsPerKb", "filters"});
        spec.queueDepth =
            getUint32(*hv, "queueDepth", "host", spec.queueDepth);
        spec.arbitration =
            getString(*hv, "arbitration", "host", spec.arbitration);
        spec.maxDeviceInflight = getUint32(
            *hv, "maxDeviceInflight", "host", spec.maxDeviceInflight);
        spec.timeoutUs =
            getNumber(*hv, "timeoutUs", "host", spec.timeoutUs);
        spec.retryMax =
            getUint32(*hv, "retryMax", "host", spec.retryMax);
        spec.retryBackoffUs = getNumber(*hv, "retryBackoffUs", "host",
                                        spec.retryBackoffUs);
        spec.hostLinkUs =
            getNumber(*hv, "hostLinkUs", "host", spec.hostLinkUs);
        spec.transferUsPerKb = getNumber(*hv, "transferUsPerKb",
                                         "host",
                                         spec.transferUsPerKb);
        if (const Value *fv = hv->find("filters")) {
            if (!fv->isArray())
                specFail("host.filters: expected an array of filter "
                         "objects, got " +
                         std::string(fv->typeName()));
            std::size_t i = 0;
            for (const Value &f : fv->elements())
                spec.filters.push_back(filterFromJson(
                    f,
                    "host.filters[" + std::to_string(i++) + "]"));
        }
    }

    if (const Value *tv = v.find("tenants")) {
        if (!tv->isArray())
            specFail("tenants: expected an array of tenant objects, "
                     "got " +
                     std::string(tv->typeName()));
        spec.tenants.clear();
        std::size_t i = 0;
        for (const Value &t : tv->elements())
            spec.tenants.push_back(tenantFromJson(
                t, "tenants[" + std::to_string(i++) + "]"));
    }
    return spec;
}

ScenarioSpec
ScenarioSpec::fromJsonText(const std::string &text)
{
    std::string err;
    const Value v = sim::json::parse(text, &err);
    if (!err.empty())
        specFail("invalid JSON: " + err);
    ScenarioSpec spec = fromJson(v);
    spec.validate();
    return spec;
}

ScenarioSpec
ScenarioSpec::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        specFail("cannot open scenario file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return fromJsonText(buf.str());
    } catch (const SpecError &e) {
        specFail(path + ": " + e.what());
    }
}

void
ScenarioSpec::saveFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        specFail("cannot write scenario file '" + path + "'");
    out << toJsonText();
    if (!out)
        specFail("short write to scenario file '" + path + "'");
}

// ------------------------------------------------------- validation

void
ScenarioSpec::validate() const
{
    const ssd::Config cfg = ssd.toConfig(); // checks the preset
    if (ssd.pecKilo < 0.0)
        specFail("ssd.pecKilo: must be >= 0");
    if (ssd.retentionMonths < 0.0)
        specFail("ssd.retentionMonths: must be >= 0");
    if (ssd.refreshMonths < 0.0)
        specFail("ssd.refreshMonths: must be >= 0");
    if (ssd.temperatureC < -40.0 || ssd.temperatureC > 125.0)
        specFail("ssd.temperatureC: " +
                 std::to_string(ssd.temperatureC) +
                 " is outside the operating range [-40, 125]");

    if (mechanisms.empty())
        specFail("mechanisms: must name at least one mechanism");
    for (std::size_t i = 0; i < mechanisms.size(); ++i) {
        if (!core::tryParseMechanism(mechanisms[i], nullptr)) {
            std::string known;
            for (core::Mechanism m : core::allMechanisms()) {
                if (!known.empty())
                    known += ", ";
                known += core::name(m);
            }
            specFail("mechanisms[" + std::to_string(i) +
                     "]: unknown mechanism \"" + mechanisms[i] +
                     "\" (known: " + known + ")");
        }
    }

    if (drives < 1)
        specFail("drives: must be >= 1");

    RaidLevel raid;
    if (!tryParseRaidLevel(raidLevel, &raid))
        specFail("array.raidLevel: unknown level \"" + raidLevel +
                 "\" (expected \"raid0\" or \"raid5\")");
    if (stripeUnitPages < 1)
        specFail("array.stripeUnitPages: must be >= 1");
    if (raid == RaidLevel::Raid5) {
        if (drives < 3)
            specFail("array.raidLevel: \"raid5\" needs drives >= 3 "
                     "(one rotating parity unit per stripe row), got "
                     "drives = " +
                     std::to_string(drives));
        if (std::uint64_t{stripeUnitPages} > cfg.logicalPages())
            specFail("array.stripeUnitPages: " +
                     std::to_string(stripeUnitPages) +
                     " exceeds the " +
                     std::to_string(cfg.logicalPages()) +
                     " logical pages of one \"" + ssd.geometry +
                     "\" drive, leaving no full stripe row");
    }
    const std::uint32_t tolerance =
        raid == RaidLevel::Raid5 ? 1u : 0u;
    for (std::size_t i = 0; i < failedDrives.size(); ++i) {
        const std::string fw =
            "array.failedDrives[" + std::to_string(i) + "]";
        if (failedDrives[i] >= drives)
            specFail(fw + ": drive " +
                     std::to_string(failedDrives[i]) +
                     " is out of range (the array has " +
                     std::to_string(drives) + " drives)");
        for (std::size_t j = 0; j < i; ++j)
            if (failedDrives[j] == failedDrives[i])
                specFail(fw + ": drive " +
                         std::to_string(failedDrives[i]) +
                         " listed twice");
    }
    if (failedDrives.size() > tolerance)
        specFail("array.failedDrives: " +
                 std::to_string(failedDrives.size()) +
                 " failed drives exceed what \"" + raidLevel +
                 "\" can serve through (" +
                 (raid == RaidLevel::Raid5
                      ? "one failure; its data is reconstructed "
                        "from the surviving stripe mates"
                      : "none; raid0 has no redundancy") +
                 ")");

    bool any_fail_stop = false;
    bool any_rebuild = false;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const FaultSpec &f = faults[i];
        const std::string w = "faults[" + std::to_string(i) + "]";
        if (f.type != "failStop" && f.type != "failSlow" &&
            f.type != "uecc")
            specFail(w + ".type: unknown fault \"" + f.type +
                     "\" (known: failStop, failSlow, uecc)");
        if (f.drive >= drives)
            specFail(w + ".drive: drive " + std::to_string(f.drive) +
                     " is out of range (the array has " +
                     std::to_string(drives) + " drives)");
        for (std::uint32_t dead : failedDrives)
            if (f.drive == dead)
                specFail(w + ".drive: drive " +
                         std::to_string(f.drive) +
                         " is already listed in array.failedDrives "
                         "(it failed before the run; a fault cannot "
                         "hit it again)");
        if (!(f.atUs >= 0.0) || f.atUs > 1e9)
            specFail(w + ".atUs: must be a start time in [0, 1e9] "
                         "microseconds");
        if (f.type == "failStop") {
            if (f.untilUs != 0.0)
                specFail(w + ".untilUs: a failStop fault is "
                             "permanent; drop untilUs");
            for (std::size_t j = 0; j < i; ++j)
                if (faults[j].type == "failStop" &&
                    faults[j].drive == f.drive)
                    specFail(w + ".drive: drive " +
                             std::to_string(f.drive) +
                             " fail-stops twice on the timeline");
            any_fail_stop = true;
        } else {
            if (f.untilUs != 0.0 && f.untilUs <= f.atUs)
                specFail(w + ".untilUs: the window must end after "
                             "atUs (or be 0, open-ended)");
            if (f.untilUs > 1e9)
                specFail(w + ".untilUs: must be a window end in "
                             "[0, 1e9] microseconds");
        }
        if (f.type == "failSlow" &&
            (!(f.multiplier > 1.0) || f.multiplier > 1e6))
            specFail(w + ".multiplier: must be a device-latency "
                         "stretch in (1, 1e6]");
        if (f.type == "uecc" &&
            (!(f.probability > 0.0) || f.probability > 1.0))
            specFail(w + ".probability: must be a per-read UECC "
                         "probability in (0, 1]");
        if (f.rebuild) {
            if (f.type != "failStop")
                specFail(w + ".rebuild: only a failStop fault can "
                             "start a rebuild-to-spare");
            if (raid != RaidLevel::Raid5)
                specFail(w + ".rebuild: rebuild-to-spare "
                             "reconstructs from RAID-5 stripe mates; "
                             "set array.raidLevel \"raid5\"");
            if (any_rebuild)
                specFail(w + ".rebuild: the run models one rebuild; "
                             "a second fault already set it");
            any_rebuild = true;
        } else if (f.rebuildRows != 0) {
            specFail(w + ".rebuildRows: set without rebuild (it "
                         "bounds the rebuild region)");
        }
    }
    if (any_fail_stop && timeoutUs <= 0.0)
        specFail("host.timeoutUs: a failStop fault needs a "
                 "per-subrequest deadline > 0 — the host only "
                 "detects a silent drive through timeouts");

    if (!(hostLinkUs >= 0.0) || hostLinkUs > 1e9)
        specFail("host.hostLinkUs: must be a turnaround in [0, 1e9] "
                 "microseconds");
    if (hostLinkUs > 0.0 && sim::usec(hostLinkUs) < 1)
        specFail("host.hostLinkUs: " + std::to_string(hostLinkUs) +
                 " rounds to zero simulator ticks (the tick is 1 ns), "
                 "which would silently fall back to the legacy "
                 "shared-queue engine; use 0 explicitly, or at least "
                 "0.001");
    // threads == 0 is "use hardware_concurrency" sugar, resolved at
    // toConfig() time; like any multi-worker request it needs an
    // engine with synchronization windows to parallelize over.
    if (threads != 1 && hostLinkUs <= 0.0 && fabric.empty())
        specFail("threads: " +
                 (threads == 0
                      ? std::string("0 (hardware concurrency)")
                      : std::to_string(threads)) +
                 " worker threads need host.hostLinkUs > 0 or a "
                 "fabric — the parallel engine synchronizes drives "
                 "at cross-domain-latency windows, and an "
                 "instantaneous link leaves no window to run "
                 "concurrently in; set host.hostLinkUs (a few "
                 "microseconds of NVMe doorbell/interrupt latency), "
                 "declare a fabric, or drop threads");
    if (!fabric.empty()) {
        if (hostLinkUs > 0.0)
            specFail("host.hostLinkUs: set alongside a fabric — the "
                     "fabric's links replace the flat host link; "
                     "drop hostLinkUs (its role is played by the "
                     "host-adjacent link's latencyUs)");
        try {
            fabric.validate(drives);
        } catch (const fabric::TopologyError &e) {
            specFail(e.what());
        }
    }
    if (!(transferUsPerKb >= 0.0) || transferUsPerKb > 1e9)
        specFail("host.transferUsPerKb: must be a per-KiB transfer "
                 "cost in [0, 1e9] microseconds");
    for (std::size_t i = 0; i < filters.size(); ++i) {
        const filter::FilterSpec &f = filters[i];
        const std::string w =
            "host.filters[" + std::to_string(i) + "]";
        if (f.type == "cache") {
            if (f.sizeBytes < cfg.pageBytes)
                specFail(w + ".sizeBytes: " +
                         std::to_string(f.sizeBytes) +
                         " holds no whole page (the \"" +
                         ssd.geometry + "\" geometry's page is " +
                         std::to_string(cfg.pageBytes) + " bytes)");
            if (f.sizeBytes > (1ull << 40))
                specFail(w + ".sizeBytes: " +
                         std::to_string(f.sizeBytes) +
                         " exceeds 1 TiB of host DRAM");
            if (f.eviction != "lru" && f.eviction != "fifo")
                specFail(w + ".eviction: unknown policy \"" +
                         f.eviction +
                         "\" (expected \"lru\" or \"fifo\")");
            if (f.admission != "reads" && f.admission != "all")
                specFail(w + ".admission: unknown policy \"" +
                         f.admission +
                         "\" (expected \"reads\" or \"all\")");
            if (!(f.hitLatencyUs >= 0.0) || f.hitLatencyUs > 1e6)
                specFail(w + ".hitLatencyUs: must be a DRAM service "
                             "latency in [0, 1e6] microseconds");
        } else if (f.type == "readahead") {
            if (f.windowPages < 1 || f.windowPages > 1024)
                specFail(w + ".windowPages: must be in [1, 1024]");
            if (f.streams < 1 || f.streams > 1024)
                specFail(w + ".streams: must be in [1, 1024]");
        } else if (f.type == "split") {
            if (f.maxPages < 1 || f.maxPages > 4096)
                specFail(w + ".maxPages: must be in [1, 4096]");
            if (!(f.coalesceWindowUs >= 0.0) ||
                f.coalesceWindowUs > 1e9)
                specFail(w + ".coalesceWindowUs: must be a hold "
                             "window in [0, 1e9] microseconds");
        } else if (f.type == "delay") {
            if (!(f.delayUs >= 0.0) || f.delayUs > 1e9)
                specFail(w + ".delayUs: must be an added latency in "
                             "[0, 1e9] microseconds");
            if (f.applies != "all" && f.applies != "reads" &&
                f.applies != "writes")
                specFail(w + ".applies: unknown selector \"" +
                         f.applies +
                         "\" (expected \"all\", \"reads\", or "
                         "\"writes\")");
        } else if (f.type == "throttle") {
            if (!(f.rateIops > 0.0) || f.rateIops > 1e12)
                specFail(w + ".rateIops: must be a refill rate in "
                             "(0, 1e12] commands/second");
            if (!(f.burst >= 0.0))
                specFail(w + ".burst: must be >= 0");
        } else if (f.type == "xfer") {
            if (!(f.usPerKb > 0.0) || f.usPerKb > 1e9)
                specFail(w + ".usPerKb: must be a per-KiB transfer "
                             "cost in (0, 1e9] microseconds");
        } else {
            specFail(w + ".type: unknown filter \"" + f.type +
                     "\" (known: cache, readahead, split, delay, "
                     "throttle, xfer)");
        }
    }
    if (!(timeoutUs >= 0.0) || timeoutUs > 1e9)
        specFail("host.timeoutUs: must be a deadline in [0, 1e9] "
                 "microseconds (0 = no deadline tracking)");
    if (retryMax > 16)
        specFail("host.retryMax: " + std::to_string(retryMax) +
                 " reissues of one subrequest is runaway; the cap "
                 "is 16");
    if (!(retryBackoffUs >= 0.0) || retryBackoffUs > 1e9)
        specFail("host.retryBackoffUs: must be a backoff in "
                 "[0, 1e9] microseconds");
    if (queueDepth < 1)
        specFail("host.queueDepth: must be >= 1");
    Arbitration arb;
    if (!tryParseArbitration(arbitration, &arb))
        specFail("host.arbitration: unknown policy \"" + arbitration +
                 "\" (expected \"rr\", \"wrr\", or \"slo\")");

    if (tenants.empty())
        specFail("tenants: a scenario needs at least one tenant");

    const std::uint32_t all_channels = (1u << cfg.channels) - 1;
    // Layout-aware capacity (RAID-5 gives one drive to parity), the
    // same math SsdArray derives from its layout.
    const std::uint64_t slice =
        arrayLogicalPages(raid, drives, stripeUnitPages,
                          cfg.logicalPages()) /
        tenants.size();
    bool any_slo = false;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantSpec &t = tenants[i];
        const std::string w = "tenants[" + std::to_string(i) + "]";
        if (!looksLikeTracePath(t.workload) &&
            !workload::tryFindWorkload(t.workload, nullptr))
            specFail(w + ".workload: unknown workload \"" +
                     t.workload +
                     "\" (run ssdrr_sim --list-workloads for the "
                     "Table-2 suite, or name a .csv trace path)");
        if (t.requests < 1)
            specFail(w + ".requests: must be >= 1");
        if (t.qdLimit < 1)
            specFail(w + ".qdLimit: must be >= 1");
        if (t.mode == InjectionMode::ClosedLoop &&
            t.qdLimit > queueDepth)
            specFail(w + ".qdLimit: " + std::to_string(t.qdLimit) +
                     " exceeds host.queueDepth " +
                     std::to_string(queueDepth) +
                     " (a closed-loop window cannot outgrow its "
                     "queue pair)");
        if (t.weight < 1)
            specFail(w + ".weight: must be >= 1");
        if (t.iops < 0.0)
            specFail(w + ".iops: must be >= 0");
        if (t.iops > 0.0 && t.mode == InjectionMode::ClosedLoop)
            specFail(w + ".iops: set on a closed-loop tenant, but "
                         "closed-loop injection is completion-driven "
                         "and ignores arrival rates; set mode to "
                         "\"open\" or drop iops");
        if (t.rateIops < 0.0)
            specFail(w + ".rateIops: must be >= 0");
        if (t.burst < 0.0)
            specFail(w + ".burst: must be >= 0");
        if (t.burst > 0.0 && t.rateIops <= 0.0)
            specFail(w + ".burst: set without rateIops (a token "
                         "bucket needs a refill rate)");
        if (t.sloUs < 0.0)
            specFail(w + ".sloUs: must be >= 0");
        if (t.sloUs > 0.0 && arb != Arbitration::SloDeadline)
            specFail(w + ".sloUs: set but host.arbitration is \"" +
                     arbitration +
                     "\"; SLO deadlines are only honoured by the "
                     "\"slo\" policy");
        if (t.sloUs > 0.0)
            any_slo = true;
        if (t.horizonUs < 0.0)
            specFail(w + ".horizonUs: must be >= 0");
        if (t.horizonUs > 0.0 && t.mode == InjectionMode::ClosedLoop)
            specFail(w + ".horizonUs: a time horizon needs mode "
                         "\"open\" (closed-loop replays its trace "
                         "once)");
        if (t.channelMask != 0) {
            if (t.channelMask & ~all_channels)
                specFail(w + ".channels: names channel " +
                         std::to_string(
                             maskToChannels(t.channelMask & ~all_channels)
                                 .front()) +
                         " but the \"" + ssd.geometry +
                         "\" geometry has " +
                         std::to_string(cfg.channels) + " channels");
            // A mask naming every channel is no restriction;
            // runScenario normalizes it away, so skip the
            // affinity-only constraints for it too.
            if ((t.channelMask & all_channels) != all_channels) {
                if (raid != RaidLevel::Raid0)
                    specFail(w + ".channels: channel affinity "
                                 "assumes the raid0 striped layout "
                                 "(the channel lattice does not "
                                 "survive parity rotation); drop "
                                 "array.raidLevel \"" +
                             raidLevel + "\" or the mask");
                if (ssd.refreshMonths > 0.0)
                    specFail(w + ".channels: channel affinity cannot "
                                 "be combined with ssd.refreshMonths "
                                 "> 0 (read-reclaim rewrites do not "
                                 "honour the mask)");
                if (channelLatticePages(i * slice, slice, drives,
                                        cfg.layout(),
                                        t.channelMask) == 0)
                    specFail(w + ".channels: the mask leaves no "
                                 "preconditioned pages in the "
                                 "tenant's LPN slice");
            }
        }
    }
    if (arb == Arbitration::SloDeadline && !any_slo)
        specFail("host.arbitration: \"slo\" needs at least one tenant "
                 "with sloUs > 0 (otherwise it degenerates to rr)");
}

// -------------------------------------------------------- execution

ScenarioConfig
ScenarioSpec::toConfig(core::Mechanism mech, TraceCache *cache) const
{
    ScenarioConfig sc;
    sc.ssd = ssd.toConfig();
    sc.mech = mech;
    sc.drives = drives;
    sc.raid = parseRaidLevel(raidLevel);
    sc.stripeUnitPages = stripeUnitPages;
    sc.failedDrives = failedDrives;
    for (const FaultSpec &f : faults)
        sc.faults.push_back(f.toEvent());
    sc.timeoutUs = timeoutUs;
    sc.retryMax = retryMax;
    sc.retryBackoffUs = retryBackoffUs;
    sc.host.queueDepth = queueDepth;
    sc.host.arbitration = parseArbitration(arbitration);
    sc.host.maxDeviceInflight = maxDeviceInflight;
    sc.host.filters = filters;
    sc.hostLinkUs = hostLinkUs;
    sc.transferUsPerKb = transferUsPerKb;
    // threads: 0 resolves to the machine's core count here — the
    // *spec* keeps the literal 0 (so it round-trips through
    // --dump-scenario and stays machine-independent on disk); only
    // the executable config is machine-specific. Results are
    // bit-identical either way.
    sc.threads = threads != 0
                     ? threads
                     : std::max(1u, std::thread::hardware_concurrency());
    sc.fabric = fabric;
    sc.tenants = tenants;
    sc.traceCache = cache;
    return sc;
}

ScenarioResult
runScenario(const ScenarioSpec &spec, core::Mechanism mech,
            TraceCache *cache)
{
    spec.validate();
    return runScenario(spec.toConfig(mech, cache));
}

// ---------------------------------------------------------- builder

ScenarioBuilder::ScenarioBuilder()
{
    spec_.mechanisms.clear(); // build() defaults an empty sweep
}

TenantSpec &
ScenarioBuilder::current()
{
    if (spec_.tenants.empty())
        specFail("ScenarioBuilder: add a tenant() before per-tenant "
                 "setters");
    return spec_.tenants.back();
}

ScenarioBuilder &
ScenarioBuilder::name(std::string label)
{
    spec_.name = std::move(label);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::geometry(std::string preset)
{
    spec_.ssd.geometry = std::move(preset);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::pec(double kilo)
{
    spec_.ssd.pecKilo = kilo;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::retention(double months)
{
    spec_.ssd.retentionMonths = months;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::temperature(double celsius)
{
    spec_.ssd.temperatureC = celsius;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::refresh(double months)
{
    spec_.ssd.refreshMonths = months;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::suspension(bool on)
{
    spec_.ssd.suspension = on;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::seed(std::uint64_t s)
{
    spec_.ssd.seed = s;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::mechanism(const std::string &name)
{
    spec_.mechanisms.push_back(name);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::mechanism(core::Mechanism m)
{
    return mechanism(std::string(core::name(m)));
}

ScenarioBuilder &
ScenarioBuilder::drives(std::uint32_t n)
{
    spec_.drives = n;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::raid(const std::string &level)
{
    spec_.raidLevel = level;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::stripeUnitPages(std::uint32_t pages)
{
    spec_.stripeUnitPages = pages;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::failedDrives(const std::vector<std::uint32_t> &d)
{
    spec_.failedDrives = d;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::threads(std::uint32_t n)
{
    spec_.threads = n;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::fabric(const fabric::TopologySpec &topo)
{
    spec_.fabric = topo;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::fabricPreset(const std::string &preset)
{
    try {
        spec_.fabric = fabric::makePreset(preset, spec_.drives);
    } catch (const fabric::TopologyError &e) {
        specFail(e.what());
    }
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::fault(const FaultSpec &spec)
{
    spec_.faults.push_back(spec);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::failStop(std::uint32_t drive, double at_us,
                          bool rebuild, std::uint64_t rebuild_rows)
{
    FaultSpec f;
    f.type = "failStop";
    f.drive = drive;
    f.atUs = at_us;
    f.rebuild = rebuild;
    f.rebuildRows = rebuild ? rebuild_rows : 0;
    return fault(f);
}

ScenarioBuilder &
ScenarioBuilder::failSlow(std::uint32_t drive, double at_us,
                          double until_us, double multiplier)
{
    FaultSpec f;
    f.type = "failSlow";
    f.drive = drive;
    f.atUs = at_us;
    f.untilUs = until_us;
    f.multiplier = multiplier;
    return fault(f);
}

ScenarioBuilder &
ScenarioBuilder::ueccFault(std::uint32_t drive, double at_us,
                           double until_us, double probability)
{
    FaultSpec f;
    f.type = "uecc";
    f.drive = drive;
    f.atUs = at_us;
    f.untilUs = until_us;
    f.probability = probability;
    return fault(f);
}

ScenarioBuilder &
ScenarioBuilder::timeoutUs(double us)
{
    spec_.timeoutUs = us;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::retryMax(std::uint32_t attempts)
{
    spec_.retryMax = attempts;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::retryBackoffUs(double us)
{
    spec_.retryBackoffUs = us;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::hostLinkUs(double us)
{
    spec_.hostLinkUs = us;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::transferUsPerKb(double us)
{
    spec_.transferUsPerKb = us;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::queueDepth(std::uint32_t d)
{
    spec_.queueDepth = d;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::arbitration(const std::string &policy)
{
    spec_.arbitration = policy;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::arbitration(Arbitration policy)
{
    return arbitration(
        std::string(::ssdrr::host::name(policy)));
}

ScenarioBuilder &
ScenarioBuilder::maxDeviceInflight(std::uint32_t n)
{
    spec_.maxDeviceInflight = n;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::addFilter(const filter::FilterSpec &spec)
{
    spec_.filters.push_back(spec);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::dramCache(std::uint64_t sizeBytes)
{
    filter::FilterSpec f;
    f.type = "cache";
    f.sizeBytes = sizeBytes;
    return addFilter(f);
}

ScenarioBuilder &
ScenarioBuilder::readahead(std::uint32_t windowPages)
{
    filter::FilterSpec f;
    f.type = "readahead";
    f.windowPages = windowPages;
    return addFilter(f);
}

ScenarioBuilder &
ScenarioBuilder::tenant(std::string name, std::string workload,
                        std::uint64_t requests)
{
    TenantSpec t;
    t.name = std::move(name);
    t.workload = std::move(workload);
    t.requests = requests;
    spec_.tenants.push_back(std::move(t));
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::tenant(const TenantSpec &spec)
{
    spec_.tenants.push_back(spec);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::mode(InjectionMode m)
{
    current().mode = m;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::qdLimit(std::uint32_t qd)
{
    current().qdLimit = qd;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::weight(std::uint32_t w)
{
    current().weight = w;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::iops(double rate)
{
    current().iops = rate;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::rateIops(double rate)
{
    current().rateIops = rate;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::burst(double commands)
{
    current().burst = commands;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::sloUs(double us)
{
    current().sloUs = us;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::channels(const std::vector<std::uint32_t> &chans)
{
    std::uint32_t mask = 0;
    for (std::uint32_t c : chans) {
        if (c >= 32)
            specFail("ScenarioBuilder::channels: channel index " +
                     std::to_string(c) + " out of range");
        mask |= 1u << c;
    }
    current().channelMask = mask;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::horizonUs(double us)
{
    current().horizonUs = us;
    return *this;
}

ScenarioSpec
ScenarioBuilder::build() const
{
    ScenarioSpec spec = spec_;
    if (spec.mechanisms.empty())
        spec.mechanisms = {"Baseline"};
    spec.validate();
    return spec;
}

} // namespace ssdrr::host

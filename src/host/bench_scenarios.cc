#include "host/bench_scenarios.hh"

#include <string>

namespace ssdrr::host {

ScenarioSpec
buildBenchScenario(std::uint64_t requests_per_tenant, Arbitration arb)
{
    ScenarioBuilder b;
    b.name("bench-tail")
        .pec(1.0)
        .retention(6.0)
        .drives(2)
        .queueDepth(16)
        .arbitration(arb);
    for (const char *m : {"Baseline", "PR2", "AR2", "PnAR2", "NoRR"})
        b.mechanism(m);
    for (std::uint32_t t = 0; t < 4; ++t)
        b.tenant("tenant" + std::to_string(t), "usr_1",
                 requests_per_tenant)
            .qdLimit(16)
            .weight(arb == Arbitration::WeightedRoundRobin ? t + 1
                                                           : 1);
    return b.build();
}

} // namespace ssdrr::host

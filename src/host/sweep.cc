#include "host/sweep.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/mechanism.hh"
#include "fabric/topology.hh"
#include "sim/logging.hh"

namespace ssdrr::host {

using sim::json::Value;

namespace {

[[noreturn]] void
sweepFail(const std::string &msg)
{
    throw SpecError(msg);
}

/** find() that lets us descend into a document we own mutably. */
Value *
mutFind(Value &obj, const std::string &key)
{
    return const_cast<Value *>(
        static_cast<const Value &>(obj).find(key));
}

/** One "name[i][j]" piece of a dotted axis path. */
struct PathSeg {
    std::string key;
    std::vector<std::size_t> indices;
};

std::vector<PathSeg>
parsePath(const std::string &path)
{
    std::vector<PathSeg> segs;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        std::size_t dot = path.find('.', pos);
        if (dot == std::string::npos)
            dot = path.size();
        std::string token = path.substr(pos, dot - pos);
        PathSeg seg;
        std::size_t br = token.find('[');
        seg.key = token.substr(0, br);
        if (seg.key.empty())
            sweepFail("axis path \"" + path +
                      "\": empty key segment");
        while (br != std::string::npos) {
            const std::size_t close = token.find(']', br);
            const std::string digits =
                close == std::string::npos
                    ? std::string()
                    : token.substr(br + 1, close - br - 1);
            if (digits.empty() ||
                digits.find_first_not_of("0123456789") !=
                    std::string::npos)
                sweepFail("axis path \"" + path +
                          "\": malformed array index in \"" + token +
                          "\"");
            seg.indices.push_back(std::stoul(digits));
            br = token.find('[', close);
            if (br != std::string::npos && br != close + 1)
                sweepFail("axis path \"" + path +
                          "\": malformed array index in \"" + token +
                          "\"");
        }
        segs.push_back(std::move(seg));
        pos = dot + 1;
    }
    return segs;
}

/**
 * Assign @p val at @p path inside @p root. Intermediate objects are
 * created on demand (so an axis can introduce an optional section),
 * but array elements must already exist in the base — a sweep never
 * grows an array implicitly, that is always a typo'd index.
 */
void
setJsonPath(Value &root, const std::string &path, const Value &val)
{
    const std::vector<PathSeg> segs = parsePath(path);
    Value *cur = &root;
    std::string seen;
    for (std::size_t i = 0; i < segs.size(); ++i) {
        const PathSeg &s = segs[i];
        const bool last = i + 1 == segs.size();
        if (!cur->isObject())
            sweepFail("axis path \"" + path + "\": " +
                      (seen.empty() ? "the document" : seen) +
                      " is not an object");
        Value *child = mutFind(*cur, s.key);
        if (last && s.indices.empty()) {
            cur->set(s.key, val);
            return;
        }
        if (!child) {
            if (!s.indices.empty())
                sweepFail("axis path \"" + path + "\": \"" + s.key +
                          "\" does not exist in the base document");
            cur->set(s.key, Value::object());
            child = mutFind(*cur, s.key);
        }
        seen += (seen.empty() ? "" : ".") + s.key;
        for (std::size_t idx : s.indices) {
            if (!child->isArray())
                sweepFail("axis path \"" + path + "\": " + seen +
                          " is not an array");
            if (idx >= child->elements().size())
                sweepFail("axis path \"" + path + "\": index " +
                          std::to_string(idx) + " out of range for " +
                          seen + " (size " +
                          std::to_string(child->elements().size()) +
                          ")");
            child = &const_cast<Value &>(child->elements()[idx]);
            seen += "[" + std::to_string(idx) + "]";
        }
        if (last) {
            *child = val;
            return;
        }
        cur = child;
    }
}

constexpr const char *kMechanismAxis = "mechanism";
constexpr const char *kFabricPresetAxis = "fabric.preset";

/**
 * Apply one axis value to a scenario document. The two sugars cover
 * fields whose spec encoding is not a single scalar; anything else
 * is a literal JSON path. "fabric.preset" is document-invisible (the
 * preset materializes post-parse against the cell's drive count), so
 * here it only type-checks.
 */
void
applyAxisValue(Value &doc, const std::string &path, const Value &val)
{
    if (path == kMechanismAxis) {
        if (!val.isString() ||
            !core::tryParseMechanism(val.asString(), nullptr))
            sweepFail("expected a mechanism name, got " +
                      (val.isString() ? "\"" + val.asString() + "\""
                                      : std::string(val.typeName())));
        Value mechs = Value::array();
        mechs.push(val);
        doc.set("mechanisms", std::move(mechs));
        return;
    }
    if (path == kFabricPresetAxis) {
        if (!val.isString())
            sweepFail("expected a topology preset name, got " +
                      std::string(val.typeName()));
        return;
    }
    setJsonPath(doc, path, val);
}

std::string
valueLabel(const Value &v)
{
    return v.isString() ? v.asString() : v.dump(0);
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
hex16(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
fixed3(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

} // namespace

SweepSpec
SweepSpec::fromJson(const Value &v)
{
    if (!v.isObject())
        sweepFail("sweep: expected an object with \"base\" and "
                  "\"axes\", got " +
                  std::string(v.typeName()));
    for (const auto &[key, val] : v.members()) {
        (void)val;
        if (key != "base" && key != "axes")
            sweepFail("sweep: unknown key \"" + key +
                      "\" (expected base, axes)");
    }
    SweepSpec sweep;
    const Value *base = v.find("base");
    if (!base || !base->isObject())
        sweepFail("base: expected the scenario document object" +
                  (base ? ", got " + std::string(base->typeName())
                        : std::string(" (missing)")));
    sweep.base = *base;

    if (const Value *axes = v.find("axes")) {
        if (!axes->isObject())
            sweepFail("axes: expected an object mapping scenario "
                      "paths to value lists, got " +
                      std::string(axes->typeName()));
        for (const auto &[path, vals] : axes->members()) {
            if (!vals.isArray() || vals.elements().empty())
                sweepFail("axes." + path +
                          ": expected a non-empty array of values" +
                          (vals.isArray()
                               ? std::string(" (it is empty)")
                               : ", got " +
                                     std::string(vals.typeName())));
            SweepAxis axis;
            axis.path = path;
            axis.values = vals.elements();
            sweep.axes.push_back(std::move(axis));
        }
    }

    // Fail fast, naming the defect: the base must be a well-formed
    // scenario on its own, and every axis value must survive a
    // structural parse when applied alone — so a typo'd path (which
    // materializes as an unknown key) or a mistyped value is caught
    // here with "axes.<path>[i]" context instead of deep inside some
    // cell's run. Semantic validation (cross-field constraints) is
    // deferred to materialize(), where the full combination exists.
    try {
        (void)ScenarioSpec::fromJson(sweep.base);
    } catch (const SpecError &e) {
        sweepFail("base: " + std::string(e.what()));
    }
    for (const SweepAxis &axis : sweep.axes) {
        for (std::size_t j = 0; j < axis.values.size(); ++j) {
            try {
                Value doc = sweep.base;
                applyAxisValue(doc, axis.path, axis.values[j]);
                (void)ScenarioSpec::fromJson(doc);
            } catch (const SpecError &e) {
                sweepFail("axes." + axis.path + "[" +
                          std::to_string(j) +
                          "]: " + std::string(e.what()));
            }
        }
    }

    constexpr std::size_t kMaxCells = 100000;
    if (sweep.cells() > kMaxCells)
        sweepFail("sweep expands to " +
                  std::to_string(sweep.cells()) +
                  " cells (limit " + std::to_string(kMaxCells) +
                  ")");
    return sweep;
}

SweepSpec
SweepSpec::fromJsonText(const std::string &text)
{
    std::string err;
    const Value v = sim::json::parse(text, &err);
    if (!err.empty())
        sweepFail("sweep: " + err);
    return fromJson(v);
}

SweepSpec
SweepSpec::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        sweepFail("cannot open sweep file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return fromJsonText(buf.str());
    } catch (const SpecError &e) {
        sweepFail(path + ": " + e.what());
    }
}

std::size_t
SweepSpec::cells() const
{
    std::size_t n = 1;
    for (const SweepAxis &a : axes)
        n *= a.values.size();
    return n;
}

std::vector<std::size_t>
SweepSpec::coordinates(std::size_t cell) const
{
    SSDRR_ASSERT(cell < cells(), "cell ", cell, " out of range");
    std::vector<std::size_t> c(axes.size());
    std::size_t rem = cell;
    for (std::size_t i = axes.size(); i-- > 0;) {
        c[i] = rem % axes[i].values.size();
        rem /= axes[i].values.size();
    }
    return c;
}

std::string
SweepSpec::label(std::size_t cell) const
{
    const std::vector<std::size_t> c = coordinates(cell);
    std::string out;
    for (std::size_t i = 0; i < axes.size(); ++i) {
        if (i)
            out += ' ';
        out += axes[i].path + '=' + valueLabel(axes[i].values[c[i]]);
    }
    return out;
}

ScenarioSpec
SweepSpec::materialize(std::size_t cell) const
{
    const std::vector<std::size_t> c = coordinates(cell);
    try {
        Value doc = base;
        std::string preset;
        for (std::size_t i = 0; i < axes.size(); ++i) {
            const Value &val = axes[i].values[c[i]];
            if (axes[i].path == kFabricPresetAxis)
                preset = val.asString();
            applyAxisValue(doc, axes[i].path, val);
        }
        ScenarioSpec spec = ScenarioSpec::fromJson(doc);
        if (!preset.empty())
            spec.fabric = fabric::makePreset(preset, spec.drives);
        spec.validate();
        return spec;
    } catch (const std::exception &e) {
        // SpecError from the schema/validate layers, TopologyError
        // from a preset: either way the combination is the news.
        sweepFail("cell " + std::to_string(cell) + " (" +
                  label(cell) + "): " + e.what());
    }
}

sim::json::Value
runSweepCell(const SweepSpec &sweep, std::size_t cell,
             TraceCache *cache)
{
    const ScenarioSpec spec = sweep.materialize(cell);
    const std::vector<std::size_t> c = sweep.coordinates(cell);
    Value rows = Value::array();
    for (const std::string &mname : spec.mechanisms) {
        const core::Mechanism mech = core::parseMechanism(mname);
        const ScenarioResult res = runScenario(spec, mech, cache);
        const ssd::RunStats &st = res.array;
        Value row = Value::object();
        row.set("cell", Value(std::uint64_t{cell}));
        row.set("label", Value(sweep.label(cell)));
        Value axv = Value::object();
        for (std::size_t i = 0; i < sweep.axes.size(); ++i)
            axv.set(sweep.axes[i].path, sweep.axes[i].values[c[i]]);
        row.set("axes", std::move(axv));
        row.set("mechanism", Value(mname));
        row.set("status", Value("ok"));
        row.set("reads", Value(st.reads));
        row.set("writes", Value(st.writes));
        row.set("retrySamples", Value(st.retrySamples));
        row.set("avgRetrySteps", Value(st.avgRetrySteps));
        row.set("p50ReadUs", Value(st.p50ReadResponseUs));
        row.set("p99ReadUs", Value(st.p99ReadResponseUs));
        row.set("p999ReadUs", Value(st.p999ReadResponseUs));
        row.set("simulatedMs", Value(st.simulatedMs));
        row.set("executedEvents", Value(st.executedEvents));
        row.set("cacheHits", Value(st.cacheHits));
        row.set("cacheMisses", Value(st.cacheMisses));
        row.set("prefetchIssued", Value(st.prefetchIssued));
        row.set("prefetchUseful", Value(st.prefetchUseful));
        row.set("hostTimeouts", Value(st.hostTimeouts));
        row.set("hostRetries", Value(st.hostRetries));
        row.set("hostFailovers", Value(st.hostFailovers));
        row.set("ueccReads", Value(st.ueccReads));
        row.set("failedRequests", Value(st.failedRequests));
        row.set("degradedReads", Value(st.degradedReads));
        row.set("rebuildReads", Value(st.rebuildReads));
        std::uint64_t fabric_msgs = 0;
        for (const auto &l : st.fabricLinks)
            fabric_msgs += l.messages;
        row.set("fabricMessages", Value(fabric_msgs));
        row.set("avgFabricWaitUs", Value(st.avgFabricWaitUs));
        rows.push(std::move(row));
    }
    return rows;
}

sim::json::Value
sweepErrorRow(const SweepSpec &sweep, std::size_t cell, int exit_code,
              const std::string &message)
{
    const std::vector<std::size_t> c = sweep.coordinates(cell);
    Value row = Value::object();
    row.set("cell", Value(std::uint64_t{cell}));
    row.set("label", Value(sweep.label(cell)));
    Value axv = Value::object();
    for (std::size_t i = 0; i < sweep.axes.size(); ++i)
        axv.set(sweep.axes[i].path, sweep.axes[i].values[c[i]]);
    row.set("axes", std::move(axv));
    row.set("status", Value("error"));
    row.set("exit", Value(static_cast<double>(exit_code)));
    row.set("message", Value(message));
    return row;
}

sim::json::Value
aggregateSweep(const SweepSpec &sweep,
               const std::vector<sim::json::Value> &cell_results)
{
    SSDRR_ASSERT(cell_results.size() == sweep.cells(),
                 "expected one result per cell");
    Value doc = Value::object();
    doc.set("schema", Value("ssdrr-sweep-aggregate-v1"));
    doc.set("cells", Value(std::uint64_t{sweep.cells()}));
    Value axes = Value::object();
    for (const SweepAxis &a : sweep.axes) {
        Value vals = Value::array();
        for (const Value &v : a.values)
            vals.push(v);
        axes.set(a.path, std::move(vals));
    }
    doc.set("axes", std::move(axes));
    Value rows = Value::array();
    for (std::size_t i = 0; i < cell_results.size(); ++i) {
        const Value &r = cell_results[i];
        if (r.isArray()) {
            for (const Value &row : r.elements())
                rows.push(row);
        } else if (r.isObject()) {
            rows.push(r);
        } else {
            rows.push(sweepErrorRow(sweep, i, -1,
                                    "missing cell result"));
        }
    }
    doc.set("rows", std::move(rows));
    doc.set("digest", Value(hex16(fnv1a(doc.find("rows")->dump(0)))));
    return doc;
}

std::string
sweepDigest(const sim::json::Value &aggregate)
{
    const Value *d = aggregate.find("digest");
    SSDRR_ASSERT(d && d->isString(), "aggregate has no digest");
    return d->asString();
}

std::string
sweepTable(const sim::json::Value &aggregate)
{
    const Value *rows = aggregate.find("rows");
    const Value *axes = aggregate.find("axes");
    SSDRR_ASSERT(rows && rows->isArray() && axes && axes->isObject(),
                 "not a sweep aggregate");
    std::vector<std::string> axis_paths;
    for (const auto &[path, vals] : axes->members()) {
        (void)vals;
        // The fixed mechanism column already shows this axis.
        if (path != kMechanismAxis)
            axis_paths.push_back(path);
    }

    std::vector<std::string> head = {"cell", "mechanism"};
    for (const std::string &p : axis_paths)
        head.push_back(p);
    for (const char *col :
         {"status", "reads", "p50us", "p99us", "p999us", "simMs",
          "events", "note"})
        head.push_back(col);

    const auto cellStr = [](const Value *v) {
        if (!v)
            return std::string("-");
        if (v->isString())
            return v->asString();
        if (v->isNumber()) {
            const double n = v->asNumber();
            if (n == static_cast<std::uint64_t>(n))
                return std::to_string(
                    static_cast<std::uint64_t>(n));
            return fixed3(n);
        }
        return v->dump(0);
    };

    std::vector<std::vector<std::string>> table = {head};
    for (const Value &row : rows->elements()) {
        std::vector<std::string> cells;
        cells.push_back(cellStr(row.find("cell")));
        cells.push_back(cellStr(row.find("mechanism")));
        const Value *axv = row.find("axes");
        for (const std::string &p : axis_paths)
            cells.push_back(cellStr(axv ? axv->find(p) : nullptr));
        cells.push_back(cellStr(row.find("status")));
        const bool ok = row.find("mechanism") != nullptr;
        const auto stat = [&](const char *key, bool fixed) {
            const Value *v = row.find(key);
            if (!ok || !v || !v->isNumber())
                return std::string("-");
            return fixed ? fixed3(v->asNumber()) : cellStr(v);
        };
        cells.push_back(stat("reads", false));
        cells.push_back(stat("p50ReadUs", true));
        cells.push_back(stat("p99ReadUs", true));
        cells.push_back(stat("p999ReadUs", true));
        cells.push_back(stat("simulatedMs", true));
        cells.push_back(stat("executedEvents", false));
        const Value *msg = row.find("message");
        std::string note =
            msg && msg->isString() ? msg->asString() : "";
        const Value *exit = row.find("exit");
        if (exit && exit->isNumber())
            note = "exit " +
                   std::to_string(
                       static_cast<int>(exit->asNumber())) +
                   (note.empty() ? "" : ": " + note);
        cells.push_back(note);
        table.push_back(std::move(cells));
    }

    std::vector<std::size_t> width(head.size(), 0);
    for (const auto &r : table)
        for (std::size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());

    // cell + the numeric stats right-align; labels left-align. The
    // note column is last and un-padded so error text never trails
    // whitespace.
    std::string out;
    for (const auto &r : table) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            if (i)
                out += "  ";
            if (i + 1 == r.size()) {
                out += r[i];
            } else if (i == 0 || i + 7 >= head.size()) {
                out.append(width[i] - r[i].size(), ' ');
                out += r[i];
            } else {
                out += r[i];
                out.append(width[i] - r[i].size(), ' ');
            }
        }
        // rstrip: an empty note must not leave padding behind.
        while (!out.empty() && out.back() == ' ')
            out.pop_back();
        out += '\n';
    }
    out += "digest: " + sweepDigest(aggregate) + "\n";
    return out;
}

} // namespace ssdrr::host

/**
 * @file
 * Pluggable array address layouts: how an SsdArray's flat logical
 * space maps onto member drives, and how one host request fans out
 * into per-drive device operations.
 *
 * A layout owns three concerns the array used to hard-wire:
 *  - geometry: the exported data capacity for a given per-drive size
 *    (RAID-5 gives one drive's worth of pages to parity);
 *  - placement: global LPN -> (drive, drive-local LPN);
 *  - planning: one host request -> a fan-out Plan of per-drive
 *    subrequests, possibly two-phased (RAID-5 writes pre-read the
 *    old data and parity before the data+parity writes go out) and
 *    possibly degraded (a read whose data drive is failed becomes a
 *    reconstruction join over the surviving stripe mates).
 *
 * Implementations:
 *  - Raid0Layout: page-granular striping, bit-identical to the
 *    pre-layout SsdArray (global LPN g -> drive g % N, local g / N;
 *    subrequests emitted in drive order). No redundancy.
 *  - Raid5Layout: rotating parity over stripe units of a
 *    configurable page count. Writes are read-modify-write (parity
 *    pre-read + parity update write, both real device I/O that feeds
 *    wear and GC); reads of a failed drive fan out to the N-1
 *    surviving drives and join before the host sees a completion.
 *
 * Layouts are pure address math plus plan scratch: they never touch
 * the event queue and are only called from the array's host domain,
 * so plan() may reuse internal scratch without locking.
 */

#ifndef SSDRR_HOST_ARRAY_LAYOUT_HH
#define SSDRR_HOST_ARRAY_LAYOUT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace ssdrr::host {

/** Redundancy scheme of an SsdArray. */
enum class RaidLevel {
    Raid0, ///< page/unit striping, no redundancy (the legacy layout)
    Raid5, ///< rotating parity, tolerates one failed drive
};

/** Canonical lower-case name ("raid0" / "raid5"). */
const char *name(RaidLevel level);
/** @retval false if @p s names no known level (out untouched). */
bool tryParseRaidLevel(const std::string &s, RaidLevel *out);
/** @throws std::logic_error on an unknown level name. */
RaidLevel parseRaidLevel(const std::string &s);

class ArrayLayout
{
  public:
    /** Why a subrequest exists (per-class accounting). */
    enum class OpClass : std::uint8_t {
        Data,    ///< a data chunk of the host request
        Rebuild, ///< stripe-mate read feeding a reconstruction join
        Parity,  ///< parity-chunk I/O (pre-read or update write)
    };

    /** One per-drive device operation of a fan-out plan. */
    struct SubOp {
        std::uint32_t drive = 0;
        std::uint64_t lpn = 0; ///< drive-local LPN
        std::uint32_t pages = 1;
        bool isRead = true;
        OpClass cls = OpClass::Data;
    };

    struct Location {
        std::uint32_t drive = 0;
        std::uint64_t lpn = 0; ///< drive-local LPN
    };

    /**
     * The fan-out of one host request. Phase-1 @c ops are issued
     * immediately; once ALL of them complete, the phase-2 @c writes
     * are issued (empty for single-phase plans); the request
     * completes when every issued op has completed. @c degraded is
     * set when the plan reconstructs data of a failed drive.
     */
    struct Plan {
        std::vector<SubOp> ops;
        std::vector<SubOp> writes;
        bool degraded = false;

        void clear()
        {
            ops.clear();
            writes.clear();
            degraded = false;
        }
    };

    virtual ~ArrayLayout() = default;

    virtual RaidLevel level() const = 0;
    virtual std::uint32_t drives() const = 0;
    /** Exported data capacity given @p per_drive_pages per member. */
    virtual std::uint64_t
    logicalPages(std::uint64_t per_drive_pages) const = 0;
    /** Simultaneous drive failures the layout can serve through. */
    virtual std::uint32_t faultTolerance() const = 0;
    /** Placement of global data LPN @p lpn. */
    virtual Location locate(std::uint64_t lpn) const = 0;

    /**
     * Build the per-drive fan-out plan for a host request starting
     * at global LPN @p lpn. Deterministic: the op order depends only
     * on (lpn, pages, is_read) and the layout's configuration. May
     * reuse internal scratch; call from one thread at a time.
     */
    virtual void plan(std::uint64_t lpn, std::uint32_t pages,
                      bool is_read, Plan &out) = 0;

    /**
     * Mark member @p drive failed mid-run (the host detected a
     * fail-stop): subsequent plans route around it in degraded mode.
     * @retval false when the layout cannot serve through the failure
     * (no redundancy, or tolerance already exhausted) — the caller
     * keeps planning against the dead drive and fails the affected
     * requests instead.
     */
    virtual bool markFailed(std::uint32_t drive) = 0;
};

/**
 * Page-granular striping, exactly the pre-layout SsdArray behavior:
 * global LPN g lives on drive g % N at local LPN g / N, and a
 * multi-page request splits into at most one subrequest per drive,
 * emitted in drive order.
 */
class Raid0Layout final : public ArrayLayout
{
  public:
    explicit Raid0Layout(std::uint32_t drives);

    RaidLevel level() const override { return RaidLevel::Raid0; }
    std::uint32_t drives() const override { return drives_; }
    std::uint64_t
    logicalPages(std::uint64_t per_drive_pages) const override
    {
        return per_drive_pages * drives_;
    }
    std::uint32_t faultTolerance() const override { return 0; }
    Location locate(std::uint64_t lpn) const override
    {
        return {static_cast<std::uint32_t>(lpn % drives_),
                lpn / drives_};
    }
    void plan(std::uint64_t lpn, std::uint32_t pages, bool is_read,
              Plan &out) override;
    /** No redundancy: a failed member is unrecoverable. */
    bool markFailed(std::uint32_t) override { return false; }

  private:
    std::uint32_t drives_;
    /** Per-drive (first local LPN, page count) split scratch. */
    std::vector<std::uint64_t> first_;
    std::vector<std::uint32_t> count_;
};

/**
 * Rotating-parity RAID-5 over stripe units of @c stripeUnitPages
 * pages. Row r (one unit per drive) keeps its parity unit on drive
 * N-1 - (r % N) and its N-1 data units on the remaining drives in
 * index order, so parity load spreads evenly. The parity page
 * covering data page (d, l) is page l of row l / U's parity drive —
 * parity is page-aligned across the stripe.
 *
 * Write path: read-modify-write. Every written page pre-reads its
 * old data and old parity (phase 1), then writes the new data and
 * new parity (phase 2). Parity ops shared by several written pages
 * of one request are deduplicated. With the data drive failed the
 * write reconstructs instead (pre-read all surviving data chunks,
 * write parity only); with the parity drive failed the data write
 * goes out unprotected.
 *
 * Read path: pages on surviving drives read normally; a page of a
 * failed drive becomes Rebuild reads of page l on every surviving
 * drive, deduplicated against the plan's other reads. The request
 * joins on all of them.
 */
class Raid5Layout final : public ArrayLayout
{
  public:
    /**
     * @param drives member count (>= 3)
     * @param stripe_unit_pages pages per stripe unit (>= 1)
     * @param failed_drives failed member indices (at most 1, each
     *                      < drives)
     */
    Raid5Layout(std::uint32_t drives, std::uint32_t stripe_unit_pages,
                const std::vector<std::uint32_t> &failed_drives);

    RaidLevel level() const override { return RaidLevel::Raid5; }
    std::uint32_t drives() const override { return drives_; }
    std::uint64_t
    logicalPages(std::uint64_t per_drive_pages) const override
    {
        // Whole stripe rows only; a partial trailing row would have
        // units without parity protection.
        return per_drive_pages / unit_ * unit_ * (drives_ - 1);
    }
    std::uint32_t faultTolerance() const override { return 1; }
    Location locate(std::uint64_t lpn) const override;
    void plan(std::uint64_t lpn, std::uint32_t pages, bool is_read,
              Plan &out) override;
    bool markFailed(std::uint32_t drive) override;

    std::uint32_t stripeUnitPages() const { return unit_; }
    /** Parity-holding drive of stripe row @p row. */
    std::uint32_t parityDriveOfRow(std::uint64_t row) const
    {
        return drives_ - 1 -
               static_cast<std::uint32_t>(row % drives_);
    }
    bool isFailed(std::uint32_t drive) const
    {
        return (failed_mask_ >> drive) & 1u;
    }

  private:
    /** Append a page op, deduplicating by (drive, local LPN) within
     *  @p seen and merging runs contiguous on one drive. @p last
     *  tracks each drive's most recent op index in @p ops, so runs
     *  merge even when the walk interleaves drives (data, parity,
     *  data, parity, ...). */
    void addPage(std::vector<SubOp> &ops,
                 std::unordered_set<std::uint64_t> &seen,
                 std::vector<std::int32_t> &last, std::uint32_t drive,
                 std::uint64_t lpn, bool is_read, OpClass cls) const;

    std::uint32_t drives_;
    std::uint32_t unit_;
    std::uint64_t failed_mask_ = 0;
    /** Plan scratch: dedup sets and per-drive last-op indices
     *  (phase-1 reads / phase-2 writes). */
    std::unordered_set<std::uint64_t> seen_reads_;
    std::unordered_set<std::uint64_t> seen_writes_;
    std::vector<std::int32_t> last_read_;
    std::vector<std::int32_t> last_write_;
};

/**
 * Exported data capacity of an array without building it (shared by
 * scenario validation and capacity reporting).
 */
std::uint64_t arrayLogicalPages(RaidLevel level, std::uint32_t drives,
                                std::uint32_t stripe_unit_pages,
                                std::uint64_t per_drive_pages);

/**
 * Build a layout. @throws std::logic_error (via SSDRR_ASSERT) on an
 * out-of-range configuration — callers wanting actionable messages
 * validate first (ScenarioSpec::validate names the JSON path).
 */
std::unique_ptr<ArrayLayout>
makeArrayLayout(RaidLevel level, std::uint32_t drives,
                std::uint32_t stripe_unit_pages,
                const std::vector<std::uint32_t> &failed_drives);

} // namespace ssdrr::host

#endif // SSDRR_HOST_ARRAY_LAYOUT_HH

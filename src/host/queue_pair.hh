/**
 * @file
 * NVMe-style submission/completion queue pair and the controller-side
 * queue arbiter.
 *
 * A QueuePair models one tenant-facing I/O queue: the submission
 * queue holds commands the host has posted but the controller has not
 * yet fetched, and the queue depth bounds the tenant's outstanding
 * commands (posted + executing), exactly like an NVMe SQ/CQ pair of
 * that depth. The Arbiter implements the NVMe round-robin and
 * weighted-round-robin command-fetch policies across queue pairs
 * (NVMe spec, "Command Arbitration"), plus an SLO-aware
 * earliest-deadline-first policy for per-tenant latency targets.
 *
 * QoS: a queue pair can carry a token-bucket rate limit (commands
 * per second with a configurable burst) — a queue with posted
 * commands but no tokens is not fetchable until the bucket refills —
 * and a latency SLO that the "slo" arbitration policy turns into a
 * per-command deadline (post time + SLO).
 */

#ifndef SSDRR_HOST_QUEUE_PAIR_HH
#define SSDRR_HOST_QUEUE_PAIR_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "host/filter/token_bucket.hh"
#include "ssd/ssd.hh"

namespace ssdrr::host {

/** One submission-queue entry: a request tagged with its queue. */
struct SqEntry {
    ssd::HostRequest req;
    std::uint32_t qid = 0;
};

/**
 * Per-queue QoS contract. All fields are optional (0 = off); the
 * defaults make a queue pair behave exactly as before QoS existed.
 */
struct QueueQos {
    /** Token-bucket refill rate in commands/second (0 = unlimited). */
    double rateIops = 0.0;
    /** Bucket depth in commands; 0 = 1 (strict pacing). */
    double burst = 0.0;
    /** Latency SLO in microseconds (0 = best-effort); consumed by
     *  Arbitration::SloDeadline as deadline = post time + SLO. */
    double sloUs = 0.0;
};

class QueuePair
{
  public:
    QueuePair(std::uint32_t qid, std::uint32_t depth,
              std::uint32_t weight = 1, const QueueQos &qos = {});

    std::uint32_t qid() const { return qid_; }
    std::uint32_t depth() const { return depth_; }
    std::uint32_t weight() const { return weight_; }
    const QueueQos &qos() const { return qos_; }

    /** Commands posted but not yet fetched by the controller. */
    std::size_t posted() const { return sq_.size(); }
    /** Commands fetched and still executing in the device. */
    std::uint32_t inflight() const { return inflight_; }
    /** Free SQ slots: depth - posted - inflight. */
    std::uint32_t freeSlots() const;
    bool full() const { return freeSlots() == 0; }
    /** Has a posted command AND a rate-limit token for it. */
    bool fetchable() const
    {
        return !sq_.empty() &&
               (!bucket_.configured() || bucket_.hasToken());
    }
    /** Has posted commands it cannot fetch yet (bucket empty). */
    bool throttled() const
    {
        return !sq_.empty() && bucket_.configured() &&
               !bucket_.hasToken();
    }

    /**
     * Advance the token bucket to @p now. Called by the host
     * interface before each arbitration round; a no-op without a
     * rate limit.
     */
    void refill(sim::Tick now);

    /**
     * Earliest tick at which this queue could become fetchable by
     * token refill alone (kTickNever if it is already fetchable,
     * idle, or unlimited). The host interface schedules its next
     * fetch round at the minimum over all queues.
     */
    sim::Tick nextTokenTick(sim::Tick now) const;

    /** Post time of the oldest posted command (fatal if empty). */
    sim::Tick headArrival() const;

    /**
     * Fetch deadline of the oldest posted command under the SLO
     * policy: headArrival + sloUs, or kTickNever for best-effort
     * queues (sloUs == 0).
     */
    sim::Tick headDeadline() const;

    /** Post a command. @retval false if the queue pair is full. */
    bool post(const SqEntry &e);

    /** Controller fetch: pop the oldest posted command (consumes a
     *  rate-limit token when a bucket is configured). */
    SqEntry fetch();

    /** Controller posted a completion for a fetched command. */
    void complete();

    /** Total commands fetched over the queue's lifetime. */
    std::uint64_t totalFetched() const { return total_fetched_; }
    /** Total completions posted over the queue's lifetime. */
    std::uint64_t totalCompleted() const { return total_completed_; }

  private:
    std::uint32_t qid_;
    std::uint32_t depth_;
    std::uint32_t weight_;
    QueueQos qos_;
    sim::Tick slo_ticks_ = 0;
    /** QoS rate limiter (unconfigured when rateIops == 0). */
    filter::TokenBucket bucket_;
    std::uint32_t inflight_ = 0;
    std::uint64_t total_fetched_ = 0;
    std::uint64_t total_completed_ = 0;
    std::deque<SqEntry> sq_;
};

/** Command-fetch arbitration policy across queue pairs. */
enum class Arbitration {
    RoundRobin,
    WeightedRoundRobin,
    /**
     * SLO-aware earliest-deadline-first: among fetchable queues,
     * fetch from the one whose oldest command's deadline
     * (post time + sloUs) is earliest. Best-effort queues
     * (sloUs == 0) have an infinite deadline, so they are served —
     * round-robin among themselves — only when no SLO-bound command
     * is waiting. Ties break round-robin, so equal-SLO queues share
     * fairly and no SLO queue starves another.
     */
    SloDeadline,
};

/** Parse "rr" / "wrr" / "slo" (case-sensitive); fatal otherwise. */
Arbitration parseArbitration(const std::string &name);
/** Non-fatal parse; @retval false on unknown names. */
bool tryParseArbitration(const std::string &name, Arbitration *out);
const char *name(Arbitration a);

/**
 * Stateful queue-pair arbiter. pick() returns the index of the next
 * queue to fetch from, honouring the policy: plain round-robin
 * fetches one command per non-empty queue per turn; weighted
 * round-robin fetches up to weight() consecutive commands from a
 * queue before advancing; slo picks the earliest deadline (see
 * Arbitration::SloDeadline). rr/wrr are starvation-free: a queue
 * with posted commands is always reached within one full round.
 */
class Arbiter
{
  public:
    explicit Arbiter(Arbitration policy) : policy_(policy) {}

    Arbitration policy() const { return policy_; }

    /**
     * Choose the next queue with a fetchable command.
     * @return index into @p qps, or -1 if no queue is fetchable.
     */
    int pick(const std::vector<QueuePair> &qps);

  private:
    int pickDeadline(const std::vector<QueuePair> &qps);

    Arbitration policy_;
    std::uint32_t cursor_ = 0;
    std::uint32_t burst_ = 0; ///< commands granted in the current turn
};

} // namespace ssdrr::host

#endif // SSDRR_HOST_QUEUE_PAIR_HH

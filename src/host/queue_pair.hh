/**
 * @file
 * NVMe-style submission/completion queue pair and the controller-side
 * queue arbiter.
 *
 * A QueuePair models one tenant-facing I/O queue: the submission
 * queue holds commands the host has posted but the controller has not
 * yet fetched, and the queue depth bounds the tenant's outstanding
 * commands (posted + executing), exactly like an NVMe SQ/CQ pair of
 * that depth. The Arbiter implements the NVMe round-robin and
 * weighted-round-robin command-fetch policies across queue pairs
 * (NVMe spec, "Command Arbitration").
 */

#ifndef SSDRR_HOST_QUEUE_PAIR_HH
#define SSDRR_HOST_QUEUE_PAIR_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ssd/ssd.hh"

namespace ssdrr::host {

/** One submission-queue entry: a request tagged with its queue. */
struct SqEntry {
    ssd::HostRequest req;
    std::uint32_t qid = 0;
};

class QueuePair
{
  public:
    QueuePair(std::uint32_t qid, std::uint32_t depth,
              std::uint32_t weight = 1);

    std::uint32_t qid() const { return qid_; }
    std::uint32_t depth() const { return depth_; }
    std::uint32_t weight() const { return weight_; }

    /** Commands posted but not yet fetched by the controller. */
    std::size_t posted() const { return sq_.size(); }
    /** Commands fetched and still executing in the device. */
    std::uint32_t inflight() const { return inflight_; }
    /** Free SQ slots: depth - posted - inflight. */
    std::uint32_t freeSlots() const;
    bool full() const { return freeSlots() == 0; }
    bool fetchable() const { return !sq_.empty(); }

    /** Post a command. @retval false if the queue pair is full. */
    bool post(const SqEntry &e);

    /** Controller fetch: pop the oldest posted command. */
    SqEntry fetch();

    /** Controller posted a completion for a fetched command. */
    void complete();

    /** Total commands fetched over the queue's lifetime. */
    std::uint64_t totalFetched() const { return total_fetched_; }
    /** Total completions posted over the queue's lifetime. */
    std::uint64_t totalCompleted() const { return total_completed_; }

  private:
    std::uint32_t qid_;
    std::uint32_t depth_;
    std::uint32_t weight_;
    std::uint32_t inflight_ = 0;
    std::uint64_t total_fetched_ = 0;
    std::uint64_t total_completed_ = 0;
    std::deque<SqEntry> sq_;
};

/** Command-fetch arbitration policy across queue pairs. */
enum class Arbitration {
    RoundRobin,
    WeightedRoundRobin,
};

/** Parse "rr" / "wrr" (case-sensitive); fatal on anything else. */
Arbitration parseArbitration(const std::string &name);
const char *name(Arbitration a);

/**
 * Stateful queue-pair arbiter. pick() returns the index of the next
 * queue to fetch from, honouring the policy: plain round-robin
 * fetches one command per non-empty queue per turn; weighted
 * round-robin fetches up to weight() consecutive commands from a
 * queue before advancing. Starvation-free: a queue with posted
 * commands is always reached within one full round.
 */
class Arbiter
{
  public:
    explicit Arbiter(Arbitration policy) : policy_(policy) {}

    Arbitration policy() const { return policy_; }

    /**
     * Choose the next queue with a fetchable command.
     * @return index into @p qps, or -1 if every queue is empty.
     */
    int pick(const std::vector<QueuePair> &qps);

  private:
    Arbitration policy_;
    std::uint32_t cursor_ = 0;
    std::uint32_t burst_ = 0; ///< commands granted in the current turn
};

} // namespace ssdrr::host

#endif // SSDRR_HOST_QUEUE_PAIR_HH

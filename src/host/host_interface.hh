/**
 * @file
 * Host-side dispatcher: queue pairs, command-fetch arbitration, and
 * completion routing between tenants and an SSD array.
 *
 * Commands posted to a queue pair wait in its submission queue until
 * the controller fetches them. Fetching is bounded by a
 * controller-side in-flight limit (the device's command slots), so
 * under load the arbitration policy decides whose commands enter the
 * device next — this is where weighted-round-robin differentiates
 * tenants. Completions flow back through the owning queue pair to a
 * per-queue callback, and each completion frees a device slot, which
 * immediately triggers the next fetch round.
 */

#ifndef SSDRR_HOST_HOST_INTERFACE_HH
#define SSDRR_HOST_HOST_INTERFACE_HH

#include <unordered_map>
#include <vector>

#include "host/array.hh"
#include "host/filter/filter.hh"
#include "host/queue_pair.hh"
#include "sim/callback.hh"

namespace ssdrr::host {

class HostInterface
{
  public:
    /** Move-only (SBO): completion routing is per-command hot path. */
    using CompletionFn =
        sim::InlineFunction<void(const ssd::HostCompletion &)>;

    struct Options {
        std::uint32_t queueDepth = 16;
        Arbitration arbitration = Arbitration::RoundRobin;
        /**
         * Controller command slots: total commands in flight inside
         * the device across all queue pairs. 0 = auto (8 per drive,
         * two per channel on the default 4-channel geometry).
         */
        std::uint32_t maxDeviceInflight = 0;
        /**
         * Ordered filter chain between command fetch and the array
         * (host/filter/filter.hh). Fetched commands travel down it,
         * array completions travel up it; empty (the default) is a
         * wire — bit-identical to the pre-chain engine.
         */
        std::vector<filter::FilterSpec> filters;
    };

    HostInterface(SsdArray &array, Options opt);

    const Options &options() const { return opt_; }
    SsdArray &array() { return array_; }

    /**
     * Create one queue pair with the configured depth. @p qos
     * attaches an optional token-bucket rate limit and latency SLO
     * (see QueueQos); the default is an unconstrained queue.
     * @return its qid (dense, starting at 0)
     */
    std::uint32_t addQueuePair(std::uint32_t weight = 1,
                               const QueueQos &qos = {});

    const QueuePair &queuePair(std::uint32_t qid) const
    {
        return qps_.at(qid);
    }
    std::uint32_t queuePairs() const
    {
        return static_cast<std::uint32_t>(qps_.size());
    }

    /** Completion callback for commands posted on @p qid. */
    void bindCompletion(std::uint32_t qid, CompletionFn fn);

    /**
     * Post a command on queue pair @p qid. The request's id is
     * overwritten with a globally unique command id (returned via the
     * completion record). @retval false if the queue pair is full.
     */
    bool post(std::uint32_t qid, ssd::HostRequest req);

    /** Commands currently executing inside the device. */
    std::uint32_t deviceInflight() const { return device_inflight_; }
    std::uint32_t deviceSlots() const { return device_slots_; }

    /** The filter chain between command fetch and the array. */
    const filter::FilterChain &filterChain() const { return chain_; }
    /** Fold per-filter counters into @p s (no-op on an empty chain). */
    void collectFilterStats(ssd::RunStats &s) const
    {
        chain_.collectStats(s);
    }

  private:
    void pump();
    void onArrayComplete(const ssd::HostCompletion &c);

    SsdArray &array_;
    Options opt_;
    /** Request filter chain; commands enter it in pump() and its
     *  downstream endpoint submits to the array. */
    filter::FilterChain chain_;
    std::uint32_t device_slots_;
    std::vector<QueuePair> qps_;
    std::vector<CompletionFn> callbacks_;
    Arbiter arbiter_;
    std::unordered_map<std::uint64_t, std::uint32_t> owner_;
    std::uint32_t device_inflight_ = 0;
    std::uint64_t next_cmd_id_ = 1;
    /** Pending wake-up for rate-limited queues (0 = none): when
     *  every queue with work is out of tokens, the next fetch round
     *  is scheduled at the earliest bucket-refill tick. */
    sim::EventId pump_event_ = 0;
};

} // namespace ssdrr::host

#endif // SSDRR_HOST_HOST_INTERFACE_HH

#include "host/queue_pair.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace ssdrr::host {

QueuePair::QueuePair(std::uint32_t qid, std::uint32_t depth,
                     std::uint32_t weight, const QueueQos &qos)
    : qid_(qid), depth_(depth), weight_(weight), qos_(qos)
{
    SSDRR_ASSERT(depth_ > 0, "queue pair needs depth >= 1");
    SSDRR_ASSERT(weight_ > 0, "queue pair needs weight >= 1");
    SSDRR_ASSERT(qos_.rateIops >= 0.0, "negative rate limit");
    SSDRR_ASSERT(qos_.burst >= 0.0, "negative burst");
    SSDRR_ASSERT(qos_.sloUs >= 0.0, "negative SLO");
    slo_ticks_ = sim::usec(qos_.sloUs);
    bucket_.configure(qos_.rateIops, qos_.burst);
}

std::uint32_t
QueuePair::freeSlots() const
{
    const std::uint32_t used =
        static_cast<std::uint32_t>(sq_.size()) + inflight_;
    return used >= depth_ ? 0 : depth_ - used;
}

void
QueuePair::refill(sim::Tick now)
{
    bucket_.refill(now);
}

sim::Tick
QueuePair::nextTokenTick(sim::Tick now) const
{
    if (!throttled())
        return sim::kTickNever;
    return bucket_.nextTokenTick(now);
}

sim::Tick
QueuePair::headArrival() const
{
    SSDRR_ASSERT(!sq_.empty(), "headArrival on empty SQ ", qid_);
    return sq_.front().req.arrival;
}

sim::Tick
QueuePair::headDeadline() const
{
    if (slo_ticks_ == 0)
        return sim::kTickNever;
    return headArrival() + slo_ticks_;
}

bool
QueuePair::post(const SqEntry &e)
{
    if (freeSlots() == 0)
        return false;
    sq_.push_back(e);
    return true;
}

SqEntry
QueuePair::fetch()
{
    SSDRR_ASSERT(!sq_.empty(), "fetch from empty SQ ", qid_);
    if (bucket_.configured()) {
        SSDRR_ASSERT(bucket_.hasToken(), "fetch from throttled SQ ",
                     qid_);
        bucket_.consume();
    }
    SqEntry e = sq_.front();
    sq_.pop_front();
    ++inflight_;
    ++total_fetched_;
    return e;
}

void
QueuePair::complete()
{
    SSDRR_ASSERT(inflight_ > 0, "completion with nothing in flight on ",
                 qid_);
    --inflight_;
    ++total_completed_;
}

Arbitration
parseArbitration(const std::string &name)
{
    Arbitration a;
    if (tryParseArbitration(name, &a))
        return a;
    SSDRR_FATAL("unknown arbitration policy '", name,
                "' (expected rr, wrr, or slo)");
}

bool
tryParseArbitration(const std::string &name, Arbitration *out)
{
    Arbitration a;
    if (name == "rr")
        a = Arbitration::RoundRobin;
    else if (name == "wrr")
        a = Arbitration::WeightedRoundRobin;
    else if (name == "slo")
        a = Arbitration::SloDeadline;
    else
        return false;
    if (out)
        *out = a;
    return true;
}

const char *
name(Arbitration a)
{
    switch (a) {
    case Arbitration::RoundRobin:
        return "rr";
    case Arbitration::WeightedRoundRobin:
        return "wrr";
    case Arbitration::SloDeadline:
        return "slo";
    }
    return "?";
}

int
Arbiter::pickDeadline(const std::vector<QueuePair> &qps)
{
    // Earliest deadline first; kTickNever (best-effort) queues only
    // win when no SLO-bound command is waiting. Ties — including the
    // all-best-effort case — break round-robin from the last grant,
    // so equally-urgent queues share the device fairly.
    const std::uint32_t n = static_cast<std::uint32_t>(qps.size());
    int best = -1;
    sim::Tick best_deadline = sim::kTickNever;
    for (std::uint32_t step = 1; step <= n; ++step) {
        const std::uint32_t idx = (cursor_ + step) % n;
        if (!qps[idx].fetchable())
            continue;
        const sim::Tick d = qps[idx].headDeadline();
        if (best < 0 || d < best_deadline) {
            best = static_cast<int>(idx);
            best_deadline = d;
        }
    }
    if (best >= 0)
        cursor_ = static_cast<std::uint32_t>(best);
    return best;
}

int
Arbiter::pick(const std::vector<QueuePair> &qps)
{
    if (qps.empty())
        return -1;
    const std::uint32_t n = static_cast<std::uint32_t>(qps.size());
    if (cursor_ >= n)
        cursor_ = 0;

    if (policy_ == Arbitration::SloDeadline)
        return pickDeadline(qps);

    // Finish the current turn first: WRR keeps granting the cursor's
    // queue until its weight is spent or it runs dry.
    const std::uint32_t grant =
        policy_ == Arbitration::WeightedRoundRobin
            ? qps[cursor_].weight()
            : 1;
    if (burst_ < grant && qps[cursor_].fetchable()) {
        ++burst_;
        return static_cast<int>(cursor_);
    }

    // Advance to the next queue with work.
    for (std::uint32_t step = 1; step <= n; ++step) {
        const std::uint32_t idx = (cursor_ + step) % n;
        if (qps[idx].fetchable()) {
            cursor_ = idx;
            burst_ = 1;
            return static_cast<int>(idx);
        }
    }
    burst_ = 0;
    return -1;
}

} // namespace ssdrr::host

#include "host/queue_pair.hh"

#include "sim/logging.hh"

namespace ssdrr::host {

QueuePair::QueuePair(std::uint32_t qid, std::uint32_t depth,
                     std::uint32_t weight)
    : qid_(qid), depth_(depth), weight_(weight)
{
    SSDRR_ASSERT(depth_ > 0, "queue pair needs depth >= 1");
    SSDRR_ASSERT(weight_ > 0, "queue pair needs weight >= 1");
}

std::uint32_t
QueuePair::freeSlots() const
{
    const std::uint32_t used =
        static_cast<std::uint32_t>(sq_.size()) + inflight_;
    return used >= depth_ ? 0 : depth_ - used;
}

bool
QueuePair::post(const SqEntry &e)
{
    if (freeSlots() == 0)
        return false;
    sq_.push_back(e);
    return true;
}

SqEntry
QueuePair::fetch()
{
    SSDRR_ASSERT(!sq_.empty(), "fetch from empty SQ ", qid_);
    SqEntry e = sq_.front();
    sq_.pop_front();
    ++inflight_;
    ++total_fetched_;
    return e;
}

void
QueuePair::complete()
{
    SSDRR_ASSERT(inflight_ > 0, "completion with nothing in flight on ",
                 qid_);
    --inflight_;
    ++total_completed_;
}

Arbitration
parseArbitration(const std::string &name)
{
    if (name == "rr")
        return Arbitration::RoundRobin;
    if (name == "wrr")
        return Arbitration::WeightedRoundRobin;
    SSDRR_FATAL("unknown arbitration policy '", name,
                "' (expected rr or wrr)");
}

const char *
name(Arbitration a)
{
    switch (a) {
    case Arbitration::RoundRobin:
        return "rr";
    case Arbitration::WeightedRoundRobin:
        return "wrr";
    }
    return "?";
}

int
Arbiter::pick(const std::vector<QueuePair> &qps)
{
    if (qps.empty())
        return -1;
    const std::uint32_t n = static_cast<std::uint32_t>(qps.size());
    if (cursor_ >= n)
        cursor_ = 0;

    // Finish the current turn first: WRR keeps granting the cursor's
    // queue until its weight is spent or it runs dry.
    const std::uint32_t grant =
        policy_ == Arbitration::WeightedRoundRobin
            ? qps[cursor_].weight()
            : 1;
    if (burst_ < grant && qps[cursor_].fetchable()) {
        ++burst_;
        return static_cast<int>(cursor_);
    }

    // Advance to the next queue with work.
    for (std::uint32_t step = 1; step <= n; ++step) {
        const std::uint32_t idx = (cursor_ + step) % n;
        if (qps[idx].fetchable()) {
            cursor_ = idx;
            burst_ = 1;
            return static_cast<int>(idx);
        }
    }
    burst_ = 0;
    return -1;
}

} // namespace ssdrr::host

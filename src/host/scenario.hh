/**
 * @file
 * Canned multi-tenant scenarios: build an SSD array, a host
 * interface, and a set of tenants from a declarative config, run to
 * completion, and collect per-tenant and array-level statistics.
 *
 * This is the entry point the ssdrr_sim tool, the multi-tenant
 * bench, and the integration tests share, so a scenario is specified
 * once and behaves identically everywhere (same seeds, same event
 * ordering, byte-identical results).
 */

#ifndef SSDRR_HOST_SCENARIO_HH
#define SSDRR_HOST_SCENARIO_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "host/array.hh"
#include "host/host_interface.hh"
#include "host/tenant.hh"
#include "ssd/config.hh"

namespace ssdrr::host {

/** Declarative description of one tenant. */
struct TenantSpec {
    /** Display name; defaults to the workload name. */
    std::string name;
    /** Table-2 workload name, or a path to an MSR-Cambridge CSV. */
    std::string workload = "usr_1";
    /** Synthetic trace length (per tenant). */
    std::uint64_t requests = 1000;
    /** Override the synthetic spec's arrival rate (0 = keep). */
    double iops = 0.0;
    InjectionMode mode = InjectionMode::ClosedLoop;
    /** Closed-loop window; must not exceed the queue-pair depth. */
    std::uint32_t qdLimit = 16;
    /** WRR arbitration weight. */
    std::uint32_t weight = 1;

    // ---- QoS / placement / stop condition (scenario API v2) ----
    /** Token-bucket rate limit in commands/second (0 = unlimited). */
    double rateIops = 0.0;
    /** Token-bucket depth in commands (0 = 1, strict pacing). */
    double burst = 0.0;
    /** Latency SLO in microseconds (0 = best-effort); honoured by
     *  the "slo" arbitration policy. */
    double sloUs = 0.0;
    /** Channel-affinity mask (bit c = channel c of every drive;
     *  0 = all channels): the tenant's LPN slice is restricted to
     *  pages living on — and rewritten to — that channel subset. */
    std::uint32_t channelMask = 0;
    /** Open-loop stop condition: run until this much simulated time
     *  has passed (microseconds; 0 = replay the trace once). */
    double horizonUs = 0.0;
};

/**
 * Caller-owned cache of parsed CSV traces, keyed by
 * (path, pageBytes). Pass the same cache across scenarios (e.g. a
 * per-mechanism sweep) to parse each multi-million-row MSR file
 * once instead of once per tenant per scenario.
 */
using TraceCache =
    std::map<std::pair<std::string, std::uint32_t>, workload::Trace>;

struct ScenarioConfig {
    /** Per-drive SSD configuration; its seed anchors all derived
     *  seeds (trace generation and per-drive error patterns). */
    ssd::Config ssd;
    core::Mechanism mech = core::Mechanism::Baseline;
    std::uint32_t drives = 1;
    /** Array address layout (see host/array_layout.hh). */
    RaidLevel raid = RaidLevel::Raid0;
    /** RAID-5 stripe-unit pages (ignored by RAID-0). */
    std::uint32_t stripeUnitPages = 1;
    /** Failed member drives: RAID-5 serves their data through
     *  degraded-mode reconstruction. */
    std::vector<std::uint32_t> failedDrives;
    /** Fault timeline injected mid-run (sim/fault_injector.hh);
     *  empty = faultless, bit-identical to the pre-fault engine. */
    std::vector<sim::FaultEvent> faults;
    /** Per-subrequest deadline in microseconds (0 = no timeout
     *  tracking; required > 0 by any fail-stop fault). */
    double timeoutUs = 0.0;
    /** Reissue attempts after a timeout/UECC before failover. */
    std::uint32_t retryMax = 2;
    /** Backoff before the first reissue (doubles per attempt). */
    double retryBackoffUs = 100.0;
    HostInterface::Options host;
    std::vector<TenantSpec> tenants;
    /**
     * Link transfer cost in microseconds per KiB moved, charged per
     * host command on dispatch and completion in addition to the
     * fixed hostLinkUs turnaround (0 = off, the legacy event
     * stream). Sugar for an implicit "xfer" filter appended at the
     * bottom of host.filters (see host/filter/xfer.hh).
     */
    double transferUsPerKb = 0.0;
    /**
     * Host dispatch/completion turnaround in microseconds. 0 keeps
     * the legacy synchronous coupling on one shared event queue;
     * > 0 models the PCIe/NVMe doorbell/interrupt turnaround and
     * runs drives on private queues behind host-link-wide
     * synchronization windows (see host::SsdArray).
     */
    double hostLinkUs = 0.0;
    /**
     * Worker threads for the windowed engine (needs hostLinkUs > 0
     * or a fabric to matter). Results are bit-identical for any
     * value.
     */
    std::uint32_t threads = 1;
    /**
     * Doorbell batching for the windowed engine: coalesce mailbox
     * crossings that share a (receiver, delivery tick) into one heap
     * event per window barrier. Bit-identical to unbatched delivery
     * for any thread count (an engine tuning knob like threads, not
     * part of the scenario's observable spec — it has no JSON field);
     * off exists for the batched-vs-unbatched parity tests.
     */
    bool batchMailbox = true;
    /**
     * Storage-fabric topology routing dispatch/completion crossings
     * hop-by-hop with per-link contention (empty = no fabric).
     * Mutually exclusive with hostLinkUs > 0; selects the windowed
     * per-drive engine (see fabric/fabric.hh).
     */
    fabric::TopologySpec fabric;
    /** Optional CSV parse cache shared across runScenario calls. */
    TraceCache *traceCache = nullptr;
};

struct ScenarioResult {
    std::vector<TenantStats> tenants;
    /** Array-level aggregate (parent-request latencies). */
    ssd::RunStats array;
    /** Commands fetched per queue pair (arbitration accounting). */
    std::vector<std::uint64_t> fetchedPerQueue;
};

/** True if @p workload names a CSV file rather than a suite entry. */
bool looksLikeTracePath(const std::string &workload);

/**
 * Build the trace for one tenant over its private LPN slice
 * [base_lpn, base_lpn + slice_pages).
 *
 * Synthetic workloads are generated independently per tenant from
 * @p seed. CSV workloads are subsampled: record indices congruent to
 * @p subsample_index mod @p subsample_count (arrival times kept), so
 * several tenants can split one trace; LPNs are folded into the
 * slice.
 */
workload::Trace makeTenantTrace(const TenantSpec &spec,
                                std::uint64_t slice_pages,
                                std::uint64_t base_lpn,
                                std::uint32_t page_bytes,
                                std::uint64_t seed,
                                std::uint32_t subsample_count = 1,
                                std::uint32_t subsample_index = 0,
                                TraceCache *cache = nullptr);

/**
 * Pages of the global-LPN slice [base_lpn, base_lpn + slice_pages)
 * that live on the channels of @p channel_mask under the array's
 * preconditioned striped layout (global LPN g -> drive g mod N,
 * local LPN g div N -> plane (g div N) mod P). This is the usable
 * capacity of a channel-pinned tenant.
 */
std::uint64_t channelLatticePages(std::uint64_t base_lpn,
                                  std::uint64_t slice_pages,
                                  std::uint32_t drives,
                                  const ftl::AddressLayout &layout,
                                  std::uint32_t channel_mask);

/**
 * Remap a trace generated over [0, channelLatticePages(...)) onto
 * the actual global LPNs of the channel lattice, so every page the
 * tenant reads is preconditioned on an allowed channel of every
 * drive. Requests are clamped to the lattice's contiguous spans
 * (at most @p drives pages), since LPNs beyond a span belong to
 * other channels or tenants.
 */
workload::Trace applyChannelAffinity(const workload::Trace &trace,
                                     std::uint64_t base_lpn,
                                     std::uint64_t slice_pages,
                                     std::uint32_t drives,
                                     const ftl::AddressLayout &layout,
                                     std::uint32_t channel_mask);

/** Run one scenario to completion (deterministic for a fixed config). */
ScenarioResult runScenario(const ScenarioConfig &cfg);

} // namespace ssdrr::host

#endif // SSDRR_HOST_SCENARIO_HH

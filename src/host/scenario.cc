#include "host/scenario.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "host/rebuild.hh"
#include "sim/logging.hh"
#include "workload/msr_parser.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

namespace ssdrr::host {

bool
looksLikeTracePath(const std::string &workload)
{
    return workload.find('/') != std::string::npos ||
           (workload.size() > 4 &&
            workload.substr(workload.size() - 4) == ".csv");
}

workload::Trace
makeTenantTrace(const TenantSpec &spec, std::uint64_t slice_pages,
                std::uint64_t base_lpn, std::uint32_t page_bytes,
                std::uint64_t seed, std::uint32_t subsample_count,
                std::uint32_t subsample_index, TraceCache *cache)
{
    SSDRR_ASSERT(slice_pages > 0, "empty LPN slice");
    std::vector<workload::TraceRecord> recs;
    std::string name = spec.name.empty() ? spec.workload : spec.name;

    if (looksLikeTracePath(spec.workload)) {
        workload::MsrParseOptions popt;
        popt.pageBytes = page_bytes;
        workload::Trace loaded;
        const workload::Trace *full = &loaded;
        if (cache) {
            const auto key = std::make_pair(spec.workload, page_bytes);
            auto it = cache->find(key);
            if (it == cache->end())
                it = cache
                         ->emplace(key, workload::loadMsrTrace(
                                            spec.workload, popt))
                         .first;
            full = &it->second;
        } else {
            loaded = workload::loadMsrTrace(spec.workload, popt);
        }
        for (std::size_t i = subsample_index; i < full->size();
             i += subsample_count)
            recs.push_back(full->records()[i]);
    } else {
        workload::SyntheticSpec sspec =
            workload::findWorkload(spec.workload);
        if (spec.iops > 0.0)
            sspec.iops = spec.iops;
        const workload::Trace gen = workload::generateSynthetic(
            sspec, slice_pages, spec.requests, seed);
        recs = gen.records();
    }

    // Fold into the slice and relocate to the tenant's base.
    workload::Trace::foldIntoSpace(recs, slice_pages);
    for (auto &r : recs)
        r.lpn += base_lpn;
    return workload::Trace(std::move(name), std::move(recs));
}

namespace {

/** Planes of one drive whose channel is allowed by @p mask. */
std::vector<std::uint32_t>
allowedPlanes(const ftl::AddressLayout &layout,
              std::uint32_t channel_mask)
{
    std::vector<std::uint32_t> planes;
    for (std::uint32_t p = 0; p < layout.totalPlanes(); ++p)
        if (channel_mask & (1u << layout.channelOfPlane(p)))
            planes.push_back(p);
    return planes;
}

/**
 * The lattice repeats every drives * totalPlanes global LPNs: over
 * one period, local LPNs walk the P planes in order, dwelling
 * @p drives consecutive global LPNs on each. @p first_period is the
 * first period boundary at or after base_lpn.
 */
struct Lattice {
    std::uint64_t period = 0;
    std::uint64_t firstPeriod = 0;
    std::uint64_t fullPeriods = 0;
    std::vector<std::uint32_t> planes; ///< allowed plane residues
};

Lattice
latticeOf(std::uint64_t base_lpn, std::uint64_t slice_pages,
          std::uint32_t drives, const ftl::AddressLayout &layout,
          std::uint32_t channel_mask)
{
    Lattice lat;
    lat.period =
        static_cast<std::uint64_t>(drives) * layout.totalPlanes();
    lat.firstPeriod =
        (base_lpn + lat.period - 1) / lat.period * lat.period;
    const std::uint64_t end = base_lpn + slice_pages;
    lat.fullPeriods = end > lat.firstPeriod
                          ? (end - lat.firstPeriod) / lat.period
                          : 0;
    lat.planes = allowedPlanes(layout, channel_mask);
    return lat;
}

} // namespace

std::uint64_t
channelLatticePages(std::uint64_t base_lpn, std::uint64_t slice_pages,
                    std::uint32_t drives,
                    const ftl::AddressLayout &layout,
                    std::uint32_t channel_mask)
{
    const Lattice lat = latticeOf(base_lpn, slice_pages, drives,
                                  layout, channel_mask);
    return lat.fullPeriods * lat.planes.size() * drives;
}

workload::Trace
applyChannelAffinity(const workload::Trace &trace,
                     std::uint64_t base_lpn, std::uint64_t slice_pages,
                     std::uint32_t drives,
                     const ftl::AddressLayout &layout,
                     std::uint32_t channel_mask)
{
    const Lattice lat = latticeOf(base_lpn, slice_pages, drives,
                                  layout, channel_mask);
    const std::uint64_t per_plane = drives; ///< contiguous span length
    const std::uint64_t per_period = lat.planes.size() * per_plane;
    const std::uint64_t pages = lat.fullPeriods * per_period;
    SSDRR_ASSERT(pages > 0, "channel mask ", channel_mask,
                 " leaves no preconditioned pages in slice [",
                 base_lpn, ", ", base_lpn + slice_pages, ")");

    std::vector<workload::TraceRecord> recs = trace.records();
    for (workload::TraceRecord &r : recs) {
        SSDRR_ASSERT(r.lpn < pages, "lattice trace LPN ", r.lpn,
                     " beyond lattice capacity ", pages);
        const std::uint64_t q = r.lpn / per_period;
        const std::uint64_t t = r.lpn % per_period;
        const std::uint64_t plane = lat.planes[t / per_plane];
        const std::uint64_t j = t % per_plane;
        r.lpn = lat.firstPeriod + q * lat.period + plane * per_plane +
                j;
        // A request must stay inside its contiguous span: the next
        // global LPN after the span lives on a different channel (or
        // another tenant's slice).
        r.pages = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(r.pages, per_plane - j));
    }
    return workload::Trace(trace.name(), std::move(recs));
}

ScenarioResult
runScenario(const ScenarioConfig &cfg)
{
    SSDRR_ASSERT(!cfg.tenants.empty(), "scenario needs tenants");
    SSDRR_ASSERT(cfg.hostLinkUs >= 0.0, "negative host link");
    SsdArray::Options aopt;
    aopt.drives = cfg.drives;
    aopt.raid = cfg.raid;
    aopt.stripeUnitPages = cfg.stripeUnitPages;
    aopt.failedDrives = cfg.failedDrives;
    aopt.hostLink = sim::usec(cfg.hostLinkUs);
    aopt.threads = cfg.threads;
    aopt.batchMailbox = cfg.batchMailbox;
    aopt.fabric = cfg.fabric;
    aopt.faults = cfg.faults;
    aopt.faultSeed = cfg.ssd.seed;
    aopt.timeout = sim::usec(cfg.timeoutUs);
    aopt.retryMax = cfg.retryMax;
    aopt.retryBackoff = sim::usec(cfg.retryBackoffUs);
    SsdArray array(cfg.ssd, cfg.mech, aopt);
    array.precondition();
    HostInterface::Options hopt = cfg.host;
    if (cfg.transferUsPerKb > 0.0) {
        // Spec-level sugar: the transfer knob becomes an implicit
        // xfer filter at the bottom of the chain (closest to the
        // array, below any cache — a DRAM hit pays no link cost).
        filter::FilterSpec x;
        x.type = "xfer";
        x.usPerKb = cfg.transferUsPerKb;
        hopt.filters.push_back(x);
    }
    HostInterface hif(array, std::move(hopt));

    const std::uint64_t slice =
        array.logicalPages() / cfg.tenants.size();
    const ftl::AddressLayout layout = cfg.ssd.layout();
    const std::uint32_t all_channels = (1u << cfg.ssd.channels) - 1;

    // CSV tenants naming the same file split its record stream
    // between them; synthetic tenants generate independent traces.
    // Sharing is per file: tenant i's subsample index is its rank
    // among the tenants replaying that particular file.
    std::map<std::string, std::uint32_t> csv_sharers;
    for (const TenantSpec &ts : cfg.tenants)
        if (looksLikeTracePath(ts.workload))
            ++csv_sharers[ts.workload];
    std::map<std::string, std::uint32_t> csv_rank;

    std::vector<std::unique_ptr<Tenant>> tenants;
    for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
        const TenantSpec &ts = cfg.tenants[i];
        std::uint32_t sub_count = 1;
        std::uint32_t sub_index = 0;
        if (looksLikeTracePath(ts.workload)) {
            sub_count = csv_sharers[ts.workload];
            sub_index = csv_rank[ts.workload]++;
        }
        // A mask naming every channel is no restriction at all;
        // normalize so such specs stay bit-identical with legacy
        // unmasked runs.
        const std::uint32_t mask =
            (ts.channelMask & all_channels) == all_channels
                ? 0
                : ts.channelMask;
        workload::Trace trace;
        if (mask != 0) {
            // Channel affinity: generate over the lattice of slice
            // pages preconditioned on allowed channels, then remap
            // onto their global LPNs. Writes carry the mask, so
            // rewritten pages stay on the subset too.
            const std::uint64_t lattice = channelLatticePages(
                i * slice, slice, cfg.drives, layout, mask);
            SSDRR_ASSERT(lattice > 0, "tenant ", i, ": channel mask ",
                         mask, " leaves no pages in its slice");
            trace = applyChannelAffinity(
                makeTenantTrace(ts, lattice, 0, cfg.ssd.pageBytes,
                                cfg.ssd.seed + 7919 * (i + 1),
                                sub_count, sub_index, cfg.traceCache),
                i * slice, slice, cfg.drives, layout, mask);
        } else {
            trace = makeTenantTrace(
                ts, slice, i * slice, cfg.ssd.pageBytes,
                cfg.ssd.seed + 7919 * (i + 1), sub_count, sub_index,
                cfg.traceCache);
        }
        TenantOptions topt;
        topt.mode = ts.mode;
        topt.qdLimit = ts.qdLimit;
        topt.weight = ts.weight;
        topt.rateIops = ts.rateIops;
        topt.burst = ts.burst;
        topt.sloUs = ts.sloUs;
        topt.channelMask = mask;
        topt.horizonUs = ts.horizonUs;
        std::string tname = trace.name();
        tenants.push_back(std::make_unique<Tenant>(
            std::move(tname), std::move(trace), topt, hif));
    }
    // Rebuild-to-spare: a fail-stop fault flagged `rebuild` starts a
    // background reconstruction tenant when the host detects the
    // failure. Its queue pair is created after the tenants' so
    // foreground qids stay 0..n-1.
    std::unique_ptr<RebuildAgent> rebuild;
    for (const sim::FaultEvent &e : cfg.faults) {
        if (e.kind == sim::FaultEvent::Kind::FailStop && e.rebuild) {
            RebuildAgent::Options ropt;
            ropt.rows = e.rebuildRows;
            rebuild = std::make_unique<RebuildAgent>(hif, ropt);
            break;
        }
    }
    if (rebuild) {
        RebuildAgent *agent = rebuild.get();
        array.onDriveFailed(
            [agent](std::uint32_t d) { agent->start(d); });
    }

    for (auto &t : tenants)
        t->start();
    array.drain();

    ScenarioResult res;
    for (auto &t : tenants)
        res.tenants.push_back(t->stats());
    res.array = array.stats();
    if (rebuild)
        rebuild->collectStats(res.array);
    hif.collectFilterStats(res.array);
    for (std::uint32_t q = 0; q < hif.queuePairs(); ++q)
        res.fetchedPerQueue.push_back(hif.queuePair(q).totalFetched());
    return res;
}

} // namespace ssdrr::host

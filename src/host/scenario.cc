#include "host/scenario.hh"

#include <map>
#include <memory>
#include <utility>

#include "sim/logging.hh"
#include "workload/msr_parser.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

namespace ssdrr::host {

bool
looksLikeTracePath(const std::string &workload)
{
    return workload.find('/') != std::string::npos ||
           (workload.size() > 4 &&
            workload.substr(workload.size() - 4) == ".csv");
}

workload::Trace
makeTenantTrace(const TenantSpec &spec, std::uint64_t slice_pages,
                std::uint64_t base_lpn, std::uint32_t page_bytes,
                std::uint64_t seed, std::uint32_t subsample_count,
                std::uint32_t subsample_index, TraceCache *cache)
{
    SSDRR_ASSERT(slice_pages > 0, "empty LPN slice");
    std::vector<workload::TraceRecord> recs;
    std::string name = spec.name.empty() ? spec.workload : spec.name;

    if (looksLikeTracePath(spec.workload)) {
        workload::MsrParseOptions popt;
        popt.pageBytes = page_bytes;
        workload::Trace loaded;
        const workload::Trace *full = &loaded;
        if (cache) {
            const auto key = std::make_pair(spec.workload, page_bytes);
            auto it = cache->find(key);
            if (it == cache->end())
                it = cache
                         ->emplace(key, workload::loadMsrTrace(
                                            spec.workload, popt))
                         .first;
            full = &it->second;
        } else {
            loaded = workload::loadMsrTrace(spec.workload, popt);
        }
        for (std::size_t i = subsample_index; i < full->size();
             i += subsample_count)
            recs.push_back(full->records()[i]);
    } else {
        workload::SyntheticSpec sspec =
            workload::findWorkload(spec.workload);
        if (spec.iops > 0.0)
            sspec.iops = spec.iops;
        const workload::Trace gen = workload::generateSynthetic(
            sspec, slice_pages, spec.requests, seed);
        recs = gen.records();
    }

    // Fold into the slice and relocate to the tenant's base.
    workload::Trace::foldIntoSpace(recs, slice_pages);
    for (auto &r : recs)
        r.lpn += base_lpn;
    return workload::Trace(std::move(name), std::move(recs));
}

ScenarioResult
runScenario(const ScenarioConfig &cfg)
{
    SSDRR_ASSERT(!cfg.tenants.empty(), "scenario needs tenants");
    SsdArray array(cfg.ssd, cfg.mech, cfg.drives);
    array.precondition();
    HostInterface hif(array, cfg.host);

    const std::uint64_t slice =
        array.logicalPages() / cfg.tenants.size();

    // CSV tenants naming the same file split its record stream
    // between them; synthetic tenants generate independent traces.
    // Sharing is per file: tenant i's subsample index is its rank
    // among the tenants replaying that particular file.
    std::map<std::string, std::uint32_t> csv_sharers;
    for (const TenantSpec &ts : cfg.tenants)
        if (looksLikeTracePath(ts.workload))
            ++csv_sharers[ts.workload];
    std::map<std::string, std::uint32_t> csv_rank;

    std::vector<std::unique_ptr<Tenant>> tenants;
    for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
        const TenantSpec &ts = cfg.tenants[i];
        std::uint32_t sub_count = 1;
        std::uint32_t sub_index = 0;
        if (looksLikeTracePath(ts.workload)) {
            sub_count = csv_sharers[ts.workload];
            sub_index = csv_rank[ts.workload]++;
        }
        workload::Trace trace = makeTenantTrace(
            ts, slice, i * slice, cfg.ssd.pageBytes,
            cfg.ssd.seed + 7919 * (i + 1), sub_count, sub_index,
            cfg.traceCache);
        std::string tname = trace.name();
        tenants.push_back(std::make_unique<Tenant>(
            std::move(tname), std::move(trace), ts.mode, ts.qdLimit,
            ts.weight, hif));
    }
    for (auto &t : tenants)
        t->start();
    array.drain();

    ScenarioResult res;
    for (auto &t : tenants)
        res.tenants.push_back(t->stats());
    res.array = array.stats();
    for (std::uint32_t q = 0; q < hif.queuePairs(); ++q)
        res.fetchedPerQueue.push_back(hif.queuePair(q).totalFetched());
    return res;
}

} // namespace ssdrr::host

#include "host/host_interface.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ssdrr::host {

HostInterface::HostInterface(SsdArray &array, Options opt)
    : array_(array), opt_(std::move(opt)),
      device_slots_(opt_.maxDeviceInflight > 0 ? opt_.maxDeviceInflight
                                               : 8 * array.drives()),
      arbiter_(opt_.arbitration)
{
    filter::Context fctx;
    fctx.eq = &array_.eventQueue();
    fctx.logicalPages = array_.logicalPages();
    fctx.pageBytes = array_.pageBytes();
    chain_.build(opt_.filters, fctx);
    chain_.bind(
        [this](const ssd::HostRequest &req) { array_.submit(req); },
        [this](const ssd::HostCompletion &c) { onArrayComplete(c); });
    array_.onHostComplete(
        [this](const ssd::HostCompletion &c) { chain_.complete(c); });
}

std::uint32_t
HostInterface::addQueuePair(std::uint32_t weight, const QueueQos &qos)
{
    const std::uint32_t qid = static_cast<std::uint32_t>(qps_.size());
    qps_.emplace_back(qid, opt_.queueDepth, weight, qos);
    callbacks_.emplace_back();
    return qid;
}

void
HostInterface::bindCompletion(std::uint32_t qid, CompletionFn fn)
{
    callbacks_.at(qid) = std::move(fn);
}

bool
HostInterface::post(std::uint32_t qid, ssd::HostRequest req)
{
    req.id = next_cmd_id_++;
    if (!qps_.at(qid).post(SqEntry{req, qid}))
        return false;
    pump();
    return true;
}

void
HostInterface::pump()
{
    // One wake-up is enough; this round recomputes the earliest
    // refill below, so drop any previously scheduled one (cancel
    // safely rejects the id if this call *is* that wake-up firing).
    if (pump_event_ != 0) {
        array_.eventQueue().cancel(pump_event_);
        pump_event_ = 0;
    }
    const sim::Tick now = array_.eventQueue().now();
    for (QueuePair &qp : qps_)
        qp.refill(now);

    while (device_inflight_ < device_slots_) {
        const int qid = arbiter_.pick(qps_);
        if (qid < 0)
            break;
        SqEntry e = qps_[qid].fetch();
        owner_[e.req.id] = e.qid;
        ++device_inflight_;
        chain_.submit(e.req);
    }

    // If free device slots remain but every queue with work is
    // throttled, nothing else (no completion, no post) is guaranteed
    // to pump again — schedule the next fetch round at the earliest
    // token-refill tick so rate-limited tenants make progress.
    if (device_inflight_ >= device_slots_)
        return;
    sim::Tick wake = sim::kTickNever;
    for (const QueuePair &qp : qps_)
        wake = std::min(wake, qp.nextTokenTick(now));
    if (wake != sim::kTickNever)
        pump_event_ =
            array_.eventQueue().schedule(wake, [this] { pump(); });
}

void
HostInterface::onArrayComplete(const ssd::HostCompletion &c)
{
    auto it = owner_.find(c.id);
    SSDRR_ASSERT(it != owner_.end(), "completion for unknown command ",
                 c.id);
    const std::uint32_t qid = it->second;
    owner_.erase(it);
    SSDRR_ASSERT(device_inflight_ > 0, "completion with empty device");
    --device_inflight_;
    qps_[qid].complete();
    if (callbacks_[qid])
        callbacks_[qid](c);
    pump();
}

} // namespace ssdrr::host

#include "host/host_interface.hh"

#include "sim/logging.hh"

namespace ssdrr::host {

HostInterface::HostInterface(SsdArray &array, Options opt)
    : array_(array), opt_(opt),
      device_slots_(opt.maxDeviceInflight > 0 ? opt.maxDeviceInflight
                                              : 8 * array.drives()),
      arbiter_(opt.arbitration)
{
    array_.onHostComplete(
        [this](const ssd::HostCompletion &c) { onArrayComplete(c); });
}

std::uint32_t
HostInterface::addQueuePair(std::uint32_t weight)
{
    const std::uint32_t qid = static_cast<std::uint32_t>(qps_.size());
    qps_.emplace_back(qid, opt_.queueDepth, weight);
    callbacks_.emplace_back();
    return qid;
}

void
HostInterface::bindCompletion(std::uint32_t qid, CompletionFn fn)
{
    callbacks_.at(qid) = std::move(fn);
}

bool
HostInterface::post(std::uint32_t qid, ssd::HostRequest req)
{
    req.id = next_cmd_id_++;
    if (!qps_.at(qid).post(SqEntry{req, qid}))
        return false;
    pump();
    return true;
}

void
HostInterface::pump()
{
    while (device_inflight_ < device_slots_) {
        const int qid = arbiter_.pick(qps_);
        if (qid < 0)
            return;
        SqEntry e = qps_[qid].fetch();
        owner_[e.req.id] = e.qid;
        ++device_inflight_;
        array_.submit(e.req);
    }
}

void
HostInterface::onArrayComplete(const ssd::HostCompletion &c)
{
    auto it = owner_.find(c.id);
    SSDRR_ASSERT(it != owner_.end(), "completion for unknown command ",
                 c.id);
    const std::uint32_t qid = it->second;
    owner_.erase(it);
    SSDRR_ASSERT(device_inflight_ > 0, "completion with empty device");
    --device_inflight_;
    qps_[qid].complete();
    if (callbacks_[qid])
        callbacks_[qid](c);
    pump();
}

} // namespace ssdrr::host

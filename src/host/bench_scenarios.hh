/**
 * @file
 * Canonical bench scenarios shared by the perf benches, the examples
 * smoke, and the sweep tests, so the "4 closed-loop tenants on a
 * 2-drive striped array at the paper's mid-life operating point"
 * shape is specified once. The benches' golden digests depend on it
 * staying bit-identical to the historical hand-wired configs, so a
 * change here is a deliberate re-baseline, not a refactor.
 */

#ifndef SSDRR_HOST_BENCH_SCENARIOS_HH
#define SSDRR_HOST_BENCH_SCENARIOS_HH

#include <cstdint>

#include "host/host_interface.hh"
#include "host/scenario_spec.hh"

namespace ssdrr::host {

/**
 * The multi-tenant tail scenario: four closed-loop usr_1 tenants
 * (QD-limit 16 each) on queue pairs in front of a two-drive striped
 * array at 1K P/E and 6 months' retention, host queue depth 16.
 * Under WRR, tenant t gets weight t + 1 (the arbitration bench's
 * asymmetric shape); otherwise all weights are 1.
 *
 * The spec sweeps every mechanism, so callers can toConfig() any of
 * them. Materialized configs are bit-identical to the configs the
 * benches historically built by hand.
 */
ScenarioSpec
buildBenchScenario(std::uint64_t requests_per_tenant = 400,
                   Arbitration arb = Arbitration::RoundRobin);

} // namespace ssdrr::host

#endif // SSDRR_HOST_BENCH_SCENARIOS_HH

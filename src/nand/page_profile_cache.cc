#include "nand/page_profile_cache.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ssdrr::nand {

namespace {

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

PageProfileCache::PageProfileCache(const ErrorModel &model,
                                   std::size_t capacity)
    : model_(model)
{
    if (capacity > 0) {
        const std::size_t cap = roundUpPow2(capacity);
        entries_.assign(cap);
        mask_ = cap - 1;
    }
}

std::uint64_t
PageProfileCache::packKey(std::uint64_t chip, std::uint64_t block,
                          std::uint64_t page)
{
    // chip (channel) and page-in-block are small; block is a flat
    // SSD-wide block id. The packed key must stay below ~0 so the
    // stored key + 1 slot tag cannot collide with the empty tag 0.
    SSDRR_DEBUG_ASSERT(chip < (1ull << 12) && block < (1ull << 40) &&
                           page < (1ull << 12),
                       "page coordinates overflow the cache key");
    return (chip << 52) | (block << 12) | page;
}

bool
PageProfileCache::sameOp(const OperatingPoint &a, const OperatingPoint &b)
{
    // Exact comparison on purpose: a page whose retention age moved
    // at all must be recomputed, or results would depend on cache
    // history and break bit-reproducibility.
    return a.peKilo == b.peKilo &&
           a.retentionMonths == b.retentionMonths &&
           a.temperatureC == b.temperatureC;
}

const PageErrorProfile &
PageProfileCache::get(std::uint64_t chip, std::uint64_t block,
                      std::uint64_t page, const OperatingPoint &op)
{
    if (entries_.empty()) {
        scratch_ = model_.pageProfile(chip, block, page, op);
        ++misses_;
        return scratch_;
    }

    const std::uint64_t key = packKey(chip, block, page);
    const std::uint64_t tag = key + 1;
    const std::uint64_t h = sim::mix64(key);
    std::size_t victim = h & mask_;
    for (std::size_t p = 0; p < kProbes; ++p) {
        const std::size_t i = (h + p) & mask_;
        Entry &e = entries_[i];
        if (e.tag == tag) {
            if (sameOp(e.op, op)) {
                ++hits_;
                return e.prof;
            }
            // Same page, stale operating point: refresh in place.
            victim = i;
            break;
        }
        if (e.tag == Entry::kEmptyTag) {
            victim = i;
            break;
        }
    }

    ++misses_;
    Entry &e = entries_[victim];
    e.tag = tag;
    e.op = op;
    e.prof = model_.pageProfile(chip, block, page, op);
    return e.prof;
}

void
PageProfileCache::invalidateBlock(std::uint64_t chip, std::uint64_t block)
{
    if (entries_.empty())
        return;
    // Erases are orders of magnitude rarer than reads; a linear scan
    // of the fixed-size table is cheaper than maintaining per-block
    // chains on every insert.
    const std::uint64_t lo = packKey(chip, block, 0) + 1;
    const std::uint64_t hi = packKey(chip, block + 1, 0) + 1;
    for (Entry &e : entries_) {
        if (e.tag != Entry::kEmptyTag && e.tag >= lo && e.tag < hi) {
            e.tag = Entry::kEmptyTag;
            ++invalidations_;
        }
    }
}

void
PageProfileCache::clear()
{
    for (Entry &e : entries_)
        e.tag = Entry::kEmptyTag;
}

} // namespace ssdrr::nand

/**
 * @file
 * Calibration constants for the NAND error model.
 *
 * We do not have the authors' 160 real 3D TLC chips, so the error
 * model is an analytic surface fitted to every numeric anchor the
 * paper publishes. Each constant below is annotated with the anchor
 * it serves; tests/nand/error_model_anchor_test.cc re-derives the
 * anchors from these constants.
 *
 * Anchors (all at 85C unless stated; PEC in thousands, t in months):
 *  - N_RR(0,0) = 0; avg N_RR(2,12) = 19.9; avg N_RR(0,3) > 3;
 *    P(N_RR >= 7 | 0,6) ~ 54.4%; min N_RR(1,3) >= 8       (Fig. 5, 3.1)
 *  - M_ERR(0,3) = 15, M_ERR(1,12) = 30, M_ERR(2,12) = 35;
 *    margin 44.4% of 72 at (2,12,30C); +5 errors at 30C, +3 at 55C
 *                                                        (Fig. 7, 5.1)
 *  - tPRE reducible 47% / tEVAL 10% / tDISCH 27% at (2,12);
 *    dM(tEVAL 20%) = 30 even fresh; dM(tPRE 47%) at (2,12) is 1.6x
 *    the (2,0) value; dM(tPRE 54%; 1,0) = 35; dM(tDISCH 20%; 1,0) = 8;
 *    dM(tDISCH 7%) <= 4 anywhere                         (Fig. 8, 5.2.1)
 *  - combined (tPRE 54%, tDISCH 20%) blows past capability (Fig. 9)
 *  - temperature adds up to 7 errors at 30C, (2,12)      (Fig. 10)
 *  - with a 14-bit safety margin, min tPRE reduction 40% (worst
 *    condition) and max 54% (best condition)             (Fig. 11)
 */

#ifndef SSDRR_NAND_CALIBRATION_HH
#define SSDRR_NAND_CALIBRATION_HH

namespace ssdrr::nand {

struct Calibration {
    // ----- ECC design point (Section 2.4 / 7.1) -----
    /** Correctable raw bit errors per 1-KiB codeword of the ECC the
     *  SSD actually ships (the evaluation knob). */
    double eccCapability = 72.0;
    /** Capability the chip's retry table was designed against [73].
     *  The per-step error decay is anchored here, so evaluating a
     *  stronger or weaker ECC changes where the walk stops without
     *  changing the chip physics. */
    double designCapability = 72.0;

    // ----- Retry-step count surface (Fig. 5) -----
    /** N_avg = nRet*log1p(t/nTau)*(1 + nPeCoup*PEC) + nPe*PEC.
     *  nRet is set so that P(N >= 7) = 54.4% at (0, 6 months) under
     *  the log-normal per-page variation below (Fig. 5 dot-circle). */
    double nRet = 4.12;
    double nTau = 1.5;
    double nPeCoup = 0.10;
    double nPe = 4.20;
    /** Log-normal sigma of per-page retry-count variation. */
    double nSigma = 0.18;

    // ----- Final-step error surface M_ERR (Fig. 7) -----
    /** M_max = mBase + mPe*PEC + mRet*log1p(t/nTau) + temp adder. */
    double mBase = 5.0;
    double mPe = 5.0;
    double mRet = 9.1;
    /** Additive errors at lower temperature: mTemp*(85-T)/55. */
    double mTemp = 5.0;
    /** Mean final-step errors as a fraction of the max. */
    double mMeanFrac = 0.62;
    /** Log-normal sigma of per-page final-error variation. */
    double mSigma = 0.18;

    // ----- Per-step error decay (Fig. 4b) -----
    /** Minimum per-step error decay ratio toward the final step. */
    double decayRatio = 2.2;
    /** E(N-1) >= failGuard * capability so step N-1 always fails. */
    double failGuard = 1.06;
    /** Error growth per step when overshooting past VOPT. */
    double overshootRatio = 1.9;

    // ----- Timing-reduction penalty dM_ERR (Figs. 8-10) -----
    /** Condition scaling g = (1+gPe*PEC)*(1+gRet*log1p(t/nTau)). */
    double gPe = 1.0 / 15.0;
    double gRet = 0.273;
    /** dM_pre = aPre*g*(exp(x/xPre)-1) + cliff. */
    double aPre = 0.612;
    double xPre = 0.135;
    /** Precharge collapses below a minimum charge time. */
    double cliffStart = 0.55;
    double cliffSlope = 400.0;
    /** dM_eval = aEval*g*(exp(x/xEval)-1). */
    double aEval = 1.11;
    double xEval = 0.06;
    /** dM_disch = aDisch*g*(exp(x/xDisch)-1). */
    double aDisch = 0.91;
    double xDisch = 0.09;
    /** Residual BL charge couples tDISCH cuts into the precharge. */
    double dischCoupling = 0.35;
    /** Temperature penalty on dM: min(tTemp*dM, tTempCap)*(85-T)/55
     *  additional errors at temperature T. The cap reproduces
     *  Fig. 10's bound: at most 7 additional errors at 30C even
     *  under a 1-year retention age at 2K P/E cycles. */
    double tTemp = 0.33;
    double tTempCap = 7.0;

    // ----- RPT construction (Fig. 11 / Section 6.2) -----
    /** Safety margin in bits: 7 temperature + 7 outlier pages. */
    double safetyMarginBits = 14.0;
    /** Reduction grid granularity (paper steps: 6.7%). */
    double reductionStep = 1.0 / 15.0;
    /** Largest tPRE reduction ever attempted. */
    double maxReduction = 0.60;

    // ----- Retry table -----
    int retryTableSteps = 44;

    /** Worst-case operating condition prescribed by manufacturers
     *  (1-year retention [24] at 1.5K P/E cycles [73]). */
    static constexpr double worstPeKilo = 1.5;
    static constexpr double worstRetentionMonths = 12.0;
};

} // namespace ssdrr::nand

#endif // SSDRR_NAND_CALIBRATION_HH

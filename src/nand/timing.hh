/**
 * @file
 * NAND flash timing parameters (paper Table 1 and Equation 1).
 *
 * The chip-level read latency is
 *   tR = N_SENSE * (tPRE + tEVAL + tDISCH)
 * with N_SENSE = {2, 3, 2} for {LSB, CSB, MSB} pages, giving
 * tR = {78, 117, 78} us and the 90 us average quoted in Table 1.
 */

#ifndef SSDRR_NAND_TIMING_HH
#define SSDRR_NAND_TIMING_HH

#include "nand/types.hh"
#include "sim/types.hh"

namespace ssdrr::nand {

/**
 * Fractional reduction of the read-timing parameters, as applied by
 * AR2 through SET FEATURE (0 = default timing, 0.4 = 40% shorter).
 */
struct TimingReduction {
    double pre = 0.0;
    double eval = 0.0;
    double disch = 0.0;

    bool
    none() const
    {
        return pre == 0.0 && eval == 0.0 && disch == 0.0;
    }
};

/** Timing parameter set for one NAND chip generation. */
struct TimingParams {
    sim::Tick tPRE = sim::usec(24);
    sim::Tick tEVAL = sim::usec(5);
    sim::Tick tDISCH = sim::usec(10);
    sim::Tick tDMA = sim::usec(16);  ///< 16 KiB page at 1 Gb/s
    sim::Tick tECC = sim::usec(20);  ///< 72 b / 1 KiB codeword engine
    sim::Tick tPROG = sim::usec(700);
    sim::Tick tBERS = sim::msec(5);
    sim::Tick tSET = sim::usec(1);   ///< SET FEATURE
    sim::Tick tRST = sim::usec(5);   ///< RESET during read
    sim::Tick tSUS = sim::usec(20);  ///< program/erase suspend overhead
    sim::Tick tCMD = sim::nsec(200); ///< command/address cycle overhead

    /** Paper Table 1 values (the defaults above). */
    static TimingParams table1() { return TimingParams{}; }

    /** Latency of one sensing round, optionally with reduced timing. */
    sim::Tick senseLatency(const TimingReduction &r = {}) const;

    /** Chip-level page read latency tR (Equation 1). */
    sim::Tick tR(PageType t, const TimingReduction &r = {}) const;

    /** Average tR across the three page types (Table 1: ~90 us). */
    sim::Tick tRAvg(const TimingReduction &r = {}) const;

    /** rho = tR(reduced) / tR(default); Equation 5's reduction ratio. */
    double rho(const TimingReduction &r) const;
};

} // namespace ssdrr::nand

#endif // SSDRR_NAND_TIMING_HH

/**
 * @file
 * Command-level NAND chip model.
 *
 * Tracks per-die occupancy and the advanced-command state the paper
 * relies on: CACHE READ pipelining (cache register), RESET of an
 * in-flight operation, SET FEATURE read-timing overrides, and
 * program/erase suspension. The transaction scheduler drives this
 * model; the chip enforces die-level invariants (no overlapping
 * array operations) and owns suspension bookkeeping.
 */

#ifndef SSDRR_NAND_CHIP_HH
#define SSDRR_NAND_CHIP_HH

#include <cstdint>
#include <vector>

#include "nand/timing.hh"
#include "nand/types.hh"
#include "sim/callback.hh"
#include "sim/event_queue.hh"

namespace ssdrr::nand {

/** Kind of array operation occupying a die. */
enum class DieOp : std::uint8_t {
    None,
    Read,
    Program,
    Erase,
};

class Chip
{
  public:
    /** Move-only, SBO-backed: completion hooks ride the event-queue
     *  hot path and must not heap-allocate per operation. */
    using Callback = sim::InlineCallback;

    Chip(sim::EventQueue &eq, const Geometry &geom,
         const TimingParams &timing, std::uint32_t chip_id);

    const Geometry &geometry() const { return geom_; }
    const TimingParams &timing() const { return timing_; }
    std::uint32_t id() const { return chip_id_; }

    /** True if the die array is free right now. */
    bool dieIdle(std::uint32_t die) const;

    /** Operation currently occupying the die array. */
    DieOp dieOp(std::uint32_t die) const;

    /** Tick at which the die array becomes free. */
    sim::Tick dieFreeAt(std::uint32_t die) const;

    /** Current SET FEATURE timing override of a die. */
    const TimingReduction &dieTiming(std::uint32_t die) const;

    /** Effective tR for a page type honoring the die's feature state. */
    sim::Tick tR(std::uint32_t die, PageType t) const;

    /**
     * Occupy the die array for a read transaction until @p until.
     * Read transactions manage their internal sense/cache-read
     * pipeline themselves (see core::RetryController); the chip
     * records the busy window and fires @p done at @p until.
     */
    void occupyRead(std::uint32_t die, sim::Tick until, Callback done);

    /**
     * Like occupyRead(), but instead of scheduling the die-end
     * completion itself the chip hands it back: the caller MUST run
     * the returned callback exactly once at tick @p until (typically
     * inside an EventQueue::scheduleBatch with other work due at the
     * same tick, so a read whose die release and TSU completion
     * coincide costs one heap event instead of two). Safe because
     * read occupancy is never suspended or cancelled — suspension
     * applies to program/erase only — so nothing needs the EventId
     * a self-scheduled completion would have recorded.
     */
    Callback occupyReadDeferred(std::uint32_t die, sim::Tick until,
                                Callback done);

    /** Begin a program; completes after tPROG unless suspended. */
    void beginProgram(std::uint32_t die, Callback done);

    /** Begin an erase; completes after tBERS unless suspended. */
    void beginErase(std::uint32_t die, Callback done);

    /**
     * Suspend the in-flight program/erase on @p die so reads can be
     * served. @retval false if nothing suspendable is in flight.
     */
    bool suspend(std::uint32_t die);

    /** True if the die has a suspended program/erase. */
    bool hasSuspended(std::uint32_t die) const;

    /**
     * Resume the suspended operation at @p when; its completion is
     * rescheduled for the remaining time plus the resume overhead.
     */
    void resume(std::uint32_t die, sim::Tick when);

    /** Apply a SET FEATURE timing override (takes tSET on the die). */
    void setFeature(std::uint32_t die, const TimingReduction &red);

    /** Number of suspensions performed (stat). */
    std::uint64_t suspendCount() const { return suspend_count_; }

  private:
    struct Die {
        DieOp op = DieOp::None;
        sim::Tick freeAt = 0;
        sim::EventId completion = 0;
        Callback pendingDone;
        // Suspension state for program/erase.
        sim::Tick remaining = 0;
        bool suspended = false;
        DieOp suspendedOp = DieOp::None;
        Callback suspendedDone;
        TimingReduction timing;
    };

    Die &die(std::uint32_t d);
    const Die &die(std::uint32_t d) const;
    void beginArrayOp(std::uint32_t d, DieOp op, sim::Tick dur,
                      Callback done);
    void complete(std::uint32_t d);

    sim::EventQueue &eq_;
    Geometry geom_;
    TimingParams timing_;
    std::uint32_t chip_id_;
    std::vector<Die> dies_;
    std::uint64_t suspend_count_ = 0;
};

} // namespace ssdrr::nand

#endif // SSDRR_NAND_CHIP_HH

/**
 * @file
 * Calibrated NAND error model: the in-silico stand-in for the
 * paper's 160-chip characterization.
 *
 * The model exposes three layers:
 *  1. Population surfaces - mean retry-step count, max/mean
 *     final-step errors, and the added errors from read-timing
 *     reduction, all as closed forms of the operating point.
 *  2. Per-page profiles - deterministic per-(chip, block, page)
 *     process variation sampled from hash-derived streams, giving
 *     each simulated page a stable retry-count / error fingerprint
 *     (the paper maps each simulated block to a profiled real block;
 *     we map it to a profiled synthetic block).
 *  3. Read outcomes - the per-retry-step error sequence and the
 *     resulting number of retry steps for a given timing reduction,
 *     which is what the SSD-level simulator consumes.
 */

#ifndef SSDRR_NAND_ERROR_MODEL_HH
#define SSDRR_NAND_ERROR_MODEL_HH

#include <cstdint>

#include "nand/calibration.hh"
#include "nand/timing.hh"
#include "nand/types.hh"

namespace ssdrr::nand {

/** Stable error fingerprint of one physical page. */
struct PageErrorProfile {
    /** Retry steps needed with default timing (N_RR; 0 = no retry). */
    int retrySteps = 0;
    /** Raw bit errors per KiB in the final (successful) step. */
    double finalErrors = 0.0;
    /** Per-step error decay ratio r (E(k) = finalErrors*r^(N-k)). */
    double decayRatio = 2.2;

    /**
     * Memoized default-condition retry walk (extra = 0 at the
     * model's own ECC capability), filled by ErrorModel::pageProfile
     * by running the stepErrors() pow chain once per profile. The
     * per-read simulateRead() then returns these fields instead of
     * re-walking the decay chain for every read of the page.
     * Hand-built profiles (tests, benches) leave baseRetrySteps < 0
     * and take the closed-form walk — bit-identical either way,
     * since these fields are produced by that same walk.
     */
    int baseRetrySteps = -1; ///< < 0: not memoized
    bool baseSuccess = true;
    double baseLastStepErrors = 0.0;
    /** ECC capability the memoized walk was computed against. */
    double baseCapability = -1.0;
};

/** Outcome of reading a page with a given timing reduction. */
struct ReadOutcome {
    /** Retry steps actually performed (0 = first read succeeded). */
    int retrySteps = 0;
    /** True if some step brought errors within ECC capability. */
    bool success = true;
    /** Errors per KiB observed in the last step performed. */
    double lastStepErrors = 0.0;
};

class ErrorModel
{
  public:
    explicit ErrorModel(Calibration cal = {},
                        std::uint64_t seed = 0xC0FFEEull);

    const Calibration &cal() const { return cal_; }
    std::uint64_t seed() const { return seed_; }

    // ----- Layer 1: population surfaces -----

    /** Mean retry-step count N_RR at @p op (Fig. 5). */
    double meanRetrySteps(const OperatingPoint &op) const;

    /** Max errors/KiB in the final retry step, M_ERR (Fig. 7). */
    double finalErrorsMax(const OperatingPoint &op) const;

    /** Mean errors/KiB in the final retry step across pages. */
    double finalErrorsMean(const OperatingPoint &op) const;

    /** ECC-capability margin in the final step (footnote 5). */
    double eccMargin(const OperatingPoint &op) const;

    /**
     * Added errors/KiB from reduced read timing, dM_ERR
     * (Figs. 8-10). Includes the tPRE/tDISCH coupling and the
     * temperature multiplier.
     */
    double deltaErrors(const TimingReduction &red,
                       const OperatingPoint &op) const;

    /**
     * Largest tPRE reduction (on the calibration grid) such that
     * M_ERR + dM_ERR stays below capability minus the safety margin
     * at the profiling temperature of 85C (Fig. 11). Returns 0 if no
     * reduction is safe.
     */
    double maxSafePreReduction(const OperatingPoint &op) const;

    // ----- Layer 2: per-page profiles -----

    /**
     * Deterministic profile of page (@p chip, @p block, @p page) at
     * @p op. The variation factors depend only on the coordinates
     * (a weak page is weak at every operating point).
     */
    PageErrorProfile pageProfile(std::uint64_t chip, std::uint64_t block,
                                 std::uint64_t page,
                                 const OperatingPoint &op) const;

    // ----- Layer 3: read outcomes -----

    /**
     * Errors/KiB observed at step @p k (0 = initial read, k >= 1 =
     * k-th retry) for @p prof, with @p extra added errors from
     * timing reduction.
     */
    double stepErrors(const PageErrorProfile &prof, int k,
                      double extra = 0.0) const;

    /**
     * Simulate the retry walk: first step whose errors fit within
     * @p capability. @p extra is dM_ERR from timing reduction.
     */
    ReadOutcome simulateRead(const PageErrorProfile &prof,
                             double extra = 0.0,
                             double capability = -1.0) const;

  private:
    /** Condition scaling factor g(op) for timing-reduction errors. */
    double conditionScale(const OperatingPoint &op) const;
    /** Extra timing-reduction errors at @p temp_c given dM = @p d. */
    double temperaturePenalty(double d, double temp_c) const;
    double temperatureAdder(double temp_c) const;

    Calibration cal_;
    std::uint64_t seed_;
};

} // namespace ssdrr::nand

#endif // SSDRR_NAND_ERROR_MODEL_HH

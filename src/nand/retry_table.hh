/**
 * @file
 * Manufacturer read-retry table model.
 *
 * Real chips ship a prescribed sequence of VREF offset vectors; each
 * retry step applies the next entry, walking the read references
 * toward lower voltages to chase retention-induced VTH shift
 * (paper Figure 4(a)). We model the table as uniformly spaced
 * downward offsets; what matters to the system study is the number
 * of entries and the per-step granularity.
 */

#ifndef SSDRR_NAND_RETRY_TABLE_HH
#define SSDRR_NAND_RETRY_TABLE_HH

#include <cstdint>

namespace ssdrr::nand {

class RetryTable
{
  public:
    /**
     * @param steps number of retry entries the chip supports
     * @param step_mv VREF shift per entry in millivolts
     */
    explicit RetryTable(int steps = 44, double step_mv = 30.0);

    /** Number of retry entries available. */
    int steps() const { return steps_; }

    /** Per-step VREF granularity (mV). */
    double stepMv() const { return step_mv_; }

    /**
     * VREF offset applied at retry step @p k (1-based; step 0 is the
     * initial read with default VREF). Negative = shifted down.
     */
    double offsetMv(int k) const;

  private:
    int steps_;
    double step_mv_;
};

} // namespace ssdrr::nand

#endif // SSDRR_NAND_RETRY_TABLE_HH

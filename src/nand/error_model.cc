#include "nand/error_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ssdrr::nand {

namespace {

/** Errors saturate at a 50% raw bit-error rate over 8192 bits/KiB. */
constexpr double kErrorCap = 4096.0;

void
checkOp(const OperatingPoint &op)
{
    SSDRR_ASSERT(op.peKilo >= 0.0, "negative P/E cycles");
    SSDRR_ASSERT(op.retentionMonths >= 0.0, "negative retention age");
    SSDRR_ASSERT(op.temperatureC > -40.0 && op.temperatureC < 125.0,
                 "implausible temperature ", op.temperatureC);
}

} // namespace

ErrorModel::ErrorModel(Calibration cal, std::uint64_t seed)
    : cal_(cal), seed_(seed)
{
    SSDRR_ASSERT(cal_.eccCapability > 0.0, "ECC capability must be > 0");
}

double
ErrorModel::meanRetrySteps(const OperatingPoint &op) const
{
    checkOp(op);
    const double ret = std::log1p(op.retentionMonths / cal_.nTau);
    return cal_.nRet * ret * (1.0 + cal_.nPeCoup * op.peKilo) +
           cal_.nPe * op.peKilo;
}

double
ErrorModel::temperatureAdder(double temp_c) const
{
    // Lower temperature reduces channel mobility and raises RBER
    // (Section 5.1): +5 errors at 30C, +3 at 55C, relative to 85C.
    const double f = std::clamp((85.0 - temp_c) / 55.0, 0.0, 1.5);
    return cal_.mTemp * f;
}

double
ErrorModel::temperaturePenalty(double d, double temp_c) const
{
    // Additional timing-reduction errors at temperatures below the
    // 85C profiling point. Proportional to dM for small penalties
    // but capped per Fig. 10: at most tTempCap (7) extra errors at
    // 30C even under the worst profiled condition.
    const double f = std::clamp((85.0 - temp_c) / 55.0, 0.0, 1.5);
    return std::min(cal_.tTemp * d, cal_.tTempCap) * f;
}

double
ErrorModel::finalErrorsMax(const OperatingPoint &op) const
{
    checkOp(op);
    const double ret = std::log1p(op.retentionMonths / cal_.nTau);
    return cal_.mBase + cal_.mPe * op.peKilo + cal_.mRet * ret +
           temperatureAdder(op.temperatureC);
}

double
ErrorModel::finalErrorsMean(const OperatingPoint &op) const
{
    return cal_.mMeanFrac * finalErrorsMax(op);
}

double
ErrorModel::eccMargin(const OperatingPoint &op) const
{
    return cal_.eccCapability - finalErrorsMax(op);
}

double
ErrorModel::conditionScale(const OperatingPoint &op) const
{
    const double ret = std::log1p(op.retentionMonths / cal_.nTau);
    return (1.0 + cal_.gPe * op.peKilo) * (1.0 + cal_.gRet * ret);
}

double
ErrorModel::deltaErrors(const TimingReduction &red,
                        const OperatingPoint &op) const
{
    checkOp(op);
    SSDRR_ASSERT(red.pre >= 0.0 && red.pre < 1.0 && red.eval >= 0.0 &&
                     red.eval < 1.0 && red.disch >= 0.0 && red.disch < 1.0,
                 "timing reductions must be fractions in [0, 1)");
    const double g = conditionScale(op);

    // A shortened discharge leaves residual BL charge that the next
    // precharge must absorb, so it effectively shortens tPRE further
    // (Section 2.2 / Fig. 9's superlinear combined effect).
    const double x_pre_eff = red.pre + cal_.dischCoupling * red.disch;

    double d = 0.0;
    if (x_pre_eff > 0.0) {
        d += cal_.aPre * g * std::expm1(x_pre_eff / cal_.xPre);
        if (x_pre_eff > cal_.cliffStart)
            d += cal_.cliffSlope * (x_pre_eff - cal_.cliffStart);
    }
    if (red.eval > 0.0)
        d += cal_.aEval * g * std::expm1(red.eval / cal_.xEval);
    if (red.disch > 0.0)
        d += cal_.aDisch * g * std::expm1(red.disch / cal_.xDisch);

    d += temperaturePenalty(d, op.temperatureC);
    return std::min(d, kErrorCap);
}

double
ErrorModel::maxSafePreReduction(const OperatingPoint &op) const
{
    // Profiling happens at 85C; the safety margin covers lower
    // operating temperatures and outlier pages (Section 5.2.3).
    OperatingPoint profile_op = op;
    profile_op.temperatureC = 85.0;

    const double budget =
        cal_.eccCapability - cal_.safetyMarginBits -
        finalErrorsMax(profile_op);
    if (budget <= 0.0)
        return 0.0;

    const int max_k =
        static_cast<int>(std::round(cal_.maxReduction / cal_.reductionStep));
    for (int k = max_k; k >= 1; --k) {
        const double x = cal_.reductionStep * k;
        TimingReduction red;
        red.pre = x;
        if (deltaErrors(red, profile_op) <= budget)
            return x;
    }
    return 0.0;
}

PageErrorProfile
ErrorModel::pageProfile(std::uint64_t chip, std::uint64_t block,
                        std::uint64_t page, const OperatingPoint &op) const
{
    checkOp(op);
    // Stable per-page variation streams. Two independent factors:
    // how far VOPT drifts (retry count) and how dirty the page is at
    // VOPT (final errors).
    sim::Rng rng(sim::hashStream(seed_, chip, block, page));
    const double n_var = rng.logNormal(0.0, cal_.nSigma);
    const double e_var = rng.logNormal(0.0, cal_.mSigma);
    const double jitter = rng.normal(0.0, 0.35);

    PageErrorProfile prof;

    const double n_mean = meanRetrySteps(op);
    double n = n_mean * n_var + jitter;
    prof.retrySteps = std::clamp(static_cast<int>(std::lround(n)), 0,
                                 cal_.retryTableSteps);

    const double e_max = finalErrorsMax(op);
    double e = finalErrorsMean(op) * e_var;
    prof.finalErrors = std::clamp(e, 0.5, e_max);

    // Enforce the Fig. 4b invariant against the chip's design-point
    // ECC: the next-to-last step must fail a 72-bit code, i.e.,
    // E(N-1) = finalErrors * r > designCapability. A stronger
    // evaluated ECC can then legitimately stop the walk a step
    // earlier; a weaker one walks further (or fails).
    prof.decayRatio =
        std::max(cal_.decayRatio,
                 cal_.failGuard * cal_.designCapability /
                     prof.finalErrors);

    // Memoize the default-condition retry walk once per profile:
    // simulateRead() below is called for every read of the page and
    // would otherwise re-run the stepErrors() pow chain each time.
    const ReadOutcome base = simulateRead(prof);
    prof.baseRetrySteps = base.retrySteps;
    prof.baseSuccess = base.success;
    prof.baseLastStepErrors = base.lastStepErrors;
    prof.baseCapability = cal_.eccCapability;
    return prof;
}

double
ErrorModel::stepErrors(const PageErrorProfile &prof, int k,
                       double extra) const
{
    SSDRR_ASSERT(k >= 0, "negative retry step");
    SSDRR_ASSERT(prof.finalErrors > 0.0, "profile not initialized");
    double base;
    if (k <= prof.retrySteps) {
        // Walking toward VOPT: errors decay geometrically and reach
        // the final-step floor at k == retrySteps.
        const double dist = static_cast<double>(prof.retrySteps - k);
        base = prof.finalErrors *
               std::pow(prof.decayRatio, std::min(dist, 40.0));
    } else {
        // Overshooting past VOPT: errors grow again.
        const double dist = static_cast<double>(k - prof.retrySteps);
        base = prof.finalErrors *
               std::pow(cal_.overshootRatio, std::min(dist, 40.0));
    }
    return std::min(base + extra, kErrorCap);
}

ReadOutcome
ErrorModel::simulateRead(const PageErrorProfile &prof, double extra,
                         double capability) const
{
    const double cap = capability < 0.0 ? cal_.eccCapability : capability;
    if (prof.baseRetrySteps >= 0 && extra == 0.0 &&
        cap == prof.baseCapability) {
        // Default-condition walk memoized at profile construction
        // (the common case: every non-adaptive step decision).
        return ReadOutcome{prof.baseRetrySteps, prof.baseSuccess,
                           prof.baseLastStepErrors};
    }
    ReadOutcome out;
    for (int k = 0; k <= cal_.retryTableSteps; ++k) {
        out.retrySteps = k;
        out.lastStepErrors = stepErrors(prof, k, extra);
        if (out.lastStepErrors <= cap) {
            out.success = true;
            return out;
        }
    }
    out.success = false;
    return out;
}

} // namespace ssdrr::nand

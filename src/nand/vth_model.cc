#include "nand/vth_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace ssdrr::nand {

namespace {

// Fresh 48-layer 3D TLC distribution parameters (volts). The erased
// state is wide and negative; programmed states are tight and evenly
// spaced, as in Figure 3(b).
constexpr double kErasedMean = -2.5;
constexpr double kErasedSigma = 0.48;
constexpr double kP1Mean = 0.0;
constexpr double kStateGap = 0.8;
constexpr double kProgSigma = 0.11;

// Aging coefficients. Retention shifts each programmed state toward
// the neutral level proportionally to its charge, on a log time
// scale (Section 2.3: retention loss dominates in 3D NAND).
constexpr double kNeutral = -3.0;
constexpr double kShiftPerLog = 0.035;
constexpr double kShiftPeCoupling = 0.10; // per 1K P/E cycles
constexpr double kWidenPerLog = 0.06;
constexpr double kWidenPerPeKilo = 0.22;
constexpr double kRetTau = 1.5; // months

double
gaussTail(double x)
{
    // P(N(0,1) > x)
    return 0.5 * std::erfc(x / std::sqrt(2.0));
}

} // namespace

const std::array<std::uint8_t, VthModel::kStates> VthModel::kGrayCode = {
    // (MSB << 2) | (CSB << 1) | LSB, per Figure 3(b):
    // E=111, P1=110, P2=100, P3=000, P4=010, P5=011, P6=001, P7=101.
    // Bit flips between adjacent states: LSB at boundaries {0, 4},
    // CSB at {1, 3, 5}, MSB at {2, 6} - matching N_SENSE = {2, 3, 2}.
    0b111, 0b110, 0b100, 0b000, 0b010, 0b011, 0b001, 0b101};

VthModel::VthModel()
{
    mean_[0] = kErasedMean;
    sigma_[0] = kErasedSigma;
    for (int s = 1; s < kStates; ++s) {
        mean_[s] = kP1Mean + kStateGap * (s - 1);
        sigma_[s] = kProgSigma;
    }
}

void
VthModel::age(const OperatingPoint &op)
{
    const double logt = std::log1p(op.retentionMonths / kRetTau);
    const double pe = op.peKilo;
    for (int s = 1; s < kStates; ++s) {
        const double charge = mean_[s] - kNeutral;
        mean_[s] -= kShiftPerLog * charge * logt *
                    (1.0 + kShiftPeCoupling * pe);
        sigma_[s] *= (1.0 + kWidenPerLog * logt) *
                     (1.0 + kWidenPerPeKilo * pe);
    }
    // The erased state drifts slightly upward with disturb/cycling.
    mean_[0] += 0.02 * pe;
    sigma_[0] *= (1.0 + 0.05 * pe);
}

double
VthModel::stateMean(int state) const
{
    SSDRR_ASSERT(state >= 0 && state < kStates, "bad state ", state);
    return mean_[state];
}

double
VthModel::stateSigma(int state) const
{
    SSDRR_ASSERT(state >= 0 && state < kStates, "bad state ", state);
    return sigma_[state];
}

double
VthModel::defaultVref(int b) const
{
    SSDRR_ASSERT(b >= 0 && b < kBoundaries, "bad boundary ", b);
    // Fresh-distribution midpoints, like the factory default VREF.
    VthModel fresh;
    return 0.5 * (fresh.mean_[b] + fresh.mean_[b + 1]);
}

double
VthModel::boundaryErrorProb(int b, double vref) const
{
    SSDRR_ASSERT(b >= 0 && b < kBoundaries, "bad boundary ", b);
    // A cell in state b read as > vref, or a cell in state b+1 read
    // as < vref; each state holds 1/8 of random-data cells.
    const double lo = gaussTail((vref - mean_[b]) / sigma_[b]);
    const double hi = gaussTail((mean_[b + 1] - vref) / sigma_[b + 1]);
    return (lo + hi) / static_cast<double>(kStates);
}

const std::vector<int> &
VthModel::boundariesOf(PageType t)
{
    // Derived from kGrayCode: boundary b is sensed by the page whose
    // bit flips between states b and b+1.
    static const std::vector<int> lsb = {0, 4};
    static const std::vector<int> csb = {1, 3, 5};
    static const std::vector<int> msb = {2, 6};
    switch (t) {
      case PageType::LSB:
        return lsb;
      case PageType::CSB:
        return csb;
      case PageType::MSB:
        return msb;
    }
    return csb;
}

int
VthModel::bitOf(PageType t, int state)
{
    SSDRR_ASSERT(state >= 0 && state < kStates, "bad state ", state);
    const std::uint8_t code = kGrayCode[state];
    switch (t) {
      case PageType::MSB:
        return (code >> 2) & 1;
      case PageType::CSB:
        return (code >> 1) & 1;
      case PageType::LSB:
        return code & 1;
    }
    return 0;
}

double
VthModel::pageRber(PageType t, double offset_v) const
{
    double p = 0.0;
    for (int b : boundariesOf(t))
        p += boundaryErrorProb(b, defaultVref(b) + offset_v);
    return p;
}

double
VthModel::optimalVref(int b) const
{
    // Golden-section search between adjacent means; the overlap
    // integrand is unimodal in vref.
    double lo = mean_[b];
    double hi = mean_[b + 1];
    if (lo > hi)
        std::swap(lo, hi);
    constexpr double kGr = 0.6180339887498949;
    double a = lo, c = hi;
    double x1 = c - kGr * (c - a);
    double x2 = a + kGr * (c - a);
    double f1 = boundaryErrorProb(b, x1);
    double f2 = boundaryErrorProb(b, x2);
    for (int it = 0; it < 80 && (c - a) > 1e-6; ++it) {
        if (f1 < f2) {
            c = x2;
            x2 = x1;
            f2 = f1;
            x1 = c - kGr * (c - a);
            f1 = boundaryErrorProb(b, x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + kGr * (c - a);
            f2 = boundaryErrorProb(b, x2);
        }
    }
    return 0.5 * (a + c);
}

double
VthModel::pageRberAtOpt(PageType t) const
{
    double p = 0.0;
    for (int b : boundariesOf(t))
        p += boundaryErrorProb(b, optimalVref(b));
    return p;
}

} // namespace ssdrr::nand

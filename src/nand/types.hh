/**
 * @file
 * Basic NAND flash types: page kinds, operating conditions,
 * physical geometry and addresses.
 */

#ifndef SSDRR_NAND_TYPES_HH
#define SSDRR_NAND_TYPES_HH

#include <cstdint>

#include "sim/logging.hh"

namespace ssdrr::nand {

/**
 * Bit position of a TLC page within its wordline.
 *
 * TLC NAND stores three logical pages per wordline. The paper's
 * footnote 14: N_SENSE = {2, 3, 2} for {LSB, CSB, MSB} pages under
 * the standard Gray coding (Figure 3(b)).
 */
enum class PageType : std::uint8_t { LSB = 0, CSB = 1, MSB = 2 };

/** Number of sensing rounds needed to read a page of this type. */
constexpr int
nSense(PageType t)
{
    switch (t) {
      case PageType::LSB:
        return 2;
      case PageType::CSB:
        return 3;
      case PageType::MSB:
        return 2;
    }
    return 3;
}

/** Page index within a block -> page type (LSB/CSB/MSB interleaved). */
constexpr PageType
pageTypeOf(std::uint32_t page_in_block)
{
    return static_cast<PageType>(page_in_block % 3);
}

constexpr const char *
pageTypeName(PageType t)
{
    switch (t) {
      case PageType::LSB:
        return "LSB";
      case PageType::CSB:
        return "CSB";
      case PageType::MSB:
        return "MSB";
    }
    return "?";
}

/**
 * Operating condition of a page at read time.
 *
 * The paper characterizes error behaviour over P/E-cycle count,
 * retention age and operating temperature (Sections 4-5).
 */
struct OperatingPoint {
    /** Program/erase cycles, in thousands (paper: 0, 1K, 2K). */
    double peKilo = 0.0;
    /** Effective retention age at 30C, in months (paper: 0..12). */
    double retentionMonths = 0.0;
    /** Operating temperature in Celsius (paper: 30, 55, 85). */
    double temperatureC = 85.0;
};

/** Geometry of one NAND flash chip (paper Section 7.1 / Figure 1). */
struct Geometry {
    std::uint32_t dies = 4;
    std::uint32_t planesPerDie = 2;
    std::uint32_t blocksPerPlane = 1888;
    std::uint32_t pagesPerBlock = 576;
    std::uint32_t pageBytes = 16 * 1024;

    std::uint64_t
    blocksPerDie() const
    {
        return static_cast<std::uint64_t>(planesPerDie) * blocksPerPlane;
    }

    std::uint64_t
    pagesPerDie() const
    {
        return blocksPerDie() * pagesPerBlock;
    }

    std::uint64_t
    totalPages() const
    {
        return static_cast<std::uint64_t>(dies) * pagesPerDie();
    }

    std::uint64_t
    totalBytes() const
    {
        return totalPages() * pageBytes;
    }
};

/** Physical page address within one chip. */
struct PhysAddr {
    std::uint32_t die = 0;
    std::uint32_t plane = 0;
    std::uint32_t block = 0; ///< block within plane
    std::uint32_t page = 0;  ///< page within block

    /** Flat block id within the chip (for hashing / tables). */
    std::uint64_t
    flatBlock(const Geometry &g) const
    {
        return (static_cast<std::uint64_t>(die) * g.planesPerDie + plane) *
                   g.blocksPerPlane +
               block;
    }

    /** Flat page id within the chip. */
    std::uint64_t
    flatPage(const Geometry &g) const
    {
        return flatBlock(g) * g.pagesPerBlock + page;
    }

    PageType type() const { return pageTypeOf(page); }

    bool
    operator==(const PhysAddr &o) const
    {
        return die == o.die && plane == o.plane && block == o.block &&
               page == o.page;
    }
};

} // namespace ssdrr::nand

#endif // SSDRR_NAND_TYPES_HH

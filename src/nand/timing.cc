#include "nand/timing.hh"

namespace ssdrr::nand {

sim::Tick
TimingParams::senseLatency(const TimingReduction &r) const
{
    SSDRR_ASSERT(r.pre >= 0.0 && r.pre < 1.0, "bad tPRE reduction ", r.pre);
    SSDRR_ASSERT(r.eval >= 0.0 && r.eval < 1.0, "bad tEVAL reduction");
    SSDRR_ASSERT(r.disch >= 0.0 && r.disch < 1.0, "bad tDISCH reduction");
    const double pre = static_cast<double>(tPRE) * (1.0 - r.pre);
    const double ev = static_cast<double>(tEVAL) * (1.0 - r.eval);
    const double di = static_cast<double>(tDISCH) * (1.0 - r.disch);
    return static_cast<sim::Tick>(pre + ev + di);
}

sim::Tick
TimingParams::tR(PageType t, const TimingReduction &r) const
{
    return static_cast<sim::Tick>(nSense(t)) * senseLatency(r);
}

sim::Tick
TimingParams::tRAvg(const TimingReduction &r) const
{
    // LSB + CSB + MSB = (2 + 3 + 2) senses over three page types.
    return (tR(PageType::LSB, r) + tR(PageType::CSB, r) +
            tR(PageType::MSB, r)) /
           3;
}

double
TimingParams::rho(const TimingReduction &r) const
{
    return static_cast<double>(senseLatency(r)) /
           static_cast<double>(senseLatency());
}

} // namespace ssdrr::nand

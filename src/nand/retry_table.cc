#include "nand/retry_table.hh"

#include "sim/logging.hh"

namespace ssdrr::nand {

RetryTable::RetryTable(int steps, double step_mv)
    : steps_(steps), step_mv_(step_mv)
{
    SSDRR_ASSERT(steps > 0, "retry table needs at least one entry");
    SSDRR_ASSERT(step_mv > 0.0, "retry step granularity must be positive");
}

double
RetryTable::offsetMv(int k) const
{
    SSDRR_ASSERT(k >= 0 && k <= steps_, "retry step out of range: ", k);
    return -step_mv_ * static_cast<double>(k);
}

} // namespace ssdrr::nand

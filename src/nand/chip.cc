#include "nand/chip.hh"

#include "sim/logging.hh"

namespace ssdrr::nand {

Chip::Chip(sim::EventQueue &eq, const Geometry &geom,
           const TimingParams &timing, std::uint32_t chip_id)
    : eq_(eq), geom_(geom), timing_(timing), chip_id_(chip_id),
      dies_(geom.dies)
{
}

Chip::Die &
Chip::die(std::uint32_t d)
{
    SSDRR_ASSERT(d < dies_.size(), "die out of range: ", d);
    return dies_[d];
}

const Chip::Die &
Chip::die(std::uint32_t d) const
{
    SSDRR_ASSERT(d < dies_.size(), "die out of range: ", d);
    return dies_[d];
}

bool
Chip::dieIdle(std::uint32_t d) const
{
    return die(d).op == DieOp::None;
}

DieOp
Chip::dieOp(std::uint32_t d) const
{
    return die(d).op;
}

sim::Tick
Chip::dieFreeAt(std::uint32_t d) const
{
    const Die &s = die(d);
    return s.op == DieOp::None ? eq_.now() : s.freeAt;
}

const TimingReduction &
Chip::dieTiming(std::uint32_t d) const
{
    return die(d).timing;
}

sim::Tick
Chip::tR(std::uint32_t d, PageType t) const
{
    return timing_.tR(t, die(d).timing);
}

void
Chip::beginArrayOp(std::uint32_t d, DieOp op, sim::Tick dur, Callback done)
{
    Die &s = die(d);
    SSDRR_ASSERT(s.op == DieOp::None, "die ", d, " of chip ", chip_id_,
                 " already busy with op ", static_cast<int>(s.op));
    s.op = op;
    s.freeAt = eq_.now() + dur;
    s.pendingDone = std::move(done);
    s.completion = eq_.schedule(s.freeAt, [this, d] { complete(d); });
}

void
Chip::complete(std::uint32_t d)
{
    Die &s = die(d);
    SSDRR_ASSERT(s.op != DieOp::None, "spurious completion on die ", d);
    s.op = DieOp::None;
    s.completion = 0;
    Callback cb = std::move(s.pendingDone);
    s.pendingDone = nullptr;
    if (cb)
        cb();
}

void
Chip::occupyRead(std::uint32_t d, sim::Tick until, Callback done)
{
    SSDRR_ASSERT(until >= eq_.now(), "read window ends in the past");
    beginArrayOp(d, DieOp::Read, until - eq_.now(), std::move(done));
}

Chip::Callback
Chip::occupyReadDeferred(std::uint32_t d, sim::Tick until, Callback done)
{
    SSDRR_ASSERT(until >= eq_.now(), "read window ends in the past");
    Die &s = die(d);
    SSDRR_ASSERT(s.op == DieOp::None, "die ", d, " of chip ", chip_id_,
                 " already busy with op ", static_cast<int>(s.op));
    s.op = DieOp::Read;
    s.freeAt = until;
    s.pendingDone = std::move(done);
    // No completion EventId: reads are never suspended, so nothing
    // would ever cancel it. complete() tolerates the 0 handle.
    s.completion = 0;
    return [this, d] { complete(d); };
}

void
Chip::beginProgram(std::uint32_t d, Callback done)
{
    beginArrayOp(d, DieOp::Program, timing_.tPROG, std::move(done));
}

void
Chip::beginErase(std::uint32_t d, Callback done)
{
    beginArrayOp(d, DieOp::Erase, timing_.tBERS, std::move(done));
}

bool
Chip::suspend(std::uint32_t d)
{
    Die &s = die(d);
    if (s.op != DieOp::Program && s.op != DieOp::Erase)
        return false;
    SSDRR_ASSERT(!s.suspended, "die ", d, " already holds a suspended op");
    const bool cancelled = eq_.cancel(s.completion);
    SSDRR_ASSERT(cancelled, "could not cancel completion for suspend");
    s.remaining = s.freeAt - eq_.now();
    s.suspended = true;
    s.suspendedOp = s.op;
    s.suspendedDone = std::move(s.pendingDone);
    s.pendingDone = nullptr;
    s.op = DieOp::None;
    s.completion = 0;
    ++suspend_count_;
    return true;
}

bool
Chip::hasSuspended(std::uint32_t d) const
{
    return die(d).suspended;
}

void
Chip::resume(std::uint32_t d, sim::Tick when)
{
    Die &s = die(d);
    SSDRR_ASSERT(s.suspended, "resume without a suspended op on die ", d);
    SSDRR_ASSERT(s.op == DieOp::None, "die busy at resume time");
    SSDRR_ASSERT(when >= eq_.now(), "resume in the past");
    const DieOp op = s.suspendedOp;
    Callback done = std::move(s.suspendedDone);
    const sim::Tick dur = s.remaining + timing_.tSUS;
    s.suspended = false;
    s.suspendedOp = DieOp::None;
    s.suspendedDone = nullptr;
    s.remaining = 0;
    if (when == eq_.now()) {
        beginArrayOp(d, op, dur, std::move(done));
    } else {
        eq_.schedule(when,
                     [this, d, op, dur, done = std::move(done)]() mutable {
                         beginArrayOp(d, op, dur, std::move(done));
                     });
    }
}

void
Chip::setFeature(std::uint32_t d, const TimingReduction &red)
{
    Die &s = die(d);
    SSDRR_ASSERT(red.pre >= 0.0 && red.pre < 1.0, "bad feature value");
    s.timing = red;
}

} // namespace ssdrr::nand

/**
 * @file
 * Memoization cache in front of ErrorModel::pageProfile.
 *
 * pageProfile() is pure but expensive: a hash-stream seed, two
 * log-normal draws (four transcendental calls via Box-Muller), a
 * normal draw, and the step-error table fill. The SSD layer calls it
 * once per read transaction, and real workloads re-read hot pages
 * constantly, so an open-addressing cache keyed by the packed
 * (chip, block, page) coordinates removes the recomputation from the
 * read hot path.
 *
 * Correctness does not depend on invalidation: every entry stores
 * the OperatingPoint it was computed at, and a lookup whose op
 * differs (block erased and reprogrammed, retention age advanced,
 * temperature changed) recomputes and replaces the entry. Explicit
 * invalidateBlock() exists as hygiene so erased blocks do not pin
 * dead entries, and clear() handles wholesale operating-point
 * changes.
 */

#ifndef SSDRR_NAND_PAGE_PROFILE_CACHE_HH
#define SSDRR_NAND_PAGE_PROFILE_CACHE_HH

#include <cstdint>

#include "nand/error_model.hh"
#include "nand/types.hh"
#include "sim/zeroed_array.hh"

namespace ssdrr::nand {

class PageProfileCache
{
  public:
    /**
     * @param model profile source (must outlive the cache)
     * @param capacity slot count; rounded up to a power of two.
     *        0 disables caching (every get() recomputes).
     */
    explicit PageProfileCache(const ErrorModel &model,
                              std::size_t capacity = kDefaultCapacity);

    static constexpr std::size_t kDefaultCapacity = 1 << 14;
    /** Linear-probe window before an entry is evicted. */
    static constexpr std::size_t kProbes = 4;

    /**
     * Profile of page (@p chip, @p block, @p page) at @p op;
     * bit-identical to model().pageProfile(...). The reference is
     * valid until the next get() (callers copy into their Txn).
     */
    const PageErrorProfile &get(std::uint64_t chip, std::uint64_t block,
                                std::uint64_t page,
                                const OperatingPoint &op);

    /** Drop every cached page of (@p chip, @p block) (erase path). */
    void invalidateBlock(std::uint64_t chip, std::uint64_t block);

    /** Drop everything (wholesale operating-point change). */
    void clear();

    const ErrorModel &model() const { return model_; }
    std::size_t capacity() const { return entries_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t invalidations() const { return invalidations_; }

  private:
    /**
     * Slot entry. `tag` is the packed key + 1 so that 0 means
     * "empty": the table is a calloc-backed ZeroedArray, making a
     * multi-MiB cache cost nothing to construct (it used to be a
     * value-initializing vector sweep, a visible slice of every
     * scenario's setup).
     */
    struct Entry {
        static constexpr std::uint64_t kEmptyTag = 0;
        std::uint64_t tag;
        OperatingPoint op;
        PageErrorProfile prof;
    };

    static std::uint64_t packKey(std::uint64_t chip, std::uint64_t block,
                                 std::uint64_t page);
    static bool sameOp(const OperatingPoint &a, const OperatingPoint &b);

    const ErrorModel &model_;
    sim::ZeroedArray<Entry> entries_;
    std::uint64_t mask_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t invalidations_ = 0;
    /** Scratch for the disabled-cache path. */
    PageErrorProfile scratch_;
};

} // namespace ssdrr::nand

#endif // SSDRR_NAND_PAGE_PROFILE_CACHE_HH

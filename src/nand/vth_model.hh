/**
 * @file
 * Physical threshold-voltage distribution model for 3D TLC NAND.
 *
 * Eight Gaussian VTH states per cell (Figure 3(b)); retention loss
 * shifts the programmed states downward and widens them, P/E cycling
 * widens them further (Section 2.3). The Gray code of Figure 3(b)
 * determines which read-reference boundaries each page type senses:
 * LSB -> {V0, V4}, CSB -> {V1, V3, V5}, MSB -> {V2, V6}, matching
 * N_SENSE = {2, 3, 2}.
 *
 * This model backs the distribution-level studies (Figure 4(a)-like
 * sweeps, VOPT search, retry-table walks in voltage space); the
 * system-level simulator uses the calibrated ErrorModel instead.
 */

#ifndef SSDRR_NAND_VTH_MODEL_HH
#define SSDRR_NAND_VTH_MODEL_HH

#include <array>
#include <vector>

#include "nand/types.hh"

namespace ssdrr::nand {

class VthModel
{
  public:
    static constexpr int kStates = 8;
    static constexpr int kBoundaries = 7;

    /** Gray coding of Figure 3(b): state -> (MSB, LSB, CSB) bits. */
    static const std::array<std::uint8_t, kStates> kGrayCode;

    VthModel();

    /**
     * Age the distributions: retention loss shifts programmed states
     * down (proportionally to their level) and widens them; P/E
     * cycling widens and couples with retention.
     */
    void age(const OperatingPoint &op);

    /** Mean VTH of a state (volts). */
    double stateMean(int state) const;
    /** Std-dev of a state (volts). */
    double stateSigma(int state) const;

    /** Default (fresh-optimal) read reference for boundary b. */
    double defaultVref(int b) const;

    /**
     * Probability that a random cell is misread across boundary
     * @p b when sensing with reference voltage @p vref. Only
     * adjacent-state overlap is considered.
     */
    double boundaryErrorProb(int b, double vref) const;

    /**
     * RBER of a page of type @p t when each of its boundaries is
     * sensed at default VREF + @p offset_v.
     */
    double pageRber(PageType t, double offset_v) const;

    /** Numerically locate VOPT of boundary @p b (golden search). */
    double optimalVref(int b) const;

    /** RBER of a page when every boundary sits at its own VOPT. */
    double pageRberAtOpt(PageType t) const;

    /** Boundaries sensed by a page type (Gray code derived). */
    static const std::vector<int> &boundariesOf(PageType t);

    /** Bit of @p page type stored by a cell in @p state. */
    static int bitOf(PageType t, int state);

  private:
    std::array<double, kStates> mean_;
    std::array<double, kStates> sigma_;
};

} // namespace ssdrr::nand

#endif // SSDRR_NAND_VTH_MODEL_HH

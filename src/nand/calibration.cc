#include "nand/calibration.hh"

// Calibration is a plain constant aggregate; this translation unit
// exists so the header stays a cheap include while leaving room for
// future file-based calibration loading.

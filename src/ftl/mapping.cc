#include "ftl/mapping.hh"

namespace ssdrr::ftl {

PageMap::PageMap(std::uint64_t logical_pages)
    : l2p_(logical_pages),
      chunk_dirty_(((logical_pages >> kChunkShift) + 64) / 64, 0)
{
}

void
PageMap::setStripedDefault(std::uint32_t planes,
                           std::uint64_t plane_stride)
{
    SSDRR_ASSERT(mapped_ == 0, "striped default over a used map");
    SSDRR_ASSERT(planes > 0 && (planes & (planes - 1)) == 0,
                 "striped default needs a power-of-two plane count");
    striped_ = true;
    plane_mask_ = planes - 1;
    plane_shift_ = 0;
    while ((std::uint64_t{1} << plane_shift_) < planes)
        ++plane_shift_;
    plane_stride_ = plane_stride;
    mapped_ = l2p_.size();
}

} // namespace ssdrr::ftl

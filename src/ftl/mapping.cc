#include "ftl/mapping.hh"

#include "sim/logging.hh"

namespace ssdrr::ftl {

PageMap::PageMap(std::uint64_t logical_pages)
    : l2p_(logical_pages, kInvalidPpn)
{
}

bool
PageMap::mapped(Lpn lpn) const
{
    SSDRR_ASSERT(lpn < l2p_.size(), "LPN out of range: ", lpn);
    return l2p_[lpn] != kInvalidPpn;
}

std::uint64_t
PageMap::lookup(Lpn lpn) const
{
    SSDRR_ASSERT(lpn < l2p_.size(), "LPN out of range: ", lpn);
    SSDRR_ASSERT(l2p_[lpn] != kInvalidPpn, "reading unmapped LPN ", lpn);
    return l2p_[lpn];
}

void
PageMap::bind(Lpn lpn, std::uint64_t fp)
{
    SSDRR_ASSERT(lpn < l2p_.size(), "LPN out of range: ", lpn);
    if (l2p_[lpn] == kInvalidPpn)
        ++mapped_;
    l2p_[lpn] = fp;
}

std::uint64_t
PageMap::unbind(Lpn lpn)
{
    SSDRR_ASSERT(lpn < l2p_.size(), "LPN out of range: ", lpn);
    const std::uint64_t old = l2p_[lpn];
    SSDRR_ASSERT(old != kInvalidPpn, "unbinding unmapped LPN ", lpn);
    l2p_[lpn] = kInvalidPpn;
    --mapped_;
    return old;
}

} // namespace ssdrr::ftl

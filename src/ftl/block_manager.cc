#include "ftl/block_manager.hh"

#include "sim/logging.hh"

namespace ssdrr::ftl {

BlockManager::BlockManager(const AddressLayout &layout, double base_pe_kilo)
    : layout_(layout), base_pe_kilo_(base_pe_kilo),
      planes_(layout.totalPlanes())
{
    SSDRR_ASSERT(base_pe_kilo >= 0.0, "negative base P/E cycles");
    for (auto &pl : planes_) {
        pl.blocks.resize(layout_.blocksPerPlane);
        for (std::uint32_t b = 0; b < layout_.blocksPerPlane; ++b) {
            Block &blk = pl.blocks[b];
            blk.owner.assign(layout_.pagesPerBlock, kInvalidLpn);
            blk.epoch.assign(layout_.pagesPerBlock, 0);
            pl.freeList.push_back(b);
        }
    }
}

BlockManager::Block &
BlockManager::block(std::uint32_t plane, std::uint32_t b)
{
    SSDRR_ASSERT(plane < planes_.size(), "plane out of range: ", plane);
    SSDRR_ASSERT(b < layout_.blocksPerPlane, "block out of range: ", b);
    return planes_[plane].blocks[b];
}

const BlockManager::Block &
BlockManager::block(std::uint32_t plane, std::uint32_t b) const
{
    SSDRR_ASSERT(plane < planes_.size(), "plane out of range: ", plane);
    SSDRR_ASSERT(b < layout_.blocksPerPlane, "block out of range: ", b);
    return planes_[plane].blocks[b];
}

void
BlockManager::openFrontier(Plane &pl)
{
    SSDRR_ASSERT(!pl.freeList.empty(),
                 "plane out of free blocks (GC failed to keep up)");
    pl.frontier = pl.freeList.front();
    pl.freeList.pop_front();
    pl.blocks[pl.frontier].inFreeList = false;
}

Ppn
BlockManager::allocate(std::uint32_t plane, Lpn lpn, sim::Tick epoch)
{
    SSDRR_ASSERT(plane < planes_.size(), "plane out of range: ", plane);
    Plane &pl = planes_[plane];
    if (pl.frontier == kNoFrontier)
        openFrontier(pl);

    Block &blk = pl.blocks[pl.frontier];
    SSDRR_ASSERT(blk.writePtr < layout_.pagesPerBlock,
                 "frontier block already full");

    Ppn ppn{plane, pl.frontier, blk.writePtr};
    blk.owner[blk.writePtr] = lpn;
    blk.epoch[blk.writePtr] = epoch;
    ++blk.valid;
    ++blk.writePtr;
    if (blk.writePtr == layout_.pagesPerBlock)
        pl.frontier = kNoFrontier;
    return ppn;
}

std::size_t
BlockManager::freeBlocks(std::uint32_t plane) const
{
    SSDRR_ASSERT(plane < planes_.size(), "plane out of range: ", plane);
    return planes_[plane].freeList.size();
}

void
BlockManager::invalidate(const Ppn &ppn)
{
    Block &blk = block(ppn.plane, ppn.block);
    SSDRR_ASSERT(ppn.page < layout_.pagesPerBlock, "page out of range");
    SSDRR_ASSERT(blk.owner[ppn.page] != kInvalidLpn,
                 "double invalidate of plane ", ppn.plane, " block ",
                 ppn.block, " page ", ppn.page);
    blk.owner[ppn.page] = kInvalidLpn;
    SSDRR_ASSERT(blk.valid > 0, "valid-count underflow");
    --blk.valid;
}

bool
BlockManager::isValid(const Ppn &ppn) const
{
    return block(ppn.plane, ppn.block).owner[ppn.page] != kInvalidLpn;
}

Lpn
BlockManager::lpnOf(const Ppn &ppn) const
{
    return block(ppn.plane, ppn.block).owner[ppn.page];
}

std::uint32_t
BlockManager::validCount(std::uint32_t plane, std::uint32_t b) const
{
    return block(plane, b).valid;
}

bool
BlockManager::pickVictim(std::uint32_t plane, std::uint32_t &block_out) const
{
    SSDRR_ASSERT(plane < planes_.size(), "plane out of range: ", plane);
    const Plane &pl = planes_[plane];
    bool found = false;
    std::uint32_t best_valid = 0;
    for (std::uint32_t b = 0; b < layout_.blocksPerPlane; ++b) {
        const Block &blk = pl.blocks[b];
        if (blk.inFreeList || b == pl.frontier)
            continue;
        if (blk.writePtr < layout_.pagesPerBlock)
            continue; // only fully-written blocks are GC candidates
        if (!found || blk.valid < best_valid) {
            found = true;
            best_valid = blk.valid;
            block_out = b;
        }
    }
    return found;
}

void
BlockManager::erase(std::uint32_t plane, std::uint32_t b)
{
    Block &blk = block(plane, b);
    SSDRR_ASSERT(!blk.inFreeList, "erasing a free block");
    SSDRR_ASSERT(blk.valid == 0, "erasing block with ", blk.valid,
                 " valid pages");
    blk.owner.assign(layout_.pagesPerBlock, kInvalidLpn);
    blk.epoch.assign(layout_.pagesPerBlock, 0);
    blk.writePtr = 0;
    ++blk.eraseCount;
    ++total_erases_;
    blk.inFreeList = true;
    planes_[plane].freeList.push_back(b);
}

double
BlockManager::peKilo(std::uint32_t plane, std::uint32_t b) const
{
    return base_pe_kilo_ +
           static_cast<double>(block(plane, b).eraseCount) / 1000.0;
}

sim::Tick
BlockManager::epochOf(const Ppn &ppn) const
{
    return block(ppn.plane, ppn.block).epoch[ppn.page];
}

} // namespace ssdrr::ftl

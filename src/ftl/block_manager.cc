#include "ftl/block_manager.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ssdrr::ftl {

BlockManager::BlockManager(const AddressLayout &layout, double base_pe_kilo)
    : layout_(layout), base_pe_kilo_(base_pe_kilo),
      planes_(layout.totalPlanes())
{
    SSDRR_ASSERT(base_pe_kilo >= 0.0, "negative base P/E cycles");
    const std::uint64_t pages_per_plane =
        static_cast<std::uint64_t>(layout_.blocksPerPlane) *
        layout_.pagesPerBlock;
    for (auto &pl : planes_) {
        pl.blocks.resize(layout_.blocksPerPlane);
        // Zero pages from the allocator: raw 0 already means "dead,
        // base epoch", so nothing is written until pages are used.
        pl.owner.assign(pages_per_plane);
        pl.epoch.assign(pages_per_plane);
        pl.epochDirty.assign((layout_.blocksPerPlane + 63) / 64, 0);
        for (std::uint32_t b = 0; b < layout_.blocksPerPlane; ++b)
            pl.freeList.push_back(b);
    }
}

BlockManager::Block &
BlockManager::block(std::uint32_t plane, std::uint32_t b)
{
    SSDRR_ASSERT(plane < planes_.size(), "plane out of range: ", plane);
    SSDRR_ASSERT(b < layout_.blocksPerPlane, "block out of range: ", b);
    return planes_[plane].blocks[b];
}

const BlockManager::Block &
BlockManager::block(std::uint32_t plane, std::uint32_t b) const
{
    SSDRR_ASSERT(plane < planes_.size(), "plane out of range: ", plane);
    SSDRR_ASSERT(b < layout_.blocksPerPlane, "block out of range: ", b);
    return planes_[plane].blocks[b];
}

void
BlockManager::openFrontier(Plane &pl)
{
    SSDRR_ASSERT(!pl.freeList.empty(),
                 "plane out of free blocks (GC failed to keep up)");
    pl.frontier = pl.freeList.front();
    pl.freeList.pop_front();
    pl.blocks[pl.frontier].inFreeList = false;
}

Ppn
BlockManager::allocate(std::uint32_t plane, Lpn lpn, sim::Tick epoch)
{
    SSDRR_ASSERT(plane < planes_.size(), "plane out of range: ", plane);
    Plane &pl = planes_[plane];
    if (pl.frontier == kNoFrontier)
        openFrontier(pl);

    Block &blk = pl.blocks[pl.frontier];
    SSDRR_ASSERT(blk.writePtr < layout_.pagesPerBlock,
                 "frontier block already full");

    Ppn ppn{plane, pl.frontier, blk.writePtr};
    const std::uint64_t pi = pageIndex(pl.frontier, blk.writePtr);
    pl.owner[pi] = lpn + 1;
    pl.epoch[pi] = epoch + 1;
    // Preconditioning programs at kBaseEpoch, whose raw form is 0 —
    // the block's epoch span stays all-zero, so only runtime
    // programs mark it dirty.
    if (epoch + 1 != 0)
        pl.epochDirty[pl.frontier >> 6] |= std::uint64_t{1}
                                           << (pl.frontier & 63);
    ++blk.valid;
    ++blk.writePtr;
    if (blk.writePtr == layout_.pagesPerBlock)
        pl.frontier = kNoFrontier;
    return ppn;
}

void
BlockManager::preconditionPlane(std::uint32_t plane, Lpn first_lpn,
                                std::uint64_t stride, std::uint64_t count)
{
    SSDRR_ASSERT(plane < planes_.size(), "plane out of range: ", plane);
    Plane &pl = planes_[plane];
    SSDRR_ASSERT(pl.frontier == kNoFrontier &&
                     pl.freeList.size() == layout_.blocksPerPlane,
                 "bulk precondition on a used plane");
    SSDRR_ASSERT(count <= static_cast<std::uint64_t>(
                              layout_.blocksPerPlane) *
                              layout_.pagesPerBlock,
                 "precondition overflows plane capacity");

    const std::uint32_t ppb = layout_.pagesPerBlock;
    // A fresh plane's free list holds blocks 0..N-1 in order, so the
    // page-at-a-time path would fill block 0, 1, ... sequentially;
    // reproduce exactly that end state — without writing a single
    // page entry. Owners of preconditioned pages are answered by the
    // striping closed form (see Plane::owner), and epochs default to
    // kBaseEpoch already, so only per-block metadata is touched.
    pl.precondFirst = first_lpn;
    pl.precondStride = stride;
    std::uint64_t remaining = count;
    for (std::uint32_t b = 0; remaining > 0; ++b) {
        Block &blk = pl.blocks[b];
        const auto fill = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(ppb, remaining));
        remaining -= fill;
        blk.valid = fill;
        blk.writePtr = fill;
        blk.inFreeList = false;
        blk.preconditioned = true;
        SSDRR_ASSERT(pl.freeList.front() == b, "free list out of order");
        pl.freeList.pop_front();
        if (fill < ppb)
            pl.frontier = b; // partial last block stays open
    }
}

std::size_t
BlockManager::freeBlocks(std::uint32_t plane) const
{
    SSDRR_ASSERT(plane < planes_.size(), "plane out of range: ", plane);
    return planes_[plane].freeList.size();
}

void
BlockManager::invalidate(const Ppn &ppn)
{
    Block &blk = block(ppn.plane, ppn.block);
    Plane &pl = planes_[ppn.plane];
    SSDRR_ASSERT(ppn.page < layout_.pagesPerBlock, "page out of range");
    const std::uint64_t pi = pageIndex(ppn.block, ppn.page);
    const std::uint64_t raw = pl.owner[pi];
    SSDRR_ASSERT(raw != kDeadRaw &&
                     (raw != 0 ||
                      (blk.preconditioned && ppn.page < blk.writePtr)),
                 "double invalidate of plane ", ppn.plane, " block ",
                 ppn.block, " page ", ppn.page);
    pl.owner[pi] = kDeadRaw;
    SSDRR_ASSERT(blk.valid > 0, "valid-count underflow");
    --blk.valid;
}

bool
BlockManager::isValid(const Ppn &ppn) const
{
    SSDRR_ASSERT(ppn.plane < planes_.size() &&
                     ppn.block < layout_.blocksPerPlane,
                 "address out of range");
    const Plane &pl = planes_[ppn.plane];
    const std::uint64_t raw = pl.owner[pageIndex(ppn.block, ppn.page)];
    if (raw == kDeadRaw)
        return false;
    if (raw != 0)
        return true;
    const Block &blk = pl.blocks[ppn.block];
    return blk.preconditioned && ppn.page < blk.writePtr;
}

Lpn
BlockManager::lpnOf(const Ppn &ppn) const
{
    SSDRR_ASSERT(ppn.plane < planes_.size() &&
                     ppn.block < layout_.blocksPerPlane,
                 "address out of range");
    const Plane &pl = planes_[ppn.plane];
    const std::uint64_t pi = pageIndex(ppn.block, ppn.page);
    const std::uint64_t raw = pl.owner[pi];
    if (raw != 0 && raw != kDeadRaw)
        return raw - 1;
    const Block &blk = pl.blocks[ppn.block];
    if (raw == 0 && blk.preconditioned && ppn.page < blk.writePtr)
        return pl.precondFirst + pi * pl.precondStride;
    return kInvalidLpn;
}

std::uint32_t
BlockManager::validCount(std::uint32_t plane, std::uint32_t b) const
{
    return block(plane, b).valid;
}

bool
BlockManager::pickVictim(std::uint32_t plane, std::uint32_t &block_out) const
{
    SSDRR_ASSERT(plane < planes_.size(), "plane out of range: ", plane);
    const Plane &pl = planes_[plane];
    bool found = false;
    std::uint32_t best_valid = 0;
    for (std::uint32_t b = 0; b < layout_.blocksPerPlane; ++b) {
        const Block &blk = pl.blocks[b];
        if (blk.inFreeList || b == pl.frontier)
            continue;
        if (blk.writePtr < layout_.pagesPerBlock)
            continue; // only fully-written blocks are GC candidates
        if (!found || blk.valid < best_valid) {
            found = true;
            best_valid = blk.valid;
            block_out = b;
        }
    }
    return found;
}

void
BlockManager::erase(std::uint32_t plane, std::uint32_t b)
{
    Block &blk = block(plane, b);
    Plane &pl = planes_[plane];
    SSDRR_ASSERT(!blk.inFreeList, "erasing a free block");
    SSDRR_ASSERT(blk.valid == 0, "erasing block with ", blk.valid,
                 " valid pages");
    const std::uint64_t base = pageIndex(b, 0);
    std::fill_n(pl.owner.begin() + base, layout_.pagesPerBlock, Lpn{0});
    // Erase restores the all-zero (kBaseEpoch) epoch span; a block
    // never programmed at runtime is already there.
    if ((pl.epochDirty[b >> 6] >> (b & 63)) & 1) {
        std::fill_n(pl.epoch.begin() + base, layout_.pagesPerBlock,
                    sim::Tick{0});
        pl.epochDirty[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    }
    blk.preconditioned = false;
    blk.writePtr = 0;
    ++blk.eraseCount;
    ++total_erases_;
    blk.inFreeList = true;
    planes_[plane].freeList.push_back(b);
}

double
BlockManager::peKilo(std::uint32_t plane, std::uint32_t b) const
{
    return base_pe_kilo_ +
           static_cast<double>(block(plane, b).eraseCount) / 1000.0;
}

sim::Tick
BlockManager::epochOf(const Ppn &ppn) const
{
    SSDRR_ASSERT(ppn.plane < planes_.size() &&
                     ppn.block < layout_.blocksPerPlane,
                 "address out of range");
    const Plane &pl = planes_[ppn.plane];
    // Block never programmed at runtime: its whole epoch span is
    // raw 0, answered from the bitmap without touching the (huge)
    // per-page array.
    if (!((pl.epochDirty[ppn.block >> 6] >> (ppn.block & 63)) & 1))
        return sim::Tick{0} - 1;
    // Raw 0 (never programmed at runtime) wraps back to kTickNever,
    // i.e. kBaseEpoch.
    return pl.epoch[pageIndex(ppn.block, ppn.page)] - 1;
}

} // namespace ssdrr::ftl

/**
 * @file
 * Greedy garbage collection policy.
 *
 * When a plane's free-block count drops below a threshold, the FTL
 * relocates the valid pages of the min-valid victim block and erases
 * it. GC emits explicit actions (page moves + an erase) so the SSD
 * layer can execute them as real transactions that occupy dies and
 * channels — GC reads of aged cold pages go through the same
 * read-retry machinery as host reads.
 */

#ifndef SSDRR_FTL_GC_HH
#define SSDRR_FTL_GC_HH

#include <vector>

#include "ftl/address.hh"

namespace ssdrr::ftl {

/** One page relocation: read @p from, program @p to, remap @p lpn. */
struct GcMove {
    Lpn lpn = kInvalidLpn;
    Ppn from;
    Ppn to;
};

/** Result of collecting one victim block. */
struct GcWork {
    std::uint32_t plane = 0;
    std::uint32_t victimBlock = 0;
    std::vector<GcMove> moves;
};

} // namespace ssdrr::ftl

#endif // SSDRR_FTL_GC_HH

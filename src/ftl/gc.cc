#include "ftl/gc.hh"

// GC action types are header-only; the collection policy lives in
// Ftl::maybeCollect (ftl.cc) because it needs the mapping tables.

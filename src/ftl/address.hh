/**
 * @file
 * SSD-internal address types: logical page numbers and physical
 * page coordinates across channels/dies/planes.
 */

#ifndef SSDRR_FTL_ADDRESS_HH
#define SSDRR_FTL_ADDRESS_HH

#include <cstdint>
#include <limits>

namespace ssdrr::ftl {

/** Logical page number (one page = 16 KiB by default). */
using Lpn = std::uint64_t;

constexpr Lpn kInvalidLpn = std::numeric_limits<Lpn>::max();
constexpr std::uint64_t kInvalidPpn =
    std::numeric_limits<std::uint64_t>::max();

/**
 * Physical page coordinates. A "plane index" flattens
 * (channel, die, plane) so the block manager can keep one allocator
 * per plane; helpers convert back to the hierarchy.
 */
struct Ppn {
    std::uint32_t plane = 0; ///< global plane index
    std::uint32_t block = 0; ///< block within plane
    std::uint32_t page = 0;  ///< page within block

    bool
    operator==(const Ppn &o) const
    {
        return plane == o.plane && block == o.block && page == o.page;
    }
};

/** Layout parameters needed to flatten/unflatten addresses. */
struct AddressLayout {
    std::uint32_t channels = 4;
    std::uint32_t diesPerChannel = 4;
    std::uint32_t planesPerDie = 2;
    std::uint32_t blocksPerPlane = 1888;
    std::uint32_t pagesPerBlock = 576;

    std::uint32_t
    totalPlanes() const
    {
        return channels * diesPerChannel * planesPerDie;
    }

    std::uint32_t
    totalDies() const
    {
        return channels * diesPerChannel;
    }

    std::uint64_t
    pagesPerPlane() const
    {
        return static_cast<std::uint64_t>(blocksPerPlane) * pagesPerBlock;
    }

    std::uint64_t
    totalPages() const
    {
        return pagesPerPlane() * totalPlanes();
    }

    /** Planes living on one channel (the affinity-mask granule). */
    std::uint32_t
    planesPerChannel() const
    {
        return diesPerChannel * planesPerDie;
    }

    std::uint32_t
    channelOfPlane(std::uint32_t plane) const
    {
        return plane / planesPerChannel();
    }

    std::uint32_t
    channelOf(const Ppn &p) const
    {
        return channelOfPlane(p.plane);
    }

    /** Die index global across the SSD (channel-major). */
    std::uint32_t
    dieOf(const Ppn &p) const
    {
        return p.plane / planesPerDie;
    }

    std::uint32_t
    planeInDie(const Ppn &p) const
    {
        return p.plane % planesPerDie;
    }

    /** Flat block id across the SSD (stable hash key). */
    std::uint64_t
    flatBlock(const Ppn &p) const
    {
        return static_cast<std::uint64_t>(p.plane) * blocksPerPlane +
               p.block;
    }

    /** Flat page id across the SSD. */
    std::uint64_t
    flatPage(const Ppn &p) const
    {
        return flatBlock(p) * pagesPerBlock + p.page;
    }

    Ppn
    fromFlatPage(std::uint64_t fp) const
    {
        Ppn p;
        p.page = static_cast<std::uint32_t>(fp % pagesPerBlock);
        const std::uint64_t fb = fp / pagesPerBlock;
        p.block = static_cast<std::uint32_t>(fb % blocksPerPlane);
        p.plane = static_cast<std::uint32_t>(fb / blocksPerPlane);
        return p;
    }
};

} // namespace ssdrr::ftl

#endif // SSDRR_FTL_ADDRESS_HH

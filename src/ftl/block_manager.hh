/**
 * @file
 * Per-plane block allocation, validity and wear tracking.
 *
 * Tracks, per physical block: the reverse map (page -> LPN), the
 * write frontier, valid-page count, erase count, and per-page
 * program epochs used to derive retention age. Pages programmed
 * during preconditioning carry a sentinel epoch meaning "programmed
 * baseRetention months ago" (the paper's aged cold data).
 */

#ifndef SSDRR_FTL_BLOCK_MANAGER_HH
#define SSDRR_FTL_BLOCK_MANAGER_HH

#include <deque>
#include <vector>

#include "ftl/address.hh"
#include "sim/types.hh"
#include "sim/zeroed_array.hh"

namespace ssdrr::ftl {

/** Epoch sentinel: page programmed before the simulation started. */
constexpr sim::Tick kBaseEpoch = sim::kTickNever;

class BlockManager
{
  public:
    BlockManager(const AddressLayout &layout, double base_pe_kilo);

    const AddressLayout &layout() const { return layout_; }

    // ----- allocation -----

    /**
     * Allocate the next free page in @p plane (opens a new block
     * from the free list when the current one fills).
     * @param epoch program time (kBaseEpoch for preconditioning)
     * @param lpn owner logical page
     */
    Ppn allocate(std::uint32_t plane, Lpn lpn, sim::Tick epoch);

    /**
     * Bulk preconditioning fill: equivalent to @p count calls of
     * allocate(plane, first_lpn + i * stride, kBaseEpoch) on a fresh
     * plane, but filling each block's arrays sequentially instead of
     * paying the per-page frontier bookkeeping. Whole-SSD
     * preconditioning maps millions of pages per drive and per
     * scenario, which made the page-at-a-time path a dominant setup
     * cost of every bench sweep.
     */
    void preconditionPlane(std::uint32_t plane, Lpn first_lpn,
                           std::uint64_t stride, std::uint64_t count);

    /** Free blocks remaining in a plane (GC trigger input). */
    std::size_t freeBlocks(std::uint32_t plane) const;

    // ----- validity -----

    void invalidate(const Ppn &ppn);
    bool isValid(const Ppn &ppn) const;
    Lpn lpnOf(const Ppn &ppn) const;
    std::uint32_t validCount(std::uint32_t plane,
                             std::uint32_t block) const;

    /**
     * Greedy victim selection: the fully-written, non-frontier block
     * with the fewest valid pages. Returns false if no candidate.
     */
    bool pickVictim(std::uint32_t plane, std::uint32_t &block_out) const;

    /** Erase a block: clears validity, bumps wear, returns to free. */
    void erase(std::uint32_t plane, std::uint32_t block);

    // ----- wear / retention -----

    /** P/E cycles of a block in thousands (base + runtime erases). */
    double peKilo(std::uint32_t plane, std::uint32_t block) const;

    /** Program epoch of a page (kBaseEpoch if preconditioned). */
    sim::Tick epochOf(const Ppn &ppn) const;

    std::uint64_t totalErases() const { return total_erases_; }

  private:
    /** Per-block metadata; the page-level reverse map and program
     *  epochs live in flat per-plane arrays (see Plane) so building
     *  a drive performs two large allocations per plane instead of
     *  two small ones per block. */
    struct Block {
        std::uint32_t writePtr = 0;
        std::uint32_t valid = 0;
        std::uint32_t eraseCount = 0;
        bool inFreeList = true;
        /** Filled by preconditionPlane: the owner entries of pages
         *  below writePtr default to the plane's striping formula. */
        bool preconditioned = false;
    };

    struct Plane {
        std::vector<Block> blocks;
        /**
         * page -> owner record, indexed b * ppb + q:
         *   raw 0          never written at runtime — dead, unless
         *                  the block is preconditioned and the page
         *                  is below its writePtr, in which case the
         *                  owning LPN is precondFirst + i * stride
         *                  (answered by closed form, never stored);
         *   raw all-ones   dead (tombstone of an invalidated page);
         *   otherwise      owning LPN + 1.
         * calloc zero pages make a fresh (or freshly preconditioned)
         * plane cost no writes.
         */
        sim::ZeroedArray<Lpn> owner;
        /**
         * page -> program epoch + 1, indexed b * ppb + q; raw 0 =
         * kBaseEpoch (kTickNever + 1 wraps to 0), so preconditioned
         * pages need no epoch writes at all.
         */
        sim::ZeroedArray<sim::Tick> epoch;
        /**
         * One bit per block: any nonzero entry in its `epoch` span?
         * The epoch array is hundreds of MiB and a retention lookup
         * is once per read, so proving "whole block still at
         * kBaseEpoch" from this L1-resident bitmap skips a
         * guaranteed cache+TLB miss on the common (never rewritten)
         * path; see epochOf().
         */
        std::vector<std::uint64_t> epochDirty;
        std::deque<std::uint32_t> freeList;
        std::uint32_t frontier = kNoFrontier;
        /** Striping parameters of preconditionPlane. */
        Lpn precondFirst = 0;
        std::uint64_t precondStride = 0;
    };

    static constexpr std::uint64_t kDeadRaw = ~std::uint64_t{0};

    static constexpr std::uint32_t kNoFrontier = 0xFFFFFFFFu;

    Block &block(std::uint32_t plane, std::uint32_t b);
    const Block &block(std::uint32_t plane, std::uint32_t b) const;
    /** Flat index of (block, page) within a plane's owner/epoch. */
    std::uint64_t
    pageIndex(std::uint32_t b, std::uint32_t page) const
    {
        return static_cast<std::uint64_t>(b) * layout_.pagesPerBlock +
               page;
    }
    void openFrontier(Plane &pl);

    AddressLayout layout_;
    double base_pe_kilo_;
    std::vector<Plane> planes_;
    std::uint64_t total_erases_ = 0;
};

} // namespace ssdrr::ftl

#endif // SSDRR_FTL_BLOCK_MANAGER_HH

/**
 * @file
 * Per-plane block allocation, validity and wear tracking.
 *
 * Tracks, per physical block: the reverse map (page -> LPN), the
 * write frontier, valid-page count, erase count, and per-page
 * program epochs used to derive retention age. Pages programmed
 * during preconditioning carry a sentinel epoch meaning "programmed
 * baseRetention months ago" (the paper's aged cold data).
 */

#ifndef SSDRR_FTL_BLOCK_MANAGER_HH
#define SSDRR_FTL_BLOCK_MANAGER_HH

#include <deque>
#include <vector>

#include "ftl/address.hh"
#include "sim/types.hh"

namespace ssdrr::ftl {

/** Epoch sentinel: page programmed before the simulation started. */
constexpr sim::Tick kBaseEpoch = sim::kTickNever;

class BlockManager
{
  public:
    BlockManager(const AddressLayout &layout, double base_pe_kilo);

    const AddressLayout &layout() const { return layout_; }

    // ----- allocation -----

    /**
     * Allocate the next free page in @p plane (opens a new block
     * from the free list when the current one fills).
     * @param epoch program time (kBaseEpoch for preconditioning)
     * @param lpn owner logical page
     */
    Ppn allocate(std::uint32_t plane, Lpn lpn, sim::Tick epoch);

    /** Free blocks remaining in a plane (GC trigger input). */
    std::size_t freeBlocks(std::uint32_t plane) const;

    // ----- validity -----

    void invalidate(const Ppn &ppn);
    bool isValid(const Ppn &ppn) const;
    Lpn lpnOf(const Ppn &ppn) const;
    std::uint32_t validCount(std::uint32_t plane,
                             std::uint32_t block) const;

    /**
     * Greedy victim selection: the fully-written, non-frontier block
     * with the fewest valid pages. Returns false if no candidate.
     */
    bool pickVictim(std::uint32_t plane, std::uint32_t &block_out) const;

    /** Erase a block: clears validity, bumps wear, returns to free. */
    void erase(std::uint32_t plane, std::uint32_t block);

    // ----- wear / retention -----

    /** P/E cycles of a block in thousands (base + runtime erases). */
    double peKilo(std::uint32_t plane, std::uint32_t block) const;

    /** Program epoch of a page (kBaseEpoch if preconditioned). */
    sim::Tick epochOf(const Ppn &ppn) const;

    std::uint64_t totalErases() const { return total_erases_; }

  private:
    struct Block {
        std::vector<Lpn> owner;      ///< page -> LPN (kInvalidLpn = dead)
        std::vector<sim::Tick> epoch;
        std::uint32_t writePtr = 0;
        std::uint32_t valid = 0;
        std::uint32_t eraseCount = 0;
        bool inFreeList = true;
    };

    struct Plane {
        std::vector<Block> blocks;
        std::deque<std::uint32_t> freeList;
        std::uint32_t frontier = kNoFrontier;
    };

    static constexpr std::uint32_t kNoFrontier = 0xFFFFFFFFu;

    Block &block(std::uint32_t plane, std::uint32_t b);
    const Block &block(std::uint32_t plane, std::uint32_t b) const;
    void openFrontier(Plane &pl);

    AddressLayout layout_;
    double base_pe_kilo_;
    std::vector<Plane> planes_;
    std::uint64_t total_erases_ = 0;
};

} // namespace ssdrr::ftl

#endif // SSDRR_FTL_BLOCK_MANAGER_HH

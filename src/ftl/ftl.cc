#include "ftl/ftl.hh"

#include "sim/logging.hh"

namespace ssdrr::ftl {

Ftl::Ftl(const AddressLayout &layout, std::uint64_t logical_pages,
         double base_pe_kilo, double base_retention_months,
         std::size_t gc_threshold)
    : layout_(layout), map_(logical_pages), bm_(layout, base_pe_kilo),
      base_retention_months_(base_retention_months),
      gc_threshold_(gc_threshold)
{
    SSDRR_ASSERT(logical_pages > 0, "empty logical space");
    SSDRR_ASSERT(logical_pages + layout.totalPlanes() *
                     (gc_threshold + 2) * layout.pagesPerBlock <=
                     layout.totalPages(),
                 "logical capacity ", logical_pages,
                 " leaves no over-provisioning headroom (total ",
                 layout.totalPages(), ")");
}

std::uint32_t
Ftl::nextPlane()
{
    const std::uint32_t p = plane_cursor_;
    plane_cursor_ = (plane_cursor_ + 1) % layout_.totalPlanes();
    return p;
}

std::uint32_t
Ftl::nextPlaneMasked(std::uint32_t channel_mask)
{
    SSDRR_ASSERT(
        (channel_mask & ((1u << layout_.channels) - 1)) != 0,
        "channel mask ", channel_mask, " selects no channel (SSD has ",
        layout_.channels, ")");
    const std::uint32_t planes = layout_.totalPlanes();
    std::uint32_t &cursor = masked_cursor_[channel_mask];
    for (std::uint32_t step = 0; step < planes; ++step) {
        const std::uint32_t p = (cursor + step) % planes;
        if (channel_mask & (1u << layout_.channelOfPlane(p))) {
            cursor = (p + 1) % planes;
            return p;
        }
    }
    SSDRR_PANIC("mask ", channel_mask, " matched no plane");
}

void
Ftl::precondition()
{
    SSDRR_ASSERT(map_.mappedCount() == 0, "precondition on used FTL");
    // Bulk-fill plane by plane. This produces bit-identical FTL
    // state to the old page-at-a-time loop (lpn i lands on plane
    // i % P, planes fill blocks in free-list order), but each
    // plane's reverse map and the L2P map are written sequentially —
    // preconditioning maps every logical page and was the largest
    // setup cost of multi-scenario sweeps.
    const std::uint64_t logical = map_.logicalPages();
    const std::uint32_t planes = layout_.totalPlanes();
    const std::uint64_t plane_stride =
        static_cast<std::uint64_t>(layout_.blocksPerPlane) *
        layout_.pagesPerBlock;
    for (std::uint32_t p = 0; p < planes; ++p) {
        if (logical <= p)
            continue;
        const std::uint64_t count = (logical - 1 - p) / planes + 1;
        bm_.preconditionPlane(p, p, planes, count);
    }
    if ((planes & (planes - 1)) == 0) {
        // The canonical striped layout is a closed form of the LPN,
        // so the L2P table records it as the default instead of
        // materializing a million bindings per drive.
        map_.setStripedDefault(planes, plane_stride);
    } else {
        // Non-power-of-two plane counts (custom configs) bind
        // eagerly; plane p's i-th page has flat id p*stride + i.
        Lpn lpn = 0;
        for (std::uint64_t i = 0; lpn < logical; ++i)
            for (std::uint32_t p = 0; p < planes && lpn < logical;
                 ++p, ++lpn)
                map_.bind(lpn, p * plane_stride + i);
    }
    plane_cursor_ = static_cast<std::uint32_t>(logical % planes);
}

Ppn
Ftl::translate(Lpn lpn) const
{
    return layout_.fromFlatPage(map_.lookup(lpn));
}

WriteAlloc
Ftl::hostWrite(Lpn lpn, sim::Tick now, std::uint32_t channel_mask)
{
    WriteAlloc out;
    if (map_.mapped(lpn)) {
        const Ppn old = layout_.fromFlatPage(map_.unbind(lpn));
        bm_.invalidate(old);
    }
    const std::uint32_t plane =
        channel_mask == 0 ? nextPlane() : nextPlaneMasked(channel_mask);
    out.ppn = bm_.allocate(plane, lpn, now);
    map_.bind(lpn, layout_.flatPage(out.ppn));
    maybeCollect(plane, now, out.gc);
    return out;
}

void
Ftl::maybeCollect(std::uint32_t plane, sim::Tick now,
                  std::vector<GcWork> &out)
{
    // Keep collecting victims until the plane is healthy again; each
    // iteration frees exactly one block (minus the pages the moves
    // consume in destination blocks, which land on other planes'
    // frontiers only if we spread them -- we keep moves in-plane to
    // bound the interaction, like a per-plane background GC).
    int guard = 0;
    while (bm_.freeBlocks(plane) < gc_threshold_) {
        SSDRR_ASSERT(++guard <= 8, "GC thrashing on plane ", plane);
        std::uint32_t victim = 0;
        if (!bm_.pickVictim(plane, victim)) {
            SSDRR_WARN("plane ", plane, " has no GC candidate");
            return;
        }
        GcWork work;
        work.plane = plane;
        work.victimBlock = victim;
        for (std::uint32_t pg = 0; pg < layout_.pagesPerBlock; ++pg) {
            const Ppn from{plane, victim, pg};
            if (!bm_.isValid(from))
                continue;
            GcMove move;
            move.lpn = bm_.lpnOf(from);
            move.from = from;
            // Valid data keeps its original program epoch? No: a GC
            // move reprograms the data, so retention restarts now.
            const sim::Tick epoch = now;
            bm_.invalidate(from);
            move.to = bm_.allocate(plane, move.lpn, epoch);
            map_.bind(move.lpn, layout_.flatPage(move.to));
            ++gc_page_moves_;
            work.moves.push_back(move);
        }
        bm_.erase(plane, victim);
        ++gc_collections_;
        out.push_back(std::move(work));
    }
}

void
Ftl::commitGcMove(const GcMove &)
{
    // Mapping updates happen eagerly in maybeCollect (the simulator
    // serializes FTL metadata updates); the hook exists for the SSD
    // layer's accounting and future deferred-commit policies.
}

double
Ftl::retentionMonths(const Ppn &ppn, sim::Tick now) const
{
    const sim::Tick epoch = bm_.epochOf(ppn);
    if (epoch == kBaseEpoch)
        return base_retention_months_;
    SSDRR_ASSERT(now >= epoch, "page programmed in the future");
    // One month ~ 2.63e6 seconds; trace runs last seconds, so
    // runtime-written pages are effectively fresh.
    return sim::toMsec(now - epoch) / (2.63e9);
}

nand::OperatingPoint
Ftl::opPoint(const Ppn &ppn, sim::Tick now, double temperature_c) const
{
    nand::OperatingPoint op;
    op.peKilo = bm_.peKilo(ppn.plane, ppn.block);
    op.retentionMonths = retentionMonths(ppn, now);
    op.temperatureC = temperature_c;
    return op;
}

} // namespace ssdrr::ftl

/**
 * @file
 * Page-level logical-to-physical mapping table.
 *
 * The accessors are defined inline: translate() sits on the per-read
 * hot path and runs once per page of every host request.
 *
 * Storage is a calloc-backed ZeroedArray of raw entries:
 *   raw == 0             unmapped — or, once setStripedDefault() is
 *                        active, "still at the preconditioned
 *                        striped location", answered by closed form;
 *   raw == kUnmappedRaw  explicitly unmapped (tombstone);
 *   otherwise            flat physical page + 1.
 * Preconditioning an SSD therefore writes no table entries at all:
 * only pages that move (host writes, GC) materialize an override.
 * This removes a multi-MiB first-touch sweep per drive from every
 * scenario construction.
 */

#ifndef SSDRR_FTL_MAPPING_HH
#define SSDRR_FTL_MAPPING_HH

#include <vector>

#include "ftl/address.hh"
#include "sim/logging.hh"
#include "sim/zeroed_array.hh"

namespace ssdrr::ftl {

class PageMap
{
  public:
    explicit PageMap(std::uint64_t logical_pages);

    std::uint64_t logicalPages() const { return l2p_.size(); }

    /**
     * Declare every LPN mapped to the canonical striped layout
     * (LPN l -> plane l mod P at plane-flat index l div P, i.e.
     * flat page (l mod P) * plane_stride + l div P). Requires an
     * empty map and a power-of-two @p planes (the closed form uses
     * shifts on the per-read path).
     */
    void setStripedDefault(std::uint32_t planes,
                           std::uint64_t plane_stride);

    bool
    mapped(Lpn lpn) const
    {
        SSDRR_ASSERT(lpn < l2p_.size(), "LPN out of range: ", lpn);
        const std::uint64_t raw = l2p_[lpn];
        if (raw == kUnmappedRaw)
            return false;
        return raw != 0 || striped_;
    }

    /** Physical flat page of @p lpn; panics if unmapped. */
    std::uint64_t
    lookup(Lpn lpn) const
    {
        SSDRR_ASSERT(lpn < l2p_.size(), "LPN out of range: ", lpn);
        // The l2p table is hundreds of MiB, so a random read is a
        // guaranteed cache+TLB miss — but under the striped default,
        // entries only materialize when a page moves (host write,
        // GC). The chunk-dirty bitmap (~1 bit per 4096 LPNs, L1
        // resident) proves "no override anywhere near this LPN"
        // without touching the table, which is the overwhelmingly
        // common case in read-heavy scenarios.
        if (striped_ && !chunkDirty(lpn))
            return stripedFlat(lpn);
        const std::uint64_t raw = l2p_[lpn];
        if (raw != 0 && raw != kUnmappedRaw)
            return raw - 1;
        SSDRR_ASSERT(raw == 0 && striped_, "reading unmapped LPN ", lpn);
        return stripedFlat(lpn);
    }

    /** Bind @p lpn to flat physical page @p fp. */
    void
    bind(Lpn lpn, std::uint64_t fp)
    {
        SSDRR_ASSERT(lpn < l2p_.size(), "LPN out of range: ", lpn);
        const std::uint64_t raw = l2p_[lpn];
        const bool was_mapped =
            raw != kUnmappedRaw && (raw != 0 || striped_);
        if (!was_mapped)
            ++mapped_;
        l2p_[lpn] = fp + 1;
        markChunkDirty(lpn);
    }

    /** Remove the binding of @p lpn (returns the old flat page). */
    std::uint64_t
    unbind(Lpn lpn)
    {
        SSDRR_ASSERT(lpn < l2p_.size(), "LPN out of range: ", lpn);
        const std::uint64_t raw = l2p_[lpn];
        SSDRR_ASSERT(raw != kUnmappedRaw && (raw != 0 || striped_),
                     "unbinding unmapped LPN ", lpn);
        const std::uint64_t old =
            raw != 0 ? raw - 1 : stripedFlat(lpn);
        l2p_[lpn] = kUnmappedRaw;
        markChunkDirty(lpn);
        --mapped_;
        return old;
    }

    std::uint64_t mappedCount() const { return mapped_; }

  private:
    static constexpr std::uint64_t kUnmappedRaw = ~std::uint64_t{0};
    /** LPNs per chunk-dirty bit (as a shift). */
    static constexpr std::uint32_t kChunkShift = 12;

    std::uint64_t
    stripedFlat(Lpn lpn) const
    {
        return (lpn & plane_mask_) * plane_stride_ +
               (lpn >> plane_shift_);
    }

    bool
    chunkDirty(Lpn lpn) const
    {
        const std::uint64_t c = lpn >> kChunkShift;
        return (chunk_dirty_[c >> 6] >> (c & 63)) & 1;
    }

    void
    markChunkDirty(Lpn lpn)
    {
        const std::uint64_t c = lpn >> kChunkShift;
        chunk_dirty_[c >> 6] |= std::uint64_t{1} << (c & 63);
    }

    sim::ZeroedArray<std::uint64_t> l2p_;
    /** One bit per 2^kChunkShift LPNs: any override in the chunk? */
    std::vector<std::uint64_t> chunk_dirty_;
    std::uint64_t mapped_ = 0;
    bool striped_ = false;
    std::uint64_t plane_mask_ = 0;
    std::uint32_t plane_shift_ = 0;
    std::uint64_t plane_stride_ = 0;
};

} // namespace ssdrr::ftl

#endif // SSDRR_FTL_MAPPING_HH

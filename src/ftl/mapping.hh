/**
 * @file
 * Page-level logical-to-physical mapping table.
 */

#ifndef SSDRR_FTL_MAPPING_HH
#define SSDRR_FTL_MAPPING_HH

#include <vector>

#include "ftl/address.hh"

namespace ssdrr::ftl {

class PageMap
{
  public:
    explicit PageMap(std::uint64_t logical_pages);

    std::uint64_t logicalPages() const { return l2p_.size(); }

    bool mapped(Lpn lpn) const;

    /** Physical flat page of @p lpn; panics if unmapped. */
    std::uint64_t lookup(Lpn lpn) const;

    /** Bind @p lpn to flat physical page @p fp. */
    void bind(Lpn lpn, std::uint64_t fp);

    /** Remove the binding of @p lpn (returns the old flat page). */
    std::uint64_t unbind(Lpn lpn);

    std::uint64_t mappedCount() const { return mapped_; }

  private:
    std::vector<std::uint64_t> l2p_;
    std::uint64_t mapped_ = 0;
};

} // namespace ssdrr::ftl

#endif // SSDRR_FTL_MAPPING_HH

/**
 * @file
 * Page-level FTL facade: translation, write allocation with
 * channel/die/plane striping, preconditioning, and GC policy.
 */

#ifndef SSDRR_FTL_FTL_HH
#define SSDRR_FTL_FTL_HH

#include <map>
#include <optional>
#include <vector>

#include "ftl/address.hh"
#include "ftl/block_manager.hh"
#include "ftl/gc.hh"
#include "ftl/mapping.hh"
#include "nand/types.hh"
#include "sim/types.hh"

namespace ssdrr::ftl {

/** Outcome of a host write: the new page plus any GC to perform. */
struct WriteAlloc {
    Ppn ppn;
    std::vector<GcWork> gc;
};

class Ftl
{
  public:
    /**
     * @param layout physical layout
     * @param logical_pages exported capacity in pages
     * @param base_pe_kilo preconditioned wear (paper's PEC knob)
     * @param base_retention_months preconditioned age (tRET knob)
     * @param gc_threshold free blocks per plane below which GC runs
     */
    Ftl(const AddressLayout &layout, std::uint64_t logical_pages,
        double base_pe_kilo, double base_retention_months,
        std::size_t gc_threshold = 4);

    const AddressLayout &layout() const { return layout_; }
    BlockManager &blocks() { return bm_; }
    const BlockManager &blocks() const { return bm_; }
    const PageMap &map() const { return map_; }

    /**
     * Map every logical page to a physical page, striped across
     * planes, with the base epoch (aged data). Called once before
     * replaying a trace (the paper preconditions the simulated SSD
     * to a given PEC / retention point).
     */
    void precondition();

    /** Physical location of a logical page (host read path). */
    Ppn translate(Lpn lpn) const;

    /**
     * Allocate a new physical page for @p lpn at time @p now,
     * invalidating the old binding, and run GC if the target plane
     * dropped below the free-block threshold.
     *
     * @p channel_mask restricts the allocation to planes of the
     * channels whose bits are set (bit c = channel c); 0 means
     * unrestricted and round-robins over every plane exactly as
     * before masks existed. Masked writes round-robin over the
     * allowed planes on an independent per-mask cursor, so tenants
     * pinned to a channel subset (host-layer channel affinity) keep
     * their data on those channels; GC relocations are in-plane and
     * therefore preserve the placement.
     */
    WriteAlloc hostWrite(Lpn lpn, sim::Tick now,
                         std::uint32_t channel_mask = 0);

    /**
     * Finish a GC move: rebind @p lpn from the victim to @p to.
     * (The allocation itself happened in hostWrite's GC planning;
     * this keeps the map consistent.)
     */
    void commitGcMove(const GcMove &move);

    /** Operating point of a physical page at time @p now. */
    nand::OperatingPoint opPoint(const Ppn &ppn, sim::Tick now,
                                 double temperature_c) const;

    /** Effective retention age in months of a page at @p now. */
    double retentionMonths(const Ppn &ppn, sim::Tick now) const;

    std::uint64_t logicalPages() const { return map_.logicalPages(); }
    std::uint64_t gcCollections() const { return gc_collections_; }
    std::uint64_t gcPageMoves() const { return gc_page_moves_; }

  private:
    /** Run GC on @p plane until it is back above the threshold. */
    void maybeCollect(std::uint32_t plane, sim::Tick now,
                      std::vector<GcWork> &out);
    std::uint32_t nextPlane();
    std::uint32_t nextPlaneMasked(std::uint32_t channel_mask);

    AddressLayout layout_;
    PageMap map_;
    BlockManager bm_;
    double base_retention_months_;
    std::size_t gc_threshold_;
    std::uint32_t plane_cursor_ = 0;
    /** Per-channel-mask allocation cursors (masked writes only; the
     *  unmasked cursor above is untouched so legacy runs are
     *  bit-identical). */
    std::map<std::uint32_t, std::uint32_t> masked_cursor_;
    std::uint64_t gc_collections_ = 0;
    std::uint64_t gc_page_moves_ = 0;
};

} // namespace ssdrr::ftl

#endif // SSDRR_FTL_FTL_HH

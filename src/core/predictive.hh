/**
 * @file
 * Predictive read extensions (paper Section 8, "Discussion").
 *
 * The paper sketches two future directions that both rest on an
 * online error model able to predict a page's RBER before reading
 * it:
 *
 *  1. Latency reduction for regular reads - if a page is predicted
 *     to decode cleanly with margin to spare, read it with reduced
 *     timing parameters from the start (AR2's idea applied to reads
 *     that need no retry at all).
 *  2. Speculative retry start - if a page is predicted to fail its
 *     default-timing read anyway, skip that read and start the
 *     (pipelined, reduced-timing) retry walk immediately, removing
 *     the doomed initial read from the critical path.
 *
 * ErrorPredictor models such an online estimator with a tunable
 * accuracy: it sees the true page profile and, with probability
 * (1 - accuracy), mispredicts in a structured way (misses a retry
 * page or flags a clean one). PredictiveController plans reads with
 * either or both extensions enabled, falling back to the regular
 * PnAR2 walk on misprediction; mispredictions cost time but never
 * correctness.
 */

#ifndef SSDRR_CORE_PREDICTIVE_HH
#define SSDRR_CORE_PREDICTIVE_HH

#include "core/retry_controller.hh"
#include "core/rpt.hh"
#include "ecc/engine.hh"
#include "nand/error_model.hh"
#include "nand/page_profile_cache.hh"
#include "sim/rng.hh"
#include "ssd/channel.hh"

namespace ssdrr::core {

/** What the online error model claims about a page before reading. */
struct ErrorPrediction {
    /** Predicted to fail the default-timing read (needs retry). */
    bool willRetry = false;
    /** Predicted errors/KiB at the final (or only) step. */
    double predictedErrors = 0.0;
};

/**
 * Online error-model stand-in with tunable accuracy.
 *
 * accuracy = 1 reproduces the true profile (a perfect model such as
 * the Sentinel-cell estimator [56] approaches this); lower values
 * flip the retry classification with probability (1 - accuracy).
 * Predictions are deterministic per (chip, block, page) coordinates.
 */
class ErrorPredictor
{
  public:
    ErrorPredictor(const nand::ErrorModel &model, double accuracy,
                   std::uint64_t seed = 0xFEEDull);

    double accuracy() const { return accuracy_; }

    /**
     * Route profile computations through @p cache (the SSD's
     * page-profile cache). Predictions are unchanged; only the
     * recomputation cost disappears.
     */
    void attachProfileCache(nand::PageProfileCache *cache)
    {
        cache_ = cache;
    }

    ErrorPrediction predict(std::uint64_t chip, std::uint64_t block,
                            std::uint64_t page,
                            const nand::OperatingPoint &op) const;

  private:
    const nand::ErrorModel &model_;
    double accuracy_;
    std::uint64_t seed_;
    nand::PageProfileCache *cache_ = nullptr;
};

/** Extension toggles for PredictiveController. */
struct PredictiveConfig {
    /** Reduce tR for reads predicted clean (Section 8, para. 1). */
    bool reducedRegularReads = true;
    /** Skip the doomed default read for reads predicted to retry
     *  (Section 8, para. 2). */
    bool speculativeRetryStart = true;
};

/**
 * Read planner implementing the Section 8 extensions on top of the
 * PnAR2 machinery. Produces the same ReadPlan contract as
 * RetryController::planRead.
 */
class PredictiveController
{
  public:
    PredictiveController(const nand::TimingParams &timing,
                         const nand::ErrorModel &model, const Rpt &rpt,
                         const ErrorPredictor &predictor,
                         PredictiveConfig cfg = {});

    const PredictiveConfig &config() const { return cfg_; }

    /**
     * Plan a read of page (@p chip, @p block, @p page) starting at
     * @p start; identical resource semantics to
     * RetryController::planRead.
     */
    ReadPlan planRead(sim::Tick start, nand::PageType type,
                      std::uint64_t chip, std::uint64_t block,
                      std::uint64_t page, const nand::OperatingPoint &op,
                      ssd::Channel &ch, ecc::EccEngine &ecc) const;

    /** Reads planned so far whose prediction turned out wrong. */
    std::uint64_t mispredictions() const { return mispredictions_; }
    /** Reads that skipped the default initial read. */
    std::uint64_t speculativeStarts() const { return spec_starts_; }
    /** Regular reads performed with reduced timing. */
    std::uint64_t reducedRegularCount() const { return reduced_regular_; }

    /** Route profile computations through the SSD's profile cache. */
    void attachProfileCache(nand::PageProfileCache *cache)
    {
        cache_ = cache;
    }

  private:
    ReadPlan planSpeculativeWalk(sim::Tick start, sim::Tick s_red,
                                 sim::Tick s_def, int n_red,
                                 bool fallback_walk, ssd::Channel &ch,
                                 ecc::EccEngine &ecc) const;

    nand::TimingParams timing_;
    const nand::ErrorModel &model_;
    const Rpt &rpt_;
    const ErrorPredictor &predictor_;
    RetryController pnar2_;
    PredictiveConfig cfg_;
    nand::PageProfileCache *cache_ = nullptr;
    mutable std::uint64_t mispredictions_ = 0;
    mutable std::uint64_t spec_starts_ = 0;
    mutable std::uint64_t reduced_regular_ = 0;
};

} // namespace ssdrr::core

#endif // SSDRR_CORE_PREDICTIVE_HH

#include "core/mechanism.hh"

#include <cmath>

#include "sim/logging.hh"

namespace ssdrr::core {

const char *
name(Mechanism m)
{
    switch (m) {
      case Mechanism::Baseline:
        return "Baseline";
      case Mechanism::PR2:
        return "PR2";
      case Mechanism::AR2:
        return "AR2";
      case Mechanism::PnAR2:
        return "PnAR2";
      case Mechanism::NoRR:
        return "NoRR";
      case Mechanism::PSO:
        return "PSO";
      case Mechanism::PSO_PnAR2:
        return "PSO+PnAR2";
      case Mechanism::Sentinel:
        return "Sentinel";
      case Mechanism::Sentinel_PnAR2:
        return "Sentinel+PnAR2";
    }
    return "?";
}

const std::vector<Mechanism> &
allMechanisms()
{
    static const std::vector<Mechanism> all = {
        Mechanism::Baseline, Mechanism::PR2,
        Mechanism::AR2,      Mechanism::PnAR2,
        Mechanism::NoRR,     Mechanism::PSO,
        Mechanism::PSO_PnAR2, Mechanism::Sentinel,
        Mechanism::Sentinel_PnAR2};
    return all;
}

bool
tryParseMechanism(const std::string &s, Mechanism *out)
{
    for (Mechanism m : allMechanisms()) {
        if (s == name(m)) {
            if (out)
                *out = m;
            return true;
        }
    }
    return false;
}

Mechanism
parseMechanism(const std::string &s)
{
    Mechanism m;
    if (tryParseMechanism(s, &m))
        return m;
    SSDRR_FATAL("unknown mechanism: ", s);
}

bool
usesPipelining(Mechanism m)
{
    return m == Mechanism::PR2 || m == Mechanism::PnAR2 ||
           m == Mechanism::PSO_PnAR2 || m == Mechanism::Sentinel_PnAR2;
}

bool
usesAdaptiveTiming(Mechanism m)
{
    return m == Mechanism::AR2 || m == Mechanism::PnAR2 ||
           m == Mechanism::PSO_PnAR2 || m == Mechanism::Sentinel_PnAR2;
}

bool
usesStepReduction(Mechanism m)
{
    return m == Mechanism::PSO || m == Mechanism::PSO_PnAR2 ||
           m == Mechanism::Sentinel || m == Mechanism::Sentinel_PnAR2;
}

int
psoSteps(int n_rr)
{
    SSDRR_ASSERT(n_rr >= 0, "negative retry count");
    if (n_rr == 0)
        return 0;
    // ~70% fewer steps, floored at three ("every read still incurs
    // at least three retry steps in an aged SSD", Section 3.1) but
    // never worse than the default table walk would have been.
    const int reduced = static_cast<int>(std::ceil(0.3 * n_rr));
    return std::min(n_rr, std::max(3, reduced));
}

int
sentinelSteps(int n_rr)
{
    SSDRR_ASSERT(n_rr >= 0, "negative retry count");
    if (n_rr == 0)
        return 0;
    // [56] reports the average step count dropping from 6.6 to 1.2:
    // the Sentinel-cell VOPT estimate lets ordinary retries finish in
    // a single near-optimal step; only pages whose VOPT drifted far
    // beyond the estimator's range (long original walks) need a short
    // residual search.
    const int reduced =
        std::max(1, static_cast<int>(std::ceil(0.18 * (n_rr - 5))));
    return std::min(n_rr, reduced);
}

int
transformedSteps(Mechanism m, int n_rr)
{
    if (m == Mechanism::PSO || m == Mechanism::PSO_PnAR2)
        return psoSteps(n_rr);
    if (m == Mechanism::Sentinel || m == Mechanism::Sentinel_PnAR2)
        return sentinelSteps(n_rr);
    return n_rr;
}

} // namespace ssdrr::core

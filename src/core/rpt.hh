/**
 * @file
 * Read-timing Parameter Table (RPT) - AR2's profiling artifact
 * (paper Section 6.2, Figure 13).
 *
 * SSD manufacturers profile each chip offline and store, per
 * (P/E-cycle, retention-age) bin, the best safe tPRE value. The
 * controller queries the table when a read failure occurs and
 * applies the reduction with one SET FEATURE command.
 *
 * RptBuilder emulates the offline profiling pass using the
 * ErrorModel: for each bin it evaluates the most pessimistic corner
 * (max PEC, max retention) at the 85C profiling temperature with
 * the 14-bit safety margin (7 temperature + 7 outlier bits).
 */

#ifndef SSDRR_CORE_RPT_HH
#define SSDRR_CORE_RPT_HH

#include <vector>

#include "nand/error_model.hh"
#include "nand/timing.hh"
#include "nand/types.hh"

namespace ssdrr::core {

class Rpt
{
  public:
    /** One profiled entry. */
    struct Entry {
        double maxPeKilo;          ///< bin upper edge (exclusive)
        double maxRetentionMonths; ///< bin upper edge (exclusive)
        double preReduction;       ///< safe tPRE reduction fraction
    };

    Rpt(std::vector<double> pe_edges, std::vector<double> ret_edges,
        std::vector<double> reductions);

    /** Safe timing reduction for an operating point. */
    nand::TimingReduction lookup(const nand::OperatingPoint &op) const;

    std::size_t peBins() const { return pe_edges_.size(); }
    std::size_t retBins() const { return ret_edges_.size(); }
    std::size_t entries() const { return reductions_.size(); }

    /** Storage footprint: 4 bytes per entry (paper: ~144 B/chip). */
    std::size_t storageBytes() const { return entries() * 4; }

    double entryAt(std::size_t pe_bin, std::size_t ret_bin) const;
    double peEdge(std::size_t i) const { return pe_edges_[i]; }
    double retEdge(std::size_t i) const { return ret_edges_[i]; }

  private:
    std::size_t binOf(const std::vector<double> &edges, double v) const;

    std::vector<double> pe_edges_;
    std::vector<double> ret_edges_;
    std::vector<double> reductions_; // pe-major
};

class RptBuilder
{
  public:
    explicit RptBuilder(const nand::ErrorModel &model) : model_(model) {}

    /** Paper-like 6x6 grid (36 combinations, 144 bytes). */
    Rpt buildDefault() const;

    /** Custom grid. */
    Rpt build(const std::vector<double> &pe_edges,
              const std::vector<double> &ret_edges) const;

  private:
    const nand::ErrorModel &model_;
};

} // namespace ssdrr::core

#endif // SSDRR_CORE_RPT_HH

#include "core/retry_controller.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ssdrr::core {

RetryController::RetryController(Mechanism mech,
                                 const nand::TimingParams &timing,
                                 const nand::ErrorModel &model,
                                 const Rpt *rpt)
    : mech_(mech), timing_(timing), model_(model), rpt_(rpt)
{
    SSDRR_ASSERT(!usesAdaptiveTiming(mech) || rpt_ != nullptr,
                 name(mech), " requires a profiled RPT");
}

RetryController::StepDecision
RetryController::decideSteps(const nand::PageErrorProfile &prof,
                             const nand::OperatingPoint &op) const
{
    const double cap = model_.cal().eccCapability;
    StepDecision dec;

    if (mech_ == Mechanism::NoRR) {
        // Ideal upper bound: reads never retry.
        return dec;
    }

    const nand::ReadOutcome base = model_.simulateRead(prof, 0.0);
    if (!base.success) {
        // The page is unreadable even after the full table walk; the
        // data would be handed to higher-level recovery (RAID/parity).
        dec.success = false;
        dec.defaultSteps = model_.cal().retryTableSteps;
        return dec;
    }

    int n = base.retrySteps;
    if (usesStepReduction(mech_))
        n = transformedSteps(mech_, n);

    if (!usesAdaptiveTiming(mech_) || n == 0) {
        dec.defaultSteps = n;
        return dec;
    }

    // AR2 path: the initial read always uses default timing; once it
    // fails the controller queries the RPT and shortens tPRE for the
    // retry steps.
    dec.reduction = rpt_->lookup(op);
    if (dec.reduction.none()) {
        dec.defaultSteps = n;
        return dec;
    }

    const double extra = model_.deltaErrors(dec.reduction, op);
    const double final_with_extra = prof.finalErrors + extra;
    if (final_with_extra <= cap) {
        // Profiling did its job: the same number of steps succeeds
        // with the shortened sensing (Section 6.2).
        dec.reducedSteps = n;
        return dec;
    }

    // Worst case (never observed across the paper's 10^7 pages, but
    // modeled for completeness): the reduced-timing walk exhausts the
    // table, and the controller redoes the retry with default timing.
    dec.fallback = true;
    dec.reducedSteps = model_.cal().retryTableSteps;
    dec.defaultSteps = n;
    return dec;
}

ReadPlan
RetryController::planSequential(sim::Tick start, sim::Tick s_first,
                                sim::Tick s_retry,
                                const StepDecision &dec, ssd::Channel &ch,
                                ecc::EccEngine &ecc,
                                bool set_feature) const
{
    ReadPlan plan;
    const sim::Tick d = timing_.tDMA;

    // Initial read: sense, transfer, decode.
    sim::Tick sense_end = start + s_first;
    sim::Tick dma_end = ch.acquire(sense_end, d) + d;
    sim::Tick ecc_end = ecc.acquire(dma_end) + ecc.tEcc();
    sim::Tick last_dma_end = dma_end;

    const int total = dec.reducedSteps + dec.defaultSteps;
    if (total == 0) {
        plan.success = dec.success;
        plan.completion = ecc_end;
        plan.dieEnd = dma_end;
        return plan;
    }

    sim::Tick t = ecc_end; // failure verdict of the previous step
    if (set_feature)
        t += timing_.tSET; // apply the RPT's tPRE once (Fig. 13)

    for (int k = 0; k < dec.reducedSteps; ++k) {
        sense_end = t + s_retry;
        dma_end = ch.acquire(sense_end, d) + d;
        ecc_end = ecc.acquire(dma_end) + ecc.tEcc();
        last_dma_end = dma_end;
        t = ecc_end;
    }

    if (dec.fallback)
        t += timing_.tSET; // roll back to default timing for the redo

    for (int k = 0; k < dec.defaultSteps; ++k) {
        sense_end = t + s_first;
        dma_end = ch.acquire(sense_end, d) + d;
        ecc_end = ecc.acquire(dma_end) + ecc.tEcc();
        last_dma_end = dma_end;
        t = ecc_end;
    }

    plan.retrySteps = total;
    plan.extraSteps = dec.fallback ? dec.reducedSteps : 0;
    plan.timingFallback = dec.fallback;
    plan.success = dec.success;
    plan.completion = ecc_end;
    plan.dieEnd = last_dma_end + (set_feature ? timing_.tSET : 0);
    return plan;
}

ReadPlan
RetryController::planPipelined(sim::Tick start, sim::Tick s_first,
                               sim::Tick s_retry,
                               const StepDecision &dec, ssd::Channel &ch,
                               ecc::EccEngine &ecc,
                               bool set_feature) const
{
    ReadPlan plan;
    const sim::Tick d = timing_.tDMA;
    const int total = dec.reducedSteps + dec.defaultSteps;

    // Initial read.
    sim::Tick sense_end = start + s_first;
    sim::Tick dma_end = ch.acquire(sense_end, d) + d;
    sim::Tick ecc_end = ecc.acquire(dma_end) + ecc.tEcc();

    if (total == 0) {
        // PR2 already speculatively issued retry step 1 (CACHE READ,
        // default timing) at sense_end; the RESET after ECC success
        // kills it (Fig. 12(b), "unnecessary" step).
        plan.success = dec.success;
        plan.completion = ecc_end;
        const sim::Tick spec_end = sense_end + s_first;
        const sim::Tick reset_end = ecc_end + timing_.tRST;
        plan.dieEnd = std::max(dma_end, std::min(spec_end, reset_end));
        return plan;
    }

    // When the mechanism adapts timing, the first retry can only be
    // issued after the initial failure verdict + SET FEATURE
    // (Fig. 13); pure PR2 pipelines it right after the first sensing
    // (Fig. 12(b)).
    sim::Tick sense_start;
    if (set_feature)
        sense_start = ecc_end + timing_.tSET;
    else
        sense_start = sense_end;

    sim::Tick prev_dma_end = dma_end;
    sim::Tick last_sense_len = s_first;
    for (int k = 0; k < total; ++k) {
        const bool reduced = k < dec.reducedSteps;
        const sim::Tick s = reduced ? s_retry : s_first;
        if (dec.fallback && k == dec.reducedSteps) {
            // Reduced walk exhausted: roll timing back, then redo.
            sense_start += timing_.tSET;
        }
        sense_end = sense_start + s;
        // The sensed data moves to the output register only once the
        // previous transfer has drained it (cache-register rule).
        const sim::Tick ready = std::max(sense_end, prev_dma_end);
        dma_end = ch.acquire(ready, d) + d;
        ecc_end = ecc.acquire(dma_end) + ecc.tEcc();
        prev_dma_end = dma_end;
        // The next speculative sensing starts as soon as the cache
        // register is free again.
        sense_start = ready;
        last_sense_len = s;
    }

    plan.retrySteps = total;
    plan.extraSteps = dec.fallback ? dec.reducedSteps : 0;
    plan.timingFallback = dec.fallback;
    plan.success = dec.success;
    plan.completion = ecc_end;

    // A speculative extra step is in flight; RESET terminates it.
    const sim::Tick spec_end = sense_start + last_sense_len;
    const sim::Tick reset_end = ecc_end + timing_.tRST;
    sim::Tick die_end = std::max(dma_end, std::min(spec_end, reset_end));
    if (set_feature)
        die_end += timing_.tSET; // roll back to default timing
    plan.dieEnd = die_end;
    return plan;
}

ReadPlan
RetryController::planRead(sim::Tick start, nand::PageType type,
                          const nand::PageErrorProfile &prof,
                          const nand::OperatingPoint &op, ssd::Channel &ch,
                          ecc::EccEngine &ecc) const
{
    const StepDecision dec = decideSteps(prof, op);
    const sim::Tick s_def = timing_.tR(type);
    const sim::Tick s_red = timing_.tR(type, dec.reduction);
    const bool set_feature =
        usesAdaptiveTiming(mech_) && !dec.reduction.none() &&
        (dec.reducedSteps + dec.defaultSteps) > 0;

    if (usesPipelining(mech_))
        return planPipelined(start, s_def, s_red, dec, ch, ecc,
                             set_feature);
    return planSequential(start, s_def, s_red, dec, ch, ecc,
                          set_feature);
}

} // namespace ssdrr::core

/**
 * @file
 * Read-retry mechanism taxonomy (paper Section 7.2/7.3).
 *
 *  Baseline - high-end SSD with out-of-order scheduling and
 *             program/erase suspension, regular read-retry (Fig 12a).
 *  PR2      - Pipelined Read-Retry: CACHE READ pipelining of retry
 *             steps plus RESET of the speculative step (Fig 12b).
 *  AR2      - Adaptive Read-Retry: reduced tPRE per the RPT, applied
 *             with SET FEATURE once per retry operation (Fig 13).
 *  PnAR2    - PR2 + AR2 combined.
 *  NoRR     - ideal SSD where no read-retry occurs (upper bound).
 *  PSO      - state-of-the-art prior work [84] that reduces the
 *             *number* of retry steps by reusing recently-optimized
 *             VREF values from process-similar pages.
 *  PSO_PnAR2- PSO with PR2+AR2 layered on top (Section 7.3).
 *  Sentinel - concurrent work [56]: spare "Sentinel" cells in each
 *             page let the controller estimate VOPT after the first
 *             read, cutting the average step count from ~6.6 to ~1.2
 *             (Section 9) but not eliminating retry entirely.
 *  Sentinel_PnAR2 - Sentinel with PR2+AR2 layered on top, the
 *             combination Section 9 argues for.
 */

#ifndef SSDRR_CORE_MECHANISM_HH
#define SSDRR_CORE_MECHANISM_HH

#include <string>
#include <vector>

namespace ssdrr::core {

enum class Mechanism {
    Baseline,
    PR2,
    AR2,
    PnAR2,
    NoRR,
    PSO,
    PSO_PnAR2,
    Sentinel,
    Sentinel_PnAR2,
};

/** Short display name ("PnAR2", ...). */
const char *name(Mechanism m);

/** Parse a mechanism name; fatal on unknown input. */
Mechanism parseMechanism(const std::string &s);

/** Non-fatal parse; @retval false on unknown names. */
bool tryParseMechanism(const std::string &s, Mechanism *out);

/** Every mechanism, in taxonomy order (for listings / validation). */
const std::vector<Mechanism> &allMechanisms();

/** True if the mechanism pipelines retry steps with CACHE READ. */
bool usesPipelining(Mechanism m);

/** True if the mechanism reduces tPRE via the RPT. */
bool usesAdaptiveTiming(Mechanism m);

/** True if the mechanism reduces the retry-step count ([84], [56]). */
bool usesStepReduction(Mechanism m);

/**
 * PSO step-count transform: ~70% fewer steps but never below three
 * for a read that needed retries (Section 3.1: "for every page read,
 * it requires at least three retry steps").
 */
int psoSteps(int n_rr);

/**
 * Sentinel step-count transform [56]: the per-page VOPT estimate
 * from the Sentinel cells lets most retries finish in one step
 * (average drops from 6.6 to 1.2), but the estimate is imperfect so
 * long walks keep a short tail.
 */
int sentinelSteps(int n_rr);

/** The step transform a mechanism applies (identity for most). */
int transformedSteps(Mechanism m, int n_rr);

} // namespace ssdrr::core

#endif // SSDRR_CORE_MECHANISM_HH

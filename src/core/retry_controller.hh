/**
 * @file
 * The read-retry controller: computes the full timeline of one page
 * read under a given mechanism (paper Figures 12 and 13).
 *
 * Given a page's error profile and operating point, the controller
 * determines how many retry steps the read takes and lays the
 * sense / data-transfer / ECC phases onto the die, the channel bus
 * and the channel's ECC engine, honoring each mechanism's pipelining
 * and timing rules:
 *
 *   Baseline : step k+1 sensed only after step k's ECC verdict.
 *   PR2      : step k+1 sensed right after step k's sensing
 *              (CACHE READ); the speculative extra step is killed
 *              with RESET (tRST) once ECC succeeds.
 *   AR2      : after the first failure, SET FEATURE (tSET) shortens
 *              tPRE per the RPT; steps remain serialized; the
 *              timing is rolled back after the final step.
 *   PnAR2    : AR2's reduced tR + PR2's pipelining.
 *   NoRR     : the error profile is ignored; no retry ever occurs.
 *   PSO      : the step count is first reduced per psoSteps() [84].
 */

#ifndef SSDRR_CORE_RETRY_CONTROLLER_HH
#define SSDRR_CORE_RETRY_CONTROLLER_HH

#include "core/mechanism.hh"
#include "core/rpt.hh"
#include "ecc/engine.hh"
#include "nand/error_model.hh"
#include "nand/timing.hh"
#include "ssd/channel.hh"

namespace ssdrr::core {

/** Complete timeline of one page read. */
struct ReadPlan {
    /** Retry steps executed (excluding the initial read and any
     *  speculative step that was RESET). */
    int retrySteps = 0;
    /** Extra steps caused by over-aggressive timing reduction. */
    int extraSteps = 0;
    /** True if AR2 had to redo the retry with default timing. */
    bool timingFallback = false;
    /** True if the page was eventually read correctly. */
    bool success = true;
    /** Tick when the die array becomes free again. */
    sim::Tick dieEnd = 0;
    /** Tick when corrected data is available to the host. */
    sim::Tick completion = 0;
};

class RetryController
{
  public:
    /**
     * @param mech retry mechanism to model
     * @param timing chip timing parameters
     * @param model calibrated error model (chip characterization)
     * @param rpt profiled timing table (required iff the mechanism
     *        uses adaptive timing)
     */
    RetryController(Mechanism mech, const nand::TimingParams &timing,
                    const nand::ErrorModel &model, const Rpt *rpt);

    Mechanism mechanism() const { return mech_; }

    /**
     * Plan a read starting at @p start.
     *
     * @param type page type (determines tR)
     * @param prof the page's error profile
     * @param op operating point at read time
     * @param ch channel bus (data transfers are reserved on it)
     * @param ecc channel ECC engine (decodes are reserved on it)
     */
    ReadPlan planRead(sim::Tick start, nand::PageType type,
                      const nand::PageErrorProfile &prof,
                      const nand::OperatingPoint &op, ssd::Channel &ch,
                      ecc::EccEngine &ecc) const;

  private:
    struct StepDecision {
        /** Retry steps performed with reduced (RPT) timing. */
        int reducedSteps = 0;
        /** Retry steps performed with default timing (the whole walk
         *  for non-adaptive mechanisms; the redo after a fallback). */
        int defaultSteps = 0;
        /** True if the reduced walk exhausted the table and the
         *  retry must be redone with default timing. */
        bool fallback = false;
        bool success = true;
        nand::TimingReduction reduction;
    };

    /** Decide the step count and timing reduction for this read. */
    StepDecision decideSteps(const nand::PageErrorProfile &prof,
                             const nand::OperatingPoint &op) const;

    ReadPlan planSequential(sim::Tick start, sim::Tick s_first,
                            sim::Tick s_retry, const StepDecision &dec,
                            ssd::Channel &ch, ecc::EccEngine &ecc,
                            bool set_feature) const;

    ReadPlan planPipelined(sim::Tick start, sim::Tick s_first,
                           sim::Tick s_retry, const StepDecision &dec,
                           ssd::Channel &ch, ecc::EccEngine &ecc,
                           bool set_feature) const;

    Mechanism mech_;
    nand::TimingParams timing_;
    const nand::ErrorModel &model_;
    const Rpt *rpt_;
};

} // namespace ssdrr::core

#endif // SSDRR_CORE_RETRY_CONTROLLER_HH

#include "core/rpt.hh"

#include "sim/logging.hh"

namespace ssdrr::core {

Rpt::Rpt(std::vector<double> pe_edges, std::vector<double> ret_edges,
         std::vector<double> reductions)
    : pe_edges_(std::move(pe_edges)), ret_edges_(std::move(ret_edges)),
      reductions_(std::move(reductions))
{
    SSDRR_ASSERT(!pe_edges_.empty() && !ret_edges_.empty(),
                 "RPT needs at least one bin per axis");
    SSDRR_ASSERT(reductions_.size() == pe_edges_.size() * ret_edges_.size(),
                 "RPT entry count mismatch");
    for (std::size_t i = 1; i < pe_edges_.size(); ++i)
        SSDRR_ASSERT(pe_edges_[i] > pe_edges_[i - 1],
                     "PE edges must increase");
    for (std::size_t i = 1; i < ret_edges_.size(); ++i)
        SSDRR_ASSERT(ret_edges_[i] > ret_edges_[i - 1],
                     "retention edges must increase");
}

std::size_t
Rpt::binOf(const std::vector<double> &edges, double v) const
{
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (v <= edges[i])
            return i;
    }
    // Beyond the profiled range: clamp to the most conservative bin.
    return edges.size() - 1;
}

nand::TimingReduction
Rpt::lookup(const nand::OperatingPoint &op) const
{
    const std::size_t pe = binOf(pe_edges_, op.peKilo);
    const std::size_t rt = binOf(ret_edges_, op.retentionMonths);
    nand::TimingReduction red;
    red.pre = reductions_[pe * ret_edges_.size() + rt];
    return red;
}

double
Rpt::entryAt(std::size_t pe_bin, std::size_t ret_bin) const
{
    SSDRR_ASSERT(pe_bin < pe_edges_.size() && ret_bin < ret_edges_.size(),
                 "RPT bin out of range");
    return reductions_[pe_bin * ret_edges_.size() + ret_bin];
}

Rpt
RptBuilder::build(const std::vector<double> &pe_edges,
                  const std::vector<double> &ret_edges) const
{
    std::vector<double> reductions;
    reductions.reserve(pe_edges.size() * ret_edges.size());
    for (double pe : pe_edges) {
        for (double ret : ret_edges) {
            // Profile the pessimistic bin corner at 85C; the safety
            // margin inside maxSafePreReduction covers temperature
            // and outlier pages (Section 5.2.3).
            nand::OperatingPoint corner{pe, ret, 85.0};
            reductions.push_back(model_.maxSafePreReduction(corner));
        }
    }
    return Rpt(pe_edges, ret_edges, std::move(reductions));
}

Rpt
RptBuilder::buildDefault() const
{
    // 6 x 6 = 36 combinations (paper Section 6.2: "with 36
    // (PEC, tRET) combinations ... 144 bytes per chip"), spanning
    // the paper's evaluated range: up to 2K P/E cycles and a 1-year
    // retention age (Figures 5, 11, 14).
    const std::vector<double> pe_edges = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
    const std::vector<double> ret_edges = {1.0, 2.0, 3.0, 6.0, 9.0, 12.0};
    return build(pe_edges, ret_edges);
}

} // namespace ssdrr::core

#include "core/predictive.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ssdrr::core {

ErrorPredictor::ErrorPredictor(const nand::ErrorModel &model,
                               double accuracy, std::uint64_t seed)
    : model_(model), accuracy_(accuracy), seed_(seed)
{
    SSDRR_ASSERT(accuracy >= 0.0 && accuracy <= 1.0,
                 "predictor accuracy must be in [0, 1], got ", accuracy);
}

ErrorPrediction
ErrorPredictor::predict(std::uint64_t chip, std::uint64_t block,
                        std::uint64_t page,
                        const nand::OperatingPoint &op) const
{
    const nand::PageErrorProfile prof =
        cache_ ? cache_->get(chip, block, page, op)
               : model_.pageProfile(chip, block, page, op);

    ErrorPrediction pred;
    pred.willRetry = prof.retrySteps > 0;
    pred.predictedErrors = prof.finalErrors;

    // Structured misprediction: flip the retry classification with
    // probability (1 - accuracy), deterministically per page.
    sim::Rng rng(sim::hashStream(seed_, chip, block, page));
    if (!rng.chance(accuracy_)) {
        pred.willRetry = !pred.willRetry;
        // A model that misclassifies also misestimates the error
        // count; bias it toward the decision it (wrongly) made.
        pred.predictedErrors =
            pred.willRetry ? prof.finalErrors * 2.0 + 40.0
                           : std::max(1.0, prof.finalErrors * 0.25);
    }
    return pred;
}

PredictiveController::PredictiveController(const nand::TimingParams &timing,
                                           const nand::ErrorModel &model,
                                           const Rpt &rpt,
                                           const ErrorPredictor &predictor,
                                           PredictiveConfig cfg)
    : timing_(timing), model_(model), rpt_(rpt), predictor_(predictor),
      pnar2_(Mechanism::PnAR2, timing, model, &rpt), cfg_(cfg)
{
}

ReadPlan
PredictiveController::planSpeculativeWalk(sim::Tick start, sim::Tick s_red,
                                          sim::Tick s_def, int n_red,
                                          bool fallback_walk,
                                          ssd::Channel &ch,
                                          ecc::EccEngine &ecc) const
{
    // Speculative retry start (Fig. 13 without the initial default
    // read): SET FEATURE immediately, then pipelined reduced-timing
    // sensing from the first VREF entry. Only the successful step's
    // transfer and decode sit on the critical path; intermediate
    // transfers drain into pipeline gaps exactly as in PnAR2.
    ReadPlan plan;
    const sim::Tick d = timing_.tDMA;

    sim::Tick sense_start = start + timing_.tSET;
    sim::Tick sense_end = 0;
    sim::Tick prev_dma_end = 0;
    sim::Tick dma_end = 0;
    sim::Tick ecc_end = 0;
    const int total = n_red + (fallback_walk ? n_red : 0);
    for (int k = 0; k < total; ++k) {
        const bool reduced = k < n_red;
        if (fallback_walk && k == n_red)
            sense_start += timing_.tSET; // roll back to default tR
        sense_end = sense_start + (reduced ? s_red : s_def);
        const sim::Tick ready = std::max(sense_end, prev_dma_end);
        dma_end = ch.acquire(ready, d) + d;
        ecc_end = ecc.acquire(dma_end) + ecc.tEcc();
        prev_dma_end = dma_end;
        sense_start = ready;
    }

    plan.retrySteps = total - 1; // first sensing replaces the read
    plan.extraSteps = fallback_walk ? n_red : 0;
    plan.timingFallback = fallback_walk;
    plan.success = true;
    plan.completion = ecc_end;
    const sim::Tick spec_end = sense_start + s_red;
    const sim::Tick reset_end = ecc_end + timing_.tRST;
    plan.dieEnd =
        std::max(dma_end, std::min(spec_end, reset_end)) + timing_.tSET;
    return plan;
}

ReadPlan
PredictiveController::planRead(sim::Tick start, nand::PageType type,
                               std::uint64_t chip, std::uint64_t block,
                               std::uint64_t page,
                               const nand::OperatingPoint &op,
                               ssd::Channel &ch, ecc::EccEngine &ecc) const
{
    const nand::PageErrorProfile prof =
        cache_ ? cache_->get(chip, block, page, op)
               : model_.pageProfile(chip, block, page, op);
    const ErrorPrediction pred =
        predictor_.predict(chip, block, page, op);

    const nand::TimingReduction red = rpt_.lookup(op);
    const sim::Tick s_def = timing_.tR(type);
    const sim::Tick s_red = timing_.tR(type, red);
    const double extra = model_.deltaErrors(red, op);

    if (pred.willRetry && cfg_.speculativeRetryStart && !red.none()) {
        // Walk the retry table with reduced timing from the start.
        const nand::ReadOutcome out = model_.simulateRead(prof, extra);
        ++spec_starts_;
        if (prof.retrySteps == 0)
            ++mispredictions_; // the default read would have passed
        if (out.success) {
            // n_red sensings: the walk reaches the same final VREF
            // entry, and the (wasted) step-0 sensing replaces the
            // initial default read.
            return planSpeculativeWalk(start, s_red, s_def,
                                       out.retrySteps + 1, false, ch,
                                       ecc);
        }
        // Reduced walk exhausted (outlier page): redo with default
        // timing, pipelined.
        return planSpeculativeWalk(start, s_red, s_def,
                                   model_.cal().retryTableSteps + 1, true,
                                   ch, ecc);
    }

    if (!pred.willRetry && cfg_.reducedRegularReads && !red.none() &&
        pred.predictedErrors + extra + model_.cal().safetyMarginBits <=
            model_.cal().eccCapability) {
        // Regular read with reduced timing. If the page actually
        // decodes at step 0 even with the extra errors, we saved
        // (1 - rho) * tR; otherwise fall back to a default-timing
        // read and the regular PnAR2 walk after it.
        ++reduced_regular_;
        const double e0 = model_.stepErrors(prof, 0, extra);
        if (e0 <= model_.cal().eccCapability) {
            ReadPlan plan;
            const sim::Tick sense_end = start + timing_.tSET + s_red;
            const sim::Tick dma_end =
                ch.acquire(sense_end, timing_.tDMA) + timing_.tDMA;
            plan.completion = ecc.acquire(dma_end) + ecc.tEcc();
            plan.dieEnd = dma_end + timing_.tSET;
            plan.success = true;
            return plan;
        }
        // Mispredicted: pay the wasted reduced read, then run the
        // regular walk from scratch.
        ++mispredictions_;
        const sim::Tick wasted = timing_.tSET + s_red + timing_.tDMA +
                                 ecc.tEcc() + timing_.tSET;
        ReadPlan plan = pnar2_.planRead(start + wasted, type, prof, op,
                                        ch, ecc);
        plan.extraSteps += 1;
        return plan;
    }

    // No extension applies: regular PnAR2.
    if (pred.willRetry != (prof.retrySteps > 0))
        ++mispredictions_;
    return pnar2_.planRead(start, type, prof, op, ch, ecc);
}

} // namespace ssdrr::core

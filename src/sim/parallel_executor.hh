/**
 * @file
 * Conservative time-window synchronizer for sharded discrete-event
 * simulation.
 *
 * A ParallelExecutor advances several simulation domains — each one
 * an independent EventQueue (the drives of a host::SsdArray plus its
 * host side) — in lock-step windows of a fixed width Δ. Δ must be a
 * lower bound on the cross-domain interaction latency (for an SSD
 * array: the host dispatch/completion turnaround), so every message
 * sent during window [W, W+Δ) is delivered at a tick >= W+Δ and can
 * be exchanged at the window boundary without ever violating
 * causality. Within a window, domains share nothing and run
 * concurrently on a worker pool.
 *
 * Two idle-path optimizations keep sparse phases cheap without
 * touching the determinism contract:
 *  - Idle-window fast-forward: each window starts at the global
 *    minimum pending tick, and when every domain but one is idle
 *    past the window end the coordinator runs the lone active domain
 *    inline instead of engaging the fleet (windowsSkipped counts
 *    these). Both decisions derive from queue state only, so window
 *    placement is still identical for every worker count.
 *  - Adaptive parking: epoch waits are bounded-spin-then-park on a
 *    condvar, with a spin budget sized to how many hardware cores
 *    back the pool — oversubscribed pools park almost immediately
 *    instead of stealing the running thread's timeslice (spin/park
 *    counters are exposed for reporting; they are timing-dependent
 *    and carry no determinism guarantee).
 *
 * Determinism contract (the point of this design): results are
 * bit-identical for any worker count, including 1. This follows from
 * three properties, each enforced here:
 *  1. A domain's execution between barriers is single-threaded and
 *     depends only on its own queue contents (domains must not share
 *     mutable state; cross-domain effects go through send()).
 *  2. Window boundaries are derived only from global queue state
 *     (the minimum pending tick across domains), never from thread
 *     timing.
 *  3. Mailbox delivery is totally ordered: messages are scheduled
 *     onto the receiving queue sorted by (delivery tick, sender
 *     domain id, sender send-order), regardless of which worker ran
 *     the sender.
 *
 * Ownership: the executor borrows the domain EventQueues (callers
 * keep them alive for the executor's lifetime) and owns its worker
 * threads, which exist only inside run().
 *
 * Thread-safety: addDomain() and run() are coordinator-only.
 * send() may be called from whichever worker is currently executing
 * the sending domain's window (the per-sender outbox is
 * thread-confined), or from the coordinator outside run().
 */

#ifndef SSDRR_SIM_PARALLEL_EXECUTOR_HH
#define SSDRR_SIM_PARALLEL_EXECUTOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace ssdrr::sim {

class ParallelExecutor
{
  public:
    using DomainId = std::uint32_t;
    using Callback = InlineCallback;

    /**
     * @param window window width Δ in ticks (> 0); every send()'s
     *               delivery tick must lie at or beyond the end of
     *               the window it is sent from, which holds whenever
     *               the modelled cross-domain latency is >= Δ
     * @param threads worker threads for the window phase (clamped to
     *                [1, domains]; 1 = run domains inline, no
     *                threads). Results are identical for any value.
     * @param batch_mailbox doorbell batching: coalesce messages that
     *                share a (receiver, delivery tick) into one
     *                EventQueue::scheduleBatch call at the window
     *                barrier, so a burst of same-window crossings
     *                pays one heap event instead of one per message.
     *                Bit-identical to unbatched delivery (see
     *                route()); on by default, off exists for the
     *                batched-vs-unbatched parity oracle.
     */
    explicit ParallelExecutor(Tick window, unsigned threads = 1,
                              bool batch_mailbox = true);
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Register a domain (coordinator-only, before run()). */
    DomainId addDomain(EventQueue &q);

    std::uint32_t domains() const
    {
        return static_cast<std::uint32_t>(doms_.size());
    }
    Tick window() const { return window_; }
    unsigned threads() const { return threads_; }
    /** True when same-(receiver, tick) deliveries are coalesced. */
    bool batchMailbox() const { return batch_mailbox_; }
    /** Windows executed so far (introspection / tests). */
    std::uint64_t windowsRun() const { return windows_run_; }
    /**
     * Idle-window fast-forward count: windows in which every domain
     * but one had its nextPendingTick() at or past the window end
     * (and outboxes were empty, as they always are at the window
     * decision point), so the coordinator ran the one active domain
     * inline and never engaged the worker fleet. Derived purely from
     * queue state, so — like windowsRun() — it is deterministic and
     * identical for every worker count.
     */
    std::uint64_t windowsSkipped() const { return windows_skipped_; }
    /**
     * Times any thread (workers + coordinator) gave up its bounded
     * spin and blocked on the parking condvar. Timing-dependent —
     * never compare across runs, only report.
     */
    std::uint64_t parks() const;
    /** Total bounded-spin iterations burned while waiting (workers +
     *  coordinator). Timing-dependent, report-only. */
    std::uint64_t spins() const;
    /** Messages delivered so far (batched or not). */
    std::uint64_t messagesRouted() const { return messages_routed_; }
    /** Messages that rode in a coalesced batch behind another message
     *  with the same (receiver, tick) — the heap events doorbell
     *  batching saved. Zero when batching is off. */
    std::uint64_t messagesCoalesced() const
    {
        return messages_coalesced_;
    }

    /**
     * Queue @p cb for execution on domain @p to at tick
     * @p deliver_at. Must be called from @p from's execution context
     * (its worker during a window, or the coordinator outside run());
     * @p deliver_at must not precede the end of the current window.
     * Delivery order for a common (tick, receiver) is (sender id,
     * send order).
     */
    void send(DomainId from, DomainId to, Tick deliver_at, Callback cb);

    /**
     * Run windows until every domain's queue is drained and no
     * message is undelivered, then advance all domains' clocks to
     * the common end time. May be called repeatedly (more work can
     * be injected between calls via send()).
     * @return the common end tick
     */
    Tick run();

  private:
    /** One cross-domain delivery. (to, when, from, seq) is a total
     *  order — the delivery order, independent of gather order and
     *  sort stability. */
    struct Msg {
        Tick when = 0;
        std::uint64_t seq = 0; ///< sender-local send order
        DomainId from = 0;
        DomainId to = 0;
        Callback cb;
    };

    struct Domain {
        EventQueue *q = nullptr;
        /** Messages sent by this domain, not yet routed. Confined to
         *  the thread executing the domain's window. */
        std::vector<Msg> outbox;
        std::uint64_t next_seq = 1;
    };

    /** Per-thread wait accounting (slot 0 = coordinator, slot 1+i =
     *  worker i); cache-line sized so workers never share a line. */
    struct alignas(64) WaitCounters {
        std::uint64_t spins = 0;
        std::uint64_t parks = 0;
    };

    /** Route all outboxes onto the receiving queues (coordinator). */
    void route();
    /** Run domains d with d % stride == offset up to window_end_. */
    void runShard(unsigned offset, unsigned stride);
    void workerLoop(unsigned index, std::uint64_t start_epoch);
    /** Wake any workers parked waiting for a new epoch. */
    void wakeWorkers();

    Tick window_;
    unsigned threads_;
    bool batch_mailbox_;
    std::vector<Domain> doms_;
    std::vector<Msg> route_scratch_;
    std::uint64_t windows_run_ = 0;
    std::uint64_t windows_skipped_ = 0;
    std::uint64_t messages_routed_ = 0;
    std::uint64_t messages_coalesced_ = 0;

    // ----- window-phase worker handshake -----
    // The coordinator publishes window_end_ and bumps epoch_
    // (release); workers observe the new epoch (acquire), run their
    // shard, and bump done_. Dedicated worker threads exist only
    // while run() executes and only when threads_ > 1.
    //
    // Waits are bounded-spin-then-park: each side busy-polls for a
    // spin budget (small when the pool is oversubscribed — spinning
    // against a descheduled peer only burns the peer's timeslice —
    // larger when cores are plentiful), then blocks on park_mu_/
    // park_cv_. Wakers bump the watched atomic first and only take
    // the mutex when the parked counter says someone is actually
    // asleep, so the uncontended window pays two atomic ops and no
    // syscalls.
    Tick window_end_ = 0; ///< exclusive; valid for the current epoch
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> done_{0};
    std::atomic<bool> stop_{false};
    unsigned pool_size_ = 0; ///< spawned workers (threads_ - 1)
    unsigned spin_budget_ = 0; ///< per-wait iterations before parking
    std::mutex park_mu_;
    std::condition_variable park_cv_; ///< workers: new epoch
    std::condition_variable done_cv_; ///< coordinator: shards done
    std::atomic<unsigned> parked_workers_{0};
    std::atomic<bool> coord_parked_{false};
    std::vector<WaitCounters> wait_counters_;
};

} // namespace ssdrr::sim

#endif // SSDRR_SIM_PARALLEL_EXECUTOR_HH

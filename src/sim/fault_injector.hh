/**
 * @file
 * Deterministic fault-injection timeline.
 *
 * A FaultInjector owns a declared timeline of seeded fault events
 * and answers pure queries about it:
 *  - fail-stop: drive d stops completing at tick T (permanent),
 *  - fail-slow: drive d's completions stretch by a latency
 *    multiplier over a [at, until) window,
 *  - transient UECC: reads of drive d inside a [at, until) window
 *    complete uncorrectable with a seeded probability.
 *
 * Determinism contract: the injector holds no mutable state and no
 * sequential RNG. UECC draws hash (seed, drive, token) with a
 * splitmix64-style finalizer, so a draw depends only on its inputs —
 * never on how many draws other drives or workers made before it.
 * All queries are made from the host domain (host/array.cc), which
 * keeps worker-count invariance and bit-identical replay: the same
 * timeline and seed give the same faults for ANY thread count, and
 * an empty timeline changes nothing at all.
 */

#ifndef SSDRR_SIM_FAULT_INJECTOR_HH
#define SSDRR_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace ssdrr::sim {

/** One declared fault on the timeline. */
struct FaultEvent {
    enum class Kind : std::uint8_t {
        FailStop, ///< drive stops completing at tick `at` (permanent)
        FailSlow, ///< completions stretch by `multiplier` in [at, until)
        Uecc,     ///< reads fail uncorrectable w.p. `probability` in
                  ///< [at, until)
    };

    Kind kind = Kind::FailStop;
    std::uint32_t drive = 0;
    Tick at = 0;
    /** Window end (exclusive) for FailSlow/Uecc; kTickNever means
     *  open-ended. Ignored by FailStop (always permanent). */
    Tick until = kTickNever;
    /** FailSlow: device-latency multiplier (> 1). */
    double multiplier = 1.0;
    /** Uecc: per-read probability in (0, 1]. */
    double probability = 0.0;
    /** FailStop: start a rebuild-to-spare when the host detects the
     *  failure. */
    bool rebuild = false;
    /** FailStop + rebuild: stripe rows to rebuild (bounds the
     *  modeled rebuild region; 0 = the whole array). */
    std::uint64_t rebuildRows = 0;
};

class FaultInjector
{
  public:
    /**
     * @param timeline declared fault events (any order)
     * @param seed array-level seed for UECC draws
     * @param drives member-drive count (events must name drives
     *               below it)
     */
    FaultInjector(std::vector<FaultEvent> timeline, std::uint64_t seed,
                  std::uint32_t drives);

    bool empty() const { return timeline_.empty(); }
    const std::vector<FaultEvent> &timeline() const { return timeline_; }

    /** Earliest fail-stop tick of @p drive (kTickNever if it never
     *  fail-stops). */
    Tick failStopTick(std::uint32_t drive) const
    {
        return fail_stop_[drive];
    }

    /** True when @p drive has stopped completing at tick @p t. */
    bool failStopped(std::uint32_t drive, Tick t) const
    {
        return t >= fail_stop_[drive];
    }

    /** True when any fail-stop event exists on the timeline. */
    bool anyFailStop() const { return any_fail_stop_; }

    /** Latency multiplier active on @p drive at tick @p t (>= 1;
     *  overlapping windows compound). */
    double slowdownAt(std::uint32_t drive, Tick t) const;

    /**
     * Seeded UECC draw: does a read of @p drive at tick @p t complete
     * uncorrectable? @p token must be unique per attempt (the
     * subrequest id) so retries re-draw; the result is a pure
     * function of (seed, drive, event, token).
     */
    bool ueccAt(std::uint32_t drive, Tick t, std::uint64_t token) const;

  private:
    std::vector<FaultEvent> timeline_;
    std::uint64_t seed_;
    /** Per-drive earliest fail-stop tick (kTickNever = none). */
    std::vector<Tick> fail_stop_;
    bool any_fail_stop_ = false;
};

} // namespace ssdrr::sim

#endif // SSDRR_SIM_FAULT_INJECTOR_HH

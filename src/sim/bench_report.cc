#include "sim/bench_report.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace ssdrr::sim {

namespace {

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
fixed3(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
benchDigestText(const std::vector<BenchRun> &runs)
{
    std::ostringstream os;
    for (const BenchRun &r : runs) {
        os << r.name << " events=" << r.executedEvents
           << " reads=" << r.reads << " writes=" << r.writes
           << " retrySamples=" << r.retrySamples
           << " suspensions=" << r.suspensions
           << " gc=" << r.gcCollections
           << " readFailures=" << r.readFailures
           << " refreshes=" << r.refreshes
           << " simMs=" << fixed3(r.simulatedMs)
           << " avgRetrySteps=" << fixed3(r.avgRetrySteps)
           << " p50r=" << fixed3(r.p50ReadUs)
           << " p99r=" << fixed3(r.p99ReadUs)
           << " p999r=" << fixed3(r.p999ReadUs) << "\n";
    }
    return os.str();
}

std::uint64_t
benchDigest(const std::vector<BenchRun> &runs)
{
    return fnv1a(benchDigestText(runs));
}

bool
writeBenchJson(const std::string &path, const std::string &label,
               const std::vector<BenchRun> &runs)
{
    std::ofstream f(path);
    if (!f) {
        SSDRR_WARN("cannot write bench JSON to ", path);
        return false;
    }
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016" PRIx64,
                  benchDigest(runs));
    f << "{\n";
    f << "  \"bench\": \"sim_throughput\",\n";
    f << "  \"scenario\": \"" << jsonEscape(label) << "\",\n";
    f << "  \"digest\": \"" << digest << "\",\n";
    f << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const BenchRun &r = runs[i];
        f << "    {\n";
        f << "      \"name\": \"" << jsonEscape(r.name) << "\",\n";
        f << "      \"wall_seconds\": " << fixed3(r.wallSeconds) << ",\n";
        f << "      \"events_per_second\": " << fixed3(r.eventsPerSecond)
          << ",\n";
        f << "      \"reads_per_second\": " << fixed3(r.readsPerSecond)
          << ",\n";
        f << "      \"executed_events\": " << r.executedEvents << ",\n";
        f << "      \"reads\": " << r.reads << ",\n";
        f << "      \"writes\": " << r.writes << ",\n";
        f << "      \"retry_samples\": " << r.retrySamples << ",\n";
        f << "      \"avg_retry_steps\": " << fixed3(r.avgRetrySteps)
          << ",\n";
        f << "      \"suspensions\": " << r.suspensions << ",\n";
        f << "      \"gc_collections\": " << r.gcCollections << ",\n";
        f << "      \"read_failures\": " << r.readFailures << ",\n";
        f << "      \"refreshes\": " << r.refreshes << ",\n";
        f << "      \"simulated_ms\": " << fixed3(r.simulatedMs) << ",\n";
        f << "      \"p50_read_us\": " << fixed3(r.p50ReadUs) << ",\n";
        f << "      \"p99_read_us\": " << fixed3(r.p99ReadUs) << ",\n";
        f << "      \"p999_read_us\": " << fixed3(r.p999ReadUs) << ",\n";
        f << "      \"profile_cache_hits\": " << r.profileCacheHits
          << ",\n";
        f << "      \"profile_cache_misses\": " << r.profileCacheMisses
          << ",\n";
        f << "      \"degraded_reads\": " << r.degradedReads << ",\n";
        f << "      \"reconstruction_reads\": "
          << r.reconstructionReads << ",\n";
        f << "      \"parity_writes\": " << r.parityWrites << ",\n";
        f << "      \"p99_degraded_read_us\": "
          << fixed3(r.p99DegradedReadUs) << ",\n";
        f << "      \"p999_degraded_read_us\": "
          << fixed3(r.p999DegradedReadUs) << ",\n";
        f << "      \"cache_hits\": " << r.cacheHits << ",\n";
        f << "      \"cache_misses\": " << r.cacheMisses << ",\n";
        f << "      \"cache_evictions\": " << r.cacheEvictions
          << ",\n";
        f << "      \"prefetch_issued\": " << r.prefetchIssued
          << ",\n";
        f << "      \"prefetch_useful\": " << r.prefetchUseful
          << ",\n";
        f << "      \"host_p99_read_us\": " << fixed3(r.hostP99ReadUs)
          << ",\n";
        f << "      \"host_timeouts\": " << r.hostTimeouts << ",\n";
        f << "      \"host_retries\": " << r.hostRetries << ",\n";
        f << "      \"host_failovers\": " << r.hostFailovers << ",\n";
        f << "      \"uecc_reads\": " << r.ueccReads << ",\n";
        f << "      \"failed_requests\": " << r.failedRequests << ",\n";
        f << "      \"rebuild_reads\": " << r.rebuildReads << ",\n";
        f << "      \"time_to_rebuild_ms\": "
          << fixed3(r.timeToRebuildMs) << ",\n";
        f << "      \"avg_fabric_wait_us\": "
          << fixed3(r.avgFabricWaitUs) << ",\n";
        f << "      \"fabric_busy_us\": " << fixed3(r.fabricBusyUs)
          << ",\n";
        f << "      \"fabric_bytes\": " << r.fabricBytes << ",\n";
        f << "      \"fabric_max_queue_depth\": "
          << r.fabricMaxQueueDepth << ",\n";
        f << "      \"windows_run\": " << r.windowsRun << ",\n";
        f << "      \"windows_skipped\": " << r.windowsSkipped << ",\n";
        f << "      \"parks\": " << r.parks << ",\n";
        f << "      \"spins\": " << r.spins << ",\n";
        f << "      \"unreliable\": "
          << (r.unreliable ? "true" : "false") << "\n";
        f << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    f << "  ]\n";
    f << "}\n";
    return static_cast<bool>(f);
}

int
checkBenchDigest(const std::string &golden_path,
                 const std::vector<BenchRun> &runs)
{
    std::ifstream f(golden_path);
    if (!f) {
        std::fprintf(stderr, "cannot read golden digest file %s\n",
                     golden_path.c_str());
        return 2;
    }
    std::string golden;
    f >> golden;
    char actual[32];
    std::snprintf(actual, sizeof(actual), "%016" PRIx64,
                  benchDigest(runs));
    if (golden == actual)
        return 0;
    std::fprintf(stderr,
                 "simulation-result digest mismatch:\n"
                 "  golden: %s (%s)\n"
                 "  actual: %s\n"
                 "results this digest covers:\n%s",
                 golden.c_str(), golden_path.c_str(), actual,
                 benchDigestText(runs).c_str());
    return 1;
}

bool
writeBenchGolden(const std::string &golden_path,
                 const std::vector<BenchRun> &runs)
{
    std::ofstream f(golden_path);
    if (!f) {
        SSDRR_WARN("cannot write golden digest to ", golden_path);
        return false;
    }
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016" PRIx64,
                  benchDigest(runs));
    f << digest << "\n\n"
      << "# FNV-1a over the canonical result serialization below.\n"
      << "# Regenerate with: bench_sim_throughput --short "
         "--update-golden <this file>\n\n"
      << benchDigestText(runs);
    return static_cast<bool>(f);
}

} // namespace ssdrr::sim

/**
 * @file
 * Gap-filling reservation timeline for serially-shared resources.
 *
 * A read-retry plan reserves several short windows (DMA bursts, ECC
 * decodes) spread over a long interval. Tracking only a busy-until
 * watermark would let one plan blockade the resource between its own
 * windows; this timeline keeps the set of reserved intervals and
 * grants the first gap that fits, which models a work-conserving
 * arbiter interleaving independent transactions.
 *
 * The interval set is a sorted flat vector, not a std::map: acquire()
 * runs several times per retry step and was the single hottest
 * function of whole-SSD simulation under the red-black tree. The TSU
 * trims completed intervals with releaseBefore() on every read, so
 * the vector stays short and contiguous — binary search plus a
 * memmove-backed insert beats pointer-chasing node rebalancing by a
 * wide margin at these sizes, with identical grant semantics.
 */

#ifndef SSDRR_SIM_RESERVATION_HH
#define SSDRR_SIM_RESERVATION_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ssdrr::sim {

class ReservationTimeline
{
  public:
    /**
     * Reserve @p dur starting no earlier than @p earliest; the
     * earliest gap that fits wins. Adjacent reservations are merged.
     * @return granted start tick.
     *
     * The append-at-tail case (no reservation ends after @p earliest,
     * i.e. zero candidate conflicts) is inlined: it is the common
     * grant on a resource whose timeline is trimmed every read, and
     * skipping the binary search + memmove-backed insert is worth
     * several percent of whole-SSD wall time.
     */
    Tick
    acquire(Tick earliest, Tick dur)
    {
        SSDRR_ASSERT(dur > 0, "zero-length reservation");
        if (busy_.empty() || earliest >= busy_.back().end) {
            // Ends are sorted, so nothing conflicts: the grant is
            // [earliest, earliest + dur), merged into the tail
            // reservation when adjacent.
            total_busy_ += dur;
            ++grants_;
            if (!busy_.empty() && busy_.back().end == earliest) {
                busy_.back().end = earliest + dur;
            } else {
                busy_.push_back(Interval{earliest, earliest + dur});
            }
            hint_ = busy_.size() - 1;
            return earliest;
        }
        return acquireSlow(earliest, dur);
    }

    /** End of the last reservation (0 if none). */
    Tick horizon() const;

    /** Total reserved time. */
    Tick totalBusy() const { return total_busy_; }

    /** Number of grants issued. */
    std::uint64_t grants() const { return grants_; }

    /**
     * Drop bookkeeping for intervals that end at or before @p now
     * (completed traffic can no longer conflict). Keeps the interval
     * set small during long simulations.
     */
    void releaseBefore(Tick now);

    /** Number of tracked intervals (for tests). */
    std::size_t intervals() const { return busy_.size(); }

  private:
    /** Reserved [start, end) window. */
    struct Interval {
        Tick start;
        Tick end;
    };

    /** Gap-filling path for grants that have candidate conflicts. */
    Tick acquireSlow(Tick earliest, Tick dur);

    /** Disjoint, sorted by start (ends are therefore sorted too). */
    std::vector<Interval> busy_;
    /**
     * Index of the interval touched by the last grant — the search
     * shortcut for the forward-walking acquire chains a pipelined
     * retry plan issues. Purely advisory: acquireSlow() re-validates
     * it against current contents before trusting it.
     */
    std::size_t hint_ = 0;
    Tick total_busy_ = 0;
    std::uint64_t grants_ = 0;
};

} // namespace ssdrr::sim

#endif // SSDRR_SIM_RESERVATION_HH

#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace ssdrr::sim {

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    SSDRR_ASSERT(when >= now_, "scheduling into the past: when=", when,
                 " now=", now_);
    SSDRR_ASSERT(cb, "scheduling a null callback");
    const EventId id = next_id_++;
    heap_.push(Entry{when, id, std::move(cb)});
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    if (id == 0 || id >= next_id_)
        return false;
    // We cannot remove from the heap directly; remember the id and
    // skip it when popped. The set stays small because entries are
    // erased when their heap node surfaces.
    if (cancelled_.count(id))
        return false;
    // Only mark as cancelled if it could still be pending. We cannot
    // know cheaply whether it already ran, so callers must not cancel
    // events they know have executed; pending() stays correct because
    // popRunnable erases stale markers.
    cancelled_.insert(id);
    return true;
}

std::size_t
EventQueue::pending() const
{
    // cancelled_ may contain ids that already ran only if the caller
    // cancelled an executed event, which the API forbids; under the
    // contract every cancelled id is still in the heap.
    return heap_.size() - cancelled_.size();
}

bool
EventQueue::popRunnable(Entry &out)
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        auto it = cancelled_.find(e.id);
        if (it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        out = std::move(e);
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick until)
{
    Entry e;
    while (!heap_.empty()) {
        if (heap_.top().when > until)
            break;
        if (!popRunnable(e))
            break;
        SSDRR_ASSERT(e.when >= now_, "time went backwards");
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    return now_;
}

bool
EventQueue::step()
{
    Entry e;
    if (!popRunnable(e))
        return false;
    now_ = e.when;
    ++executed_;
    e.cb();
    return true;
}

} // namespace ssdrr::sim

#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace ssdrr::sim {

namespace {

constexpr std::uint64_t kSlotBits = 32;
constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;

constexpr EventId
makeId(std::uint32_t gen, std::uint32_t slot)
{
    return (static_cast<std::uint64_t>(gen) << kSlotBits) | slot;
}

} // namespace

void
EventQueue::reserve(std::size_t events)
{
    heap_.reserve(events);
    slots_.reserve(events);
    free_slots_.reserve(events);
}

std::uint32_t
EventQueue::allocSlot(Callback cb)
{
    std::uint32_t idx;
    if (!free_slots_.empty()) {
        idx = free_slots_.back();
        free_slots_.pop_back();
    } else {
        SSDRR_ASSERT(slots_.size() <= kSlotMask,
                     "event slot table exhausted");
        idx = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    Slot &s = slots_[idx];
    SSDRR_DEBUG_ASSERT(s.state == SlotState::Free,
                       "allocating a live slot ", idx);
    s.state = SlotState::Pending;
    s.cb = std::move(cb);
    return idx;
}

void
EventQueue::freeSlot(std::uint32_t idx)
{
    Slot &s = slots_[idx];
    SSDRR_DEBUG_ASSERT(s.state != SlotState::Free, "double free of slot ",
                       idx);
    s.cb = nullptr;
    s.state = SlotState::Free;
    // Stamp the reuse: any EventId minted for the previous occupancy
    // is now stale and can never cancel a future event in this slot.
    ++s.gen;
    free_slots_.push_back(idx);
}

void
EventQueue::heapPush(HeapEntry e)
{
    // Sift-up on a plain vector: entries are 24-byte PODs, so moving
    // them is trivial (no allocation, no callback relocation). The
    // sift propagates a hole — each displaced parent is written once
    // and the new entry lands in its final position, instead of
    // three-move swaps at every level. Final layout is identical to
    // the swap formulation.
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!before(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

EventQueue::HeapEntry
EventQueue::heapPop()
{
    SSDRR_DEBUG_ASSERT(!heap_.empty(), "pop from empty heap");
    const HeapEntry top = heap_.front();
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0)
        return top;
    // Hole-propagating sift-down of the detached last entry: the
    // smaller child moves up while it precedes `last`, then `last`
    // drops into the hole. Same comparisons and final layout as the
    // swap formulation, one write per level instead of three.
    std::size_t i = 0;
    while (true) {
        const std::size_t l = 2 * i + 1;
        if (l >= n)
            break;
        std::size_t best = l;
        const std::size_t r = l + 1;
        if (r < n && before(heap_[r], heap_[l]))
            best = r;
        if (!before(heap_[best], last))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = last;
    return top;
}

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    SSDRR_ASSERT(when >= now_, "scheduling into the past: when=", when,
                 " now=", now_);
    SSDRR_ASSERT(cb, "scheduling a null callback");
    const std::uint32_t slot = allocSlot(std::move(cb));
    const EventId id = makeId(slots_[slot].gen, slot);
    heapPush(HeapEntry{when, next_seq_++, slot});
    ++pending_;
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return schedule(now_ + delay, std::move(cb));
}

EventId
EventQueue::scheduleBatch(Tick when, std::vector<Callback> cbs)
{
    SSDRR_ASSERT(!cbs.empty(), "scheduling an empty batch");
    if (cbs.size() == 1)
        return schedule(when, std::move(cbs.front()));
    // One event carries the whole batch; run() counts it once, so the
    // batch callback accounts for the other size()-1 executions to
    // keep executedEvents() identical to individual scheduling.
    return schedule(when, [this, cbs = std::move(cbs)]() mutable {
        executed_ += cbs.size() - 1;
        for (Callback &cb : cbs)
            cb();
    });
}

bool
EventQueue::cancel(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
    const auto gen = static_cast<std::uint32_t>(id >> kSlotBits);
    if (slot >= slots_.size())
        return false;
    Slot &s = slots_[slot];
    if (s.gen != gen) {
        // Stale id: the event already executed or was cancelled, and
        // the slot may since have been reused. The generation stamp
        // makes this detectable, so (unlike the old lazy-marker
        // design) cancelling an executed id is harmless and
        // pending() stays exact.
        return false;
    }
    if (s.state != SlotState::Pending)
        return false;
    s.state = SlotState::Cancelled;
    s.cb = nullptr; // release the capture eagerly
    SSDRR_DEBUG_ASSERT(pending_ > 0, "cancel with no pending events");
    --pending_;
    // Keep nextPendingTick() a pure probe: if the killed event was
    // the heap root, prune here (amortized O(log n) against this
    // cancel) rather than leaving a tombstone for readers to skip.
    // The heap can be empty mid-drain (the victim may already be
    // extracted into run()'s batch; executeEntry() then skips it).
    if (!heap_.empty() && heap_.front().slot == slot)
        pruneCancelledTop();
    return true;
}

void
EventQueue::pruneCancelledTop()
{
    while (!heap_.empty() &&
           slots_[heap_.front().slot].state == SlotState::Cancelled) {
        const std::uint32_t slot = heap_.front().slot;
        heapPop();
        freeSlot(slot);
    }
}

void
EventQueue::executeEntry(const HeapEntry &e)
{
    Slot &s = slots_[e.slot];
    if (s.state == SlotState::Cancelled) {
        // Cancelled after extraction by an earlier callback of the
        // same drained tick; cancel() already dropped pending_.
        freeSlot(e.slot);
        return;
    }
    SSDRR_DEBUG_ASSERT(s.state == SlotState::Pending,
                       "heap entry references a free slot ", e.slot);
    Callback cb = std::move(s.cb);
    freeSlot(e.slot);
    SSDRR_DEBUG_ASSERT(pending_ > 0, "execute with pending_ == 0");
    --pending_;
    ++executed_;
    cb();
}

Tick
EventQueue::nextPendingTick() const
{
    if (heap_.empty()) {
        SSDRR_DEBUG_ASSERT(pending_ == 0, "empty heap but pending_ = ",
                           pending_);
        return kTickNever;
    }
    SSDRR_DEBUG_ASSERT(slots_[heap_.front().slot].state ==
                           SlotState::Pending,
                       "cancelled entry at heap root");
    return heap_.front().when;
}

void
EventQueue::advanceTo(Tick t)
{
    SSDRR_ASSERT(t >= now_, "advanceTo into the past: t=", t,
                 " now=", now_);
    SSDRR_ASSERT(nextPendingTick() >= t,
                 "advanceTo would skip a pending event");
    now_ = t;
}

Tick
EventQueue::run(Tick until)
{
    // Drain-tick loop. Each iteration picks the earliest tick t and
    // retires *every* entry at t before looking at the clock again:
    // the lone-event case (by far the most common) runs straight off
    // the heap, and a same-tick burst is extracted in one maintenance
    // pass and executed from a flat scratch vector in seq order.
    // Callbacks that schedule *at* t get seq numbers above every
    // extracted entry, so the outer loop re-draining t preserves the
    // exact pop-one-at-a-time order; callbacks that cancel a not-yet-
    // run same-tick event are honored by executeEntry()'s slot-state
    // re-check.
    while (true) {
        // Cancelled entries surface only while popping; re-establish
        // the pending-root invariant before reading the clock so a
        // tombstone inside the horizon can't hide a pending event
        // beyond it (and so exits leave nextPendingTick() pure).
        pruneCancelledTop();
        if (heap_.empty() || heap_.front().when > until)
            break;
        const Tick t = heap_.front().when;
        SSDRR_DEBUG_ASSERT(t >= now_, "time went backwards");
        now_ = t;

        const HeapEntry e = heapPop();
        if (heap_.empty() || heap_.front().when != t) {
            // Lone event at t; the pruned root was Pending.
            executeEntry(e);
            continue;
        }

        // Burst: extract the whole tick, then run it. The scratch's
        // capacity is reused across ticks but stolen into a local so
        // a reentrant run()/step() from a callback can't clobber it.
        std::vector<HeapEntry> batch = std::move(drain_);
        batch.clear();
        batch.push_back(e);
        do {
            batch.push_back(heapPop());
        } while (!heap_.empty() && heap_.front().when == t);
        for (const HeapEntry &b : batch)
            executeEntry(b);
        batch.clear();
        drain_ = std::move(batch);
    }
    return now_;
}

bool
EventQueue::step()
{
    pruneCancelledTop();
    if (heap_.empty()) {
        SSDRR_DEBUG_ASSERT(pending_ == 0, "empty heap but pending_ = ",
                           pending_);
        return false;
    }
    const HeapEntry e = heapPop();
    now_ = e.when;
    executeEntry(e);
    pruneCancelledTop();
    return true;
}

} // namespace ssdrr::sim

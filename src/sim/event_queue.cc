#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace ssdrr::sim {

namespace {

constexpr std::uint64_t kSlotBits = 32;
constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;

constexpr EventId
makeId(std::uint32_t gen, std::uint32_t slot)
{
    return (static_cast<std::uint64_t>(gen) << kSlotBits) | slot;
}

} // namespace

void
EventQueue::reserve(std::size_t events)
{
    heap_.reserve(events);
    slots_.reserve(events);
    free_slots_.reserve(events);
}

std::uint32_t
EventQueue::allocSlot(Callback cb)
{
    std::uint32_t idx;
    if (!free_slots_.empty()) {
        idx = free_slots_.back();
        free_slots_.pop_back();
    } else {
        SSDRR_ASSERT(slots_.size() <= kSlotMask,
                     "event slot table exhausted");
        idx = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    Slot &s = slots_[idx];
    SSDRR_DEBUG_ASSERT(s.state == SlotState::Free,
                       "allocating a live slot ", idx);
    s.state = SlotState::Pending;
    s.cb = std::move(cb);
    return idx;
}

void
EventQueue::freeSlot(std::uint32_t idx)
{
    Slot &s = slots_[idx];
    SSDRR_DEBUG_ASSERT(s.state != SlotState::Free, "double free of slot ",
                       idx);
    s.cb = nullptr;
    s.state = SlotState::Free;
    // Stamp the reuse: any EventId minted for the previous occupancy
    // is now stale and can never cancel a future event in this slot.
    ++s.gen;
    free_slots_.push_back(idx);
}

void
EventQueue::heapPush(HeapEntry e)
{
    // Sift-up on a plain vector: entries are 24-byte PODs, so every
    // swap is a trivial move (no allocation, no callback relocation).
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!before(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

EventQueue::HeapEntry
EventQueue::heapPop()
{
    SSDRR_DEBUG_ASSERT(!heap_.empty(), "pop from empty heap");
    const HeapEntry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    while (true) {
        const std::size_t l = 2 * i + 1;
        const std::size_t r = l + 1;
        std::size_t best = i;
        if (l < n && before(heap_[l], heap_[best]))
            best = l;
        if (r < n && before(heap_[r], heap_[best]))
            best = r;
        if (best == i)
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
    return top;
}

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    SSDRR_ASSERT(when >= now_, "scheduling into the past: when=", when,
                 " now=", now_);
    SSDRR_ASSERT(cb, "scheduling a null callback");
    const std::uint32_t slot = allocSlot(std::move(cb));
    const EventId id = makeId(slots_[slot].gen, slot);
    heapPush(HeapEntry{when, next_seq_++, slot});
    ++pending_;
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return schedule(now_ + delay, std::move(cb));
}

EventId
EventQueue::scheduleBatch(Tick when, std::vector<Callback> cbs)
{
    SSDRR_ASSERT(!cbs.empty(), "scheduling an empty batch");
    if (cbs.size() == 1)
        return schedule(when, std::move(cbs.front()));
    // One event carries the whole batch; run() counts it once, so the
    // batch callback accounts for the other size()-1 executions to
    // keep executedEvents() identical to individual scheduling.
    return schedule(when, [this, cbs = std::move(cbs)]() mutable {
        executed_ += cbs.size() - 1;
        for (Callback &cb : cbs)
            cb();
    });
}

bool
EventQueue::cancel(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
    const auto gen = static_cast<std::uint32_t>(id >> kSlotBits);
    if (slot >= slots_.size())
        return false;
    Slot &s = slots_[slot];
    if (s.gen != gen) {
        // Stale id: the event already executed or was cancelled, and
        // the slot may since have been reused. The generation stamp
        // makes this detectable, so (unlike the old lazy-marker
        // design) cancelling an executed id is harmless and
        // pending() stays exact.
        return false;
    }
    if (s.state != SlotState::Pending)
        return false;
    s.state = SlotState::Cancelled;
    s.cb = nullptr; // release the capture eagerly
    SSDRR_DEBUG_ASSERT(pending_ > 0, "cancel with no pending events");
    --pending_;
    return true;
}

bool
EventQueue::popRunnable(HeapEntry &out, Callback &cb)
{
    // nextPendingTick() is the one place that prunes lazily-deleted
    // cancelled entries off the heap top; after it returns a tick,
    // the top is guaranteed Pending.
    if (nextPendingTick() == kTickNever) {
        SSDRR_DEBUG_ASSERT(pending_ == 0, "empty heap but pending_ = ",
                           pending_);
        return false;
    }
    const HeapEntry e = heapPop();
    Slot &s = slots_[e.slot];
    SSDRR_DEBUG_ASSERT(s.state == SlotState::Pending,
                       "heap entry references a free slot ", e.slot);
    cb = std::move(s.cb);
    freeSlot(e.slot);
    SSDRR_DEBUG_ASSERT(pending_ > 0, "runnable pop with pending_ == 0");
    --pending_;
    out = e;
    return true;
}

Tick
EventQueue::nextPendingTick()
{
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.front();
        Slot &s = slots_[top.slot];
        if (s.state == SlotState::Cancelled) {
            const std::uint32_t slot = top.slot;
            heapPop();
            freeSlot(slot);
            continue;
        }
        SSDRR_DEBUG_ASSERT(s.state == SlotState::Pending,
                           "heap entry references a free slot ",
                           top.slot);
        return top.when;
    }
    return kTickNever;
}

void
EventQueue::advanceTo(Tick t)
{
    SSDRR_ASSERT(t >= now_, "advanceTo into the past: t=", t,
                 " now=", now_);
    SSDRR_ASSERT(nextPendingTick() >= t,
                 "advanceTo would skip a pending event");
    now_ = t;
}

Tick
EventQueue::run(Tick until)
{
    // nextPendingTick() prunes cancelled heap tops, so the horizon
    // check always inspects a *pending* event — a cancelled entry
    // inside the horizon must not let a pending event beyond it slip
    // through.
    while (true) {
        const Tick next = nextPendingTick();
        if (next == kTickNever || next > until)
            break;
        HeapEntry e;
        Callback cb;
        popRunnable(e, cb);
        SSDRR_ASSERT(e.when >= now_, "time went backwards");
        now_ = e.when;
        ++executed_;
        cb();
    }
    return now_;
}

bool
EventQueue::step()
{
    HeapEntry e;
    Callback cb;
    if (!popRunnable(e, cb))
        return false;
    now_ = e.when;
    ++executed_;
    cb();
    return true;
}

} // namespace ssdrr::sim

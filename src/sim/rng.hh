/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * A xoshiro256** generator seeded via splitmix64. Every stochastic
 * component takes an explicit Rng (or a derived stream) so whole-SSD
 * simulations are bit-reproducible given a seed. hashStream() derives
 * independent streams from structural coordinates (chip, block, page),
 * which is how per-page process variation stays stable regardless of
 * access order.
 */

#ifndef SSDRR_SIM_RNG_HH
#define SSDRR_SIM_RNG_HH

#include <cstdint>

namespace ssdrr::sim {

/** splitmix64 step; also used as a mixing/hash function. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless 64-bit mix of a value (finalizer of splitmix64). */
std::uint64_t mix64(std::uint64_t v);

/** Combine structural coordinates into a stream seed. */
std::uint64_t hashStream(std::uint64_t seed, std::uint64_t a,
                         std::uint64_t b = 0, std::uint64_t c = 0,
                         std::uint64_t d = 0);

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Raw 64 uniform bits. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n) for n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller (cached second value). */
    double normal();

    /** Normal with mean/stddev. */
    double normal(double mean, double stddev);

    /** Log-normal: exp(normal(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Exponential with given rate (mean 1/rate). */
    double exponential(double rate);

    /** Geometric-like integer >= 0 with success probability p. */
    std::uint64_t geometric(double p);

    /** Bernoulli trial. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

/**
 * Bounded Zipfian sampler over [0, n) with skew theta in [0, 1).
 *
 * Implements the Gray et al. quantile method used by YCSB; theta = 0
 * degenerates to uniform, theta ~0.99 is the YCSB default hot-spot
 * distribution.
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::uint64_t n, double theta);

    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2_;
};

} // namespace ssdrr::sim

#endif // SSDRR_SIM_RNG_HH

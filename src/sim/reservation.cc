#include "sim/reservation.hh"

#include "sim/logging.hh"

namespace ssdrr::sim {

Tick
ReservationTimeline::acquire(Tick earliest, Tick dur)
{
    SSDRR_ASSERT(dur > 0, "zero-length reservation");

    Tick start = earliest;
    // Walk intervals that could overlap [start, start + dur); the
    // first interval ending after `earliest` is the first candidate
    // conflict.
    auto it = busy_.begin();
    // Skip intervals entirely before `earliest` quickly: the first
    // interval whose end > earliest.
    if (!busy_.empty()) {
        it = busy_.upper_bound(earliest);
        if (it != busy_.begin()) {
            auto prev = std::prev(it);
            if (prev->second > earliest)
                it = prev; // overlaps earliest
        }
    }
    while (it != busy_.end() && it->first < start + dur) {
        if (it->second > start)
            start = it->second; // bump past this interval
        ++it;
    }

    // Insert [start, start + dur), merging with neighbours.
    Tick s = start;
    Tick e = start + dur;
    auto next = busy_.lower_bound(s);
    if (next != busy_.begin()) {
        auto prev = std::prev(next);
        if (prev->second == s) { // merge left
            s = prev->first;
            busy_.erase(prev);
        }
    }
    next = busy_.lower_bound(e);
    if (next != busy_.end() && next->first == e) { // merge right
        e = next->second;
        busy_.erase(next);
    }
    busy_[s] = e;

    total_busy_ += dur;
    ++grants_;
    return start;
}

Tick
ReservationTimeline::horizon() const
{
    return busy_.empty() ? 0 : busy_.rbegin()->second;
}

void
ReservationTimeline::releaseBefore(Tick now)
{
    for (auto it = busy_.begin(); it != busy_.end();) {
        if (it->second <= now)
            it = busy_.erase(it);
        else
            break;
    }
}

} // namespace ssdrr::sim

#include "sim/reservation.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ssdrr::sim {

Tick
ReservationTimeline::acquireSlow(Tick earliest, Tick dur)
{
    // First candidate conflict: the first interval whose end is
    // beyond `earliest`. Ends are sorted (intervals are disjoint and
    // start-sorted), so binary search applies — but a retry plan
    // acquires a forward-walking chain of windows on the same
    // timeline, so the previous grant is usually the best starting
    // point: when the hinted interval ends at or before `earliest`,
    // every interval left of it does too (sorted ends), and a short
    // linear hop beats the branchy lower_bound.
    auto it = busy_.begin();
    if (hint_ < busy_.size() && busy_[hint_].end <= earliest) {
        it += static_cast<std::ptrdiff_t>(hint_) + 1;
        while (it != busy_.end() && it->end <= earliest)
            ++it;
    } else {
        it = std::lower_bound(busy_.begin(), busy_.end(), earliest,
                              [](const Interval &iv, Tick t) {
                                  return iv.end <= t;
                              });
    }

    // Slide the window past every conflicting interval; the first
    // gap that fits wins (identical semantics to the old tree walk).
    Tick start = earliest;
    while (it != busy_.end() && it->start < start + dur) {
        if (it->end > start)
            start = it->end;
        ++it;
    }
    const Tick end = start + dur;

    // `it` is the first interval at or after the granted window.
    // Merge with the right neighbour (end == its start) and/or the
    // left neighbour (its end == start), else insert.
    const bool merge_right = it != busy_.end() && it->start == end;
    const bool merge_left = it != busy_.begin() &&
                            std::prev(it)->end == start;
    if (merge_left && merge_right) {
        hint_ = static_cast<std::size_t>(it - busy_.begin()) - 1;
        std::prev(it)->end = it->end;
        busy_.erase(it);
    } else if (merge_left) {
        std::prev(it)->end = end;
        hint_ = static_cast<std::size_t>(it - busy_.begin()) - 1;
    } else if (merge_right) {
        it->start = start;
        hint_ = static_cast<std::size_t>(it - busy_.begin());
    } else {
        it = busy_.insert(it, Interval{start, end});
        hint_ = static_cast<std::size_t>(it - busy_.begin());
    }

    total_busy_ += dur;
    ++grants_;
    return start;
}

Tick
ReservationTimeline::horizon() const
{
    return busy_.empty() ? 0 : busy_.back().end;
}

void
ReservationTimeline::releaseBefore(Tick now)
{
    auto it = busy_.begin();
    while (it != busy_.end() && it->end <= now)
        ++it;
    const auto removed = static_cast<std::size_t>(it - busy_.begin());
    busy_.erase(busy_.begin(), it);
    // Keep the search hint pointing at the same interval. A stale
    // hint is never a correctness issue (acquireSlow re-validates
    // against current contents), only a missed shortcut.
    hint_ = hint_ >= removed ? hint_ - removed : 0;
}

} // namespace ssdrr::sim

#include "sim/reservation.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ssdrr::sim {

Tick
ReservationTimeline::acquire(Tick earliest, Tick dur)
{
    SSDRR_ASSERT(dur > 0, "zero-length reservation");

    // First candidate conflict: the first interval whose end is
    // beyond `earliest`. Ends are sorted (intervals are disjoint and
    // start-sorted), so binary search applies.
    auto it = std::lower_bound(busy_.begin(), busy_.end(), earliest,
                               [](const Interval &iv, Tick t) {
                                   return iv.end <= t;
                               });

    // Slide the window past every conflicting interval; the first
    // gap that fits wins (identical semantics to the old tree walk).
    Tick start = earliest;
    while (it != busy_.end() && it->start < start + dur) {
        if (it->end > start)
            start = it->end;
        ++it;
    }
    const Tick end = start + dur;

    // `it` is the first interval at or after the granted window.
    // Merge with the right neighbour (end == its start) and/or the
    // left neighbour (its end == start), else insert.
    const bool merge_right = it != busy_.end() && it->start == end;
    const bool merge_left = it != busy_.begin() &&
                            std::prev(it)->end == start;
    if (merge_left && merge_right) {
        std::prev(it)->end = it->end;
        busy_.erase(it);
    } else if (merge_left) {
        std::prev(it)->end = end;
    } else if (merge_right) {
        it->start = start;
    } else {
        busy_.insert(it, Interval{start, end});
    }

    total_busy_ += dur;
    ++grants_;
    return start;
}

Tick
ReservationTimeline::horizon() const
{
    return busy_.empty() ? 0 : busy_.back().end;
}

void
ReservationTimeline::releaseBefore(Tick now)
{
    auto it = busy_.begin();
    while (it != busy_.end() && it->end <= now)
        ++it;
    busy_.erase(busy_.begin(), it);
}

} // namespace ssdrr::sim

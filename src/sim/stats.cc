#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace ssdrr::sim {

void
Accumulator::add(double v)
{
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    // Welford's online variance update.
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

void
Histogram::add(double v)
{
    samples_.push_back(v);
    sorted_ = false;
}

double
Histogram::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double v : samples_)
        s += v;
    return s / static_cast<double>(samples_.size());
}

double
Histogram::percentile(double p) const
{
    SSDRR_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const auto n = samples_.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return samples_[rank - 1];
}

double
Histogram::min() const
{
    return percentile(0.0001);
}

double
Histogram::max() const
{
    return percentile(100.0);
}

void
Histogram::reset()
{
    samples_.clear();
    sorted_ = false;
}

void
StatSet::set(const std::string &name, double value)
{
    stats_[name] = value;
}

void
StatSet::inc(const std::string &name, double delta)
{
    stats_[name] += delta;
}

double
StatSet::get(const std::string &name) const
{
    auto it = stats_.find(name);
    SSDRR_ASSERT(it != stats_.end(), "unknown stat: ", name);
    return it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return stats_.count(name) != 0;
}

std::string
StatSet::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[k, v] : stats_)
        os << prefix << k << " = " << v << "\n";
    return os.str();
}

} // namespace ssdrr::sim

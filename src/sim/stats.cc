#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace ssdrr::sim {

void
Accumulator::add(double v)
{
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    // Welford's online variance update.
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

int
Histogram::bucketOf(double v)
{
    if (!(v > 0.0) || !std::isfinite(v))
        return 0; // zero, negative and non-finite samples
    int exp;
    const double m = std::frexp(v, &exp); // v = m * 2^exp, m in [0.5, 1)
    if (exp < kMinExp)
        return 1; // underflow: smallest finite bucket
    if (exp >= kMaxExp)
        return kBuckets - 1; // overflow: largest bucket
    const int sub = static_cast<int>((m - 0.5) * (2 * kSubBuckets));
    return 1 + (exp - kMinExp) * kSubBuckets +
           std::min(sub, kSubBuckets - 1);
}

double
Histogram::bucketMid(int b)
{
    if (b <= 0)
        return 0.0;
    const int rel = b - 1;
    const int exp = rel / kSubBuckets + kMinExp;
    const int sub = rel % kSubBuckets;
    // Bucket spans [lo, lo + w) with w the sub-bucket width of this
    // octave; report the midpoint.
    const double lo =
        std::ldexp(0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets),
                   exp);
    const double w = std::ldexp(1.0 / (2.0 * kSubBuckets), exp);
    return lo + 0.5 * w;
}

void
Histogram::add(double v)
{
    if (buckets_.empty())
        buckets_.assign(kBuckets, 0);
    ++buckets_[bucketOf(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
Histogram::merge(const Histogram &o)
{
    if (o.count_ == 0)
        return;
    if (buckets_.empty())
        buckets_.assign(kBuckets, 0);
    for (int b = 0; b < kBuckets; ++b)
        buckets_[b] += o.buckets_[b];
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

double
Histogram::percentile(double p) const
{
    SSDRR_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (count_ == 0)
        return 0.0;
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    if (rank > count_)
        rank = count_;
    // The extreme ranks are known exactly.
    if (rank == 1)
        return min_;
    if (rank == count_)
        return max_;
    std::uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
        cum += buckets_[b];
        if (cum >= rank)
            return std::clamp(bucketMid(b), min_, max_);
    }
    return max_; // unreachable: cum reaches count_
}

double
Histogram::min() const
{
    return count_ ? min_ : 0.0;
}

double
Histogram::max() const
{
    return count_ ? max_ : 0.0;
}

void
Histogram::reset()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

void
StatSet::set(const std::string &name, double value)
{
    stats_[name] = value;
}

void
StatSet::inc(const std::string &name, double delta)
{
    stats_[name] += delta;
}

double
StatSet::get(const std::string &name) const
{
    auto it = stats_.find(name);
    SSDRR_ASSERT(it != stats_.end(), "unknown stat: ", name);
    return it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return stats_.count(name) != 0;
}

std::string
StatSet::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[k, v] : stats_)
        os << prefix << k << " = " << v << "\n";
    return os.str();
}

} // namespace ssdrr::sim

/**
 * @file
 * Zero-initialized flat array backed by calloc.
 *
 * std::vector's fill constructor writes every element, which makes
 * building a drive's FTL metadata (tens of MiB of reverse-map,
 * epoch and L2P tables per SSD, rebuilt for every scenario of a
 * bench sweep) a first-touch memory sweep before any simulation
 * starts. calloc hands back copy-on-write zero pages instead: pages
 * are faulted in only if actually written, so construction is O(1)
 * and the over-provisioned tail of a drive never costs memory
 * bandwidth. Callers encode their sentinel as raw 0 (the FTL stores
 * value + 1, whose unsigned wraparound maps the all-ones sentinels
 * to 0 exactly).
 */

#ifndef SSDRR_SIM_ZEROED_ARRAY_HH
#define SSDRR_SIM_ZEROED_ARRAY_HH

#include <cstddef>
#include <cstdlib>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace ssdrr::sim {

template <typename T>
class ZeroedArray
{
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ZeroedArray skips construction and destruction; T "
                  "must be trivially copyable and destructible, and "
                  "all-bits-zero must be a valid (empty) value of T");

  public:
    ZeroedArray() = default;

    explicit ZeroedArray(std::size_t n) { assign(n); }

    ZeroedArray(ZeroedArray &&o) noexcept
        : data_(std::exchange(o.data_, nullptr)),
          size_(std::exchange(o.size_, 0))
    {
    }

    ZeroedArray &
    operator=(ZeroedArray &&o) noexcept
    {
        if (this != &o) {
            std::free(data_);
            data_ = std::exchange(o.data_, nullptr);
            size_ = std::exchange(o.size_, 0);
        }
        return *this;
    }

    ZeroedArray(const ZeroedArray &) = delete;
    ZeroedArray &operator=(const ZeroedArray &) = delete;

    ~ZeroedArray() { std::free(data_); }

    /** (Re)allocate @p n zeroed elements, discarding old contents. */
    void
    assign(std::size_t n)
    {
        std::free(data_);
        data_ = nullptr;
        size_ = n;
        if (n == 0)
            return;
        data_ = static_cast<T *>(std::calloc(n, sizeof(T)));
        SSDRR_ASSERT(data_ != nullptr, "ZeroedArray allocation of ", n,
                     " elements failed");
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &
    operator[](std::size_t i)
    {
        SSDRR_DEBUG_ASSERT(i < size_, "ZeroedArray index out of range");
        return data_[i];
    }
    const T &
    operator[](std::size_t i) const
    {
        SSDRR_DEBUG_ASSERT(i < size_, "ZeroedArray index out of range");
        return data_[i];
    }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }

  private:
    T *data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace ssdrr::sim

#endif // SSDRR_SIM_ZEROED_ARRAY_HH

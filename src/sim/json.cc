#include "sim/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace ssdrr::sim::json {

const char *
Value::typeName(Type t)
{
    switch (t) {
    case Type::Null:
        return "null";
    case Type::Bool:
        return "boolean";
    case Type::Number:
        return "number";
    case Type::String:
        return "string";
    case Type::Array:
        return "array";
    case Type::Object:
        return "object";
    }
    return "?";
}

bool
Value::asBool() const
{
    SSDRR_ASSERT(isBool(), "JSON value is ", typeName(), ", not boolean");
    return bool_;
}

double
Value::asNumber() const
{
    SSDRR_ASSERT(isNumber(), "JSON value is ", typeName(), ", not number");
    return num_;
}

const std::string &
Value::asString() const
{
    SSDRR_ASSERT(isString(), "JSON value is ", typeName(), ", not string");
    return str_;
}

const Elements &
Value::elements() const
{
    SSDRR_ASSERT(isArray(), "JSON value is ", typeName(), ", not array");
    return elems_;
}

const Members &
Value::members() const
{
    SSDRR_ASSERT(isObject(), "JSON value is ", typeName(), ", not object");
    return members_;
}

const Value *
Value::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

Value &
Value::set(const std::string &key, Value v)
{
    SSDRR_ASSERT(isObject(), "set() on ", typeName());
    for (auto &[k, old] : members_) {
        if (k == key) {
            old = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(v));
    return *this;
}

Value &
Value::push(Value v)
{
    SSDRR_ASSERT(isArray(), "push() on ", typeName());
    elems_.push_back(std::move(v));
    return *this;
}

bool
Value::operator==(const Value &o) const
{
    if (type_ != o.type_)
        return false;
    switch (type_) {
    case Type::Null:
        return true;
    case Type::Bool:
        return bool_ == o.bool_;
    case Type::Number:
        return num_ == o.num_;
    case Type::String:
        return str_ == o.str_;
    case Type::Array:
        return elems_ == o.elems_;
    case Type::Object:
        return members_ == o.members_;
    }
    return false;
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double v)
{
    // Integral values (the common case for counts and seeds) print
    // without a decimal point; everything else uses %.17g, which
    // round-trips an IEEE double exactly.
    if (std::isfinite(v) && v == std::floor(v) &&
        std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

} // namespace

void
Value::dumpInto(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };
    switch (type_) {
    case Type::Null:
        out += "null";
        break;
    case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Type::Number:
        appendNumber(out, num_);
        break;
    case Type::String:
        appendEscaped(out, str_);
        break;
    case Type::Array:
        if (elems_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < elems_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            newline(depth + 1);
            elems_[i].dumpInto(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
    case Type::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            newline(depth + 1);
            appendEscaped(out, members_[i].first);
            out += ": ";
            members_[i].second.dumpInto(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpInto(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

std::string
dump(const Value &v, int indent)
{
    return v.dump(indent);
}

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    Value
    run()
    {
        skipWs();
        Value v = parseValue();
        if (failed_)
            return Value();
        skipWs();
        if (pos_ < text_.size()) {
            fail("unexpected trailing characters after the document");
            return Value();
        }
        return v;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (!failed_) {
            failed_ = true;
            if (error_)
                *error_ = "line " + std::to_string(line_) +
                          ", column " + std::to_string(col()) + ": " +
                          msg;
        }
        return false;
    }

    std::size_t col() const { return pos_ - line_start_ + 1; }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
                line_start_ = pos_;
            } else if (c == ' ' || c == '\t' || c == '\r') {
                ++pos_;
            } else {
                break;
            }
        }
    }

    bool
    consume(char expect, const char *what)
    {
        if (pos_ >= text_.size() || text_[pos_] != expect)
            return fail(std::string("expected ") + what);
        ++pos_;
        return true;
    }

    Value
    parseValue()
    {
        if (pos_ >= text_.size()) {
            (void)fail("unexpected end of input");
            return Value();
        }
        // The parser recurses per nesting level; cap the depth so a
        // pathological document fails with a message instead of
        // overflowing the stack. Real scenario files nest ~4 deep.
        if (depth_ >= kMaxDepth) {
            (void)fail("nesting deeper than " +
                       std::to_string(kMaxDepth) + " levels");
            return Value();
        }
        switch (text_[pos_]) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return parseString();
        case 't':
            return parseLiteral("true", Value(true));
        case 'f':
            return parseLiteral("false", Value(false));
        case 'n':
            return parseLiteral("null", Value());
        default:
            return parseNumber();
        }
    }

    Value
    parseLiteral(const char *lit, Value v)
    {
        const std::size_t len = std::string(lit).size();
        if (text_.compare(pos_, len, lit) != 0) {
            (void)fail(std::string("invalid literal (expected '") +
                       lit + "')");
            return Value();
        }
        pos_ += len;
        return v;
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            if (std::isdigit(static_cast<unsigned char>(text_[pos_])))
                digits = true;
            ++pos_;
        }
        if (!digits) {
            pos_ = start;
            (void)fail("invalid value (expected an object, array, "
                       "string, number, true, false, or null)");
            return Value();
        }
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size()) {
            pos_ = start;
            (void)fail("malformed number '" + tok + "'");
            return Value();
        }
        return Value(v);
    }

    Value
    parseString()
    {
        std::string out;
        if (!consume('"', "'\"'"))
            return Value();
        while (true) {
            if (pos_ >= text_.size()) {
                (void)fail("unterminated string");
                return Value();
            }
            const char c = text_[pos_++];
            if (c == '"')
                break;
            if (c == '\n') {
                --pos_;
                (void)fail("unterminated string (newline in string)");
                return Value();
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                (void)fail("unterminated escape sequence");
                return Value();
            }
            const char e = text_[pos_++];
            switch (e) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    (void)fail("truncated \\u escape");
                    return Value();
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        (void)fail("invalid \\u escape digit");
                        return Value();
                    }
                }
                // Encode as UTF-8 (surrogate pairs are passed through
                // as-is; scenario files are ASCII in practice).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
            }
            default:
                (void)fail(std::string("invalid escape '\\") + e + "'");
                return Value();
            }
        }
        return Value(std::move(out));
    }

    Value
    parseArray()
    {
        ++depth_;
        Value arr = Value::array();
        if (!consume('[', "'['"))
            return Value();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            --depth_;
            return arr;
        }
        while (true) {
            skipWs();
            Value v = parseValue();
            if (failed_)
                return Value();
            arr.push(std::move(v));
            skipWs();
            if (pos_ >= text_.size()) {
                (void)fail("unterminated array (expected ',' or ']')");
                return Value();
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                --depth_;
                return arr;
            }
            (void)fail("expected ',' or ']' in array");
            return Value();
        }
    }

    Value
    parseObject()
    {
        ++depth_;
        Value obj = Value::object();
        if (!consume('{', "'{'"))
            return Value();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            --depth_;
            return obj;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                (void)fail("expected a quoted object key");
                return Value();
            }
            Value key = parseString();
            if (failed_)
                return Value();
            if (obj.find(key.asString())) {
                (void)fail("duplicate key \"" + key.asString() + "\"");
                return Value();
            }
            skipWs();
            if (!consume(':', "':' after object key"))
                return Value();
            skipWs();
            Value v = parseValue();
            if (failed_)
                return Value();
            obj.set(key.asString(), std::move(v));
            skipWs();
            if (pos_ >= text_.size()) {
                (void)fail("unterminated object (expected ',' or '}')");
                return Value();
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                --depth_;
                return obj;
            }
            (void)fail("expected ',' or '}' in object");
            return Value();
        }
    }

    static constexpr std::size_t kMaxDepth = 256;

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t line_start_ = 0;
    std::size_t depth_ = 0;
    bool failed_ = false;
};

} // namespace

Value
parse(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).run();
}

} // namespace ssdrr::sim::json

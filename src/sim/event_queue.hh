/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue keyed by (tick, sequence). Events
 * scheduled at the same tick execute in scheduling order, which keeps
 * whole-SSD simulations deterministic. Cancellation is supported via
 * EventId (used by program/erase suspension and the PR2 RESET path).
 *
 * Hot-path design (the simulator executes hundreds of millions of
 * events per trace):
 *  - Callbacks are InlineCallback (64-byte small-buffer optimized,
 *    move-only), so scheduling and popping an event performs no heap
 *    allocation for typical captures and never clones a capture.
 *  - The heap holds 24-byte POD entries (when, seq, slot); callbacks
 *    live in a generation-stamped slot table on the side, so sifting
 *    the heap moves trivial data only. Sifts propagate a hole instead
 *    of swapping, writing each displaced entry once.
 *  - cancel() and pending() are O(1): an EventId encodes its slot
 *    index and the slot's generation, so stale ids — including ids
 *    of events that already executed and whose slot was reused — are
 *    rejected without hashing and without corrupting pending().
 *  - run() is a drain-tick loop: it extracts every entry at the top
 *    tick in one heap maintenance pass, advances now() once, and
 *    executes the extracted batch in sequence order, instead of
 *    paying a probe + pop + horizon re-check per event. Same-tick
 *    producers additionally collapse whole bursts into one heap
 *    entry via scheduleBatch().
 *  - Cancelled entries are pruned off the heap root eagerly (by
 *    cancel() itself and by the run/step loops), never left for a
 *    reader to clean up, so nextPendingTick() is a pure O(1) probe —
 *    cheap enough for the parallel executor to poll every window.
 *
 * Ownership and thread-safety contract:
 *  - An EventQueue is owned by exactly one simulation domain (a
 *    stand-alone Ssd, one drive of a linked host::SsdArray, or the
 *    array's host side) and is NOT internally synchronized. All
 *    calls — schedule, cancel, run, step — must come from the one
 *    thread currently executing that domain.
 *  - Under sim::ParallelExecutor, domains run on worker threads but
 *    only between window barriers; the executor's barriers establish
 *    the happens-before edges, so a queue is still touched by at
 *    most one thread at a time. Cross-domain communication must go
 *    through ParallelExecutor::send, never by scheduling directly
 *    onto another domain's queue.
 *
 * Determinism contract: events execute in (tick, seq) order, where
 * seq is the queue-local scheduling order. Any run that performs the
 * same schedule() calls in the same order executes callbacks in the
 * same order — this, plus the executor's sorted mailbox delivery, is
 * what makes multi-threaded runs bit-identical to single-threaded
 * ones.
 */

#ifndef SSDRR_SIM_EVENT_QUEUE_HH
#define SSDRR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sim/callback.hh"
#include "sim/types.hh"

namespace ssdrr::sim {

/**
 * Handle for cancelling a scheduled event. Encodes (generation,
 * slot); 0 is never a valid id. Ids of executed or cancelled events
 * become stale and are rejected by cancel().
 */
using EventId = std::uint64_t;

class EventQueue
{
  public:
    using Callback = InlineCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when (must be >= now()).
     * @return handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb at now() + @p delay. */
    EventId scheduleAfter(Tick delay, Callback cb);

    /**
     * Schedule a batch of callbacks at absolute time @p when (must be
     * >= now()) as ONE heap event that runs them in vector order —
     * the doorbell-batching primitive: a window's worth of mailbox
     * crossings bound for the same (queue, tick) pays one slot, one
     * heap entry, and one sift instead of cbs.size() of each.
     *
     * Observable behavior is identical to scheduling each callback
     * individually in vector order at a point where no other
     * schedule() call can interleave: the callbacks run back-to-back
     * at the same now(), anything they schedule at the same tick gets
     * a later sequence number either way, and executedEvents()
     * advances by cbs.size() (the batch accounts each callback as its
     * own executed event), so event counts stay bit-identical to the
     * unbatched schedule.
     *
     * The batch cannot be cancelled piecemeal (no per-callback ids);
     * callers batch only messages that are never cancelled (mailbox
     * deliveries). @p cbs must be non-empty with no null callbacks.
     */
    EventId scheduleBatch(Tick when, std::vector<Callback> cbs);

    /**
     * Cancel a pending event.
     * @retval true if the event was pending and is now cancelled.
     * @retval false if it already ran, was cancelled, or never
     *         existed (all three are detected reliably: executed
     *         events bump their slot's generation, so their ids are
     *         stale and never alias a newer event).
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. O(1). */
    std::size_t pending() const { return pending_; }

    /** True if no runnable events remain. */
    bool empty() const { return pending_ == 0; }

    /**
     * Run events until the queue drains or @p until is reached.
     * Events scheduled exactly at @p until are executed.
     *
     * Drain-tick batching: each iteration extracts *all* entries at
     * the earliest tick in one heap maintenance pass and executes
     * them back-to-back in sequence order. Observable behavior is
     * identical to the pop-one-at-a-time loop — entries extract in
     * (tick, seq) order, anything a callback schedules at the same
     * tick gets a larger seq than every extracted entry (so the next
     * drain pass picks it up in order), and a callback cancelling a
     * later same-tick event is honored because each extracted entry
     * re-checks its slot state immediately before running.
     * @return the tick of the last executed event (now()).
     */
    Tick run(Tick until = kTickNever);

    /** Execute at most one event. @retval false if queue was empty. */
    bool step();

    /** Total number of events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Tick of the earliest pending event, or kTickNever if the queue
     * is empty.
     *
     * O(1) and mutation-free by contract (hence const): the parallel
     * executor probes every domain's queue once per window to pick
     * the next window start, and the idle-window fast-forward probes
     * them all again, so this must stay a pure read of the heap
     * root. The invariant that the root is never a cancelled entry
     * at public API boundaries is maintained by the writers instead:
     * cancel() prunes eagerly when it kills the root, and run()/
     * step() re-prune after popping (debug builds assert it here).
     */
    Tick nextPendingTick() const;

    /**
     * Move now() forward to @p t without executing anything. Only
     * legal when no pending event precedes @p t; used after a
     * windowed multi-queue run to align every domain's clock to the
     * global end time, so time-normalized statistics (utilization,
     * simulated duration) use one common denominator.
     */
    void advanceTo(Tick t);

    /**
     * Pre-size the heap and slot table for an expected number of
     * simultaneously pending events (optional; both grow on demand).
     */
    void reserve(std::size_t events);

  private:
    /** Heap payload: trivially relocatable, 24 bytes. */
    struct HeapEntry {
        Tick when;
        std::uint64_t seq; ///< schedule order; breaks same-tick ties
        std::uint32_t slot;
    };

    enum class SlotState : std::uint8_t { Free, Pending, Cancelled };

    struct Slot {
        Callback cb;
        std::uint32_t gen = 1;
        SlotState state = SlotState::Free;
    };

    static bool
    before(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    std::uint32_t allocSlot(Callback cb);
    void freeSlot(std::uint32_t idx);
    void heapPush(HeapEntry e);
    HeapEntry heapPop();
    /** Pop cancelled entries off the heap root (restores the
     *  root-is-pending invariant nextPendingTick() relies on). */
    void pruneCancelledTop();
    /** Move a popped entry's callback out and run it, honoring a
     *  cancellation that raced in after extraction. */
    void executeEntry(const HeapEntry &e);

    Tick now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    std::size_t pending_ = 0;
    std::vector<HeapEntry> heap_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_slots_;
    /** Scratch for run()'s drain-tick extraction (capacity reused
     *  across ticks; stolen/restored around callbacks so a reentrant
     *  run() sees an empty vector). */
    std::vector<HeapEntry> drain_;
};

} // namespace ssdrr::sim

#endif // SSDRR_SIM_EVENT_QUEUE_HH

/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue keyed by (tick, sequence). Events
 * scheduled at the same tick execute in scheduling order, which keeps
 * whole-SSD simulations deterministic. Cancellation is supported via
 * EventId (used by program/erase suspension and the PR2 RESET path).
 */

#ifndef SSDRR_SIM_EVENT_QUEUE_HH
#define SSDRR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace ssdrr::sim {

/** Handle for cancelling a scheduled event. */
using EventId = std::uint64_t;

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when (must be >= now()).
     * @return handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb at now() + @p delay. */
    EventId scheduleAfter(Tick delay, Callback cb);

    /**
     * Cancel a pending event.
     * @retval true if the event was pending and is now cancelled.
     * @retval false if it already ran, was cancelled, or never existed.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const;

    /** True if no runnable events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Run events until the queue drains or @p until is reached.
     * Events scheduled exactly at @p until are executed.
     * @return the tick of the last executed event (now()).
     */
    Tick run(Tick until = kTickNever);

    /** Execute at most one event. @retval false if queue was empty. */
    bool step();

    /** Total number of events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry {
        Tick when;
        EventId id;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    bool popRunnable(Entry &out);

    Tick now_ = 0;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> cancelled_;
};

} // namespace ssdrr::sim

#endif // SSDRR_SIM_EVENT_QUEUE_HH

#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ssdrr::sim {

namespace {
std::atomic<std::uint64_t> warn_counter{0};
} // namespace

/**
 * Panic throws (rather than abort()) so unit tests can assert that
 * invariant violations are detected. Outside tests the exception is
 * uncaught and terminates the process with a diagnostic.
 */
void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    warn_counter.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

std::uint64_t
warnCount()
{
    return warn_counter.load(std::memory_order_relaxed);
}

} // namespace ssdrr::sim

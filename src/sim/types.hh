/**
 * @file
 * Fundamental simulation types and time units.
 *
 * Simulated time is measured in integer nanoseconds. All latency
 * parameters in the paper are given in microseconds or milliseconds
 * (Table 1); the helpers below convert to ticks.
 */

#ifndef SSDRR_SIM_TYPES_HH
#define SSDRR_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace ssdrr::sim {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Sentinel meaning "never" / "not scheduled". */
constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Convert nanoseconds to ticks. */
constexpr Tick nsec(double ns) { return static_cast<Tick>(ns); }

/** Convert microseconds to ticks. */
constexpr Tick usec(double us) { return static_cast<Tick>(us * 1e3); }

/** Convert milliseconds to ticks. */
constexpr Tick msec(double ms) { return static_cast<Tick>(ms * 1e6); }

/** Convert seconds to ticks. */
constexpr Tick sec(double s) { return static_cast<Tick>(s * 1e9); }

/** Ticks to microseconds (for reporting). */
constexpr double toUsec(Tick t) { return static_cast<double>(t) / 1e3; }

/** Ticks to milliseconds (for reporting). */
constexpr double toMsec(Tick t) { return static_cast<double>(t) / 1e6; }

} // namespace ssdrr::sim

#endif // SSDRR_SIM_TYPES_HH

#include "sim/rng.hh"

#include <cmath>
#include <map>
#include <utility>

#include "sim/logging.hh"

namespace ssdrr::sim {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
mix64(std::uint64_t v)
{
    std::uint64_t s = v;
    return splitmix64(s);
}

std::uint64_t
hashStream(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
           std::uint64_t c, std::uint64_t d)
{
    std::uint64_t h = seed;
    h = mix64(h ^ mix64(a + 0x1'0001));
    h = mix64(h ^ mix64(b + 0x2'0003));
    h = mix64(h ^ mix64(c + 0x4'0005));
    h = mix64(h ^ mix64(d + 0x8'0007));
    return h;
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Seed all 256 bits of state from splitmix64 per the xoshiro
    // authors' recommendation; guards against the all-zero state.
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9E3779B97F4A7C15ull;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    SSDRR_ASSERT(n > 0, "uniformInt requires n > 0");
    // Rejection-free for our purposes; modulo bias is negligible for
    // n << 2^64 and tests only rely on coarse uniformity.
    return next() % n;
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double a = 6.283185307179586476925286766559 * u2;
    cached_normal_ = r * std::sin(a);
    has_cached_normal_ = true;
    return r * std::cos(a);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double rate)
{
    SSDRR_ASSERT(rate > 0.0, "exponential requires rate > 0");
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 1e-300);
    return -std::log(u) / rate;
}

std::uint64_t
Rng::geometric(double p)
{
    SSDRR_ASSERT(p > 0.0 && p <= 1.0, "geometric requires 0 < p <= 1");
    if (p >= 1.0)
        return 0;
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 1e-300);
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

namespace {

/**
 * Generalized harmonic number H_{n,theta}. The O(n) sum runs once
 * per distinct (n, theta) and is memoized: every tenant of every
 * scenario in a mechanism sweep draws from the same population size,
 * and the sum dominated scenario setup when recomputed per tenant.
 * (Single-threaded like the rest of the simulator.)
 */
double
zeta(std::uint64_t n, double theta)
{
    static std::map<std::pair<std::uint64_t, double>, double> memo;
    const auto key = std::make_pair(n, theta);
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    memo.emplace(key, sum);
    return sum;
}

} // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    SSDRR_ASSERT(n > 0, "Zipf population must be positive");
    SSDRR_ASSERT(theta >= 0.0 && theta < 1.0,
                 "Zipf skew must be in [0, 1), got ", theta);
    zeta2_ = zeta(2, theta);
    zetan_ = zeta(n, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
}

std::uint64_t
ZipfGenerator::operator()(Rng &rng) const
{
    if (theta_ == 0.0)
        return rng.uniformInt(n_);
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
}

} // namespace ssdrr::sim

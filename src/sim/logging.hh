/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic idiom.
 *
 * panic():  an internal invariant was violated (a simulator bug).
 * fatal():  the simulation cannot continue due to user error
 *           (bad configuration, invalid arguments).
 * warn():   something is off but the simulation can proceed.
 */

#ifndef SSDRR_SIM_LOGGING_HH
#define SSDRR_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace ssdrr::sim {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Number of warn() calls so far (useful in tests). */
std::uint64_t warnCount();

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail
} // namespace ssdrr::sim

#define SSDRR_PANIC(...)                                                    \
    ::ssdrr::sim::panicImpl(__FILE__, __LINE__,                             \
                            ::ssdrr::sim::detail::format(__VA_ARGS__))

#define SSDRR_FATAL(...)                                                    \
    ::ssdrr::sim::fatalImpl(__FILE__, __LINE__,                             \
                            ::ssdrr::sim::detail::format(__VA_ARGS__))

#define SSDRR_WARN(...)                                                     \
    ::ssdrr::sim::warnImpl(__FILE__, __LINE__,                              \
                           ::ssdrr::sim::detail::format(__VA_ARGS__))

/** Assert a simulator invariant; always enabled (not tied to NDEBUG). */
#define SSDRR_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            SSDRR_PANIC("assertion failed: " #cond " ",                     \
                        ::ssdrr::sim::detail::format(__VA_ARGS__));         \
        }                                                                   \
    } while (0)

/**
 * Assert an invariant that is too hot to check in Release builds
 * (per-event kernel bookkeeping); compiled out under NDEBUG.
 */
#ifdef NDEBUG
#define SSDRR_DEBUG_ASSERT(cond, ...)                                       \
    do {                                                                    \
    } while (0)
#else
#define SSDRR_DEBUG_ASSERT(cond, ...) SSDRR_ASSERT(cond, __VA_ARGS__)
#endif

#endif // SSDRR_SIM_LOGGING_HH

/**
 * @file
 * Throughput-bench reporting: a JSON trajectory file and a stable
 * digest of the simulation results.
 *
 * Every perf run emits BENCH_sim_throughput.json so the repo keeps a
 * measured perf trajectory across PRs, and a digest of the
 * *deterministic* result fields (request/event counts, retry
 * statistics, latency percentiles) so CI can detect a simulation-
 * result change that sneaks in under a perf patch: perf work on the
 * kernel must never change what is simulated.
 */

#ifndef SSDRR_SIM_BENCH_REPORT_HH
#define SSDRR_SIM_BENCH_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ssdrr::sim {

/** One measured configuration (e.g. one mechanism) of a bench. */
struct BenchRun {
    std::string name;

    // ----- wall-clock measurements (excluded from the digest) -----
    double wallSeconds = 0.0;
    double eventsPerSecond = 0.0;
    double readsPerSecond = 0.0;

    // ----- deterministic simulation results (digested) -----
    std::uint64_t executedEvents = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t retrySamples = 0;
    std::uint64_t suspensions = 0;
    std::uint64_t gcCollections = 0;
    std::uint64_t readFailures = 0;
    std::uint64_t refreshes = 0;
    double simulatedMs = 0.0;
    double avgRetrySteps = 0.0;
    double p50ReadUs = 0.0;
    double p99ReadUs = 0.0;
    double p999ReadUs = 0.0;
    // ----- cache effectiveness (informational, not digested: the
    // hit ratio may legitimately change with cache tuning while the
    // simulation results stay identical) -----
    std::uint64_t profileCacheHits = 0;
    std::uint64_t profileCacheMisses = 0;
    // ----- array-layout accounting (informational, not digested:
    // zero outside the RAID-5 sections, and the golden digest
    // predates them) -----
    std::uint64_t degradedReads = 0;
    std::uint64_t reconstructionReads = 0;
    std::uint64_t parityWrites = 0;
    double p99DegradedReadUs = 0.0;
    double p999DegradedReadUs = 0.0;
    // ----- host filter-chain accounting (informational, not
    // digested: zero outside the cached-workload sections, and the
    // golden digest predates the chain) -----
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEvictions = 0;
    std::uint64_t prefetchIssued = 0;
    std::uint64_t prefetchUseful = 0;
    double hostP99ReadUs = 0.0;
    // ----- fault-timeline / robustness accounting (informational,
    // not digested: zero outside the fault sections, and the golden
    // digest predates the fault machinery) -----
    std::uint64_t hostTimeouts = 0;
    std::uint64_t hostRetries = 0;
    std::uint64_t hostFailovers = 0;
    std::uint64_t ueccReads = 0;
    std::uint64_t failedRequests = 0;
    std::uint64_t rebuildReads = 0;
    double timeToRebuildMs = 0.0;
    // ----- storage-fabric accounting (informational, not digested:
    // zero outside the fabric sections, and the golden digest
    // predates the fabric subsystem) -----
    double avgFabricWaitUs = 0.0;
    double fabricBusyUs = 0.0;
    std::uint64_t fabricBytes = 0;
    std::uint32_t fabricMaxQueueDepth = 0;
    // ----- parallel-executor accounting (informational, not
    // digested: zero on the legacy single-queue engine, and parks/
    // spins are timing-dependent by nature — windowsRun and
    // windowsSkipped are deterministic but the golden digest
    // predates the executor counters) -----
    std::uint64_t windowsRun = 0;
    std::uint64_t windowsSkipped = 0;
    std::uint64_t parks = 0;
    std::uint64_t spins = 0;
    /**
     * True when the measurement environment cannot support the run's
     * premise (e.g. a 4-thread speedup measured on fewer than 4
     * hardware threads): keep the entry for trajectory continuity but
     * flag it so dashboards exclude it.
     */
    bool unreliable = false;
};

/**
 * FNV-1a digest over the runs' deterministic fields (doubles are
 * rounded to 1e-3 and serialized in fixed notation, so the digest is
 * stable against formatting but sensitive to any result change).
 */
std::uint64_t benchDigest(const std::vector<BenchRun> &runs);

/** Canonical serialization the digest is computed over (debugging). */
std::string benchDigestText(const std::vector<BenchRun> &runs);

/**
 * Write the JSON trajectory file. @p label names the scenario
 * ("multi_tenant_tail short" etc.).
 * @return false (with a warning) if the file cannot be written.
 */
bool writeBenchJson(const std::string &path, const std::string &label,
                    const std::vector<BenchRun> &runs);

/**
 * Compare the runs' digest against a golden digest file (first
 * whitespace-delimited token = hex digest; rest ignored).
 * @retval 0 match
 * @retval 1 mismatch (details on stderr)
 * @retval 2 golden file unreadable
 */
int checkBenchDigest(const std::string &golden_path,
                     const std::vector<BenchRun> &runs);

/** Write/overwrite the golden digest file (digest + breakdown). */
bool writeBenchGolden(const std::string &golden_path,
                      const std::vector<BenchRun> &runs);

} // namespace ssdrr::sim

#endif // SSDRR_SIM_BENCH_REPORT_HH

/**
 * @file
 * Lightweight statistics collection (counters, accumulators,
 * histograms) used across the simulator for response-time and
 * utilization reporting.
 */

#ifndef SSDRR_SIM_STATS_HH
#define SSDRR_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace ssdrr::sim {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates samples; tracks count/sum/min/max/mean/variance. */
class Accumulator
{
  public:
    void add(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Population variance (Welford). */
    double variance() const { return count_ ? m2_ / count_ : 0.0; }
    double stddev() const;

    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Histogram over double samples with exact percentile queries.
 *
 * Samples are stored; percentile() sorts lazily. Intended for offline
 * reporting of per-request response times (up to a few million
 * samples), not for per-event hot paths.
 */
class Histogram
{
  public:
    void add(double v);

    std::uint64_t count() const { return samples_.size(); }
    double mean() const;
    /** p in [0, 100]; nearest-rank percentile. */
    double percentile(double p) const;
    double min() const;
    double max() const;

    void reset();

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/** Named stat registry for end-of-run dumps. */
class StatSet
{
  public:
    void set(const std::string &name, double value);
    void inc(const std::string &name, double delta = 1.0);
    double get(const std::string &name) const;
    bool has(const std::string &name) const;

    std::string dump(const std::string &prefix = "") const;

    const std::map<std::string, double> &all() const { return stats_; }

  private:
    std::map<std::string, double> stats_;
};

} // namespace ssdrr::sim

#endif // SSDRR_SIM_STATS_HH

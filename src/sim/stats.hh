/**
 * @file
 * Lightweight statistics collection (counters, accumulators,
 * histograms) used across the simulator for response-time and
 * utilization reporting.
 *
 * Ownership: every collector is a plain value owned by the entity it
 * measures (a drive, a tenant, an array surface); nothing here is
 * shared or global.
 *
 * Thread-safety: none — a collector is written only by its owning
 * simulation domain's thread. Cross-domain aggregate views are built
 * after the run (or at a barrier) by merging per-domain collectors:
 * Histogram::merge adds bucket counts and recombines count/sum/
 * min/max, so a merge of per-drive histograms is exactly the
 * histogram of the concatenated samples.
 *
 * Determinism: Histogram percentiles depend only on bucket counts,
 * and merge() is order-insensitive for integer bucket counts, so
 * aggregated views are bit-identical regardless of which worker
 * recorded which sample — the property the sharded array engine's
 * end-of-run merge relies on. Accumulator means/variances are
 * floating-point sums in insertion order; per-domain insertion order
 * is deterministic, and cross-domain aggregation (host::SsdArray's
 * pooled retry mean) always iterates domains in index order.
 */

#ifndef SSDRR_SIM_STATS_HH
#define SSDRR_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace ssdrr::sim {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates samples; tracks count/sum/min/max/mean/variance. */
class Accumulator
{
  public:
    void add(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Population variance (Welford). */
    double variance() const { return count_ ? m2_ / count_ : 0.0; }
    double stddev() const;

    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Fixed-footprint log-bucketed histogram (HDR-style).
 *
 * Samples land in logarithmically-spaced buckets: each power-of-two
 * octave is split into kSubBuckets linear sub-buckets, bounding the
 * relative quantization error of percentile() to 1/(2*kSubBuckets)
 * (~0.4%). Unlike the exact-sample histogram it replaces, memory is
 * O(1) in the sample count (one bucket array, allocated on first
 * add), add() is O(1) with no allocation in steady state, and two
 * histograms recorded separately can be merge()d into the exact
 * histogram their combined stream would have produced — which is how
 * aggregate views (all-request, array-level) are derived from the
 * per-class histograms instead of double-recording every sample.
 *
 * Exact count, sum (hence mean), min and max are tracked on the
 * side; percentile(0)/percentile(100) return the exact min/max.
 */
class Histogram
{
  public:
    /** Sub-buckets per power-of-two octave (quantization grain). */
    static constexpr int kSubBits = 7;
    static constexpr int kSubBuckets = 1 << kSubBits;
    /** Smallest / largest finite exponent tracked; values outside
     *  are clamped into the edge buckets (min/max stay exact). */
    static constexpr int kMinExp = -20; // ~1e-6
    static constexpr int kMaxExp = 44;  // ~1.7e13
    static constexpr int kBuckets =
        (kMaxExp - kMinExp) * kSubBuckets + 1; // +1: zero/negative

    /** Upper bound on |percentile(p) - exact| / exact. */
    static constexpr double
    relativeError()
    {
        return 1.0 / (2.0 * kSubBuckets);
    }

    void add(double v);

    /**
     * Fold another histogram's samples into this one. The result is
     * identical (bucket-exact) to having recorded both streams into
     * a single histogram, in any order.
     */
    void merge(const Histogram &o);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    /** p in [0, 100]; nearest-rank percentile at bucket resolution. */
    double percentile(double p) const;
    double min() const;
    double max() const;

    void reset();

  private:
    static int bucketOf(double v);
    static double bucketMid(int b);

    /** Bucket counts; empty until the first add() (many histograms
     *  are constructed but never fed). */
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Named stat registry for end-of-run dumps. */
class StatSet
{
  public:
    void set(const std::string &name, double value);
    void inc(const std::string &name, double delta = 1.0);
    double get(const std::string &name) const;
    bool has(const std::string &name) const;

    std::string dump(const std::string &prefix = "") const;

    const std::map<std::string, double> &all() const { return stats_; }

  private:
    std::map<std::string, double> stats_;
};

} // namespace ssdrr::sim

#endif // SSDRR_SIM_STATS_HH

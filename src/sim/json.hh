/**
 * @file
 * Minimal dependency-free JSON reader/writer for scenario files.
 *
 * Supports the full JSON value grammar (objects, arrays, strings
 * with escapes, numbers, booleans, null). Objects preserve insertion
 * order so a loaded-and-redumped file stays diffable, and duplicate
 * keys are a parse error (they are always a typo in a config file).
 * The parser reports errors with line:column positions so scenario
 * authors get actionable messages instead of a silent default.
 *
 * This is a configuration-file codec, not a streaming parser: inputs
 * are small (kilobytes), so everything is materialized eagerly.
 *
 * Ownership: a Value owns its whole subtree (strings, elements,
 * members) by value; copies deep-copy, moves steal.
 *
 * Thread-safety: none, and none needed — parsing and dumping happen
 * during setup and reporting on the coordinating thread, never
 * inside the simulation's event execution. Distinct Value trees may
 * be used from distinct threads freely (no hidden shared state, no
 * global parser context).
 *
 * Determinism: dump() emits members in insertion order with a fixed
 * number format, so spec → text → spec round-trips are fixed points
 * and byte-identical across platforms and runs.
 */

#ifndef SSDRR_SIM_JSON_HH
#define SSDRR_SIM_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ssdrr::sim::json {

class Value;

/** Object member list; insertion-ordered, unique keys. */
using Members = std::vector<std::pair<std::string, Value>>;
using Elements = std::vector<Value>;

class Value
{
  public:
    enum class Type {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() : type_(Type::Null) {}
    explicit Value(bool b) : type_(Type::Bool), bool_(b) {}
    explicit Value(double n) : type_(Type::Number), num_(n) {}
    explicit Value(std::uint64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {
    }
    explicit Value(std::string s)
        : type_(Type::String), str_(std::move(s))
    {
    }
    explicit Value(const char *s) : type_(Type::String), str_(s) {}

    static Value array() { return Value(Type::Array); }
    static Value object() { return Value(Type::Object); }

    Type type() const { return type_; }
    /** Human-readable type name ("object", "number", ...). */
    static const char *typeName(Type t);
    const char *typeName() const { return typeName(type_); }

    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Elements &elements() const;
    const Members &members() const;

    /** Object lookup; nullptr when absent (or not an object). */
    const Value *find(const std::string &key) const;

    /** Set/replace an object member (keeps first-insertion order). */
    Value &set(const std::string &key, Value v);

    /** Append an array element. */
    Value &push(Value v);

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per level and a trailing newline; 0 emits one compact line.
     * Number formatting round-trips doubles exactly (integral values
     * print without an exponent or decimal point).
     */
    std::string dump(int indent = 2) const;

    bool operator==(const Value &o) const;
    bool operator!=(const Value &o) const { return !(*this == o); }

  private:
    explicit Value(Type t) : type_(t) {}

    void dumpInto(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Elements elems_;
    Members members_;
};

/**
 * Parse @p text as one JSON document.
 *
 * On success returns the value and leaves @p error empty. On failure
 * returns null and sets @p error to "line L, column C: message".
 * Trailing non-whitespace after the document is an error.
 */
Value parse(const std::string &text, std::string *error);

/** Serialize @p v (convenience for Value::dump). */
std::string dump(const Value &v, int indent = 2);

} // namespace ssdrr::sim::json

#endif // SSDRR_SIM_JSON_HH

#include "sim/fault_injector.hh"

#include "sim/logging.hh"

namespace ssdrr::sim {

namespace {

/** splitmix64 finalizer: avalanches a 64-bit key. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform draw in [0, 1) keyed on (seed, drive, event, token). */
double
draw(std::uint64_t seed, std::uint32_t drive, std::size_t event,
     std::uint64_t token)
{
    std::uint64_t h = mix64(seed ^ mix64(token));
    h = mix64(h ^ (static_cast<std::uint64_t>(drive) << 32 | event));
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
inWindow(const FaultEvent &e, Tick t)
{
    return t >= e.at && (e.until == kTickNever || t < e.until);
}

} // namespace

FaultInjector::FaultInjector(std::vector<FaultEvent> timeline,
                             std::uint64_t seed, std::uint32_t drives)
    : timeline_(std::move(timeline)), seed_(seed),
      fail_stop_(drives, kTickNever)
{
    for (const FaultEvent &e : timeline_) {
        SSDRR_ASSERT(e.drive < drives, "fault event names drive ",
                     e.drive, " but the array has ", drives);
        if (e.kind != FaultEvent::Kind::FailStop)
            continue;
        any_fail_stop_ = true;
        if (e.at < fail_stop_[e.drive])
            fail_stop_[e.drive] = e.at;
    }
}

double
FaultInjector::slowdownAt(std::uint32_t drive, Tick t) const
{
    double m = 1.0;
    for (const FaultEvent &e : timeline_)
        if (e.kind == FaultEvent::Kind::FailSlow && e.drive == drive &&
            inWindow(e, t))
            m *= e.multiplier;
    return m;
}

bool
FaultInjector::ueccAt(std::uint32_t drive, Tick t,
                      std::uint64_t token) const
{
    for (std::size_t i = 0; i < timeline_.size(); ++i) {
        const FaultEvent &e = timeline_[i];
        if (e.kind == FaultEvent::Kind::Uecc && e.drive == drive &&
            inWindow(e, t) && draw(seed_, drive, i, token) < e.probability)
            return true;
    }
    return false;
}

} // namespace ssdrr::sim

/**
 * @file
 * Small-buffer-optimized, move-only callable: the simulator's event
 * callback type.
 *
 * std::function imposes a heap allocation for any capture larger
 * than the (implementation-defined, typically 16-24 byte) inline
 * buffer, and its copy constructor clones that allocation. Both
 * costs land on the simulator's hottest path: every scheduled event
 * carries a callback. InlineFunction stores captures up to BufSize
 * bytes (default 64) inline, never copies, and relocates by moving
 * the capture. Oversized captures fall back to a single heap
 * allocation whose ownership is moved, not cloned.
 *
 * Contract differences from std::function:
 *  - move-only (copying an event callback is always a bug here);
 *  - invoking an empty InlineFunction panics instead of throwing
 *    std::bad_function_call.
 *
 * Ownership: an InlineFunction owns its capture outright (inline or
 * behind a moved unique heap allocation); destroying or reassigning
 * it destroys the capture.
 *
 * Thread-safety: none is provided or needed. A callback belongs to
 * the simulation domain whose EventQueue (or ParallelExecutor
 * mailbox) holds it, and is only constructed, moved, invoked, and
 * destroyed by the one thread executing that domain. Moving a
 * callback across domains via ParallelExecutor::send is safe because
 * the executor's window barriers order the handoff.
 *
 * Determinism: invocation performs no allocation and no global
 * lookups; captures are plain moved state, so replaying the same
 * schedule replays identical behavior.
 */

#ifndef SSDRR_SIM_CALLBACK_HH
#define SSDRR_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace ssdrr::sim {

template <typename Signature, std::size_t BufSize = 64>
class InlineFunction;

template <typename R, typename... Args, std::size_t BufSize>
class InlineFunction<R(Args...), BufSize>
{
  public:
    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            ops_ = &heapOps<Fn>;
        }
    }

    InlineFunction(InlineFunction &&o) noexcept { moveFrom(o); }

    InlineFunction &
    operator=(InlineFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        SSDRR_ASSERT(ops_ != nullptr, "invoking an empty InlineFunction");
        return ops_->invoke(buf_, std::forward<Args>(args)...);
    }

    /** True if the held capture lives in the inline buffer. */
    bool
    storedInline() const noexcept
    {
        return ops_ != nullptr && ops_->inlineStorage;
    }

  private:
    struct Ops {
        R (*invoke)(void *storage, Args &&...args);
        /** Move-construct into @p dst's storage, destroy @p src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *storage) noexcept;
        bool inlineStorage;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= BufSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static inline const Ops inlineOps = {
        /*invoke=*/
        [](void *s, Args &&...args) -> R {
            return (*std::launder(reinterpret_cast<Fn *>(s)))(
                std::forward<Args>(args)...);
        },
        /*relocate=*/
        [](void *src, void *dst) noexcept {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        /*destroy=*/
        [](void *s) noexcept {
            std::launder(reinterpret_cast<Fn *>(s))->~Fn();
        },
        /*inlineStorage=*/true,
    };

    template <typename Fn>
    static inline const Ops heapOps = {
        /*invoke=*/
        [](void *s, Args &&...args) -> R {
            return (**reinterpret_cast<Fn **>(s))(
                std::forward<Args>(args)...);
        },
        /*relocate=*/
        [](void *src, void *dst) noexcept {
            *reinterpret_cast<Fn **>(dst) = *reinterpret_cast<Fn **>(src);
        },
        /*destroy=*/
        [](void *s) noexcept { delete *reinterpret_cast<Fn **>(s); },
        /*inlineStorage=*/false,
    };

    void
    moveFrom(InlineFunction &o) noexcept
    {
        if (o.ops_) {
            o.ops_->relocate(o.buf_, buf_);
            ops_ = o.ops_;
            o.ops_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[BufSize];
    const Ops *ops_ = nullptr;
};

/** The event queue's callback type: 64 bytes of inline capture. */
using InlineCallback = InlineFunction<void()>;

} // namespace ssdrr::sim

#endif // SSDRR_SIM_CALLBACK_HH

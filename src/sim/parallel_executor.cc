#include "sim/parallel_executor.hh"

#include <algorithm>
#include <thread>
#include <utility>

#include "sim/logging.hh"

namespace ssdrr::sim {

namespace {

/** Yield cadence inside the bounded spin: every 64th iteration gives
 *  the core away so a descheduled peer can make progress. */
constexpr unsigned kYieldEvery = 64;

} // namespace

ParallelExecutor::ParallelExecutor(Tick window, unsigned threads,
                                   bool batch_mailbox)
    : window_(window), threads_(threads == 0 ? 1 : threads),
      batch_mailbox_(batch_mailbox)
{
    SSDRR_ASSERT(window_ > 0,
                 "synchronization window must be positive (it is the "
                 "minimum cross-domain latency)");
    // Adaptive parking policy, fixed at construction: when the pool
    // fits the machine, a peer's handshake is microseconds away and
    // a generous spin keeps the barrier syscall-free; when threads
    // outnumber cores, the peer is *descheduled* — every spin
    // iteration steals the timeslice it needs — so park almost
    // immediately and let the scheduler run the peer.
    const unsigned hw = std::thread::hardware_concurrency();
    spin_budget_ = (hw != 0 && threads_ > hw) ? 16 : 2048;
    wait_counters_.resize(1); // slot 0: coordinator
}

ParallelExecutor::~ParallelExecutor() = default;

ParallelExecutor::DomainId
ParallelExecutor::addDomain(EventQueue &q)
{
    const DomainId id = static_cast<DomainId>(doms_.size());
    Domain d;
    d.q = &q;
    doms_.push_back(std::move(d));
    return id;
}

void
ParallelExecutor::send(DomainId from, DomainId to, Tick deliver_at,
                       Callback cb)
{
    SSDRR_ASSERT(from < doms_.size() && to < doms_.size(),
                 "send between unregistered domains ", from, " -> ",
                 to);
    // The conservative-window invariant: nothing sent during a
    // window may land inside it. Holds whenever the modelled
    // cross-domain latency is >= the window width.
    SSDRR_ASSERT(deliver_at >= window_end_,
                 "message from domain ", from, " would arrive at ",
                 deliver_at, ", inside the current window ending at ",
                 window_end_);
    Domain &s = doms_[from];
    s.outbox.push_back(
        Msg{deliver_at, s.next_seq++, from, to, std::move(cb)});
}

void
ParallelExecutor::route()
{
    // Deliveries are totally ordered by (receiver, tick, sender id,
    // sender send-order) — explicit in the comparator, so the order
    // never depends on gather order, sort stability, or which worker
    // executed each sender. This is what keeps delivery (and
    // therefore the whole run) identical across worker counts.
    route_scratch_.clear();
    for (Domain &d : doms_) {
        for (Msg &m : d.outbox)
            route_scratch_.push_back(std::move(m));
        d.outbox.clear();
    }
    if (route_scratch_.empty())
        return;
    std::sort(route_scratch_.begin(), route_scratch_.end(),
              [](const Msg &a, const Msg &b) {
                  if (a.to != b.to)
                      return a.to < b.to;
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.from != b.from)
                      return a.from < b.from;
                  return a.seq < b.seq;
              });
    messages_routed_ += route_scratch_.size();
    if (!batch_mailbox_) {
        for (Msg &m : route_scratch_)
            doms_[m.to].q->schedule(m.when, std::move(m.cb));
        route_scratch_.clear();
        return;
    }
    // Doorbell batching: a run of sorted messages sharing a
    // (receiver, tick) becomes one scheduleBatch event that executes
    // them in the sorted (sender id, send order) sequence. This is
    // bit-identical to individual scheduling: the run's members would
    // have received consecutive sequence numbers (route() is the only
    // scheduler between barriers), so nothing could interleave inside
    // the run anyway, and anything a batched callback schedules at
    // the same tick sequences after the whole run either way.
    // scheduleBatch keeps executedEvents() exact, and mailbox
    // deliveries are never cancelled, so the merged event is safe.
    std::size_t i = 0;
    while (i < route_scratch_.size()) {
        std::size_t j = i + 1;
        while (j < route_scratch_.size() &&
               route_scratch_[j].to == route_scratch_[i].to &&
               route_scratch_[j].when == route_scratch_[i].when)
            ++j;
        Msg &head = route_scratch_[i];
        if (j == i + 1) {
            doms_[head.to].q->schedule(head.when, std::move(head.cb));
        } else {
            std::vector<Callback> cbs;
            cbs.reserve(j - i);
            for (std::size_t k = i; k < j; ++k)
                cbs.push_back(std::move(route_scratch_[k].cb));
            doms_[head.to].q->scheduleBatch(head.when, std::move(cbs));
            messages_coalesced_ += (j - i) - 1;
        }
        i = j;
    }
    route_scratch_.clear();
}

void
ParallelExecutor::runShard(unsigned offset, unsigned stride)
{
    const Tick until = window_end_ - 1; // run(until) is inclusive
    for (std::size_t d = offset; d < doms_.size(); d += stride)
        doms_[d].q->run(until);
}

std::uint64_t
ParallelExecutor::parks() const
{
    std::uint64_t n = 0;
    for (const WaitCounters &w : wait_counters_)
        n += w.parks;
    return n;
}

std::uint64_t
ParallelExecutor::spins() const
{
    std::uint64_t n = 0;
    for (const WaitCounters &w : wait_counters_)
        n += w.spins;
    return n;
}

void
ParallelExecutor::wakeWorkers()
{
    // Dekker-style pairing with the worker's park sequence: the
    // worker bumps parked_workers_ (seq_cst) before re-checking
    // epoch_ under park_mu_; we bumped epoch_ (seq_cst) before this
    // load. Whichever side's store commits first, either the worker
    // observes the new epoch and never sleeps, or we observe the
    // parked count and take the lock — acquiring park_mu_ orders us
    // after the worker's predicate check, so the notify cannot land
    // in the lost-wakeup gap.
    if (parked_workers_.load() == 0)
        return;
    { std::lock_guard<std::mutex> lk(park_mu_); }
    park_cv_.notify_all();
}

void
ParallelExecutor::workerLoop(unsigned index, std::uint64_t start_epoch)
{
    WaitCounters &me = wait_counters_[1 + index];
    std::uint64_t seen = start_epoch;
    while (true) {
        std::uint64_t e;
        unsigned spins = 0;
        while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
            if (++spins <= spin_budget_) {
                if (spins % kYieldEvery == 0)
                    std::this_thread::yield();
                continue;
            }
            me.spins += spins;
            spins = 0;
            std::unique_lock<std::mutex> lk(park_mu_);
            parked_workers_.fetch_add(1);
            ++me.parks;
            park_cv_.wait(lk, [&] {
                return epoch_.load(std::memory_order_acquire) != seen;
            });
            parked_workers_.fetch_sub(1);
        }
        me.spins += spins;
        seen = e;
        if (stop_.load(std::memory_order_acquire))
            return;
        runShard(index + 1, pool_size_ + 1);
        done_.fetch_add(1); // seq_cst: pairs with coord_parked_ check
        if (coord_parked_.load()) {
            { std::lock_guard<std::mutex> lk(park_mu_); }
            done_cv_.notify_one();
        }
    }
}

Tick
ParallelExecutor::run()
{
    SSDRR_ASSERT(!doms_.empty(), "no domains registered");
    route(); // deliver anything sent before the run started

    const unsigned nthreads = static_cast<unsigned>(std::min<std::size_t>(
        threads_, doms_.size()));
    pool_size_ = nthreads - 1;
    stop_.store(false, std::memory_order_release);
    if (wait_counters_.size() < 1 + pool_size_)
        wait_counters_.resize(1 + pool_size_);
    const std::uint64_t epoch0 = epoch_.load(std::memory_order_relaxed);
    std::vector<std::thread> pool;
    pool.reserve(pool_size_);
    for (unsigned w = 0; w < pool_size_; ++w)
        pool.emplace_back(&ParallelExecutor::workerLoop, this, w,
                          epoch0);
    WaitCounters &coord = wait_counters_[0];

    while (true) {
        Tick next = kTickNever;
        for (Domain &d : doms_)
            next = std::min(next, d.q->nextPendingTick());
        if (next == kTickNever)
            break; // drained everywhere, outboxes empty after route()
        SSDRR_ASSERT(next <= kTickNever - window_,
                     "simulated time overflow");
        window_end_ = next + window_;
        ++windows_run_;

        // Idle-window fast-forward: the window start already jumped
        // to the global minimum pending tick, so what remains of a
        // sparse phase is windows whose work all lives in ONE domain
        // (a lone request ping-ponging host <-> drive). Every other
        // domain's nextPendingTick() — a pure O(1) probe — lands at
        // or past the window end, no outbox holds mail (route() ran),
        // and running an empty queue is a no-op, so executing the
        // one active domain inline is bit-identical to a full
        // dispatch and skips the whole epoch handshake; the fleet
        // stays parked. Derived from queue state only => the same
        // windows fast-forward at every worker count.
        std::size_t active = 0, lone = 0;
        for (std::size_t d = 0; d < doms_.size(); ++d) {
            if (doms_[d].q->nextPendingTick() < window_end_) {
                lone = d;
                if (++active > 1)
                    break;
            }
        }
        if (active == 1) {
            ++windows_skipped_;
            doms_[lone].q->run(window_end_ - 1);
        } else if (pool_size_ == 0) {
            runShard(0, 1);
        } else {
            done_.store(0, std::memory_order_relaxed);
            // window_end_ is published by this increment (seq_cst:
            // pairs with the workers' parked_workers_ handshake).
            epoch_.fetch_add(1);
            wakeWorkers();
            runShard(0, pool_size_ + 1);
            unsigned spins = 0;
            while (done_.load(std::memory_order_acquire) !=
                   pool_size_) {
                if (++spins <= spin_budget_) {
                    if (spins % kYieldEvery == 0)
                        std::this_thread::yield();
                    continue;
                }
                coord.spins += spins;
                spins = 0;
                std::unique_lock<std::mutex> lk(park_mu_);
                coord_parked_.store(true);
                ++coord.parks;
                done_cv_.wait(lk, [&] {
                    return done_.load(std::memory_order_acquire) ==
                           pool_size_;
                });
                coord_parked_.store(false);
            }
            coord.spins += spins;
        }
        route();
    }

    if (pool_size_ > 0) {
        stop_.store(true, std::memory_order_release);
        epoch_.fetch_add(1);
        wakeWorkers();
        for (std::thread &t : pool)
            t.join();
    }

    // Align every domain's clock to the run's end so time-normalized
    // statistics share one denominator (exactly what a shared queue
    // gives the single-queue engine).
    Tick end = 0;
    for (Domain &d : doms_)
        end = std::max(end, d.q->now());
    for (Domain &d : doms_)
        d.q->advanceTo(end);
    return end;
}

} // namespace ssdrr::sim

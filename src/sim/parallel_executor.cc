#include "sim/parallel_executor.hh"

#include <algorithm>
#include <thread>
#include <utility>

#include "sim/logging.hh"

namespace ssdrr::sim {

namespace {

/** Bounded spin before yielding the core: cheap when the other side
 *  is running in parallel, graceful when workers outnumber cores. */
inline void
relax(unsigned &spins)
{
    if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
    }
}

} // namespace

ParallelExecutor::ParallelExecutor(Tick window, unsigned threads,
                                   bool batch_mailbox)
    : window_(window), threads_(threads == 0 ? 1 : threads),
      batch_mailbox_(batch_mailbox)
{
    SSDRR_ASSERT(window_ > 0,
                 "synchronization window must be positive (it is the "
                 "minimum cross-domain latency)");
}

ParallelExecutor::~ParallelExecutor() = default;

ParallelExecutor::DomainId
ParallelExecutor::addDomain(EventQueue &q)
{
    const DomainId id = static_cast<DomainId>(doms_.size());
    Domain d;
    d.q = &q;
    doms_.push_back(std::move(d));
    return id;
}

void
ParallelExecutor::send(DomainId from, DomainId to, Tick deliver_at,
                       Callback cb)
{
    SSDRR_ASSERT(from < doms_.size() && to < doms_.size(),
                 "send between unregistered domains ", from, " -> ",
                 to);
    // The conservative-window invariant: nothing sent during a
    // window may land inside it. Holds whenever the modelled
    // cross-domain latency is >= the window width.
    SSDRR_ASSERT(deliver_at >= window_end_,
                 "message from domain ", from, " would arrive at ",
                 deliver_at, ", inside the current window ending at ",
                 window_end_);
    Domain &s = doms_[from];
    s.outbox.push_back(
        Msg{deliver_at, s.next_seq++, from, to, std::move(cb)});
}

void
ParallelExecutor::route()
{
    // Deliveries are totally ordered by (receiver, tick, sender id,
    // sender send-order) — explicit in the comparator, so the order
    // never depends on gather order, sort stability, or which worker
    // executed each sender. This is what keeps delivery (and
    // therefore the whole run) identical across worker counts.
    route_scratch_.clear();
    for (Domain &d : doms_) {
        for (Msg &m : d.outbox)
            route_scratch_.push_back(std::move(m));
        d.outbox.clear();
    }
    if (route_scratch_.empty())
        return;
    std::sort(route_scratch_.begin(), route_scratch_.end(),
              [](const Msg &a, const Msg &b) {
                  if (a.to != b.to)
                      return a.to < b.to;
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.from != b.from)
                      return a.from < b.from;
                  return a.seq < b.seq;
              });
    messages_routed_ += route_scratch_.size();
    if (!batch_mailbox_) {
        for (Msg &m : route_scratch_)
            doms_[m.to].q->schedule(m.when, std::move(m.cb));
        route_scratch_.clear();
        return;
    }
    // Doorbell batching: a run of sorted messages sharing a
    // (receiver, tick) becomes one scheduleBatch event that executes
    // them in the sorted (sender id, send order) sequence. This is
    // bit-identical to individual scheduling: the run's members would
    // have received consecutive sequence numbers (route() is the only
    // scheduler between barriers), so nothing could interleave inside
    // the run anyway, and anything a batched callback schedules at
    // the same tick sequences after the whole run either way.
    // scheduleBatch keeps executedEvents() exact, and mailbox
    // deliveries are never cancelled, so the merged event is safe.
    std::size_t i = 0;
    while (i < route_scratch_.size()) {
        std::size_t j = i + 1;
        while (j < route_scratch_.size() &&
               route_scratch_[j].to == route_scratch_[i].to &&
               route_scratch_[j].when == route_scratch_[i].when)
            ++j;
        Msg &head = route_scratch_[i];
        if (j == i + 1) {
            doms_[head.to].q->schedule(head.when, std::move(head.cb));
        } else {
            std::vector<Callback> cbs;
            cbs.reserve(j - i);
            for (std::size_t k = i; k < j; ++k)
                cbs.push_back(std::move(route_scratch_[k].cb));
            doms_[head.to].q->scheduleBatch(head.when, std::move(cbs));
            messages_coalesced_ += (j - i) - 1;
        }
        i = j;
    }
    route_scratch_.clear();
}

void
ParallelExecutor::runShard(unsigned offset, unsigned stride)
{
    const Tick until = window_end_ - 1; // run(until) is inclusive
    for (std::size_t d = offset; d < doms_.size(); d += stride)
        doms_[d].q->run(until);
}

void
ParallelExecutor::workerLoop(unsigned index, std::uint64_t start_epoch)
{
    std::uint64_t seen = start_epoch;
    while (true) {
        std::uint64_t e;
        unsigned spins = 0;
        while ((e = epoch_.load(std::memory_order_acquire)) == seen)
            relax(spins);
        seen = e;
        if (stop_.load(std::memory_order_acquire))
            return;
        runShard(index + 1, pool_size_ + 1);
        done_.fetch_add(1, std::memory_order_acq_rel);
    }
}

Tick
ParallelExecutor::run()
{
    SSDRR_ASSERT(!doms_.empty(), "no domains registered");
    route(); // deliver anything sent before the run started

    const unsigned nthreads = static_cast<unsigned>(std::min<std::size_t>(
        threads_, doms_.size()));
    pool_size_ = nthreads - 1;
    stop_.store(false, std::memory_order_release);
    const std::uint64_t epoch0 = epoch_.load(std::memory_order_relaxed);
    std::vector<std::thread> pool;
    pool.reserve(pool_size_);
    for (unsigned w = 0; w < pool_size_; ++w)
        pool.emplace_back(&ParallelExecutor::workerLoop, this, w,
                          epoch0);

    while (true) {
        Tick next = kTickNever;
        for (Domain &d : doms_)
            next = std::min(next, d.q->nextPendingTick());
        if (next == kTickNever)
            break; // drained everywhere, outboxes empty after route()
        SSDRR_ASSERT(next <= kTickNever - window_,
                     "simulated time overflow");
        window_end_ = next + window_;
        ++windows_run_;
        if (pool_size_ == 0) {
            runShard(0, 1);
        } else {
            done_.store(0, std::memory_order_relaxed);
            // window_end_ is published by this release increment.
            epoch_.fetch_add(1, std::memory_order_release);
            runShard(0, pool_size_ + 1);
            unsigned spins = 0;
            while (done_.load(std::memory_order_acquire) != pool_size_)
                relax(spins);
        }
        route();
    }

    if (pool_size_ > 0) {
        stop_.store(true, std::memory_order_release);
        epoch_.fetch_add(1, std::memory_order_release);
        for (std::thread &t : pool)
            t.join();
    }

    // Align every domain's clock to the run's end so time-normalized
    // statistics share one denominator (exactly what a shared queue
    // gives the single-queue engine).
    Tick end = 0;
    for (Domain &d : doms_)
        end = std::max(end, d.q->now());
    for (Domain &d : doms_)
        d.q->advanceTo(end);
    return end;
}

} // namespace ssdrr::sim

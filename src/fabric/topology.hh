/**
 * @file
 * Storage-fabric topology: the host <-> drive interconnect as a graph.
 *
 * A TopologySpec is the declarative description (mirroring the
 * scenario JSON `fabric` object): named nodes of kind host / switch /
 * drive, undirected links between them, and a per-drive attachment
 * map. validate() enforces the structural invariants the runtime
 * relies on and reports violations with the offending JSON path
 * (`fabric.nodes[i]`, `fabric.links[i]`, `fabric.drives[i]`) so the
 * scenario loader can surface them verbatim.
 *
 * Topology::compile() turns a valid spec into the runtime form:
 * integer node/link ids, the unique host->drive hop sequence for every
 * drive (the graph is a tree, so paths are unique and no shortest-path
 * search is needed), and the minimum link latency in ticks — which is
 * exactly the conservative window width a ParallelExecutor needs when
 * every fabric node is its own domain: no message can cross between
 * domains faster than the cheapest link.
 *
 * Invariants established by validate()/compile():
 *  - exactly one node of kind "host"; node names unique and non-empty;
 *  - every link joins two distinct known nodes; latencies are >= 1
 *    tick (a zero-tick link would force a zero-width window);
 *  - the link graph is a tree rooted at the host: no cycles, every
 *    node reachable from the host;
 *  - the drive attachment map covers each array drive exactly once,
 *    points only at kind-"drive" nodes, and uses every drive node.
 */

#ifndef SSDRR_FABRIC_TOPOLOGY_HH
#define SSDRR_FABRIC_TOPOLOGY_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace ssdrr::fabric {

/** Structural error in a fabric description. The message names the
 *  offending JSON path (e.g. "fabric.links[2].to: unknown node"). */
class TopologyError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

struct NodeSpec {
    std::string name;
    std::string kind; ///< "host" | "switch" | "drive"
};

inline bool
operator==(const NodeSpec &a, const NodeSpec &b)
{
    return a.name == b.name && a.kind == b.kind;
}

struct LinkSpec {
    std::string from;
    std::string to;
    double latencyUs = 1.0; ///< per-hop propagation latency
    double usPerKb = 0.0;   ///< serialization charge per KiB carried
};

inline bool
operator==(const LinkSpec &a, const LinkSpec &b)
{
    return a.from == b.from && a.to == b.to &&
           a.latencyUs == b.latencyUs && a.usPerKb == b.usPerKb;
}

/** Declarative fabric description (the scenario `fabric` object). */
struct TopologySpec {
    std::vector<NodeSpec> nodes;
    std::vector<LinkSpec> links;
    /** Drive attachment map: array drive index -> node name. */
    std::vector<std::string> drives;

    /** True when no fabric was declared (flat-link engine applies). */
    bool empty() const { return nodes.empty() && links.empty() &&
                                drives.empty(); }

    /**
     * Check every structural invariant against an array of
     * @p driveCount drives. Throws TopologyError naming the offending
     * `fabric.*` JSON path on the first violation.
     */
    void validate(std::uint32_t driveCount) const;
};

inline bool
operator==(const TopologySpec &a, const TopologySpec &b)
{
    return a.nodes == b.nodes && a.links == b.links &&
           a.drives == b.drives;
}

inline bool
operator!=(const TopologySpec &a, const TopologySpec &b)
{
    return !(a == b);
}

/**
 * Generate a canonical topology for an array of @p driveCount drives.
 * Presets:
 *  - "flat"      one host port linked directly to every drive;
 *  - "tree:SxD"  one host port, S switches, D drives behind each
 *                switch (S*D must equal @p driveCount). The S uplinks
 *                are shared by D drives each, so they oversubscribe
 *                as soon as D > 1.
 * Throws TopologyError for an unknown preset name or a drive-count
 * mismatch.
 */
TopologySpec makePreset(const std::string &name, std::uint32_t driveCount);

/** Compiled, integer-indexed form of a validated TopologySpec. */
class Topology
{
  public:
    enum class Kind : std::uint8_t { Host, Switch, Drive };

    struct Node {
        std::string name;
        Kind kind = Kind::Switch;
    };

    struct Link {
        std::uint32_t a = 0;     ///< node index (spec "from")
        std::uint32_t b = 0;     ///< node index (spec "to")
        sim::Tick latency = 0;   ///< per-hop propagation, ticks
        double usPerKb = 0.0;    ///< serialization charge per KiB
    };

    /** One step of a host->drive path. */
    struct Hop {
        std::uint32_t link = 0; ///< link index
        bool forward = true;    ///< true: a->b traversal, false: b->a
        std::uint32_t next = 0; ///< node index arrived at
    };

    /**
     * Validate @p spec (as TopologySpec::validate) and build the
     * runtime form for an array of @p driveCount drives.
     */
    static Topology compile(const TopologySpec &spec,
                            std::uint32_t driveCount);

    const std::vector<Node> &nodes() const { return nodes_; }
    const std::vector<Link> &links() const { return links_; }
    std::uint32_t hostNode() const { return host_; }
    /** Node indices of kind Switch, in node-declaration order. */
    const std::vector<std::uint32_t> &switchNodes() const
    {
        return switches_;
    }
    /** Attachment node index of array drive @p d. */
    std::uint32_t attachment(std::uint32_t d) const
    {
        return attach_[d];
    }
    /** Number of drives the topology was compiled for. */
    std::uint32_t pathCount() const
    {
        return static_cast<std::uint32_t>(paths_.size());
    }
    /** Unique host->drive hop sequence for array drive @p d. */
    const std::vector<Hop> &pathTo(std::uint32_t d) const
    {
        return paths_[d];
    }
    /** Node names along host->drive path (host first), for tests. */
    std::vector<std::string> pathNames(std::uint32_t d) const;
    /** Cheapest link's latency: the conservative window width. */
    sim::Tick minLinkLatency() const { return min_latency_; }
    /** Human-readable "from->to" label for link @p l, honoring the
     *  traversal direction. */
    std::string linkName(std::uint32_t l, bool forward) const;

  private:
    Topology() = default;

    std::vector<Node> nodes_;
    std::vector<Link> links_;
    std::vector<std::uint32_t> switches_;
    std::vector<std::uint32_t> attach_;
    std::vector<std::vector<Hop>> paths_;
    std::uint32_t host_ = 0;
    sim::Tick min_latency_ = 0;
};

} // namespace ssdrr::fabric

#endif // SSDRR_FABRIC_TOPOLOGY_HH

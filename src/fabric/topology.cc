#include "fabric/topology.hh"

#include <cmath>
#include <cstdio>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "sim/logging.hh"

namespace ssdrr::fabric {

namespace {

[[noreturn]] void
fail(const std::string &msg)
{
    throw TopologyError(msg);
}

std::string
pathNodes(std::size_t i)
{
    return "fabric.nodes[" + std::to_string(i) + "]";
}

std::string
pathLinks(std::size_t i)
{
    return "fabric.links[" + std::to_string(i) + "]";
}

std::string
pathDrives(std::size_t i)
{
    return "fabric.drives[" + std::to_string(i) + "]";
}

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/** Union-find over node indices, for cycle detection. */
class DisjointSet
{
  public:
    explicit DisjointSet(std::size_t n) : parent_(n)
    {
        for (std::size_t i = 0; i < n; ++i)
            parent_[i] = static_cast<std::uint32_t>(i);
    }

    std::uint32_t
    find(std::uint32_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    /** @retval false if @p a and @p b were already connected. */
    bool
    join(std::uint32_t a, std::uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        parent_[a] = b;
        return true;
    }

  private:
    std::vector<std::uint32_t> parent_;
};

std::unordered_map<std::string, std::uint32_t>
checkNodes(const TopologySpec &spec)
{
    std::unordered_map<std::string, std::uint32_t> index;
    bool have_host = false;
    for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
        const NodeSpec &n = spec.nodes[i];
        if (n.name.empty())
            fail(pathNodes(i) + ".name: must not be empty");
        if (n.kind != "host" && n.kind != "switch" && n.kind != "drive")
            fail(pathNodes(i) + ".kind: unknown kind \"" + n.kind +
                 "\" (expected \"host\", \"switch\", or \"drive\")");
        if (!index.emplace(n.name, static_cast<std::uint32_t>(i)).second)
            fail(pathNodes(i) + ".name: duplicate node name \"" +
                 n.name + "\"");
        if (n.kind == "host") {
            if (have_host)
                fail(pathNodes(i) + ".kind: second \"host\" node \"" +
                     n.name + "\" (a fabric has exactly one host)");
            have_host = true;
        }
    }
    if (!have_host)
        fail("fabric.nodes: no node of kind \"host\"");
    return index;
}

void
checkLinks(const TopologySpec &spec,
           const std::unordered_map<std::string, std::uint32_t> &index)
{
    DisjointSet ds(spec.nodes.size());
    for (std::size_t i = 0; i < spec.links.size(); ++i) {
        const LinkSpec &l = spec.links[i];
        auto from = index.find(l.from);
        if (from == index.end())
            fail(pathLinks(i) + ".from: unknown node \"" + l.from +
                 "\"");
        auto to = index.find(l.to);
        if (to == index.end())
            fail(pathLinks(i) + ".to: unknown node \"" + l.to + "\"");
        if (from->second == to->second)
            fail(pathLinks(i) + ": self-loop on node \"" + l.from +
                 "\"");
        if (!std::isfinite(l.latencyUs) || l.latencyUs <= 0.0)
            fail(pathLinks(i) + ".latencyUs: must be > 0, got " +
                 num(l.latencyUs));
        if (sim::usec(l.latencyUs) < 1)
            fail(pathLinks(i) + ".latencyUs: " + num(l.latencyUs) +
                 " rounds to zero ticks; the conservative window "
                 "derived from the cheapest link would be empty");
        if (!std::isfinite(l.usPerKb) || l.usPerKb < 0.0)
            fail(pathLinks(i) + ".usPerKb: must be >= 0, got " +
                 num(l.usPerKb));
        if (!ds.join(from->second, to->second))
            fail(pathLinks(i) + ": link \"" + l.from + "\" -> \"" +
                 l.to + "\" creates a cycle (the fabric must be a "
                 "tree rooted at the host)");
    }
}

/** BFS from the host; returns per-node (parent node, via link) or
 *  UINT32_MAX for unreachable. */
struct Reach {
    static constexpr std::uint32_t kNone = 0xffffffffu;
    std::vector<std::uint32_t> parent;
    std::vector<std::uint32_t> via;
};

Reach
reachFromHost(const TopologySpec &spec,
              const std::unordered_map<std::string, std::uint32_t> &index,
              std::uint32_t host)
{
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        adj(spec.nodes.size()); // node -> (neighbor, link idx)
    for (std::size_t i = 0; i < spec.links.size(); ++i) {
        std::uint32_t a = index.at(spec.links[i].from);
        std::uint32_t b = index.at(spec.links[i].to);
        adj[a].emplace_back(b, static_cast<std::uint32_t>(i));
        adj[b].emplace_back(a, static_cast<std::uint32_t>(i));
    }
    Reach r;
    r.parent.assign(spec.nodes.size(), Reach::kNone);
    r.via.assign(spec.nodes.size(), Reach::kNone);
    std::deque<std::uint32_t> queue{host};
    r.parent[host] = host;
    while (!queue.empty()) {
        std::uint32_t n = queue.front();
        queue.pop_front();
        for (auto [next, link] : adj[n]) {
            if (r.parent[next] != Reach::kNone)
                continue;
            r.parent[next] = n;
            r.via[next] = link;
            queue.push_back(next);
        }
    }
    return r;
}

void
checkReachability(const TopologySpec &spec, const Reach &r,
                  std::uint32_t host)
{
    for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
        if (r.parent[i] != Reach::kNone)
            continue;
        const NodeSpec &n = spec.nodes[i];
        fail(pathNodes(i) + ": " +
             (n.kind == "drive" ? "drive node" : "node") + " \"" +
             n.name + "\" is unreachable from the host \"" +
             spec.nodes[host].name + "\"");
    }
}

void
checkDrives(const TopologySpec &spec,
            const std::unordered_map<std::string, std::uint32_t> &index,
            std::uint32_t driveCount)
{
    if (spec.drives.size() != driveCount)
        fail("fabric.drives: " + std::to_string(spec.drives.size()) +
             " attachment entries for an array of " +
             std::to_string(driveCount) + " drives");
    std::unordered_set<std::uint32_t> attached;
    for (std::size_t i = 0; i < spec.drives.size(); ++i) {
        auto it = index.find(spec.drives[i]);
        if (it == index.end())
            fail(pathDrives(i) + ": unknown node \"" + spec.drives[i] +
                 "\"");
        const NodeSpec &n = spec.nodes[it->second];
        if (n.kind != "drive")
            fail(pathDrives(i) + ": node \"" + n.name +
                 "\" has kind \"" + n.kind + "\" (must be \"drive\")");
        if (!attached.insert(it->second).second)
            fail(pathDrives(i) + ": node \"" + n.name +
                 "\" attached to more than one drive");
    }
    for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
        if (spec.nodes[i].kind == "drive" &&
            !attached.count(static_cast<std::uint32_t>(i))) {
            fail(pathNodes(i) + ": drive node \"" + spec.nodes[i].name +
                 "\" is not mapped to any array drive in "
                 "fabric.drives");
        }
    }
}

} // namespace

void
TopologySpec::validate(std::uint32_t driveCount) const
{
    if (empty())
        fail("fabric: empty object (declare nodes, links, and drives, "
             "or omit the fabric entirely)");
    auto index = checkNodes(*this);
    std::uint32_t host = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i].kind == "host")
            host = static_cast<std::uint32_t>(i);
    checkLinks(*this, index);
    checkReachability(*this, reachFromHost(*this, index, host), host);
    checkDrives(*this, index, driveCount);
}

TopologySpec
makePreset(const std::string &name, std::uint32_t driveCount)
{
    constexpr double kLatencyUs = 1.0;
    constexpr double kUsPerKb = 0.05;
    TopologySpec spec;
    if (name == "flat") {
        spec.nodes.push_back({"host0", "host"});
        for (std::uint32_t d = 0; d < driveCount; ++d) {
            std::string dn = "d" + std::to_string(d);
            spec.nodes.push_back({dn, "drive"});
            spec.links.push_back({"host0", dn, kLatencyUs, kUsPerKb});
            spec.drives.push_back(dn);
        }
        return spec;
    }
    if (name.rfind("tree:", 0) == 0) {
        unsigned s = 0, d = 0;
        char tail = '\0';
        int got = std::sscanf(name.c_str() + 5, "%ux%u%c", &s, &d,
                              &tail);
        if (got != 2 || s == 0 || d == 0)
            throw TopologyError("fabric preset \"" + name +
                                "\": expected \"tree:SxD\" with "
                                "positive switch and drive counts");
        if (static_cast<std::uint64_t>(s) * d != driveCount)
            throw TopologyError(
                "fabric preset \"" + name + "\": describes " +
                std::to_string(static_cast<std::uint64_t>(s) * d) +
                " drives but the array has " +
                std::to_string(driveCount));
        spec.nodes.push_back({"host0", "host"});
        for (unsigned i = 0; i < s; ++i) {
            std::string sw = "sw" + std::to_string(i);
            spec.nodes.push_back({sw, "switch"});
            spec.links.push_back({"host0", sw, kLatencyUs, kUsPerKb});
        }
        for (unsigned i = 0; i < s; ++i) {
            for (unsigned j = 0; j < d; ++j) {
                std::string dn = "d" + std::to_string(i * d + j);
                spec.nodes.push_back({dn, "drive"});
                spec.links.push_back({"sw" + std::to_string(i), dn,
                                      kLatencyUs, kUsPerKb});
                spec.drives.push_back(dn);
            }
        }
        return spec;
    }
    throw TopologyError("fabric preset \"" + name +
                        "\": unknown (expected \"flat\" or "
                        "\"tree:SxD\")");
}

Topology
Topology::compile(const TopologySpec &spec, std::uint32_t driveCount)
{
    spec.validate(driveCount);

    Topology t;
    std::unordered_map<std::string, std::uint32_t> index;
    for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
        const NodeSpec &n = spec.nodes[i];
        Kind k = n.kind == "host"
                     ? Kind::Host
                     : (n.kind == "switch" ? Kind::Switch : Kind::Drive);
        if (k == Kind::Host)
            t.host_ = static_cast<std::uint32_t>(i);
        if (k == Kind::Switch)
            t.switches_.push_back(static_cast<std::uint32_t>(i));
        t.nodes_.push_back({n.name, k});
        index.emplace(n.name, static_cast<std::uint32_t>(i));
    }

    t.min_latency_ = sim::kTickNever;
    for (const LinkSpec &l : spec.links) {
        Link link;
        link.a = index.at(l.from);
        link.b = index.at(l.to);
        link.latency = sim::usec(l.latencyUs);
        link.usPerKb = l.usPerKb;
        if (link.latency < t.min_latency_)
            t.min_latency_ = link.latency;
        t.links_.push_back(link);
    }

    Reach r = reachFromHost(spec, index, t.host_);
    t.attach_.resize(driveCount);
    t.paths_.resize(driveCount);
    for (std::uint32_t d = 0; d < driveCount; ++d) {
        std::uint32_t node = index.at(spec.drives[d]);
        t.attach_[d] = node;
        std::vector<Hop> path;
        for (std::uint32_t n = node; n != t.host_; n = r.parent[n]) {
            Hop hop;
            hop.link = r.via[n];
            hop.forward = t.links_[hop.link].b == n;
            hop.next = n;
            path.push_back(hop);
        }
        t.paths_[d].assign(path.rbegin(), path.rend());
    }
    return t;
}

std::vector<std::string>
Topology::pathNames(std::uint32_t d) const
{
    std::vector<std::string> names{nodes_[host_].name};
    for (const Hop &h : paths_[d])
        names.push_back(nodes_[h.next].name);
    return names;
}

std::string
Topology::linkName(std::uint32_t l, bool forward) const
{
    const Link &link = links_[l];
    const std::string &a = nodes_[link.a].name;
    const std::string &b = nodes_[link.b].name;
    return forward ? a + "->" + b : b + "->" + a;
}

} // namespace ssdrr::fabric

/**
 * @file
 * Runtime fabric transport: multi-hop message forwarding with per-link
 * FIFO contention over a ParallelExecutor.
 *
 * A Fabric instance takes a compiled Topology and turns every node
 * into its own executor domain: the host port and the drive ports
 * borrow the queues the SsdArray already owns, and each switch gets a
 * private EventQueue created (and registered) here. Registration
 * order is fixed — host, then switches in node-declaration order,
 * then drives in array order — so domain ids, and with them the
 * executor's deterministic mailbox ordering, never depend on timing.
 *
 * A message (a dispatch toward a drive, or a completion back to the
 * host) traverses its precomputed path one hop at a time. Each hop is
 * charged on the *sending* node's clock:
 *
 *     start   = max(now, link.busyUntil)      FIFO queueing
 *     ser     = bytes / KiB * link.usPerKb    serialization
 *     deliver = start + ser + link.latency    propagation
 *
 * and busyUntil advances to start + ser, so concurrent subrequests
 * sharing a hop serialize in arrival order. Each link direction keeps
 * its own FIFO state (links are full duplex) and that state is only
 * ever touched from the direction's sending domain, which preserves
 * the executor's domains-share-nothing contract — worker-count
 * invariance and tsan-cleanliness hold by construction.
 *
 * The conservative window is the topology's minimum link latency:
 * every hop delivers at least one full link latency after it is sent,
 * so no cross-domain message can undercut the window.
 *
 * Ownership: the Fabric owns the switch queues; the executor and the
 * host/drive queues are borrowed and must outlive it.
 */

#ifndef SSDRR_FABRIC_FABRIC_HH
#define SSDRR_FABRIC_FABRIC_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "fabric/topology.hh"
#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_executor.hh"
#include "sim/types.hh"

namespace ssdrr::fabric {

/** Aggregated per-link counters (both directions merged). */
struct LinkReport {
    std::string link;               ///< "a<->b" label
    std::uint64_t messages = 0;     ///< hops carried
    std::uint64_t bytesCarried = 0; ///< payload bytes serialized
    double busyUs = 0.0;            ///< total serialization time
    double waitUs = 0.0;            ///< total FIFO queueing wait
    std::uint32_t maxQueueDepth = 0;
};

class Fabric
{
  public:
    /**
     * Build the transport over @p exec. @p hostDom / @p hostQueue are
     * the already-registered host domain; the constructor registers
     * one domain per switch, so it must run after the host domain is
     * added and before any drive domain.
     */
    Fabric(Topology topo, sim::ParallelExecutor &exec,
           sim::ParallelExecutor::DomainId hostDom,
           sim::EventQueue &hostQueue);

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    /** Bind array drive @p drive's domain/queue to its fabric port. */
    void attachDrive(std::uint32_t drive,
                     sim::ParallelExecutor::DomainId dom,
                     sim::EventQueue &queue);

    /**
     * Route a message from the host to drive @p drive along its path,
     * invoking @p done on the drive's domain when it arrives. @p bytes
     * is the serialized payload (0 for a command-only crossing);
     * @p read tags the message for the read-wait accounting. Must be
     * called from the host domain's execution context.
     */
    void toDrive(std::uint32_t drive, std::uint64_t bytes, bool read,
                 sim::InlineCallback done);

    /** The reverse crossing: drive @p drive's domain to the host. */
    void toHost(std::uint32_t drive, std::uint64_t bytes, bool read,
                sim::InlineCallback done);

    const Topology &topology() const { return topo_; }

    /** Events executed by the switch queues (for RunStats totals). */
    std::uint64_t switchExecutedEvents() const;

    /** Per-link counters, in link-declaration order. */
    std::vector<LinkReport> linkReports() const;

    /** Total FIFO wait accumulated by read-tagged messages. */
    sim::Tick readWaitTicks() const;

  private:
    /** One hop of a routed direction, fully resolved. */
    struct Seg {
        std::uint32_t fromNode = 0;
        std::uint32_t toNode = 0;
        std::uint32_t link = 0;
        std::uint8_t dir = 0; ///< 0: spec a->b, 1: spec b->a
    };

    /** FIFO state of one link direction. Confined to the domain of
     *  the direction's sending node. */
    struct DirState {
        sim::Tick busyUntil = 0;
        /** Serialization end ticks of messages still occupying the
         *  link, pruned on each departure; size is the queue depth. */
        std::deque<sim::Tick> inflight;
        std::uint64_t messages = 0;
        std::uint64_t bytes = 0;
        sim::Tick busy = 0;
        sim::Tick wait = 0;
        sim::Tick readWait = 0;
        std::uint32_t maxDepth = 0;
    };

    struct Port {
        sim::ParallelExecutor::DomainId dom = 0;
        sim::EventQueue *queue = nullptr;
    };

    void route(const std::vector<Seg> &segs, std::size_t idx,
               std::uint64_t bytes, bool read, sim::InlineCallback done);

    Topology topo_;
    sim::ParallelExecutor &exec_;
    std::vector<Port> ports_;                  ///< by node index
    std::vector<std::unique_ptr<sim::EventQueue>> switch_queues_;
    std::vector<std::array<DirState, 2>> dirs_; ///< by link index
    std::vector<std::vector<Seg>> down_;        ///< host->drive, by drive
    std::vector<std::vector<Seg>> up_;          ///< drive->host, by drive
};

} // namespace ssdrr::fabric

#endif // SSDRR_FABRIC_FABRIC_HH

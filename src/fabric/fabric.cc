#include "fabric/fabric.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace ssdrr::fabric {

Fabric::Fabric(Topology topo, sim::ParallelExecutor &exec,
               sim::ParallelExecutor::DomainId hostDom,
               sim::EventQueue &hostQueue)
    : topo_(std::move(topo)), exec_(exec)
{
    ports_.resize(topo_.nodes().size());
    ports_[topo_.hostNode()] = {hostDom, &hostQueue};
    for (std::uint32_t sw : topo_.switchNodes()) {
        switch_queues_.push_back(std::make_unique<sim::EventQueue>());
        ports_[sw] = {exec_.addDomain(*switch_queues_.back()),
                      switch_queues_.back().get()};
    }
    dirs_.resize(topo_.links().size());

    down_.resize(topo_.pathCount());
    up_.resize(topo_.pathCount());
    for (std::uint32_t d = 0; d < topo_.pathCount(); ++d) {
        const auto &hops = topo_.pathTo(d);
        std::uint32_t at = topo_.hostNode();
        for (const Topology::Hop &h : hops) {
            Seg seg;
            seg.fromNode = at;
            seg.toNode = h.next;
            seg.link = h.link;
            seg.dir = h.forward ? 0 : 1;
            down_[d].push_back(seg);
            at = h.next;
        }
        for (auto it = down_[d].rbegin(); it != down_[d].rend(); ++it) {
            Seg seg;
            seg.fromNode = it->toNode;
            seg.toNode = it->fromNode;
            seg.link = it->link;
            seg.dir = it->dir ^ 1;
            up_[d].push_back(seg);
        }
    }
}

void
Fabric::attachDrive(std::uint32_t drive,
                    sim::ParallelExecutor::DomainId dom,
                    sim::EventQueue &queue)
{
    ports_[topo_.attachment(drive)] = {dom, &queue};
}

void
Fabric::toDrive(std::uint32_t drive, std::uint64_t bytes, bool read,
                sim::InlineCallback done)
{
    route(down_[drive], 0, bytes, read, std::move(done));
}

void
Fabric::toHost(std::uint32_t drive, std::uint64_t bytes, bool read,
               sim::InlineCallback done)
{
    route(up_[drive], 0, bytes, read, std::move(done));
}

void
Fabric::route(const std::vector<Seg> &segs, std::size_t idx,
              std::uint64_t bytes, bool read, sim::InlineCallback done)
{
    if (idx == segs.size()) {
        done();
        return;
    }
    const Seg &seg = segs[idx];
    const Topology::Link &link = topo_.links()[seg.link];
    const Port &from = ports_[seg.fromNode];
    SSDRR_ASSERT(from.queue != nullptr, "fabric port not attached");

    const sim::Tick now = from.queue->now();
    DirState &st = dirs_[seg.link][seg.dir];
    const sim::Tick start = std::max(now, st.busyUntil);
    const sim::Tick ser =
        sim::usec(static_cast<double>(bytes) / 1024.0 * link.usPerKb);
    st.busyUntil = start + ser;

    while (!st.inflight.empty() && st.inflight.front() <= now)
        st.inflight.pop_front();
    st.inflight.push_back(start + ser);
    st.maxDepth = std::max(st.maxDepth,
                           static_cast<std::uint32_t>(st.inflight.size()));
    st.messages += 1;
    st.bytes += bytes;
    st.busy += ser;
    st.wait += start - now;
    if (read)
        st.readWait += start - now;

    const sim::Tick deliver = start + ser + link.latency;
    exec_.send(from.dom, ports_[seg.toNode].dom, deliver,
               [this, &segs, idx, bytes, read,
                done = std::move(done)]() mutable {
                   route(segs, idx + 1, bytes, read, std::move(done));
               });
}

std::uint64_t
Fabric::switchExecutedEvents() const
{
    std::uint64_t total = 0;
    for (const auto &q : switch_queues_)
        total += q->executedEvents();
    return total;
}

std::vector<LinkReport>
Fabric::linkReports() const
{
    std::vector<LinkReport> out;
    out.reserve(dirs_.size());
    for (std::size_t l = 0; l < dirs_.size(); ++l) {
        LinkReport r;
        const Topology::Link &link = topo_.links()[l];
        r.link = topo_.nodes()[link.a].name + "<->" +
                 topo_.nodes()[link.b].name;
        for (const DirState &st : dirs_[l]) {
            r.messages += st.messages;
            r.bytesCarried += st.bytes;
            r.busyUs += sim::toUsec(st.busy);
            r.waitUs += sim::toUsec(st.wait);
            r.maxQueueDepth = std::max(r.maxQueueDepth, st.maxDepth);
        }
        out.push_back(std::move(r));
    }
    return out;
}

sim::Tick
Fabric::readWaitTicks() const
{
    sim::Tick total = 0;
    for (const auto &dirs : dirs_)
        for (const DirState &st : dirs)
            total += st.readWait;
    return total;
}

} // namespace ssdrr::fabric

/**
 * @file
 * Top-level SSD model: host interface, FTL, TSU, chips, channels,
 * ECC engines and the configured read-retry mechanism.
 *
 * This is the system the paper evaluates in Section 7: a trace is
 * replayed against an SSD preconditioned to a (PEC, retention)
 * operating point, and the per-request response time is collected
 * under each retry mechanism.
 */

#ifndef SSDRR_SSD_SSD_HH
#define SSDRR_SSD_SSD_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mechanism.hh"
#include "core/retry_controller.hh"
#include "core/rpt.hh"
#include "ecc/engine.hh"
#include "ftl/ftl.hh"
#include "nand/chip.hh"
#include "nand/error_model.hh"
#include "nand/page_profile_cache.hh"
#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "ssd/channel.hh"
#include "ssd/config.hh"
#include "ssd/transaction.hh"
#include "ssd/tsu.hh"
#include "workload/trace.hh"

namespace ssdrr::ssd {

/** One host I/O request (page-granular). */
struct HostRequest {
    std::uint64_t id = 0;
    sim::Tick arrival = 0;
    ftl::Lpn lpn = 0;      ///< first logical page
    std::uint32_t pages = 1;
    bool isRead = true;
    /**
     * Channel-affinity mask for writes (bit c = channel c allowed;
     * 0 = unrestricted). The FTL allocates the new physical page on
     * a plane of an allowed channel; reads are unaffected (they go
     * wherever the page currently lives). Set by the host layer for
     * tenants pinned to a channel subset.
     */
    std::uint32_t channelMask = 0;
};

/**
 * How a host request (or array subrequest) completed. Devices always
 * raise Ok — uncorrectable reads are injected above the device by the
 * fault timeline (sim/fault_injector.hh), which flips subrequest
 * completions to Uecc at the host boundary; Failed marks an array
 * request whose data could not be recovered (retries exhausted and no
 * reconstruction path).
 */
enum class CompletionStatus : std::uint8_t {
    Ok,
    Uecc,   ///< read completed uncorrectable (transient fault window)
    Failed, ///< unrecoverable: retries exhausted, no redundancy left
};

/**
 * Completion record delivered to the host-side completion hook when
 * the last page of a host request finishes. The host interface layer
 * (src/host/) uses this to route completions back to the submitting
 * queue pair; @c arrival is echoed from the request so queueing delay
 * ahead of the device is included in @c responseUs.
 */
struct HostCompletion {
    std::uint64_t id = 0;    ///< HostRequest::id
    sim::Tick arrival = 0;   ///< HostRequest::arrival
    sim::Tick finish = 0;    ///< completion time
    bool isRead = true;
    double responseUs = 0.0; ///< finish - arrival, in microseconds
    /** HostRequest::pages, echoed so the host layer can charge
     *  size-proportional completion transfer time. */
    std::uint32_t pages = 1;
    CompletionStatus status = CompletionStatus::Ok;
};

/** End-of-run result summary. */
struct RunStats {
    double avgReadResponseUs = 0.0;
    double avgWriteResponseUs = 0.0;
    double avgResponseUs = 0.0;
    double p99ResponseUs = 0.0;
    double maxResponseUs = 0.0;
    /** Read-latency distribution points (tail-latency reporting). */
    double p50ReadResponseUs = 0.0;
    double p99ReadResponseUs = 0.0;
    double p999ReadResponseUs = 0.0;
    double avgRetrySteps = 0.0;
    /** Read transactions behind avgRetrySteps (host + GC reads). */
    std::uint64_t retrySamples = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t suspensions = 0;
    std::uint64_t gcCollections = 0;
    std::uint64_t timingFallbacks = 0;
    std::uint64_t readFailures = 0;
    /** Read-reclaim rewrites issued (refresh policy, Section 9). */
    std::uint64_t refreshes = 0;
    // ----- array-layout accounting (RAID-5; zero on single drives
    // and RAID-0 arrays) -----
    /** Host reads served through degraded-mode reconstruction. */
    std::uint64_t degradedReads = 0;
    /** Stripe-mate subreads issued to reconstruct failed-drive data
     *  (degraded reads and reconstruct-writes). */
    std::uint64_t reconstructionReads = 0;
    /** Parity-update device writes (they feed wear and GC like any
     *  host write). */
    std::uint64_t parityWrites = 0;
    /** Degraded-read latency distribution points (a per-class view;
     *  degraded reads are also counted in the read histogram). */
    double avgDegradedReadUs = 0.0;
    double p50DegradedReadUs = 0.0;
    double p99DegradedReadUs = 0.0;
    double p999DegradedReadUs = 0.0;
    double simulatedMs = 0.0;
    /** Mean busy fraction of the channel buses over the run. */
    double channelUtilization = 0.0;
    /** Mean busy fraction of the per-channel ECC engines. */
    double eccUtilization = 0.0;
    /** Page-profile cache hits/misses (read-path memoization). */
    std::uint64_t profileCacheHits = 0;
    std::uint64_t profileCacheMisses = 0;
    // ----- host filter chain accounting (host/filter/; zero when
    // the chain is empty) -----
    /** DRAM read-cache hits / misses (requests) and evicted pages. */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEvictions = 0;
    /** Readahead pages prefetched / later consumed by demand reads. */
    std::uint64_t prefetchIssued = 0;
    std::uint64_t prefetchUseful = 0;
    /** Requests split into pieces / merged away by coalescing. */
    std::uint64_t splitRequests = 0;
    std::uint64_t coalescedRequests = 0;
    /** Requests held by a delay filter. */
    std::uint64_t delayedRequests = 0;
    /** Requests that waited for a throttle-filter token. */
    std::uint64_t throttledRequests = 0;
    // ----- fault timeline + host robustness accounting (zero when
    // the scenario declares no faults and no host.timeoutUs) -----
    /** Subrequest deadlines that expired (host.timeoutUs). */
    std::uint64_t hostTimeouts = 0;
    /** Subrequests reissued after a timeout or UECC completion. */
    std::uint64_t hostRetries = 0;
    /** Subrequests converted to a reconstruction join (or absorbed
     *  by redundancy) after retries ran out. */
    std::uint64_t hostFailovers = 0;
    /** Subrequest reads that completed uncorrectable. */
    std::uint64_t ueccReads = 0;
    /** Array requests that completed with CompletionStatus::Failed. */
    std::uint64_t failedRequests = 0;
    /** Rebuild-to-spare reconstruction reads completed. */
    std::uint64_t rebuildReads = 0;
    /** Fraction of the scheduled rebuild region completed (0..1). */
    double rebuildProgress = 0.0;
    /** Wall-clock (simulated) time from failure detection to rebuild
     *  completion, in milliseconds (0 when no rebuild finished). */
    double timeToRebuildMs = 0.0;
    // ----- storage-fabric accounting (fabric/; empty/zero when the
    // scenario declares no fabric and the flat host link is used) -----
    /** Per-link queueing counters, in fabric.links declaration order
     *  (both directions of a link merged). */
    struct FabricLinkStats {
        std::string link;               ///< "a<->b" label
        std::uint64_t messages = 0;     ///< hops carried
        std::uint64_t bytesCarried = 0; ///< payload bytes serialized
        double busyUs = 0.0;            ///< total serialization time
        double waitUs = 0.0;            ///< total FIFO queueing wait
        std::uint32_t maxQueueDepth = 0;
    };
    std::vector<FabricLinkStats> fabricLinks;
    /** Mean fabric FIFO wait charged to each array read (dispatch +
     *  completion hops summed over the read's subrequests). */
    double avgFabricWaitUs = 0.0;
    /** Host-surface read view (above the chain: cache hits included,
     *  prefetches excluded). Zero when the chain is empty. */
    std::uint64_t hostReads = 0;
    double avgHostReadUs = 0.0;
    double p50HostReadUs = 0.0;
    double p99HostReadUs = 0.0;
    double p999HostReadUs = 0.0;
    /**
     * Events executed on the event queue driving this SSD. Drives
     * sharing a queue (legacy host::SsdArray) all report the
     * queue-global count and the array-level stats() reports it
     * once; drives on private queues (sharded array) report their
     * own count and the array sums host + drive queues.
     */
    std::uint64_t executedEvents = 0;
    // ----- parallel-executor accounting (zero on the legacy
    // single-queue engine) -----
    /** Synchronization windows the executor ran. Deterministic:
     *  window placement derives from queue state only. */
    std::uint64_t executorWindowsRun = 0;
    /** Windows fast-forwarded: only one domain had work before the
     *  window end, so it ran inline on the coordinator and the
     *  worker fleet was never engaged. Deterministic, identical for
     *  every worker count. */
    std::uint64_t executorWindowsSkipped = 0;
    /** Condvar parks across workers + coordinator. Timing-dependent
     *  (report-only — never compare across runs or thread counts). */
    std::uint64_t executorParks = 0;
    /** Bounded-spin iterations across workers + coordinator.
     *  Timing-dependent, report-only. */
    std::uint64_t executorSpins = 0;
};

class Ssd
{
  public:
    /** Move-only (SBO): completions fire once per host request on
     *  the simulation hot path. */
    using CompletionFn = sim::InlineFunction<void(const HostCompletion &)>;

    /**
     * Stand-alone SSD owning its event queue. Used for single-drive
     * trace replay and as one drive (= one simulation domain) of a
     * sharded host::SsdArray, whose sim::ParallelExecutor advances
     * the owned queue in synchronization windows. In the sharded
     * case every Ssd method — including the completion hook — runs
     * on whichever worker thread is executing this drive's window;
     * the drive touches no state outside itself, so no locking is
     * needed (the contract the CI tsan job checks).
     */
    Ssd(const Config &cfg, core::Mechanism mech);

    /**
     * SSD driven by an external, shared event queue. Used by the
     * legacy host layer to co-simulate several drives
     * (host::SsdArray) and the host interface on one timeline.
     */
    Ssd(const Config &cfg, core::Mechanism mech, sim::EventQueue &eq);

    const Config &config() const { return cfg_; }
    core::Mechanism mechanism() const { return mech_; }
    sim::EventQueue &eventQueue() { return eq_; }
    const nand::ErrorModel &errorModel() const { return model_; }
    const core::Rpt &rpt() const { return rpt_; }
    ftl::Ftl &ftl() { return ftl_; }

    /**
     * Register the host completion hook. Invoked once per host
     * request, when its last page completes; this is how the host
     * layer observes completions (replacing the internal-only
     * finishHostPage bookkeeping as the notification path).
     */
    void onHostComplete(CompletionFn fn) { on_complete_ = std::move(fn); }

    /**
     * Map every logical page (aged preconditioning). replay() does
     * this lazily; hosts using submit() directly call it up front.
     */
    void precondition();

    /** Submit one request at the current simulated time. */
    void submit(const HostRequest &req);

    /**
     * Replay a whole trace: schedules every record at its arrival
     * time, runs the event loop to completion, and returns the run
     * summary.
     */
    RunStats replay(const workload::Trace &trace);

    /** Drain all outstanding work (after manual submit()s). */
    void drain();

    /** Current aggregated statistics. */
    RunStats stats() const;

    /**
     * Response-time distributions in microseconds. Reads and writes
     * are recorded separately; the all-request view is derived by
     * merging them (no per-sample double-recording).
     */
    sim::Histogram responseTimes() const;
    const sim::Histogram &readResponseTimes() const { return resp_read_; }
    const sim::Histogram &writeResponseTimes() const { return resp_write_; }

    /** Read-path page-profile memoization (hit/miss stats). */
    const nand::PageProfileCache &profileCache() const
    {
        return profile_cache_;
    }

    /** Channel bus @p c (per-channel utilization observability). */
    const Channel &channelAt(std::uint32_t c) const
    {
        return *channels_.at(c);
    }

  private:
    Ssd(const Config &cfg, core::Mechanism mech, sim::EventQueue *shared);

    struct Pending {
        sim::Tick arrival = 0;
        std::uint32_t remaining = 0;
        std::uint32_t pages = 0; ///< original request size
        bool isRead = true;
    };

    void buildReadTxn(ftl::Lpn lpn, std::uint64_t host_id, TxnKind kind,
                      std::uint64_t gc_tag = 0);
    /** Read-reclaim: rewrite @p lpn to reset its retention age. */
    void refreshPage(ftl::Lpn lpn);
    void buildWriteTxn(ftl::Lpn lpn, std::uint64_t host_id,
                       std::uint32_t channel_mask);
    void scheduleGc(std::vector<ftl::GcWork> work);
    void finishHostPage(std::uint64_t host_id);
    Txn txnFor(const ftl::Ppn &ppn);

    Config cfg_;
    core::Mechanism mech_;
    std::unique_ptr<sim::EventQueue> owned_eq_; ///< null when shared
    sim::EventQueue &eq_;
    nand::ErrorModel model_;
    nand::PageProfileCache profile_cache_;
    core::Rpt rpt_;
    core::RetryController rc_;
    ftl::Ftl ftl_;
    std::vector<std::unique_ptr<nand::Chip>> chips_;
    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<std::unique_ptr<ecc::EccEngine>> eccs_;
    std::unique_ptr<Tsu> tsu_;

    std::unordered_map<std::uint64_t, Pending> pending_;
    struct GcState {
        std::uint32_t pendingMoves = 0;
        std::uint32_t plane = 0;
        std::uint32_t block = 0;
    };
    std::unordered_map<std::uint64_t, GcState> gc_;
    std::unordered_map<std::uint64_t, ftl::Ppn> gc_dest_;
    std::uint64_t next_txn_id_ = 1;
    std::uint64_t next_gc_tag_ = 1;
    CompletionFn on_complete_;

    sim::Histogram resp_read_;
    sim::Histogram resp_write_;
    sim::Accumulator retry_steps_;
    std::uint64_t timing_fallbacks_ = 0;
    std::uint64_t read_failures_ = 0;
    std::uint64_t refreshes_ = 0;
    std::uint64_t host_reads_ = 0;
    std::uint64_t host_writes_ = 0;
};

} // namespace ssdrr::ssd

#endif // SSDRR_SSD_SSD_HH

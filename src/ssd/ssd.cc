#include "ssd/ssd.hh"

#include "sim/logging.hh"

namespace ssdrr::ssd {

namespace {

core::Rpt
buildRpt(const nand::ErrorModel &model)
{
    return core::RptBuilder(model).buildDefault();
}

/** The chip calibration, with the SSD's ECC design point applied. */
nand::Calibration
calibrationFor(const Config &cfg)
{
    nand::Calibration cal;
    cal.eccCapability = cfg.eccCapability;
    return cal;
}

} // namespace

Ssd::Ssd(const Config &cfg, core::Mechanism mech)
    : Ssd(cfg, mech, static_cast<sim::EventQueue *>(nullptr))
{
}

Ssd::Ssd(const Config &cfg, core::Mechanism mech, sim::EventQueue &eq)
    : Ssd(cfg, mech, &eq)
{
}

Ssd::Ssd(const Config &cfg, core::Mechanism mech, sim::EventQueue *shared)
    : cfg_(cfg), mech_(mech),
      owned_eq_(shared ? nullptr : std::make_unique<sim::EventQueue>()),
      eq_(shared ? *shared : *owned_eq_),
      model_(calibrationFor(cfg), cfg.seed),
      profile_cache_(model_, cfg.profileCacheSlots), rpt_(buildRpt(model_)),
      rc_(mech, cfg.timing, model_, &rpt_),
      ftl_(cfg.layout(), cfg.logicalPages(), cfg.basePeKilo,
           cfg.baseRetentionMonths, cfg.gcThreshold)
{
    cfg_.validate();
    for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
        chips_.push_back(std::make_unique<nand::Chip>(
            eq_, cfg_.chipGeometry(), cfg_.timing, c));
        channels_.push_back(std::make_unique<Channel>(c));
        eccs_.push_back(std::make_unique<ecc::EccEngine>(
            cfg_.timing.tECC, cfg_.eccCapability));
    }

    std::vector<nand::Chip *> chip_ptrs;
    std::vector<Channel *> ch_ptrs;
    std::vector<ecc::EccEngine *> ecc_ptrs;
    for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
        chip_ptrs.push_back(chips_[c].get());
        ch_ptrs.push_back(channels_[c].get());
        ecc_ptrs.push_back(eccs_[c].get());
    }
    tsu_ = std::make_unique<Tsu>(eq_, cfg_, std::move(chip_ptrs),
                                 std::move(ch_ptrs), std::move(ecc_ptrs),
                                 rc_);

    tsu_->onReadDone([this](const Txn &txn, const core::ReadPlan &plan) {
        retry_steps_.add(plan.retrySteps);
        if (plan.timingFallback)
            ++timing_fallbacks_;
        if (!plan.success)
            ++read_failures_;
        if (txn.kind == TxnKind::HostRead) {
            finishHostPage(txn.hostId);
            if (cfg_.refreshThresholdMonths > 0.0 &&
                txn.op.retentionMonths >= cfg_.refreshThresholdMonths)
                refreshPage(txn.lpn);
        } else if (txn.kind == TxnKind::GcRead) {
            // Relocation: program the moved page at its destination.
            auto it = gc_dest_.find(txn.id);
            SSDRR_ASSERT(it != gc_dest_.end(), "orphan GC read");
            const ftl::Ppn dest = it->second;
            gc_dest_.erase(it);
            Txn wr = txnFor(dest);
            wr.kind = TxnKind::GcWrite;
            wr.id = next_txn_id_++;
            wr.lpn = txn.lpn;
            wr.gcTag = txn.gcTag;
            tsu_->enqueue(std::move(wr));
        }
    });

    tsu_->onWriteDone([this](const Txn &txn) {
        if (txn.kind == TxnKind::HostWrite) {
            finishHostPage(txn.hostId);
        } else if (txn.kind == TxnKind::GcWrite) {
            auto it = gc_.find(txn.gcTag);
            SSDRR_ASSERT(it != gc_.end(), "orphan GC write");
            if (--it->second.pendingMoves == 0) {
                // All relocations done: erase the victim block.
                Txn er;
                er.kind = TxnKind::Erase;
                er.id = next_txn_id_++;
                er.ppn = ftl::Ppn{it->second.plane, it->second.block, 0};
                er.channel = ftl_.layout().channelOf(er.ppn);
                er.dieGlobal = ftl_.layout().dieOf(er.ppn);
                gc_.erase(it);
                tsu_->enqueue(std::move(er));
            }
        }
    });

    tsu_->onEraseDone([this](const Txn &txn) {
        // FTL metadata was updated eagerly at GC-planning time; the
        // erase transaction models only the tBERS occupancy. Drop the
        // erased block's cached page profiles — correctness rides on
        // the cache's operating-point comparison either way, but a
        // freed block should not pin dead entries.
        profile_cache_.invalidateBlock(txn.channel,
                                       ftl_.layout().flatBlock(txn.ppn));
    });
}

Txn
Ssd::txnFor(const ftl::Ppn &ppn)
{
    Txn t;
    t.ppn = ppn;
    t.channel = ftl_.layout().channelOf(ppn);
    t.dieGlobal = ftl_.layout().dieOf(ppn);
    t.type = nand::pageTypeOf(ppn.page);
    return t;
}

void
Ssd::buildReadTxn(ftl::Lpn lpn, std::uint64_t host_id, TxnKind kind,
                  std::uint64_t gc_tag)
{
    const ftl::Ppn ppn = ftl_.translate(lpn);
    Txn t = txnFor(ppn);
    t.kind = kind;
    t.id = next_txn_id_++;
    t.hostId = host_id;
    t.gcTag = gc_tag;
    t.lpn = lpn;
    t.op = ftl_.opPoint(ppn, eq_.now(), cfg_.temperatureC);
    t.profile = profile_cache_.get(t.channel,
                                   ftl_.layout().flatBlock(ppn),
                                   ppn.page, t.op);
    tsu_->enqueue(std::move(t));
}

void
Ssd::buildWriteTxn(ftl::Lpn lpn, std::uint64_t host_id,
                   std::uint32_t channel_mask)
{
    ftl::WriteAlloc alloc = ftl_.hostWrite(lpn, eq_.now(), channel_mask);
    Txn t = txnFor(alloc.ppn);
    t.kind = TxnKind::HostWrite;
    t.id = next_txn_id_++;
    t.hostId = host_id;
    t.lpn = lpn;
    tsu_->enqueue(std::move(t));
    if (!alloc.gc.empty())
        scheduleGc(std::move(alloc.gc));
}

void
Ssd::refreshPage(ftl::Lpn lpn)
{
    // Read-reclaim (Section 9 [14, 15, 28]): rewrite the just-read
    // cold page so its retention age restarts. The rewrite is an
    // internal write transaction (no host request attached) and may
    // trigger GC like any other write.
    ++refreshes_;
    ftl::WriteAlloc alloc = ftl_.hostWrite(lpn, eq_.now());
    Txn t = txnFor(alloc.ppn);
    t.kind = TxnKind::HostWrite;
    t.id = next_txn_id_++;
    t.hostId = kNoHost;
    t.lpn = lpn;
    tsu_->enqueue(std::move(t));
    if (!alloc.gc.empty())
        scheduleGc(std::move(alloc.gc));
}

void
Ssd::scheduleGc(std::vector<ftl::GcWork> work)
{
    for (auto &w : work) {
        const std::uint64_t tag = next_gc_tag_++;
        if (w.moves.empty()) {
            // Victim had no valid pages: erase directly.
            Txn er;
            er.kind = TxnKind::Erase;
            er.id = next_txn_id_++;
            er.ppn = ftl::Ppn{w.plane, w.victimBlock, 0};
            er.channel = ftl_.layout().channelOf(er.ppn);
            er.dieGlobal = ftl_.layout().dieOf(er.ppn);
            tsu_->enqueue(std::move(er));
            continue;
        }
        gc_[tag] = GcState{static_cast<std::uint32_t>(w.moves.size()),
                           w.plane, w.victimBlock};
        for (const ftl::GcMove &m : w.moves) {
            // Read the old copy (with retry!), then program the new.
            Txn rd = txnFor(m.from);
            rd.kind = TxnKind::GcRead;
            rd.id = next_txn_id_++;
            rd.lpn = m.lpn;
            rd.gcTag = tag;
            rd.op = ftl_.opPoint(m.from, eq_.now(), cfg_.temperatureC);
            // The victim page keeps its pre-move age: GC reads of
            // cold data pay the full retry cost.
            rd.profile = profile_cache_.get(
                rd.channel, ftl_.layout().flatBlock(m.from), m.from.page,
                rd.op);
            gc_dest_[rd.id] = m.to;
            tsu_->enqueue(std::move(rd));
        }
    }
}

void
Ssd::finishHostPage(std::uint64_t host_id)
{
    if (host_id == kNoHost)
        return;
    auto it = pending_.find(host_id);
    SSDRR_ASSERT(it != pending_.end(), "unknown host request ", host_id);
    Pending &p = it->second;
    SSDRR_ASSERT(p.remaining > 0, "request already complete");
    if (--p.remaining > 0)
        return;
    const double resp_us = sim::toUsec(eq_.now() - p.arrival);
    // Reads and writes record once each; the all-request view is a
    // histogram merge at reporting time.
    if (p.isRead) {
        resp_read_.add(resp_us);
        ++host_reads_;
    } else {
        resp_write_.add(resp_us);
        ++host_writes_;
    }
    const HostCompletion done{host_id, p.arrival, eq_.now(), p.isRead,
                              resp_us, p.pages};
    pending_.erase(it);
    if (on_complete_)
        on_complete_(done);
}

void
Ssd::submit(const HostRequest &req)
{
    SSDRR_ASSERT(req.pages > 0, "empty request");
    SSDRR_ASSERT(req.lpn + req.pages <= ftl_.logicalPages(),
                 "request beyond logical capacity: lpn=", req.lpn,
                 " pages=", req.pages);
    pending_[req.id] =
        Pending{req.arrival, req.pages, req.pages, req.isRead};
    for (std::uint32_t i = 0; i < req.pages; ++i) {
        if (req.isRead)
            buildReadTxn(req.lpn + i, req.id, TxnKind::HostRead);
        else
            buildWriteTxn(req.lpn + i, req.id, req.channelMask);
    }
}

void
Ssd::drain()
{
    eq_.run();
    SSDRR_ASSERT(pending_.empty(), "drained with ", pending_.size(),
                 " requests still pending");
}

void
Ssd::precondition()
{
    if (ftl_.map().mappedCount() == 0)
        ftl_.precondition();
}

RunStats
Ssd::replay(const workload::Trace &trace)
{
    precondition();

    // Rebase arrivals to the current simulated time so a second
    // replay on a warmed-up SSD continues instead of scheduling into
    // the past.
    const sim::Tick base = eq_.now();
    std::uint64_t next_id = 1;
    const auto &records = trace.records();
    // Runs of records sharing an arrival tick (bursty traces, fused
    // multi-stream captures) become one batched heap event; grouping
    // only *consecutive* records preserves the per-tick submit order
    // of an out-of-order trace, since a later run at the same tick
    // still carries a later sequence number.
    std::vector<sim::InlineCallback> burst;
    for (std::size_t i = 0; i < records.size();) {
        const sim::Tick when = base + records[i].arrival;
        std::size_t j = i;
        do {
            const auto &rec = records[j];
            HostRequest req;
            req.id = next_id++;
            req.arrival = when;
            req.lpn = rec.lpn;
            req.pages = rec.pages;
            req.isRead = rec.isRead;
            SSDRR_ASSERT(req.lpn + req.pages <= ftl_.logicalPages(),
                         "trace touches LPNs beyond the SSD capacity");
            burst.emplace_back([this, req] { submit(req); });
            ++j;
        } while (j < records.size() &&
                 base + records[j].arrival == when);
        eq_.scheduleBatch(when, std::move(burst));
        burst.clear();
        i = j;
    }
    drain();
    return stats();
}

sim::Histogram
Ssd::responseTimes() const
{
    sim::Histogram all = resp_read_;
    all.merge(resp_write_);
    return all;
}

RunStats
Ssd::stats() const
{
    RunStats s;
    const sim::Histogram resp_all = responseTimes();
    s.avgReadResponseUs = resp_read_.mean();
    s.avgWriteResponseUs = resp_write_.mean();
    s.avgResponseUs = resp_all.mean();
    s.p99ResponseUs = resp_all.count() ? resp_all.percentile(99.0) : 0.0;
    s.maxResponseUs = resp_all.count() ? resp_all.max() : 0.0;
    if (resp_read_.count()) {
        s.p50ReadResponseUs = resp_read_.percentile(50.0);
        s.p99ReadResponseUs = resp_read_.percentile(99.0);
        s.p999ReadResponseUs = resp_read_.percentile(99.9);
    }
    s.avgRetrySteps = retry_steps_.mean();
    s.retrySamples = retry_steps_.count();
    s.reads = host_reads_;
    s.writes = host_writes_;
    std::uint64_t sus = 0;
    for (const auto &c : chips_)
        sus += c->suspendCount();
    s.suspensions = sus;
    s.gcCollections = ftl_.gcCollections();
    s.timingFallbacks = timing_fallbacks_;
    s.readFailures = read_failures_;
    s.refreshes = refreshes_;
    s.profileCacheHits = profile_cache_.hits();
    s.profileCacheMisses = profile_cache_.misses();
    s.executedEvents = eq_.executedEvents();
    s.simulatedMs = sim::toMsec(eq_.now());
    if (eq_.now() > 0) {
        sim::Tick ch_busy = 0, ecc_busy = 0;
        for (const auto &c : channels_)
            ch_busy += c->totalBusy();
        for (const auto &e : eccs_)
            ecc_busy += e->totalBusy();
        const double span = static_cast<double>(eq_.now()) *
                            static_cast<double>(channels_.size());
        s.channelUtilization = static_cast<double>(ch_busy) / span;
        s.eccUtilization = static_cast<double>(ecc_busy) / span;
    }
    return s;
}

} // namespace ssdrr::ssd

#include "ssd/tsu.hh"

#include "sim/logging.hh"

namespace ssdrr::ssd {

Tsu::Tsu(sim::EventQueue &eq, const Config &cfg,
         std::vector<nand::Chip *> chips, std::vector<Channel *> channels,
         std::vector<ecc::EccEngine *> eccs,
         const core::RetryController &rc)
    : eq_(eq), cfg_(cfg), chips_(std::move(chips)),
      channels_(std::move(channels)), eccs_(std::move(eccs)), rc_(rc),
      dies_(cfg.totalDies())
{
    SSDRR_ASSERT(chips_.size() == cfg_.channels, "one chip per channel");
    SSDRR_ASSERT(channels_.size() == cfg_.channels, "channel count");
    SSDRR_ASSERT(eccs_.size() == cfg_.channels, "one ECC per channel");
}

nand::Chip &
Tsu::chipOf(std::uint32_t die_global)
{
    return *chips_[die_global / cfg_.diesPerChannel];
}

std::uint32_t
Tsu::dieLocal(std::uint32_t die_global) const
{
    return die_global % cfg_.diesPerChannel;
}

std::size_t
Tsu::backlog() const
{
    std::size_t n = 0;
    for (const auto &d : dies_)
        n += d.reads.size() + d.writes.size() + d.erases.size();
    return n;
}

std::uint32_t
Tsu::poolAcquire(Txn txn)
{
    std::uint32_t idx;
    if (!pool_free_.empty()) {
        idx = pool_free_.back();
        pool_free_.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(pool_.size());
        pool_.emplace_back();
    }
    pool_[idx].txn = std::move(txn);
    return idx;
}

void
Tsu::enqueue(Txn txn)
{
    SSDRR_ASSERT(txn.dieGlobal < dies_.size(), "die out of range");
    const std::uint32_t g = txn.dieGlobal;
    DieQueue &q = dies_[g];
    switch (txn.kind) {
      case TxnKind::HostRead:
        // Host reads jump ahead of GC reads (out-of-order read
        // priority, [36, 86]).
        q.reads.push_back(std::move(txn));
        break;
      case TxnKind::GcRead:
        q.reads.push_back(std::move(txn));
        break;
      case TxnKind::HostWrite:
      case TxnKind::GcWrite:
        q.writes.push_back(std::move(txn));
        break;
      case TxnKind::Erase:
        q.erases.push_back(std::move(txn));
        break;
    }
    dispatch(g);
}

void
Tsu::dispatch(std::uint32_t g)
{
    DieQueue &q = dies_[g];
    nand::Chip &chip = chipOf(g);
    const std::uint32_t die = dieLocal(g);

    if (q.busy) {
        // Suspension: a waiting read may preempt an in-flight
        // program/erase on this die.
        if (cfg_.suspension && !q.reads.empty() &&
            (chip.dieOp(die) == nand::DieOp::Program ||
             chip.dieOp(die) == nand::DieOp::Erase) &&
            !chip.hasSuspended(die)) {
            chip.suspend(die);
            Txn txn = std::move(q.reads.front());
            q.reads.pop_front();
            execRead(g, std::move(txn));
        }
        return;
    }

    if (!q.reads.empty()) {
        Txn txn = std::move(q.reads.front());
        q.reads.pop_front();
        q.busy = true;
        execRead(g, std::move(txn));
    } else if (!q.writes.empty()) {
        Txn txn = std::move(q.writes.front());
        q.writes.pop_front();
        q.busy = true;
        execWrite(g, std::move(txn));
    } else if (!q.erases.empty()) {
        Txn txn = std::move(q.erases.front());
        q.erases.pop_front();
        q.busy = true;
        execErase(g, std::move(txn));
    } else if (chip.hasSuspended(die)) {
        // Nothing pending: resume the suspended program/erase.
        q.busy = true;
        chip.resume(die, eq_.now());
    }
}

void
Tsu::execRead(std::uint32_t g, Txn txn)
{
    ++reads_;
    nand::Chip &chip = chipOf(g);
    const std::uint32_t die = dieLocal(g);
    Channel &ch = *channels_[txn.channel];
    ecc::EccEngine &ecc = *eccs_[txn.channel];

    // Completed traffic can no longer conflict with new reservations;
    // dropping it keeps the timelines small over long runs.
    ch.releaseBefore(eq_.now());
    ecc.releaseBefore(eq_.now());

    const core::ReadPlan plan =
        rc_.planRead(eq_.now(), txn.type, txn.profile, txn.op, ch, ecc);

    const std::uint32_t idx = poolAcquire(std::move(txn));
    pool_[idx].plan = plan;

    if (plan.dieEnd == plan.completion) {
        // Die release and host-visible completion land on the same
        // tick (pipelined plans whose last transfer hides inside the
        // die window): one batched heap event instead of two, in the
        // same order the two schedules would have run.
        std::vector<sim::InlineCallback> batch;
        batch.reserve(2);
        batch.push_back(
            chip.occupyReadDeferred(die, plan.dieEnd,
                                    [this, g] { dieFreed(g); }));
        batch.emplace_back([this, idx] { finishRead(idx); });
        eq_.scheduleBatch(plan.completion, std::move(batch));
    } else {
        chip.occupyRead(die, plan.dieEnd, [this, g] { dieFreed(g); });
        eq_.schedule(plan.completion, [this, idx] { finishRead(idx); });
    }
}

void
Tsu::finishRead(std::uint32_t idx)
{
    // Move out of the pool before running the hook: the hook may
    // enqueue follow-up transactions (GC writes, refreshes) that
    // acquire pool slots and could reallocate the pool under a
    // reference into it.
    Inflight done = std::move(pool_[idx]);
    pool_free_.push_back(idx);
    if (read_done_)
        read_done_(done.txn, done.plan);
}

void
Tsu::execWrite(std::uint32_t g, Txn txn)
{
    ++writes_;
    Channel &ch = *channels_[txn.channel];
    // Data-in transfer over the channel, then the program pulse.
    const sim::Tick dma_start = ch.acquire(eq_.now(), cfg_.timing.tDMA);
    const sim::Tick dma_end = dma_start + cfg_.timing.tDMA;
    const std::uint32_t idx = poolAcquire(std::move(txn));
    eq_.schedule(dma_end, [this, g, idx] { startProgram(g, idx); });
}

void
Tsu::startProgram(std::uint32_t g, std::uint32_t idx)
{
    nand::Chip &chip = chipOf(g);
    const std::uint32_t die = dieLocal(g);
    chip.beginProgram(die, [this, g, idx] { finishWrite(g, idx); });
}

void
Tsu::finishWrite(std::uint32_t g, std::uint32_t idx)
{
    Inflight done = std::move(pool_[idx]);
    pool_free_.push_back(idx);
    dies_[g].busy = false;
    if (write_done_)
        write_done_(done.txn);
    dispatch(g);
}

void
Tsu::execErase(std::uint32_t g, Txn txn)
{
    ++erases_;
    nand::Chip &chip = chipOf(g);
    const std::uint32_t die = dieLocal(g);
    const std::uint32_t idx = poolAcquire(std::move(txn));
    chip.beginErase(die, [this, g, idx] { finishErase(g, idx); });
}

void
Tsu::finishErase(std::uint32_t g, std::uint32_t idx)
{
    Inflight done = std::move(pool_[idx]);
    pool_free_.push_back(idx);
    dies_[g].busy = false;
    if (erase_done_)
        erase_done_(done.txn);
    dispatch(g);
}

void
Tsu::dieFreed(std::uint32_t g)
{
    // A read's die window ended. If more reads wait, run them;
    // otherwise resume any suspended program/erase; otherwise the
    // die goes idle.
    dies_[g].busy = false;
    dispatch(g);
}

} // namespace ssdrr::ssd

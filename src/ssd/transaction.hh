/**
 * @file
 * SSD-internal transaction types scheduled by the TSU.
 */

#ifndef SSDRR_SSD_TRANSACTION_HH
#define SSDRR_SSD_TRANSACTION_HH

#include <cstdint>
#include <limits>

#include "ftl/address.hh"
#include "nand/error_model.hh"
#include "nand/types.hh"

namespace ssdrr::ssd {

constexpr std::uint64_t kNoHost = std::numeric_limits<std::uint64_t>::max();

enum class TxnKind : std::uint8_t {
    HostRead,
    HostWrite,
    GcRead,
    GcWrite,
    Erase,
};

constexpr bool
isRead(TxnKind k)
{
    return k == TxnKind::HostRead || k == TxnKind::GcRead;
}

constexpr bool
isWrite(TxnKind k)
{
    return k == TxnKind::HostWrite || k == TxnKind::GcWrite;
}

struct Txn {
    TxnKind kind = TxnKind::HostRead;
    std::uint64_t id = 0;
    std::uint64_t hostId = kNoHost; ///< owning host request, if any
    std::uint64_t gcTag = 0;        ///< links GC moves to their erase
    ftl::Lpn lpn = ftl::kInvalidLpn;
    ftl::Ppn ppn;
    std::uint32_t channel = 0;
    std::uint32_t dieGlobal = 0; ///< channel * diesPerChannel + die
    nand::PageType type = nand::PageType::LSB;
    nand::OperatingPoint op;        ///< reads only
    nand::PageErrorProfile profile; ///< reads only
};

} // namespace ssdrr::ssd

#endif // SSDRR_SSD_TRANSACTION_HH

/**
 * @file
 * Channel bus model with gap-filling reserve-ahead semantics.
 *
 * A channel carries command/data traffic between the controller and
 * its chips at 1 Gb/s (tDMA = 16 us per 16-KiB page, Table 1). A
 * transaction reserves the first window at-or-after its data is
 * ready; the underlying ReservationTimeline interleaves independent
 * transfers into the gaps between one retry plan's own bursts, which
 * approximates a work-conserving bus arbiter.
 */

#ifndef SSDRR_SSD_CHANNEL_HH
#define SSDRR_SSD_CHANNEL_HH

#include "sim/reservation.hh"
#include "sim/types.hh"

namespace ssdrr::ssd {

class Channel
{
  public:
    explicit Channel(std::uint32_t id = 0) : id_(id) {}

    std::uint32_t id() const { return id_; }

    /**
     * Reserve the bus for @p dur starting no earlier than
     * @p earliest. @return granted start tick.
     */
    sim::Tick
    acquire(sim::Tick earliest, sim::Tick dur)
    {
        return timeline_.acquire(earliest, dur);
    }

    /** End of the last reservation made so far. */
    sim::Tick busyUntil() const { return timeline_.horizon(); }

    /** Accumulated busy time (utilization stat). */
    sim::Tick totalBusy() const { return timeline_.totalBusy(); }

    /** Number of grants issued. */
    std::uint64_t grants() const { return timeline_.grants(); }

    /** Forget reservations that ended before @p now. */
    void releaseBefore(sim::Tick now) { timeline_.releaseBefore(now); }

  private:
    std::uint32_t id_;
    sim::ReservationTimeline timeline_;
};

} // namespace ssdrr::ssd

#endif // SSDRR_SSD_CHANNEL_HH

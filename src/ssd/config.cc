#include "ssd/config.hh"

#include "sim/logging.hh"

namespace ssdrr::ssd {

Config
Config::small()
{
    Config c;
    c.blocksPerPlane = 64;
    return c;
}

ftl::AddressLayout
Config::layout() const
{
    ftl::AddressLayout l;
    l.channels = channels;
    l.diesPerChannel = diesPerChannel;
    l.planesPerDie = planesPerDie;
    l.blocksPerPlane = blocksPerPlane;
    l.pagesPerBlock = pagesPerBlock;
    return l;
}

nand::Geometry
Config::chipGeometry() const
{
    nand::Geometry g;
    g.dies = diesPerChannel;
    g.planesPerDie = planesPerDie;
    g.blocksPerPlane = blocksPerPlane;
    g.pagesPerBlock = pagesPerBlock;
    g.pageBytes = pageBytes;
    return g;
}

std::uint64_t
Config::totalPages() const
{
    return layout().totalPages();
}

std::uint64_t
Config::logicalPages() const
{
    return static_cast<std::uint64_t>(
        static_cast<double>(totalPages()) * userFraction);
}

void
Config::validate() const
{
    SSDRR_ASSERT(channels > 0 && diesPerChannel > 0 && planesPerDie > 0,
                 "degenerate geometry");
    SSDRR_ASSERT(blocksPerPlane > gcThreshold + 2,
                 "too few blocks per plane for GC headroom");
    SSDRR_ASSERT(userFraction > 0.0 && userFraction < 0.97,
                 "userFraction must leave over-provisioning, got ",
                 userFraction);
    SSDRR_ASSERT(eccCapability > 0.0, "ECC capability must be positive");
}

} // namespace ssdrr::ssd

/**
 * @file
 * SSD configuration (paper Section 7.1).
 *
 * The paper simulates a 512-GiB SSD: 4 channels, 4 dies/channel,
 * 2 planes/die, 1,888 blocks/plane, 576 pages/block, 16-KiB pages,
 * with Table 1 timing, a 72 b / 1 KiB ECC engine (tECC = 20 us) and
 * a 1 Gb/s channel (tDMA = 16 us).
 */

#ifndef SSDRR_SSD_CONFIG_HH
#define SSDRR_SSD_CONFIG_HH

#include <cstdint>

#include "ftl/address.hh"
#include "nand/timing.hh"
#include "nand/types.hh"

namespace ssdrr::ssd {

struct Config {
    std::uint32_t channels = 4;
    std::uint32_t diesPerChannel = 4;
    std::uint32_t planesPerDie = 2;
    std::uint32_t blocksPerPlane = 1888;
    std::uint32_t pagesPerBlock = 576;
    std::uint32_t pageBytes = 16 * 1024;

    nand::TimingParams timing;

    /** Correctable errors per 1-KiB codeword. */
    double eccCapability = 72.0;

    /** Ambient temperature at which the SSD operates. */
    double temperatureC = 30.0;

    /** Preconditioned wear in kilo-P/E-cycles (evaluation knob). */
    double basePeKilo = 0.0;
    /** Preconditioned retention age in months (evaluation knob). */
    double baseRetentionMonths = 0.0;

    /** Fraction of physical pages exported as logical capacity. */
    double userFraction = 0.88;
    /** Free blocks per plane below which GC kicks in. */
    std::size_t gcThreshold = 4;
    /** Program/erase suspension for reads (Baseline feature [50,91]). */
    bool suspension = true;

    /**
     * Read-reclaim refresh threshold in months (0 = off): after a
     * host read of a page whose retention age is at or above the
     * threshold, the controller rewrites the page to reset its
     * retention age. Models the refresh-based read-retry mitigation
     * the paper compares against in Section 9 [14, 15, 28]; it
     * trades write bandwidth and wear for fewer retry steps.
     */
    double refreshThresholdMonths = 0.0;

    /**
     * Page-profile cache slots (rounded up to a power of two; 0
     * disables caching). Memoizes ErrorModel::pageProfile on the
     * read path; results are bit-identical with the cache on or off.
     */
    std::size_t profileCacheSlots = 1 << 14;

    std::uint64_t seed = 42;

    /** Full-size configuration from the paper. */
    static Config paper() { return Config{}; }

    /**
     * Down-scaled SSD (same channel/die/plane parallelism, fewer
     * blocks) for fast tests and benches; logical working sets scale
     * with it.
     */
    static Config small();

    ftl::AddressLayout layout() const;
    nand::Geometry chipGeometry() const;
    std::uint64_t totalPages() const;
    std::uint64_t logicalPages() const;
    std::uint32_t totalDies() const { return channels * diesPerChannel; }

    void validate() const;
};

} // namespace ssdrr::ssd

#endif // SSDRR_SSD_CONFIG_HH

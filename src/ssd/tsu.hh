/**
 * @file
 * Transaction Scheduling Unit (TSU).
 *
 * Out-of-order scheduler in the style of high-end SSD controllers
 * (paper Section 7.2 Baseline, [36, 86]): per-die queues with read
 * priority over writes and erases, plus program/erase suspension
 * ([50, 91]) so a queued read can preempt an in-flight program or
 * erase on its die.
 *
 * In-flight transactions are parked in a free-listed pool and
 * referenced from event callbacks by index, so the callbacks capture
 * {this, index} — a handful of bytes that fit the event queue's
 * inline callback buffer — instead of dragging a full Txn through
 * the scheduler's heap.
 */

#ifndef SSDRR_SSD_TSU_HH
#define SSDRR_SSD_TSU_HH

#include <deque>
#include <vector>

#include "core/retry_controller.hh"
#include "ecc/engine.hh"
#include "nand/chip.hh"
#include "sim/callback.hh"
#include "ssd/channel.hh"
#include "ssd/config.hh"
#include "ssd/transaction.hh"

namespace ssdrr::ssd {

class Tsu
{
  public:
    /** Called when a read's data is available (with its plan). */
    using ReadDone =
        sim::InlineFunction<void(const Txn &, const core::ReadPlan &)>;
    /** Called when a program or erase completes. */
    using TxnDone = sim::InlineFunction<void(const Txn &)>;

    Tsu(sim::EventQueue &eq, const Config &cfg,
        std::vector<nand::Chip *> chips, std::vector<Channel *> channels,
        std::vector<ecc::EccEngine *> eccs,
        const core::RetryController &rc);

    void onReadDone(ReadDone cb) { read_done_ = std::move(cb); }
    void onWriteDone(TxnDone cb) { write_done_ = std::move(cb); }
    void onEraseDone(TxnDone cb) { erase_done_ = std::move(cb); }

    /** Queue a transaction and try to dispatch its die. */
    void enqueue(Txn txn);

    /** Sum of queued (not yet dispatched) transactions. */
    std::size_t backlog() const;

    std::uint64_t dispatchedReads() const { return reads_; }
    std::uint64_t dispatchedWrites() const { return writes_; }
    std::uint64_t dispatchedErases() const { return erases_; }

  private:
    struct DieQueue {
        std::deque<Txn> reads;
        std::deque<Txn> writes;
        std::deque<Txn> erases;
        bool busy = false;
    };

    /** One pooled in-flight transaction (plan meaningful for reads). */
    struct Inflight {
        Txn txn;
        core::ReadPlan plan;
    };

    nand::Chip &chipOf(std::uint32_t die_global);
    std::uint32_t dieLocal(std::uint32_t die_global) const;

    std::uint32_t poolAcquire(Txn txn);
    void dispatch(std::uint32_t die_global);
    void execRead(std::uint32_t die_global, Txn txn);
    void execWrite(std::uint32_t die_global, Txn txn);
    void execErase(std::uint32_t die_global, Txn txn);
    void finishRead(std::uint32_t idx);
    void finishWrite(std::uint32_t die_global, std::uint32_t idx);
    void finishErase(std::uint32_t die_global, std::uint32_t idx);
    void startProgram(std::uint32_t die_global, std::uint32_t idx);
    void dieFreed(std::uint32_t die_global);

    sim::EventQueue &eq_;
    Config cfg_;
    std::vector<nand::Chip *> chips_;
    std::vector<Channel *> channels_;
    std::vector<ecc::EccEngine *> eccs_;
    const core::RetryController &rc_;

    std::vector<DieQueue> dies_;
    std::vector<Inflight> pool_;
    std::vector<std::uint32_t> pool_free_;
    ReadDone read_done_;
    TxnDone write_done_;
    TxnDone erase_done_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t erases_ = 0;
};

} // namespace ssdrr::ssd

#endif // SSDRR_SSD_TSU_HH

#!/usr/bin/env python3
"""Fail on dead relative links in Markdown files.

Usage: check_doc_links.py FILE_OR_DIR [FILE_OR_DIR ...]

Checks every ``[text](target)`` link in the given Markdown files (and
in ``*.md`` under given directories, recursively):

- ``http(s)://`` / ``mailto:`` targets are skipped (no network in CI);
- relative targets must exist on disk, resolved against the file that
  contains the link;
- ``#fragment`` anchors are checked against the target file's
  headings (GitHub slug rules: lowercase, spaces to dashes,
  punctuation dropped), including pure in-page ``(#...)`` anchors.

Exit status: 0 when every link resolves, 1 otherwise (each dead link
is listed with file and reason). Standard library only.
"""

import functools
import os
import re
import sys

# [text](target) — skipping images is unnecessary: their paths must
# exist too. Ignores fenced code blocks.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    h = re.sub(r"[`*_]", "", heading.strip().lower())
    h = re.sub(r"[^\w\- ]", "", h)
    return h.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def headings_of(path: str) -> frozenset:
    slugs = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                slugs.add(slugify(m.group(1)))
    return frozenset(slugs)


def links_of(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def check_file(path: str) -> list:
    errors = []
    for lineno, target in links_of(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            dest = os.path.normpath(
                os.path.join(os.path.dirname(path), base))
            if not os.path.exists(dest):
                errors.append(
                    f"{path}:{lineno}: dead link '{target}' "
                    f"({dest} does not exist)")
                continue
        else:
            dest = path  # pure in-page anchor
        if fragment and dest.endswith(".md"):
            if slugify(fragment) not in headings_of(dest):
                errors.append(
                    f"{path}:{lineno}: dead anchor '{target}' "
                    f"(no heading '#{fragment}' in {dest})")
    return errors


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        if os.path.isdir(arg):
            for root, _, names in os.walk(arg):
                files += [os.path.join(root, n) for n in sorted(names)
                          if n.endswith(".md")]
        else:
            files.append(arg)
    errors = []
    for f in files:
        errors += check_file(f)
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'FAIL' if errors else 'all links resolve'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

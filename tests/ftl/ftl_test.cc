/**
 * @file
 * Tests for the FTL facade: preconditioning, translation, host
 * writes, garbage collection and operating-point derivation.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "ftl/ftl.hh"

namespace ssdrr::ftl {
namespace {

AddressLayout
smallLayout()
{
    AddressLayout l;
    l.channels = 2;
    l.diesPerChannel = 2;
    l.planesPerDie = 2;
    l.blocksPerPlane = 12;
    l.pagesPerBlock = 8;
    return l;
}

/** Logical capacity leaving (gcThreshold + 2) blocks OP per plane. */
std::uint64_t
logicalFor(const AddressLayout &l, std::size_t gc_threshold)
{
    return l.totalPages() -
           l.totalPlanes() * (gc_threshold + 2) * l.pagesPerBlock;
}

TEST(Ftl, PreconditionMapsEveryLogicalPage)
{
    const AddressLayout l = smallLayout();
    const std::uint64_t lp = logicalFor(l, 2);
    Ftl ftl(l, lp, 1.0, 6.0, 2);
    ftl.precondition();
    EXPECT_EQ(ftl.map().mappedCount(), lp);

    // Every mapping resolves and is unique.
    std::set<std::uint64_t> seen;
    for (Lpn lpn = 0; lpn < lp; ++lpn) {
        const Ppn p = ftl.translate(lpn);
        EXPECT_TRUE(seen.insert(l.flatPage(p)).second) << "lpn " << lpn;
    }
}

TEST(Ftl, PreconditionStripesAcrossPlanes)
{
    const AddressLayout l = smallLayout();
    Ftl ftl(l, logicalFor(l, 2), 0.0, 0.0, 2);
    ftl.precondition();
    // Consecutive LPNs land on consecutive planes (die parallelism).
    const Ppn p0 = ftl.translate(0);
    const Ppn p1 = ftl.translate(1);
    EXPECT_NE(p0.plane, p1.plane);
    EXPECT_EQ(ftl.translate(l.totalPlanes()).plane, p0.plane)
        << "stripe wraps around after totalPlanes pages";
}

TEST(Ftl, DoublePreconditionPanics)
{
    const AddressLayout l = smallLayout();
    Ftl ftl(l, logicalFor(l, 2), 0.0, 0.0, 2);
    ftl.precondition();
    EXPECT_THROW(ftl.precondition(), std::logic_error);
}

TEST(Ftl, TranslateUnmappedPanics)
{
    const AddressLayout l = smallLayout();
    Ftl ftl(l, logicalFor(l, 2), 0.0, 0.0, 2);
    EXPECT_THROW(ftl.translate(0), std::logic_error);
}

TEST(Ftl, HostWriteRemapsAndInvalidatesOld)
{
    const AddressLayout l = smallLayout();
    Ftl ftl(l, logicalFor(l, 2), 0.0, 6.0, 2);
    ftl.precondition();
    const Ppn old = ftl.translate(5);
    const WriteAlloc wa = ftl.hostWrite(5, sim::usec(10));
    EXPECT_FALSE(ftl.blocks().isValid(old)) << "old copy dead";
    EXPECT_TRUE(ftl.blocks().isValid(wa.ppn));
    const Ppn now = ftl.translate(5);
    EXPECT_TRUE(now == wa.ppn);
    EXPECT_EQ(ftl.blocks().lpnOf(wa.ppn), 5u);
}

TEST(Ftl, WriteToUnmappedLpnJustMaps)
{
    const AddressLayout l = smallLayout();
    Ftl ftl(l, logicalFor(l, 2), 0.0, 0.0, 2);
    const WriteAlloc wa = ftl.hostWrite(7, 0);
    EXPECT_TRUE(ftl.translate(7) == wa.ppn);
    EXPECT_EQ(ftl.map().mappedCount(), 1u);
}

TEST(Ftl, RetentionOfPreconditionedPageIsBaseAge)
{
    const AddressLayout l = smallLayout();
    Ftl ftl(l, logicalFor(l, 2), 1.0, 9.0, 2);
    ftl.precondition();
    EXPECT_DOUBLE_EQ(ftl.retentionMonths(ftl.translate(0), sim::sec(100)),
                     9.0);
}

TEST(Ftl, RetentionOfRewrittenPageIsEffectivelyZero)
{
    const AddressLayout l = smallLayout();
    Ftl ftl(l, logicalFor(l, 2), 1.0, 9.0, 2);
    ftl.precondition();
    const WriteAlloc wa = ftl.hostWrite(3, sim::sec(1));
    const double ret = ftl.retentionMonths(wa.ppn, sim::sec(2));
    EXPECT_LT(ret, 1e-3) << "a 1-second-old page is fresh";
    EXPECT_GE(ret, 0.0);
}

TEST(Ftl, OpPointCombinesWearRetentionTemperature)
{
    const AddressLayout l = smallLayout();
    Ftl ftl(l, logicalFor(l, 2), 1.5, 12.0, 2);
    ftl.precondition();
    const nand::OperatingPoint op =
        ftl.opPoint(ftl.translate(0), 0, 55.0);
    EXPECT_DOUBLE_EQ(op.peKilo, 1.5);
    EXPECT_DOUBLE_EQ(op.retentionMonths, 12.0);
    EXPECT_DOUBLE_EQ(op.temperatureC, 55.0);
}

TEST(Ftl, GcTriggersWhenFreeBlocksLow)
{
    const AddressLayout l = smallLayout();
    const std::uint64_t lp = logicalFor(l, 3);
    Ftl ftl(l, lp, 0.0, 0.0, 3);
    ftl.precondition();

    // Overwrite the whole logical space repeatedly; eventually every
    // plane dips below the threshold and GC must reclaim.
    std::uint64_t gc_seen = 0;
    for (int round = 0; round < 4; ++round) {
        for (Lpn lpn = 0; lpn < lp; ++lpn) {
            const WriteAlloc wa = ftl.hostWrite(lpn, sim::usec(lpn));
            gc_seen += wa.gc.size();
        }
    }
    EXPECT_GT(gc_seen, 0u);
    EXPECT_EQ(ftl.gcCollections(), gc_seen);
    EXPECT_GT(ftl.blocks().totalErases(), 0u);

    // After all that churn the FTL must still resolve every LPN and
    // free-block invariants must hold on every plane.
    std::set<std::uint64_t> seen;
    for (Lpn lpn = 0; lpn < lp; ++lpn)
        EXPECT_TRUE(seen.insert(l.flatPage(ftl.translate(lpn))).second);
    for (std::uint32_t pl = 0; pl < l.totalPlanes(); ++pl)
        EXPECT_GE(ftl.blocks().freeBlocks(pl), 3u)
            << "GC must keep plane " << pl << " above threshold";
}

TEST(Ftl, GcMovesPreserveLpnOwnership)
{
    const AddressLayout l = smallLayout();
    const std::uint64_t lp = logicalFor(l, 3);
    Ftl ftl(l, lp, 0.0, 0.0, 3);
    ftl.precondition();
    for (int round = 0; round < 3; ++round) {
        for (Lpn lpn = 0; lpn < lp; ++lpn) {
            const WriteAlloc wa = ftl.hostWrite(lpn, 0);
            for (const GcWork &w : wa.gc) {
                for (const GcMove &m : w.moves) {
                    EXPECT_TRUE(ftl.translate(m.lpn) == m.to)
                        << "map must point at the relocation target";
                    EXPECT_TRUE(ftl.blocks().isValid(m.to));
                    EXPECT_EQ(ftl.blocks().lpnOf(m.to), m.lpn);
                }
            }
        }
    }
}

TEST(Ftl, InsufficientOverProvisioningPanics)
{
    const AddressLayout l = smallLayout();
    EXPECT_THROW(Ftl(l, l.totalPages(), 0.0, 0.0, 2), std::logic_error);
}

} // namespace
} // namespace ssdrr::ftl

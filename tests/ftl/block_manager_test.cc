/**
 * @file
 * Tests for per-plane block allocation, validity, victim selection
 * and wear/retention tracking.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "ftl/block_manager.hh"

namespace ssdrr::ftl {
namespace {

AddressLayout
tinyLayout()
{
    AddressLayout l;
    l.channels = 1;
    l.diesPerChannel = 1;
    l.planesPerDie = 2;
    l.blocksPerPlane = 4;
    l.pagesPerBlock = 3;
    return l;
}

TEST(BlockManager, StartsAllFree)
{
    const BlockManager bm(tinyLayout(), 0.0);
    EXPECT_EQ(bm.freeBlocks(0), 4u);
    EXPECT_EQ(bm.freeBlocks(1), 4u);
    EXPECT_EQ(bm.totalErases(), 0u);
}

TEST(BlockManager, AllocatesSequentiallyWithinFrontier)
{
    BlockManager bm(tinyLayout(), 0.0);
    const Ppn a = bm.allocate(0, 10, 100);
    const Ppn b = bm.allocate(0, 11, 200);
    EXPECT_EQ(a.plane, 0u);
    EXPECT_EQ(a.block, b.block) << "same frontier block";
    EXPECT_EQ(a.page, 0u);
    EXPECT_EQ(b.page, 1u);
    EXPECT_EQ(bm.freeBlocks(0), 3u) << "frontier left the free list";
}

TEST(BlockManager, OpensNewFrontierWhenFull)
{
    BlockManager bm(tinyLayout(), 0.0);
    for (int i = 0; i < 3; ++i)
        bm.allocate(0, i, 0);
    const Ppn next = bm.allocate(0, 3, 0);
    EXPECT_EQ(next.page, 0u);
    EXPECT_EQ(bm.freeBlocks(0), 2u);
}

TEST(BlockManager, TracksOwnerAndValidity)
{
    BlockManager bm(tinyLayout(), 0.0);
    const Ppn p = bm.allocate(0, 42, 7);
    EXPECT_TRUE(bm.isValid(p));
    EXPECT_EQ(bm.lpnOf(p), 42u);
    EXPECT_EQ(bm.epochOf(p), 7u);
    EXPECT_EQ(bm.validCount(0, p.block), 1u);

    bm.invalidate(p);
    EXPECT_FALSE(bm.isValid(p));
    EXPECT_EQ(bm.validCount(0, p.block), 0u);
}

TEST(BlockManager, DoubleInvalidatePanics)
{
    BlockManager bm(tinyLayout(), 0.0);
    const Ppn p = bm.allocate(0, 1, 0);
    bm.invalidate(p);
    EXPECT_THROW(bm.invalidate(p), std::logic_error);
}

TEST(BlockManager, VictimIsMinValidFullBlock)
{
    BlockManager bm(tinyLayout(), 0.0);
    // Fill block A with 3 pages, invalidate 2; fill block B, keep 3.
    Ppn a0 = bm.allocate(0, 0, 0);
    Ppn a1 = bm.allocate(0, 1, 0);
    bm.allocate(0, 2, 0); // fills first block
    bm.allocate(0, 3, 0);
    bm.allocate(0, 4, 0);
    bm.allocate(0, 5, 0); // fills second block
    bm.invalidate(a0);
    bm.invalidate(a1);

    std::uint32_t victim = 99;
    ASSERT_TRUE(bm.pickVictim(0, victim));
    EXPECT_EQ(victim, a0.block) << "fewest valid pages wins";
}

TEST(BlockManager, FrontierAndFreeBlocksAreNotVictims)
{
    BlockManager bm(tinyLayout(), 0.0);
    bm.allocate(0, 0, 0); // partially-written frontier only
    std::uint32_t victim = 99;
    EXPECT_FALSE(bm.pickVictim(0, victim))
        << "no fully-written candidate exists";
}

TEST(BlockManager, EraseRequiresNoValidPages)
{
    BlockManager bm(tinyLayout(), 0.0);
    const Ppn a = bm.allocate(0, 0, 0);
    bm.allocate(0, 1, 0);
    bm.allocate(0, 2, 0);
    bm.invalidate(a);
    EXPECT_THROW(bm.erase(0, a.block), std::logic_error)
        << "2 valid pages remain";
}

TEST(BlockManager, EraseRecyclesAndCountsWear)
{
    BlockManager bm(tinyLayout(), 0.5);
    Ppn ps[3];
    for (int i = 0; i < 3; ++i)
        ps[i] = bm.allocate(0, i, 0);
    for (const auto &p : ps)
        bm.invalidate(p);
    const std::uint32_t blk = ps[0].block;
    EXPECT_NEAR(bm.peKilo(0, blk), 0.5, 1e-12) << "preconditioned wear";

    bm.erase(0, blk);
    EXPECT_EQ(bm.totalErases(), 1u);
    EXPECT_NEAR(bm.peKilo(0, blk), 0.501, 1e-12)
        << "one runtime erase adds 1/1000 kilo-cycles";
    EXPECT_EQ(bm.freeBlocks(0), 4u) << "block returned to free list";
}

TEST(BlockManager, EraseOfFreeBlockPanics)
{
    BlockManager bm(tinyLayout(), 0.0);
    EXPECT_THROW(bm.erase(0, 2), std::logic_error);
}

TEST(BlockManager, PlanesAreIndependent)
{
    BlockManager bm(tinyLayout(), 0.0);
    const Ppn a = bm.allocate(0, 1, 0);
    const Ppn b = bm.allocate(1, 2, 0);
    EXPECT_EQ(a.plane, 0u);
    EXPECT_EQ(b.plane, 1u);
    EXPECT_EQ(a.block, b.block) << "each plane has its own allocator";
    EXPECT_EQ(bm.freeBlocks(0), 3u);
    EXPECT_EQ(bm.freeBlocks(1), 3u);
}

TEST(BlockManager, ExhaustionPanics)
{
    BlockManager bm(tinyLayout(), 0.0);
    for (int i = 0; i < 4 * 3; ++i)
        bm.allocate(0, i, 0);
    EXPECT_THROW(bm.allocate(0, 99, 0), std::logic_error)
        << "plane out of free blocks";
}

TEST(BlockManager, BaseEpochSentinelSurvives)
{
    BlockManager bm(tinyLayout(), 0.0);
    const Ppn p = bm.allocate(0, 0, kBaseEpoch);
    EXPECT_EQ(bm.epochOf(p), kBaseEpoch);
}

} // namespace
} // namespace ssdrr::ftl

/**
 * @file
 * Tests for the logical-to-physical page map.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "ftl/mapping.hh"

namespace ssdrr::ftl {
namespace {

TEST(PageMap, StartsUnmapped)
{
    const PageMap m(100);
    EXPECT_EQ(m.logicalPages(), 100u);
    EXPECT_EQ(m.mappedCount(), 0u);
    for (Lpn l = 0; l < 100; l += 17)
        EXPECT_FALSE(m.mapped(l));
}

TEST(PageMap, BindLookupRoundTrip)
{
    PageMap m(10);
    m.bind(3, 42);
    EXPECT_TRUE(m.mapped(3));
    EXPECT_EQ(m.lookup(3), 42u);
    EXPECT_EQ(m.mappedCount(), 1u);
}

TEST(PageMap, RebindOverwrites)
{
    PageMap m(10);
    m.bind(3, 42);
    m.bind(3, 77);
    EXPECT_EQ(m.lookup(3), 77u);
    EXPECT_EQ(m.mappedCount(), 1u) << "rebinding is not a new mapping";
}

TEST(PageMap, UnbindReturnsOldAndClears)
{
    PageMap m(10);
    m.bind(5, 99);
    EXPECT_EQ(m.unbind(5), 99u);
    EXPECT_FALSE(m.mapped(5));
    EXPECT_EQ(m.mappedCount(), 0u);
}

TEST(PageMap, LookupOfUnmappedPanics)
{
    const PageMap m(10);
    EXPECT_THROW(m.lookup(3), std::logic_error);
}

TEST(PageMap, OutOfRangeLpnPanics)
{
    PageMap m(10);
    EXPECT_THROW(m.bind(10, 0), std::logic_error);
    EXPECT_THROW(m.lookup(10), std::logic_error);
    EXPECT_THROW((void)m.mapped(10), std::logic_error);
}

TEST(PageMap, ManyBindingsCount)
{
    PageMap m(1000);
    for (Lpn l = 0; l < 1000; ++l)
        m.bind(l, l * 2);
    EXPECT_EQ(m.mappedCount(), 1000u);
    for (Lpn l = 0; l < 1000; l += 97)
        EXPECT_EQ(m.lookup(l), l * 2);
}

} // namespace
} // namespace ssdrr::ftl

/**
 * @file
 * Tests for SSD-internal address flattening and hierarchy mapping.
 */

#include <gtest/gtest.h>

#include <set>

#include "ftl/address.hh"

namespace ssdrr::ftl {
namespace {

AddressLayout
tinyLayout()
{
    AddressLayout l;
    l.channels = 2;
    l.diesPerChannel = 2;
    l.planesPerDie = 2;
    l.blocksPerPlane = 3;
    l.pagesPerBlock = 4;
    return l;
}

TEST(AddressLayout, PaperDefaultsTotalCapacity)
{
    const AddressLayout l;
    EXPECT_EQ(l.totalPlanes(), 32u);
    EXPECT_EQ(l.totalDies(), 16u);
    EXPECT_EQ(l.pagesPerPlane(), 1888ull * 576);
    // 32 planes x 1888 blocks x 576 pages x 16 KiB = 531 GiB raw.
    EXPECT_EQ(l.totalPages(), 32ull * 1888 * 576);
}

TEST(AddressLayout, FlatPageRoundTrips)
{
    const AddressLayout l = tinyLayout();
    for (std::uint64_t fp = 0; fp < l.totalPages(); ++fp) {
        const Ppn p = l.fromFlatPage(fp);
        EXPECT_EQ(l.flatPage(p), fp);
        EXPECT_LT(p.plane, l.totalPlanes());
        EXPECT_LT(p.block, l.blocksPerPlane);
        EXPECT_LT(p.page, l.pagesPerBlock);
    }
}

TEST(AddressLayout, FlatBlockIsUnique)
{
    const AddressLayout l = tinyLayout();
    std::set<std::uint64_t> seen;
    for (std::uint32_t pl = 0; pl < l.totalPlanes(); ++pl)
        for (std::uint32_t b = 0; b < l.blocksPerPlane; ++b) {
            Ppn p{pl, b, 0};
            EXPECT_TRUE(seen.insert(l.flatBlock(p)).second);
        }
    EXPECT_EQ(seen.size(), l.totalPlanes() * l.blocksPerPlane);
}

TEST(AddressLayout, ChannelOfGroupsPlanesChannelMajor)
{
    const AddressLayout l = tinyLayout();
    // 2 ch x 2 dies x 2 planes: planes 0-3 -> ch 0, planes 4-7 -> ch 1.
    EXPECT_EQ(l.channelOf(Ppn{0, 0, 0}), 0u);
    EXPECT_EQ(l.channelOf(Ppn{3, 0, 0}), 0u);
    EXPECT_EQ(l.channelOf(Ppn{4, 0, 0}), 1u);
    EXPECT_EQ(l.channelOf(Ppn{7, 0, 0}), 1u);
}

TEST(AddressLayout, DieOfIsGlobalAcrossChannels)
{
    const AddressLayout l = tinyLayout();
    EXPECT_EQ(l.dieOf(Ppn{0, 0, 0}), 0u);
    EXPECT_EQ(l.dieOf(Ppn{1, 0, 0}), 0u);
    EXPECT_EQ(l.dieOf(Ppn{2, 0, 0}), 1u);
    EXPECT_EQ(l.dieOf(Ppn{6, 0, 0}), 3u);
    // die index consistent with channel grouping
    for (std::uint32_t pl = 0; pl < l.totalPlanes(); ++pl) {
        const Ppn p{pl, 0, 0};
        EXPECT_EQ(l.dieOf(p) / l.diesPerChannel, l.channelOf(p));
    }
}

TEST(AddressLayout, PlaneInDieAlternates)
{
    const AddressLayout l = tinyLayout();
    EXPECT_EQ(l.planeInDie(Ppn{0, 0, 0}), 0u);
    EXPECT_EQ(l.planeInDie(Ppn{1, 0, 0}), 1u);
    EXPECT_EQ(l.planeInDie(Ppn{2, 0, 0}), 0u);
}

TEST(Ppn, EqualityComparesAllFields)
{
    const Ppn a{1, 2, 3};
    Ppn b = a;
    EXPECT_TRUE(a == b);
    b.page = 9;
    EXPECT_FALSE(a == b);
}

} // namespace
} // namespace ssdrr::ftl

/**
 * @file
 * Tests for trace export: MSR CSV round-trip through the parser and
 * the summary profile.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/export.hh"
#include "workload/msr_parser.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

namespace ssdrr::workload {
namespace {

Trace
sampleTrace()
{
    std::vector<TraceRecord> recs;
    TraceRecord a;
    a.arrival = 0;
    a.lpn = 5;
    a.pages = 2;
    a.isRead = true;
    TraceRecord b;
    b.arrival = sim::usec(500);
    b.lpn = 100;
    b.pages = 1;
    b.isRead = false;
    recs = {a, b};
    return Trace("sample", std::move(recs));
}

TEST(Export, WritesOneCsvRowPerRecord)
{
    std::ostringstream out;
    writeMsrTrace(out, sampleTrace());
    const std::string csv = out.str();
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
    EXPECT_NE(csv.find(",Read,"), std::string::npos);
    EXPECT_NE(csv.find(",Write,"), std::string::npos);
    // LPN 5 at 16-KiB pages = byte offset 81920; 2 pages = 32768 B.
    EXPECT_NE(csv.find(",81920,32768,"), std::string::npos);
}

TEST(Export, RoundTripsThroughParser)
{
    const Trace orig = sampleTrace();
    std::ostringstream out;
    writeMsrTrace(out, orig);
    std::istringstream in(out.str());
    const Trace back = parseMsrTrace(in, "back");

    ASSERT_EQ(back.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i) {
        EXPECT_EQ(back.records()[i].lpn, orig.records()[i].lpn) << i;
        EXPECT_EQ(back.records()[i].pages, orig.records()[i].pages) << i;
        EXPECT_EQ(back.records()[i].isRead, orig.records()[i].isRead)
            << i;
        // Arrival survives at 100-ns granularity.
        EXPECT_NEAR(static_cast<double>(back.records()[i].arrival),
                    static_cast<double>(orig.records()[i].arrival), 100.0)
            << i;
    }
}

TEST(Export, SyntheticTraceRoundTripsStatistically)
{
    const Trace orig = generateSynthetic(findWorkload("prn_1"),
                                         1 << 16, 2000, 5);
    std::ostringstream out;
    writeMsrTrace(out, orig);
    std::istringstream in(out.str());
    const Trace back = parseMsrTrace(in, "back");
    ASSERT_EQ(back.size(), orig.size());
    EXPECT_NEAR(back.readRatio(), orig.readRatio(), 1e-9);
    EXPECT_NEAR(back.coldRatio(), orig.coldRatio(), 1e-9);
    EXPECT_EQ(back.footprintPages(), orig.footprintPages());
}

TEST(Export, SaveToInvalidPathFatals)
{
    EXPECT_THROW(saveMsrTrace("/nonexistent/dir/x.csv", sampleTrace()),
                 std::runtime_error);
}

TEST(Profile, EmptyTrace)
{
    const TraceProfile p = profileTrace(Trace{});
    EXPECT_EQ(p.records, 0u);
    EXPECT_EQ(p.avgIops, 0.0);
}

TEST(Profile, CountsDistinctPagesPerDirection)
{
    const TraceProfile p = profileTrace(sampleTrace());
    EXPECT_EQ(p.records, 2u);
    EXPECT_DOUBLE_EQ(p.readRatio, 0.5);
    EXPECT_EQ(p.distinctReadPages, 2u) << "LPNs 5 and 6";
    EXPECT_EQ(p.distinctWrittenPages, 1u);
    EXPECT_EQ(p.maxPagesPerRequest, 2u);
    EXPECT_DOUBLE_EQ(p.avgPagesPerRequest, 1.5);
    EXPECT_EQ(p.footprintPages, 101u);
}

TEST(Profile, IopsFromDuration)
{
    // 2 records over 500 us -> 4000 IOPS.
    const TraceProfile p = profileTrace(sampleTrace());
    EXPECT_NEAR(p.avgIops, 4000.0, 1.0);
}

TEST(Profile, FormatMentionsKeyNumbers)
{
    const std::string s = formatProfile(profileTrace(sampleTrace()),
                                        "sample");
    EXPECT_NE(s.find("sample"), std::string::npos);
    EXPECT_NE(s.find("2 requests"), std::string::npos);
    EXPECT_NE(s.find("read ratio 0.5"), std::string::npos);
}

} // namespace
} // namespace ssdrr::workload

/**
 * @file
 * Tests for the synthetic trace generator: the generated trace must
 * reproduce the spec's Table 2 characteristics and basic shape.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/suites.hh"
#include "workload/synthetic.hh"

namespace ssdrr::workload {
namespace {

constexpr std::uint64_t kSpace = 1 << 16;

TEST(Synthetic, DeterministicForSameSeed)
{
    SyntheticSpec spec;
    const Trace a = generateSynthetic(spec, kSpace, 500, 7);
    const Trace b = generateSynthetic(spec, kSpace, 500, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.records()[i].arrival, b.records()[i].arrival);
        EXPECT_EQ(a.records()[i].lpn, b.records()[i].lpn);
        EXPECT_EQ(a.records()[i].isRead, b.records()[i].isRead);
    }
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    SyntheticSpec spec;
    const Trace a = generateSynthetic(spec, kSpace, 500, 7);
    const Trace b = generateSynthetic(spec, kSpace, 500, 8);
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += a.records()[i].lpn == b.records()[i].lpn ? 1 : 0;
    EXPECT_LT(same, 100);
}

TEST(Synthetic, ArrivalsAreMonotoneAndPositiveRate)
{
    SyntheticSpec spec;
    spec.iops = 1000.0;
    const Trace t = generateSynthetic(spec, kSpace, 2000, 3);
    sim::Tick prev = 0;
    for (const auto &r : t.records()) {
        EXPECT_GE(r.arrival, prev);
        prev = r.arrival;
    }
    // 2000 requests at 1000 IOPS take about 2 seconds.
    EXPECT_NEAR(sim::toMsec(t.duration()), 2000.0, 300.0);
}

TEST(Synthetic, LpnsStayInFootprint)
{
    SyntheticSpec spec;
    spec.footprintFraction = 0.25;
    const Trace t = generateSynthetic(spec, kSpace, 3000, 5);
    EXPECT_LE(t.footprintPages(), kSpace / 4 + spec.maxPages);
    for (const auto &r : t.records()) {
        EXPECT_GE(r.pages, 1u);
        EXPECT_LE(r.pages, spec.maxPages);
    }
}

TEST(Synthetic, WritesNeverTargetColdRegion)
{
    SyntheticSpec spec;
    spec.coldRatio = 0.6;
    const Trace t = generateSynthetic(spec, kSpace, 5000, 11);
    // The generator puts the cold region on top; infer its base from
    // the highest written page.
    std::uint64_t max_written = 0;
    for (const auto &r : t.records())
        if (!r.isRead)
            max_written =
                std::max(max_written,
                         r.lpn + r.pages - 1);
    // Reads must go strictly above that boundary often (cold reads).
    std::uint64_t cold_reads = 0;
    for (const auto &r : t.records())
        if (r.isRead && r.lpn > max_written)
            ++cold_reads;
    EXPECT_GT(cold_reads, 0u);
}

TEST(Synthetic, InvalidSpecsPanic)
{
    SyntheticSpec spec;
    spec.readRatio = 1.5;
    EXPECT_THROW(generateSynthetic(spec, kSpace, 10, 1),
                 std::logic_error);
    spec = SyntheticSpec{};
    spec.coldRatio = -0.1;
    EXPECT_THROW(generateSynthetic(spec, kSpace, 10, 1),
                 std::logic_error);
    spec = SyntheticSpec{};
    spec.iops = 0.0;
    EXPECT_THROW(generateSynthetic(spec, kSpace, 10, 1),
                 std::logic_error);
    EXPECT_THROW(generateSynthetic(SyntheticSpec{}, 16, 10, 1),
                 std::logic_error)
        << "logical space too small";
}

/**
 * Table 2 fidelity sweep: each of the twelve evaluated workloads
 * must reproduce its published read ratio and cold ratio.
 */
class Table2Fidelity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(Table2Fidelity, ReadAndColdRatiosMatchSpec)
{
    const SyntheticSpec spec = findWorkload(GetParam());
    const Trace t = generateSynthetic(spec, kSpace, 8000, 42);
    EXPECT_EQ(t.name(), spec.name);
    EXPECT_NEAR(t.readRatio(), spec.readRatio, 0.02) << spec.name;
    // Cold ratio is a property of the read/write interleaving; allow
    // a slightly wider band (writes into the hot region slowly warm
    // previously-cold-looking pages).
    EXPECT_NEAR(t.coldRatio(), spec.coldRatio, 0.08) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, Table2Fidelity,
                         ::testing::Values("stg_0", "hm_0", "prn_1",
                                           "proj_1", "mds_1", "usr_1",
                                           "YCSB-A", "YCSB-B", "YCSB-C",
                                           "YCSB-D", "YCSB-E", "YCSB-F"));

} // namespace
} // namespace ssdrr::workload

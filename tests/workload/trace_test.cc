/**
 * @file
 * Tests for the trace container and its Table 2 characteristics
 * (read ratio, cold ratio).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/trace.hh"

namespace ssdrr::workload {
namespace {

TraceRecord
rec(sim::Tick t, std::uint64_t lpn, bool read, std::uint32_t pages = 1)
{
    TraceRecord r;
    r.arrival = t;
    r.lpn = lpn;
    r.isRead = read;
    r.pages = pages;
    return r;
}

TEST(Trace, EmptyTraceHasZeroEverything)
{
    const Trace t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0u);
    EXPECT_DOUBLE_EQ(t.readRatio(), 0.0);
    EXPECT_DOUBLE_EQ(t.coldRatio(), 0.0);
    EXPECT_EQ(t.footprintPages(), 0u);
    EXPECT_EQ(t.duration(), 0u);
}

TEST(Trace, ReadRatioCountsRequests)
{
    const Trace t("t", {rec(0, 0, true), rec(1, 1, true),
                        rec(2, 2, true), rec(3, 3, false)});
    EXPECT_DOUBLE_EQ(t.readRatio(), 0.75);
}

TEST(Trace, ColdRatioExcludesEverWrittenPages)
{
    // Page 5 is written (even *after* the read): its reads are warm.
    const Trace t("t", {rec(0, 5, true), rec(1, 9, true),
                        rec(2, 5, false)});
    EXPECT_DOUBLE_EQ(t.coldRatio(), 0.5)
        << "read of 9 is cold; read of 5 is not (written later)";
}

TEST(Trace, ColdRatioHonorsMultiPageOverlap)
{
    // Read covers [10, 12); write covers [11, 13): they overlap, so
    // the read is warm.
    const Trace t("t", {rec(0, 10, true, 2), rec(1, 11, false, 2),
                        rec(2, 20, true, 4)});
    EXPECT_DOUBLE_EQ(t.coldRatio(), 0.5);
}

TEST(Trace, AllReadsTraceIsFullyCold)
{
    const Trace t("t", {rec(0, 1, true), rec(1, 2, true)});
    EXPECT_DOUBLE_EQ(t.coldRatio(), 1.0);
    EXPECT_DOUBLE_EQ(t.readRatio(), 1.0);
}

TEST(Trace, FootprintIsHighestTouchedPagePlusOne)
{
    const Trace t("t", {rec(0, 3, true), rec(1, 100, false, 4)});
    EXPECT_EQ(t.footprintPages(), 104u);
}

TEST(Trace, DurationIsLastArrival)
{
    const Trace t("t", {rec(10, 0, true), rec(500, 1, true)});
    EXPECT_EQ(t.duration(), 500u);
}

TEST(Trace, RejectsUnsortedArrivals)
{
    EXPECT_THROW(Trace("t", {rec(10, 0, true), rec(5, 1, true)}),
                 std::logic_error);
}

TEST(Trace, NamePersists)
{
    const Trace t("YCSB-C", {});
    EXPECT_EQ(t.name(), "YCSB-C");
}

} // namespace
} // namespace ssdrr::workload

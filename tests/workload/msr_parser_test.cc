/**
 * @file
 * Tests for the MSR-Cambridge CSV trace parser.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "workload/msr_parser.hh"

namespace ssdrr::workload {
namespace {

TEST(MsrParser, ParsesWellFormedLines)
{
    std::istringstream in(
        "128166372003061629,hm,0,Read,32768,16384,558\n"
        "128166372004061629,hm,0,Write,65536,32768,572\n");
    const Trace t = parseMsrTrace(in, "hm_0");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_TRUE(t.records()[0].isRead);
    EXPECT_FALSE(t.records()[1].isRead);
    // 16-KiB pages: offset 32768 -> LPN 2; 16384 bytes -> 1 page.
    EXPECT_EQ(t.records()[0].lpn, 2u);
    EXPECT_EQ(t.records()[0].pages, 1u);
    // offset 65536 -> LPN 4; 32768 bytes -> 2 pages.
    EXPECT_EQ(t.records()[1].lpn, 4u);
    EXPECT_EQ(t.records()[1].pages, 2u);
}

TEST(MsrParser, RebasesTimestamps)
{
    std::istringstream in(
        "1000000,h,0,Read,0,16384,1\n"
        "1000010,h,0,Read,0,16384,1\n");
    const Trace t = parseMsrTrace(in, "t");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.records()[0].arrival, 0u);
    // Filetime ticks are 100 ns: 10 ticks -> 1000 ns.
    EXPECT_EQ(t.records()[1].arrival, 1000u);
}

TEST(MsrParser, NoRebaseKeepsAbsoluteTime)
{
    std::istringstream in("50,h,0,Read,0,16384,1\n");
    MsrParseOptions opt;
    opt.rebaseTime = false;
    const Trace t = parseMsrTrace(in, "t", opt);
    EXPECT_EQ(t.records()[0].arrival, 5000u);
}

TEST(MsrParser, UnalignedRequestsCoverAllTouchedPages)
{
    // Offset 1000, size 20000: touches bytes [1000, 21000) ->
    // pages 0 and 1 with 16-KiB pages.
    std::istringstream in("0,h,0,Read,1000,20000,1\n");
    const Trace t = parseMsrTrace(in, "t");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t.records()[0].lpn, 0u);
    EXPECT_EQ(t.records()[0].pages, 2u);
}

TEST(MsrParser, CustomPageSize)
{
    std::istringstream in("0,h,0,Read,8192,4096,1\n");
    MsrParseOptions opt;
    opt.pageBytes = 4096;
    const Trace t = parseMsrTrace(in, "t", opt);
    EXPECT_EQ(t.records()[0].lpn, 2u);
    EXPECT_EQ(t.records()[0].pages, 1u);
}

TEST(MsrParser, SkipsMalformedAndUnknownLines)
{
    std::istringstream in(
        "garbage line\n"
        "0,h,0,Trim,0,16384,1\n"
        "0,h,0,Read,notanumber,16384,1\n"
        "0,h,0,Read,0,0,1\n"
        "100,h,0,Read,0,16384,1\n");
    const Trace t = parseMsrTrace(in, "t");
    EXPECT_EQ(t.size(), 1u) << "only the last line is valid";
}

TEST(MsrParser, MaxRecordsTruncates)
{
    std::ostringstream lines;
    for (int i = 0; i < 10; ++i)
        lines << i * 100 << ",h,0,Read,0,16384,1\n";
    std::istringstream in(lines.str());
    MsrParseOptions opt;
    opt.maxRecords = 4;
    const Trace t = parseMsrTrace(in, "t", opt);
    EXPECT_EQ(t.size(), 4u);
}

TEST(MsrParser, SortsOutOfOrderArrivals)
{
    std::istringstream in(
        "300,h,0,Read,0,16384,1\n"
        "100,h,0,Read,16384,16384,1\n"
        "200,h,0,Read,32768,16384,1\n");
    MsrParseOptions opt;
    opt.rebaseTime = false;
    const Trace t = parseMsrTrace(in, "t", opt);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_LE(t.records()[0].arrival, t.records()[1].arrival);
    EXPECT_LE(t.records()[1].arrival, t.records()[2].arrival);
}

TEST(MsrParser, EmptyStreamYieldsEmptyTrace)
{
    std::istringstream in("");
    const Trace t = parseMsrTrace(in, "t");
    EXPECT_TRUE(t.empty());
}

TEST(MsrParser, MissingFileFatals)
{
    EXPECT_THROW(loadMsrTrace("/nonexistent/path/trace.csv"),
                 std::runtime_error);
}

TEST(MsrParser, CaseInsensitiveTypeNames)
{
    std::istringstream in(
        "0,h,0,read,0,16384,1\n"
        "1,h,0,write,0,16384,1\n");
    const Trace t = parseMsrTrace(in, "t");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_TRUE(t.records()[0].isRead);
    EXPECT_FALSE(t.records()[1].isRead);
}

} // namespace
} // namespace ssdrr::workload

/**
 * @file
 * Tests pinning the twelve evaluated workloads to paper Table 2.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "workload/suites.hh"

namespace ssdrr::workload {
namespace {

TEST(Suites, MsrcHasSixWorkloadsInTableOrder)
{
    const auto msrc = msrcSuite();
    ASSERT_EQ(msrc.size(), 6u);
    EXPECT_EQ(msrc[0].name, "stg_0");
    EXPECT_EQ(msrc[1].name, "hm_0");
    EXPECT_EQ(msrc[2].name, "prn_1");
    EXPECT_EQ(msrc[3].name, "proj_1");
    EXPECT_EQ(msrc[4].name, "mds_1");
    EXPECT_EQ(msrc[5].name, "usr_1");
}

TEST(Suites, YcsbHasSixWorkloadsAThroughF)
{
    const auto ycsb = ycsbSuite();
    ASSERT_EQ(ycsb.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(ycsb[i].name,
                  std::string("YCSB-") + static_cast<char>('A' + i));
    }
}

TEST(Suites, Table2ReadRatiosExact)
{
    // Table 2, column "Read ratio".
    EXPECT_DOUBLE_EQ(findWorkload("stg_0").readRatio, 0.15);
    EXPECT_DOUBLE_EQ(findWorkload("hm_0").readRatio, 0.36);
    EXPECT_DOUBLE_EQ(findWorkload("prn_1").readRatio, 0.75);
    EXPECT_DOUBLE_EQ(findWorkload("proj_1").readRatio, 0.89);
    EXPECT_DOUBLE_EQ(findWorkload("mds_1").readRatio, 0.92);
    EXPECT_DOUBLE_EQ(findWorkload("usr_1").readRatio, 0.96);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-A").readRatio, 0.98);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-B").readRatio, 0.99);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-C").readRatio, 0.99);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-D").readRatio, 0.98);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-E").readRatio, 0.99);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-F").readRatio, 0.98);
}

TEST(Suites, Table2ColdRatiosExact)
{
    // Table 2, column "Cold ratio".
    EXPECT_DOUBLE_EQ(findWorkload("stg_0").coldRatio, 0.38);
    EXPECT_DOUBLE_EQ(findWorkload("hm_0").coldRatio, 0.22);
    EXPECT_DOUBLE_EQ(findWorkload("prn_1").coldRatio, 0.72);
    EXPECT_DOUBLE_EQ(findWorkload("proj_1").coldRatio, 0.96);
    EXPECT_DOUBLE_EQ(findWorkload("mds_1").coldRatio, 0.98);
    EXPECT_DOUBLE_EQ(findWorkload("usr_1").coldRatio, 0.73);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-A").coldRatio, 0.72);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-B").coldRatio, 0.59);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-C").coldRatio, 0.60);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-D").coldRatio, 0.58);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-E").coldRatio, 0.98);
    EXPECT_DOUBLE_EQ(findWorkload("YCSB-F").coldRatio, 0.87);
}

TEST(Suites, AllWorkloadsIsMsrcThenYcsbThenScan)
{
    // The twelve Table-2 entries keep their historical indices; the
    // scan-heavy extra rides at the end.
    const auto all = allWorkloads();
    ASSERT_EQ(all.size(), 13u);
    EXPECT_EQ(all[0].name, "stg_0");
    EXPECT_EQ(all[6].name, "YCSB-A");
    EXPECT_EQ(all[12].name, "seq_scan");
    std::set<std::string> names;
    for (const auto &s : all)
        EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
}

TEST(Suites, SeqScanIsSequentialHeavy)
{
    // seq_scan exists to exercise host-side readahead: mostly reads,
    // mostly continuing sequential streams, in multi-page chunks.
    // Table-2 entries stay fully random.
    const auto scan = findWorkload("seq_scan");
    EXPECT_DOUBLE_EQ(scan.readRatio, 0.95);
    EXPECT_DOUBLE_EQ(scan.seqRatio, 0.7);
    EXPECT_GE(scan.meanPages, 2.0);
    for (const auto &s : msrcSuite())
        EXPECT_DOUBLE_EQ(s.seqRatio, 0.0) << s.name;
    for (const auto &s : ycsbSuite())
        EXPECT_DOUBLE_EQ(s.seqRatio, 0.0) << s.name;
}

TEST(Suites, FindUnknownWorkloadFatals)
{
    EXPECT_THROW(findWorkload("web_3"), std::runtime_error);
}

TEST(Suites, WriteDominantVsReadDominantSplit)
{
    // The paper splits Fig. 14 into write-dominant (stg_0, hm_0) and
    // read-dominant (the rest); our specs must respect that split.
    // (seq_scan is read-dominant too, so the loop covers it.)
    for (const auto &s : allWorkloads()) {
        if (s.name == "stg_0" || s.name == "hm_0")
            EXPECT_LT(s.readRatio, 0.5) << s.name;
        else
            EXPECT_GT(s.readRatio, 0.5) << s.name;
    }
}

} // namespace
} // namespace ssdrr::workload

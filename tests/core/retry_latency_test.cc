/**
 * @file
 * Exact latency-equation tests for every retry mechanism against an
 * uncontended channel and ECC engine (paper Equations 2-5 and
 * Figures 12-13). These pin the mechanism timelines tick-for-tick.
 */

#include <gtest/gtest.h>

#include "core/retry_controller.hh"
#include "ecc/engine.hh"
#include "nand/error_model.hh"
#include "ssd/channel.hh"

namespace ssdrr::core {
namespace {

/** Fixture providing fresh resources and a synthetic N-step page. */
class RetryLatency : public ::testing::Test
{
  protected:
    RetryLatency() : rpt_(RptBuilder(model_).buildDefault()) {}

    /** A page profile needing exactly @p n retry steps. */
    nand::PageErrorProfile
    profile(int n) const
    {
        nand::PageErrorProfile p;
        p.retrySteps = n;
        p.finalErrors = 30.0;
        // Guarantee step N-1 fails: 30 * 2.56 = 76.8 > 72.
        p.decayRatio = 2.56;
        return p;
    }

    ReadPlan
    plan(Mechanism m, int n, const nand::OperatingPoint &op,
         nand::PageType type = nand::PageType::LSB)
    {
        RetryController rc(m, timing_, model_, &rpt_);
        ssd::Channel ch;
        ecc::EccEngine ecc(timing_.tECC, 72.0);
        return rc.planRead(0, type, profile(n), op, ch, ecc);
    }

    nand::TimingParams timing_;
    nand::ErrorModel model_;
    Rpt rpt_;
    const nand::OperatingPoint op_{1.0, 6.0, 30.0};

    // Common shorthands (LSB page: N_SENSE = 2 -> tR = 78 us).
    const sim::Tick tR_ = timing_.tR(nand::PageType::LSB);
    const sim::Tick tDMA_ = timing_.tDMA;
    const sim::Tick tECC_ = timing_.tECC;
    const sim::Tick tSET_ = timing_.tSET;
};

// ----- Equation 2/3: Baseline -----

TEST_F(RetryLatency, BaselineNoRetryIsPlainRead)
{
    const ReadPlan p = plan(Mechanism::Baseline, 0, op_);
    EXPECT_EQ(p.retrySteps, 0);
    EXPECT_TRUE(p.success);
    EXPECT_EQ(p.completion, tR_ + tDMA_ + tECC_);
    EXPECT_EQ(p.dieEnd, tR_ + tDMA_)
        << "die is free after the transfer; ECC runs in the engine";
}

TEST_F(RetryLatency, BaselineRetryIsLinearInSteps)
{
    // tREAD = (N_RR + 1) * (tR + tDMA + tECC)   [Eq. 2 + 3]
    for (int n : {1, 2, 5, 10, 20}) {
        const ReadPlan p = plan(Mechanism::Baseline, n, op_);
        EXPECT_EQ(p.retrySteps, n);
        EXPECT_EQ(p.completion,
                  static_cast<sim::Tick>(n + 1) * (tR_ + tDMA_ + tECC_))
            << "n=" << n;
    }
}

TEST_F(RetryLatency, BaselineCsbPageUsesLongerSense)
{
    const sim::Tick tR_csb = timing_.tR(nand::PageType::CSB); // 117 us
    const ReadPlan p =
        plan(Mechanism::Baseline, 3, op_, nand::PageType::CSB);
    EXPECT_EQ(p.completion, 4u * (tR_csb + tDMA_ + tECC_));
}

// ----- Equation 4 / Figure 12(b): PR2 -----

TEST_F(RetryLatency, Pr2PipelinesRetrySteps)
{
    // tRETRY = N_RR * tR + tDMA + tECC, so
    // tREAD = (N_RR + 1) * tR + tDMA + tECC   [Eq. 4]
    for (int n : {1, 2, 5, 10, 20}) {
        const ReadPlan p = plan(Mechanism::PR2, n, op_);
        EXPECT_EQ(p.retrySteps, n);
        EXPECT_EQ(p.completion,
                  static_cast<sim::Tick>(n + 1) * tR_ + tDMA_ + tECC_)
            << "n=" << n;
    }
}

TEST_F(RetryLatency, Pr2SavesDmaAndEccPerStep)
{
    // PR2 saves (N_RR - 1 + 1) * (tDMA + tECC) vs Baseline... more
    // precisely Eq.3 - Eq.4 = N_RR * (tDMA + tECC).
    const int n = 8;
    const ReadPlan base = plan(Mechanism::Baseline, n, op_);
    const ReadPlan pr2 = plan(Mechanism::PR2, n, op_);
    EXPECT_EQ(base.completion - pr2.completion,
              static_cast<sim::Tick>(n) * (tDMA_ + tECC_));
}

TEST_F(RetryLatency, Pr2StepLatencyReduction)
{
    // Section 1: PR2 reduces the latency of a retry step by 28.5%
    // (tDMA + tECC = 36 us out of tR + tDMA + tECC = 126 us with the
    // average tR of 90 us; with LSB tR = 78: 36/114 = 31.6%).
    const sim::Tick tR_avg = timing_.tRAvg();
    const double step_full = sim::toUsec(tR_avg + tDMA_ + tECC_);
    const double step_pr2 = sim::toUsec(tR_avg);
    EXPECT_NEAR(1.0 - step_pr2 / step_full, 0.285, 0.01);
}

TEST_F(RetryLatency, Pr2NoRetryPaysSpeculationOnDieOnly)
{
    // With zero retries PR2 still speculatively sensed step 1; the
    // RESET (tRST) kills it after the ECC verdict. Completion is
    // unchanged; only the die-busy window can extend.
    const ReadPlan p = plan(Mechanism::PR2, 0, op_);
    EXPECT_EQ(p.completion, tR_ + tDMA_ + tECC_);
    EXPECT_GE(p.dieEnd, tR_ + tDMA_);
    EXPECT_LE(p.dieEnd, tR_ + tDMA_ + tECC_ + timing_.tRST);
}

TEST_F(RetryLatency, Pr2DieBusyCoversSpeculativeStep)
{
    // With n retries, the (n+1)-th speculative step is killed by
    // RESET ~tECC + tRST after its sensing started: die end must be
    // at least the last real transfer and at most spec end + reset.
    const int n = 4;
    const ReadPlan p = plan(Mechanism::PR2, n, op_);
    EXPECT_GE(p.dieEnd, p.completion - tECC_)
        << "die busy at least until the last transfer";
    EXPECT_LE(p.dieEnd, p.completion + timing_.tRST);
}

// ----- Equation 5 / Figure 13: AR2 -----

TEST_F(RetryLatency, Ar2ShortensOnlyRetrySteps)
{
    // tREAD = (tR + tDMA + tECC)           [initial, default timing]
    //       + tSET + N_RR * (rho*tR + tDMA + tECC)      [Eq. 5-ish]
    const nand::TimingReduction red = rpt_.lookup(op_);
    ASSERT_GT(red.pre, 0.0);
    const sim::Tick tR_red = timing_.tR(nand::PageType::LSB, red);

    for (int n : {1, 3, 9}) {
        const ReadPlan p = plan(Mechanism::AR2, n, op_);
        EXPECT_EQ(p.retrySteps, n);
        EXPECT_EQ(p.completion,
                  (tR_ + tDMA_ + tECC_) + tSET_ +
                      static_cast<sim::Tick>(n) *
                          (tR_red + tDMA_ + tECC_))
            << "n=" << n;
    }
}

TEST_F(RetryLatency, Ar2ReductionIsAtLeastQuarterOfTr)
{
    // Fig. 11: >= 40% tPRE cut -> >= 24.6% shorter sensing.
    const nand::TimingReduction red = rpt_.lookup(op_);
    EXPECT_LE(timing_.rho(red), 0.754);
    EXPECT_GE(red.pre, 0.40);
}

TEST_F(RetryLatency, Ar2NoRetryNeverAppliesSetFeature)
{
    const ReadPlan p = plan(Mechanism::AR2, 0, op_);
    EXPECT_EQ(p.completion, tR_ + tDMA_ + tECC_)
        << "AR2 touches timing only after a read failure";
}

TEST_F(RetryLatency, Ar2BeatsBaselineForAnyRetryCount)
{
    for (int n : {1, 2, 5, 20}) {
        const ReadPlan base = plan(Mechanism::Baseline, n, op_);
        const ReadPlan ar2 = plan(Mechanism::AR2, n, op_);
        EXPECT_LT(ar2.completion, base.completion) << "n=" << n;
    }
}

// ----- PnAR2: PR2 + AR2 -----

TEST_F(RetryLatency, Pnar2CombinesPipeliningAndReducedTr)
{
    // Fig. 13 (PR2 assumed): initial read fails, SET FEATURE after
    // the verdict, then pipelined reduced-tR steps; the final step's
    // transfer and decode close the read.
    const nand::TimingReduction red = rpt_.lookup(op_);
    const sim::Tick tR_red = timing_.tR(nand::PageType::LSB, red);

    for (int n : {1, 3, 9}) {
        const ReadPlan p = plan(Mechanism::PnAR2, n, op_);
        EXPECT_EQ(p.retrySteps, n);
        EXPECT_EQ(p.completion,
                  (tR_ + tDMA_ + tECC_) + tSET_ +
                      static_cast<sim::Tick>(n) * tR_red + tDMA_ + tECC_)
            << "n=" << n;
    }
}

TEST_F(RetryLatency, Pnar2IsTheFastestRealMechanismBeyondTwoSteps)
{
    for (int n : {2, 4, 12}) {
        const sim::Tick pnar2 = plan(Mechanism::PnAR2, n, op_).completion;
        EXPECT_LE(pnar2, plan(Mechanism::PR2, n, op_).completion)
            << "n=" << n;
        EXPECT_LT(pnar2, plan(Mechanism::AR2, n, op_).completion)
            << "n=" << n;
        EXPECT_LT(pnar2, plan(Mechanism::Baseline, n, op_).completion)
            << "n=" << n;
    }
}

TEST_F(RetryLatency, Pr2BeatsPnar2AtExactlyOneStep)
{
    // Inherent crossover in the paper's own equations: with a single
    // retry step, PR2 pipelines it behind the initial sensing
    // (Eq. 4), while PnAR2 must wait for the initial ECC verdict +
    // SET FEATURE before its (shorter) retry sensing (Fig. 13), so
    // the transfer/decode of the initial read lands on PnAR2's
    // critical path.
    const sim::Tick pr2 = plan(Mechanism::PR2, 1, op_).completion;
    const sim::Tick pnar2 = plan(Mechanism::PnAR2, 1, op_).completion;
    EXPECT_LT(pr2, pnar2);
    // Both still beat Baseline.
    EXPECT_LT(pnar2, plan(Mechanism::Baseline, 1, op_).completion);
}

TEST_F(RetryLatency, Pnar2SynergyExceedsSumOfParts)
{
    // Section 7.2: "PR2 and AR2 improve SSD performance in a
    // synergistic manner" — the combined saving is at least the sum
    // of the individual savings (pipelining makes tR dominant, so
    // shrinking tR helps more under PR2).
    const int n = 10;
    const sim::Tick base = plan(Mechanism::Baseline, n, op_).completion;
    const sim::Tick pr2 = plan(Mechanism::PR2, n, op_).completion;
    const sim::Tick ar2 = plan(Mechanism::AR2, n, op_).completion;
    const sim::Tick both = plan(Mechanism::PnAR2, n, op_).completion;
    EXPECT_GE((base - pr2) + (base - ar2), base - both - tSET_);
    EXPECT_GT(base - both, (base - pr2));
    EXPECT_GT(base - both, (base - ar2));
}

// ----- NoRR: ideal upper bound -----

TEST_F(RetryLatency, NorrIgnoresProfileEntirely)
{
    for (int n : {0, 5, 44}) {
        const ReadPlan p = plan(Mechanism::NoRR, n, op_);
        EXPECT_EQ(p.retrySteps, 0);
        EXPECT_EQ(p.completion, tR_ + tDMA_ + tECC_);
        EXPECT_TRUE(p.success);
    }
}

// ----- PSO and PSO+PnAR2 -----

TEST_F(RetryLatency, PsoReducesStepsButKeepsBaselineTimeline)
{
    const int n = 20;
    const int n_pso = psoSteps(n); // 6
    const ReadPlan p = plan(Mechanism::PSO, n, op_);
    EXPECT_EQ(p.retrySteps, n_pso);
    EXPECT_EQ(p.completion,
              static_cast<sim::Tick>(n_pso + 1) * (tR_ + tDMA_ + tECC_));
}

TEST_F(RetryLatency, PsoPnar2StacksAllThreeOptimizations)
{
    const int n = 20;
    const int n_pso = psoSteps(n);
    const nand::TimingReduction red = rpt_.lookup(op_);
    const sim::Tick tR_red = timing_.tR(nand::PageType::LSB, red);
    const ReadPlan p = plan(Mechanism::PSO_PnAR2, n, op_);
    EXPECT_EQ(p.retrySteps, n_pso);
    EXPECT_EQ(p.completion,
              (tR_ + tDMA_ + tECC_) + tSET_ +
                  static_cast<sim::Tick>(n_pso) * tR_red + tDMA_ + tECC_);
    EXPECT_LT(p.completion, plan(Mechanism::PSO, n, op_).completion);
}

// ----- Unreadable pages -----

TEST_F(RetryLatency, UnreadablePageWalksWholeTableAndFails)
{
    nand::PageErrorProfile bad;
    bad.retrySteps = 10;
    bad.finalErrors = 100.0; // beyond capability even at VOPT
    bad.decayRatio = 2.0;
    RetryController rc(Mechanism::Baseline, timing_, model_, &rpt_);
    ssd::Channel ch;
    ecc::EccEngine ecc(timing_.tECC, 72.0);
    const ReadPlan p =
        rc.planRead(0, nand::PageType::LSB, bad, op_, ch, ecc);
    EXPECT_FALSE(p.success);
    EXPECT_EQ(p.retrySteps, model_.cal().retryTableSteps)
        << "all prescribed VREF sets are tried before giving up";
}

// ----- Start offsets and contention -----

TEST_F(RetryLatency, PlansShiftWithStartTime)
{
    RetryController rc(Mechanism::PR2, timing_, model_, &rpt_);
    ssd::Channel ch;
    ecc::EccEngine ecc(timing_.tECC, 72.0);
    const sim::Tick t0 = sim::usec(500);
    const ReadPlan p =
        rc.planRead(t0, nand::PageType::LSB, profile(3), op_, ch, ecc);
    EXPECT_EQ(p.completion, t0 + 4u * tR_ + tDMA_ + tECC_);
}

TEST_F(RetryLatency, BusyChannelDelaysTransfer)
{
    RetryController rc(Mechanism::Baseline, timing_, model_, &rpt_);
    ssd::Channel ch;
    ecc::EccEngine ecc(timing_.tECC, 72.0);
    // Saturate the channel for the first 200 us.
    ch.acquire(0, sim::usec(200));
    const ReadPlan p =
        rc.planRead(0, nand::PageType::LSB, profile(0), op_, ch, ecc);
    EXPECT_EQ(p.completion, sim::usec(200) + tDMA_ + tECC_)
        << "sense (78 us) finishes, transfer waits for the bus";
}

TEST_F(RetryLatency, BusyEccEngineDelaysDecodeOnly)
{
    RetryController rc(Mechanism::Baseline, timing_, model_, &rpt_);
    ssd::Channel ch;
    ecc::EccEngine ecc(timing_.tECC, 72.0);
    ecc.acquire(0); // busy [0, 20 us)
    ecc.acquire(sim::usec(90));  // busy [90, 110); read's DMA ends at 94
    const ReadPlan p =
        rc.planRead(0, nand::PageType::LSB, profile(0), op_, ch, ecc);
    EXPECT_EQ(p.completion, sim::usec(110) + tECC_);
    EXPECT_EQ(p.dieEnd, tR_ + tDMA_) << "die frees at transfer end";
}

} // namespace
} // namespace ssdrr::core

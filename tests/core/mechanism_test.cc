/**
 * @file
 * Tests for the mechanism taxonomy and the PSO step transform.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/mechanism.hh"

namespace ssdrr::core {
namespace {

constexpr Mechanism kAll[] = {
    Mechanism::Baseline, Mechanism::PR2,  Mechanism::AR2,
    Mechanism::PnAR2,    Mechanism::NoRR, Mechanism::PSO,
    Mechanism::PSO_PnAR2,
};

TEST(Mechanism, NamesRoundTripThroughParse)
{
    for (Mechanism m : kAll)
        EXPECT_EQ(parseMechanism(name(m)), m);
}

TEST(Mechanism, ParseRejectsUnknown)
{
    EXPECT_THROW(parseMechanism("WarpDrive"), std::runtime_error);
    EXPECT_THROW(parseMechanism(""), std::runtime_error);
    EXPECT_THROW(parseMechanism("pr2"), std::runtime_error)
        << "names are case-sensitive";
}

TEST(Mechanism, PipeliningFlags)
{
    EXPECT_FALSE(usesPipelining(Mechanism::Baseline));
    EXPECT_TRUE(usesPipelining(Mechanism::PR2));
    EXPECT_FALSE(usesPipelining(Mechanism::AR2));
    EXPECT_TRUE(usesPipelining(Mechanism::PnAR2));
    EXPECT_FALSE(usesPipelining(Mechanism::NoRR));
    EXPECT_FALSE(usesPipelining(Mechanism::PSO));
    EXPECT_TRUE(usesPipelining(Mechanism::PSO_PnAR2));
}

TEST(Mechanism, AdaptiveTimingFlags)
{
    EXPECT_FALSE(usesAdaptiveTiming(Mechanism::Baseline));
    EXPECT_FALSE(usesAdaptiveTiming(Mechanism::PR2));
    EXPECT_TRUE(usesAdaptiveTiming(Mechanism::AR2));
    EXPECT_TRUE(usesAdaptiveTiming(Mechanism::PnAR2));
    EXPECT_FALSE(usesAdaptiveTiming(Mechanism::NoRR));
    EXPECT_FALSE(usesAdaptiveTiming(Mechanism::PSO));
    EXPECT_TRUE(usesAdaptiveTiming(Mechanism::PSO_PnAR2));
}

TEST(Mechanism, StepReductionFlags)
{
    for (Mechanism m : kAll) {
        const bool expect =
            m == Mechanism::PSO || m == Mechanism::PSO_PnAR2;
        EXPECT_EQ(usesStepReduction(m), expect) << name(m);
    }
}

TEST(PsoSteps, ZeroStaysZero)
{
    // A read that needed no retry is untouched by PSO.
    EXPECT_EQ(psoSteps(0), 0);
}

TEST(PsoSteps, FloorsAtThreeSteps)
{
    // Section 3.1: "for every page read, it requires at least three
    // retry steps" — PSO cannot avoid retry entirely.
    for (int n = 1; n <= 10; ++n)
        EXPECT_GE(psoSteps(n), std::min(n, 3)) << "n=" << n;
    EXPECT_EQ(psoSteps(1), 1) << "cannot exceed the original count";
    EXPECT_EQ(psoSteps(2), 2);
    EXPECT_EQ(psoSteps(3), 3);
    EXPECT_EQ(psoSteps(8), 3);
}

TEST(PsoSteps, ReducesByAboutSeventyPercent)
{
    // "an existing technique can reduce the average number of
    // read-retry steps by about 70%".
    EXPECT_EQ(psoSteps(10), 3);
    EXPECT_EQ(psoSteps(20), 6);
    EXPECT_EQ(psoSteps(30), 9);
    EXPECT_EQ(psoSteps(44), 14); // ceil(0.3 * 44)
}

TEST(PsoSteps, NeverExceedsOriginal)
{
    for (int n = 0; n <= 44; ++n)
        EXPECT_LE(psoSteps(n), std::max(n, 0)) << "n=" << n;
}

TEST(PsoSteps, MonotoneInInput)
{
    for (int n = 1; n <= 43; ++n)
        EXPECT_LE(psoSteps(n), psoSteps(n + 1));
}

TEST(PsoSteps, NegativePanics)
{
    EXPECT_THROW(psoSteps(-1), std::logic_error);
}

} // namespace
} // namespace ssdrr::core

/**
 * @file
 * Tests for the Read-timing Parameter Table and its offline builder
 * (paper Section 6.2, Figure 13).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/rpt.hh"

namespace ssdrr::core {
namespace {

TEST(Rpt, LookupSelectsCorrectBin)
{
    // 2 PE bins x 2 retention bins with distinct values.
    const Rpt rpt({1.0, 2.0}, {6.0, 12.0}, {0.54, 0.47, 0.47, 0.40});
    EXPECT_DOUBLE_EQ(rpt.lookup({0.5, 3.0, 30.0}).pre, 0.54);
    EXPECT_DOUBLE_EQ(rpt.lookup({0.5, 9.0, 30.0}).pre, 0.47);
    EXPECT_DOUBLE_EQ(rpt.lookup({1.5, 3.0, 30.0}).pre, 0.47);
    EXPECT_DOUBLE_EQ(rpt.lookup({1.5, 9.0, 30.0}).pre, 0.40);
}

TEST(Rpt, BinEdgesAreInclusiveUpper)
{
    const Rpt rpt({1.0, 2.0}, {6.0, 12.0}, {0.54, 0.47, 0.47, 0.40});
    EXPECT_DOUBLE_EQ(rpt.lookup({1.0, 6.0, 30.0}).pre, 0.54)
        << "exactly at the edge belongs to the lower bin";
}

TEST(Rpt, BeyondProfiledRangeClampsToMostConservativeBin)
{
    const Rpt rpt({1.0, 2.0}, {6.0, 12.0}, {0.54, 0.47, 0.47, 0.40});
    EXPECT_DOUBLE_EQ(rpt.lookup({5.0, 24.0, 30.0}).pre, 0.40);
}

TEST(Rpt, LookupOnlyReducesPrecharge)
{
    const Rpt rpt({1.0}, {6.0}, {0.47});
    const nand::TimingReduction r = rpt.lookup({0.5, 3.0, 30.0});
    EXPECT_GT(r.pre, 0.0);
    EXPECT_DOUBLE_EQ(r.eval, 0.0) << "AR2 never touches tEVAL (5.2.1)";
    EXPECT_DOUBLE_EQ(r.disch, 0.0) << "AR2 never touches tDISCH (5.2.2)";
}

TEST(Rpt, StorageFootprintMatchesPaper)
{
    // Section 6.2: "with 36 (PEC, tRET) combinations, we estimate
    // the table size to be only 144 bytes per chip".
    const nand::ErrorModel model;
    const Rpt rpt = RptBuilder(model).buildDefault();
    EXPECT_EQ(rpt.entries(), 36u);
    EXPECT_EQ(rpt.storageBytes(), 144u);
    EXPECT_EQ(rpt.peBins(), 6u);
    EXPECT_EQ(rpt.retBins(), 6u);
}

TEST(Rpt, DefaultTableEntriesWithinPaperRange)
{
    // Fig. 11: min 40%, max 54% reduction across all conditions.
    const nand::ErrorModel model;
    const Rpt rpt = RptBuilder(model).buildDefault();
    for (std::size_t pe = 0; pe < rpt.peBins(); ++pe) {
        for (std::size_t rt = 0; rt < rpt.retBins(); ++rt) {
            const double x = rpt.entryAt(pe, rt);
            EXPECT_GE(x, 0.40) << "bin (" << pe << "," << rt << ")";
            EXPECT_LE(x, 0.54) << "bin (" << pe << "," << rt << ")";
        }
    }
}

TEST(Rpt, EntriesMonotoneInBothAxes)
{
    // Worse conditions never allow a larger reduction.
    const nand::ErrorModel model;
    const Rpt rpt = RptBuilder(model).buildDefault();
    for (std::size_t pe = 0; pe < rpt.peBins(); ++pe)
        for (std::size_t rt = 0; rt + 1 < rpt.retBins(); ++rt)
            EXPECT_GE(rpt.entryAt(pe, rt), rpt.entryAt(pe, rt + 1));
    for (std::size_t rt = 0; rt < rpt.retBins(); ++rt)
        for (std::size_t pe = 0; pe + 1 < rpt.peBins(); ++pe)
            EXPECT_GE(rpt.entryAt(pe, rt), rpt.entryAt(pe + 1, rt));
}

TEST(Rpt, BuilderHonorsCustomGrid)
{
    const nand::ErrorModel model;
    const Rpt rpt = RptBuilder(model).build({2.0}, {12.0});
    EXPECT_EQ(rpt.entries(), 1u);
    // Single worst-case bin must equal the model's direct answer.
    EXPECT_DOUBLE_EQ(rpt.entryAt(0, 0),
                     model.maxSafePreReduction({2.0, 12.0, 85.0}));
}

TEST(Rpt, LookupAgreesWithModelAtBinCorners)
{
    // The table is profiled at each bin's pessimistic corner: a
    // lookup anywhere in the bin returns a reduction that is safe at
    // the corner, hence safe in the whole bin (monotonicity).
    const nand::ErrorModel model;
    const Rpt rpt = RptBuilder(model).buildDefault();
    for (double pe : {0.1, 0.7, 1.2, 1.9}) {
        for (double ret : {0.5, 2.5, 5.0, 11.0}) {
            const nand::OperatingPoint op{pe, ret, 85.0};
            const double table = rpt.lookup(op).pre;
            const double direct = model.maxSafePreReduction(op);
            EXPECT_LE(table, direct + 1e-9)
                << "table must never be more aggressive than direct "
                   "profiling at ("
                << pe << ", " << ret << ")";
        }
    }
}

TEST(Rpt, ConstructionValidatesShape)
{
    EXPECT_THROW(Rpt({}, {1.0}, {}), std::logic_error);
    EXPECT_THROW(Rpt({1.0}, {1.0}, {0.4, 0.4}), std::logic_error)
        << "entry count mismatch";
    EXPECT_THROW(Rpt({2.0, 1.0}, {1.0}, {0.4, 0.4}), std::logic_error)
        << "edges must increase";
    EXPECT_THROW(Rpt({1.0}, {2.0, 2.0}, {0.4, 0.4}), std::logic_error);
}

TEST(Rpt, EntryAtValidatesBin)
{
    const Rpt rpt({1.0}, {1.0}, {0.4});
    EXPECT_THROW(rpt.entryAt(1, 0), std::logic_error);
    EXPECT_THROW(rpt.entryAt(0, 1), std::logic_error);
}

} // namespace
} // namespace ssdrr::core

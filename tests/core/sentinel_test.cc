/**
 * @file
 * Tests for the Sentinel [56] step transform and its combination
 * with PR2/AR2 (paper Section 9's complementarity argument).
 */

#include <gtest/gtest.h>

#include "core/retry_controller.hh"
#include "ecc/engine.hh"
#include "nand/error_model.hh"
#include "ssd/channel.hh"

namespace ssdrr::core {
namespace {

TEST(SentinelSteps, ZeroStaysZero)
{
    EXPECT_EQ(sentinelSteps(0), 0);
}

TEST(SentinelSteps, MostRetriesFinishInOneStep)
{
    for (int n = 1; n <= 5; ++n)
        EXPECT_EQ(sentinelSteps(n), 1) << "n=" << n;
}

TEST(SentinelSteps, LongWalksKeepAShortTail)
{
    EXPECT_EQ(sentinelSteps(10), 1);
    EXPECT_EQ(sentinelSteps(16), 2);
    EXPECT_EQ(sentinelSteps(20), 3);
    EXPECT_EQ(sentinelSteps(44), 8);
}

TEST(SentinelSteps, AveragePointMatchesPaper)
{
    // [56]: average steps drop from 6.6 to 1.2. Check at the quoted
    // operating point: a population averaging ~6.6 steps must come
    // out near 1.2 after the transform.
    const nand::ErrorModel model;
    const nand::OperatingPoint op{0.0, 6.0, 85.0}; // avg ~6.6 steps
    double before = 0.0, after = 0.0;
    const int pages = 4000;
    for (int p = 0; p < pages; ++p) {
        const int n =
            model.pageProfile(0, p / 576, p % 576, op).retrySteps;
        before += n;
        after += sentinelSteps(n);
    }
    before /= pages;
    after /= pages;
    EXPECT_NEAR(before, 6.6, 0.6);
    EXPECT_NEAR(after, 1.2, 0.35);
}

TEST(SentinelSteps, NeverExceedsOriginalAndMonotone)
{
    for (int n = 0; n <= 44; ++n) {
        EXPECT_LE(sentinelSteps(n), std::max(n, 0));
        if (n > 0) {
            EXPECT_LE(sentinelSteps(n - 1), sentinelSteps(n));
        }
    }
}

TEST(TransformedSteps, DispatchesPerMechanism)
{
    EXPECT_EQ(transformedSteps(Mechanism::Baseline, 10), 10);
    EXPECT_EQ(transformedSteps(Mechanism::PnAR2, 10), 10);
    EXPECT_EQ(transformedSteps(Mechanism::PSO, 10), psoSteps(10));
    EXPECT_EQ(transformedSteps(Mechanism::PSO_PnAR2, 10), psoSteps(10));
    EXPECT_EQ(transformedSteps(Mechanism::Sentinel, 10),
              sentinelSteps(10));
    EXPECT_EQ(transformedSteps(Mechanism::Sentinel_PnAR2, 10),
              sentinelSteps(10));
}

TEST(SentinelMechanism, FlagsAndNames)
{
    EXPECT_EQ(parseMechanism("Sentinel"), Mechanism::Sentinel);
    EXPECT_EQ(parseMechanism("Sentinel+PnAR2"),
              Mechanism::Sentinel_PnAR2);
    EXPECT_FALSE(usesPipelining(Mechanism::Sentinel));
    EXPECT_TRUE(usesPipelining(Mechanism::Sentinel_PnAR2));
    EXPECT_FALSE(usesAdaptiveTiming(Mechanism::Sentinel));
    EXPECT_TRUE(usesAdaptiveTiming(Mechanism::Sentinel_PnAR2));
    EXPECT_TRUE(usesStepReduction(Mechanism::Sentinel));
    EXPECT_TRUE(usesStepReduction(Mechanism::Sentinel_PnAR2));
}

TEST(SentinelMechanism, StackingPnar2StillHelps)
{
    // Section 9: "Both of our proposed techniques can complement the
    // Sentinel-based approach". Even at ~1.2 steps, shortening each
    // step must reduce completion for every retrying page.
    const nand::TimingParams timing;
    const nand::ErrorModel model;
    const Rpt rpt = RptBuilder(model).buildDefault();
    RetryController sentinel(Mechanism::Sentinel, timing, model, &rpt);
    RetryController stacked(Mechanism::Sentinel_PnAR2, timing, model,
                            &rpt);
    const nand::OperatingPoint op{1.0, 6.0, 30.0};

    double sum_s = 0.0, sum_x = 0.0;
    for (int p = 0; p < 300; ++p) {
        const nand::PageErrorProfile prof =
            model.pageProfile(0, 0, p, op);
        ssd::Channel ch1, ch2;
        ecc::EccEngine e1(timing.tECC, 72.0), e2(timing.tECC, 72.0);
        const ReadPlan ps = sentinel.planRead(0, nand::PageType::LSB,
                                              prof, op, ch1, e1);
        const ReadPlan px = stacked.planRead(0, nand::PageType::LSB,
                                             prof, op, ch2, e2);
        EXPECT_EQ(ps.retrySteps, px.retrySteps);
        sum_s += sim::toUsec(ps.completion);
        sum_x += sim::toUsec(px.completion);
    }
    EXPECT_LT(sum_x, sum_s)
        << "PR2+AR2 on top of Sentinel reduces average latency";
}

TEST(SentinelMechanism, SentinelBeatsPsoOnStepCount)
{
    // [56] reduces steps further than PSO (1.2 vs >= 3 in aged SSDs).
    for (int n : {5, 10, 20, 44})
        EXPECT_LT(sentinelSteps(n), psoSteps(n)) << "n=" << n;
}

} // namespace
} // namespace ssdrr::core

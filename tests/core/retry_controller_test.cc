/**
 * @file
 * Behavioural tests for the retry controller beyond the exact
 * latency equations (those live in retry_latency_test.cc): step
 * decisions, fallback handling and RPT integration.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/retry_controller.hh"
#include "ecc/engine.hh"
#include "nand/error_model.hh"
#include "ssd/channel.hh"

namespace ssdrr::core {
namespace {

class RetryControllerTest : public ::testing::Test
{
  protected:
    RetryControllerTest() : rpt_(RptBuilder(model_).buildDefault()) {}

    ReadPlan
    planFor(Mechanism m, const nand::PageErrorProfile &prof,
            const nand::OperatingPoint &op)
    {
        RetryController rc(m, timing_, model_, &rpt_);
        ssd::Channel ch;
        ecc::EccEngine ecc(timing_.tECC, 72.0);
        return rc.planRead(0, nand::PageType::LSB, prof, op, ch, ecc);
    }

    nand::TimingParams timing_;
    nand::ErrorModel model_;
    Rpt rpt_;
};

TEST_F(RetryControllerTest, AdaptiveMechanismRequiresRpt)
{
    EXPECT_THROW(RetryController(Mechanism::AR2, timing_, model_, nullptr),
                 std::logic_error);
    EXPECT_THROW(
        RetryController(Mechanism::PnAR2, timing_, model_, nullptr),
        std::logic_error);
    EXPECT_NO_THROW(
        RetryController(Mechanism::Baseline, timing_, model_, nullptr));
    EXPECT_NO_THROW(
        RetryController(Mechanism::PR2, timing_, model_, nullptr));
}

TEST_F(RetryControllerTest, StepCountMatchesProfileForRealPages)
{
    // Across a population of model-generated pages, the planned step
    // count must equal the profiled count for non-PSO mechanisms.
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    for (int p = 0; p < 200; ++p) {
        const nand::PageErrorProfile prof =
            model_.pageProfile(0, p / 64, p % 64, op);
        for (Mechanism m : {Mechanism::Baseline, Mechanism::PR2,
                            Mechanism::AR2, Mechanism::PnAR2}) {
            const ReadPlan plan = planFor(m, prof, op);
            EXPECT_EQ(plan.retrySteps, prof.retrySteps)
                << name(m) << " page " << p;
            EXPECT_TRUE(plan.success);
            EXPECT_FALSE(plan.timingFallback)
                << "profiled reduction must never inflate steps";
            EXPECT_EQ(plan.extraSteps, 0);
        }
    }
}

TEST_F(RetryControllerTest, PsoStepCountMatchesTransform)
{
    const nand::OperatingPoint op{2.0, 12.0, 30.0};
    for (int p = 0; p < 100; ++p) {
        const nand::PageErrorProfile prof =
            model_.pageProfile(0, p / 64, p % 64, op);
        const ReadPlan plan = planFor(Mechanism::PSO, prof, op);
        EXPECT_EQ(plan.retrySteps, psoSteps(prof.retrySteps)) << p;
    }
}

TEST_F(RetryControllerTest, FallbackRedoesWalkWithDefaultTiming)
{
    // Force the worst case the paper describes in Section 6.2: the
    // page's final-step errors leave less margin than the profiled
    // reduction consumes, so the reduced walk exhausts the table and
    // AR2 must redo the retry with default tPRE.
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    const nand::TimingReduction red = rpt_.lookup(op);
    const double extra = model_.deltaErrors(red, op);
    ASSERT_GT(extra, 1.0);

    nand::PageErrorProfile outlier;
    outlier.retrySteps = 5;
    // Succeeds with default timing, but reduction pushes it over.
    outlier.finalErrors = 72.0 - extra / 2.0;
    // High decay keeps step N-1 failing even with shrunk finals, so
    // the default-timing walk needs exactly outlier.retrySteps.
    outlier.decayRatio = 2.4;

    const ReadPlan plan = planFor(Mechanism::AR2, outlier, op);
    EXPECT_TRUE(plan.success) << "the default-timing redo saves the read";
    EXPECT_TRUE(plan.timingFallback);
    EXPECT_EQ(plan.extraSteps, model_.cal().retryTableSteps)
        << "the wasted reduced-timing walk is accounted as extra";
    EXPECT_EQ(plan.retrySteps,
              model_.cal().retryTableSteps + outlier.retrySteps);

    // The fallback plan is still a valid (if slow) read: it must be
    // slower than the default-timing walk alone would have been.
    const ReadPlan base = planFor(Mechanism::Baseline, outlier, op);
    EXPECT_GT(plan.completion, base.completion);
}

TEST_F(RetryControllerTest, FallbackAlsoWorksPipelined)
{
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    const nand::TimingReduction red = rpt_.lookup(op);
    const double extra = model_.deltaErrors(red, op);

    nand::PageErrorProfile outlier;
    outlier.retrySteps = 5;
    outlier.finalErrors = 72.0 - extra / 2.0;
    outlier.decayRatio = 2.4;

    const ReadPlan plan = planFor(Mechanism::PnAR2, outlier, op);
    EXPECT_TRUE(plan.success);
    EXPECT_TRUE(plan.timingFallback);
    // Pipelining keeps even the fallback cheaper than sequential.
    const ReadPlan seq = planFor(Mechanism::AR2, outlier, op);
    EXPECT_LT(plan.completion, seq.completion);
}

TEST_F(RetryControllerTest, DieEndNeverBeforeLastTransfer)
{
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    for (int p = 0; p < 100; ++p) {
        const nand::PageErrorProfile prof =
            model_.pageProfile(1, p / 64, p % 64, op);
        for (Mechanism m :
             {Mechanism::Baseline, Mechanism::PR2, Mechanism::AR2,
              Mechanism::PnAR2, Mechanism::NoRR, Mechanism::PSO,
              Mechanism::PSO_PnAR2}) {
            const ReadPlan plan = planFor(m, prof, op);
            EXPECT_GT(plan.dieEnd, 0u) << name(m);
            EXPECT_GE(plan.completion, plan.dieEnd - timing_.tRST -
                                           timing_.tSET - timing_.tECC)
                << name(m) << ": die end races far past completion";
        }
    }
}

TEST_F(RetryControllerTest, MechanismOrderingHoldsPerPage)
{
    // For every page: NoRR <= PSO+PnAR2 <= ... <= Baseline in
    // completion time. (PSO variants excluded from the middle since
    // they change the step count.)
    const nand::OperatingPoint op{2.0, 9.0, 30.0};
    for (int p = 0; p < 150; ++p) {
        const nand::PageErrorProfile prof =
            model_.pageProfile(2, p / 64, p % 64, op);
        const sim::Tick norr =
            planFor(Mechanism::NoRR, prof, op).completion;
        const sim::Tick pnar2 =
            planFor(Mechanism::PnAR2, prof, op).completion;
        const sim::Tick pr2 = planFor(Mechanism::PR2, prof, op).completion;
        const sim::Tick ar2 = planFor(Mechanism::AR2, prof, op).completion;
        const sim::Tick base =
            planFor(Mechanism::Baseline, prof, op).completion;
        EXPECT_LE(norr, pnar2) << p;
        EXPECT_LE(pnar2, pr2) << p;
        EXPECT_LE(pnar2, ar2) << p;
        EXPECT_LE(pr2, base) << p;
        EXPECT_LE(ar2, base) << p;
    }
}

TEST_F(RetryControllerTest, FreshPagesSeeNoMechanismDifferenceInCompletion)
{
    const nand::OperatingPoint fresh{0.0, 0.0, 30.0};
    const nand::PageErrorProfile prof =
        model_.pageProfile(0, 0, 0, fresh);
    ASSERT_EQ(prof.retrySteps, 0);
    const sim::Tick base =
        planFor(Mechanism::Baseline, prof, fresh).completion;
    for (Mechanism m : {Mechanism::PR2, Mechanism::AR2, Mechanism::PnAR2,
                        Mechanism::NoRR, Mechanism::PSO}) {
        EXPECT_EQ(planFor(m, prof, fresh).completion, base) << name(m);
    }
}

} // namespace
} // namespace ssdrr::core

/**
 * @file
 * Tests for the Section 8 predictive extensions: the error
 * predictor, speculative retry start, and reduced regular reads.
 */

#include <gtest/gtest.h>

#include "core/predictive.hh"

namespace ssdrr::core {
namespace {

class PredictiveTest : public ::testing::Test
{
  protected:
    PredictiveTest() : rpt_(RptBuilder(model_).buildDefault()) {}

    ReadPlan
    planWith(const PredictiveController &pc, std::uint64_t page,
             const nand::OperatingPoint &op)
    {
        ssd::Channel ch;
        ecc::EccEngine ecc(timing_.tECC, 72.0);
        return pc.planRead(0, nand::PageType::LSB, 0, 0, page, op, ch,
                           ecc);
    }

    ReadPlan
    planPnar2(std::uint64_t page, const nand::OperatingPoint &op)
    {
        RetryController rc(Mechanism::PnAR2, timing_, model_, &rpt_);
        ssd::Channel ch;
        ecc::EccEngine ecc(timing_.tECC, 72.0);
        const nand::PageErrorProfile prof =
            model_.pageProfile(0, 0, page, op);
        return rc.planRead(0, nand::PageType::LSB, prof, op, ch, ecc);
    }

    nand::TimingParams timing_;
    nand::ErrorModel model_;
    Rpt rpt_;
};

TEST_F(PredictiveTest, PerfectPredictorMatchesProfile)
{
    const ErrorPredictor pred(model_, 1.0);
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    for (std::uint64_t p = 0; p < 200; ++p) {
        const nand::PageErrorProfile prof =
            model_.pageProfile(0, 0, p, op);
        const ErrorPrediction e = pred.predict(0, 0, p, op);
        EXPECT_EQ(e.willRetry, prof.retrySteps > 0) << p;
        EXPECT_DOUBLE_EQ(e.predictedErrors, prof.finalErrors) << p;
    }
}

TEST_F(PredictiveTest, PredictionsAreDeterministic)
{
    const ErrorPredictor pred(model_, 0.7);
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    for (std::uint64_t p = 0; p < 50; ++p) {
        const ErrorPrediction a = pred.predict(0, 3, p, op);
        const ErrorPrediction b = pred.predict(0, 3, p, op);
        EXPECT_EQ(a.willRetry, b.willRetry);
        EXPECT_DOUBLE_EQ(a.predictedErrors, b.predictedErrors);
    }
}

TEST_F(PredictiveTest, AccuracyControlsFlipRate)
{
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    for (double acc : {1.0, 0.9, 0.6}) {
        const ErrorPredictor pred(model_, acc);
        int flips = 0;
        const int pages = 2000;
        for (std::uint64_t p = 0; p < pages; ++p) {
            const bool truth =
                model_.pageProfile(0, 0, p, op).retrySteps > 0;
            if (pred.predict(0, 0, p, op).willRetry != truth)
                ++flips;
        }
        EXPECT_NEAR(static_cast<double>(flips) / pages, 1.0 - acc, 0.04)
            << "accuracy " << acc;
    }
}

TEST_F(PredictiveTest, InvalidAccuracyPanics)
{
    EXPECT_THROW(ErrorPredictor(model_, 1.5), std::logic_error);
    EXPECT_THROW(ErrorPredictor(model_, -0.1), std::logic_error);
}

TEST_F(PredictiveTest, SpeculativeStartBeatsPnar2OnRetryPages)
{
    // With a perfect predictor, skipping the doomed default read
    // must strictly reduce completion time for every retrying page.
    const ErrorPredictor pred(model_, 1.0);
    PredictiveConfig cfg;
    cfg.reducedRegularReads = false;
    const PredictiveController pc(timing_, model_, rpt_, pred, cfg);
    const nand::OperatingPoint op{1.0, 6.0, 30.0};

    int compared = 0;
    for (std::uint64_t p = 0; p < 200; ++p) {
        if (model_.pageProfile(0, 0, p, op).retrySteps == 0)
            continue;
        const ReadPlan spec = planWith(pc, p, op);
        const ReadPlan base = planPnar2(p, op);
        EXPECT_LT(spec.completion, base.completion) << "page " << p;
        EXPECT_TRUE(spec.success);
        ++compared;
    }
    EXPECT_GT(compared, 100);
    EXPECT_EQ(pc.mispredictions(), 0u);
    EXPECT_EQ(pc.speculativeStarts(), static_cast<std::uint64_t>(compared));
}

TEST_F(PredictiveTest, SpeculativeSavingIsAboutOneDefaultRead)
{
    // The saved work is the initial default-timing read + its
    // transfer/decode serialization, minus the extra reduced sensing
    // that replaces it.
    const ErrorPredictor pred(model_, 1.0);
    PredictiveConfig cfg;
    cfg.reducedRegularReads = false;
    const PredictiveController pc(timing_, model_, rpt_, pred, cfg);
    const nand::OperatingPoint op{2.0, 12.0, 30.0};

    for (std::uint64_t p = 0; p < 20; ++p) {
        if (model_.pageProfile(0, 0, p, op).retrySteps < 2)
            continue;
        const sim::Tick saved = planPnar2(p, op).completion -
                                planWith(pc, p, op).completion;
        // Default read = 78 us; replacement sensing >= 58 us; plus
        // the DMA+ECC of the initial read leave the critical path.
        EXPECT_GT(saved, sim::usec(10)) << "page " << p;
        EXPECT_LT(saved, sim::usec(130)) << "page " << p;
    }
}

TEST_F(PredictiveTest, SpeculativeWalkLatencyEquation)
{
    // Exact timeline on idle resources: skipping the default read
    // gives tREAD = tSET + (N+1) * rho*tR + tDMA + tECC — the (N+1)
    // reduced sensings replace the default read plus N retries.
    const ErrorPredictor pred(model_, 1.0);
    PredictiveConfig cfg;
    cfg.reducedRegularReads = false;
    const PredictiveController pc(timing_, model_, rpt_, pred, cfg);
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    const nand::TimingReduction red = rpt_.lookup(op);
    const sim::Tick s_red = timing_.tR(nand::PageType::LSB, red);

    int checked = 0;
    for (std::uint64_t p = 0; p < 100 && checked < 20; ++p) {
        const nand::PageErrorProfile prof =
            model_.pageProfile(0, 0, p, op);
        if (prof.retrySteps == 0)
            continue;
        // The reduced walk keeps the profiled step count (safety
        // margin guarantees it at this operating point).
        const double extra = model_.deltaErrors(red, op);
        const nand::ReadOutcome out = model_.simulateRead(prof, extra);
        ASSERT_TRUE(out.success);
        const ReadPlan plan = planWith(pc, p, op);
        const sim::Tick expect =
            timing_.tSET +
            static_cast<sim::Tick>(out.retrySteps + 1) * s_red +
            timing_.tDMA + timing_.tECC;
        EXPECT_EQ(plan.completion, expect) << "page " << p;
        EXPECT_EQ(plan.retrySteps, out.retrySteps) << "page " << p;
        ++checked;
    }
    EXPECT_GE(checked, 10);
}

TEST_F(PredictiveTest, ReducedRegularReadShortensCleanReads)
{
    const ErrorPredictor pred(model_, 1.0);
    PredictiveConfig cfg;
    cfg.speculativeRetryStart = false;
    const PredictiveController pc(timing_, model_, rpt_, pred, cfg);
    // Very mild condition: most pages read clean, margin is large.
    const nand::OperatingPoint op{0.0, 0.1, 30.0};

    int reduced = 0, clean = 0;
    for (std::uint64_t p = 0; p < 200; ++p) {
        const nand::PageErrorProfile prof =
            model_.pageProfile(0, 0, p, op);
        if (prof.retrySteps != 0)
            continue;
        ++clean;
        const ReadPlan plan = planWith(pc, p, op);
        const ReadPlan base = planPnar2(p, op);
        EXPECT_LE(plan.completion, base.completion + timing_.tSET)
            << "page " << p;
        if (plan.completion < base.completion)
            ++reduced;
    }
    EXPECT_GT(clean, 100) << "condition should leave most pages clean";
    EXPECT_EQ(reduced, clean) << "every clean read gets the fast path";
    EXPECT_EQ(pc.mispredictions(), 0u);
    EXPECT_GT(pc.reducedRegularCount(), 0u);
}

TEST_F(PredictiveTest, MispredictedRegularReadStillSucceeds)
{
    // A sloppy predictor marks some retry pages as clean; the
    // controller must detect the failed reduced read and fall back,
    // never losing the read.
    const ErrorPredictor pred(model_, 0.5);
    const PredictiveController pc(timing_, model_, rpt_, pred, {});
    const nand::OperatingPoint op{1.0, 6.0, 30.0};

    for (std::uint64_t p = 0; p < 300; ++p) {
        const ReadPlan plan = planWith(pc, p, op);
        EXPECT_TRUE(plan.success) << "page " << p;
        EXPECT_GT(plan.completion, 0u);
    }
    EXPECT_GT(pc.mispredictions(), 50u)
        << "a 50% predictor must mispredict often";
}

TEST_F(PredictiveTest, MispredictionCostsBoundedVsPnar2)
{
    // Even with a coin-flip predictor, the average completion over a
    // page population must stay within a modest factor of plain
    // PnAR2 (mispredictions waste one read, they do not blow up).
    const ErrorPredictor pred(model_, 0.5);
    const PredictiveController pc(timing_, model_, rpt_, pred, {});
    const nand::OperatingPoint op{1.0, 6.0, 30.0};

    double sum_pred = 0.0, sum_base = 0.0;
    for (std::uint64_t p = 0; p < 300; ++p) {
        sum_pred += sim::toUsec(planWith(pc, p, op).completion);
        sum_base += sim::toUsec(planPnar2(p, op).completion);
    }
    EXPECT_LT(sum_pred, sum_base * 1.25);
}

TEST_F(PredictiveTest, PerfectPredictorBeatsPnar2OnAverage)
{
    const ErrorPredictor pred(model_, 1.0);
    const PredictiveController pc(timing_, model_, rpt_, pred, {});
    const nand::OperatingPoint op{1.0, 6.0, 30.0};

    double sum_pred = 0.0, sum_base = 0.0;
    for (std::uint64_t p = 0; p < 300; ++p) {
        sum_pred += sim::toUsec(planWith(pc, p, op).completion);
        sum_base += sim::toUsec(planPnar2(p, op).completion);
    }
    EXPECT_LT(sum_pred, sum_base);
}

TEST_F(PredictiveTest, AttachedProfileCacheChangesNothingButIsUsed)
{
    // The predictor and controller can share the SSD's page-profile
    // cache; plans and predictions must be bit-identical either way.
    const nand::OperatingPoint op{1.0, 6.0, 30.0};
    const ErrorPredictor plain_pred(model_, 0.8);
    const PredictiveController plain_pc(timing_, model_, rpt_,
                                        plain_pred, {});

    nand::PageProfileCache cache(model_, 1024);
    ErrorPredictor cached_pred(model_, 0.8);
    cached_pred.attachProfileCache(&cache);
    PredictiveController cached_pc(timing_, model_, rpt_, cached_pred,
                                   {});
    cached_pc.attachProfileCache(&cache);

    for (std::uint64_t p = 0; p < 150; ++p) {
        const ErrorPrediction a = plain_pred.predict(0, 0, p, op);
        const ErrorPrediction b = cached_pred.predict(0, 0, p, op);
        EXPECT_EQ(a.willRetry, b.willRetry) << p;
        EXPECT_DOUBLE_EQ(a.predictedErrors, b.predictedErrors) << p;

        const ReadPlan x = planWith(plain_pc, p, op);
        const ReadPlan y = planWith(cached_pc, p, op);
        EXPECT_EQ(x.retrySteps, y.retrySteps) << p;
        EXPECT_EQ(x.extraSteps, y.extraSteps) << p;
        EXPECT_EQ(x.success, y.success) << p;
        EXPECT_EQ(x.completion, y.completion) << p;
        EXPECT_EQ(x.dieEnd, y.dieEnd) << p;
    }
    // The controller's lookup hits the entry its predictor created.
    EXPECT_GT(cache.hits(), 0u);
    EXPECT_GT(cache.misses(), 0u);
}

} // namespace
} // namespace ssdrr::core

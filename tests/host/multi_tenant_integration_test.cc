/**
 * @file
 * End-to-end host-layer property: with two tenants sharing one SSD
 * through queue pairs, the paper's mechanism ordering must survive
 * host-side queueing — per-tenant p99 obeys
 * PnAR2 <= AR2 <= Baseline (with scheduling-noise slack), just as
 * the single-replay integration tests check for mean response time.
 */

#include <gtest/gtest.h>

#include <map>

#include "host/scenario_spec.hh"

namespace ssdrr::host {
namespace {

/** Both tenants contend for one SSD through depth-8 queue pairs. */
ScenarioSpec
twoTenantSpec()
{
    return ScenarioBuilder()
        .pec(1.0)
        .retention(6.0)
        .seed(13)
        .drives(1)
        .queueDepth(8)
        .arbitration(Arbitration::RoundRobin)
        .mechanism(core::Mechanism::Baseline)
        .mechanism(core::Mechanism::AR2)
        .mechanism(core::Mechanism::PnAR2)
        .tenant("t0", "usr_1", 250)
        .qdLimit(8)
        .tenant("t1", "YCSB-C", 250)
        .qdLimit(8)
        .build();
}

TEST(MultiTenantOrdering, PerTenantP99FollowsMechanismOrdering)
{
    const ScenarioSpec spec = twoTenantSpec();
    std::map<core::Mechanism, ScenarioResult> res;
    for (const std::string &mname : spec.mechanisms) {
        const core::Mechanism m = core::parseMechanism(mname);
        res[m] = runScenario(spec, m);
    }

    const double slack = 1.05; // queueing noise tolerance
    for (std::size_t t = 0; t < 2; ++t) {
        const double base =
            res[core::Mechanism::Baseline].tenants[t].p99Us;
        const double ar2 = res[core::Mechanism::AR2].tenants[t].p99Us;
        const double pnar2 =
            res[core::Mechanism::PnAR2].tenants[t].p99Us;
        EXPECT_GT(base, 0.0);
        EXPECT_LE(ar2, base * slack) << "tenant " << t;
        EXPECT_LE(pnar2, ar2 * slack) << "tenant " << t;
        EXPECT_LT(pnar2, base)
            << "tenant " << t
            << ": PnAR2 should strictly improve the p99 tail at a "
               "worn operating point";
    }

    // Every tenant finished its workload under every mechanism.
    for (auto &[m, r] : res)
        for (const TenantStats &s : r.tenants)
            EXPECT_EQ(s.completed, 250u) << core::name(m);
}

} // namespace
} // namespace ssdrr::host

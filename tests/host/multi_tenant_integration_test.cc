/**
 * @file
 * End-to-end host-layer property: with two tenants sharing one SSD
 * through queue pairs, the paper's mechanism ordering must survive
 * host-side queueing — per-tenant p99 obeys
 * PnAR2 <= AR2 <= Baseline (with scheduling-noise slack), just as
 * the single-replay integration tests check for mean response time.
 */

#include <gtest/gtest.h>

#include <map>

#include "host/scenario.hh"

namespace ssdrr::host {
namespace {

ScenarioConfig
twoTenantConfig(core::Mechanism mech)
{
    ScenarioConfig sc;
    sc.ssd = ssd::Config::small();
    sc.ssd.basePeKilo = 1.0;
    sc.ssd.baseRetentionMonths = 6.0;
    sc.ssd.seed = 13;
    sc.mech = mech;
    sc.drives = 1; // both tenants contend for one SSD
    sc.host.queueDepth = 8;
    sc.host.arbitration = Arbitration::RoundRobin;
    for (int t = 0; t < 2; ++t) {
        TenantSpec ts;
        ts.workload = t == 0 ? "usr_1" : "YCSB-C";
        ts.name = "t" + std::to_string(t);
        ts.requests = 250;
        ts.qdLimit = 8;
        sc.tenants.push_back(ts);
    }
    return sc;
}

TEST(MultiTenantOrdering, PerTenantP99FollowsMechanismOrdering)
{
    std::map<core::Mechanism, ScenarioResult> res;
    for (core::Mechanism m :
         {core::Mechanism::Baseline, core::Mechanism::AR2,
          core::Mechanism::PnAR2}) {
        res[m] = runScenario(twoTenantConfig(m));
    }

    const double slack = 1.05; // queueing noise tolerance
    for (std::size_t t = 0; t < 2; ++t) {
        const double base =
            res[core::Mechanism::Baseline].tenants[t].p99Us;
        const double ar2 = res[core::Mechanism::AR2].tenants[t].p99Us;
        const double pnar2 =
            res[core::Mechanism::PnAR2].tenants[t].p99Us;
        EXPECT_GT(base, 0.0);
        EXPECT_LE(ar2, base * slack) << "tenant " << t;
        EXPECT_LE(pnar2, ar2 * slack) << "tenant " << t;
        EXPECT_LT(pnar2, base)
            << "tenant " << t
            << ": PnAR2 should strictly improve the p99 tail at a "
               "worn operating point";
    }

    // Every tenant finished its workload under every mechanism.
    for (auto &[m, r] : res)
        for (const TenantStats &s : r.tenants)
            EXPECT_EQ(s.completed, 250u) << core::name(m);
}

} // namespace
} // namespace ssdrr::host

/**
 * @file
 * Property tests for the scenario-spec layer: a seeded generator
 * composes randomized valid ScenarioSpecs through ScenarioBuilder
 * (tenant mixes, filter chains, fault timelines, fabric presets,
 * every engine), and asserts the codec's core contracts over a few
 * hundred of them:
 *
 *  - round trip: spec -> JSON text -> spec is identity (operator==),
 *    and text -> spec -> text is a byte fixed point;
 *  - validate() accepts everything the builder can legally produce;
 *  - mutation: renaming any single key anywhere in the document
 *    makes the load fail with a SpecError that names the mutated
 *    key — no typo is silently absorbed as a default.
 *
 * Everything here is serialization and validation — no scenario ever
 * runs — so hundreds of iterations cost milliseconds.
 */

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "host/scenario_spec.hh"
#include "sim/json.hh"

namespace ssdrr {
namespace {

using sim::json::Value;

constexpr int kIterations = 256;

/** Uniform integer in [lo, hi] from the iteration's RNG. */
std::uint64_t
pick(std::mt19937_64 &rng, std::uint64_t lo, std::uint64_t hi)
{
    return lo + rng() % (hi - lo + 1);
}

bool
chance(std::mt19937_64 &rng, double p)
{
    return std::uniform_real_distribution<double>(0, 1)(rng) < p;
}

const char *const kWorkloads[] = {"usr_1", "stg_0", "YCSB-C",
                                  "seq_scan", "hm_0", "proj_1"};
const char *const kMechanisms[] = {"Baseline", "PR2", "AR2", "PnAR2",
                                   "NoRR"};

host::filter::FilterSpec
randomFilter(std::mt19937_64 &rng)
{
    host::filter::FilterSpec f;
    switch (pick(rng, 0, 5)) {
    case 0:
        f.type = "cache";
        f.sizeBytes = (1ull << 20) << pick(rng, 0, 6);
        f.eviction = chance(rng, 0.5) ? "lru" : "fifo";
        f.admission = chance(rng, 0.5) ? "reads" : "all";
        f.hitLatencyUs = 0.5 * pick(rng, 0, 10);
        break;
    case 1:
        f.type = "readahead";
        f.windowPages = static_cast<std::uint32_t>(pick(rng, 1, 64));
        f.streams = static_cast<std::uint32_t>(pick(rng, 1, 32));
        break;
    case 2:
        f.type = "split";
        f.maxPages = static_cast<std::uint32_t>(pick(rng, 1, 16));
        f.coalesceWindowUs = chance(rng, 0.5) ? 0.0 : 5.0;
        break;
    case 3:
        f.type = "delay";
        f.delayUs = 0.5 * pick(rng, 0, 20);
        f.applies = chance(rng, 0.5)
                        ? "all"
                        : (chance(rng, 0.5) ? "reads" : "writes");
        break;
    case 4:
        f.type = "throttle";
        f.rateIops = 1000.0 * pick(rng, 1, 50);
        f.burst = static_cast<double>(pick(rng, 0, 16));
        break;
    default:
        f.type = "xfer";
        f.usPerKb = 0.05 * pick(rng, 1, 20);
        break;
    }
    return f;
}

/**
 * One random valid spec. Every constraint validate() enforces is
 * honoured by construction (raid5 needs >= 3 drives, failStop needs
 * a timeout, worker threads need a window, qdLimit <= queueDepth,
 * ...), so build() accepting the result IS the property under test.
 */
host::ScenarioSpec
randomSpec(std::mt19937_64 &rng)
{
    host::ScenarioBuilder b;
    b.name("prop-" + std::to_string(rng() % 100000));
    b.geometry("small");
    b.pec(0.25 * pick(rng, 0, 20));
    b.retention(0.5 * pick(rng, 0, 48));
    b.temperature(static_cast<double>(pick(rng, 0, 85)));
    if (chance(rng, 0.3))
        b.refresh(static_cast<double>(pick(rng, 1, 24)));
    b.suspension(chance(rng, 0.8));
    // JSON numbers carry integers exactly only up to 2^53 - 1.
    b.seed(rng() & ((1ull << 53) - 1));

    for (const char *m : kMechanisms)
        if (chance(rng, 0.4))
            b.mechanism(m); // build() defaults an empty pick

    const std::uint32_t drives =
        static_cast<std::uint32_t>(pick(rng, 1, 6));
    b.drives(drives);
    const bool raid5 = drives >= 3 && chance(rng, 0.4);
    std::vector<std::uint32_t> failed;
    if (raid5) {
        b.raid("raid5");
        b.stripeUnitPages(
            static_cast<std::uint32_t>(pick(rng, 1, 8)));
        if (chance(rng, 0.4)) {
            failed = {static_cast<std::uint32_t>(
                pick(rng, 0, drives - 1))};
            b.failedDrives(failed);
        }
    }

    // Engine: legacy shared queue, flat host link, or a fabric.
    const int engine = static_cast<int>(pick(rng, 0, 2));
    bool windowed = false;
    if (engine == 1) {
        b.hostLinkUs(0.5 * pick(rng, 1, 40));
        windowed = true;
    } else if (engine == 2 && !raid5) {
        // Presets: flat always fits; tree:SxD needs S*D == drives.
        if (drives % 2 == 0 && chance(rng, 0.5))
            b.fabricPreset("tree:2x" + std::to_string(drives / 2));
        else
            b.fabricPreset("flat");
        windowed = true;
    }
    if (windowed && chance(rng, 0.5))
        b.threads(static_cast<std::uint32_t>(pick(rng, 2, 4)));

    // Fault timeline: never on an already-failed drive, at most one
    // failStop (and it demands a host timeout to be detectable).
    const auto live_drive = [&] {
        std::uint32_t d;
        do
            d = static_cast<std::uint32_t>(pick(rng, 0, drives - 1));
        while (!failed.empty() && d == failed[0]);
        return d;
    };
    bool need_timeout = false;
    if (drives > 1 && chance(rng, 0.3)) {
        const double at = 100.0 * pick(rng, 0, 50);
        b.failSlow(live_drive(), at, at + 100.0 * pick(rng, 1, 50),
                   1.5 + pick(rng, 0, 10));
    }
    if (drives > 1 && chance(rng, 0.3)) {
        const double at = 100.0 * pick(rng, 0, 50);
        b.ueccFault(live_drive(), at, at + 100.0 * pick(rng, 1, 50),
                    0.01 * pick(rng, 1, 100));
    }
    if (chance(rng, 0.2)) {
        const bool rebuild = raid5 && failed.empty();
        b.failStop(live_drive(), 100.0 * pick(rng, 1, 50), rebuild,
                   rebuild ? pick(rng, 0, 64) : 0);
        need_timeout = true;
    }
    if (need_timeout || chance(rng, 0.3))
        b.timeoutUs(500.0 * pick(rng, 1, 10));
    if (chance(rng, 0.3))
        b.retryMax(static_cast<std::uint32_t>(pick(rng, 0, 16)));
    if (chance(rng, 0.3))
        b.retryBackoffUs(static_cast<double>(pick(rng, 0, 1000)));

    const std::uint32_t qd =
        static_cast<std::uint32_t>(pick(rng, 4, 32));
    b.queueDepth(qd);
    b.arbitration(chance(rng, 0.5) ? "rr" : "wrr");
    if (chance(rng, 0.3))
        b.maxDeviceInflight(
            static_cast<std::uint32_t>(pick(rng, 1, 8)));
    if (chance(rng, 0.3))
        b.transferUsPerKb(0.05 * pick(rng, 1, 10));

    const int nfilters = static_cast<int>(pick(rng, 0, 3));
    for (int i = 0; i < nfilters; ++i)
        b.addFilter(randomFilter(rng));

    const int ntenants = static_cast<int>(pick(rng, 1, 4));
    for (int t = 0; t < ntenants; ++t) {
        b.tenant("t" + std::to_string(t),
                 kWorkloads[pick(rng, 0, 5)], pick(rng, 1, 500));
        const bool open = chance(rng, 0.3);
        if (open) {
            b.openLoop();
            if (chance(rng, 0.5))
                b.iops(500.0 * pick(rng, 1, 20));
        }
        // A closed-loop window must fit its queue pair.
        b.qdLimit(static_cast<std::uint32_t>(
            open ? pick(rng, 1, 64) : pick(rng, 1, qd)));
        b.weight(static_cast<std::uint32_t>(pick(rng, 1, 5)));
        if (chance(rng, 0.3)) {
            b.rateIops(1000.0 * pick(rng, 1, 20));
            if (chance(rng, 0.5))
                b.burst(static_cast<double>(pick(rng, 1, 16)));
        }
    }
    return b.build();
}

TEST(ScenarioSpecProperty, RoundTripIsIdentityAndTextIsFixedPoint)
{
    std::mt19937_64 seed_rng(20260808);
    for (int i = 0; i < kIterations; ++i) {
        std::mt19937_64 rng(seed_rng());
        SCOPED_TRACE("iteration " + std::to_string(i));
        const host::ScenarioSpec spec = randomSpec(rng);
        // build() already ran validate(); it must also hold after a
        // round trip through text.
        const std::string text = spec.toJsonText();
        host::ScenarioSpec loaded;
        ASSERT_NO_THROW(loaded =
                            host::ScenarioSpec::fromJsonText(text))
            << text;
        EXPECT_TRUE(loaded == spec) << text;
        EXPECT_EQ(loaded.toJsonText(), text);
    }
}

/**
 * Collect every object key in the document (depth-first, member
 * order), so a mutation can target any of them uniformly.
 */
void
collectKeys(const Value &v, std::vector<const std::string *> &keys)
{
    if (v.isObject()) {
        for (const auto &[k, child] : v.members()) {
            keys.push_back(&k);
            collectKeys(child, keys);
        }
    } else if (v.isArray()) {
        for (const Value &e : v.elements())
            collectKeys(e, keys);
    }
}

TEST(ScenarioSpecProperty, RenamingAnyKeyIsRejectedNamingTheKey)
{
    std::mt19937_64 seed_rng(20260809);
    for (int i = 0; i < kIterations; ++i) {
        std::mt19937_64 rng(seed_rng());
        SCOPED_TRACE("iteration " + std::to_string(i));
        const host::ScenarioSpec spec = randomSpec(rng);
        std::string err;
        Value doc = sim::json::parse(spec.toJsonText(), &err);
        ASSERT_TRUE(err.empty()) << err;

        std::vector<const std::string *> keys;
        collectKeys(doc, keys);
        ASSERT_FALSE(keys.empty());
        // The pointers alias the document's own member keys, so the
        // rename mutates the tree in place.
        const std::string *slot =
            keys[pick(rng, 0, keys.size() - 1)];
        const std::string original = *slot;
        const_cast<std::string &>(*slot) = original + "Typo";

        const std::string mutated = doc.dump(2);
        try {
            (void)host::ScenarioSpec::fromJsonText(mutated);
            FAIL() << "renaming \"" << original
                   << "\" was silently accepted:\n"
                   << mutated;
        } catch (const host::SpecError &e) {
            // Either the unknown new key is named, or (when the
            // schema misses the original as a required field first)
            // the original is — both identify the mutated key, and
            // the mutated name contains the original by
            // construction.
            EXPECT_NE(std::string(e.what()).find(original),
                      std::string::npos)
                << "renamed \"" << original << "\" but got: "
                << e.what();
        }
    }
}

} // namespace
} // namespace ssdrr
